#!/usr/bin/env python3
"""Generate src/ff/mul_asm_x86.hpp: ADX/BMI2 Montgomery mul kernels."""

def gen(n):
    ring = [f"%%r{8+i}" for i in range(n + 1)]
    lo, hi = "%%rax", "%%rcx"
    L = []

    def t(i, j):
        return ring[(i + j) % (n + 1)]

    def A(i):
        return ring[(i + n) % (n + 1)]

    L.append("// t = a * b[0] (plain carry chain; accumulators are fresh)")
    L.append(f"movq 0(%[b]), %%rdx")
    L.append(f"mulxq 0(%[a]), {t(0,0)}, {t(0,1)}")
    for j in range(1, n):
        op = "addq" if j == 1 else "adcq"
        dst_hi = t(0, j + 1) if j + 1 < n else A(0)
        L.append(f"mulxq {8*j}(%[a]), {lo}, {dst_hi}")
        L.append(f"{op} {lo}, {t(0,j)}")
    L.append(f"adcq $0, {A(0)}")

    for i in range(n):
        if i > 0:
            L.append(f"// t += a * b[{i}] (dual carry chains, carry word into "
                     f"{A(i).replace('%%','')})")
            L.append(f"movq {8*i}(%[b]), %%rdx")
            L.append(f"xorl %%eax, %%eax")
            for j in range(n):
                dst_hi = t(i, j + 1) if j + 1 < n else A(i)
                L.append(f"mulxq {8*j}(%[a]), {lo}, {hi}")
                L.append(f"adcxq {lo}, {t(i,j)}")
                L.append(f"adoxq {hi}, {dst_hi}")
            L.append(f"movl $0, %%eax")
            L.append(f"adcxq %%rax, {A(i)}")
        L.append(f"// m = t[0] * inv; fold m*p, shifting the window down a limb")
        L.append(f"movq {t(i,0)}, %%rdx")
        L.append(f"imulq %[inv], %%rdx")
        L.append(f"xorl %%eax, %%eax")
        for j in range(n):
            dst_hi = t(i, j + 1) if j + 1 < n else A(i)
            L.append(f"mulxq %[p{j}], {lo}, {hi}")
            L.append(f"adcxq {lo}, {t(i,j)}")
            L.append(f"adoxq {hi}, {dst_hi}")
        L.append(f"movl $0, %%eax")
        L.append(f"adcxq %%rax, {A(i)}")

    for j in range(n):
        L.append(f"movq {t(n,j)}, {8*j}(%[out])")
    return L


def body(n, indent):
    out = []
    for l in gen(n):
        if l.startswith("//"):
            out.append(f'{indent}{l.replace("//", "/*")} */')
        else:
            out.append(f'{indent}"{l}\\n\\t"')
    # strip trailing \n\t from last instruction line
    out[-1] = out[-1].replace('\\n\\t"', '"')
    return "\n".join(out)


def constraints(n, indent):
    ps = ",\n".join(
        f'{indent}  [p{j}] "m"(s_p[{j}])' for j in range(n))
    clob = ", ".join(f'"r{8+i}"' for i in range(n + 1))
    return (f'{indent}: "=m"(t)\n'
            f'{indent}: [out] "r"(t), [a] "r"(a), [b] "r"(b),\n'
            f'{indent}  "m"(*reinterpret_cast<const u64(*)[{n}]>(a)),\n'
            f'{indent}  "m"(*reinterpret_cast<const u64(*)[{n}]>(b)),\n'
            f'{indent}  [inv] "m"(s_inv),\n'
            f'{ps}\n'
            f'{indent}: "rax", "rcx", "rdx", {clob}, "cc");')


HEADER = r'''/**
 * @file
 * ADX/BMI2 x86-64 assembly Montgomery multiplication for the fixed limb
 * widths (4 = Fr, 6 = Fq).
 *
 * The portable unrolled kernels in mul_impl.hpp bottom out in GCC's u128
 * codegen, which serializes every mac() on a single implicit carry chain;
 * on the BLS12-381 scalar field that caps the kernel at ~1.1x over the
 * generic oracle. The mulx/adcx/adox sequence here keeps TWO independent
 * carry chains in flight per outer CIOS iteration — adcx propagates the
 * low-product chain through CF while adox accumulates the high products
 * through OF — so the multiplier port and both adder chains stay busy
 * every cycle instead of stalling on one flag.
 *
 * Structure (mirrors kernels::montMulNoCarry exactly — same no-carry CIOS
 * with the modulus-headroom precondition, so both produce canonical
 * results bit-identical to the generic oracle):
 *  - The accumulator lives in a ring of N+1 hard registers holding
 *    [t0..t{N-1}, A]. The reduction step's shift-down-a-limb is a register
 *    RENAMING, not a move: after folding m*p, the window rotates by one
 *    and the old t0 register — which the fold left at exactly zero, since
 *    t0 + lo(m*p0) == 0 mod 2^64 by choice of m — becomes the next
 *    iteration's fresh carry word.
 *  - Modulus limbs and -p^{-1} are rip-relative memory operands of
 *    constexpr statics: no registers consumed, no relocation-hostile
 *    64-bit immediates in mul position (mulx takes reg/mem only).
 *  - The asm declares precise in/out memory operands instead of a blanket
 *    "memory" clobber, so surrounding hot loops (vec_ops blocks, bucket
 *    adds) keep their pointers in registers across calls.
 *  - The final conditional subtraction reuses the branchless C++
 *    condSubModulus — it is flag-free mask arithmetic the compiler already
 *    schedules well, and keeping it out of the asm keeps the block small.
 *
 * Squaring dispatches to this multiplier with both operands equal: a
 * dedicated asm squaring needs 2N accumulator limbs live (12 for Fq),
 * which does not fit the register file without spills, and the measured
 * dual-chain mul(a, a) already beats the portable dedicated square (see
 * EXPERIMENTS.md PR 7). fromBig / deserialization stays on the generic
 * path for the same reason as in mul_impl.hpp: the no-carry precondition
 * assumes canonical inputs.
 *
 * Selection is runtime, not compile-time: the instructions are emitted
 * unconditionally (inline asm bypasses -march gates), and dispatch checks
 * cpuid once at startup — BMI2 (mulx) and ADX (adcx/adox) CPUID bits —
 * plus the ZKPHIRE_ASM env toggle ("0" forces the portable kernels, for
 * A/B runs and the CI forced-fallback leg). tests/test_ff_kernels.cpp
 * locks asm == unrolled == generic on random and edge operands.
 */
#ifndef ZKPHIRE_FF_MUL_ASM_X86_HPP
#define ZKPHIRE_FF_MUL_ASM_X86_HPP

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "ff/mul_impl.hpp"

// __OPTIMIZE__ guard: at -O0 the frame pointer is pinned and every
// operand lives in memory, leaving too few registers to satisfy the
// kernels' constraints ("asm operand has impossible constraints" on the
// Debug/sanitizer legs) — unoptimized builds take the C++ kernels.
#if defined(__x86_64__) && !defined(ZKPHIRE_NO_ASM) && defined(__OPTIMIZE__)
#define ZKPHIRE_HAVE_X86_ASM 1
#include <cpuid.h>
#else
#define ZKPHIRE_HAVE_X86_ASM 0
#endif

namespace zkphire::ff::kernels {

/**
 * True when the host CPU exposes BMI2 (mulx) and ADX (adcx/adox) — CPUID
 * leaf 7 subleaf 0, EBX bits 8 and 19. Always false on non-x86-64 builds.
 */
inline bool
cpuSupportsAdxBmi2()
{
#if ZKPHIRE_HAVE_X86_ASM
    static const bool ok = [] {
        unsigned a = 0, b = 0, c = 0, d = 0;
        if (!__get_cpuid_count(7, 0, &a, &b, &c, &d))
            return false;
        constexpr unsigned kBmi2 = 1u << 8;
        constexpr unsigned kAdx = 1u << 19;
        return (b & kBmi2) != 0 && (b & kAdx) != 0;
    }();
    return ok;
#else
    return false;
#endif
}

namespace detail {

/** Runtime asm toggle; see asmKernelsEnabled(). */
inline std::atomic<bool> g_asm_enabled{[] {
    if (!cpuSupportsAdxBmi2())
        return false;
    const char *env = std::getenv("ZKPHIRE_ASM");
    return env == nullptr || env[0] == '\0' || env[0] != '0';
}()};

} // namespace detail

/**
 * Whether mul/square dispatch should take the asm kernels: requires CPU
 * support, ZKPHIRE_ASM not set to 0, and no forceAsmKernels(false)
 * override. Note the generic-oracle switch (forceGenericKernels /
 * ZKPHIRE_FF_GENERIC) is checked FIRST by the dispatch sites and
 * overrides this — the oracle always wins.
 */
inline bool
asmKernelsEnabled()
{
    return detail::g_asm_enabled.load(std::memory_order_relaxed);
}

/** Flip the asm leg at runtime (tests/benches). Enabling on a host
 *  without ADX/BMI2 is ignored — the portable kernels stay selected. */
inline void
forceAsmKernels(bool on)
{
    detail::g_asm_enabled.store(on && cpuSupportsAdxBmi2(),
                                std::memory_order_relaxed);
}

/** RAII asm-kernel scope for A/B tests and benches. */
class ScopedAsmKernels
{
  public:
    explicit ScopedAsmKernels(bool on) : saved(asmKernelsEnabled())
    {
        forceAsmKernels(on);
    }
    ~ScopedAsmKernels() { forceAsmKernels(saved); }
    ScopedAsmKernels(const ScopedAsmKernels &) = delete;
    ScopedAsmKernels &operator=(const ScopedAsmKernels &) = delete;

  private:
    bool saved;
};

#if ZKPHIRE_HAVE_X86_ASM

/**
 * out = a * b * R^{-1} mod P via the dual-carry-chain no-carry CIOS above.
 * Same preconditions as montMulNoCarry (a, b < P, headroom modulus);
 * produces canonical (< P) output. out may alias a or b.
 */
template <class Big, Big P, u64 Inv>
inline void
montMulAsmX86(u64 *out, const u64 *a, const u64 *b)
{
    constexpr std::size_t N = Big::numLimbs;
    static_assert(N == 4 || N == 6, "asm kernels cover the 4/6-limb widths");
    static constexpr u64 s_inv = Inv;
    static constexpr auto s_p = P.limb;
    u64 t[N];
    if constexpr (N == 4) {
        __asm__(
@BODY4@
@CONS4@
    } else {
        __asm__(
@BODY6@
@CONS6@
    }
    detail::condSubModulus<Big, P>(out, t);
}

#endif // ZKPHIRE_HAVE_X86_ASM

} // namespace zkphire::ff::kernels

#endif // ZKPHIRE_FF_MUL_ASM_X86_HPP
'''

import os

text = HEADER
text = text.replace("@BODY4@", body(4, " " * 12))
text = text.replace("@CONS4@", constraints(4, " " * 12))
text = text.replace("@BODY6@", body(6, " " * 12))
text = text.replace("@CONS6@", constraints(6, " " * 12))
out = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src",
                   "ff", "mul_asm_x86.hpp")
with open(out, "w") as f:
    f.write(text)
print("wrote", sum(1 for _ in open(out)), "lines")
