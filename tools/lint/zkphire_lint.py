#!/usr/bin/env python3
"""zkphire-lint: project-invariant static analysis for the zkPHIRE tree.

Four checkers enforce invariants that ordinary compilers and sanitizers
cannot see (see DESIGN.md "Static analysis"):

  ct-kernel               In the field/curve kernel directories, flag
                          control flow (if / ternary / && / || / loop
                          conditions), array subscripts, and integer
                          div/mod whose data flows from secret limb
                          values. Escape hatch:
                          `// zkphire-lint: ct-exempt(reason)`.
  lock-order              Flag lock_guard / unique_lock / scoped_lock
                          acquisition sequences that contradict the
                          declared lock-order manifest
                          (tools/lint/zkphire_lint.json, "lockOrder").
  parallel-capture        Flag writes to [&]-captured variables inside
                          rt::parallelFor / parallelForChunks /
                          parallelReduce bodies when the write is not
                          subscripted by a loop-local index — the
                          any-thread-count determinism guard.
  transcript-determinism  Ban unordered-container use, rand()/srand,
                          std::random_device, and pointer-keyed ordered
                          containers in any TU that (transitively) feeds
                          hash::Transcript.

Front-ends: when the libclang Python bindings are importable the AST
front-end drives the analysis (accurate function extents, TU set straight
from the compilation database); otherwise a built-in C++ lexer front-end
produces the same findings from the same token-level semantics. Both are
driven by compile_commands.json (-p BUILDDIR), so the file set always
matches what is actually compiled. Rule ids and exemption syntax are
identical across front-ends; CI pins --engine=lexer for the gating run so
findings never depend on the installed clang version.

Exemption syntax (all checkers):
  // zkphire-lint: ct-exempt(reason)        ct-kernel, this line / next line,
                                            or the whole next function when
                                            the comment stands alone directly
                                            above a definition
  // zkphire-lint: ct-exempt-file(reason)   ct-kernel, whole file
  // zkphire-lint: allow(rule-id) reason    any rule, this line / next line
  // zkphire-lint: allow-file(rule-id) reason   any rule, whole file

Exit status: 0 when no findings, 1 when findings, 2 on usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from dataclasses import dataclass, field

# --------------------------------------------------------------------------
# Tokenizer
# --------------------------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
      (?P<comment>//[^\n]*|/\*.*?\*/)
    | (?P<rawstr>R"(?P<rawdelim>[^(\s]*)\(.*?\)(?P=rawdelim)")
    | (?P<str>"(?:\\.|[^"\\\n])*")
    | (?P<chr>'(?:\\.|[^'\\\n])*')
    | (?P<num>(?:0[xX][0-9a-fA-F']+|\d[\d']*(?:\.\d*)?(?:[eE][+-]?\d+)?)\w*)
    | (?P<id>[A-Za-z_]\w*)
    | (?P<punct><<=|>>=|->\*|\.\.\.|::|->|\+\+|--|<<|>>|<=|>=|==|!=|&&|\|\|
        |\+=|-=|\*=|/=|%=|&=|\|=|\^=|\[\[|\]\]|[{}()\[\];:,.<>+\-*/%&|^!~?=])
    | (?P<other>\S)
    """,
    re.VERBOSE | re.DOTALL,
)

PREPROC_RE = re.compile(r"^[ \t]*#", re.M)

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "do", "else"}
TYPEISH = {
    "const", "auto", "unsigned", "signed", "long", "short", "int", "bool",
    "char", "double", "float", "void", "static", "constexpr", "inline",
    "volatile", "mutable", "register", "typename", "struct", "class",
}


@dataclass
class Tok:
    kind: str  # id | num | punct | str | chr
    text: str
    line: int


@dataclass
class Directive:
    line: int
    kind: str  # ct-exempt | ct-exempt-file | allow | allow-file
    arg: str  # rule id for allow*, reason for ct-exempt*
    standalone: bool  # no code tokens share the line


DIRECTIVE_RE = re.compile(
    r"zkphire-lint:\s*(ct-exempt-file|ct-exempt|allow-file|allow)\s*\(([^)]*)\)"
)


def strip_preprocessor(text: str) -> tuple[str, list[tuple[int, str]]]:
    """Blank out preprocessor logical lines; return (text, [(line, include)])."""
    lines = text.split("\n")
    includes = []
    i = 0
    while i < len(lines):
        if re.match(r"^[ \t]*#", lines[i]):
            m = re.search(r'#\s*include\s+"([^"]+)"', lines[i])
            if m:
                includes.append((i + 1, m.group(1)))
            # Honour backslash continuations inside macro definitions.
            j = i
            while j < len(lines) and lines[j].rstrip().endswith("\\"):
                lines[j] = ""
                j += 1
            if j < len(lines):
                lines[j] = ""
            i = j + 1
        else:
            i += 1
    return "\n".join(lines), includes


def tokenize(text: str) -> tuple[list[Tok], list[Directive]]:
    toks: list[Tok] = []
    directives: list[Directive] = []
    line = 1
    pos = 0
    code_lines: set[int] = set()
    pending: list[tuple[int, str, str]] = []
    for m in TOKEN_RE.finditer(text):
        start = m.start()
        line += text.count("\n", pos, start)
        pos = start
        kind = m.lastgroup
        tok_text = m.group()
        if kind == "comment":
            for dm in DIRECTIVE_RE.finditer(tok_text):
                pending.append((line, dm.group(1), dm.group(2).strip()))
        elif kind in ("id", "num", "punct", "str", "chr", "rawstr", "other"):
            if kind == "rawstr":
                kind = "str"
            if kind != "other":
                toks.append(Tok(kind, tok_text, line))
            code_lines.add(line)
    for dline, dkind, darg in pending:
        directives.append(
            Directive(dline, dkind, darg, standalone=dline not in code_lines)
        )
    return toks, directives


# --------------------------------------------------------------------------
# Findings and exemptions
# --------------------------------------------------------------------------


@dataclass
class Finding:
    path: str
    line: int
    rule: str
    message: str


class Exemptions:
    def __init__(self, directives: list[Directive], functions):
        self.file_rules: set[str] = set()
        self.line_rules: dict[int, set[str]] = {}
        self.fn_ct_lines: list[tuple[int, int]] = []  # ct-exempt fn extents
        for d in directives:
            rule = "ct-kernel" if d.kind.startswith("ct-exempt") else d.arg
            if d.kind.endswith("-file"):
                self.file_rules.add(rule)
                continue
            covered = {d.line, d.line + 1}
            if d.standalone and d.kind == "ct-exempt":
                # A standalone ct-exempt directly above a function definition
                # exempts the whole function.
                for fn in functions or []:
                    if fn.sig_line - 1 <= d.line <= fn.body_open_line:
                        self.fn_ct_lines.append((fn.sig_line, fn.body_close_line))
                        break
            for ln in covered:
                self.line_rules.setdefault(ln, set()).add(rule)

    def exempt(self, rule: str, line: int) -> bool:
        if rule in self.file_rules or "*" in self.file_rules:
            return True
        rules = self.line_rules.get(line) or self.line_rules.get(line - 0)
        if rules and (rule in rules or "*" in rules):
            return True
        # A directive on the line above covers this line (set at build time),
        # so only function extents remain to check.
        if rule == "ct-kernel":
            for lo, hi in self.fn_ct_lines:
                if lo <= line <= hi:
                    return True
        return False


# --------------------------------------------------------------------------
# Function extraction (lexer front-end)
# --------------------------------------------------------------------------


@dataclass
class Function:
    name: str
    sig_line: int
    body_open_line: int
    body_close_line: int
    param_toks: list[Tok] = field(default_factory=list)
    body_toks: list[Tok] = field(default_factory=list)


def match_forward(toks, i, open_t, close_t):
    """Index of the token matching open_t at toks[i]; -1 if unmatched."""
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == open_t:
            depth += 1
        elif toks[j].text == close_t:
            depth -= 1
            if depth == 0:
                return j
    return -1


def match_backward(toks, i, open_t, close_t):
    depth = 0
    for j in range(i, -1, -1):
        if toks[j].text == close_t:
            depth += 1
        elif toks[j].text == open_t:
            depth -= 1
            if depth == 0:
                return j
    return -1


def extract_functions(toks: list[Tok]) -> list[Function]:
    """Heuristic function-definition finder for the house style."""
    fns: list[Function] = []
    i = 0
    n = len(toks)
    while i < n:
        if toks[i].text != "{":
            i += 1
            continue
        # Walk back over tokens allowed between ')' and '{'.
        j = i - 1
        while j >= 0 and (
            toks[j].text in ("const", "noexcept", "override", "final", "mutable")
            or toks[j].text in ("&", "&&")
        ):
            j -= 1
        # Optional trailing return type: '-> type...' — walk back to ')'.
        k = j
        while k >= 0 and toks[k].text not in (")", ";", "{", "}"):
            k -= 1
        if k < 0 or toks[k].text != ")":
            i += 1
            continue
        if k != j:
            has_arrow = any(t.text == "->" for t in toks[k + 1 : j + 1])
            if not has_arrow:
                i += 1
                continue
        lp = match_backward(toks, k, "(", ")")
        if lp <= 0:
            i += 1
            continue
        name_idx = lp - 1
        if toks[name_idx].kind != "id" and toks[name_idx].text not in (
            "]", ">", "==", "!=", "<=", ">=", "+", "-", "*", "/", "%", "+=",
            "-=", "*=", "&", "|", "^", "()", "[]",
        ):
            i += 1
            continue
        name = toks[name_idx].text
        if name in CONTROL_KEYWORDS or toks[name_idx].text == "]":
            i += 1
            continue
        # operator== etc.: name token may be punctuation preceded by
        # 'operator'.
        if toks[name_idx].kind == "punct":
            if name_idx >= 1 and toks[name_idx - 1].text == "operator":
                name = "operator" + name
            else:
                i += 1
                continue
        elif name_idx >= 1 and toks[name_idx - 1].text == "operator":
            name = "operator " + name
        close = match_forward(toks, i, "{", "}")
        if close < 0:
            i += 1
            continue
        # Signature start: scan back to the previous statement boundary.
        s = name_idx - 1
        while s >= 0 and toks[s].text not in (";", "{", "}", ")"):
            s -= 1
        sig_line = toks[s + 1].line if s + 1 <= name_idx else toks[name_idx].line
        fns.append(
            Function(
                name=name,
                sig_line=sig_line,
                body_open_line=toks[i].line,
                body_close_line=toks[close].line,
                param_toks=toks[lp + 1 : k],
                body_toks=toks[i + 1 : close],
            )
        )
        i = i + 1  # nested lambdas are analyzed within the enclosing extent
    # Drop nested extents (lambda bodies matched as functions): keep outermost.
    fns.sort(key=lambda f: (f.sig_line, -(f.body_close_line)))
    out: list[Function] = []
    for f in fns:
        if out and f.body_open_line >= out[-1].body_open_line and f.body_close_line <= out[-1].body_close_line:
            continue
        out.append(f)
    return out


# --------------------------------------------------------------------------
# ct-kernel checker
# --------------------------------------------------------------------------


class CtConfig:
    def __init__(self, cfg: dict):
        self.paths = cfg.get("paths", ["src/ff", "src/ec"])
        self.public_roots = set(
            cfg.get("publicRoots", ["consts", "kMod", "kInv", "modulus",
                                    "modulusBits", "params"])
        )
        self.tainted_members = set(
            cfg.get("taintedMembers", ["limb", "v", "X", "Y", "Z"])
        )
        self.tainted_param_types = set(
            cfg.get("taintedParamTypes",
                    ["BigInt", "Big", "PrimeField", "Fr", "Fq",
                     "G1Affine", "G1Jacobian"])
        )
        self.tainted_calls = set(
            cfg.get("taintedCalls",
                    ["pow", "square", "inverse", "toBig", "montMul",
                     "montSquare", "montMulGeneric", "next", "dbl", "neg"])
        )


def split_params(toks: list[Tok]) -> list[list[Tok]]:
    out, cur, depth = [], [], 0
    for t in toks:
        if t.text in ("(", "<", "[", "{"):
            depth += 1
        elif t.text == "<<":
            depth += 2
        elif t.text == ">>":
            depth -= 2  # template close `vector<vector<Fr>>` lexes as one tok
        elif t.text in (")", ">", "]", "}"):
            depth -= 1
        if t.text == "," and depth == 0:
            out.append(cur)
            cur = []
        else:
            cur.append(t)
    if cur:
        out.append(cur)
    return out


def param_name_and_taint(param: list[Tok], cfg: CtConfig):
    """Return (name, tainted) for one parameter declaration."""
    # Strip default argument.
    for idx, t in enumerate(param):
        if t.text == "=":
            param = param[:idx]
            break
    ids = [t for t in param if t.kind == "id"]
    if not ids:
        return None, False
    name = ids[-1].text
    type_ids = {t.text for t in ids[:-1]}
    tainted = bool(type_ids & cfg.tainted_param_types)
    # Raw limb pointers: `u64 *a` / `const u64 *a`.
    if "u64" in type_ids or "uint64_t" in type_ids:
        if any(t.text == "*" for t in param):
            tainted = True
        elif len(ids) == 2 and ids[0].text in ("u64", "uint64_t"):
            tainted = True  # by-value limb word
    return name, tainted


def mask_assert_extents(toks: list[Tok]) -> list[bool]:
    """True for tokens inside assert(...) / static_assert(...)."""
    masked = [False] * len(toks)
    i = 0
    while i < len(toks):
        if toks[i].kind == "id" and toks[i].text in ("assert", "static_assert") \
                and i + 1 < len(toks) and toks[i + 1].text == "(":
            close = match_forward(toks, i + 1, "(", ")")
            if close > 0:
                for j in range(i, close + 1):
                    masked[j] = True
                i = close + 1
                continue
        i += 1
    return masked


SIZE_TYPES = {"size_t", "int", "unsigned", "uint32_t", "u32", "bool",
              "uint16_t", "uint8_t", "ptrdiff_t"}
PUBLIC_MEMBER_CALLS = {"size", "empty", "capacity", "length"}


def is_public_member_use(span, idx):
    """xs.size() and friends read public shape, not limb data."""
    return (idx + 2 < len(span) and span[idx + 1].text in (".", "->")
            and span[idx + 2].text in PUBLIC_MEMBER_CALLS)


def compute_taint(body: list[Tok], tainted: set[str], public: set[str],
                  cfg: CtConfig) -> None:
    """Fixpoint taint propagation over assignments and declarations."""

    def expr_tainted(span: list[Tok]) -> bool:
        for idx, t in enumerate(span):
            if t.kind != "id":
                continue
            if is_public_member_use(span, idx):
                continue
            if t.text in tainted and t.text not in public:
                return True
            if t.text == "limb":
                # member access `base.limb` — public bases are clean.
                base = None
                if idx >= 2 and span[idx - 1].text in (".", "->"):
                    b = idx - 2
                    while b >= 2 and span[b].kind == "id" and span[b - 1].text in (".", "->"):
                        b -= 2
                    base = span[b].text if span[b].kind == "id" else None
                if base is None or base not in public:
                    return True
            elif t.text in cfg.tainted_members and t.text != "limb":
                prev = span[idx - 1].text if idx else ""
                nxt = span[idx + 1].text if idx + 1 < len(span) else ""
                # Bare member read/use (not a declaration of a same-named var).
                if prev in (".", "->") or nxt in (".", ",", ")", ";", "*",
                                                  "+", "-", "==", "!=", "["):
                    b_ok = False
                    if prev in (".", "->") and idx >= 2 and span[idx - 2].kind == "id":
                        b_ok = span[idx - 2].text in public
                    if not b_ok:
                        return True
            if t.text in cfg.tainted_calls and idx + 1 < len(span) \
                    and span[idx + 1].text == "(":
                return True
        return False

    def expr_public(span: list[Tok]) -> bool:
        has_root = False
        for idx, t in enumerate(span):
            if t.kind == "id":
                if t.text in cfg.public_roots or t.text in public:
                    has_root = True
                elif t.text in tainted:
                    return False
        return has_root

    for _ in range(8):
        changed = False
        i = 0
        n = len(body)
        while i < n:
            t = body[i]
            if t.text in ASSIGN_OPS and t.kind == "punct":
                # LHS base identifier: walk back over member/subscript chain.
                j = i - 1
                through_ptr = False
                while j >= 0:
                    if body[j].text in ("]",):
                        j = match_backward(body, j, "[", "]") - 1
                    elif body[j].kind == "id":
                        if j >= 1 and body[j - 1].text in (".", "->", "::"):
                            through_ptr |= body[j - 1].text == "->"
                            j -= 2
                        else:
                            break
                    else:
                        break
                base = body[j].text if j >= 0 and body[j].kind == "id" else None
                # A write through `ptr->member` does not make the pointer
                # itself secret (branching on the pointer is a nullness test).
                if through_ptr:
                    base = None
                # Size-typed declarations (loop bounds, counts, widths) are
                # public shape data, never limb values.
                if base is not None and j == i - 1:
                    b = j - 1
                    type_ids = []
                    while b >= 0 and (body[b].kind == "id"
                                      or body[b].text in ("::", "<", ">", "*",
                                                          "&") or
                                      body[b].text in TYPEISH):
                        if body[b].kind == "id":
                            type_ids.append(body[b].text)
                        b -= 1
                    if set(type_ids) & SIZE_TYPES:
                        public.add(base)
                        base = None
                # RHS until ';' or unbalanced ')'.
                k = i + 1
                depth = 0
                rhs = []
                while k < n:
                    tk = body[k]
                    if tk.text in ("(", "[", "{"):
                        depth += 1
                    elif tk.text in (")", "]", "}"):
                        if depth == 0:
                            break
                        depth -= 1
                    elif tk.text in (";", ",") and depth == 0:
                        break
                    rhs.append(tk)
                    k += 1
                if base:
                    lhs_member = any(
                        x.text == "limb" for x in body[j:i]
                    )
                    if expr_tainted(rhs) or (lhs_member and base not in public):
                        if base not in tainted:
                            tainted.add(base)
                            changed = True
                        public.discard(base)
                    elif expr_public(rhs) and base not in tainted:
                        if base not in public:
                            public.add(base)
                            changed = True
                i = k
            else:
                i += 1
        if not changed:
            break


def condition_spans(body: list[Tok]):
    """Yield (line, kind, span) for branch/loop conditions and ternaries."""
    n = len(body)
    i = 0
    while i < n:
        t = body[i]
        if t.kind == "id" and t.text in ("if", "while") and i + 1 < n:
            nxt = i + 1
            if body[nxt].text == "constexpr":
                nxt += 1
            if nxt < n and body[nxt].text == "(":
                close = match_forward(body, nxt, "(", ")")
                if close > 0:
                    yield (t.line, "branch", body[nxt + 1 : close])
                    i = nxt + 1
                    continue
        elif t.kind == "id" and t.text == "for" and i + 1 < n and body[i + 1].text == "(":
            close = match_forward(body, i + 1, "(", ")")
            if close > 0:
                inner = body[i + 2 : close]
                semis = [idx for idx, x in enumerate(inner) if x.text == ";"]
                if len(semis) >= 2:
                    cond = inner[semis[0] + 1 : semis[1]]
                    ln = cond[0].line if cond else t.line
                    yield (ln, "loop", cond)
                i += 2
                continue
        elif t.text == "?" and t.kind == "punct":
            j = i - 1
            depth = 0
            span = []
            while j >= 0:
                x = body[j]
                if x.text in (")", "]"):
                    depth += 1
                elif x.text in ("(", "["):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and (x.text in (";", ",", "{", "}", ":",
                                                "return", "?")
                                     or x.text in ASSIGN_OPS):
                    break
                span.append(x)
                j -= 1
            yield (t.line, "ternary", list(reversed(span)))
        elif t.text in ("&&", "||") and t.kind == "punct":
            j = i - 1
            depth = 0
            span = []
            while j >= 0:
                x = body[j]
                if x.text in (")", "]"):
                    depth += 1
                elif x.text in ("(", "["):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and (x.text in (";", ",", "{", "}", "return",
                                                "&&", "||")
                                     or x.text in ASSIGN_OPS):
                    break
                span.append(x)
                j -= 1
            k = i + 1
            depth = 0
            while k < n:
                x = body[k]
                if x.text in ("(", "["):
                    depth += 1
                elif x.text in (")", "]"):
                    if depth == 0:
                        break
                    depth -= 1
                elif depth == 0 and x.text in (";", ",", "{", "}", "&&", "||", "?"):
                    break
                span.append(x)
                k += 1
            yield (t.line, "shortcircuit", span)
        i += 1


def check_ct_kernel(path, toks, directives, functions, cfg: CtConfig,
                    findings):
    ex = Exemptions(directives, functions)

    def taint_set_for(fn: Function):
        tainted: set[str] = set()
        public: set[str] = set()
        for p in split_params(fn.param_toks):
            name, is_tainted = param_name_and_taint(p, cfg)
            if name and is_tainted:
                tainted.add(name)
        compute_taint(fn.body_toks, tainted, public, cfg)
        return tainted, public

    for fn in functions:
        tainted, public = taint_set_for(fn)
        body = fn.body_toks
        masked = mask_assert_extents(body)
        idx_of = {id(t): i for i, t in enumerate(body)}

        def is_masked(span):
            return any(masked[idx_of[id(t)]] for t in span if id(t) in idx_of)

        def span_tainted(span):
            for i2, t in enumerate(span):
                if t.kind != "id":
                    continue
                if is_public_member_use(span, i2):
                    continue
                if t.text in tainted and t.text not in public:
                    return t.text
                if t.text in cfg.tainted_members:
                    prev = span[i2 - 1].text if i2 else ""
                    base_ok = False
                    if prev in (".", "->") and i2 >= 2 and span[i2 - 2].kind == "id":
                        base_ok = span[i2 - 2].text in public
                    elif t.text == "limb" and prev not in (".", "->"):
                        base_ok = False
                    elif t.text != "limb" and prev not in (".", "->"):
                        continue
                    if not base_ok:
                        return t.text
            return None

        # 1. Conditions.
        for line, kind, span in condition_spans(body):
            if is_masked(span):
                continue
            hit = span_tainted(span)
            if hit and not ex.exempt("ct-kernel", line):
                findings.append(Finding(
                    path, line, "ct-kernel",
                    f"secret-dependent {kind} condition on limb data "
                    f"(via '{hit}') in {fn.name}()"))

        # 2. Array subscripts.
        for i, t in enumerate(body):
            if t.text != "[" or t.kind != "punct":
                continue
            if i == 0 or body[i - 1].text not in ("]",) and body[i - 1].kind != "id" \
                    and body[i - 1].text != ")":
                continue  # lambda capture list / attribute, not a subscript
            if body[i - 1].text == "[" or (i + 1 < len(body) and body[i + 1].text == "["):
                continue
            close = match_forward(body, i, "[", "]")
            if close < 0:
                continue
            span = body[i + 1 : close]
            if not span or is_masked(span):
                continue
            hit = span_tainted(span)
            if hit and not ex.exempt("ct-kernel", t.line):
                findings.append(Finding(
                    path, t.line, "ct-kernel",
                    f"secret-dependent array index (via '{hit}') in {fn.name}()"))

        # 3. Integer division / modulo.
        for i, t in enumerate(body):
            if t.text not in ("/", "%") or t.kind != "punct":
                continue
            if masked[i]:
                continue
            neighbors = []
            if i >= 1:
                if body[i - 1].kind == "id":
                    neighbors.append(body[i - 1])
                elif body[i - 1].text in ("]", ")"):
                    # Collect the balanced group and its leading id chain:
                    # `big.limb[i] % 7` divides a limb, not an id neighbor.
                    op = match_backward(body, i - 1,
                                        "[" if body[i - 1].text == "]" else "(",
                                        body[i - 1].text)
                    b = op - 1
                    while b >= 0 and (body[b].kind == "id"
                                      or body[b].text in (".", "->", "::")):
                        b -= 1
                    neighbors.extend(body[b + 1 : i])
            if i + 1 < len(body) and body[i + 1].kind == "id":
                neighbors.append(body[i + 1])
            hit = span_tainted(neighbors)
            if hit and not ex.exempt("ct-kernel", t.line):
                findings.append(Finding(
                    path, t.line, "ct-kernel",
                    f"variable-latency integer {'division' if t.text == '/' else 'modulo'}"
                    f" on limb data (via '{hit}') in {fn.name}()"))


# --------------------------------------------------------------------------
# lock-order checker
# --------------------------------------------------------------------------

LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock"}


def check_lock_order(path, toks, directives, functions, lock_cfg, findings):
    ex = Exemptions(directives, functions)
    edges = {(a, b) for a, b in lock_cfg.get("order", [])}
    aliases = lock_cfg.get("aliases", {})

    def canon(name):
        return aliases.get(name, name)

    for fn in functions:
        body = fn.body_toks
        held: list[tuple[str, int, str]] = []  # (mutex, depth, guard var)
        depth = 0
        i = 0
        n = len(body)
        while i < n:
            t = body[i]
            if t.text == "{":
                depth += 1
            elif t.text == "}":
                depth -= 1
                held = [h for h in held if h[1] <= depth]
            elif t.kind == "id" and t.text in LOCK_TYPES:
                # std::lock_guard<std::mutex> name(mu[, ...]);
                j = i + 1
                if j < n and body[j].text == "<":
                    close = match_forward(body, j, "<", ">")
                    j = close + 1 if close > 0 else j
                if j < n and body[j].kind == "id":
                    guard = body[j].text
                    j += 1
                    if j < n and body[j].text == "(":
                        close = match_forward(body, j, "(", ")")
                        args = body[j + 1 : close] if close > 0 else []
                        arg_ids = [x.text for x in args if x.kind == "id"]
                        if arg_ids:
                            mtx = canon(arg_ids[-1] if args and args[-1].kind == "id"
                                        else arg_ids[0])
                            # first argument's trailing identifier
                            first_arg = split_params(args)[0] if args else []
                            fids = [x.text for x in first_arg if x.kind == "id"]
                            if fids:
                                mtx = canon(fids[-1])
                            for held_mtx, _, _ in held:
                                if (mtx, held_mtx) in edges and not ex.exempt(
                                        "lock-order", t.line):
                                    findings.append(Finding(
                                        path, t.line, "lock-order",
                                        f"acquires '{mtx}' while holding "
                                        f"'{held_mtx}' in {fn.name}(); manifest "
                                        f"order requires {mtx} -> {held_mtx}"))
                            held.append((mtx, depth, guard))
                        i = close if close > 0 else i
            elif t.kind == "id" and i + 2 < n and body[i + 1].text == "." \
                    and body[i + 2].text in ("unlock", "lock"):
                guard = t.text
                if body[i + 2].text == "unlock":
                    held = [h for h in held if h[2] != guard]
                i += 2
            i += 1


# --------------------------------------------------------------------------
# parallel-capture checker
# --------------------------------------------------------------------------


def find_lambdas(toks, start, end):
    """Yield (cap_span, param_span, body_span, line) for lambdas in range."""
    i = start
    while i < end:
        t = toks[i]
        if t.text == "[" and t.kind == "punct":
            prev = toks[i - 1].text if i > start else ""
            if prev and (toks[i - 1].kind == "id" or prev in (")", "]")):
                i += 1
                continue  # subscript
            close = match_forward(toks, i, "[", "]")
            if close < 0 or close >= end:
                i += 1
                continue
            j = close + 1
            params = []
            if j < end and toks[j].text == "(":
                pclose = match_forward(toks, j, "(", ")")
                if pclose < 0 or pclose >= end:
                    i = close + 1
                    continue
                params = toks[j + 1 : pclose]
                j = pclose + 1
            while j < end and (toks[j].kind == "id" or toks[j].text in ("->", "::", "<", ">", "&", "*")):
                j += 1
            if j < end and toks[j].text == "{":
                bclose = match_forward(toks, j, "{", "}")
                if bclose > 0 and bclose <= end:
                    yield (toks[i + 1 : close], params, (j + 1, bclose), t.line)
                    i = j  # recurse into body for nested lambdas via caller
                    continue
            i = close + 1
        else:
            i += 1


def body_declared_locals(toks, lo, hi):
    """Identifiers declared inside the extent (heuristic)."""
    decls: set[str] = set()
    i = lo
    stmt_start = True
    while i < hi:
        t = toks[i]
        if t.text in (";", "{", "}"):
            stmt_start = True
            i += 1
            continue
        if t.kind == "id" and t.text == "for" and i + 1 < hi and toks[i + 1].text == "(":
            # for-init declaration.
            close = match_forward(toks, i + 1, "(", ")")
            inner = toks[i + 2 : close] if close > 0 else []
            semi = next((k for k, x in enumerate(inner) if x.text == ";"), None)
            colon = next((k for k, x in enumerate(inner) if x.text == ":"), None)
            init = inner[:semi] if semi is not None else (
                inner[:colon] if colon is not None else [])
            ids = [x.text for x in init if x.kind == "id"]
            eq = next((k for k, x in enumerate(init) if x.text == "="), None)
            if eq is not None:
                ids = [x.text for x in init[:eq] if x.kind == "id"]
            if len(ids) >= 2 or (len(ids) == 1 and any(
                    x.text in TYPEISH for x in init)):
                decls.add(ids[-1])
            elif len(ids) == 1 and colon is not None:
                decls.add(ids[0])
            i += 2
            stmt_start = False
            continue
        if stmt_start and (t.kind == "id" or t.text == "const"):
            # TYPE [&*] name ( = | ; | ( | { )
            j = i
            ids = []
            while j < hi and (toks[j].kind == "id" or toks[j].text in
                              ("::", "<", ">", ",", "&", "*") or
                              toks[j].text in TYPEISH):
                if toks[j].kind == "id" and toks[j].text not in TYPEISH:
                    ids.append(toks[j].text)
                j += 1
            if j < hi and toks[j].text in ("=", ";", "{") and ids:
                has_type_kw = any(toks[k].text in TYPEISH
                                  for k in range(i, j))
                if len(ids) >= 2 or has_type_kw:
                    decls.add(ids[-1])
        stmt_start = False
        i += 1
    return decls


def check_parallel_capture(path, toks, directives, functions, par_cfg,
                           findings):
    ex = Exemptions(directives, functions)
    entries = set(par_cfg.get("entryPoints",
                              ["parallelFor", "parallelForChunks",
                               "parallelReduce"]))
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in entries:
            continue
        if i + 1 < n and toks[i + 1].text == "<":
            close_t = match_forward(toks, i + 1, "<", ">")
            call_open = close_t + 1 if close_t > 0 else i + 1
        else:
            call_open = i + 1
        if call_open >= n or toks[call_open].text != "(":
            continue
        call_close = match_forward(toks, call_open, "(", ")")
        if call_close < 0:
            continue
        for caps, params, (blo, bhi), line in find_lambdas(
                toks, call_open + 1, call_close):
            cap_texts = [c.text for c in caps]
            if "&" not in cap_texts:
                continue  # value captures cannot write shared state
            value_caps = set()
            k = 0
            while k < len(caps):
                if caps[k].kind == "id":
                    if k == 0 or caps[k - 1].text != "&":
                        value_caps.add(caps[k].text)
                k += 1
            local = set()
            for p in split_params(params):
                ids = [x.text for x in p if x.kind == "id"]
                if ids:
                    local.add(ids[-1])
            local |= body_declared_locals(toks, blo, bhi)
            safe_index_ids = local | value_caps
            j = blo
            while j < bhi:
                x = toks[j]
                wrote = None
                if x.text in ASSIGN_OPS and x.kind == "punct":
                    wrote = j
                elif x.text in ("++", "--"):
                    # pre/post increment
                    tgt = None
                    if j + 1 < bhi and toks[j + 1].kind == "id":
                        tgt = j + 1
                    elif j - 1 >= blo and toks[j - 1].kind == "id":
                        tgt = j - 1
                    if tgt is not None:
                        name = toks[tgt].text
                        if name not in local and not ex.exempt(
                                "parallel-capture", x.line):
                            findings.append(Finding(
                                path, x.line, "parallel-capture",
                                f"increment of captured '{name}' inside a "
                                f"parallel body (not loop-indexed)"))
                    j += 1
                    continue
                if wrote is None:
                    j += 1
                    continue
                # LHS chain.
                b = wrote - 1
                subs_ids: set[str] = set()
                while b >= blo:
                    if toks[b].text == "]":
                        ob = match_backward(toks, b, "[", "]")
                        subs_ids |= {y.text for y in toks[ob + 1 : b]
                                     if y.kind == "id"}
                        b = ob - 1
                    elif toks[b].kind == "id":
                        if b - 1 >= blo and toks[b - 1].text in (".", "->", "::"):
                            b -= 2
                        else:
                            break
                    elif toks[b].text == ")":
                        b = match_backward(toks, b, "(", ")") - 1
                    elif toks[b].text == "*":
                        b -= 1
                    else:
                        break
                base = toks[b].text if b >= blo and toks[b].kind == "id" else None
                if base is None or base in local:
                    j += 1
                    continue
                if subs_ids & safe_index_ids:
                    j += 1
                    continue
                if not ex.exempt("parallel-capture", x.line):
                    findings.append(Finding(
                        path, x.line, "parallel-capture",
                        f"write to captured '{base}' inside a parallel body "
                        f"is not subscripted by a loop-local index"))
                j += 1


# --------------------------------------------------------------------------
# transcript-determinism checker
# --------------------------------------------------------------------------

UNORDERED = {"unordered_map", "unordered_set", "unordered_multimap",
             "unordered_multiset"}


def check_transcript(path, toks, directives, functions, findings):
    ex = Exemptions(directives, functions)
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id":
            continue
        if t.text in UNORDERED:
            if not ex.exempt("transcript-determinism", t.line):
                findings.append(Finding(
                    path, t.line, "transcript-determinism",
                    f"'{t.text}' in a transcript-feeding TU: iteration order "
                    f"is implementation-defined; use std::map / sorted vectors"))
        elif t.text in ("rand", "srand") and i + 1 < n and toks[i + 1].text == "(":
            prev = toks[i - 1].text if i else ""
            if prev in (".", "->"):
                continue
            if not ex.exempt("transcript-determinism", t.line):
                findings.append(Finding(
                    path, t.line, "transcript-determinism",
                    f"'{t.text}()' in a transcript-feeding TU: seeds "
                    f"nondeterminism into proof bytes; use ff::Rng"))
        elif t.text == "random_device":
            if not ex.exempt("transcript-determinism", t.line):
                findings.append(Finding(
                    path, t.line, "transcript-determinism",
                    "'std::random_device' in a transcript-feeding TU; use "
                    "ff::Rng with an explicit seed"))
        elif t.text in ("map", "set") and i + 1 < n and toks[i + 1].text == "<":
            close = match_forward(toks, i + 1, "<", ">")
            if close < 0:
                continue
            inner = toks[i + 2 : close]
            key = split_params(inner)[0] if inner else []
            if key and key[-1].text == "*":
                if not ex.exempt("transcript-determinism", t.line):
                    findings.append(Finding(
                        path, t.line, "transcript-determinism",
                        "pointer-keyed ordered container in a "
                        "transcript-feeding TU: address order varies per run"))


# --------------------------------------------------------------------------
# File set resolution
# --------------------------------------------------------------------------


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        return None
    with open(db_path) as f:
        return json.load(f)


def resolve_files(root, build_dir, path_args):
    """TU list from the compilation database + transitively included
    project headers; falls back to a directory walk without a database."""
    files: set[str] = set()
    db = load_compile_db(build_dir) if build_dir else None
    if db:
        for entry in db:
            p = os.path.normpath(os.path.join(entry.get("directory", root),
                                              entry["file"]))
            if os.path.isfile(p):
                files.add(p)
    # Walk explicit path arguments too: fixture/TU-less sources (e.g.
    # tests/lint_fixtures) are deliberately absent from the database.
    for base in (path_args or ([] if db else [os.path.join(root, "src")])):
        for dirpath, _, names in os.walk(base):
            for nm in names:
                if nm.endswith(".cpp"):
                    files.add(os.path.normpath(os.path.join(dirpath, nm)))
    # Header closure via quoted includes, resolved against src/.
    src_root = os.path.join(root, "src")
    include_map: dict[str, list[str]] = {}
    queue = list(files)
    seen = set(queue)
    while queue:
        p = queue.pop()
        try:
            with open(p, errors="replace") as f:
                text = f.read()
        except OSError:
            continue
        incs = []
        for m in re.finditer(r'#\s*include\s+"([^"]+)"', text):
            cand = os.path.normpath(os.path.join(src_root, m.group(1)))
            if not os.path.isfile(cand):
                cand = os.path.normpath(os.path.join(os.path.dirname(p),
                                                     m.group(1)))
            if os.path.isfile(cand):
                incs.append(cand)
                if cand not in seen:
                    seen.add(cand)
                    queue.append(cand)
        include_map[p] = incs
    all_files = seen
    if path_args:
        bases = [os.path.abspath(b) for b in path_args]
        all_files = {p for p in all_files
                     if any(os.path.abspath(p).startswith(b + os.sep)
                            or os.path.abspath(p) == b for b in bases)}
    return sorted(all_files), include_map


def transcript_closure(include_map, roots):
    """Files whose include closure reaches any root header."""
    root_paths = set()
    for p in include_map:
        for r in roots:
            if p.replace("\\", "/").endswith(r):
                root_paths.add(p)
    feeding = set(root_paths)
    changed = True
    while changed:
        changed = False
        for p, incs in include_map.items():
            if p in feeding:
                continue
            if any(i in feeding for i in incs):
                feeding.add(p)
                changed = True
    return feeding


# --------------------------------------------------------------------------
# Engines
# --------------------------------------------------------------------------


def analyze_file(path, rel, cfg, in_transcript_set, findings,
                 clang_functions=None):
    try:
        with open(path, errors="replace") as f:
            raw = f.read()
    except OSError as e:
        print(f"zkphire-lint: cannot read {path}: {e}", file=sys.stderr)
        return
    text, _ = strip_preprocessor(raw)
    toks, directives = tokenize(text)
    functions = clang_functions if clang_functions is not None \
        else extract_functions(toks)

    def in_paths(section):
        for base in section.get("paths", ["src"]):
            nb = base.replace("\\", "/").rstrip("/") + "/"
            if rel.replace("\\", "/").startswith(nb) or \
                    rel.replace("\\", "/") == base.replace("\\", "/"):
                return True
        return False

    ct_cfg = CtConfig(cfg.get("ctKernel", {}))
    if any(rel.replace("\\", "/").startswith(b.rstrip("/") + "/")
           for b in ct_cfg.paths):
        check_ct_kernel(rel, toks, directives, functions, ct_cfg, findings)
    if in_paths(cfg.get("lockOrder", {})):
        check_lock_order(rel, toks, directives, functions,
                         cfg.get("lockOrder", {}), findings)
    if in_paths(cfg.get("parallelCapture", {})):
        check_parallel_capture(rel, toks, directives, functions,
                               cfg.get("parallelCapture", {}), findings)
    if in_transcript_set and in_paths(cfg.get("transcriptDeterminism", {})):
        check_transcript(rel, toks, directives, functions, findings)


def clang_function_extents(path, build_dir):
    """AST-accurate function extents via libclang; None when unavailable.

    The libclang front-end contributes precise definition extents (template
    instantiations, operators, out-of-line members) and the compile-command
    arguments for each TU; the token-level pass semantics are shared with
    the lexer front-end so rule ids and exemptions behave identically.
    """
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:
        return None
    args = ["-std=c++20"]
    db = None
    try:
        db = cindex.CompilationDatabase.fromDirectory(build_dir)
    except Exception:
        pass
    if db is not None:
        cmds = db.getCompileCommands(path)
        if cmds:
            raw = list(cmds[0].arguments)[1:-1]
            args = [a for a in raw if a not in ("-c", "-o")]
    try:
        tu = index.parse(path, args=args)
    except Exception:
        return None
    fns = []
    kinds = {
        cindex.CursorKind.FUNCTION_DECL,
        cindex.CursorKind.CXX_METHOD,
        cindex.CursorKind.FUNCTION_TEMPLATE,
        cindex.CursorKind.CONSTRUCTOR,
        cindex.CursorKind.DESTRUCTOR,
    }
    for cur in tu.cursor.walk_preorder():
        if cur.kind in kinds and cur.is_definition() and cur.location.file \
                and os.path.samefile(str(cur.location.file), path):
            body = None
            for ch in cur.get_children():
                if ch.kind == cindex.CursorKind.COMPOUND_STMT:
                    body = ch
            if body is None:
                continue
            with open(path, errors="replace") as f:
                seg = f.read()
            text, _ = strip_preprocessor(seg)
            # Re-tokenize just the extent for the shared analyses.
            lines = text.split("\n")
            lo = cur.extent.start.line
            hi = cur.extent.end.line
            chunk = "\n".join([""] * (lo - 1) + lines[lo - 1 : hi])
            ctoks, _ = tokenize(chunk)
            open_idx = next((k for k, t in enumerate(ctoks)
                             if t.text == "{" and t.line >= body.extent.start.line),
                            None)
            if open_idx is None:
                continue
            close_idx = match_forward(ctoks, open_idx, "{", "}")
            if close_idx < 0:
                continue
            # Parameter tokens: between the first '(' after the name and its
            # matching ')'.
            lp = next((k for k, t in enumerate(ctoks) if t.text == "("), None)
            params = []
            if lp is not None:
                rp = match_forward(ctoks, lp, "(", ")")
                if 0 < rp < open_idx:
                    params = ctoks[lp + 1 : rp]
            fns.append(Function(
                name=cur.spelling or "<anon>",
                sig_line=lo,
                body_open_line=ctoks[open_idx].line,
                body_close_line=ctoks[close_idx].line,
                param_toks=params,
                body_toks=ctoks[open_idx + 1 : close_idx],
            ))
    return fns


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

DEFAULT_CONFIG = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                              "zkphire_lint.json")


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="zkphire_lint.py",
        description="Project-invariant static analysis for zkPHIRE.")
    ap.add_argument("paths", nargs="*", default=[],
                    help="restrict analysis to these directories (default src)")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="directory holding compile_commands.json")
    ap.add_argument("--config", default=DEFAULT_CONFIG,
                    help="checker config + lock-order manifest (JSON)")
    ap.add_argument("--engine", choices=["auto", "lexer", "clang"],
                    default="auto",
                    help="front-end: libclang AST when available (auto), "
                         "the built-in lexer, or force either")
    ap.add_argument("--json", action="store_true", dest="json_out",
                    help="emit findings as JSON")
    ap.add_argument("--list-files", action="store_true",
                    help="print the resolved file set and exit")
    args = ap.parse_args(argv)

    root = os.getcwd()
    try:
        with open(args.config) as f:
            cfg = json.load(f)
    except OSError as e:
        print(f"zkphire-lint: cannot read config {args.config}: {e}",
              file=sys.stderr)
        return 2

    files, include_map = resolve_files(root, args.build_dir, args.paths)
    if not files:
        print("zkphire-lint: no files resolved (missing compile_commands.json"
              " and no path arguments?)", file=sys.stderr)
        return 2
    if args.list_files:
        for p in files:
            print(os.path.relpath(p, root))
        return 0

    roots = cfg.get("transcriptDeterminism", {}).get(
        "roots", ["hash/transcript.hpp"])
    feeding = transcript_closure(include_map, roots)

    use_clang = args.engine in ("auto", "clang")
    if args.engine == "clang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("zkphire-lint: --engine=clang requested but the libclang "
                  "python bindings are not importable", file=sys.stderr)
            return 2

    findings: list[Finding] = []
    engine_used = "lexer"
    for path in files:
        rel = os.path.relpath(path, root)
        clang_fns = None
        if use_clang and path.endswith(".cpp"):
            clang_fns = clang_function_extents(path, args.build_dir)
            if clang_fns is not None:
                engine_used = "clang"
        analyze_file(path, rel, cfg, path in feeding, findings,
                     clang_functions=clang_fns)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    deduped: list[Finding] = []
    seen: set[tuple[str, int, str]] = set()
    for f in findings:
        key = (f.path, f.line, f.rule)
        if key not in seen:
            seen.add(key)
            deduped.append(f)
    findings = deduped
    if args.json_out:
        print(json.dumps([f.__dict__ for f in findings], indent=2))
    else:
        for f in findings:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        print(f"zkphire-lint ({engine_used} front-end): "
              f"{len(files)} files, {len(findings)} finding(s)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
