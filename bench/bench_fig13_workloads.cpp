/**
 * @file
 * Figure 13 reproduction: per-workload speedups of Jellyfish gates and
 * Jellyfish + Masked-ZeroCheck over the Vanilla mapping, on the exemplar
 * chip.
 *
 * Paper values (Jellyfish / Jellyfish+MskZC over Vanilla): ZCash 1.70/1.84,
 * Rescue 1.53/1.91, Zexe 15.89/18.42, ZCash-Scaled 3.09/3.91, Zexe-Scaled
 * 23.35/29.18, Rollup-1600 25.10/31.93, zkEVM 6.28/8.00. Large workloads
 * approach the raw gate-count reduction; small ones are limited by MSM
 * serialization and fill/drain overheads.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/chip.hpp"
#include "sim/workloads.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    ChipConfig vanilla_cfg = ChipConfig::exemplar();
    vanilla_cfg.maskZeroCheck = false;
    ChipConfig jelly_cfg = vanilla_cfg;
    ChipConfig jelly_msk_cfg = ChipConfig::exemplar(); // masking on

    struct PaperRef {
        const char *name;
        double jelly, jelly_msk;
    };
    const PaperRef refs[] = {
        {"ZCash", 1.70, 1.84},          {"Rescue Hash", 1.53, 1.91},
        {"Zexe", 15.89, 18.42},         {"ZCash Scaled", 3.09, 3.91},
        {"Zexe Scaled", 23.35, 29.18},  {"Rollup 1600", 25.10, 31.93},
        {"zkEVM", 6.28, 8.00},
    };

    std::printf("Figure 13: speedups over the Vanilla mapping (exemplar "
                "chip, 2 TB/s)\n\n");
    std::printf("%-14s %5s %5s | %9s %9s | %9s %9s | %9s %9s\n", "workload",
                "muV", "muJ", "van ms", "jelly ms", "Jelly", "(paper)",
                "J+MskZC", "(paper)");

    for (const Workload &w : fig13Workloads()) {
        if (w.muVanilla < 0 || w.muJellyfish < 0)
            continue;
        const PaperRef *ref = nullptr;
        for (const auto &r : refs)
            if (w.name == r.name)
                ref = &r;
        double v = simulateProtocol(
                       vanilla_cfg,
                       ProtocolWorkload::vanilla(unsigned(w.muVanilla)))
                       .totalMs;
        double j = simulateProtocol(
                       jelly_cfg,
                       ProtocolWorkload::jellyfish(unsigned(w.muJellyfish)))
                       .totalMs;
        double jm = simulateProtocol(
                        jelly_msk_cfg,
                        ProtocolWorkload::jellyfish(
                            unsigned(w.muJellyfish)))
                        .totalMs;
        std::printf("%-14s %5d %5d | %9.2f %9.2f | %8.2fx %8.2fx | %8.2fx "
                    "%8.2fx\n",
                    w.name.c_str(), w.muVanilla, w.muJellyfish, v, j, v / j,
                    ref ? ref->jelly : 0.0, v / jm,
                    ref ? ref->jelly_msk : 0.0);
    }
    std::printf("\nShape checks: speedup tracks the gate-count reduction "
                "for large workloads (Zexe 32x reduction -> ~16-23x, Rollup "
                "1600 32x -> ~25x) and is muted for small ones (ZCash 4x -> "
                "~1.7x); masking adds ~20-27%% on top.\n");
    return 0;
}
