/**
 * @file
 * Calibration report: checks every model against the paper's published
 * anchor numbers (Table II CPU columns, Table V area/power, Table VII
 * runtimes) and prints model-vs-paper side by side. This is the ground
 * truth for the fitted constants documented in EXPERIMENTS.md — run it
 * after touching sim/ constants.
 */
#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "bench_util.hpp"
#include "ec/msm.hpp"
#include "ff/rng.hpp"
#include "sim/baseline.hpp"
#include "sim/chip.hpp"
#include "sim/workloads.hpp"

using namespace zkphire;
using namespace zkphire::sim;
using zkphire::bench::fmt;
using zkphire::bench::header;

namespace {

/**
 * Run the real MSM kernel once and report its phase split (recode /
 * bucket / fold, from ec::MsmStats) next to the CpuModel prediction.
 * These are the measured numbers EXPERIMENTS.md records; the model now
 * shares the kernel's window argmin and ec::msm_cost op prices, so any
 * residual measured-vs-model gap is the fitted nsPerFieldMul constant
 * (paper-host EPYC) vs this host, not an op-count mismatch.
 */
void
measuredMsmRow(const char *name, std::size_t n, double frac_zero,
               double frac_one, const ec::MsmOptions &opts,
               const CpuModel &cpu)
{
    ff::Rng rng(97);
    std::vector<ec::G1Affine> pool;
    for (int i = 0; i < 256; ++i)
        pool.push_back(ec::randomG1(rng));
    std::vector<ec::G1Affine> points(n);
    for (std::size_t i = 0; i < n; ++i)
        points[i] = pool[i % pool.size()];
    std::vector<ff::Fr> scalars;
    scalars.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        double u = rng.nextDouble();
        scalars.push_back(u < frac_zero ? ff::Fr::zero()
                          : u < frac_zero + frac_one
                              ? ff::Fr::one()
                              : ff::Fr::random(rng));
    }

    ec::MsmStats st;
    auto t0 = std::chrono::steady_clock::now();
    auto r = ec::msmPippengerOpt(scalars, points, opts, &st);
    (void)r;
    double total_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();

    MsmWorkload wl{double(n), frac_zero, frac_one};
    double model_ms = cpu.msmMs(wl);
    double adds = double(st.affineAdds + st.pointAdds);
    std::printf("%-26s %9.1f %8.1f %8.1f %6.1f %9.1f %8.2f %7.1f\n", name,
                total_ms, st.recodeMs, st.bucketMs, st.foldMs, model_ms,
                model_ms / total_ms, adds > 0 ? total_ms * 1e6 / adds : 0.0);
}

} // namespace

int
main()
{
    const Tech &tech = defaultTech();

    header("Measured CPU MSM phase timings vs CpuModel (this host, "
           "ZKPHIRE_THREADS honored)");
    {
        CpuModel cpu1;
        cpu1.threads = 1;
        std::printf("%-26s %9s %8s %8s %6s %9s %8s %7s\n", "kernel",
                    "total ms", "recode", "bucket", "fold", "model ms",
                    "ratio", "ns/add");
        const ec::MsmOptions def{};
        const ec::MsmOptions uns{.signedDigits = false, .batchAffine = false};
        const ec::MsmOptions sig{.signedDigits = true, .batchAffine = false};
        measuredMsmRow("dense 2^12 batched-aff", 1u << 12, 0, 0, def, cpu1);
        measuredMsmRow("dense 2^14 batched-aff", 1u << 14, 0, 0, def, cpu1);
        measuredMsmRow("dense 2^16 batched-aff", 1u << 16, 0, 0, def, cpu1);
        measuredMsmRow("dense 2^14 signed-jac", 1u << 14, 0, 0, sig, cpu1);
        measuredMsmRow("dense 2^14 unsigned", 1u << 14, 0, 0, uns, cpu1);
        measuredMsmRow("sparse 2^16 batched-aff", 1u << 16, 0.60, 0.30, def,
                       cpu1);
    }

    header("Area/power anchor: Table V exemplar (294.32 mm^2, 202.28 W)");
    ChipConfig ex = ChipConfig::exemplar();
    AreaBreakdown a = ex.areaBreakdown(tech);
    PowerBreakdown p = ex.powerBreakdown(tech);
    std::printf("%-22s %10s %10s %12s %10s\n", "module", "model mm2",
                "paper mm2", "model W", "paper W");
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n", "MSM (32 PEs)",
                a.msm, 105.69, p.msm, 58.99);
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n",
                "Multifunc Forest (80)", a.forest, 48.18, p.forest, 40.69);
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n", "SumCheck (16 PEs)",
                a.sumcheck, 16.65, p.sumcheck, 14.43);
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n", "Other", a.other,
                10.64, p.other, 6.17);
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n", "SRAM", a.sram,
                27.55, p.sram, 3.56);
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n", "Interconnect",
                a.interconnect, 26.42, p.interconnect, 14.83);
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n", "HBM3 (2 PHYs)",
                a.hbmPhy, 59.20, p.hbmPhy, 63.60);
    std::printf("%-22s %10.2f %10.2f %12.2f %10.2f\n", "TOTAL", a.total(),
                294.32, p.total(), 202.28);

    header("CPU SumCheck anchor: Table II (N = 2^24, 4-thread CPU)");
    CpuModel cpu4;
    cpu4.threads = 4;
    struct Anchor {
        const char *name;
        int gate;
        unsigned mu;
        double paper_ms;
    };
    const Anchor anchors[] = {
        {"Spartan1 (A*B-C)*ft", 1, 24, 6770},
        {"Spartan2 SumABC*Z", 2, 25, 5237},
        {"HP Poly 20 (-f_r)", -20, 24, 13354},
        {"HP Poly 21", 21, 24, 21625},
        {"HP Poly 22", 22, 24, 74226},
        {"HP Poly 23", 23, 24, 32774},
        {"HP Poly 24", 24, 24, 17591},
    };
    std::printf("%-22s %12s %12s %8s\n", "polynomial", "model ms",
                "paper ms", "ratio");
    for (const Anchor &an : anchors) {
        PolyShape shape;
        if (an.gate == -20) {
            // Poly 20 without the f_r factor (paper footnote 2).
            shape = PolyShape::fromGate(gates::vanillaCoreGate());
        } else {
            shape = PolyShape::fromGate(gates::tableIGate(an.gate));
        }
        double ms = cpu4.sumcheckMs(shape, an.mu);
        std::printf("%-22s %12.0f %12.0f %8.2f\n", an.name, ms, an.paper_ms,
                    ms / an.paper_ms);
    }

    header("A*B*C SumCheck batches (Table II rows 3-5, 4-thread CPU)");
    {
        poly::GateExpr abc("abc");
        auto sa = abc.addSlot("A"), sb = abc.addSlot("B"),
             sc2 = abc.addSlot("C");
        abc.addTerm({sa, sb, sc2});
        PolyShape shape = PolyShape::fromExpr(
            abc, {gates::SlotRole::Witness, gates::SlotRole::Witness,
                  gates::SlotRole::Witness});
        const struct {
            int count;
            unsigned mu;
            double paper_ms;
        } rows[] = {{12, 24, 60993}, {6, 23, 15248}, {4, 25, 40662}};
        for (const auto &r : rows) {
            double ms = r.count * cpu4.sumcheckMs(shape, r.mu);
            std::printf("%2d x A*B*C mu=%-3u %12.0f %12.0f %8.2f\n",
                        r.count, r.mu, ms, r.paper_ms, ms / r.paper_ms);
        }
    }

    header("GPU SumCheck anchor: Table II (A100, 1.6 TB/s)");
    {
        GpuModel gpu;
        const Anchor ganchors[] = {
            {"Spartan1", 1, 24, 571},
            {"Spartan2", 2, 25, 586},
            {"HP Poly 20 (-f_r)", -20, 24, 1089},
        };
        for (const Anchor &an : ganchors) {
            PolyShape shape =
                an.gate == -20
                    ? PolyShape::fromGate(gates::vanillaCoreGate())
                    : PolyShape::fromGate(gates::tableIGate(an.gate));
            double ms = gpu.sumcheckMs(shape, an.mu);
            std::printf("%-22s %12.0f %12.0f %8.2f\n", an.name, ms,
                        an.paper_ms, ms / an.paper_ms);
        }
    }

    header("CPU protocol anchor: Tables VI/VII (32-thread CPU)");
    CpuModel cpu32;
    std::printf("%-24s %6s %12s %12s %8s\n", "workload", "mu", "model ms",
                "paper ms", "ratio");
    for (const Workload &w : paperWorkloads()) {
        if (w.muVanilla > 0 && w.cpuMsVanilla > 0) {
            double ms = cpu32.protocolMs(
                ProtocolWorkload::vanilla(unsigned(w.muVanilla)));
            std::printf("%-24s %4dV %12.0f %12.0f %8.2f\n", w.name.c_str(),
                        w.muVanilla, ms, w.cpuMsVanilla,
                        ms / w.cpuMsVanilla);
        }
        if (w.muJellyfish > 0 && w.cpuMsJellyfish > 0) {
            double ms = cpu32.protocolMs(
                ProtocolWorkload::jellyfish(unsigned(w.muJellyfish)));
            std::printf("%-24s %4dJ %12.0f %12.0f %8.2f\n", w.name.c_str(),
                        w.muJellyfish, ms, w.cpuMsJellyfish,
                        ms / w.cpuMsJellyfish);
        }
    }

    header("zkPHIRE protocol anchor: Table VII exemplar (2 TB/s, masked)");
    {
        ChipConfig cfg = ChipConfig::exemplar();
        const struct {
            const char *name;
            unsigned mu;
            double paper_ms;
        } rows[] = {
            {"ZCash (2^15 J)", 15, 0.750},
            {"Zexe (2^17 J)", 17, 1.440},
            {"Rollup 25 (2^19 J)", 19, 3.874},
            {"Rescue/R50 (2^20 J)", 20, 7.114},
            {"Rollup 1600 (2^25 J)", 25, 207.673},
            {"zkEVM (2^27 J)", 27, 828.948},
        };
        std::printf("%-24s %12s %12s %8s\n", "workload", "model ms",
                    "paper ms", "ratio");
        for (const auto &r : rows) {
            auto run =
                simulateProtocol(cfg, ProtocolWorkload::jellyfish(r.mu));
            std::printf("%-24s %12.3f %12.3f %8.2f\n", r.name, run.totalMs,
                        r.paper_ms, run.totalMs / r.paper_ms);
        }
        auto run = simulateProtocol(cfg, ProtocolWorkload::jellyfish(19));
        std::printf("\nRollup-25 step split (model): witMSM %.3f gateZC %.3f "
                    "wire %.3f batch %.3f open %.3f masked-saving %.3f\n",
                    run.steps.witnessMsm, run.steps.gateZeroCheck,
                    run.steps.wireIdentity(), run.steps.batchEval,
                    run.steps.polyOpen(), run.maskedSavingMs);
        std::printf("wire split: permQ %.3f product %.3f msm %.3f "
                    "permZC %.3f | open split: check %.3f combine %.3f "
                    "msm %.3f\n",
                    run.steps.wirePermQ, run.steps.wireProductTree,
                    run.steps.wireMsm, run.steps.wirePermCheck,
                    run.steps.openCheck, run.steps.openCombine,
                    run.steps.openMsm);
        std::printf("gate ZC utilization %.3f, proof %.2f KB\n",
                    run.sumcheckUtilization, run.proofBytes / 1024.0);
    }
    return 0;
}
