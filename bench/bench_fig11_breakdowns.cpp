/**
 * @file
 * Figure 11 reproduction: area and runtime breakdowns for the
 * highest-performing Pareto design of each top bandwidth tier (the paper's
 * points A-D at 4 TB/s, 2 TB/s, 1 TB/s, 512 GB/s).
 *
 * Expected shape: MSM dominates area everywhere; as bandwidth grows the
 * SumCheck/Forest share grows (memory-bound SumCheck rewards bandwidth
 * with more compute allocation) and the SumCheck runtime share shrinks.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/dse.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    ProtocolWorkload wl = ProtocolWorkload::jellyfish(24);
    const double tiers[] = {4096, 2048, 1024, 512};
    const char *labels[] = {"A (4 TB/s)", "B (2 TB/s)", "C (1 TB/s)",
                            "D (512 GB/s)"};

    DseGrid grid; // full Table III sweep, one tier at a time
    std::printf("Figure 11: area & runtime breakdowns for best designs per "
                "tier (2^24 Jellyfish gates)\n\n");

    for (int i = 0; i < 4; ++i) {
        DseGrid g = grid;
        g.bandwidthsGBs = {tiers[i]};
        DseResult res = runDse(wl, g, 24);
        if (res.globalPareto.empty())
            continue;
        const DsePoint &best = res.globalPareto.front();
        AreaBreakdown a = best.cfg.areaBreakdown();
        auto run = simulateProtocol(best.cfg, wl);

        std::printf("--- design %s: %.1f ms, %.1f mm^2 ---\n", labels[i],
                    best.runtimeMs, best.areaMm2);
        std::printf("  area %%: SumCheck %.1f  Forest %.1f  MSM %.1f  "
                    "SRAM %.1f  PHY %.1f  interconnect %.1f  misc %.1f\n",
                    100 * a.sumcheck / a.total(),
                    100 * a.forest / a.total(), 100 * a.msm / a.total(),
                    100 * a.sram / a.total(), 100 * a.hbmPhy / a.total(),
                    100 * a.interconnect / a.total(),
                    100 * a.other / a.total());
        double tot = run.steps.totalUnmasked();
        std::printf("  runtime %%: witnessMSM %.1f  wireMSM %.1f  "
                    "openMSM %.1f  ZeroCheck %.1f  PermCheck %.1f  "
                    "OpenCheck %.1f  other %.1f\n\n",
                    100 * run.steps.witnessMsm / tot,
                    100 * (run.steps.wireMsm + run.steps.wirePermQ) / tot,
                    100 * run.steps.openMsm / tot,
                    100 * run.steps.gateZeroCheck / tot,
                    100 * run.steps.wirePermCheck / tot,
                    100 * run.steps.openCheck / tot,
                    100 *
                        (run.steps.batchEval + run.steps.openCombine +
                         run.steps.wireProductTree) /
                        tot);
    }
    std::printf("Paper shape: MSM dominates area at every point; from C to "
                "D the MSM area stays put while SumCheck+Forest grow, and "
                "the SumCheck runtime shares (Zero/Perm/OpenCheck) "
                "shrink.\n");
    return 0;
}
