/**
 * @file
 * Figure 12 reproduction: runtime breakdown pies for 2^24 Jellyfish gates
 * on (a) the 32-thread CPU (nine fine-grained categories) and (b) zkPHIRE
 * at 2 TB/s (four coarse steps, pre-masking proportions).
 *
 * Paper: CPU = SparseMSM 13.0, GateIdentity 12.9, GenPermMLEs 9.9,
 * PermDenseMSM 10.9, PermCheck 9.5, BatchEvals 10.1, MLECombine 5.7,
 * OpenCheck 6.8, PolyOpenMSM 21.2 (%); zkPHIRE = Witness 7.8,
 * Gate 21.4, Wire 37.9, Batch+Open 33.0 (%).
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    ProtocolWorkload wl = ProtocolWorkload::jellyfish(24);

    std::printf("Figure 12a: CPU (32 threads) runtime breakdown, 2^24 "
                "Jellyfish gates\n");
    CpuModel cpu;
    auto b = cpu.protocolBreakdown(wl);
    double tot = b.total();
    struct {
        const char *name;
        double model;
        double paper;
    } rows[] = {
        {"Sparse MSMs", b.sparseMsm, 13.0},
        {"Gate Identity", b.gateIdentity, 12.9},
        {"Gen PermCheck MLEs", b.genPermMles, 9.9},
        {"PermCheck Dense MSMs", b.permDenseMsm, 10.9},
        {"PermCheck", b.permCheck, 9.5},
        {"Batch Evals", b.batchEvals, 10.1},
        {"MLE Combine", b.mleCombine, 5.7},
        {"OpenCheck", b.openCheck, 6.8},
        {"Poly Open Dense MSMs", b.polyOpenMsm, 21.2},
    };
    std::printf("%-24s %10s %10s\n", "step", "model %", "paper %");
    for (const auto &r : rows)
        std::printf("%-24s %10.1f %10.1f\n", r.name, 100 * r.model / tot,
                    r.paper);
    std::printf("total: %.1f s\n\n", tot / 1000);

    std::printf("Figure 12b: zkPHIRE (2 TB/s exemplar) runtime breakdown, "
                "pre-masking\n");
    ChipConfig cfg = ChipConfig::exemplar();
    cfg.maskZeroCheck = false; // paper shows pre-masking proportions
    auto run = simulateProtocol(cfg, wl);
    double utot = run.steps.totalUnmasked();
    struct {
        const char *name;
        double model;
        double paper;
    } zrows[] = {
        {"Witness MSMs", run.steps.witnessMsm, 7.8},
        {"Gate Identity", run.steps.gateZeroCheck, 21.4},
        {"Wire Identity", run.steps.wireIdentity(), 37.9},
        {"Batch Evals & Poly Open",
         run.steps.batchEval + run.steps.polyOpen(), 33.0},
    };
    std::printf("%-24s %10s %10s\n", "step", "model %", "paper %");
    for (const auto &r : zrows)
        std::printf("%-24s %10.1f %10.1f\n", r.name, 100 * r.model / utot,
                    r.paper);
    std::printf("total (unmasked): %.1f ms; with masking: %.1f ms\n", utot,
                simulateProtocol(ChipConfig::exemplar(), wl).totalMs);
    std::printf("\nShape check: MSMs dominate before and after "
                "acceleration; SumChecks take a larger share than in "
                "zkSpeed's CPU baseline because Jellyfish polynomials are "
                "complex (paper §VI-B2).\n");
    return 0;
}
