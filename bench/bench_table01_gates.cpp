/**
 * @file
 * Table I: the polynomial constraint library. Prints every row's expanded
 * structure (slots, terms, composite degree, unique MLEs, per-point
 * multiply count) — the workload definitions every other bench consumes.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sumcheck_sched.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    std::printf("Table I: polynomial constraints (expanded)\n\n");
    std::printf("%-3s %-24s %6s %6s %7s %7s %9s\n", "ID", "name", "slots",
                "terms", "degree", "unique", "muls/pt");
    for (const gates::Gate &g : gates::tableIGates()) {
        PolyShape shape = PolyShape::fromGate(g);
        std::printf("%-3d %-24s %6zu %6zu %7zu %7zu %9zu\n", g.id,
                    g.name.c_str(), g.expr.numSlots(), g.expr.numTerms(),
                    g.degree(), shape.uniqueSlots().size(),
                    g.expr.mulsPerPoint());
    }
    std::printf("\nHigh-degree sweep family f = q1w1 + q2w2 + "
                "q3*w1^(d-1)*w2 + qc:\n");
    for (unsigned d : {2u, 8u, 16u, 30u}) {
        gates::Gate g = gates::sweepGate(d);
        std::printf("  d=%-3u degree %zu, %zu terms\n", d, g.degree(),
                    g.expr.numTerms());
    }
    return 0;
}
