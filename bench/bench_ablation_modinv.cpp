/**
 * @file
 * Ablation (paper §IV-B5): batched modular inversion organizations for the
 * Permutation Quotient Generator. zkSpeed uses batch size 64 with a
 * dedicated multiplier per inverse unit; zkPHIRE uses batch size 2, two
 * shared multipliers, and 266 round-robin inverse units — a claimed 4.2x
 * area reduction at equal throughput (multipliers are 17.7x larger than
 * inverse units at 22nm: 0.478 vs 0.027 mm^2).
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/permq.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    const Tech &tech = defaultTech();
    std::printf("Ablation: PermQuotGen inversion subsystem\n\n");
    std::printf("multiplier/inverse area ratio (22nm, arbitrary prime): "
                "%.1fx (paper: 17.7x)\n\n",
                tech.modmul255Arb22nm / tech.modinv22nm);

    for (bool fixed : {false, true}) {
        PermQConfig ours, zkspeed;
        ours.fixedPrime = fixed;
        zkspeed.fixedPrime = fixed;
        zkspeed.scheme = InversionScheme::ZkSpeedBatch64;
        // Inversion subsystem only (generation PEs identical in both).
        PermQConfig ours_inv = ours, zk_inv = zkspeed;
        ours_inv.numPEs = 0;
        zk_inv.numPEs = 0;
        double a_ours = ours_inv.areaMm2(tech);
        double a_zk = zk_inv.areaMm2(tech);
        std::printf("%s primes: zkSpeed batch-64 %.2f mm^2, zkPHIRE "
                    "batch-2 %.2f mm^2 -> %.2fx reduction%s\n",
                    fixed ? "fixed" : "arbitrary", a_zk, a_ours,
                    a_zk / a_ours,
                    fixed ? "" : "  (paper claim: 4.2x)");
    }

    std::printf("\nThroughput check (both sustain ~1 element/cycle/PE):\n");
    for (auto scheme : {InversionScheme::ZkPhireBatch2,
                        InversionScheme::ZkSpeedBatch64}) {
        PermQConfig cfg;
        cfg.numPEs = 4;
        cfg.scheme = scheme;
        auto run = simulatePermQ(cfg, 20, 5, 4096);
        std::printf("  %s: %.0f cycles for 2^20 rows (ideal %.0f)\n",
                    scheme == InversionScheme::ZkPhireBatch2
                        ? "zkPHIRE batch-2 "
                        : "zkSpeed batch-64",
                    run.cycles, std::pow(2.0, 20.0));
    }
    std::printf("\n266 inverse units x 1 issue per 2 cycles cover the "
                "%u-cycle inversion latency without backpressure.\n",
                defaultTech().invLatency);
    return 0;
}
