/**
 * @file
 * Table VII reproduction: Jellyfish-gate runtimes on the exemplar zkPHIRE
 * (294 mm^2, fixed primes, ZeroCheck masking) up to 2^30 nominal (Vanilla)
 * constraints, with speedups over the 32-thread CPU. Paper: geomean 1486x,
 * scaling to 2^30 nominal gates while proofs stay a few KB.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/workloads.hpp"

using namespace zkphire;
using namespace zkphire::sim;
using zkphire::bench::geomean;

int
main()
{
    ChipConfig cfg = ChipConfig::exemplar();
    CpuModel cpu;

    struct Row {
        const char *name;
        int mu_vanilla; // nominal problem size
        unsigned mu;    // jellyfish gates
        double paper_cpu, paper_zkphire;
    };
    const Row rows[] = {
        {"ZCash", 17, 15, 701, 0.750},
        {"Zexe Recursive Ckt", 22, 17, 1951, 1.440},
        {"Rollup of 10 Pvt Tx", 23, 18, 3339, 2.269},
        {"Rollup of 25 Pvt Tx", 24, 19, 6161, 3.874},
        {"2^12 Rescue Hashes", 21, 20, 11532, 7.114},
        {"Rollup of 50 Pvt Tx", 25, 20, 11533, 7.114},
        {"Rollup of 100 Pvt Tx", 26, 21, 24071, 13.614},
        {"Rollup of 1600 Pvt Tx", 30, 25, 355406, 207.673},
        {"zkEVM", -1, 27, 1.5e6, 828.948},
    };

    std::printf("Table VII: Jellyfish runtimes on the 294 mm^2 exemplar "
                "(fixed primes, masking)\n\n");
    std::printf("%-22s %5s %4s | %11s %11s | %10s %10s | %9s %9s\n",
                "workload", "nomV", "muJ", "CPU ms", "(paper)", "zkPHIRE",
                "(paper)", "speedup", "(paper)");

    std::vector<double> model_speedups, paper_speedups;
    for (const Row &r : rows) {
        auto wl = ProtocolWorkload::jellyfish(r.mu);
        double c = cpu.protocolMs(wl);
        double zp = simulateProtocol(cfg, wl).totalMs;
        model_speedups.push_back(c / zp);
        paper_speedups.push_back(r.paper_cpu / r.paper_zkphire);
        char nv[16];
        if (r.mu_vanilla > 0)
            std::snprintf(nv, sizeof(nv), "2^%d", r.mu_vanilla);
        else
            std::snprintf(nv, sizeof(nv), "-");
        std::printf("%-22s %5s %4u | %11.0f %11.0f | %10.3f %10.3f | "
                    "%8.0fx %8.0fx\n",
                    r.name, nv, r.mu, c, r.paper_cpu, zp, r.paper_zkphire,
                    c / zp, r.paper_cpu / r.paper_zkphire);
    }
    std::printf("\ngeomean speedup: model %.0fx, paper %.0fx (paper "
                "headline: 1486x)\n",
                geomean(model_speedups), geomean(paper_speedups));
    std::printf("proof sizes: 2^19 J %.2f KB, 2^25 J %.2f KB, 2^27 J %.2f "
                "KB (succinct at every scale)\n",
                estimateProofBytes(GateSystem::Jellyfish, 19) / 1024,
                estimateProofBytes(GateSystem::Jellyfish, 25) / 1024,
                estimateProofBytes(GateSystem::Jellyfish, 27) / 1024);
    return 0;
}
