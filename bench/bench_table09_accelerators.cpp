/**
 * @file
 * Table IX reproduction: cross-accelerator comparison on the Rollup-25
 * application. NoCap / SZKP+ / zkSpeed+ columns are the paper's published
 * numbers (different protocols and testbeds; reproduced as literature
 * constants); the zkPHIRE column is regenerated from our models.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    ChipConfig cfg = ChipConfig::exemplar();
    CpuModel cpu;
    auto wl = ProtocolWorkload::jellyfish(19); // Rollup 25 in Jellyfish
    auto run = simulateProtocol(cfg, wl);
    double sw_s = cpu.protocolMs(wl) / 1000.0;
    AreaBreakdown a = cfg.areaBreakdown();
    PowerBreakdown p = cfg.powerBreakdown();

    std::printf("Table IX: accelerator comparison, Rollup of 25 private "
                "transactions\n\n");
    std::printf("%-18s | %12s | %12s | %12s | %s\n", "metric", "NoCap",
                "SZKP+", "zkSpeed+", "zkPHIRE (model / paper)");
    auto row = [](const char *m, const char *a_, const char *b,
                  const char *c, const char *d) {
        std::printf("%-18s | %12s | %12s | %12s | %s\n", m, a_, b, c, d);
    };
    char buf[128];

    row("Protocol", "Spartan+Orion", "Groth16", "HyperPlonk", "HyperPlonk");
    row("Gates", "2^24", "2^24", "2^24", "2^19 (Jellyfish)");
    row("Encoding", "R1CS", "R1CS", "Plonk(Van.)", "Plonk(Jellyfish)");
    row("Proof size", "8.1 MB", "0.18 KB", "5.09 KB", [&] {
        std::snprintf(buf, sizeof(buf), "%.2f KB / 4.41 KB",
                      run.proofBytes / 1024);
        return buf;
    }());
    row("Setup", "none", "circuit-spec.", "universal", "universal");
    row("Prime", "fixed", "arbitrary", "arbitrary", "fixed");
    row("Bitwidth", "64", "255/381", "255/381", "255/381");
    row("SW prover (s)", "94.2", "51.18", "145.5", [&] {
        std::snprintf(buf, sizeof(buf), "%.2f / 6.161", sw_s);
        return buf;
    }());
    row("HW prover (ms)", "151.3", "28.43", "151.973", [&] {
        std::snprintf(buf, sizeof(buf), "%.3f / 3.874", run.totalMs);
        return buf;
    }());
    row("SW verifier (ms)", "134", "4.2", "26", "19 (paper)");
    row("Chip area (mm^2)", "38.73", "353.2", "366.46", [&] {
        std::snprintf(buf, sizeof(buf), "%.2f / 294.32", a.total());
        return buf;
    }());
    row("# Modmuls", "2432", "1720", "1206", [&] {
        std::snprintf(buf, sizeof(buf), "%u / 2267", cfg.totalModmuls());
        return buf;
    }());
    row("Power (W)", "62", ">220", "171", [&] {
        std::snprintf(buf, sizeof(buf), "%.1f / 202.28", p.total());
        return buf;
    }());

    std::printf("\nHeadline ratios (paper): zkPHIRE HW prover 39x / 7x / "
                "39x faster than NoCap / SZKP+ / zkSpeed+.\n");
    std::printf("Model ratios: %.0fx / %.0fx / %.0fx\n", 151.3 / run.totalMs,
                28.43 / run.totalMs, 151.973 / run.totalMs);
    return 0;
}
