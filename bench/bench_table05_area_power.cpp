/**
 * @file
 * Table V reproduction: area and average power of the 294 mm^2 zkPHIRE
 * exemplar (32 MSM PEs, 80 Multifunction trees, 16 SumCheck PEs with
 * 7 EEs / 5 PLs, 2 TB/s HBM3, fixed-prime multipliers), plus the modular
 * multiplier census used in Table IX.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    const Tech &tech = defaultTech();
    ChipConfig cfg = ChipConfig::exemplar();
    AreaBreakdown a = cfg.areaBreakdown(tech);
    PowerBreakdown p = cfg.powerBreakdown(tech);

    std::printf("Table V: zkPHIRE exemplar area and power\n\n");
    std::printf("%-28s %12s %12s %12s %12s\n", "module", "model mm^2",
                "paper mm^2", "model W", "paper W");
    struct {
        const char *name;
        double am, ap, wm, wp;
    } rows[] = {
        {"MSM (32 PEs)", a.msm, 105.69, p.msm, 58.99},
        {"Multifunc Forest (80)", a.forest, 48.18, p.forest, 40.69},
        {"SumCheck (16 PEs)", a.sumcheck, 16.65, p.sumcheck, 14.43},
        {"Other", a.other, 10.64, p.other, 6.17},
        {"Total Compute", a.compute(), 181.15,
         p.msm + p.forest + p.sumcheck + p.other, 120.29},
        {"SRAM", a.sram, 27.55, p.sram, 3.56},
        {"Interconnect", a.interconnect, 26.42, p.interconnect, 14.83},
        {"HBM3 (2 PHYs)", a.hbmPhy, 59.20, p.hbmPhy, 63.60},
        {"Total", a.total(), 294.32, p.total(), 202.28},
    };
    for (const auto &r : rows)
        std::printf("%-28s %12.2f %12.2f %12.2f %12.2f\n", r.name, r.am,
                    r.ap, r.wm, r.wp);

    std::printf("\nModular multiplier census (Table IX: 2267 for zkPHIRE): "
                "model %u\n",
                cfg.totalModmuls());
    std::printf("Multiplier areas (7nm): 255b %.3f/%.3f mm^2 (arb/fixed), "
                "381b %.3f/%.3f (paper: 0.133/0.073, 0.314/0.162)\n",
                tech.modmul255(false), tech.modmul255(true),
                tech.modmul381(false), tech.modmul381(true));
    std::printf("Proof size model: Vanilla 2^24 %.2f KB, Jellyfish 2^19 "
                "%.2f KB (paper: 5.09 / 4.41 KB; ours is larger because we "
                "serialize both OpenChecks and all round evaluations -- see "
                "EXPERIMENTS.md)\n",
                estimateProofBytes(GateSystem::Vanilla, 24) / 1024.0,
                estimateProofBytes(GateSystem::Jellyfish, 19) / 1024.0);
    return 0;
}
