/**
 * @file
 * Ablation (DESIGN.md): accumulation-chain vs balanced-tree scheduling
 * (Fig. 2's two decompositions). The accumulation schedule needs exactly
 * one Tmp MLE buffer at equal-or-better runtime; the balanced tree's
 * buffer demand grows with degree — the paper's rationale for the chain.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/sumcheck_unit.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    const unsigned mu = 24;
    const double bw = 2048;
    std::printf("Ablation: accumulation vs balanced-tree scheduling "
                "(2^24, 2 TB/s, 16 PEs / 3 EEs / 5 PLs)\n\n");
    std::printf("%-4s | %12s %8s | %12s %8s | %8s\n", "deg",
                "chain ms", "TmpBufs", "tree ms", "TmpBufs", "tree/chain");

    for (unsigned d = 4; d <= 30; d += 2) {
        PolyShape shape = PolyShape::fromGate(gates::sweepGate(d));
        SumcheckWorkload wl;
        wl.shape = shape;
        wl.numVars = mu;
        SumcheckUnitConfig chain_cfg;
        chain_cfg.numPEs = 16;
        chain_cfg.numEEs = 3;
        chain_cfg.numPLs = 5;
        SumcheckUnitConfig tree_cfg = chain_cfg;
        tree_cfg.scheduleKind = ScheduleKind::BalancedTree;

        double chain_ms = simulateSumcheck(chain_cfg, wl, bw).timeMs();
        double tree_ms = simulateSumcheck(tree_cfg, wl, bw).timeMs();
        Schedule chain = buildSchedule(shape, 3, 5);
        Schedule tree =
            buildSchedule(shape, 3, 5, ScheduleKind::BalancedTree);
        std::printf("%-4u | %12.2f %8zu | %12.2f %8zu | %7.2fx\n", d,
                    chain_ms, chain.tmpBuffers, tree_ms, tree.tmpBuffers,
                    tree_ms / chain_ms);
    }
    std::printf("\nClaim check (paper Fig. 2): the chain schedule uses ONE "
                "temporary buffer at any degree and never more steps than "
                "the balanced tree.\n");
    return 0;
}
