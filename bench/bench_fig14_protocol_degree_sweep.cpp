/**
 * @file
 * Figure 14 reproduction: full-protocol runtime on the exemplar design for
 * the custom-gate family f = q1*w1 + q2*w2 + q3*w1^(d-1)*w2 + qc as d
 * sweeps 2..30. The witness count is fixed (2 columns), so total MSM time
 * is constant; the SumCheck share grows with d and crosses over the MSM
 * share (paper: crossover at d = 18, where SumChecks reach 45% of
 * runtime).
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    ChipConfig cfg = ChipConfig::exemplar();
    cfg.maskZeroCheck = false; // expose the raw shares, as the figure does
    const unsigned mu = 24;

    std::printf("Figure 14: protocol-level high-degree sweep "
                "(2^24 gates, exemplar design)\n\n");
    std::printf("%-4s %12s %10s %10s %10s\n", "d", "total ms", "MSM %",
                "SumChk %", "rest %");

    int crossover = -1;
    for (unsigned d = 2; d <= 30; ++d) {
        gates::Gate gate = gates::sweepGate(d);
        // 2 witness columns (w1, w2), 4 selector columns (q1, q2, q3, qc).
        ProtocolWorkload wl = ProtocolWorkload::custom(gate, mu, 2, 4);
        auto run = simulateProtocol(cfg, wl);
        double tot = run.steps.totalUnmasked();
        double msm = run.steps.witnessMsm + run.steps.wireMsm +
                     run.steps.openMsm;
        double sumcheck = run.steps.gateZeroCheck +
                          run.steps.wirePermCheck + run.steps.openCheck;
        double rest = tot - msm - sumcheck;
        std::printf("%-4u %12.2f %10.1f %10.1f %10.1f\n", d, tot,
                    100 * msm / tot, 100 * sumcheck / tot,
                    100 * rest / tot);
        if (crossover < 0 && sumcheck > msm)
            crossover = int(d);
    }
    if (crossover > 0)
        std::printf("\nSumCheck share crosses the MSM share at d = %d "
                    "(paper: d = 18, 45%%).\n",
                    crossover);
    else
        std::printf("\nNo crossover within d <= 30.\n");
    std::printf("Shape check: total MSM time is flat across d (fixed "
                "witness count), so higher-degree gates shift the "
                "bottleneck from MSMs to SumChecks (paper §VI-B5).\n");
    return 0;
}
