/**
 * @file
 * Figure 8 reproduction: scheduler-induced runtime staircase. At fixed
 * bandwidth and product-lane count, latency vs polynomial degree jumps
 * discretely whenever the dominant term needs one more schedule node
 * (graph decomposition of Fig. 2): with E extension engines the first node
 * covers E factor occurrences and each continuation node E-1.
 *
 * The x axis follows the paper's convention: "degree" counts the dominant
 * term's factor occurrences (the sweep gate's composite degree d+1), so
 * with 6 EEs degrees 1-6 take one node and 7-11 take two.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/dse.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    const unsigned mu = 24;
    const double bw = 2048;
    std::printf("Figure 8: latency staircase vs composite degree "
                "(N = 2^24, %.0f GB/s, 16 PEs, 5 PLs)\n\n",
                bw);
    std::printf("%-8s", "deg m");
    for (unsigned e = 2; e <= 7; ++e)
        std::printf("  E=%u ms(nodes)", e);
    std::printf("\n");

    for (unsigned m = 3; m <= 31; ++m) {
        // sweepGate(d) has dominant-term occurrence count d+1 == m.
        PolyShape shape = PolyShape::fromGate(gates::sweepGate(m - 1));
        std::printf("%-8u", m);
        for (unsigned e = 2; e <= 7; ++e) {
            SumcheckUnitConfig cfg;
            cfg.numPEs = 16;
            cfg.numEEs = e;
            cfg.numPLs = 5;
            SumcheckWorkload wl;
            wl.shape = shape;
            wl.numVars = mu;
            double ms = simulateSumcheck(cfg, wl, bw).timeMs();
            std::size_t nodes = nodeCountForTerm(m, e);
            std::printf("  %9.1f(%zu)", ms, nodes);
        }
        std::printf("\n");
    }

    std::printf("\nNode-count boundaries (first m needing one more node):\n");
    for (unsigned e = 2; e <= 7; ++e) {
        std::printf("  E=%u:", e);
        std::size_t prev = 1;
        for (unsigned m = 3; m <= 31; ++m) {
            std::size_t nodes = nodeCountForTerm(m, e);
            if (nodes != prev) {
                std::printf(" m=%u->%zu nodes", m, nodes);
                prev = nodes;
            }
        }
        std::printf("\n");
    }
    std::printf("\nPaper check: with 6 EEs, degrees 1-6 have 1 node and "
                "7-11 have 2; each added node causes a sharp latency jump "
                "while growth within a cluster is gradual (per-term early "
                "exit: II = ceil((deg_t+1)/P)).\n");
    return 0;
}
