/**
 * @file
 * Figure 10 + Table IV reproduction: runtime-area design space for a 2^24
 * Jellyfish-gate workload across seven bandwidth tiers (full Table III
 * sweep), with per-tier and global Pareto frontiers.
 *
 * Paper reference points (Table IV): A 71.4 ms / 599 mm^2 / 4 TB/s /
 * 2560x, B 92.9 / 455 / 2 TB/s / 1969x, C 171.3 / 230 / 1 TB/s / 1067x,
 * D 328.5 / 118 / 512 GB/s / 557x, G 1716.8 / 25 / 128 GB/s / 107x.
 * CPU baseline: 182.896 s.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/dse.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main(int argc, char **argv)
{
    const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
    ProtocolWorkload wl = ProtocolWorkload::jellyfish(24);
    const double paper_cpu_ms = 182896.0;
    CpuModel cpu;
    double model_cpu_ms = cpu.protocolMs(wl);

    DseGrid grid = quick ? DseGrid::coarse() : DseGrid{};
    std::printf("Figure 10 / Table IV: DSE for 2^24 Jellyfish gates "
                "(%s grid)\n",
                quick ? "coarse" : "full Table III");
    DseResult res = runDse(wl, grid, 24);
    std::printf("evaluated %zu design points\n\n", res.evaluatedPoints);

    std::printf("Per-bandwidth Pareto frontiers (best point each):\n");
    std::printf("%10s %12s %12s %10s %28s\n", "BW (GB/s)", "best ms",
                "area mm^2", "speedup", "config (scPE/EE/PL msmPE/w)");
    for (const auto &[bw, tier] : res.perBandwidth) {
        if (tier.empty())
            continue;
        const DsePoint &best = tier.front();
        std::printf("%10.0f %12.1f %12.1f %9.0fx  %10u/%u/%u %8u/%u\n", bw,
                    best.runtimeMs, best.areaMm2,
                    paper_cpu_ms / best.runtimeMs,
                    best.cfg.sumcheck.numPEs, best.cfg.sumcheck.numEEs,
                    best.cfg.sumcheck.numPLs, best.cfg.msm.numPEs,
                    best.cfg.msm.windowBits);
    }

    std::printf("\nGlobal Pareto frontier (Table IV analogue; speedups vs "
                "paper CPU %.1f s):\n",
                paper_cpu_ms / 1000);
    std::printf("%12s %12s %10s %10s\n", "runtime ms", "area mm^2",
                "BW GB/s", "speedup");
    // Thin the frontier for printing: every ~8th point plus endpoints.
    const auto &gp = res.globalPareto;
    for (std::size_t i = 0; i < gp.size();
         i += std::max<std::size_t>(1, gp.size() / 16)) {
        std::printf("%12.1f %12.1f %10.0f %9.0fx\n", gp[i].runtimeMs,
                    gp[i].areaMm2, gp[i].cfg.bandwidthGBs,
                    paper_cpu_ms / gp[i].runtimeMs);
    }
    if (!gp.empty())
        std::printf("%12.1f %12.1f %10.0f %9.0fx  (min-area end)\n",
                    gp.back().runtimeMs, gp.back().areaMm2,
                    gp.back().cfg.bandwidthGBs,
                    paper_cpu_ms / gp.back().runtimeMs);

    std::printf("\nPaper Table IV: A 71.4ms/599mm^2/4T, B 92.9/455/2T, "
                "C 171.3/230/1T, D 328.5/118/512G, G 1716.8/25/128G\n");
    std::printf("Model CPU for this workload: %.1f s (paper 182.9 s)\n",
                model_cpu_ms / 1000);

    std::printf("\nShape checks:\n");
    if (!res.perBandwidth.empty()) {
        double s_1t = 0, s_512 = 0, s_256 = 0;
        double ms_1t = 0, ms_512 = 0, ms_256 = 0;
        for (const auto &[bw, tier] : res.perBandwidth) {
            if (tier.empty())
                continue;
            if (bw == 1024) { ms_1t = tier.front().runtimeMs; s_1t = 1; }
            if (bw == 512) { ms_512 = tier.front().runtimeMs; s_512 = 1; }
            if (bw == 256) { ms_256 = tier.front().runtimeMs; s_256 = 1; }
        }
        if (s_1t && s_512 && s_256)
            std::printf("  1 TB/s best vs 512/256 GB/s best: %.2fx / %.2fx "
                        "(paper: ~2x and ~3x)\n",
                        ms_512 / ms_1t, ms_256 / ms_1t);
    }
    return 0;
}
