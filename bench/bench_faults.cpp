/**
 * @file
 * Service latency under fault injection: BM_ServiceFaultLoad.
 *
 * Runs the same mixed 12-job load through engine::ProofService twice —
 * once fault-free, once with a representative ZKPHIRE_FAILPOINTS-style
 * schedule armed (slab ENOSPC, one-shot MSM ENOMEM, sumcheck-round sleep
 * jitter, a hard injected throw) plus one mid-load cancellation — and
 * reports the p50/p99 total-latency shift together with the recovery
 * counters (retries, degraded retries, cancelled, failed).
 *
 * Contract checks ride along: every future must resolve a typed status,
 * and every Ok proof (including retried-degraded ones) must be
 * byte-identical to its fault-free reference. The process exits non-zero
 * when either fails, so the CI smoke leg gates on it.
 *
 *   bench_faults            both runs, writes BENCH_faults.json
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "engine/service.hpp"
#include "hyperplonk/circuit.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/serialize.hpp"
#include "rt/failpoint.hpp"

using namespace zkphire;
using ff::Fr;
using ff::Rng;
using bench::fmt;
using engine::ProofStatus;
using std::chrono::milliseconds;

namespace {

const pcs::Srs &
sharedSrs()
{
    static Rng rng(0xbe5eedull);
    static pcs::Srs srs = pcs::Srs::generate(9, rng);
    return srs;
}

/** One circuit + keys + fault-free reference bytes (built before any
 *  failpoint is armed, so the reference prove() cannot be perturbed). */
struct Fixture {
    hyperplonk::Circuit circuit;
    hyperplonk::Keys keys;
    std::vector<std::uint8_t> reference;
};

Fixture
makeFixture(unsigned mu, bool jellyfish, std::uint64_t seed)
{
    Rng rng(seed);
    hyperplonk::Circuit circuit =
        jellyfish ? hyperplonk::randomJellyfishCircuit(mu, rng)
                  : hyperplonk::randomVanillaCircuit(mu, rng);
    hyperplonk::Keys keys = hyperplonk::setup(circuit, sharedSrs());
    std::vector<std::uint8_t> reference =
        hyperplonk::serializeProof(hyperplonk::prove(keys.pk, circuit));
    return Fixture{std::move(circuit), std::move(keys), std::move(reference)};
}

/** The load's schedule: every compiled-in site armed, tuned so the load
 *  still mostly completes. The bench-sized circuits never reach the
 *  chunk.producer / msm.accum sites (their streamed paths only engage for
 *  large tables) — the per-site hits/fires diagnostics make that visible
 *  rather than silently claiming coverage. */
void
armFaultSchedule()
{
    rt::FailSpec slab;
    slab.kind = rt::FailKind::Enospc;
    slab.p = 0.25; // Frequent slab failures: the Ram-fallback path.
    slab.seed = 0xfa0117;
    rt::setFailpoint("slab.create", slab);

    rt::FailSpec grow;
    grow.kind = rt::FailKind::Eintr;
    grow.p = 0.5;
    grow.seed = 0xfa0118;
    rt::setFailpoint("slab.grow", grow);

    rt::FailSpec msm;
    msm.kind = rt::FailKind::Enomem;
    msm.nth = 2;
    rt::setFailpoint("msm.accum", msm);

    rt::FailSpec producer;
    producer.kind = rt::FailKind::Enomem;
    producer.nth = 1;
    rt::setFailpoint("chunk.producer", producer);

    rt::FailSpec round;
    round.kind = rt::FailKind::Enomem;
    round.nth = 30; // Fires mid-sumcheck in an early job: the reliable
                    // retry-with-degradation exercise.
    rt::setFailpoint("sumcheck.round", round);

    rt::FailSpec worker;
    worker.kind = rt::FailKind::Throw;
    worker.nth = 40; // One hard (non-resource) fault: resolves ProverError.
    rt::setFailpoint("rt.worker", worker);
}

struct SiteCount {
    std::string site;
    std::uint64_t hits = 0, fires = 0;
};

struct Row {
    std::string name;
    unsigned jobs = 0;
    std::uint64_t ok = 0, failed = 0, cancelled = 0, expired = 0;
    std::uint64_t retries = 0, degradedRetries = 0;
    double p50 = 0, p99 = 0, wallMs = 0;
    bool bytesMatch = true;
    bool allResolved = true;
    std::vector<SiteCount> sites; ///< Armed-run per-site consultations.
};

Row
runLoad(const std::string &name, bool withFaults,
        const std::vector<const Fixture *> &fixtures)
{
    rt::clearFailpoints();
    if (withFaults)
        armFaultSchedule();

    // streamThreshold=1 puts every table on the slab store; the tiny chunk
    // makes the bench-sized tables span multiple chunks, so the streamed
    // commit pipeline (chunk.producer / msm.accum sites) sees traffic too.
    engine::ProverContext ctx(
        sharedSrs(),
        {.threads = 2, .streamThreshold = 1, .streamChunk = 64});
    engine::ServiceOptions sopts;
    sopts.lanes = 2;
    sopts.queueCapacity = 6;
    sopts.admission = engine::AdmissionPolicy::Block;

    Row row;
    row.name = name;
    constexpr unsigned kJobs = 12;
    row.jobs = kJobs;

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<engine::JobHandle> handles;
    std::vector<const Fixture *> picked;
    {
        engine::ProofService service(ctx, sopts);
        for (unsigned i = 0; i < kJobs; ++i) {
            const Fixture *f = fixtures[i % fixtures.size()];
            engine::ProofRequest req;
            req.pk = &f->keys.pk;
            req.circuit = &f->circuit;
            engine::SubmitOptions sub;
            sub.priority = int(i % 3);
            sub.retry.maxAttempts = 3;
            sub.retry.backoff = milliseconds(2);
            handles.push_back(service.submitJob(req, sub));
            picked.push_back(f);
        }
        if (withFaults)
            service.cancel(handles[7].id); // Mid-load cancellation.

        for (unsigned i = 0; i < kJobs; ++i) {
            if (handles[i].future.wait_for(std::chrono::minutes(5)) !=
                std::future_status::ready) {
                row.allResolved = false;
                continue;
            }
            engine::ProofResult res = handles[i].future.get();
            if (res.status == ProofStatus::Ok &&
                hyperplonk::serializeProof(res.proof) != picked[i]->reference)
                row.bytesMatch = false;
        }

        if (withFaults)
            for (const char *site :
                 {"slab.create", "slab.grow", "chunk.producer", "msm.accum",
                  "sumcheck.round", "rt.worker"})
                row.sites.push_back({site, rt::failpointHits(site),
                                     rt::failpointFires(site)});
        const engine::ServiceMetrics m = service.metrics();
        row.ok = m.completed;
        row.failed = m.failed;
        row.cancelled = m.cancelled;
        row.expired = m.expiredDeadline;
        row.retries = m.retries;
        row.degradedRetries = m.degradedRetries;
        row.p50 = m.totalMs.quantileMs(0.5);
        row.p99 = m.totalMs.quantileMs(0.99);
    }
    row.wallMs = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
    rt::clearFailpoints();
    return row;
}

void
printRow(const Row &r)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %-10s jobs=%-2u ok=%-2llu fail=%llu cancel=%llu "
                  "retry=%llu degraded=%llu  p50 %7.1f ms  p99 %7.1f ms  "
                  "wall %7.1f ms  bytes %s",
                  r.name.c_str(), r.jobs, (unsigned long long)r.ok,
                  (unsigned long long)r.failed,
                  (unsigned long long)r.cancelled,
                  (unsigned long long)r.retries,
                  (unsigned long long)r.degradedRetries, r.p50, r.p99,
                  r.wallMs, r.bytesMatch ? "MATCH" : "MISMATCH");
    bench::row(buf);
    for (const SiteCount &s : r.sites) {
        std::snprintf(buf, sizeof(buf), "    site %-15s hits=%llu fires=%llu",
                      s.site.c_str(), (unsigned long long)s.hits,
                      (unsigned long long)s.fires);
        bench::row(buf);
    }
}

} // namespace

int
main()
{
    // References are proved before any failpoint arms. The clear consumes
    // the lazy ZKPHIRE_FAILPOINTS load, so an exported schedule cannot
    // perturb the reference proves (the bench arms programmatically).
    rt::clearFailpoints();
    const Fixture small = makeFixture(4, false, 9101);
    const Fixture big = makeFixture(7, true, 9102);
    const std::vector<const Fixture *> fixtures{&small, &big};

    bench::header("BM_ServiceFaultLoad: p50/p99 under fault injection");
    std::vector<Row> rows;
    rows.push_back(runLoad("baseline", /*withFaults=*/false, fixtures));
    printRow(rows.back());
    rows.push_back(runLoad("faults", /*withFaults=*/true, fixtures));
    printRow(rows.back());

    const Row &base = rows[0];
    const Row &faulted = rows[1];
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "\n  fault overhead: p50 %sx, p99 %sx; every future "
                  "resolved: %s",
                  fmt(base.p50 > 0 ? faulted.p50 / base.p50 : 0.0, 2).c_str(),
                  fmt(base.p99 > 0 ? faulted.p99 / base.p99 : 0.0, 2).c_str(),
                  (base.allResolved && faulted.allResolved) ? "yes" : "NO");
    bench::row(buf);

    FILE *out = std::fopen("BENCH_faults.json", "w");
    if (out != nullptr) {
        std::fprintf(out, "[\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(
                out,
                "  {\"run\":\"%s\",\"jobs\":%u,\"ok\":%llu,"
                "\"failed\":%llu,\"cancelled\":%llu,\"expired\":%llu,"
                "\"retries\":%llu,\"degraded_retries\":%llu,"
                "\"p50_ms\":%.1f,\"p99_ms\":%.1f,\"wall_ms\":%.1f,"
                "\"bytes_match\":%s,\"all_resolved\":%s,\"sites\":{",
                r.name.c_str(), r.jobs, (unsigned long long)r.ok,
                (unsigned long long)r.failed, (unsigned long long)r.cancelled,
                (unsigned long long)r.expired, (unsigned long long)r.retries,
                (unsigned long long)r.degradedRetries, r.p50, r.p99, r.wallMs,
                r.bytesMatch ? "true" : "false",
                r.allResolved ? "true" : "false");
            for (std::size_t s = 0; s < r.sites.size(); ++s)
                std::fprintf(out, "\"%s\":[%llu,%llu]%s",
                             r.sites[s].site.c_str(),
                             (unsigned long long)r.sites[s].hits,
                             (unsigned long long)r.sites[s].fires,
                             s + 1 < r.sites.size() ? "," : "");
            std::fprintf(out, "}}%s\n", i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(out, "]\n");
        std::fclose(out);
        bench::row("\nwrote BENCH_faults.json");
    }

    const bool pass = base.allResolved && faulted.allResolved &&
                      base.bytesMatch && faulted.bytesMatch;
    return pass ? 0 : 1;
}
