/**
 * @file
 * Table VI reproduction: Vanilla-gate protocol runtimes for CPU (32T),
 * zkSpeed+ (366 mm^2, fully-unrolled SumCheck, resident scratchpad), and
 * zkPHIRE (300 mm^2) — both accelerators with the same arbitrary-prime
 * multipliers and WITHOUT ZeroCheck masking, mirroring the paper's
 * fairness setup ("zkPHIRE is about 10% slower than zkSpeed+, while
 * offering flexibility").
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/workloads.hpp"

using namespace zkphire;
using namespace zkphire::sim;
using zkphire::bench::geomean;

int
main()
{
    // zkPHIRE at ~300 mm^2 with arbitrary primes, no masking.
    ChipConfig zkphire = ChipConfig::exemplar();
    zkphire.setFixedPrime(false);
    zkphire.maskZeroCheck = false;
    // Scale back compute to stay near 300 mm^2 with the fatter multipliers.
    zkphire.msm.numPEs = 16;
    zkphire.sumcheck.numPEs = 8;
    zkphire.forest.numTrees =
        ChipConfig::derivedForestTrees(zkphire.sumcheck);

    ChipConfig zkspeed = zkphire;
    zkspeed.zkSpeedBaseline = true;
    zkspeed.zkSpeedPlusUpdates = true; // zkSpeed+

    CpuModel cpu;

    struct Row {
        const char *name;
        unsigned mu;
        double paper_cpu, paper_zkspeed, paper_zkphire;
    };
    const Row rows[] = {
        {"ZCash", 17, 1429, 1.825, 2.012},
        {"Auction", 20, 8619, 10.171, 10.88},
        {"2^12 Rescue Hashes", 21, 18637, 19.631, 20.977},
        {"Zexe Recursive Ckt", 22, 37469, 38.535, 41.117},
        {"Rollup of 10 Pvt Tx", 23, 74052, 76.356, 81.362},
        {"Rollup of 25 Pvt Tx", 24, 145500, 151.973, 161.876},
        {"Rollup of 50 Pvt Tx", 25, 325048, -1, 322.922},
        {"Rollup of 100 Pvt Tx", 26, 640987, -1, 645.029},
    };

    std::printf("Table VI: Vanilla-gate runtimes (ms), areas: zkPHIRE %.0f "
                "mm^2 (paper 300), zkSpeed+ %.0f mm^2 (paper 366)\n\n",
                zkphire.areaMm2(), zkspeed.areaMm2());
    std::printf("%-22s %4s | %10s %10s | %10s %9s | %10s %9s | %8s\n",
                "workload", "mu", "CPU", "(paper)", "zkSpeed+", "(paper)",
                "zkPHIRE", "(paper)", "speedup");

    std::vector<double> speedups;
    for (const Row &r : rows) {
        auto wl = ProtocolWorkload::vanilla(r.mu);
        double c = cpu.protocolMs(wl);
        double zs = simulateProtocol(zkspeed, wl).totalMs;
        double zp = simulateProtocol(zkphire, wl).totalMs;
        speedups.push_back(c / zp);
        char zs_paper[32];
        if (r.paper_zkspeed > 0)
            std::snprintf(zs_paper, sizeof(zs_paper), "%9.1f",
                          r.paper_zkspeed);
        else
            std::snprintf(zs_paper, sizeof(zs_paper), "%9s", "-");
        std::printf("%-22s %4u | %10.0f %10.0f | %10.2f %s | %10.2f %9.1f "
                    "| %7.0fx\n",
                    r.name, r.mu, c, r.paper_cpu, zs, zs_paper, zp,
                    r.paper_zkphire, c / zp);
    }
    std::printf("\ngeomean speedup over CPU: %.0fx (paper's column implies "
                "~900x)\n",
                geomean(speedups));

    // The paper's headline fairness claim for this table.
    auto wl24 = ProtocolWorkload::vanilla(24);
    double zs24 = simulateProtocol(zkspeed, wl24).totalMs;
    double zp24 = simulateProtocol(zkphire, wl24).totalMs;
    std::printf("zkPHIRE vs zkSpeed+ at 2^24: %.2fx (paper: ~0.94x, i.e. "
                "zkPHIRE ~10%% slower but programmable)\n",
                zs24 / zp24);
    return 0;
}
