/**
 * @file
 * Figure 6 reproduction: speedups of the programmable SumCheck unit over a
 * 4-threaded CPU for Table I polynomials 0-19 (the "training set") at
 * N = 2^24, across bandwidth tiers 64 GB/s - 4 TB/s.
 *
 * For each bandwidth the design point is chosen by the paper's objective
 * (lambda = 0.8 weighting utilization vs geomean slowdown) under the
 * 37 mm^2 area constraint (the 7nm-scaled area of 4 EPYC cores). The paper
 * reports geomean speedups 61x / 123x / 244x / 485x / 955x / 1328x / 2209x
 * and mean utilizations ~0.39-0.48 across the seven tiers.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/dse.hpp"

using namespace zkphire;
using namespace zkphire::sim;
using zkphire::bench::geomean;

int
main()
{
    const unsigned mu = 24;
    std::vector<PolyShape> polys;
    std::vector<std::string> names;
    for (const gates::Gate &g : gates::trainingSetGates()) {
        polys.push_back(PolyShape::fromGate(g));
        names.push_back("Poly " + std::to_string(g.id));
    }

    CpuModel cpu4;
    cpu4.threads = 4;
    std::vector<double> cpu_ms;
    for (const PolyShape &p : polys)
        cpu_ms.push_back(cpu4.sumcheckMs(p, mu));

    const double paper_geomean[] = {61, 123, 244, 485, 955, 1328, 2209};
    const double paper_util[] = {0.405, 0.404, 0.402, 0.399,
                                 0.392, 0.482, 0.441};
    const double bandwidths[] = {64, 128, 256, 512, 1024, 2048, 4096};

    std::printf("Figure 6: programmable SumCheck speedup over 4-thread CPU "
                "(N = 2^24, 37 mm^2 cap, lambda = 0.8)\n\n");
    std::printf("%-10s", "poly");
    for (double bw : bandwidths)
        std::printf(" %9.0fGB", bw);
    std::printf("\n");

    std::vector<std::vector<double>> speedups(std::size(bandwidths));
    std::vector<SumcheckDsePick> picks;
    SumcheckDseOptions opts;
    opts.numVars = mu;
    for (std::size_t b = 0; b < std::size(bandwidths); ++b) {
        picks.push_back(pickSumcheckDesign(polys, bandwidths[b], opts));
        for (std::size_t i = 0; i < polys.size(); ++i)
            speedups[b].push_back(cpu_ms[i] / picks[b].runtimesMs[i]);
    }

    for (std::size_t i = 0; i < polys.size(); ++i) {
        std::printf("%-10s", names[i].c_str());
        for (std::size_t b = 0; b < std::size(bandwidths); ++b)
            std::printf(" %11.0f", speedups[b][i]);
        std::printf("\n");
    }

    std::printf("\n%-10s", "geomean");
    for (std::size_t b = 0; b < std::size(bandwidths); ++b)
        std::printf(" %11.0f", geomean(speedups[b]));
    std::printf("\n%-10s", "paper");
    for (double pg : paper_geomean)
        std::printf(" %11.0f", pg);
    std::printf("\n\n%-10s", "mean util");
    for (const auto &p : picks)
        std::printf(" %11.3f", p.meanUtilization);
    std::printf("\n%-10s", "paper");
    for (double pu : paper_util)
        std::printf(" %11.3f", pu);
    std::printf("\n\nchosen designs (PEs/EEs/PLs/bankWords):\n");
    for (std::size_t b = 0; b < std::size(bandwidths); ++b)
        std::printf("  %4.0f GB/s: %2u/%u/%u/%zu  (area %.1f mm^2)\n",
                    bandwidths[b], picks[b].cfg.numPEs, picks[b].cfg.numEEs,
                    picks[b].cfg.numPLs, picks[b].cfg.bankWords,
                    picks[b].cfg.areaMm2(defaultTech()));
    std::printf("\nNote: paper's \"most designs pick 2 EEs and 5 PLs\" -- "
                "utilization-weighted objective favors narrow EEs.\n");
    return 0;
}
