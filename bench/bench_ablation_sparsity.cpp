/**
 * @file
 * Ablation (paper §IV-B1): sparsity-aware MLE encodings. zkPHIRE stores
 * enable MLEs as bitstreams and witness MLEs with per-tile offset buffers
 * (~90% of entries as single bits); this bench disables the encodings
 * (every slot fetched dense) and measures the SumCheck slowdown across
 * bandwidth tiers, plus the same effect on witness-commitment MSMs.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/msm_unit.hpp"
#include "sim/sumcheck_unit.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    const unsigned mu = 24;
    std::printf("Ablation: sparsity-aware encodings on/off "
                "(Vanilla ZeroCheck, 2^24)\n\n");

    gates::Gate gate = gates::tableIGate(20);
    PolyShape sparse_shape = PolyShape::fromGate(gate);
    PolyShape dense_shape = sparse_shape;
    for (auto &role : dense_shape.roles)
        role = gates::SlotRole::Dense;

    std::printf("%10s | %12s %12s %8s | %14s %14s\n", "BW GB/s",
                "sparse ms", "dense ms", "slowdown", "sparse GB", "dense GB");
    for (double bw : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0}) {
        SumcheckUnitConfig cfg;
        SumcheckWorkload s_wl, d_wl;
        s_wl.shape = sparse_shape;
        s_wl.numVars = mu;
        d_wl.shape = dense_shape;
        d_wl.numVars = mu;
        auto s = simulateSumcheck(cfg, s_wl, bw);
        auto d = simulateSumcheck(cfg, d_wl, bw);
        std::printf("%10.0f | %12.2f %12.2f %7.2fx | %14.2f %14.2f\n", bw,
                    s.timeMs(), d.timeMs(), d.timeMs() / s.timeMs(),
                    s.trafficBytes / 1e9, d.trafficBytes / 1e9);
    }

    std::printf("\nWitness MSM with/without the 0/1 scalar fast path "
                "(2^24 points, 32 PEs):\n");
    MsmUnitConfig mcfg;
    double n = std::pow(2.0, 24.0);
    for (double bw : {256.0, 1024.0}) {
        auto sparse = simulateMsm(mcfg, MsmWorkload::sparse(n), bw);
        auto dense = simulateMsm(mcfg, MsmWorkload::dense(n), bw);
        std::printf("  %5.0f GB/s: sparse %.2f ms, dense-treated %.2f ms "
                    "(%.2fx)\n",
                    bw, sparse.timeMs(), dense.timeMs(),
                    dense.timeMs() / sparse.timeMs());
    }
    std::printf("\nClaim check (paper): the encodings matter most at low "
                "bandwidth, where round-1/2 streaming of the original "
                "tables dominates; at HBM-scale bandwidth the unit is "
                "compute-bound and the gap narrows.\n");
    return 0;
}
