/**
 * @file
 * Ablation (paper §VI-B3, "The On-Chip Memory Trade-off"): starting from a
 * ~100 mm^2 Pareto design, compare spending incremental area on (a) one
 * more product lane vs (b) 4x larger SumCheck scratchpads. The paper finds
 * the compute upgrade Pareto-optimal and the SRAM upgrade not: larger
 * scratchpads help, but not per mm^2.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    ProtocolWorkload wl = ProtocolWorkload::jellyfish(24);

    // The paper's reference point: 8 MSM PEs, 4 SumCheck PEs (4 EEs,
    // 7 PLs), 4K-word SRAM banks, 512 GB/s.
    ChipConfig base;
    base.msm.numPEs = 8;
    base.msm.windowBits = 9;
    base.msm.pointsPerPe = 4096;
    base.sumcheck.numPEs = 4;
    base.sumcheck.numEEs = 4;
    base.sumcheck.numPLs = 7;
    base.sumcheck.bankWords = 4096;
    base.permq.numPEs = 2;
    base.bandwidthGBs = 512;
    base.forest.numTrees = ChipConfig::derivedForestTrees(base.sumcheck);
    base.setFixedPrime(true);

    ChipConfig more_pl = base;
    more_pl.sumcheck.numPLs = 8;
    more_pl.forest.numTrees =
        ChipConfig::derivedForestTrees(more_pl.sumcheck);

    ChipConfig more_sram = base;
    more_sram.sumcheck.bankWords = 16384;

    auto report = [&](const char *name, const ChipConfig &cfg) {
        auto run = simulateProtocol(cfg, wl);
        double area = cfg.areaMm2();
        std::printf("%-28s %10.1f ms %10.1f mm^2\n", name, run.totalMs,
                    area);
        return std::pair{run.totalMs, area};
    };

    std::printf("Ablation: SRAM size vs product lanes at iso-ish area "
                "(2^24 Jellyfish, 512 GB/s)\n\n");
    auto [t0, a0] = report("base (7 PL, 4K banks)", base);
    auto [t1, a1] = report("+1 product lane (8 PL)", more_pl);
    auto [t2, a2] = report("4x SRAM (16K banks)", more_sram);

    std::printf("\nmarginal efficiency (ms saved per added mm^2):\n");
    std::printf("  +1 PL : %.4f ms/mm^2 (%.1f ms for %.1f mm^2)\n",
                (t0 - t1) / (a1 - a0), t0 - t1, a1 - a0);
    std::printf("  +SRAM : %.4f ms/mm^2 (%.1f ms for %.1f mm^2)\n",
                (t0 - t2) / (a2 - a0), t0 - t2, a2 - a0);
    std::printf("\nClaim check (paper): both upgrades help, but the "
                "product-lane upgrade buys more performance per area, so "
                "Pareto-optimal designs pick small scratchpads + more "
                "compute.\n");
    return 0;
}
