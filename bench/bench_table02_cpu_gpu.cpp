/**
 * @file
 * Table II reproduction: SumCheck runtimes on CPU (4-thread), GPU (A100 /
 * ICICLE model), and zkPHIRE (1 TB/s, matching the A100's bandwidth class)
 * for N = 2^24: Spartan polynomials, batched A*B*C SumChecks (Jolt-style),
 * and HyperPlonk polynomials 20-24. ICICLE's 8-unique-MLE limit blocks
 * rows 21-24 on GPU, exactly as in the paper.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/dse.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    const double bw = 1024; // ~A100-class bandwidth for zkPHIRE
    // Same design point as the Fig. 9 comparison (arbitrary primes).
    std::vector<PolyShape> training;
    for (const gates::Gate &g : gates::trainingSetGates())
        training.push_back(PolyShape::fromGate(g));
    SumcheckDseOptions opts;
    opts.numVars = 24;
    opts.areaCapMm2 = 35.24;
    opts.fixedPrime = false;
    SumcheckDsePick pick = pickSumcheckDesign(training, 2048, opts);

    CpuModel cpu4;
    cpu4.threads = 4;
    GpuModel gpu;

    struct Row {
        const char *name;
        int gate; // -20 = vanilla core (poly 20 minus f_r); -1 = A*B*C
        int count;
        unsigned mu;
        double paper_cpu, paper_gpu, paper_zkphire;
    };
    const Row rows[] = {
        {"(A*B-C)*f_tau", 1, 1, 24, 6770, 571, 7.6},
        {"(SumABC)*Z", 2, 1, 25, 5237, 586, 8.4},
        {"A*B*C x12", -1, 12, 24, 60993, 5376, 78.9},
        {"A*B*C x6", -1, 6, 23, 15248, 1440, 19.7},
        {"A*B*C x4", -1, 4, 25, 40662, 3460, 52.6},
        {"HP Poly 20 (-f_r)", -20, 1, 24, 13354, 1089, 15.8},
        {"HP Poly 21", 21, 1, 24, 21625, -1, 22.7},
        {"HP Poly 22", 22, 1, 24, 74226, -1, 69.5},
        {"HP Poly 23", 23, 1, 24, 32774, -1, 32.2},
        {"HP Poly 24", 24, 1, 24, 17591, -1, 21.3},
    };

    std::printf("Table II: SumCheck runtimes (ms), N = 2^24, zkPHIRE at "
                "%.0f GB/s (%u/%u/%u design)\n\n",
                bw, pick.cfg.numPEs, pick.cfg.numEEs, pick.cfg.numPLs);
    std::printf("%-20s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n",
                "polynomial", "CPU", "(paper)", "GPU", "(paper)", "zkPHIRE",
                "(paper)", "vsCPU", "vsGPU");

    for (const Row &r : rows) {
        PolyShape shape;
        if (r.gate == -1) {
            poly::GateExpr abc("abc");
            auto a = abc.addSlot("A"), b = abc.addSlot("B"),
                 c = abc.addSlot("C");
            abc.addTerm({a, b, c});
            shape = PolyShape::fromExpr(
                abc, {gates::SlotRole::Witness, gates::SlotRole::Witness,
                      gates::SlotRole::Witness});
        } else if (r.gate == -20) {
            shape = PolyShape::fromGate(gates::vanillaCoreGate());
        } else {
            shape = PolyShape::fromGate(gates::tableIGate(r.gate));
        }

        double cpu_ms = r.count * cpu4.sumcheckMs(shape, r.mu);
        double gpu_ms =
            gpu.supports(shape) ? r.count * gpu.sumcheckMs(shape, r.mu) : -1;
        SumcheckWorkload wl;
        wl.shape = shape;
        wl.numVars = r.mu;
        double hw_ms =
            r.count * simulateSumcheck(pick.cfg, wl, bw).timeMs();

        char gpu_str[32], gpu_paper[32];
        if (gpu_ms >= 0)
            std::snprintf(gpu_str, sizeof(gpu_str), "%9.0f", gpu_ms);
        else
            std::snprintf(gpu_str, sizeof(gpu_str), "%9s", "-");
        if (r.paper_gpu >= 0)
            std::snprintf(gpu_paper, sizeof(gpu_paper), "%9.0f",
                          r.paper_gpu);
        else
            std::snprintf(gpu_paper, sizeof(gpu_paper), "%9s", "-");

        std::printf("%-20s | %9.0f %9.0f | %s %s | %9.1f %9.1f | %8.0fx",
                    r.name, cpu_ms, r.paper_cpu, gpu_str, gpu_paper, hw_ms,
                    r.paper_zkphire, cpu_ms / hw_ms);
        if (gpu_ms >= 0)
            std::printf(" %8.0fx", gpu_ms / hw_ms);
        std::printf("\n");
    }
    std::printf("\nPaper shape: zkPHIRE ~600-1100x over 4T CPU and ~70x "
                "over GPU; ICICLE cannot run polys 21-24 (>8 unique "
                "MLEs).\n");
    return 0;
}
