/**
 * @file
 * Table VIII reproduction: iso-application comparison — zkSpeed+ forced to
 * run the Vanilla mapping (its fixed-function datapath cannot execute
 * Jellyfish gates) vs zkPHIRE running the Jellyfish mapping of the same
 * application. Paper: 2.43x (ZCash) to 39.23x (Rollup 25), geomean 11.87x.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::sim;
using zkphire::bench::geomean;

int
main()
{
    // zkSpeed+ baseline (Vanilla only), same multiplier technology and
    // masking configuration as the zkPHIRE column (fixed primes + masking,
    // per the paper's Table VIII setup).
    ChipConfig zkspeed = ChipConfig::exemplar();
    zkspeed.zkSpeedBaseline = true;
    zkspeed.maskZeroCheck = false;
    ChipConfig zkphire = ChipConfig::exemplar();

    struct Row {
        const char *name;
        unsigned mu_v, mu_j;
        double paper_zkspeed, paper_zkphire, paper_ratio;
    };
    const Row rows[] = {
        {"ZCash", 17, 15, 1.825, 0.750, 2.43},
        {"2^12 Rescue Hashes", 21, 20, 19.631, 7.114, 2.75},
        {"Zexe Recursive Circuit", 22, 17, 38.535, 1.440, 26.76},
        {"Rollup of 10 Pvt Tx", 23, 18, 76.356, 2.269, 33.65},
        {"Rollup of 25 Pvt Tx", 24, 19, 151.973, 3.874, 39.23},
    };

    std::printf("Table VIII: iso-application, zkSpeed+(Vanilla) vs "
                "zkPHIRE(Jellyfish)\n\n");
    std::printf("%-24s %4s %4s | %10s %9s | %10s %9s | %8s %8s\n",
                "workload", "muV", "muJ", "zkSpeed+", "(paper)", "zkPHIRE",
                "(paper)", "ratio", "(paper)");
    std::vector<double> ratios, paper_ratios;
    for (const Row &r : rows) {
        double zs =
            simulateProtocol(zkspeed, ProtocolWorkload::vanilla(r.mu_v))
                .totalMs;
        double zp =
            simulateProtocol(zkphire, ProtocolWorkload::jellyfish(r.mu_j))
                .totalMs;
        ratios.push_back(zs / zp);
        paper_ratios.push_back(r.paper_ratio);
        std::printf("%-24s %4u %4u | %10.3f %9.3f | %10.3f %9.3f | %7.2fx "
                    "%7.2fx\n",
                    r.name, r.mu_v, r.mu_j, zs, r.paper_zkspeed, zp,
                    r.paper_zkphire, zs / zp, r.paper_ratio);
    }
    std::printf("\ngeomean: model %.2fx, paper %.2fx (headline: 11.87x)\n",
                geomean(ratios), geomean(paper_ratios));
    std::printf("Shape check: the advantage grows with the Vanilla-to-"
                "Jellyfish reduction factor (4x for ZCash/Rescue, 32x for "
                "Zexe/rollups).\n");
    return 0;
}
