/**
 * @file
 * Kernel microbenchmarks (google-benchmark): field arithmetic, hashing,
 * curve operations, MSM, MLE folding, and SumCheck rounds on the host CPU.
 * These ground the CPU baseline model's fitted constants (ns per modular
 * multiplication, ns per point addition, streaming bandwidth).
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <map>
#include <thread>

#include "ec/msm.hpp"
#include "engine/service.hpp"
#include "ff/batch_inverse.hpp"
#include "ff/mul_asm_x86.hpp"
#include "ff/mul_impl.hpp"
#include "ff/vec_ops.hpp"
#include "gates/gate_library.hpp"
#include "hash/keccak.hpp"
#include "hyperplonk/circuit.hpp"
#include "poly/gate_plan.hpp"
#include "poly/virtual_poly.hpp"
#include "rt/parallel.hpp"
#include "sumcheck/prover.hpp"

using namespace zkphire;
using ff::Fr;
using ff::Rng;

static void
BM_FrMul(benchmark::State &state)
{
    Rng rng(1);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    for (auto _ : state) {
        a *= b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrMul);

static void
BM_FrAdd(benchmark::State &state)
{
    Rng rng(2);
    Fr a = Fr::random(rng), b = Fr::random(rng);
    for (auto _ : state) {
        a += b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrAdd);

static void
BM_FrInverse(benchmark::State &state)
{
    Rng rng(3);
    Fr a = Fr::random(rng);
    for (auto _ : state) {
        a = a.inverse();
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FrInverse);

static void
BM_FqMul(benchmark::State &state)
{
    Rng rng(4);
    ff::Fq a = ff::Fq::random(rng), b = ff::Fq::random(rng);
    for (auto _ : state) {
        a *= b;
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_FqMul);

// ---------------------------------------------------------------------------
// BM_FieldMul family: the unrolled fixed-limb kernels against the generic
// loop-over-limbs oracle, measured in the deployment shape — element-wise
// span multiplication (ff::mulVec), which is how GatePlan round evaluation
// and the batched-affine slope resolution consume them. Items processed =
// field multiplications, so the items/sec counter reads as mul throughput;
// the Unrolled/Generic ratio is the kernel-overhaul speedup. The BM_*Square
// variants isolate the dedicated squaring kernel (EC point ops are
// squaring-heavy).
// ---------------------------------------------------------------------------

/** asm_mode: -1 inherits the ambient dispatch, 0 forces the unrolled C++
 *  kernel, 1 forces the ADX/BMI2 assembly kernel (skipped on non-ADX). */
template <class F>
static void
fieldMulBench(benchmark::State &state, bool generic, bool square,
              int asm_mode = -1)
{
    if (asm_mode == 1 && !ff::kernels::cpuSupportsAdxBmi2()) {
        state.SkipWithError("host lacks ADX/BMI2");
        return;
    }
    constexpr std::size_t kSpan = 1024;
    Rng rng(16);
    std::vector<F> a, b, dst(kSpan);
    for (std::size_t i = 0; i < kSpan; ++i) {
        a.push_back(F::random(rng));
        b.push_back(F::random(rng));
    }
    ff::kernels::ScopedGenericKernels oracle(generic);
    ff::kernels::ScopedAsmKernels asm_scope(
        asm_mode == -1 ? ff::kernels::asmKernelsEnabled() : asm_mode == 1);
    for (auto _ : state) {
        if (square)
            ff::sqrVec(dst.data(), a.data(), kSpan);
        else
            ff::mulVec(dst.data(), a.data(), b.data(), kSpan);
        benchmark::DoNotOptimize(dst.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * kSpan);
}

static void
BM_FieldMul_FrGeneric(benchmark::State &state)
{
    fieldMulBench<Fr>(state, /*generic=*/true, /*square=*/false);
}

static void
BM_FieldMul_FrUnrolled(benchmark::State &state)
{
    fieldMulBench<Fr>(state, /*generic=*/false, /*square=*/false,
                      /*asm_mode=*/0);
}

static void
BM_FieldMul_FrAsm(benchmark::State &state)
{
    fieldMulBench<Fr>(state, /*generic=*/false, /*square=*/false,
                      /*asm_mode=*/1);
}

static void
BM_FieldMul_FqGeneric(benchmark::State &state)
{
    fieldMulBench<ff::Fq>(state, /*generic=*/true, /*square=*/false);
}

static void
BM_FieldMul_FqUnrolled(benchmark::State &state)
{
    fieldMulBench<ff::Fq>(state, /*generic=*/false, /*square=*/false,
                          /*asm_mode=*/0);
}

static void
BM_FieldMul_FqAsm(benchmark::State &state)
{
    fieldMulBench<ff::Fq>(state, /*generic=*/false, /*square=*/false,
                          /*asm_mode=*/1);
}

static void
BM_FieldSquare_FrUnrolled(benchmark::State &state)
{
    fieldMulBench<Fr>(state, /*generic=*/false, /*square=*/true,
                      /*asm_mode=*/0);
}

static void
BM_FieldSquare_FrAsm(benchmark::State &state)
{
    fieldMulBench<Fr>(state, /*generic=*/false, /*square=*/true,
                      /*asm_mode=*/1);
}

static void
BM_FieldSquare_FqUnrolled(benchmark::State &state)
{
    fieldMulBench<ff::Fq>(state, /*generic=*/false, /*square=*/true,
                          /*asm_mode=*/0);
}

static void
BM_FieldSquare_FqAsm(benchmark::State &state)
{
    fieldMulBench<ff::Fq>(state, /*generic=*/false, /*square=*/true,
                          /*asm_mode=*/1);
}

BENCHMARK(BM_FieldMul_FrGeneric);
BENCHMARK(BM_FieldMul_FrUnrolled);
BENCHMARK(BM_FieldMul_FrAsm);
BENCHMARK(BM_FieldMul_FqGeneric);
BENCHMARK(BM_FieldMul_FqUnrolled);
BENCHMARK(BM_FieldMul_FqAsm);
BENCHMARK(BM_FieldSquare_FrUnrolled);
BENCHMARK(BM_FieldSquare_FrAsm);
BENCHMARK(BM_FieldSquare_FqUnrolled);
BENCHMARK(BM_FieldSquare_FqAsm);

static void
BM_Sha3_256(benchmark::State &state)
{
    std::vector<std::uint8_t> msg(std::size_t(state.range(0)), 0xa5);
    for (auto _ : state) {
        auto d = hash::sha3_256(msg);
        benchmark::DoNotOptimize(d);
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha3_256)->Arg(32)->Arg(1024);

static void
BM_G1AddMixed(benchmark::State &state)
{
    Rng rng(5);
    ec::G1Jacobian p = ec::G1Jacobian::fromAffine(ec::randomG1(rng));
    ec::G1Affine q = ec::randomG1(rng);
    for (auto _ : state) {
        p = p.addMixed(q);
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_G1AddMixed);

static void
BM_G1Double(benchmark::State &state)
{
    Rng rng(6);
    ec::G1Jacobian p = ec::G1Jacobian::fromAffine(ec::randomG1(rng));
    for (auto _ : state) {
        p = p.dbl();
        benchmark::DoNotOptimize(p);
    }
}
BENCHMARK(BM_G1Double);

static void
BM_MsmPippenger(benchmark::State &state)
{
    const std::size_t n = std::size_t(state.range(0));
    Rng rng(7);
    std::vector<Fr> scalars;
    std::vector<ec::G1Affine> points;
    ec::G1Affine base = ec::randomG1(rng);
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng));
        // Cheap point variety: reuse a handful of random points.
        points.push_back(i % 8 == 0 ? ec::randomG1(rng) : base);
    }
    for (auto _ : state) {
        auto r = ec::msmPippenger(scalars, points);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MsmPippenger)->Arg(256)->Arg(1024)->Arg(4096);

// ---------------------------------------------------------------------------
// BM_Msm family: the MSM pipeline variants head to head — unsigned digits
// (the pre-overhaul kernel), signed digits with Jacobian buckets, signed
// digits with batched-affine buckets (the default hot path), and the
// multi-column msmBatch against k independent MSMs on the witness-commit
// shape. Points are a tiled pool of random points so the 2^18 fixtures
// build quickly; every variant sees identical inputs.
// ---------------------------------------------------------------------------

static const std::vector<ec::G1Affine> &
msmBenchPoints(std::size_t n)
{
    static std::map<std::size_t, std::vector<ec::G1Affine>> cache;
    auto it = cache.find(n);
    if (it != cache.end())
        return it->second;
    Rng rng(21);
    std::vector<ec::G1Affine> pool;
    for (int i = 0; i < 256; ++i)
        pool.push_back(ec::randomG1(rng));
    std::vector<ec::G1Affine> pts(n);
    for (std::size_t i = 0; i < n; ++i)
        pts[i] = pool[i % pool.size()];
    return cache.emplace(n, std::move(pts)).first->second;
}

static std::vector<Fr>
msmBenchScalars(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Fr> scalars;
    scalars.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        scalars.push_back(Fr::random(rng));
    return scalars;
}

static void
msmVariantBench(benchmark::State &state, const ec::MsmOptions &opts)
{
    const std::size_t n = std::size_t(state.range(0));
    const auto &points = msmBenchPoints(n);
    const std::vector<Fr> scalars = msmBenchScalars(n, 22);
    for (auto _ : state) {
        auto r = ec::msmPippengerOpt(scalars, points, opts);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * n);
}

static void
BM_Msm_Unsigned(benchmark::State &state)
{
    msmVariantBench(state,
                    {.signedDigits = false, .batchAffine = false});
}

static void
BM_Msm_Signed(benchmark::State &state)
{
    msmVariantBench(state, {.signedDigits = true, .batchAffine = false});
}

static void
BM_Msm_SignedBatchAffine(benchmark::State &state)
{
    msmVariantBench(state, {.glv = false});
}

/** Full default pipeline: signed digits + batched affine + GLV split
 *  (the split still defers to msmGlvProfitable at each size). */
static void
BM_Msm_Glv(benchmark::State &state)
{
    msmVariantBench(state, {});
}

BENCHMARK(BM_Msm_Unsigned)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_Msm_Signed)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);
BENCHMARK(BM_Msm_SignedBatchAffine)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 18);
BENCHMARK(BM_Msm_Glv)->RangeMultiplier(4)->Range(1 << 12, 1 << 18);

static constexpr std::size_t kMsmBenchColumns = 4;

static void
BM_Msm_BatchColumns(benchmark::State &state)
{
    const std::size_t n = std::size_t(state.range(0));
    const auto &points = msmBenchPoints(n);
    std::vector<std::vector<Fr>> cols;
    for (std::size_t j = 0; j < kMsmBenchColumns; ++j)
        cols.push_back(msmBenchScalars(n, 23 + j));
    std::vector<std::span<const Fr>> spans(cols.begin(), cols.end());
    for (auto _ : state) {
        auto r = ec::msmBatch(spans, points);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * n * kMsmBenchColumns);
}

static void
BM_Msm_IndependentColumns(benchmark::State &state)
{
    const std::size_t n = std::size_t(state.range(0));
    const auto &points = msmBenchPoints(n);
    std::vector<std::vector<Fr>> cols;
    for (std::size_t j = 0; j < kMsmBenchColumns; ++j)
        cols.push_back(msmBenchScalars(n, 23 + j));
    for (auto _ : state) {
        for (const auto &col : cols) {
            auto r = ec::msmPippenger(col, points);
            benchmark::DoNotOptimize(r);
        }
    }
    state.SetItemsProcessed(state.iterations() * n * kMsmBenchColumns);
}

BENCHMARK(BM_Msm_BatchColumns)->RangeMultiplier(4)->Range(1 << 12, 1 << 16);
BENCHMARK(BM_Msm_IndependentColumns)
    ->RangeMultiplier(4)
    ->Range(1 << 12, 1 << 16);

static void
BM_MleFold(benchmark::State &state)
{
    Rng rng(8);
    poly::Mle m = poly::Mle::random(unsigned(state.range(0)), rng);
    Fr r = Fr::random(rng);
    for (auto _ : state) {
        poly::Mle copy = m;
        copy.fixFirstVarInPlace(r);
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() * (m.size() / 2));
}
BENCHMARK(BM_MleFold)->Arg(12)->Arg(16);

static void
BM_EqTableBuild(benchmark::State &state)
{
    Rng rng(9);
    std::vector<Fr> point;
    for (int i = 0; i < state.range(0); ++i)
        point.push_back(Fr::random(rng));
    for (auto _ : state) {
        auto t = poly::Mle::eqTable(point);
        benchmark::DoNotOptimize(t);
    }
}
BENCHMARK(BM_EqTableBuild)->Arg(12)->Arg(16);

static void
BM_SumcheckProver(benchmark::State &state)
{
    const unsigned mu = unsigned(state.range(0));
    Rng rng(10);
    gates::Gate gate = gates::tableIGate(int(state.range(1)));
    auto tables = gate.randomTables(mu, rng);
    for (auto _ : state) {
        hash::Transcript tr("bench");
        auto out = sumcheck::prove(
            poly::VirtualPoly(gate.expr, tables), tr);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * (1u << mu));
}
BENCHMARK(BM_SumcheckProver)
    ->Args({12, 20}) // Vanilla ZeroCheck polynomial
    ->Args({12, 22}) // Jellyfish ZeroCheck polynomial
    ->Args({14, 1}); // Spartan

// ---------------------------------------------------------------------------
// Naive-vs-plan round evaluation on degree-5+ gates with repeated factors.
// Gate selector >= 0 is a Table I row; a negative selector -d is the masked
// sweep gate q3*w1^(d-1)*w2*f_r — the Rescue-style x^d S-box row shape.
// Runs single-threaded so the ratio measures the GatePlan restructuring
// (shared powers, per-slot extension bounds), not pool scaling.
// ---------------------------------------------------------------------------

static gates::Gate
roundEvalGate(int sel)
{
    if (sel >= 0)
        return gates::tableIGate(sel);
    gates::Gate core = gates::sweepGate(unsigned(-sel));
    gates::Gate masked;
    masked.name = core.name + " ZeroCheck";
    masked.expr = core.expr.multipliedBySlot("f_r", nullptr);
    masked.roles = std::move(core.roles);
    masked.roles.push_back(gates::SlotRole::Dense);
    return masked;
}

static void
roundEvalBench(benchmark::State &state, sumcheck::EvalPath path)
{
    const unsigned mu = unsigned(state.range(0));
    gates::Gate gate = roundEvalGate(int(state.range(1)));
    Rng rng(15);
    auto tables = gate.randomTables(mu, rng);
    for (auto _ : state) {
        hash::Transcript tr("bench");
        auto out = sumcheck::prove(poly::VirtualPoly(gate.expr, tables), tr,
                                   rt::Config{.threads = 1}, path);
        benchmark::DoNotOptimize(out);
    }
    poly::GatePlan plan = poly::GatePlan::compile(gate.expr);
    state.counters["muls_per_pair"] =
        double(path == sumcheck::EvalPath::Plan
                   ? plan.mulsPerPair()
                   : plan.naiveMulsPerPair(gate.expr));
    state.SetItemsProcessed(state.iterations() * (1u << mu));
}

static void
BM_RoundEvalNaive(benchmark::State &state)
{
    roundEvalBench(state, sumcheck::EvalPath::Naive);
}

static void
BM_RoundEvalPlan(benchmark::State &state)
{
    roundEvalBench(state, sumcheck::EvalPath::Plan);
}

BENCHMARK(BM_RoundEvalNaive)
    ->Args({12, 22}) // Jellyfish ZeroCheck, degree 7
    ->Args({12, -5}) // Rescue x^5 S-box row, degree 7
    ->Args({12, -9});// high-degree sweep, degree 11
BENCHMARK(BM_RoundEvalPlan)
    ->Args({12, 22})
    ->Args({12, -5})
    ->Args({12, -9});

/**
 * The SIMD-blocked GatePlan hot loop in isolation: one full first-round
 * accumulatePairs sweep (extension + op list + class accumulation) over a
 * 2^mu-row fixture, without the surrounding SumCheck scaffolding (fold,
 * transcript). Items processed = table pairs.
 */
static void
BM_RoundEvalBlocked(benchmark::State &state)
{
    const unsigned mu = unsigned(state.range(0));
    gates::Gate gate = roundEvalGate(int(state.range(1)));
    Rng rng(15);
    auto tables = gate.randomTables(mu, rng);
    poly::GatePlan plan = poly::GatePlan::compile(gate.expr);
    const std::size_t pairs = (std::size_t(1) << mu) / 2;
    std::vector<Fr> acc(plan.accSize()), scratch;
    for (auto _ : state) {
        std::fill(acc.begin(), acc.end(), Fr::zero());
        plan.accumulatePairs(tables, 0, pairs, acc, scratch);
        benchmark::DoNotOptimize(acc.data());
    }
    state.counters["muls_per_pair"] = double(plan.mulsPerPair());
    state.SetItemsProcessed(state.iterations() * pairs);
}

BENCHMARK(BM_RoundEvalBlocked)
    ->Args({12, 22})
    ->Args({12, -9});

// ---------------------------------------------------------------------------
// zkphire::rt thread-scaling benchmarks. The thread count is the benchmark
// argument (an explicit cap, independent of ZKPHIRE_THREADS), so one run
// reports the speedup curve of each parallelized kernel; the proof transcript
// is bit-identical at every point of the curve (asserted in
// tests/test_rt_equivalence.cpp).
// ---------------------------------------------------------------------------

static void
BM_SumcheckProverThreads(benchmark::State &state)
{
    const unsigned mu = 14;
    const unsigned threads = unsigned(state.range(0));
    Rng rng(11);
    gates::Gate gate = gates::tableIGate(20); // Vanilla ZeroCheck polynomial
    auto tables = gate.randomTables(mu, rng);
    for (auto _ : state) {
        hash::Transcript tr("bench");
        auto out = sumcheck::prove(poly::VirtualPoly(gate.expr, tables), tr,
                                   rt::Config{.threads = threads});
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * (1u << mu));
}
BENCHMARK(BM_SumcheckProverThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

static void
BM_MsmPippengerThreads(benchmark::State &state)
{
    const std::size_t n = 4096;
    const unsigned threads = unsigned(state.range(0));
    Rng rng(12);
    std::vector<Fr> scalars;
    std::vector<ec::G1Affine> points;
    ec::G1Affine base = ec::randomG1(rng);
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng));
        points.push_back(i % 8 == 0 ? ec::randomG1(rng) : base);
    }
    for (auto _ : state) {
        auto r = ec::msmPippengerParallel(scalars, points,
                                          rt::Config{.threads = threads});
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MsmPippengerThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

static void
BM_BatchInverseThreads(benchmark::State &state)
{
    const std::size_t n = std::size_t(1) << 16;
    const unsigned threads = unsigned(state.range(0));
    Rng rng(13);
    std::vector<Fr> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        xs.push_back(Fr::random(rng));
    rt::ScopedThreads scope(threads);
    for (auto _ : state) {
        std::vector<Fr> copy = xs;
        ff::batchInverseInPlace(std::span<Fr>(copy));
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_BatchInverseThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

static void
BM_MleFoldThreads(benchmark::State &state)
{
    const unsigned threads = unsigned(state.range(0));
    Rng rng(14);
    poly::Mle m = poly::Mle::random(18, rng);
    Fr r = Fr::random(rng);
    rt::ScopedThreads scope(threads);
    for (auto _ : state) {
        poly::Mle copy = m;
        copy.fixFirstVarInPlace(r);
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() * (m.size() / 2));
}
BENCHMARK(BM_MleFoldThreads)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------------------
// End-to-end service throughput: a fixed batch of small HyperPlonk proofs
// pushed through one engine::ProofService, with the lane count (jobs in
// flight) as the benchmark argument. Items processed = proofs, so the
// items-per-second counter reads directly as proofs/sec. Proofs are
// byte-identical at every lane count; only throughput moves.
// ---------------------------------------------------------------------------

static void
BM_ServiceThroughput(benchmark::State &state)
{
    const unsigned lanes = unsigned(state.range(0));
    constexpr std::size_t kBatch = 4;

    // Shared fixture: SRS, context, and preprocessed keys for kBatch small
    // vanilla circuits (2^5 rows each). Static so the MSM-heavy setup runs
    // once across all benchmark repetitions and lane counts.
    static ff::Rng rng(31);
    static pcs::Srs srs = pcs::Srs::generate(6, rng);
    static engine::ProverContext ctx(srs);
    static std::vector<hyperplonk::Circuit> circuits = [] {
        std::vector<hyperplonk::Circuit> cs;
        for (std::size_t i = 0; i < kBatch; ++i)
            cs.push_back(hyperplonk::randomVanillaCircuit(5, rng));
        return cs;
    }();
    static std::vector<const hyperplonk::Keys *> keys = [] {
        std::vector<const hyperplonk::Keys *> ks;
        for (const auto &c : circuits)
            ks.push_back(&ctx.preprocess(c));
        return ks;
    }();

    std::vector<engine::ProofRequest> requests;
    for (std::size_t i = 0; i < kBatch; ++i)
        requests.push_back({&keys[i]->pk, &circuits[i], nullptr});

    engine::ProofService service(ctx, lanes);
    for (auto _ : state) {
        auto results = service.proveAll(requests);
        for (const auto &r : results)
            if (!r.ok)
                state.SkipWithError(r.error.c_str());
        benchmark::DoNotOptimize(results);
    }
    state.SetItemsProcessed(state.iterations() * kBatch);
    state.counters["lane_threads"] = double(service.laneThreadBudget());
}
BENCHMARK(BM_ServiceThroughput)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

// ---------------------------------------------------------------------------
// Mixed-load tail latency: one large proof plus a burst of small proofs per
// iteration on a 2-lane service. Arg 0 is the FIFO-like baseline (equal
// priorities, no sharding); arg 1 is the scheduled mode (smalls at higher
// priority, intra-proof sharding on), where the phase-split scheduler can
// interleave small jobs between the large proof's setup and online phases.
// The counter to watch is small_p99_ms: the small-request tail must not be
// held hostage by the large request. Latencies are measured per request by
// a dedicated waiter thread (submit -> future resolution, wall clock).
// ---------------------------------------------------------------------------

static void
BM_ServiceMixedLoad(benchmark::State &state)
{
    const bool scheduled = state.range(0) != 0;
    constexpr int kSmall = 8;

    static ff::Rng mixRng(47);
    static pcs::Srs mixSrs = pcs::Srs::generate(8, mixRng);
    static engine::ProverContext mixCtx(mixSrs, {.threads = 2});
    static hyperplonk::Circuit largeCircuit =
        hyperplonk::randomVanillaCircuit(7, mixRng);
    static hyperplonk::Circuit smallCircuit =
        hyperplonk::randomVanillaCircuit(4, mixRng);
    static const hyperplonk::Keys *largeKeys = &mixCtx.preprocess(largeCircuit);
    static const hyperplonk::Keys *smallKeys = &mixCtx.preprocess(smallCircuit);

    engine::ServiceOptions so;
    so.lanes = 2;
    so.sharding = scheduled;
    so.shardMinRows = std::size_t(1) << 6; // large may shard, smalls never
    engine::ProofService service(mixCtx, so);

    engine::SubmitOptions smallSub;
    smallSub.priority = scheduled ? 1 : 0;

    std::vector<double> smallMs;
    std::atomic<bool> failed{false};
    for (auto _ : state) {
        auto largeFut =
            service.submit({&largeKeys->pk, &largeCircuit, nullptr});
        std::array<double, kSmall> lat{};
        std::vector<std::thread> waiters;
        waiters.reserve(kSmall);
        for (int i = 0; i < kSmall; ++i) {
            waiters.emplace_back([&, i] {
                const auto t0 = std::chrono::steady_clock::now();
                engine::ProofResult r =
                    service
                        .submit({&smallKeys->pk, &smallCircuit, nullptr},
                                smallSub)
                        .get();
                lat[i] = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
                if (!r.ok)
                    failed.store(true);
            });
        }
        for (std::thread &t : waiters)
            t.join();
        if (!largeFut.get().ok || failed.load())
            state.SkipWithError("proof failed under mixed load");
        smallMs.insert(smallMs.end(), lat.begin(), lat.end());
    }
    std::sort(smallMs.begin(), smallMs.end());
    if (!smallMs.empty()) {
        const auto at = [&](double q) {
            const std::size_t n = smallMs.size();
            std::size_t idx = std::size_t(std::ceil(q * double(n)));
            return smallMs[std::min(idx == 0 ? 0 : idx - 1, n - 1)];
        };
        state.counters["small_p50_ms"] = at(0.5);
        state.counters["small_p99_ms"] = at(0.99);
    }
    state.SetItemsProcessed(state.iterations() * (kSmall + 1));
}
BENCHMARK(BM_ServiceMixedLoad)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK_MAIN();
