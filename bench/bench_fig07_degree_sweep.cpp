/**
 * @file
 * Figure 7 reproduction: a fixed high-performance SumCheck configuration
 * running the high-degree family f = q1*w1 + q2*w2 + q3*w1^(d-1)*w2 + qc
 * for d = 2..30 at every bandwidth tier, reporting latency and speedup over
 * the 4-thread CPU.
 *
 * Expected shape (paper §VI-A2): low-degree polynomials need HBM-scale
 * bandwidth for ~1000x speedups, while high-degree polynomials reach
 * similar speedups at DDR5-class bandwidth (~256 GB/s), because they do
 * more compute on the same data.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/baseline.hpp"
#include "sim/dse.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main()
{
    const unsigned mu = 24;
    // Fixed high-performance design: same objective, performance-weighted
    // (lambda = 0.2), chosen at 1 TB/s under the same 37 mm^2 cap.
    std::vector<PolyShape> polys;
    for (const gates::Gate &g : gates::trainingSetGates())
        polys.push_back(PolyShape::fromGate(g));
    SumcheckDseOptions opts;
    opts.numVars = mu;
    opts.lambda = 0.2;
    SumcheckDsePick pick = pickSumcheckDesign(polys, 1024, opts);
    std::printf("Figure 7: high-degree sweep on fixed design "
                "%u PEs / %u EEs / %u PLs (%.1f mm^2)\n\n",
                pick.cfg.numPEs, pick.cfg.numEEs, pick.cfg.numPLs,
                pick.cfg.areaMm2(defaultTech()));

    CpuModel cpu4;
    cpu4.threads = 4;
    const double bandwidths[] = {64, 128, 256, 512, 1024, 2048, 4096};

    std::printf("Latency (ms):\n%-4s", "d");
    for (double bw : bandwidths)
        std::printf(" %8.0fGB", bw);
    std::printf(" %10s\n", "CPU ms");
    for (unsigned d = 2; d <= 30; ++d) {
        PolyShape shape = PolyShape::fromGate(gates::sweepGate(d));
        SumcheckWorkload wl;
        wl.shape = shape;
        wl.numVars = mu;
        std::printf("%-4u", d);
        for (double bw : bandwidths)
            std::printf(" %10.1f",
                        simulateSumcheck(pick.cfg, wl, bw).timeMs());
        std::printf(" %10.0f\n", cpu4.sumcheckMs(shape, mu));
    }

    std::printf("\nSpeedup over 4-thread CPU:\n%-4s", "d");
    for (double bw : bandwidths)
        std::printf(" %8.0fGB", bw);
    std::printf("\n");
    double speedup_256_lo = 0, speedup_256_hi = 0;
    for (unsigned d = 2; d <= 30; ++d) {
        PolyShape shape = PolyShape::fromGate(gates::sweepGate(d));
        SumcheckWorkload wl;
        wl.shape = shape;
        wl.numVars = mu;
        double cpu = cpu4.sumcheckMs(shape, mu);
        std::printf("%-4u", d);
        for (double bw : bandwidths) {
            double s = cpu / simulateSumcheck(pick.cfg, wl, bw).timeMs();
            std::printf(" %10.0f", s);
            if (bw == 256 && d == 2)
                speedup_256_lo = s;
            if (bw == 256 && d == 30)
                speedup_256_hi = s;
        }
        std::printf("\n");
    }
    std::printf("\nShape check: at 256 GB/s, speedup grows from %.0fx (d=2) "
                "to %.0fx (d=30) -- high-degree gates reach near-HBM "
                "speedups at DDR-class bandwidth (paper Fig. 7).\n",
                speedup_256_lo, speedup_256_hi);
    return 0;
}
