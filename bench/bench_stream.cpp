/**
 * @file
 * Out-of-core streaming benchmark: peak RSS and wall-clock for the chunked
 * prover paths next to their in-RAM twins, over eq-table builds, synthetic
 * commit-size MSMs, SumCheck, and the full HyperPlonk prover.
 *
 * Each measurement runs in a child process (re-exec of this binary) so
 * getrusage's ru_maxrss is the high-water mark of exactly one
 * configuration. The parent collects the rows, checks the streamed digests
 * against the in-RAM ones (the bit-identity contract), prints the
 * EXPERIMENTS.md tables, and writes BENCH_stream.json.
 *
 *   bench_stream            smoke matrix (CI artifact)
 *   bench_stream --full     adds the 2^24 / 2^26 acceptance-sized runs
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_util.hpp"
#include "ec/msm.hpp"
#include "hash/transcript.hpp"
#include "hyperplonk/circuit.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/serialize.hpp"
#include "poly/mle.hpp"
#include "poly/virtual_poly.hpp"
#include "rt/parallel.hpp"
#include "sumcheck/prover.hpp"

using namespace zkphire;
using ff::Fr;
using ff::Rng;
using bench::fmt;

namespace {

double
peakRssMb()
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
#if defined(__APPLE__)
    return double(ru.ru_maxrss) / (1024.0 * 1024.0);
#else
    return double(ru.ru_maxrss) / 1024.0; // Linux reports KiB
#endif
#else
    return 0.0;
#endif
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

std::string
fnv1a(std::span<const std::uint8_t> bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)h);
    return buf;
}

rt::Config
childConfig(unsigned threads, bool stream, unsigned chunk_log)
{
    rt::Config cfg;
    cfg.threads = threads;
    cfg.streamThreshold = stream ? 1 : SIZE_MAX;
    if (stream)
        cfg.streamChunk = std::size_t(1) << chunk_log;
    return cfg;
}

/** Deterministic scalar generator, regenerable per chunk: chunk c always
 *  produces the same values whether or not other chunks were materialized,
 *  so the streamed and in-RAM runs see identical inputs. */
void
genScalars(std::uint64_t seed, std::size_t chunk_elems, std::size_t begin,
           std::size_t end, Fr *dst)
{
    const std::size_t c = begin / chunk_elems;
    Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (c + 1)));
    for (std::size_t i = begin; i < end; ++i) {
        double u = rng.nextDouble();
        // Witness-like sparsity: ~45% zeros, ~45% ones.
        dst[i - begin] = u < 0.45  ? Fr::zero()
                         : u < 0.9 ? Fr::one()
                                   : Fr::random(rng);
    }
}

/**
 * test=eq / eq_warm: build the eq(x, r) table over mu challenge
 * coordinates. "eq" pays the first-touch cost of a fresh slab; "eq_warm"
 * recycles it through a BufferArena first, which is what a ProverContext's
 * second proof sees (fresh file pages cost real I/O setup on the mapped
 * backend; recycled slabs do not).
 */
std::string
runEq(unsigned mu, bool warm, double *ms)
{
    Rng rng(11);
    std::vector<Fr> r(mu);
    for (auto &v : r)
        v = Fr::random(rng);
    poly::BufferArena arena;
    poly::ScopedArena scope(&arena);
    if (warm) {
        poly::Mle first = poly::Mle::eqTable(r);
        poly::arenaRelease(std::move(first.store()));
    }
    auto t0 = std::chrono::steady_clock::now();
    poly::Mle eq = poly::Mle::eqTable(r);
    *ms = msSince(t0);
    return eq[eq.size() / 3].toHexString();
}

/**
 * test=commit: a commit-shaped single-column MSM over a cycled point pool
 * (a real 2^26 SRS would itself be 6 GB — the synthetic basis keeps the
 * baseline honest while isolating the accumulator's memory behavior).
 * Streamed mode regenerates scalars and points one chunk at a time through
 * ec::MsmAccumulator; in-RAM mode materializes both arrays and runs the
 * one-shot kernel.
 */
std::string
runCommit(unsigned mu, bool stream, unsigned chunk_log, double *ms)
{
    const std::size_t n = std::size_t(1) << mu;
    const std::size_t chunk = std::min(n, std::size_t(1) << chunk_log);
    Rng rng(13);
    std::vector<ec::G1Affine> pool(4096);
    for (auto &p : pool)
        p = ec::randomG1(rng);

    ec::G1Jacobian result;
    if (stream) {
        ec::MsmAccumulator acc(n, 1, ec::currentMsmOptions(), nullptr,
                               chunk);
        std::vector<Fr> scalars(chunk);
        std::vector<ec::G1Affine> points(chunk);
        auto t0 = std::chrono::steady_clock::now();
        for (std::size_t b = 0; b < n; b += chunk) {
            const std::size_t e = std::min(n, b + chunk);
            genScalars(77, chunk, b, e, scalars.data());
            for (std::size_t i = b; i < e; ++i)
                points[i - b] = pool[i % pool.size()];
            acc.add(std::span<const Fr>(scalars.data(), e - b),
                    std::span<const ec::G1Affine>(points.data(), e - b));
        }
        result = acc.finalize()[0];
        *ms = msSince(t0);
    } else {
        std::vector<Fr> scalars(n);
        for (std::size_t b = 0; b < n; b += chunk)
            genScalars(77, chunk, b, std::min(n, b + chunk),
                       scalars.data() + b);
        std::vector<ec::G1Affine> points(n);
        for (std::size_t i = 0; i < n; ++i)
            points[i] = pool[i % pool.size()];
        auto t0 = std::chrono::steady_clock::now();
        result = ec::msmPippengerOpt(scalars, points,
                                     ec::currentMsmOptions());
        *ms = msSince(t0);
    }
    return result.toAffine().x.toHexString();
}

/** test=sumcheck: degree-3 product of three mu-variable tables. */
std::string
runSumcheck(unsigned mu, unsigned chunk_log, double *ms)
{
    const std::size_t n = std::size_t(1) << mu;
    const std::size_t chunk = std::min(n, std::size_t(1) << chunk_log);
    poly::GateExpr expr("stream-bench");
    expr.addSlot("a");
    expr.addSlot("b");
    expr.addSlot("c");
    expr.addTerm(Fr::one(),
                 {poly::SlotId(0), poly::SlotId(1), poly::SlotId(2)});
    std::vector<poly::Mle> tables;
    for (int s = 0; s < 3; ++s) {
        poly::FrTable t = poly::FrTable::make(n);
        for (std::size_t b = 0; b < n; b += chunk) {
            const std::size_t e = std::min(n, b + chunk);
            genScalars(101 + std::uint64_t(s), chunk, b, e, t.data() + b);
            // Emulate the upstream streaming producer (commit releases
            // consumed windows as it goes): drop filled pages chunk by
            // chunk so the measured peak is the sumcheck's own working
            // set, not the synthesis buffer. No-op on the Ram backend.
            t.releaseWindow(b, e);
        }
        tables.emplace_back(std::move(t));
    }
    auto t0 = std::chrono::steady_clock::now();
    hash::Transcript tr("bench-stream");
    sumcheck::ProverOutput out = sumcheck::prove(
        poly::VirtualPoly(expr, std::move(tables)), tr, {});
    *ms = msSince(t0);
    return out.proof.claimedSum.toHexString();
}

/** test=prove: the full HyperPlonk prover; the digest is the proof bytes'
 *  hash, so parent-side equality IS transcript byte-identity. */
std::string
runProve(unsigned mu, const rt::Config &cfg, double *ms)
{
    Rng srs_rng(0xabcd);
    pcs::Srs srs = pcs::Srs::generate(mu + 1, srs_rng);
    Rng rng(17);
    hyperplonk::Circuit c = hyperplonk::randomVanillaCircuit(mu, rng);
    hyperplonk::Keys keys = hyperplonk::setup(c, srs);
    hyperplonk::ProveOptions opts;
    opts.rt = cfg;
    auto t0 = std::chrono::steady_clock::now();
    hyperplonk::HyperPlonkProof proof =
        hyperplonk::prove(keys.pk, c, nullptr, opts);
    *ms = msSince(t0);
    return fnv1a(hyperplonk::serializeProof(proof));
}

int
childMain(const char *test, unsigned mu, unsigned threads, bool stream,
          unsigned chunk_log)
{
    rt::ScopedConfig scope(childConfig(threads, stream, chunk_log));
    double ms = 0;
    std::string digest;
    if (std::strcmp(test, "eq") == 0)
        digest = runEq(mu, false, &ms);
    else if (std::strcmp(test, "eq_warm") == 0)
        digest = runEq(mu, true, &ms);
    else if (std::strcmp(test, "commit") == 0)
        digest = runCommit(mu, stream, chunk_log, &ms);
    else if (std::strcmp(test, "sumcheck") == 0)
        digest = runSumcheck(mu, chunk_log, &ms);
    else if (std::strcmp(test, "prove") == 0)
        digest = runProve(mu, childConfig(threads, stream, chunk_log), &ms);
    else
        return 2;
    std::printf("{\"test\":\"%s\",\"mu\":%u,\"threads\":%u,\"stream\":%d,"
                "\"chunk_log\":%u,\"ms\":%.1f,\"peak_rss_mb\":%.1f,"
                "\"digest\":\"%s\"}\n",
                test, mu, threads, stream ? 1 : 0, chunk_log, ms,
                peakRssMb(), digest.c_str());
    return 0;
}

struct Row {
    std::string test;
    unsigned mu = 0;
    unsigned threads = 1;
    bool stream = false;
    unsigned chunkLog = 0;
    double ms = 0;
    double rssMb = 0;
    std::string digest;
    bool ok = false;
};

/** Crude single-line field extraction (the child emits flat JSON). */
std::string
jsonField(const std::string &line, const std::string &key)
{
    std::size_t p = line.find("\"" + key + "\":");
    if (p == std::string::npos)
        return "";
    p += key.size() + 3;
    bool quoted = line[p] == '"';
    if (quoted)
        ++p;
    std::size_t e = line.find_first_of(quoted ? "\"" : ",}", p);
    return line.substr(p, e - p);
}

Row
runChild(const char *self, const char *test, unsigned mu, unsigned threads,
         bool stream, unsigned chunk_log)
{
    Row row;
    row.test = test;
    row.mu = mu;
    row.threads = threads;
    row.stream = stream;
    row.chunkLog = chunk_log;
    char cmd[512];
    std::snprintf(cmd, sizeof(cmd), "%s child %s %u %u %u %u", self, test,
                  mu, threads, stream ? 1 : 0, chunk_log);
    FILE *p = popen(cmd, "r");
    if (p == nullptr)
        return row;
    char line[1024];
    if (std::fgets(line, sizeof(line), p) != nullptr) {
        std::string s(line);
        row.ms = std::atof(jsonField(s, "ms").c_str());
        row.rssMb = std::atof(jsonField(s, "peak_rss_mb").c_str());
        row.digest = jsonField(s, "digest");
        row.ok = !row.digest.empty();
    }
    pclose(p);
    return row;
}

void
printRow(const Row &r)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  %-8s 2^%-2u  %-6s t=%u chunk=2^%-2u  %9.1f ms  "
                  "%8.1f MB  %s",
                  r.test.c_str(), r.mu, r.stream ? "stream" : "ram",
                  r.threads, r.chunkLog, r.ms, r.rssMb, r.digest.c_str());
    bench::row(buf);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc >= 7 && std::strcmp(argv[1], "child") == 0)
        return childMain(argv[2], unsigned(std::atoi(argv[3])),
                         unsigned(std::atoi(argv[4])),
                         std::atoi(argv[5]) != 0,
                         unsigned(std::atoi(argv[6])));

    const bool full = argc >= 2 && std::strcmp(argv[1], "--full") == 0;
    const char *self = argv[0];

    struct Spec {
        const char *test;
        unsigned mu;
        unsigned threads;
        bool stream;
        unsigned chunkLog;
        bool fullOnly;
    };
    const Spec specs[] = {
        {"eq", 22, 1, false, 20, false},
        {"eq", 22, 1, true, 18, false},
        {"eq_warm", 22, 1, false, 20, false},
        {"eq_warm", 22, 1, true, 18, false},
        {"commit", 20, 1, false, 18, false},
        {"commit", 20, 1, true, 18, false},
        {"sumcheck", 20, 1, false, 18, false},
        {"sumcheck", 20, 1, true, 18, false},
        {"prove", 13, 1, false, 10, false},
        {"prove", 13, 1, true, 10, false},
        {"prove", 13, 4, true, 10, false},
        // Acceptance-sized runs (ISSUE PR 8): 2^24 commit + sumcheck under
        // the RSS cap, 2^26 commit streamed vs in-RAM throughput.
        {"commit", 24, 1, false, 20, true},
        {"commit", 24, 1, true, 20, true},
        {"sumcheck", 24, 1, false, 20, true},
        {"sumcheck", 24, 1, true, 20, true},
        {"commit", 26, 1, false, 20, true},
        {"commit", 26, 1, true, 20, true},
    };

    bench::header("Out-of-core streaming: wall-clock and peak RSS");
    std::vector<Row> rows;
    for (const Spec &s : specs) {
        if (s.fullOnly && !full)
            continue;
        rows.push_back(
            runChild(self, s.test, s.mu, s.threads, s.stream, s.chunkLog));
        printRow(rows.back());
    }

    // Digest contract: every streamed row must reproduce the in-RAM row's
    // bytes for the same (test, mu).
    bool all_ok = true;
    bench::header("Bit-identity and RSS/throughput ratios");
    for (const Row &r : rows) {
        if (!r.stream)
            continue;
        const Row *ram = nullptr;
        for (const Row &o : rows)
            if (!o.stream && o.test == r.test && o.mu == r.mu)
                ram = &o;
        if (ram == nullptr)
            continue;
        const bool match = r.ok && ram->ok && r.digest == ram->digest;
        all_ok = all_ok && match;
        char buf[256];
        std::snprintf(
            buf, sizeof(buf),
            "  %-8s 2^%-2u t=%u  digest %s  rss %5.1f%% of ram  "
            "wall %4.2fx",
            r.test.c_str(), r.mu, r.threads, match ? "MATCH" : "MISMATCH",
            ram->rssMb > 0 ? 100.0 * r.rssMb / ram->rssMb : 0.0,
            ram->ms > 0 ? r.ms / ram->ms : 0.0);
        bench::row(buf);
    }

    FILE *out = std::fopen("BENCH_stream.json", "w");
    if (out != nullptr) {
        std::fprintf(out, "[\n");
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row &r = rows[i];
            std::fprintf(out,
                         "  {\"test\":\"%s\",\"mu\":%u,\"threads\":%u,"
                         "\"stream\":%d,\"chunk_log\":%u,\"ms\":%.1f,"
                         "\"peak_rss_mb\":%.1f,\"digest\":\"%s\"}%s\n",
                         r.test.c_str(), r.mu, r.threads, r.stream ? 1 : 0,
                         r.chunkLog, r.ms, r.rssMb, r.digest.c_str(),
                         i + 1 < rows.size() ? "," : "");
        }
        std::fprintf(out, "]\n");
        std::fclose(out);
        bench::row("\nwrote BENCH_stream.json");
    }
    return all_ok ? 0 : 1;
}
