/**
 * @file
 * Figure 9 reproduction: the three protocol SumChecks (ZeroCheck,
 * PermCheck, OpenCheck) at N = 2^24 Vanilla gates on zkSpeed, zkSpeed+,
 * and zkPHIRE at iso-area / iso-bandwidth (2 TB/s, arbitrary-prime
 * multipliers, ~30-35 mm^2), plus zkPHIRE running Jellyfish workloads at
 * 2x / 4x / 8x gate-count reductions.
 *
 * Paper annotations (speedup over zkSpeed / zkSpeed+): zkPHIRE Vanilla
 * total 1.25x/0.73x ("only 30% slower than zkSpeed+ while programmable");
 * Jellyfish 2x/4x/8x totals 1.01x/0.58x, 2.01x/1.17x, 4.03x/2.33x.
 */
#include <cstdio>

#include "bench_util.hpp"
#include "sim/dse.hpp"
#include "sim/forest.hpp"

using namespace zkphire;
using namespace zkphire::sim;

namespace {

struct SumcheckTriple {
    double zero, perm, open;
    double total() const { return zero + perm + open; }
};

/** Run the three protocol SumChecks on a unit config. */
SumcheckTriple
runTriple(const SumcheckUnitConfig &cfg, unsigned mu, bool jellyfish,
          bool fused, double bw)
{
    auto run = [&](int row, bool fuse) {
        PolyShape shape = PolyShape::fromGate(gates::tableIGate(row));
        SumcheckWorkload wl;
        wl.shape = shape;
        wl.numVars = mu;
        wl.fusedFrSlot = fuse ? int(shape.numSlots) - 1 : -1;
        double ms = simulateSumcheck(cfg, wl, bw).timeMs();
        if (!fuse) {
            // Separate Build-MLE pass: write f_r then read it back.
            double n = std::pow(2.0, double(mu));
            ms += 2.0 * n * 32.0 / (bw * 1e6);
        }
        return ms;
    };
    SumcheckTriple t;
    t.zero = run(jellyfish ? 22 : 20, fused);
    t.perm = run(jellyfish ? 23 : 21, fused);
    t.open = run(24, false);
    return t;
}

} // namespace

int
main()
{
    const double bw = 2048;
    const Tech &tech = defaultTech();

    // zkSpeed / zkSpeed+: fixed-function Vanilla datapath (all 9+2 MLEs in
    // parallel, II = 1) with a resident global scratchpad; arbitrary-prime
    // multipliers; PE count set for ~30.8 mm^2 of SumCheck+Update area.
    SumcheckUnitConfig zk;
    zk.numEEs = 11; // widest Vanilla-protocol polynomial (PermCheck row 21)
    zk.numPLs = 6;  // degree 5 + 1 evaluations
    zk.fixedPrime = false;
    zk.globalScratchpad = true;
    zk.fullyUnrolled = true; // fixed-function: all terms concurrent
    zk.fuseUpdates = false;
    zk.bankWords = 1 << 15;
    // Unrolled Vanilla-protocol lane: shared extensions across terms plus
    // exactly the product/update multipliers the widest polynomial (the
    // PermCheck row) needs: 11 updates + sum_t (d_t - 1) * 6 points ~= 59.
    zk.unrolledMulsPerPe = 59;
    // PE count chosen for zkSpeed's reported 30.8 mm^2 SumCheck+Update
    // compute area (its global MLE scratchpad is accounted separately,
    // matching the paper's "we believe this comparison is fair").
    zk.numPEs = 1;
    while (true) {
        SumcheckUnitConfig next = zk;
        next.numPEs = zk.numPEs + 1;
        if (next.computeAreaMm2(tech) > 30.8)
            break;
        zk = next;
    }
    SumcheckUnitConfig zkp = zk;
    zkp.fuseUpdates = true; // zkSpeed+ pipelines updates into extensions

    // zkPHIRE: programmable unit chosen by the Fig. 6 objective on the
    // training set at iso-area (35.24 mm^2 vs zkSpeed's 30.8 mm^2).
    std::vector<PolyShape> training;
    for (const gates::Gate &g : gates::trainingSetGates())
        training.push_back(PolyShape::fromGate(g));
    SumcheckDseOptions opts;
    opts.numVars = 24;
    opts.areaCapMm2 = 35.24;
    opts.lambda = 0.8;
    opts.fixedPrime = false;
    SumcheckDsePick pick = pickSumcheckDesign(training, bw, opts);

    std::printf("Figure 9: protocol SumChecks at N=2^24 Vanilla, 2 TB/s, "
                "arbitrary primes\n");
    std::printf("zkSpeed/+ : %u PEs fixed-function (%.1f mm^2); zkPHIRE: "
                "%u/%u/%u programmable (%.1f mm^2)\n\n",
                zk.numPEs, zk.areaMm2(tech), pick.cfg.numPEs,
                pick.cfg.numEEs, pick.cfg.numPLs,
                pick.cfg.areaMm2(tech));

    SumcheckTriple s_zk = runTriple(zk, 24, false, false, bw);
    SumcheckTriple s_zkp = runTriple(zkp, 24, false, false, bw);
    SumcheckTriple s_ph = runTriple(pick.cfg, 24, false, true, bw);
    SumcheckTriple s_j2 = runTriple(pick.cfg, 23, true, true, bw);
    SumcheckTriple s_j4 = runTriple(pick.cfg, 22, true, true, bw);
    SumcheckTriple s_j8 = runTriple(pick.cfg, 21, true, true, bw);

    auto print_row = [&](const char *name, const SumcheckTriple &t) {
        std::printf("%-24s %9.2f %9.2f %9.2f %9.2f   %5.2fx/%5.2fx\n", name,
                    t.zero, t.perm, t.open, t.total(),
                    s_zk.total() / t.total(), s_zkp.total() / t.total());
    };
    std::printf("%-24s %9s %9s %9s %9s   %s\n", "design (runtime ms)",
                "ZeroChk", "PermChk", "OpenChk", "Total",
                "vs zkSpeed/zkSpeed+");
    print_row("zkSpeed    (Vanilla)", s_zk);
    print_row("zkSpeed+   (Vanilla)", s_zkp);
    print_row("zkPHIRE    (Vanilla)", s_ph);
    print_row("zkPHIRE (Jellyfish 2x)", s_j2);
    print_row("zkPHIRE (Jellyfish 4x)", s_j4);
    print_row("zkPHIRE (Jellyfish 8x)", s_j8);

    std::printf("\nPaper totals over zkSpeed/zkSpeed+: Vanilla 1.25x/0.73x, "
                "J2x 1.01x/0.58x, J4x 2.01x/1.17x, J8x 4.03x/2.33x.\n");
    std::printf("Shape checks: zkPHIRE(Vanilla) within ~30%% of zkSpeed+ "
                "(programmability cost), Jellyfish 2x roughly break-even, "
                "4x clearly ahead (paper: \"a 4x reduction is sufficient to "
                "outperform Vanilla on both\").\n");
    return 0;
}
