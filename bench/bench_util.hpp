/**
 * @file
 * Shared formatting helpers for the experiment-reproduction benches. Every
 * bench prints the paper's reference numbers (where published) next to the
 * model's output so EXPERIMENTS.md can record paper-vs-measured.
 */
#ifndef ZKPHIRE_BENCH_UTIL_HPP
#define ZKPHIRE_BENCH_UTIL_HPP

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace zkphire::bench {

inline void
header(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

inline void
row(const std::string &line)
{
    std::printf("%s\n", line.c_str());
}

inline std::string
fmt(double v, int prec = 3)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

inline std::string
fmtSpeedup(double v)
{
    char buf[64];
    if (v >= 100)
        std::snprintf(buf, sizeof(buf), "%.0fx", v);
    else
        std::snprintf(buf, sizeof(buf), "%.2fx", v);
    return buf;
}

/** Geometric mean of a vector of positive values. */
inline double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0;
    double acc = 0;
    for (double x : xs)
        acc += std::log(x);
    return std::exp(acc / double(xs.size()));
}

} // namespace zkphire::bench

#endif // ZKPHIRE_BENCH_UTIL_HPP
