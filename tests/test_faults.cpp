/**
 * @file
 * Fault-tolerance tests: failpoint injection, cooperative cancellation,
 * retry-with-degradation.
 *
 * Four families:
 *   - Failpoint mechanics: schedule parsing, trigger modes (nth / seeded
 *     probability / fire caps), exception-kind mapping, hit counters.
 *   - Slab-store degradation: injected ENOSPC at slab creation falls back
 *     to the Ram backend; injected failure at slab growth migrates the
 *     live data to RAM instead of throwing mid-proof.
 *   - Service recovery: injected prover throws resolve typed ProverError
 *     without poisoning the lane; cancel(jobId) resolves queued jobs
 *     immediately and running jobs at the next round boundary; deadlines
 *     abort mid-proof; resource-class failures retry under forced
 *     streaming and stay byte-identical to a fault-free run.
 *   - FaultSoak: a randomized failpoint schedule over the 12-job mixed
 *     load — every future must resolve a typed status (the CI soak leg
 *     re-runs this family under ASan/TSan with a ZKPHIRE_FAILPOINTS
 *     schedule from the environment).
 *
 * Failpoints are process-global, so every non-soak test arms its own
 * sites through the FaultTest fixture, which clears them on both sides.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdlib>
#include <thread>

#include "engine/service.hpp"
#include "hyperplonk/serialize.hpp"
#include "hyperplonk/verifier.hpp"
#include "pcs/mkzg.hpp"
#include "poly/mle.hpp"
#include "poly/mle_store.hpp"
#include "rt/cancel.hpp"
#include "rt/failpoint.hpp"
#include "rt/parallel.hpp"

using namespace zkphire;
using namespace zkphire::hyperplonk;
using engine::ProofStatus;
using ff::Fr;
using ff::Rng;
using rt::FailKind;
using rt::FailSpec;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

namespace {

const pcs::Srs &
sharedSrs()
{
    static Rng rng(0xfa1fa1);
    static pcs::Srs srs = pcs::Srs::generate(9, rng);
    return srs;
}

std::vector<std::uint8_t>
proofBytes(const HyperPlonkProof &proof)
{
    return serializeProof(proof);
}

/** One circuit + keys + fault-free reference bytes. */
struct Fixture {
    Circuit circuit;
    Keys keys;
    std::vector<std::uint8_t> reference;
};

Fixture
makeFixture(unsigned mu, bool jellyfish, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit circuit = jellyfish ? randomJellyfishCircuit(mu, rng)
                                : randomVanillaCircuit(mu, rng);
    Keys keys = setup(circuit, sharedSrs());
    std::vector<std::uint8_t> reference = proofBytes(prove(keys.pk, circuit));
    return Fixture{std::move(circuit), std::move(keys), std::move(reference)};
}

/** Shared fixtures, built lazily on first use. Always touch these BEFORE
 *  arming failpoints: the reference prove() must run fault-free. */
Fixture &
smallFixture()
{
    static Fixture f = makeFixture(4, false, 7001);
    return f;
}

Fixture &
bigFixture()
{
    static Fixture f = makeFixture(8, true, 7002);
    return f;
}

/** Clears global failpoint state on both sides of every test. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { rt::clearFailpoints(); }
    void TearDown() override { rt::clearFailpoints(); }
};

} // namespace

// ---------------------------------------------------------------------------
// Failpoint mechanics
// ---------------------------------------------------------------------------

TEST_F(FaultTest, DisarmedSitesAreFree)
{
    EXPECT_NO_THROW(rt::failpoint("no.such.site"));
    EXPECT_EQ(rt::failpointErrno("no.such.site"), 0);
    EXPECT_EQ(rt::failpointHits("no.such.site"), 0u);
}

TEST_F(FaultTest, ScheduleParsingArmsAndSkipsMalformed)
{
    const std::size_t applied = rt::setFailpointsFromSpec(
        "a.site=throw:nth=3;bad entry;b.site=enospc:p=0.5:seed=9;"
        "c.site=bogus_kind;d.site=sleep:ms=1:count=2");
    EXPECT_EQ(applied, 3u); // a.site, b.site, d.site; two malformed skipped
    EXPECT_NO_THROW(rt::failpoint("a.site")); // nth=3: hits 1,2 pass
    EXPECT_NO_THROW(rt::failpoint("a.site"));
    EXPECT_THROW(rt::failpoint("a.site"), rt::InjectedFault);
    EXPECT_NO_THROW(rt::failpoint("a.site")); // nth implies fire-once
    EXPECT_EQ(rt::failpointHits("a.site"), 4u);
    EXPECT_EQ(rt::failpointFires("a.site"), 1u);
}

TEST_F(FaultTest, KindsMapToExceptionAndErrnoStyles)
{
    rt::setFailpoint("k.throw", FailSpec{});
    rt::setFailpoint("k.enomem", FailSpec{.kind = FailKind::Enomem});
    rt::setFailpoint("k.enospc", FailSpec{.kind = FailKind::Enospc});
    rt::setFailpoint("k.eintr", FailSpec{.kind = FailKind::Eintr});

    EXPECT_THROW(rt::failpoint("k.throw"), rt::InjectedFault);
    EXPECT_THROW(rt::failpoint("k.enomem"), std::bad_alloc);
    try {
        rt::failpoint("k.enospc");
        FAIL() << "enospc failpoint did not throw";
    } catch (const std::system_error &e) {
        EXPECT_EQ(e.code().value(), ENOSPC);
    }
    // EINTR only makes sense at a syscall wrapper: throw-style no-op.
    EXPECT_NO_THROW(rt::failpoint("k.eintr"));

    EXPECT_EQ(rt::failpointErrno("k.enomem"), ENOMEM);
    EXPECT_EQ(rt::failpointErrno("k.enospc"), ENOSPC);
    EXPECT_EQ(rt::failpointErrno("k.eintr"), EINTR);
}

TEST_F(FaultTest, SeededProbabilityIsReproducible)
{
    const auto fires = [](std::uint64_t seed) {
        rt::setFailpoint("p.site",
                         FailSpec{.kind = FailKind::Throw, .p = 0.5,
                                  .nth = 0, .maxFires = UINT64_MAX,
                                  .seed = seed});
        std::uint64_t n = 0;
        for (int i = 0; i < 64; ++i) {
            try {
                rt::failpoint("p.site");
            } catch (const rt::InjectedFault &) {
                ++n;
            }
        }
        rt::clearFailpoint("p.site");
        return n;
    };
    const std::uint64_t a = fires(11), b = fires(11), c = fires(12);
    EXPECT_EQ(a, b); // same seed, same draw stream
    EXPECT_GT(a, 8u);
    EXPECT_LT(a, 56u); // p=0.5 over 64 hits stays far from the extremes
    (void)c;
}

TEST_F(FaultTest, MaxFiresCapsInjection)
{
    rt::setFailpoint("cap.site",
                     FailSpec{.kind = FailKind::Throw, .p = 1.0, .nth = 0,
                              .maxFires = 2});
    unsigned thrown = 0;
    for (int i = 0; i < 5; ++i) {
        try {
            rt::failpoint("cap.site");
        } catch (const rt::InjectedFault &) {
            ++thrown;
        }
    }
    EXPECT_EQ(thrown, 2u);
    EXPECT_EQ(rt::failpointFires("cap.site"), 2u);
}

// ---------------------------------------------------------------------------
// Cancellation primitives
// ---------------------------------------------------------------------------

TEST_F(FaultTest, CancelTokenBasics)
{
    rt::CancelToken none;
    EXPECT_FALSE(none.cancelled());
    EXPECT_NO_THROW(none.throwIfCancelled());

    rt::CancelSource src;
    rt::CancelToken tok = src.token();
    EXPECT_FALSE(tok.cancelled());
    src.requestCancel();
    EXPECT_EQ(tok.reason(), rt::CancelReason::Cancelled);
    EXPECT_THROW(tok.throwIfCancelled(), rt::OperationCancelled);

    // Copies share state; reset() detaches to fresh state.
    rt::CancelSource copy = src;
    EXPECT_TRUE(copy.cancelled());
    src.reset();
    EXPECT_FALSE(src.cancelled());
    EXPECT_TRUE(copy.cancelled()); // the old state is untouched
}

TEST_F(FaultTest, CancelTokenDeadlineLatches)
{
    rt::CancelSource src;
    src.setDeadline(steady_clock::now() - milliseconds(1));
    EXPECT_EQ(src.token().reason(), rt::CancelReason::Deadline);
    // An explicit cancel cannot overwrite the latched deadline reason.
    src.requestCancel();
    EXPECT_EQ(src.token().reason(), rt::CancelReason::Deadline);
}

TEST_F(FaultTest, ScopedCancelInstallsAmbientToken)
{
    EXPECT_EQ(rt::cancelReason(), rt::CancelReason::None);
    rt::CancelSource src;
    {
        rt::ScopedCancel scope(src.token());
        EXPECT_FALSE(rt::cancelRequested());
        src.requestCancel();
        EXPECT_TRUE(rt::cancelRequested());
        EXPECT_THROW(rt::checkCancel(), rt::OperationCancelled);
        {
            // The ScopedConfig rule: an invalid token inherits.
            rt::ScopedCancel inherit{rt::CancelToken{}};
            EXPECT_TRUE(rt::cancelRequested());
        }
    }
    EXPECT_EQ(rt::cancelReason(), rt::CancelReason::None);
    EXPECT_NO_THROW(rt::checkCancel());
}

// ---------------------------------------------------------------------------
// Slab-store degradation
// ---------------------------------------------------------------------------

TEST_F(FaultTest, SlabCreateFailureFallsBackToRam)
{
    using poly::FrTable;
    using poly::StoreKind;
    rt::setFailpoint("slab.create", FailSpec{.kind = FailKind::Enospc});
    FrTable t = FrTable::make(std::size_t(1) << 12, StoreKind::Mapped);
#ifdef __linux__
    EXPECT_GE(rt::failpointHits("slab.create"), 1u);
#endif
    // Creation failure degrades, never throws: the table lands on RAM and
    // is fully usable.
    EXPECT_FALSE(t.isMapped());
    ASSERT_EQ(t.size(), std::size_t(1) << 12);
    t[0] = Fr::fromU64(17);
    t[t.size() - 1] = Fr::fromU64(99);
    EXPECT_EQ(t[0], Fr::fromU64(17));
    EXPECT_EQ(t[t.size() - 1], Fr::fromU64(99));
}

TEST_F(FaultTest, SlabGrowFailureMigratesDataToRam)
{
    using poly::FrTable;
    using poly::StoreKind;
    FrTable t = FrTable::make(1024, StoreKind::Mapped);
    if (!t.isMapped())
        GTEST_SKIP() << "no mapped backend on this platform";
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i] = Fr::fromU64(i + 1);

    rt::setFailpoint("slab.grow", FailSpec{.kind = FailKind::Enospc});
    const std::size_t grown = std::size_t(1) << 15;
    t.resize(grown); // capacity exceeded -> grow path -> injected ENOSPC
    EXPECT_GE(rt::failpointFires("slab.grow"), 1u);

    // The grow failure migrated the table to RAM with the prefix intact
    // and the growth zero-filled — values are backend-independent.
    EXPECT_FALSE(t.isMapped());
    ASSERT_EQ(t.size(), grown);
    for (std::size_t i = 0; i < 1024; ++i)
        ASSERT_EQ(t[i], Fr::fromU64(i + 1));
    EXPECT_EQ(t[1024], Fr::zero());
    EXPECT_EQ(t[grown - 1], Fr::zero());
}

TEST_F(FaultTest, ProducerFaultPropagatesAcrossPrefetchThread)
{
    Rng rng(4242);
    const unsigned mu = 8;
    std::vector<poly::Mle> polys;
    for (int i = 0; i < 2; ++i)
        polys.push_back(poly::Mle::random(mu, rng));
    std::vector<pcs::ChunkProducer> producers;
    for (const poly::Mle &p : polys)
        producers.push_back([&p](std::size_t b, std::size_t e, Fr *dst) {
            std::copy(p.data() + b, p.data() + e, dst);
        });

    rt::Config cfg;
    cfg.streamThreshold = 1;
    cfg.streamChunk = 64; // 2^8 table -> 4 chunks through the pipeline
    rt::ScopedConfig scope(cfg);

    const std::vector<pcs::Commitment> reference =
        pcs::commitBatchStreamed(sharedSrs(), mu, producers);

    // The producer callback runs on the prefetch side of the double-buffer
    // pipeline; a fault there must surface to the consumer as the original
    // exception type, not hang or abort.
    rt::setFailpoint("chunk.producer",
                     FailSpec{.kind = FailKind::Enomem, .nth = 2});
    EXPECT_THROW(pcs::commitBatchStreamed(sharedSrs(), mu, producers),
                 std::bad_alloc);
    EXPECT_EQ(rt::failpointFires("chunk.producer"), 1u);

    // The pipeline unwound cleanly: the next call succeeds and matches.
    rt::clearFailpoints();
    EXPECT_EQ(pcs::commitBatchStreamed(sharedSrs(), mu, producers), reference);
}

// ---------------------------------------------------------------------------
// Service recovery
// ---------------------------------------------------------------------------

TEST_F(FaultTest, InjectedProverThrowResolvesTypedErrorAndLaneSurvives)
{
    Fixture &fx = smallFixture();
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    rt::setFailpoint("sumcheck.round",
                     FailSpec{.kind = FailKind::Throw, .p = 1.0, .nth = 1});
    auto bad = service.submit({&fx.keys.pk, &fx.circuit, nullptr});
    engine::ProofResult res = bad.get();
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.status, ProofStatus::ProverError);
    EXPECT_NE(res.error.find("injected fault"), std::string::npos);

    // The throw was caught at the lane seam: the same lane must produce a
    // clean, reference-identical proof immediately after.
    rt::clearFailpoints();
    engine::ProofResult good =
        service.submit({&fx.keys.pk, &fx.circuit, nullptr}).get();
    ASSERT_TRUE(good.ok);
    EXPECT_EQ(proofBytes(good.proof), fx.reference);
    EXPECT_EQ(service.metrics().failed, 1u);
    EXPECT_EQ(service.metrics().completed, 1u);
}

TEST_F(FaultTest, CancelQueuedJobResolvesCancelled)
{
    Fixture &blocker = bigFixture();
    Fixture &small = smallFixture();
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    // Slow every sumcheck round so the blocker holds the lane long enough
    // for the queued victim to be cancelled deterministically.
    rt::setFailpoint("sumcheck.round",
                     FailSpec{.kind = FailKind::Sleep, .p = 1.0, .nth = 0,
                              .maxFires = UINT64_MAX, .seed = 1,
                              .sleepMs = 10});
    auto fb = service.submit({&blocker.keys.pk, &blocker.circuit, nullptr});
    engine::JobHandle victim =
        service.submitJob({&small.keys.pk, &small.circuit, nullptr});

    EXPECT_FALSE(service.cancel(victim.id + 1000)); // unknown id
    EXPECT_TRUE(service.cancel(victim.id));
    // Resolution is immediate — it must not wait for the blocker's lane.
    ASSERT_EQ(victim.future.wait_for(std::chrono::seconds(5)),
              std::future_status::ready);
    engine::ProofResult res = victim.future.get();
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.status, ProofStatus::Cancelled);
    EXPECT_FALSE(service.cancel(victim.id)); // already resolved

    rt::clearFailpoints();
    EXPECT_TRUE(fb.get().ok); // the blocker itself is unaffected
    EXPECT_EQ(service.metrics().cancelled, 1u);
}

TEST_F(FaultTest, CancelRunningJobFreesLaneAtRoundBoundary)
{
    Fixture &blocker = bigFixture();
    Fixture &small = smallFixture();
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    // Widen every round boundary so the cancel lands mid-proof with many
    // rounds (and sleeps) still ahead of it.
    rt::setFailpoint("sumcheck.round",
                     FailSpec{.kind = FailKind::Sleep, .p = 1.0, .nth = 0,
                              .maxFires = UINT64_MAX, .seed = 1,
                              .sleepMs = 25});
    engine::JobHandle running =
        service.submitJob({&blocker.keys.pk, &blocker.circuit, nullptr});
    // Wait until the prover is demonstrably inside its online phase.
    while (rt::failpointHits("sumcheck.round") < 2)
        std::this_thread::yield();
    EXPECT_TRUE(service.cancel(running.id));
    engine::ProofResult res = running.future.get();
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.status, ProofStatus::Cancelled);

    // The lane was freed at the boundary and is immediately reusable.
    rt::clearFailpoints();
    engine::ProofResult next =
        service.submit({&small.keys.pk, &small.circuit, nullptr}).get();
    ASSERT_TRUE(next.ok);
    EXPECT_EQ(proofBytes(next.proof), small.reference);
}

TEST_F(FaultTest, DeadlineExpiresMidProof)
{
    Fixture &blocker = bigFixture();
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    // ~25 ms per sumcheck round makes the proof take far longer than the
    // 120 ms deadline, which therefore expires mid-execution (not while
    // queued: the lane is idle and picks the job up immediately).
    rt::setFailpoint("sumcheck.round",
                     FailSpec{.kind = FailKind::Sleep, .p = 1.0, .nth = 0,
                              .maxFires = UINT64_MAX, .seed = 1,
                              .sleepMs = 25});
    auto fut =
        service.submit({&blocker.keys.pk, &blocker.circuit, nullptr},
                       engine::SubmitOptions::deadlineIn(milliseconds(120)));
    engine::ProofResult res = fut.get();
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.status, ProofStatus::DeadlineExpired);
    EXPECT_EQ(service.metrics().expiredDeadline, 1u);
}

TEST_F(FaultTest, ResourceFailureRetriesDegradedAndStaysByteIdentical)
{
    Fixture &fx = bigFixture();
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    // First sumcheck round of attempt 1 fails with ENOSPC (resource
    // class); the retry runs under forced streaming and must reproduce
    // the fault-free reference bytes exactly.
    rt::setFailpoint("sumcheck.round",
                     FailSpec{.kind = FailKind::Enospc, .p = 1.0, .nth = 1});
    engine::SubmitOptions sub;
    sub.retry.maxAttempts = 2;
    sub.retry.backoff = milliseconds(1);
    engine::ProofResult res =
        service.submit({&fx.keys.pk, &fx.circuit, nullptr}, sub).get();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(proofBytes(res.proof), fx.reference);

    engine::ServiceMetrics sm = service.metrics();
    EXPECT_EQ(sm.retries, 1u);
    EXPECT_EQ(sm.degradedRetries, 1u);
    EXPECT_EQ(sm.completed, 1u);
    EXPECT_EQ(sm.failed, 0u);
}

TEST_F(FaultTest, InjectedFaultKindIsNeverRetried)
{
    Fixture &fx = smallFixture();
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    // InjectedFault is deliberately not a resource type: even with retry
    // budget it must resolve ProverError on the first attempt.
    rt::setFailpoint("sumcheck.round",
                     FailSpec{.kind = FailKind::Throw, .p = 1.0, .nth = 1});
    engine::SubmitOptions sub;
    sub.retry.maxAttempts = 3;
    engine::ProofResult res =
        service.submit({&fx.keys.pk, &fx.circuit, nullptr}, sub).get();
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.status, ProofStatus::ProverError);
    EXPECT_EQ(service.metrics().retries, 0u);
}

TEST_F(FaultTest, ExhaustedRetryBudgetResolvesProverError)
{
    Fixture &fx = smallFixture();
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    // Every attempt fails: p=1.0 with no fire cap survives the retry.
    rt::setFailpoint("sumcheck.round",
                     FailSpec{.kind = FailKind::Enomem});
    engine::SubmitOptions sub;
    sub.retry.maxAttempts = 3;
    sub.retry.backoff = milliseconds(1);
    engine::ProofResult res =
        service.submit({&fx.keys.pk, &fx.circuit, nullptr}, sub).get();
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.status, ProofStatus::ProverError);
    engine::ServiceMetrics sm = service.metrics();
    EXPECT_EQ(sm.retries, 2u); // attempts 2 and 3
    EXPECT_EQ(sm.failed, 1u);
}

// ---------------------------------------------------------------------------
// Randomized mixed-load soak
// ---------------------------------------------------------------------------

TEST(FaultSoak, MixedLoadEveryFutureResolvesTyped)
{
    // Build all fixtures (and their fault-free references) BEFORE arming.
    // The clear must come first: with ZKPHIRE_FAILPOINTS in the
    // environment, the lazy first-hit load would otherwise arm the
    // schedule in the middle of the reference prove() below. clear
    // consumes the lazy load; loadFailpointsFromEnv() re-reads it after.
    rt::clearFailpoints();
    std::vector<Fixture> fixtures;
    fixtures.push_back(makeFixture(4, false, 8101));
    fixtures.push_back(makeFixture(5, true, 8102));
    fixtures.push_back(makeFixture(6, false, 8103));
    fixtures.push_back(makeFixture(8, true, 8104));

    // The CI soak leg provides its own ZKPHIRE_FAILPOINTS schedule; local
    // runs arm a representative one covering every compiled-in site.
    if (std::getenv("ZKPHIRE_FAILPOINTS") == nullptr) {
        rt::setFailpointsFromSpec(
            "sumcheck.round=throw:p=0.02:seed=1;"
            "msm.accum=enomem:p=0.02:seed=2;"
            "chunk.producer=enospc:p=0.05:seed=3;"
            "slab.create=enospc:p=0.3:seed=4;"
            "slab.grow=enospc:p=0.1:seed=5;"
            "rt.worker=throw:p=0.002:seed=6");
    } else {
        rt::loadFailpointsFromEnv();
    }

    {
        // streamThreshold=1 pushes every table through the slab store so
        // the slab.create/slab.grow sites actually see traffic; the tiny
        // chunk makes even these test-sized tables span multiple chunks,
        // so the streamed-commit pipeline (msm.accum) does too.
        engine::ProverContext ctx(
            sharedSrs(),
            {.threads = 2, .streamThreshold = 1, .streamChunk = 64});
        engine::ServiceOptions so;
        so.lanes = 2;
        so.queueCapacity = 6;
        so.admission = engine::AdmissionPolicy::Block;
        engine::ProofService service(ctx, so);

        constexpr unsigned kJobs = 12;
        std::vector<engine::JobHandle> handles;
        handles.reserve(kJobs);
        for (unsigned i = 0; i < kJobs; ++i) {
            const Fixture &fx = fixtures[i % fixtures.size()];
            engine::SubmitOptions sub;
            sub.priority = int(i % 3);
            if (i % 4 == 1)
                sub = engine::SubmitOptions::deadlineIn(
                    milliseconds(400 + 150 * i), sub.priority);
            sub.retry.maxAttempts = (i % 2 == 0) ? 3 : 1;
            sub.retry.backoff = milliseconds(1);
            handles.push_back(
                service.submitJob({&fx.keys.pk, &fx.circuit, nullptr}, sub));
        }
        // A couple of cancels land wherever they land — queued, running,
        // or already resolved; all three must be safe.
        service.cancel(handles[2].id);
        service.cancel(handles[7].id);

        unsigned ok = 0;
        for (unsigned i = 0; i < kJobs; ++i) {
            // The hang check: every future must resolve, bounded.
            ASSERT_EQ(handles[i].future.wait_for(std::chrono::minutes(5)),
                      std::future_status::ready)
                << "job " << i << " hung";
            engine::ProofResult res = handles[i].future.get();
            switch (res.status) {
            case ProofStatus::Ok: {
                ASSERT_TRUE(res.ok);
                const Fixture &fx = fixtures[i % fixtures.size()];
                // Whatever mix of faults, retries, degradation, and
                // sharding the job saw, Ok means reference bytes.
                EXPECT_EQ(proofBytes(res.proof), fx.reference)
                    << "job " << i;
                ++ok;
                break;
            }
            case ProofStatus::ProverError:
            case ProofStatus::Cancelled:
            case ProofStatus::DeadlineExpired:
            case ProofStatus::QueueFull:
            case ProofStatus::ServiceStopping:
                EXPECT_FALSE(res.ok);
                EXPECT_FALSE(res.error.empty());
                break;
            default:
                FAIL() << "job " << i << ": unexpected status";
            }
        }
        engine::ServiceMetrics sm = service.metrics();
        EXPECT_EQ(sm.submitted, kJobs);
        EXPECT_EQ(sm.inFlight, 0u);
        EXPECT_EQ(sm.queueDepth, 0u);
        EXPECT_EQ(sm.accepted, sm.completed + sm.failed +
                                   sm.expiredDeadline + sm.cancelled);
        EXPECT_EQ(sm.completed, ok);
    }
    rt::clearFailpoints();
}
