#!/usr/bin/env python3
"""ctest driver for the zkphire-lint fixture suite.

Asserts that each seeded fixture in tests/lint_fixtures/ is flagged with
its expected rule id, that the clean fixture produces zero findings, and
that the production tree (src/) stays lint-clean — the ratchet that keeps
new secret-dependent branches, lock inversions, unindexed parallel writes,
and transcript nondeterminism out of the codebase.

Runs the lexer front-end explicitly so the assertions are independent of
whether libclang happens to be installed.
"""

import json
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
LINT = os.path.join(ROOT, "tools", "lint", "zkphire_lint.py")

# fixture basename -> (rule id, minimum findings, exact?)
EXPECT = {
    "ct_branch_violation.cpp": ("ct-kernel", 3, True),
    "lock_order_violation.cpp": ("lock-order", 1, True),
    "parallel_capture_violation.cpp": ("parallel-capture", 1, True),
    "transcript_unordered_violation.cpp": ("transcript-determinism", 2, True),
    "clean.cpp": (None, 0, True),
}


def run_lint(args):
    proc = subprocess.run(
        [sys.executable, LINT, "--engine=lexer", "--json"] + args,
        cwd=ROOT, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        print(proc.stdout)
        print(proc.stderr, file=sys.stderr)
        raise SystemExit(f"zkphire_lint.py crashed (exit {proc.returncode})")
    return json.loads(proc.stdout), proc.returncode


def main():
    failures = []

    findings, rc = run_lint(["tests/lint_fixtures"])
    if rc != 1:
        failures.append("fixture run should exit 1 (seeded violations)")
    by_file = {}
    for f in findings:
        by_file.setdefault(os.path.basename(f["path"]), []).append(f)

    for name, (rule, count, exact) in EXPECT.items():
        got = by_file.get(name, [])
        rules = sorted({f["rule"] for f in got})
        if rule is None:
            if got:
                failures.append(f"{name}: expected clean, got {rules}")
            continue
        hits = [f for f in got if f["rule"] == rule]
        if len(hits) < count or (exact and len(hits) != count):
            failures.append(
                f"{name}: expected {'exactly' if exact else '>='} {count} "
                f"[{rule}] finding(s), got {len(hits)} (all rules: {rules})")
        strays = [f for f in got if f["rule"] != rule]
        if strays:
            failures.append(
                f"{name}: unexpected extra rules "
                f"{sorted({f['rule'] for f in strays})}")

    # The production tree must stay clean: this is the regression lock for
    # the PR-8 annotation/fix sweep.
    src_findings, rc = run_lint(["-p", "build", "src"])
    if rc != 0 or src_findings:
        for f in src_findings[:20]:
            print(f"  {f['path']}:{f['line']}: [{f['rule']}] {f['message']}")
        failures.append(
            f"src/ must be lint-clean, got {len(src_findings)} finding(s)")

    if failures:
        for msg in failures:
            print(f"FAIL: {msg}", file=sys.stderr)
        return 1
    print(f"lint fixtures OK: {len(EXPECT)} fixtures, "
          f"{sum(len(v) for v in by_file.values())} seeded findings matched, "
          f"src clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
