// Seeded transcript-determinism violation: an unordered_map and
// std::random_device in a TU that includes hash/transcript.hpp (so its
// iteration order and entropy could reach proof bytes). Not compiled into
// the library; consumed by the lint fixture suite only.
#include <random>
#include <string>
#include <unordered_map>

#include "hash/transcript.hpp"

namespace zkphire::lintfix {

void
absorbLabels(hash::Transcript &t,
             const std::unordered_map<std::string, int> &labels)
{
    // unordered_map iteration order is implementation-defined: the bytes
    // absorbed below differ across standard libraries (and across runs
    // with randomized hashing), breaking transcript reproducibility.
    for (const auto &kv : labels)
        t.appendU64("label", std::uint64_t(kv.second));
    std::random_device rd; // nondeterministic entropy near a transcript
    t.appendU64("salt", rd());
}

} // namespace zkphire::lintfix
