// Seeded parallel-capture violation: a [&]-captured accumulator written
// without loop-index subscripting inside a parallelFor body — the exact
// shape that makes transcripts depend on thread count. Not compiled into
// the library; consumed by the lint fixture suite only.
#include <cstddef>
#include <vector>

#include "rt/parallel.hpp"

namespace zkphire::lintfix {

double
racySum(const std::vector<double> &xs)
{
    double total = 0.0;
    std::vector<double> per_item(xs.size());
    rt::parallelFor(0, xs.size(), [&](std::size_t i) {
        per_item[i] = xs[i] * 2.0; // fine: subscripted by the loop index
        total += xs[i];            // violation: races and reorders
    });
    return total;
}

} // namespace zkphire::lintfix
