// Seeded ct-kernel violation: branches and indexes on secret limb data.
// This file is NOT compiled into the library — it exists so the lint
// fixture suite can assert the checker flags exactly this shape.
#include "ff/fr.hpp"

namespace zkphire::lintfix {

using ff::Fr;

// A "table lookup + early exit" pattern on witness limbs: the classic
// cache-timing leak the ct-kernel pass exists to catch.
unsigned
leakyDigest(const Fr &secret, const unsigned (&table)[16])
{
    const auto big = secret.toBig();
    unsigned acc = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        if (big.limb[i] == 0) // secret-dependent branch
            return acc;
        acc += table[big.limb[i] & 0xf]; // secret-dependent index
        acc += unsigned(big.limb[i] % 7); // variable-latency modulo
    }
    return acc;
}

} // namespace zkphire::lintfix
