// Clean fixture: touches every checker's domain without violating any
// rule — branchless limb handling, manifest-ordered locks, loop-indexed
// parallel writes, ordered containers near the transcript. The fixture
// suite asserts zkphire-lint reports zero findings here.
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "ff/fr.hpp"
#include "hash/transcript.hpp"
#include "rt/parallel.hpp"

namespace zkphire::lintfix {

using ff::Fr;

/** Branchless limb fold: no secret-dependent control flow or indexing. */
std::uint64_t
foldLimbs(const Fr &secret)
{
    const auto big = secret.toBig();
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < 4; ++i)
        acc ^= big.limb[i] * 0x9e3779b97f4a7c15ull;
    return acc;
}

struct OrderedLocks {
    std::mutex qMu;
    std::mutex mMu;
    int queued = 0;
    int metrics = 0;

    void
    drain()
    {
        std::lock_guard<std::mutex> ql(qMu);
        std::lock_guard<std::mutex> ml(mMu);
        queued = 0;
        ++metrics;
    }
};

/** Deterministic parallel map: every write lands at the loop index. */
std::vector<double>
doubled(const std::vector<double> &xs)
{
    std::vector<double> out(xs.size());
    rt::parallelFor(0, xs.size(), [&](std::size_t i) {
        const double scaled = xs[i] * 2.0;
        out[i] = scaled;
    });
    return out;
}

/** Ordered container iteration: transcript bytes are reproducible. */
void
absorbLabels(hash::Transcript &t, const std::map<std::string, int> &labels)
{
    for (const auto &kv : labels)
        t.appendU64("label", std::uint64_t(kv.second));
}

} // namespace zkphire::lintfix
