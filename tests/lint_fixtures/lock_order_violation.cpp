// Seeded lock-order violation: acquires qMu while holding mMu, inverting
// the manifest edge qMu -> mMu (tools/lint/zkphire_lint.json). Not
// compiled into the library; consumed by the lint fixture suite only.
#include <mutex>

namespace zkphire::lintfix {

struct InvertedLocks {
    std::mutex qMu;
    std::mutex mMu;
    int queued = 0;
    int metrics = 0;

    void
    correctOrder()
    {
        std::lock_guard<std::mutex> ql(qMu);
        std::lock_guard<std::mutex> ml(mMu);
        ++queued;
        ++metrics;
    }

    void
    invertedOrder()
    {
        std::lock_guard<std::mutex> ml(mMu);
        std::lock_guard<std::mutex> ql(qMu); // violates qMu -> mMu
        ++metrics;
        ++queued;
    }
};

} // namespace zkphire::lintfix
