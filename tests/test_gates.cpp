/**
 * @file
 * Gate library tests: every Table I row builds, has the expected composite
 * degree, evaluates consistently against hand-written formulas, and
 * produces role-appropriate random tables.
 */
#include <gtest/gtest.h>

#include "gates/gate_library.hpp"

using namespace zkphire::gates;
using zkphire::ff::Fr;
using zkphire::ff::Rng;
using zkphire::poly::Mle;

TEST(GateLibrary, AllTableIGatesBuild)
{
    auto gates = tableIGates();
    ASSERT_EQ(gates.size(), 25u);
    for (int id = 0; id < 25; ++id) {
        EXPECT_EQ(gates[id].id, id);
        EXPECT_EQ(gates[id].roles.size(), gates[id].expr.numSlots());
        EXPECT_GE(gates[id].expr.numTerms(), 1u);
        EXPECT_GE(gates[id].degree(), 1u);
    }
}

TEST(GateLibrary, ExpectedCompositeDegrees)
{
    // Composite degree = max factor occurrences in any expanded term.
    const std::size_t expected[25] = {
        3,           // 0: qmul*a*b
        3,           // 1: A*B*f_tau
        2,           // 2: SumABC*Z
        4, 5, 5,     // 3-5: curve checks (q*x^3*... gating)
        4, 3,        // 6-7: incomplete addition
        4, 5,        // 8-9
        6, 6, 6, 6,  // 10-13: q*xp*xq*gate*bracket
        4, 4, 4, 4,  // 14-17
        4, 4,        // 18-19
        4,           // 20: qM*w1*w2*f_r
        5,           // 21: phi*D1*D2*D3*f_r
        7,           // 22: qH*w^5*f_r
        7,           // 23: phi*D1..D5*f_r
        2,           // 24: y_i*f_ri
    };
    auto gates = tableIGates();
    for (int id = 0; id < 25; ++id)
        EXPECT_EQ(gates[id].degree(), expected[id]) << "gate " << id;
}

TEST(GateLibrary, VanillaGateMatchesManualFormula)
{
    Gate g = tableIGate(20);
    ASSERT_EQ(g.expr.numSlots(), 9u);
    Rng rng(81);
    std::vector<Fr> v(9);
    for (auto &x : v)
        x = Fr::random(rng);
    // Slot order: qL qR qM qO qC w1 w2 w3 f_r.
    Fr expect = (v[0] * v[5] + v[1] * v[6] + v[2] * v[5] * v[6] -
                 v[3] * v[7] + v[4]) *
                v[8];
    EXPECT_EQ(g.expr.evaluate(v), expect);
}

TEST(GateLibrary, JellyfishGateMatchesManualFormula)
{
    Gate g = tableIGate(22);
    ASSERT_EQ(g.expr.numSlots(), 19u);
    Rng rng(82);
    std::vector<Fr> v(19);
    for (auto &x : v)
        x = Fr::random(rng);
    // Slots: q1 q2 q3 q4 qM1 qM2 qH1 qH2 qH3 qH4 qO qecc qC w1..w5 f_r.
    auto pow5 = [](const Fr &x) { return x * x * x * x * x; };
    Fr w1 = v[13], w2 = v[14], w3 = v[15], w4 = v[16], w5 = v[17];
    Fr expect = (v[0] * w1 + v[1] * w2 + v[2] * w3 + v[3] * w4 +
                 v[4] * w1 * w2 + v[5] * w3 * w4 + v[6] * pow5(w1) +
                 v[7] * pow5(w2) + v[8] * pow5(w3) + v[9] * pow5(w4) -
                 v[10] * w5 + v[11] * w1 * w2 * w3 * w4 + v[12]) *
                v[18];
    EXPECT_EQ(g.expr.evaluate(v), expect);
}

TEST(GateLibrary, IncompleteAddition1MatchesManualFormula)
{
    Gate g = tableIGate(6);
    // Slots: q, x_r, x_q, x_p, y_p, y_q.
    Rng rng(83);
    std::vector<Fr> v(6);
    for (auto &x : v)
        x = Fr::random(rng);
    Fr dx = v[3] - v[2];
    Fr dy = v[4] - v[5];
    Fr expect = v[0] * ((v[1] + v[2] + v[3]) * dx * dx - dy * dy);
    EXPECT_EQ(g.expr.evaluate(v), expect);
}

TEST(GateLibrary, CompleteAddition2MatchesManualFormula)
{
    Gate g = tableIGate(9);
    // Slots: q, x_q, x_p, alpha, y_p, lambda.
    Rng rng(84);
    std::vector<Fr> v(6);
    for (auto &x : v)
        x = Fr::random(rng);
    Fr expect = v[0] * (Fr::one() - (v[1] - v[2]) * v[3]) *
                (v[4].dbl() * v[5] - Fr::fromU64(3) * v[2] * v[2]);
    EXPECT_EQ(g.expr.evaluate(v), expect);
}

TEST(GateLibrary, PermCheckUsesAlphaCoefficient)
{
    Fr alpha = Fr::fromU64(13);
    Gate g = tableIGate(21, alpha);
    // Slots: pi p1 p2 phi D1 D2 D3 N1 N2 N3 f_r.
    ASSERT_EQ(g.expr.numSlots(), 11u);
    Rng rng(85);
    std::vector<Fr> v(11);
    for (auto &x : v)
        x = Fr::random(rng);
    Fr expect =
        (v[0] - v[1] * v[2] +
         alpha * (v[3] * v[4] * v[5] * v[6] - v[7] * v[8] * v[9])) *
        v[10];
    EXPECT_EQ(g.expr.evaluate(v), expect);
}

TEST(GateLibrary, OpenCheckStructure)
{
    Gate g = tableIGate(24);
    EXPECT_EQ(g.expr.numSlots(), 12u);
    EXPECT_EQ(g.expr.numTerms(), 6u);
    EXPECT_EQ(g.degree(), 2u);
}

TEST(GateLibrary, TrainingSetIsRows0Through19)
{
    auto training = trainingSetGates();
    ASSERT_EQ(training.size(), 20u);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(training[i].id, i);
}

TEST(GateLibrary, RandomTablesHonorRoles)
{
    Gate g = tableIGate(20);
    Rng rng(86);
    auto tables = g.randomTables(10, rng);
    ASSERT_EQ(tables.size(), g.expr.numSlots());
    for (std::size_t s = 0; s < tables.size(); ++s) {
        auto stats = tables[s].sparsity();
        switch (g.roles[s]) {
          case SlotRole::Selector:
            EXPECT_NEAR(stats.fracZero + stats.fracOne, 1.0, 1e-9);
            break;
          case SlotRole::Witness:
            EXPECT_GT(stats.fracZero + stats.fracOne, 0.8);
            break;
          case SlotRole::Dense:
            EXPECT_LT(stats.fracZero + stats.fracOne, 0.05);
            break;
        }
    }
}

class SweepGateDegrees : public ::testing::TestWithParam<unsigned> {};

TEST_P(SweepGateDegrees, DominantTermHasDPlusOneFactors)
{
    unsigned d = GetParam();
    Gate g = sweepGate(d);
    EXPECT_EQ(g.degree(), d + 1) << "q3*w1^(d-1)*w2 plus the selector";
    EXPECT_EQ(g.expr.numSlots(), 6u);
    EXPECT_EQ(g.expr.numTerms(), 4u);
    // Evaluate against the closed form.
    Rng rng(100 + d);
    std::vector<Fr> v(6);
    for (auto &x : v)
        x = Fr::random(rng);
    // Slots: q1 q2 q3 qc w1 w2.
    Fr expect =
        v[0] * v[4] + v[1] * v[5] + v[2] * v[4].pow(d - 1) * v[5] + v[3];
    EXPECT_EQ(g.expr.evaluate(v), expect);
}

INSTANTIATE_TEST_SUITE_P(Degrees, SweepGateDegrees,
                         ::testing::Values(2u, 3u, 6u, 7u, 11u, 12u, 30u));
