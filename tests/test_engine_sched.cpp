/**
 * @file
 * ProofService scheduling, admission, sharding, and lifecycle tests.
 *
 * Three families:
 *   - Admission/scheduling semantics: bounded queue under both policies,
 *     typed deadline expiry, priority ordering, budget splits.
 *   - Lifecycle: the submit/shutdown race (every future resolves with a
 *     typed status, never a broken promise), destructor drain.
 *   - Determinism: intra-proof sharding at 1/2/4 lanes produces bytes
 *     identical to the one-shot hyperplonk::prove path — the service may
 *     move work between lanes but may never move the transcript.
 *
 * The lifecycle and hot-swap tests are the TSan targets (-DZKPHIRE_TSAN CI
 * leg runs every test_engine* suite).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "engine/service.hpp"
#include "hyperplonk/serialize.hpp"
#include "hyperplonk/verifier.hpp"

using namespace zkphire;
using namespace zkphire::hyperplonk;
using engine::AdmissionPolicy;
using engine::ProofStatus;
using ff::Rng;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

namespace {

const pcs::Srs &
sharedSrs()
{
    static Rng rng(0xced01e);
    static pcs::Srs srs = pcs::Srs::generate(9, rng);
    return srs;
}

std::vector<std::uint8_t>
proofBytes(const HyperPlonkProof &proof)
{
    return serializeProof(proof);
}

/** One circuit + keys + the legacy-path reference bytes. */
struct Fixture {
    Circuit circuit;
    Keys keys;
    std::vector<std::uint8_t> reference;
};

Fixture
makeFixture(unsigned mu, bool jellyfish, std::uint64_t seed)
{
    Rng rng(seed);
    Circuit circuit = jellyfish ? randomJellyfishCircuit(mu, rng)
                                : randomVanillaCircuit(mu, rng);
    Keys keys = setup(circuit, sharedSrs());
    std::vector<std::uint8_t> reference = proofBytes(prove(keys.pk, circuit));
    return Fixture{std::move(circuit), std::move(keys), std::move(reference)};
}

/** A big job that keeps a lane busy for at least a few milliseconds. */
Fixture
makeBlocker(std::uint64_t seed)
{
    return makeFixture(/*mu=*/8, /*jellyfish=*/true, seed);
}

} // namespace

TEST(LatencyHistogram, QuantilesAndMerge)
{
    engine::LatencyHistogram h;
    EXPECT_EQ(h.quantileMs(0.5), 0.0);
    for (int i = 0; i < 90; ++i)
        h.record(1.0); // ~1 ms bucket
    for (int i = 0; i < 10; ++i)
        h.record(50.0); // ~50 ms bucket
    EXPECT_EQ(h.count(), 100u);
    EXPECT_NEAR(h.meanMs(), 5.9, 1e-9);
    EXPECT_EQ(h.maxMs(), 50.0);
    // p50 falls in the 1 ms bucket, p99 in the 50 ms bucket; quantiles are
    // bucket-interpolated so allow a factor-2 envelope, and ordering must
    // always hold.
    EXPECT_LT(h.quantileMs(0.5), 3.0);
    EXPECT_GT(h.quantileMs(0.99), 10.0);
    EXPECT_LE(h.quantileMs(0.99), h.maxMs());
    EXPECT_LE(h.quantileMs(0.5), h.quantileMs(0.99));

    engine::LatencyHistogram other;
    other.record(100.0);
    h.merge(other);
    EXPECT_EQ(h.count(), 101u);
    EXPECT_EQ(h.maxMs(), 100.0);
}

TEST(ProofServiceAdmission, RejectPolicyReturnsTypedQueueFull)
{
    Fixture blocker = makeBlocker(901);
    Fixture small = makeFixture(4, false, 902);

    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ServiceOptions so;
    so.lanes = 1;
    so.queueCapacity = 1;
    so.admission = AdmissionPolicy::Reject;
    engine::ProofService service(ctx, so);

    // Once the lane picks the blocker up (the spin below outlasts lane
    // start-up), one small job fills the single queue slot while the lane
    // is busy; the next submissions must bounce with the typed status
    // instead of piling up.
    auto fb = service.submit({&blocker.keys.pk, &blocker.circuit, nullptr});
    while (service.metrics().queueDepth != 0)
        std::this_thread::yield();
    auto f1 = service.submit({&small.keys.pk, &small.circuit, nullptr});
    std::vector<std::future<engine::ProofResult>> bounced;
    for (int i = 0; i < 3; ++i)
        bounced.push_back(
            service.submit({&small.keys.pk, &small.circuit, nullptr}));

    unsigned rejected = 0;
    for (auto &f : bounced) {
        engine::ProofResult r = f.get();
        if (r.status == ProofStatus::QueueFull) {
            EXPECT_FALSE(r.ok);
            EXPECT_FALSE(r.error.empty());
            ++rejected;
        } else {
            EXPECT_EQ(r.status, ProofStatus::Ok); // lane raced us to the slot
        }
    }
    EXPECT_GE(rejected, 1u);

    engine::ProofResult rb = fb.get();
    ASSERT_TRUE(rb.ok) << rb.error;
    EXPECT_EQ(proofBytes(rb.proof), blocker.reference);
    engine::ProofResult r1 = f1.get();
    ASSERT_TRUE(r1.ok) << r1.error;
    EXPECT_EQ(proofBytes(r1.proof), small.reference);

    engine::ServiceMetrics sm = service.metrics();
    EXPECT_EQ(sm.rejectedQueueFull, rejected);
    EXPECT_EQ(sm.submitted, sm.accepted + sm.rejectedQueueFull);
}

TEST(ProofServiceAdmission, BlockPolicyParksSubmitterUntilSpace)
{
    Fixture blocker = makeBlocker(903);
    Fixture small = makeFixture(4, false, 904);

    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ServiceOptions so;
    so.lanes = 1;
    so.queueCapacity = 1;
    so.admission = AdmissionPolicy::Block;
    engine::ProofService service(ctx, so);

    auto fb = service.submit({&blocker.keys.pk, &blocker.circuit, nullptr});
    auto f1 = service.submit({&small.keys.pk, &small.circuit, nullptr});

    std::atomic<bool> returned{false};
    std::future<engine::ProofResult> f2;
    std::thread submitter([&] {
        f2 = service.submit({&small.keys.pk, &small.circuit, nullptr});
        returned.store(true);
    });
    // The queue slot is taken and the lane is grinding the blocker, so the
    // submitter should still be parked shortly after it started.
    std::this_thread::sleep_for(milliseconds(2));
    EXPECT_FALSE(returned.load());
    submitter.join(); // unblocks once the lane pops f1's job

    ASSERT_TRUE(fb.get().ok);
    EXPECT_EQ(proofBytes(f1.get().proof), small.reference);
    EXPECT_EQ(proofBytes(f2.get().proof), small.reference);

    engine::ServiceMetrics sm = service.metrics();
    EXPECT_EQ(sm.rejectedQueueFull, 0u);
    EXPECT_EQ(sm.accepted, 3u);
}

TEST(ProofServiceAdmission, DeadlineExpiryIsTyped)
{
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});

    // Already past at submission: rejected before touching the queue.
    {
        Fixture small = makeFixture(4, false, 905);
        engine::ProofService service(ctx, 1);
        engine::SubmitOptions past;
        past.deadline = steady_clock::now() - milliseconds(1);
        engine::ProofResult r =
            service.submit({&small.keys.pk, &small.circuit, nullptr}, past)
                .get();
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.status, ProofStatus::DeadlineExpired);
        EXPECT_EQ(service.metrics().rejectedDeadline, 1u);
    }

    // Expires while queued behind a blocker: typed at lane pickup. The
    // expiring job runs at lower priority so the blocker's phases always
    // schedule ahead of it.
    {
        Fixture blocker = makeBlocker(906);
        Fixture small = makeFixture(4, false, 907);
        engine::ProofService service(ctx, 1);
        auto fb =
            service.submit({&blocker.keys.pk, &blocker.circuit, nullptr});
        engine::SubmitOptions tight;
        tight.priority = -1;
        tight.deadline = steady_clock::now() + milliseconds(1);
        auto fs =
            service.submit({&small.keys.pk, &small.circuit, nullptr}, tight);

        engine::ProofResult rs = fs.get();
        EXPECT_FALSE(rs.ok);
        EXPECT_EQ(rs.status, ProofStatus::DeadlineExpired);
        EXPECT_FALSE(rs.error.empty());
        ASSERT_TRUE(fb.get().ok);
        EXPECT_EQ(service.metrics().expiredDeadline, 1u);
    }
}

TEST(ProofServiceAdmission, PriorityBeatsArrivalOrder)
{
    Fixture blocker = makeBlocker(908);
    Fixture small = makeFixture(5, false, 909);

    engine::ProverContext ctx(sharedSrs(), {.threads = 1});
    engine::ProofService service(ctx, 1);

    // Occupy the lane, then stack three default-priority jobs and one
    // high-priority job behind it. The high one must finish while every
    // low one is still waiting — under FIFO it would finish last.
    auto fb = service.submit({&blocker.keys.pk, &blocker.circuit, nullptr});
    std::vector<std::future<engine::ProofResult>> lows;
    for (int i = 0; i < 3; ++i)
        lows.push_back(service.submit({&small.keys.pk, &small.circuit, nullptr}));
    engine::SubmitOptions hi;
    hi.priority = 10;
    auto fh = service.submit({&small.keys.pk, &small.circuit, nullptr}, hi);

    engine::ProofResult rh = fh.get();
    ASSERT_TRUE(rh.ok) << rh.error;
    for (auto &f : lows)
        EXPECT_EQ(f.wait_for(milliseconds(0)), std::future_status::timeout)
            << "a default-priority job finished before the high-priority one";

    EXPECT_EQ(proofBytes(rh.proof), small.reference);
    ASSERT_TRUE(fb.get().ok);
    for (auto &f : lows) {
        engine::ProofResult r = f.get();
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(proofBytes(r.proof), small.reference);
    }
}

TEST(ProofServiceLifecycle, DestructorDrainsQueuedJobs)
{
    Fixture small = makeFixture(5, true, 910);
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});

    std::vector<std::future<engine::ProofResult>> futures;
    {
        engine::ProofService service(ctx, 1);
        for (int i = 0; i < 4; ++i)
            futures.push_back(
                service.submit({&small.keys.pk, &small.circuit, nullptr}));
        // Destroyed with (up to) three jobs still queued: the drain must
        // finish them, not drop them.
    }
    for (auto &f : futures) {
        engine::ProofResult r = f.get();
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(proofBytes(r.proof), small.reference);
    }
}

TEST(ProofServiceLifecycle, SubmitShutdownRaceResolvesEveryFuture)
{
    // The regression this locks down: submit() racing the destructor used
    // to enqueue into a queue the lanes had already drained past, so the
    // promise was destroyed unfulfilled and future.get() threw
    // broken_promise. Now the stopping check under the queue lock resolves
    // the future with a typed ServiceStopping instead.
    //
    // Shape: a real job keeps the destructor inside its lane join for
    // milliseconds; the main thread submits malformed requests throughout
    // that window and stops at the first ServiceStopping it observes (which
    // arrives moments after ~ProofService sets the flag, while the drain
    // still has the blocker to finish). Every future must resolve.
    // The blocker proof (tens of ms serial) must dwarf the 2 ms submit
    // window below — that margin is what keeps the raw-pointer submits
    // inside the destructor's drain.
    Fixture blocker = makeFixture(5, true, 911);
    engine::ProverContext ctx(sharedSrs(), {.threads = 1});

    const int iterations = 150;
    for (int it = 0; it < iterations; ++it) {
        auto service =
            std::make_unique<engine::ProofService>(ctx, /*lanes=*/1);
        // Raw handle for the submit loop: the unique_ptr itself belongs to
        // the destroyer thread once it starts (reading it here would race).
        engine::ProofService *svc = service.get();
        auto fb = svc->submit({&blocker.keys.pk, &blocker.circuit, nullptr});

        std::thread destroyer([&] { service.reset(); });

        // Submits must stay inside the destructor's drain window (the lane
        // join blocks on the in-flight blocker, which far outlives this
        // bound), so stop early and stop at the first resolved future.
        std::vector<std::future<engine::ProofResult>> futures;
        const auto giveUp = steady_clock::now() + milliseconds(2);
        while (steady_clock::now() < giveUp) {
            futures.push_back(svc->submit({nullptr, nullptr, nullptr}));
            if (futures.back().wait_for(milliseconds(0)) ==
                std::future_status::ready) {
                break; // stopping was observed (or the lane raced us)
            }
        }
        destroyer.join();

        unsigned stopping = 0, bad = 0;
        for (auto &f : futures) {
            engine::ProofResult r = f.get(); // must never throw
            EXPECT_FALSE(r.ok);
            if (r.status == ProofStatus::ServiceStopping)
                ++stopping;
            else if (r.status == ProofStatus::BadRequest)
                ++bad;
            else
                ADD_FAILURE() << "unexpected status "
                              << int(r.status) << ": " << r.error;
        }
        (void)stopping;
        (void)bad;
        engine::ProofResult rb = fb.get();
        // The blocker either drained to completion or (if it was still
        // queued when stopping was set and its lane exited first) resolved
        // as stopping — both are fine; broken_promise is not.
        EXPECT_TRUE(rb.ok ||
                    rb.status == ProofStatus::ServiceStopping)
            << rb.error;
    }
}

TEST(ProofServiceBudget, LaneBudgetsSumToContextBudget)
{
    engine::ProverContext five(sharedSrs(), {.threads = 5});
    engine::ProofService uneven(five, 2);
    EXPECT_EQ(uneven.laneThreadBudget(), 2u); // the BASE of the split
    ASSERT_EQ(uneven.laneThreadBudgets().size(), 2u);
    EXPECT_EQ(uneven.laneThreadBudgets()[0], 3u); // remainder goes first
    EXPECT_EQ(uneven.laneThreadBudgets()[1], 2u);
    unsigned sum = 0;
    for (unsigned b : uneven.laneThreadBudgets())
        sum += b;
    EXPECT_EQ(sum, 5u);

    // Oversubscribed: every lane serial, no lane starved to zero.
    engine::ProverContext one(sharedSrs(), {.threads = 1});
    engine::ProofService oversub(one, 3);
    EXPECT_EQ(oversub.laneThreadBudget(), 1u);
    for (unsigned b : oversub.laneThreadBudgets())
        EXPECT_EQ(b, 1u);
}

TEST(ProofServiceSharding, ShardedProofBitIdenticalAcrossLaneCounts)
{
    // The tentpole determinism claim: one request sharded across idle lanes
    // serializes to exactly the single-lane (and one-shot legacy) bytes.
    Fixture vanilla = makeFixture(7, false, 912);
    Fixture jelly = makeFixture(6, true, 913);

    for (unsigned lanes : {1u, 2u, 4u}) {
        engine::ProverContext ctx(sharedSrs(), {.threads = 4});
        engine::ServiceOptions so;
        so.lanes = lanes;
        so.sharding = true;
        so.shardMinRows = 1; // force the decision for these small circuits
        engine::ProofService service(ctx, so);
        // Let every lane reach its idle state so the reservation scan can
        // actually see helpers.
        std::this_thread::sleep_for(milliseconds(10));

        for (const Fixture *fx : {&vanilla, &jelly}) {
            engine::ProofResult r =
                service.submit({&fx->keys.pk, &fx->circuit, nullptr}).get();
            ASSERT_TRUE(r.ok) << "lanes=" << lanes << ": " << r.error;
            EXPECT_EQ(proofBytes(r.proof), fx->reference)
                << "lanes=" << lanes;
            EXPECT_TRUE(verify(fx->keys.vk, r.proof).ok);
            if (lanes >= 2) {
                EXPECT_GE(r.shardLanes, 2u)
                    << "sharding never engaged at lanes=" << lanes;
            } else {
                EXPECT_EQ(r.shardLanes, 1u);
            }
        }
        engine::ServiceMetrics sm = service.metrics();
        if (lanes >= 2) {
            EXPECT_GT(sm.shardedPhases, 0u);
            EXPECT_GT(sm.shardHelperLanes, 0u);
        }
    }
}

TEST(ProofServiceSharding, ConcurrentMixStaysByteIdentical)
{
    // Sharding under contention: a burst of mixed jobs on 4 lanes, where
    // groups form and dissolve as the queue drains. Every proof must still
    // match its reference bytes regardless of which phases sharded.
    std::vector<Fixture> fleet;
    fleet.push_back(makeFixture(7, false, 914));
    fleet.push_back(makeFixture(4, true, 915));
    fleet.push_back(makeFixture(6, true, 916));
    fleet.push_back(makeFixture(5, false, 917));

    engine::ProverContext ctx(sharedSrs(), {.threads = 4});
    engine::ServiceOptions so;
    so.lanes = 4;
    so.sharding = true;
    so.shardMinRows = 1;
    engine::ProofService service(ctx, so);

    std::vector<std::future<engine::ProofResult>> futures;
    for (int round = 0; round < 3; ++round)
        for (const Fixture &fx : fleet)
            futures.push_back(
                service.submit({&fx.keys.pk, &fx.circuit, nullptr}));
    for (std::size_t i = 0; i < futures.size(); ++i) {
        engine::ProofResult r = futures[i].get();
        ASSERT_TRUE(r.ok) << "job " << i << ": " << r.error;
        EXPECT_EQ(proofBytes(r.proof), fleet[i % fleet.size()].reference)
            << "job " << i;
    }
}

TEST(ProofServiceSharding, ShardingOffNeverReservesHelpers)
{
    Fixture fx = makeFixture(6, false, 918);
    engine::ProverContext ctx(sharedSrs(), {.threads = 4});
    engine::ServiceOptions so;
    so.lanes = 4;
    so.sharding = false;
    engine::ProofService service(ctx, so);
    std::this_thread::sleep_for(milliseconds(5));
    engine::ProofResult r =
        service.submit({&fx.keys.pk, &fx.circuit, nullptr}).get();
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.shardLanes, 1u);
    EXPECT_EQ(proofBytes(r.proof), fx.reference);
    EXPECT_EQ(service.metrics().shardedPhases, 0u);
}

TEST(ProofServiceConfig, HotSwapDuringTrafficIsRaceFreeAndDeterministic)
{
    // ProverContext::setConfig used to race the lanes' per-job config read;
    // under -DZKPHIRE_TSAN this test is the regression for the synchronized
    // snapshot. Determinism must also hold: minGrain changes how work is
    // chunked, never what bytes come out.
    Fixture fx = makeFixture(6, true, 919);
    engine::ProverContext ctx(sharedSrs(), {.threads = 2});
    engine::ProofService service(ctx, 2);

    std::atomic<bool> stop{false};
    std::thread swapper([&] {
        std::size_t grain = 1;
        while (!stop.load(std::memory_order_relaxed)) {
            ctx.setConfig({.threads = 2, .minGrain = grain});
            grain = grain >= 4096 ? 1 : grain * 2;
        }
    });

    std::vector<std::future<engine::ProofResult>> futures;
    for (int i = 0; i < 8; ++i)
        futures.push_back(service.submit({&fx.keys.pk, &fx.circuit, nullptr}));
    for (auto &f : futures) {
        engine::ProofResult r = f.get();
        ASSERT_TRUE(r.ok) << r.error;
        EXPECT_EQ(proofBytes(r.proof), fx.reference);
    }
    stop.store(true);
    swapper.join();
}

TEST(ProofServiceMetrics, SnapshotIsConsistentAfterQuiesce)
{
    Fixture fx = makeFixture(5, false, 920);
    engine::ProverContext ctx(sharedSrs(), {.threads = 2});
    engine::ProofService service(ctx, 2);

    std::vector<engine::ProofRequest> reqs(
        6, {&fx.keys.pk, &fx.circuit, nullptr});
    auto results = service.proveAll(reqs);
    for (const auto &r : results)
        ASSERT_TRUE(r.ok) << r.error;

    engine::ServiceMetrics sm = service.metrics();
    EXPECT_EQ(sm.submitted, 6u);
    EXPECT_EQ(sm.accepted, 6u);
    EXPECT_EQ(sm.completed, 6u);
    EXPECT_EQ(sm.failed, 0u);
    EXPECT_EQ(sm.rejectedQueueFull + sm.rejectedDeadline +
                  sm.rejectedStopping + sm.expiredDeadline,
              0u);
    EXPECT_EQ(sm.queueDepth, 0u);
    EXPECT_EQ(sm.inFlight, 0u);
    // Each proof passes through both phases exactly once.
    EXPECT_EQ(sm.setupMs.count(), 6u);
    EXPECT_EQ(sm.onlineMs.count(), 6u);
    EXPECT_EQ(sm.queueWaitMs.count(), 12u); // one wait per phase
    EXPECT_EQ(sm.totalMs.count(), 6u);
    EXPECT_GT(sm.totalMs.maxMs(), 0.0);
    EXPECT_LE(sm.totalMs.quantileMs(0.5), sm.totalMs.quantileMs(0.99));
    EXPECT_GT(sm.uptimeMs, 0.0);
    EXPECT_GT(sm.proofsPerSec, 0.0);

    // Failure counting: a malformed request lands in failed, not completed.
    engine::ProofResult bad = service.submit({nullptr, nullptr, nullptr}).get();
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(bad.status, ProofStatus::BadRequest);
    EXPECT_EQ(service.metrics().failed, 1u);
}
