/**
 * @file
 * Keccak/SHA3 known-answer tests (vectors cross-checked against Python
 * hashlib and the well-known Ethereum empty hash) and Fiat-Shamir
 * transcript behaviour tests.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "hash/keccak.hpp"
#include "hash/transcript.hpp"

using namespace zkphire::hash;
using zkphire::ff::Fr;

namespace {

std::vector<std::uint8_t>
bytesOf(const char *s)
{
    return {reinterpret_cast<const std::uint8_t *>(s),
            reinterpret_cast<const std::uint8_t *>(s) + std::strlen(s)};
}

} // namespace

TEST(Sha3, EmptyString)
{
    EXPECT_EQ(toHex(sha3_256({})),
        "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3, Abc)
{
    auto msg = bytesOf("abc");
    EXPECT_EQ(toHex(sha3_256(msg)),
        "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3, ExactlyOneRateBlock)
{
    // 136 zero bytes: exercises the pad-into-new-block path.
    std::vector<std::uint8_t> msg(136, 0);
    EXPECT_EQ(toHex(sha3_256(msg)),
        "e772c9cf9eb9c991cdfcf125001b454fdbc0a95f188d1b4c844aa032ad6e075e");
}

TEST(Sha3, MultiBlock)
{
    std::vector<std::uint8_t> msg(200);
    for (int i = 0; i < 200; ++i)
        msg[i] = std::uint8_t(i);
    EXPECT_EQ(toHex(sha3_256(msg)),
        "5f728f63bf5ee48c77f453c0490398fa645b8d4c4e56be9a41cfec344d6ca899");
}

TEST(Keccak, EmptyStringEthereumVector)
{
    EXPECT_EQ(toHex(keccak256({})),
        "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470");
}

TEST(Sha3, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> msg(500);
    for (int i = 0; i < 500; ++i)
        msg[i] = std::uint8_t(i * 7);
    Keccak256Sponge sponge(0x06);
    sponge.absorb(std::span(msg).subspan(0, 1));
    sponge.absorb(std::span(msg).subspan(1, 135));
    sponge.absorb(std::span(msg).subspan(136, 200));
    sponge.absorb(std::span(msg).subspan(336));
    EXPECT_EQ(toHex(sponge.finalize()), toHex(sha3_256(msg)));
}

TEST(Transcript, Deterministic)
{
    Transcript a("test"), b("test");
    a.appendU64("n", 42);
    b.appendU64("n", 42);
    EXPECT_EQ(a.challengeFr("c").toBig().toHex(),
              b.challengeFr("c").toBig().toHex());
}

TEST(Transcript, MessageSensitivity)
{
    Transcript a("test"), b("test");
    a.appendU64("n", 42);
    b.appendU64("n", 43);
    EXPECT_NE(a.challengeFr("c"), b.challengeFr("c"));
}

TEST(Transcript, LabelSensitivity)
{
    Transcript a("proto-a"), b("proto-b");
    EXPECT_NE(a.challengeFr("c"), b.challengeFr("c"));
}

TEST(Transcript, ChallengesChainHistory)
{
    Transcript a("test"), b("test");
    Fr c1a = a.challengeFr("c1");
    Fr c1b = b.challengeFr("c1");
    EXPECT_EQ(c1a, c1b);
    a.appendFr("x", Fr::fromU64(1));
    b.appendFr("x", Fr::fromU64(2));
    EXPECT_NE(a.challengeFr("c2"), b.challengeFr("c2"));
}

TEST(Transcript, VectorAppendAndCount)
{
    Transcript t("test");
    std::vector<Fr> xs{Fr::fromU64(1), Fr::fromU64(2), Fr::fromU64(3)};
    t.appendFrVec("xs", xs);
    auto cs = t.challengeFrVec("cs", 4);
    EXPECT_EQ(cs.size(), 4u);
    EXPECT_EQ(t.hashCount(), 4u);
    // All distinct with overwhelming probability.
    EXPECT_NE(cs[0], cs[1]);
    EXPECT_NE(cs[1], cs[2]);
    EXPECT_NE(cs[2], cs[3]);
}
