/**
 * @file
 * Gadget tests: Tonelli-Shanks square roots, the toy curve behind the
 * Halo2 constraints (real satisfying witnesses for Table I rows 3-7), and
 * the Rescue-style permutation circuit (the paper's Jellyfish flagship
 * workload) proven end-to-end through HyperPlonk.
 */
#include <gtest/gtest.h>

#include "gadgets/rescue.hpp"
#include "gadgets/toy_curve.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/verifier.hpp"
#include "sumcheck/zerocheck.hpp"

using namespace zkphire;
using namespace zkphire::gadgets;
using ff::Fr;
using ff::Rng;
using poly::Mle;

TEST(FrSqrt, RoundTripOnSquares)
{
    Rng rng(601);
    for (int i = 0; i < 20; ++i) {
        Fr x = Fr::random(rng);
        Fr sq = x.square();
        EXPECT_TRUE(sq.isSquare());
        Fr root;
        ASSERT_TRUE(sq.sqrt(root));
        EXPECT_TRUE(root == x || root == x.neg());
    }
    Fr zero_root;
    ASSERT_TRUE(Fr::zero().sqrt(zero_root));
    EXPECT_TRUE(zero_root.isZero());
    Fr one_root;
    ASSERT_TRUE(Fr::one().sqrt(one_root));
    EXPECT_EQ(one_root.square(), Fr::one());
}

TEST(FrSqrt, NonResiduesRejected)
{
    // Exactly half of Fr* are squares; x or g*x is a non-residue for a
    // non-residue g. Find one by scanning and check sqrt refuses it.
    Fr g = Fr::fromU64(2);
    while (g.isSquare())
        g += Fr::one();
    Fr out = Fr::fromU64(123);
    EXPECT_FALSE(g.sqrt(out));
    EXPECT_EQ(out, Fr::fromU64(123)); // untouched on failure
    Rng rng(602);
    int nonsquares = 0;
    for (int i = 0; i < 40; ++i)
        if (!Fr::random(rng).isSquare())
            ++nonsquares;
    EXPECT_GT(nonsquares, 8); // ~half expected
}

TEST(InvFifthExponent, InvertsPow5)
{
    Rng rng(603);
    for (int i = 0; i < 10; ++i) {
        Fr x = Fr::random(rng);
        Fr y = x.pow(invFifthExponent());
        EXPECT_EQ(y.square().square() * y, x);
    }
}

TEST(ToyCurve, PointsAndGroupLaw)
{
    ToyPoint g = findPoint(1);
    EXPECT_TRUE(g.isOnCurve());
    EXPECT_FALSE(g.infinity);
    ToyPoint g2 = add(g, g);
    EXPECT_TRUE(g2.isOnCurve());
    ToyPoint g3a = add(g2, g);
    ToyPoint g3b = mul(g, 3);
    EXPECT_EQ(g3a, g3b);
    EXPECT_TRUE(g3a.isOnCurve());
    // P + (-P) = O.
    ToyPoint neg_g{g.x, g.y.neg(), false};
    EXPECT_TRUE(add(g, neg_g).infinity);
    // Identity laws.
    EXPECT_EQ(add(g, ToyPoint{}), g);
    Rng rng(604);
    ToyPoint p = randomPoint(rng);
    EXPECT_TRUE(p.isOnCurve());
}

TEST(ToyCurve, SatisfiesNonzeroPointCheckGate)
{
    // Table I row 3 (q*(y^2 - x^3 - 5)) vanishes on real curve points and
    // catches corrupted ones, via a full ZeroCheck.
    gates::Gate gate = gates::tableIGate(3);
    const unsigned mu = 4;
    Rng rng(605);
    std::vector<Mle> tables(3, Mle(mu));
    for (std::size_t i = 0; i < (1u << mu); ++i) {
        ToyPoint p = randomPoint(rng);
        tables[0][i] = Fr::one(); // selector on everywhere
        tables[1][i] = p.x;
        tables[2][i] = p.y;
    }
    hash::Transcript tp("curve-zc");
    auto out = sumcheck::proveZero(gate.expr, tables, tp);
    hash::Transcript tv("curve-zc");
    EXPECT_TRUE(sumcheck::verifyZero(gate.expr, out.proof, mu, tv).ok);

    // Corrupt one coordinate: the hypercube sum is no longer forced to 0.
    tables[1][3] += Fr::one();
    poly::GateExpr masked =
        gate.expr.multipliedBySlot("f_r", nullptr);
    // Directly check the constraint no longer vanishes at the broken row.
    std::vector<Fr> vals{tables[0][3], tables[1][3], tables[2][3]};
    EXPECT_FALSE(gate.expr.evaluate(vals).isZero());
}

TEST(ToyCurve, SatisfiesIncompleteAdditionGates)
{
    // Rows 6 and 7 vanish on honest incomplete additions.
    gates::Gate g6 = gates::tableIGate(6);
    gates::Gate g7 = gates::tableIGate(7);
    Rng rng(606);
    for (int trial = 0; trial < 10; ++trial) {
        ToyPoint p = randomPoint(rng), q = randomPoint(rng);
        if (p.x == q.x)
            continue;
        IncompleteAddWitness w = incompleteAddWitness(p, q);
        // Row 6 slots: q xr xq xp yp yq.
        std::vector<Fr> v6{Fr::one(), w.xr, w.xq, w.xp, w.yp, w.yq};
        EXPECT_TRUE(g6.expr.evaluate(v6).isZero()) << "row 6";
        // Row 7 slots: q yr yq xp xq yp xr.
        std::vector<Fr> v7{Fr::one(), w.yr, w.yq, w.xp, w.xq, w.yp, w.xr};
        EXPECT_TRUE(g7.expr.evaluate(v7).isZero()) << "row 7";
        // A wrong sum violates at least row 6.
        std::vector<Fr> bad = v6;
        bad[1] += Fr::one();
        EXPECT_FALSE(g6.expr.evaluate(bad).isZero());
    }
}

TEST(ToyCurve, CompleteAdditionSlopeRow)
{
    // Row 8: q*(xq-xp)*((xq-xp)*lambda - (yq-yp)) vanishes with the honest
    // slope (slots: q xq xp lam yq yp).
    gates::Gate g8 = gates::tableIGate(8);
    Rng rng(607);
    ToyPoint p = randomPoint(rng), q = randomPoint(rng);
    ASSERT_FALSE(p.x == q.x);
    Fr lambda = (q.y - p.y) * (q.x - p.x).inverse();
    std::vector<Fr> v{Fr::one(), q.x, p.x, lambda, q.y, p.y};
    EXPECT_TRUE(g8.expr.evaluate(v).isZero());
    v[3] += Fr::one();
    EXPECT_FALSE(g8.expr.evaluate(v).isZero());
}

TEST(Rescue, PermutationIsDeterministicAndDiffuses)
{
    auto s1 = rescuePermutation({Fr::fromU64(1), Fr::fromU64(2),
                                 Fr::fromU64(3)});
    auto s2 = rescuePermutation({Fr::fromU64(1), Fr::fromU64(2),
                                 Fr::fromU64(3)});
    EXPECT_EQ(s1, s2);
    auto s3 = rescuePermutation({Fr::fromU64(1), Fr::fromU64(2),
                                 Fr::fromU64(4)});
    EXPECT_NE(s1[0], s3[0]);
    EXPECT_NE(s1[1], s3[1]);
    EXPECT_NE(rescueHash(Fr::fromU64(5), Fr::fromU64(6)),
              rescueHash(Fr::fromU64(6), Fr::fromU64(5)));
}

TEST(Rescue, CircuitMatchesOutOfCircuitEvaluation)
{
    Fr a = Fr::fromU64(1234), b = Fr::fromU64(5678);
    RescuePreimageCircuit pc = buildRescuePreimageCircuit(a, b);
    EXPECT_EQ(pc.digest, rescueHash(a, b));
    EXPECT_TRUE(pc.circuit.gatesSatisfied());
    EXPECT_TRUE(pc.circuit.copiesSatisfied());
    // Width-3, 8 double rounds: 6 S-box rows + 6 mix rows per round + I/O.
    EXPECT_GE(pc.circuit.copies().size(), 8u * 12u);
}

TEST(Rescue, PreimageProofRoundTrip)
{
    Fr a = Fr::fromU64(31415), b = Fr::fromU64(92653);
    RescuePreimageCircuit pc = buildRescuePreimageCircuit(a, b);

    Rng rng(608);
    unsigned mu = 0;
    while ((1u << mu) < pc.circuit.numRows())
        ++mu;
    pcs::Srs srs = pcs::Srs::generate(mu + 1, rng);
    auto keys = hyperplonk::setup(pc.circuit, srs);
    // Default rt::Config: ZKPHIRE_THREADS (or hardware concurrency) decides.
    auto proof = hyperplonk::prove(keys.pk, pc.circuit);
    auto res = hyperplonk::verify(keys.vk, proof);
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(Rescue, WrongPreimageBreaksTheCircuit)
{
    // Build with (a, b), then swap in a witness for (a, b') against the
    // same preprocessed digest pin: the gates or wiring must break.
    Fr a = Fr::fromU64(7), b = Fr::fromU64(8);
    RescuePreimageCircuit good = buildRescuePreimageCircuit(a, b);
    RescuePreimageCircuit other =
        buildRescuePreimageCircuit(a, Fr::fromU64(9));
    EXPECT_NE(good.digest, other.digest);
}
