/**
 * @file
 * End-to-end HyperPlonk tests: circuit construction, permutation building,
 * PCS round trips, full prove/verify for both gate systems, negative tests
 * (tampered proofs, broken wiring), and proof-size sanity.
 */
#include <gtest/gtest.h>

#include "hyperplonk/circuit.hpp"
#include "hyperplonk/permutation.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/verifier.hpp"
#include "pcs/mkzg.hpp"

using namespace zkphire;
using namespace zkphire::hyperplonk;
using ff::Fr;
using ff::Rng;
using poly::Mle;

namespace {

const pcs::Srs &
sharedSrs()
{
    static Rng rng(0xdeadbeef);
    static pcs::Srs srs = pcs::Srs::generate(9, rng);
    return srs;
}

} // namespace

TEST(Pcs, CommitOpenVerifyRoundTrip)
{
    Rng rng(101);
    const unsigned mu = 5;
    Mle f = Mle::random(mu, rng);
    auto c = pcs::commit(sharedSrs(), f);
    std::vector<Fr> z;
    for (unsigned i = 0; i < mu; ++i)
        z.push_back(Fr::random(rng));
    Fr value = f.evaluate(z);
    auto proof = pcs::open(sharedSrs(), f, z);
    EXPECT_EQ(proof.quotients.size(), mu);
    EXPECT_TRUE(pcs::verifyOpening(sharedSrs(), c, z, value, proof));
    // Wrong value rejected.
    EXPECT_FALSE(
        pcs::verifyOpening(sharedSrs(), c, z, value + Fr::one(), proof));
    // Wrong point rejected.
    std::vector<Fr> z2 = z;
    z2[2] += Fr::one();
    EXPECT_FALSE(pcs::verifyOpening(sharedSrs(), c, z2, value, proof));
}

TEST(Pcs, CommitBatchMatchesPerPolyCommit)
{
    Rng rng(104);
    std::vector<Mle> polys;
    for (int i = 0; i < 4; ++i)
        polys.push_back(Mle::random(6, rng));
    auto batch = pcs::commitBatch(sharedSrs(), polys);
    ASSERT_EQ(batch.size(), polys.size());
    for (std::size_t i = 0; i < polys.size(); ++i)
        EXPECT_EQ(batch[i], pcs::commit(sharedSrs(), polys[i])) << i;

    // Mixed sizes degrade to per-polynomial commits (no shared basis).
    polys.push_back(Mle::random(4, rng));
    auto mixed = pcs::commitBatch(sharedSrs(), polys);
    ASSERT_EQ(mixed.size(), polys.size());
    for (std::size_t i = 0; i < polys.size(); ++i)
        EXPECT_EQ(mixed[i], pcs::commit(sharedSrs(), polys[i])) << i;
}

TEST(Pcs, OpenManyMatchesPerPolyOpen)
{
    Rng rng(105);
    std::vector<Mle> polys = {Mle::random(5, rng), Mle::random(5, rng),
                              Mle::random(5, rng)};
    std::vector<std::vector<Fr>> zv(polys.size());
    for (std::size_t i = 0; i < polys.size(); ++i)
        for (unsigned j = 0; j < 5; ++j)
            zv[i].push_back(Fr::random(rng));

    auto check = [&](std::span<const Mle> ps) {
        std::vector<const Mle *> ptrs;
        std::vector<std::span<const Fr>> zs;
        for (std::size_t i = 0; i < ps.size(); ++i) {
            ptrs.push_back(&ps[i]);
            zs.push_back(std::span<const Fr>(zv[i].data(),
                                             ps[i].numVars()));
        }
        auto many = pcs::openMany(sharedSrs(), ptrs, zs);
        for (std::size_t i = 0; i < ps.size(); ++i) {
            auto solo = pcs::open(sharedSrs(), ps[i], zs[i]);
            ASSERT_EQ(many[i].quotients.size(), solo.quotients.size());
            for (std::size_t q = 0; q < solo.quotients.size(); ++q)
                EXPECT_EQ(many[i].quotients[q], solo.quotients[q])
                    << "chain " << i << " level " << q;
        }
    };
    check(polys);
    // Mixed variable counts degrade to independent openings.
    polys.push_back(Mle::random(3, rng));
    zv.push_back({Fr::random(rng), Fr::random(rng), Fr::random(rng)});
    check(polys);
}

TEST(Pcs, CommitmentIsBindingToPolynomial)
{
    Rng rng(102);
    Mle f = Mle::random(4, rng);
    Mle g = f;
    g[3] += Fr::one();
    EXPECT_FALSE(pcs::commit(sharedSrs(), f) == pcs::commit(sharedSrs(), g));
    // Commitment equals eq-weighted evaluation at tau in the exponent.
    std::vector<Fr> tau4(sharedSrs().tau().begin(),
                         sharedSrs().tau().begin() + 4);
    Fr f_at_tau = f.evaluate(tau4);
    auto expect = ec::G1Jacobian::fromAffine(ec::g1Generator())
                      .mulScalar(f_at_tau)
                      .toAffine();
    EXPECT_EQ(pcs::commit(sharedSrs(), f).point, expect);
}

TEST(Pcs, BatchOpenRoundTrip)
{
    Rng rng(103);
    const unsigned mu = 4;
    std::vector<Mle> polys;
    std::vector<pcs::Commitment> cs;
    for (int i = 0; i < 3; ++i) {
        polys.push_back(Mle::random(mu, rng));
        cs.push_back(pcs::commit(sharedSrs(), polys.back()));
    }
    std::vector<Fr> z;
    for (unsigned i = 0; i < mu; ++i)
        z.push_back(Fr::random(rng));
    std::vector<Fr> values;
    for (const auto &p : polys)
        values.push_back(p.evaluate(z));
    Fr rho = Fr::fromU64(99);
    auto proof = pcs::batchOpen(sharedSrs(), polys, z, rho);
    EXPECT_TRUE(
        pcs::verifyBatchOpening(sharedSrs(), cs, z, values, rho, proof));
    values[1] += Fr::one();
    EXPECT_FALSE(
        pcs::verifyBatchOpening(sharedSrs(), cs, z, values, rho, proof));
}

TEST(Circuit, GadgetsProduceSatisfyingRows)
{
    Circuit c(GateSystem::Vanilla);
    auto sum = c.addAddition(Fr::fromU64(3), Fr::fromU64(4));
    EXPECT_EQ(c.witness(sum), Fr::fromU64(7));
    auto prod = c.addMultiplication(Fr::fromU64(3), Fr::fromU64(4));
    EXPECT_EQ(c.witness(prod), Fr::fromU64(12));
    c.addConstant(Fr::fromU64(42));
    c.padToPowerOfTwo();
    EXPECT_TRUE(c.gatesSatisfied());
    EXPECT_EQ(c.numRows(), 4u);
}

TEST(Circuit, JellyfishGadgets)
{
    Circuit c(GateSystem::Jellyfish);
    auto p5 = c.addPow5(Fr::fromU64(2));
    EXPECT_EQ(c.witness(p5), Fr::fromU64(32));
    Fr q[6] = {Fr::one(), Fr::one(), Fr::zero(), Fr::zero(), Fr::one(),
               Fr::zero()};
    auto fma = c.addFma(Fr::fromU64(2), Fr::fromU64(3), Fr::fromU64(5),
                        Fr::fromU64(7), std::span<const Fr, 6>(q, 6));
    // 2 + 3 + 2*3 = 11.
    EXPECT_EQ(c.witness(fma), Fr::fromU64(11));
    c.padToPowerOfTwo();
    EXPECT_TRUE(c.gatesSatisfied());
}

TEST(Circuit, RandomCircuitsAreSatisfying)
{
    Rng rng(111);
    Circuit cv = randomVanillaCircuit(6, rng);
    EXPECT_EQ(cv.numRows(), 64u);
    EXPECT_TRUE(cv.gatesSatisfied());
    EXPECT_TRUE(cv.copiesSatisfied());
    EXPECT_GT(cv.copies().size(), 10u);

    Circuit cj = randomJellyfishCircuit(5, rng);
    EXPECT_TRUE(cj.gatesSatisfied());
    EXPECT_TRUE(cj.copiesSatisfied());
}

TEST(Permutation, SigmaIsAPermutation)
{
    Rng rng(112);
    Circuit c = randomVanillaCircuit(5, rng);
    PermutationData perm = buildPermutation(c);
    const std::size_t n = c.numRows();
    const unsigned k = c.numWitnesses();
    std::vector<int> seen(k * n, 0);
    for (unsigned j = 0; j < k; ++j)
        for (std::size_t x = 0; x < n; ++x) {
            auto v = perm.sigma[j][x].toBig();
            ASSERT_LT(v.limb[0], k * n);
            ++seen[v.limb[0]];
        }
    for (std::size_t i = 0; i < k * n; ++i)
        EXPECT_EQ(seen[i], 1) << "cell " << i;
}

TEST(Permutation, GrandProductIsOneForValidWiring)
{
    Rng rng(113);
    Circuit c = randomVanillaCircuit(5, rng);
    PermutationData perm = buildPermutation(c);
    Fr beta = Fr::random(rng), gamma = Fr::random(rng);
    FractionPolys fr = buildFractionPolys(c.witnessMles(), perm, beta, gamma);
    Fr prod = Fr::one();
    for (std::size_t x = 0; x < fr.phi.size(); ++x)
        prod *= fr.phi[x];
    EXPECT_EQ(prod, Fr::one());
}

TEST(Permutation, IdMleEvaluation)
{
    Rng rng(114);
    Circuit c = randomVanillaCircuit(4, rng);
    PermutationData perm = buildPermutation(c);
    std::vector<Fr> z;
    for (int i = 0; i < 4; ++i)
        z.push_back(Fr::random(rng));
    for (unsigned j = 0; j < 3; ++j)
        EXPECT_EQ(evalIdMle(j, 4, z), perm.id[j].evaluate(z));
}

TEST(HyperPlonk, VanillaProveVerifyRoundTrip)
{
    Rng rng(121);
    Circuit c = randomVanillaCircuit(6, rng);
    Keys keys = setup(c, sharedSrs());
    ProverStats stats;
    HyperPlonkProof proof =
        prove(keys.pk, c, &stats, {.rt = {.threads = 2}});
    auto res = verify(keys.vk, proof);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_GT(stats.totalMs(), 0.0);
    EXPECT_GT(stats.msm.pointAdds, 0u);
}

TEST(HyperPlonk, JellyfishProveVerifyRoundTrip)
{
    Rng rng(122);
    Circuit c = randomJellyfishCircuit(5, rng);
    Keys keys = setup(c, sharedSrs());
    HyperPlonkProof proof = prove(keys.pk, c);
    auto res = verify(keys.vk, proof);
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(HyperPlonk, ProofSizeIsFewKilobytes)
{
    Rng rng(123);
    Circuit c = randomVanillaCircuit(6, rng);
    Keys keys = setup(c, sharedSrs());
    HyperPlonkProof proof = prove(keys.pk, c);
    auto breakdown = proof.sizeBreakdown();
    EXPECT_GT(breakdown.total(), 1000u);
    EXPECT_LT(breakdown.total(), 32768u) << breakdown.toString();
}

TEST(HyperPlonk, RejectsTamperedGateProof)
{
    Rng rng(124);
    Circuit c = randomVanillaCircuit(5, rng);
    Keys keys = setup(c, sharedSrs());
    HyperPlonkProof proof = prove(keys.pk, c);
    proof.gateZC.sc.roundEvals[2][1] += Fr::one();
    EXPECT_FALSE(verify(keys.vk, proof).ok);
}

TEST(HyperPlonk, RejectsTamperedWitnessCommitment)
{
    Rng rng(125);
    Circuit c = randomVanillaCircuit(5, rng);
    Keys keys = setup(c, sharedSrs());
    HyperPlonkProof proof = prove(keys.pk, c);
    proof.witnessComms[0].point =
        ec::G1Jacobian::fromAffine(proof.witnessComms[0].point)
            .dbl()
            .toAffine();
    EXPECT_FALSE(verify(keys.vk, proof).ok);
}

TEST(HyperPlonk, RejectsTamperedAuxEvals)
{
    Rng rng(126);
    Circuit c = randomVanillaCircuit(5, rng);
    Keys keys = setup(c, sharedSrs());
    HyperPlonkProof proof = prove(keys.pk, c);
    proof.wAtZp[1] += Fr::one();
    EXPECT_FALSE(verify(keys.vk, proof).ok);
}

TEST(HyperPlonk, RejectsProofFromBrokenWiring)
{
    // Prover uses a witness that satisfies gates but breaks a copy
    // constraint recorded in the preprocessed permutation.
    Rng rng(127);
    Circuit good(GateSystem::Vanilla);
    Fr a = Fr::fromU64(5);
    auto out1 = good.addMultiplication(a, a);
    // Gate 2 reuses gate 1's output as w1.
    auto out2 = good.addAddition(good.witness(out1), Fr::fromU64(1));
    good.copy(out1, Cell{0, out2.row});
    good.padToPowerOfTwo();
    Keys keys = setup(good, sharedSrs());

    // "bad" has identical selectors/wiring but a witness that violates the
    // copy: gate 2's w1 differs from gate 1's output while still summing
    // correctly.
    Circuit bad(GateSystem::Vanilla);
    bad.addMultiplication(a, a);
    bad.addAddition(Fr::fromU64(7), Fr::fromU64(1));
    bad.padToPowerOfTwo();
    ASSERT_TRUE(bad.gatesSatisfied());

    HyperPlonkProof proof = prove(keys.pk, bad);
    EXPECT_FALSE(verify(keys.vk, proof).ok);
}

TEST(HyperPlonk, DeterministicProofs)
{
    Rng rng(128);
    Circuit c = randomVanillaCircuit(4, rng);
    Keys keys = setup(c, sharedSrs());
    HyperPlonkProof p1 = prove(keys.pk, c);
    HyperPlonkProof p2 = prove(keys.pk, c);
    EXPECT_EQ(p1.gateZC.sc.claimedSum, p2.gateZC.sc.claimedSum);
    EXPECT_EQ(p1.gateZC.sc.roundEvals, p2.gateZC.sc.roundEvals);
    EXPECT_TRUE(p1.vComm == p2.vComm);
}
