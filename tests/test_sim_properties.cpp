/**
 * @file
 * Cross-cutting property tests for the simulation layer: monotonicity of
 * the protocol model in bandwidth and problem size, DSE grid fidelity to
 * Table III, workload-table integrity against the paper, proof-size model
 * monotonicity, and custom-gate protocol workloads.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "poly/virtual_poly.hpp"
#include "sim/baseline.hpp"
#include "sim/dse.hpp"
#include "sim/workloads.hpp"
#include "sumcheck/verifier.hpp"

using namespace zkphire;
using namespace zkphire::sim;

TEST(ChipProperties, BandwidthMonotonicity)
{
    ChipConfig cfg = ChipConfig::exemplar();
    auto wl = ProtocolWorkload::jellyfish(20);
    double prev = 1e300;
    for (double bw : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
        cfg.bandwidthGBs = bw;
        double t = simulateProtocol(cfg, wl).totalMs;
        EXPECT_LE(t, prev * 1.0001) << "bw " << bw;
        prev = t;
    }
}

TEST(ChipProperties, SizeMonotonicity)
{
    ChipConfig cfg = ChipConfig::exemplar();
    double prev = 0;
    for (unsigned mu = 14; mu <= 26; mu += 2) {
        double t =
            simulateProtocol(cfg, ProtocolWorkload::jellyfish(mu)).totalMs;
        EXPECT_GT(t, prev) << "mu " << mu;
        prev = t;
    }
}

TEST(ChipProperties, StepsSumToUnmaskedTotal)
{
    ChipConfig cfg = ChipConfig::exemplar();
    auto run = simulateProtocol(cfg, ProtocolWorkload::vanilla(20));
    double sum = run.steps.witnessMsm + run.steps.gateZeroCheck +
                 run.steps.wireIdentity() + run.steps.batchEval +
                 run.steps.polyOpen();
    EXPECT_NEAR(sum, run.steps.totalUnmasked(), 1e-9);
    EXPECT_NEAR(run.totalMs, run.steps.totalUnmasked() - run.maskedSavingMs,
                1e-9);
}

TEST(ChipProperties, CustomGateWorkloadRuns)
{
    ChipConfig cfg = ChipConfig::exemplar();
    gates::Gate gate = gates::sweepGate(10);
    auto wl = ProtocolWorkload::custom(gate, 20, 2, 4);
    EXPECT_EQ(wl.numWitness(), 2u);
    EXPECT_EQ(wl.numSelectors(), 4u);
    auto run = simulateProtocol(cfg, wl);
    EXPECT_GT(run.totalMs, 0);
    // Higher degree with same widths costs more SumCheck time.
    auto wl_hi = ProtocolWorkload::custom(gates::sweepGate(25), 20, 2, 4);
    auto run_hi = simulateProtocol(cfg, wl_hi);
    EXPECT_GT(run_hi.steps.gateZeroCheck, run.steps.gateZeroCheck);
    // MSM steps identical: same witness count.
    EXPECT_NEAR(run_hi.steps.witnessMsm, run.steps.witnessMsm, 1e-9);
    EXPECT_NEAR(run_hi.steps.openMsm, run.steps.openMsm, 1e-9);
}

TEST(ChipProperties, ForestDeratingSlowsUndersizedConfig)
{
    ChipConfig cfg = ChipConfig::exemplar();
    cfg.forest.numTrees = 8; // far below the PL demand of 16x5x6 muls
    auto slow =
        simulateProtocol(cfg, ProtocolWorkload::jellyfish(20)).totalMs;
    auto fast = simulateProtocol(ChipConfig::exemplar(),
                                 ProtocolWorkload::jellyfish(20))
                    .totalMs;
    EXPECT_GT(slow, fast);
}

TEST(DseGridFidelity, MatchesTableIII)
{
    DseGrid g;
    EXPECT_EQ(g.sumcheckPEs, (std::vector<unsigned>{1, 2, 4, 8, 16, 32}));
    EXPECT_EQ(g.extensionEngines,
              (std::vector<unsigned>{2, 3, 4, 5, 6, 7}));
    EXPECT_EQ(g.productLanes, (std::vector<unsigned>{3, 4, 5, 6, 7, 8}));
    EXPECT_EQ(g.sramBankWords.size(), 6u); // 2^10 .. 2^15
    EXPECT_EQ(g.sramBankWords.front(), std::size_t(1) << 10);
    EXPECT_EQ(g.sramBankWords.back(), std::size_t(1) << 15);
    EXPECT_EQ(g.msmPEs, (std::vector<unsigned>{1, 2, 4, 8, 16, 32}));
    EXPECT_EQ(g.msmWindows, (std::vector<unsigned>{7, 8, 9, 10}));
    EXPECT_EQ(g.msmPointsPerPe.size(), 5u); // 1K .. 16K
    EXPECT_EQ(g.fracMlePEs, (std::vector<unsigned>{1, 2, 3, 4}));
    EXPECT_EQ(g.bandwidthsGBs.size(), 7u); // 64 .. 4096
}

TEST(WorkloadTable, MatchesPaperGateCounts)
{
    // Spot-check Table VI/VII rows.
    const Workload &rollup25 = workloadByName("Rollup of 25 Pvt Tx");
    EXPECT_EQ(rollup25.muVanilla, 24);
    EXPECT_EQ(rollup25.muJellyfish, 19);
    EXPECT_DOUBLE_EQ(rollup25.cpuMsVanilla, 145500);
    EXPECT_DOUBLE_EQ(rollup25.cpuMsJellyfish, 6161);
    const Workload &zcash = workloadByName("ZCash");
    EXPECT_EQ(zcash.muVanilla, 17);
    EXPECT_EQ(zcash.muJellyfish, 15);
    const Workload &r1600 = workloadByName("Rollup of 1600 Pvt Tx");
    EXPECT_EQ(r1600.muVanilla, 30);
    EXPECT_EQ(r1600.muJellyfish, 25);
    EXPECT_EQ(paperWorkloads().size(), 10u);
    EXPECT_EQ(fig13Workloads().size(), 7u);
}

TEST(ProofSizeModel, MonotonicAndSuccinct)
{
    double prev = 0;
    for (unsigned mu = 15; mu <= 30; ++mu) {
        double b = estimateProofBytes(GateSystem::Jellyfish, mu);
        EXPECT_GT(b, prev);
        prev = b;
    }
    // O(mu * d) growth: doubling gates adds ~1 round, not 2x bytes.
    double b20 = estimateProofBytes(GateSystem::Jellyfish, 20);
    double b21 = estimateProofBytes(GateSystem::Jellyfish, 21);
    EXPECT_LT(b21 / b20, 1.1);
    // Succinct even at 2^30 nominal.
    EXPECT_LT(estimateProofBytes(GateSystem::Vanilla, 30), 64 * 1024);
}

TEST(CpuModelProperties, ThreadsAndShapesScaleSanely)
{
    PolyShape shape = PolyShape::fromGate(gates::tableIGate(20));
    CpuModel c4, c32;
    c4.threads = 4;
    c32.threads = 32;
    EXPECT_GT(c4.sumcheckMs(shape, 22), c32.sumcheckMs(shape, 22));
    // Doubling mu roughly doubles time.
    double r = c32.sumcheckMs(shape, 23) / c32.sumcheckMs(shape, 22);
    EXPECT_NEAR(r, 2.0, 0.1);
    // Jellyfish SumCheck (deg 7, 19 slots) costs more than Vanilla (deg 4).
    PolyShape jelly = PolyShape::fromGate(gates::tableIGate(22));
    EXPECT_GT(c32.sumcheckMs(jelly, 22), c32.sumcheckMs(shape, 22));
}

TEST(GpuModelProperties, BandwidthBound)
{
    PolyShape shape = PolyShape::fromGate(gates::tableIGate(1));
    GpuModel slow, fast;
    fast.bandwidthGBs = 3200;
    EXPECT_GT(slow.sumcheckMs(shape, 24), fast.sumcheckMs(shape, 24));
}

TEST(SumcheckVerifierNegative, WrongRoundCountRejected)
{
    ff::Rng rng(777);
    poly::GateExpr e("f");
    auto a = e.addSlot("a"), b = e.addSlot("b");
    e.addTerm({a, b});
    std::vector<poly::Mle> tables{poly::Mle::random(5, rng),
                                  poly::Mle::random(5, rng)};
    hash::Transcript tp("neg");
    auto out = sumcheck::prove(poly::VirtualPoly(e, tables), tp);
    // Drop a round.
    out.proof.roundEvals.pop_back();
    hash::Transcript tv("neg");
    EXPECT_FALSE(sumcheck::verify(e, out.proof, 5, tv).ok);
    // Wrong claimed num_vars.
    hash::Transcript tv2("neg");
    EXPECT_FALSE(sumcheck::verify(e, out.proof, 4, tv2).ok);
}

TEST(SumcheckVerifierNegative, WrongEvalCountRejected)
{
    ff::Rng rng(778);
    poly::GateExpr e("f");
    auto a = e.addSlot("a"), b = e.addSlot("b");
    e.addTerm({a, b});
    std::vector<poly::Mle> tables{poly::Mle::random(4, rng),
                                  poly::Mle::random(4, rng)};
    hash::Transcript tp("neg2");
    auto out = sumcheck::prove(poly::VirtualPoly(e, tables), tp);
    out.proof.roundEvals[2].push_back(ff::Fr::zero()); // extra evaluation
    hash::Transcript tv("neg2");
    EXPECT_FALSE(sumcheck::verify(e, out.proof, 4, tv).ok);
}
