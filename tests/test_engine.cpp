/**
 * @file
 * Engine-layer tests: ProverContext + ProofService.
 *
 * The load-bearing property is byte-identity — a proof produced through a
 * context or a service (any lane count, any thread budget, any number of
 * jobs in flight) must serialize to exactly the bytes the one-shot
 * hyperplonk::prove path produces for the same circuit. Plus: per-context
 * plan-cache isolation (two contexts proving concurrently never share plan
 * objects — the regression test for deleting the process-global cache),
 * preprocessing through the context, and verification of every service
 * result.
 */
#include <gtest/gtest.h>

#include <thread>

#include "engine/service.hpp"
#include "hyperplonk/serialize.hpp"
#include "hyperplonk/verifier.hpp"

using namespace zkphire;
using namespace zkphire::hyperplonk;
using ff::Fr;
using ff::Rng;

namespace {

const pcs::Srs &
sharedSrs()
{
    static Rng rng(0x5e55104);
    static pcs::Srs srs = pcs::Srs::generate(9, rng);
    return srs;
}

std::vector<std::uint8_t>
proofBytes(const HyperPlonkProof &proof)
{
    return serializeProof(proof);
}

/** N small circuits (mix of both gate systems) with their keys. */
struct Fleet {
    std::vector<Circuit> circuits;
    std::vector<Keys> keys;
    std::vector<std::vector<std::uint8_t>> referenceBytes; // legacy path
};

Fleet
buildFleet(std::size_t n)
{
    Fleet f;
    Rng rng(777);
    for (std::size_t i = 0; i < n; ++i) {
        Circuit c = (i % 2 == 0) ? randomVanillaCircuit(5, rng)
                                 : randomJellyfishCircuit(4, rng);
        f.keys.push_back(setup(c, sharedSrs()));
        f.circuits.push_back(std::move(c));
    }
    for (std::size_t i = 0; i < n; ++i)
        f.referenceBytes.push_back(
            proofBytes(prove(f.keys[i].pk, f.circuits[i])));
    return f;
}

} // namespace

TEST(ProverContext, ProveMatchesLegacyPathByteForByte)
{
    Rng rng(801);
    Circuit c = randomVanillaCircuit(5, rng);
    Keys keys = setup(c, sharedSrs());
    auto reference = proofBytes(prove(keys.pk, c));

    engine::ProverContext ctx(sharedSrs());
    auto viaContext = proofBytes(ctx.prove(keys.pk, c));
    EXPECT_EQ(viaContext, reference);

    // And again with an explicit 1-thread and 3-thread config: the
    // transcript must not depend on the budget.
    engine::ProverContext serial(sharedSrs(), {.threads = 1});
    EXPECT_EQ(proofBytes(serial.prove(keys.pk, c)), reference);
    engine::ProverContext wide(sharedSrs(), {.threads = 3});
    EXPECT_EQ(proofBytes(wide.prove(keys.pk, c)), reference);
}

TEST(ProverContext, PreprocessOwnsKeysAndProves)
{
    Rng rng(802);
    Circuit c = randomJellyfishCircuit(4, rng);
    engine::ProverContext ctx(sharedSrs());
    const Keys &keys = ctx.preprocess(c);

    ProverStats stats;
    HyperPlonkProof proof = ctx.prove(keys.pk, c, &stats);
    auto res = verify(keys.vk, proof);
    EXPECT_TRUE(res.ok) << res.error;
    EXPECT_GT(stats.totalMs(), 0.0);

    // Keys references stay valid as more circuits are preprocessed.
    Circuit c2 = randomVanillaCircuit(4, rng);
    ctx.preprocess(c2);
    EXPECT_TRUE(verify(keys.vk, ctx.prove(keys.pk, c)).ok);
}

TEST(ProverContext, PlanCacheIsPerContext)
{
    const gates::Gate vanilla = gates::vanillaCoreGate();
    engine::ProverContext a;
    engine::ProverContext b;
    auto plan_a = a.plans().maskedPlan(vanilla.expr);
    auto plan_b = b.plans().maskedPlan(vanilla.expr);
    // Same structure, but never the same object: contexts own their plans.
    EXPECT_NE(plan_a.get(), plan_b.get());
    // Within one context the plan is compiled exactly once.
    EXPECT_EQ(plan_a.get(), a.plans().maskedPlan(vanilla.expr).get());
}

TEST(ProverContext, ConcurrentContextsNeverShareOrRacePlans)
{
    // Two contexts prove different gate systems concurrently. Run under the
    // ASan/UBSan CI leg (and -DZKPHIRE_TSAN opt-in) this is the regression
    // test that per-context plan ownership introduced no data race — the
    // process-global cache it replaced was the only shared mutable state.
    Rng rng(803);
    Circuit vanilla = randomVanillaCircuit(5, rng);
    Circuit jelly = randomJellyfishCircuit(4, rng);
    Keys vanilla_keys = setup(vanilla, sharedSrs());
    Keys jelly_keys = setup(jelly, sharedSrs());

    engine::ProverContext ctx_v(sharedSrs(), {.threads = 2});
    engine::ProverContext ctx_j(sharedSrs(), {.threads = 2});

    auto ref_v = proofBytes(prove(vanilla_keys.pk, vanilla));
    auto ref_j = proofBytes(prove(jelly_keys.pk, jelly));

    std::vector<std::vector<std::uint8_t>> got_v(2), got_j(2);
    std::thread tv([&] {
        for (auto &bytes : got_v)
            bytes = proofBytes(ctx_v.prove(vanilla_keys.pk, vanilla));
    });
    std::thread tj([&] {
        for (auto &bytes : got_j)
            bytes = proofBytes(ctx_j.prove(jelly_keys.pk, jelly));
    });
    tv.join();
    tj.join();

    for (const auto &bytes : got_v)
        EXPECT_EQ(bytes, ref_v);
    for (const auto &bytes : got_j)
        EXPECT_EQ(bytes, ref_j);

    // Each context compiled its own copy of its core-gate plan.
    EXPECT_NE(ctx_v.plans().maskedPlan(gates::vanillaCoreGate().expr).get(),
              ctx_j.plans().maskedPlan(gates::vanillaCoreGate().expr).get());
    EXPECT_GE(ctx_v.plans().size(), 1u);
    EXPECT_GE(ctx_j.plans().size(), 1u);
}

TEST(ProofService, SerialSubmissionByteIdenticalAndVerified)
{
    Fleet fleet = buildFleet(4);
    engine::ProverContext ctx(sharedSrs());
    engine::ProofService service(ctx, /*lanes=*/1);

    std::vector<engine::ProofRequest> requests;
    for (std::size_t i = 0; i < fleet.circuits.size(); ++i)
        requests.push_back({&fleet.keys[i].pk, &fleet.circuits[i], nullptr});

    auto results = service.proveAll(requests);
    ASSERT_EQ(results.size(), fleet.circuits.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(proofBytes(results[i].proof), fleet.referenceBytes[i])
            << "job " << i;
        auto res = verify(fleet.keys[i].vk, results[i].proof);
        EXPECT_TRUE(res.ok) << "job " << i << ": " << res.error;
        EXPECT_GT(results[i].stats.totalMs(), 0.0);
    }
}

TEST(ProofService, ConcurrentSubmissionByteIdenticalAndVerified)
{
    Fleet fleet = buildFleet(6);
    // 4-thread budget over 3 lanes: 3 jobs in flight, 1-thread sub-budgets.
    engine::ProverContext ctx(sharedSrs(), {.threads = 4});
    engine::ProofService service(ctx, /*lanes=*/3);
    EXPECT_EQ(service.numLanes(), 3u);
    EXPECT_EQ(service.laneThreadBudget(), 1u);

    std::vector<engine::ProofRequest> requests;
    for (std::size_t i = 0; i < fleet.circuits.size(); ++i)
        requests.push_back({&fleet.keys[i].pk, &fleet.circuits[i], nullptr});

    auto results = service.proveAll(requests);
    ASSERT_EQ(results.size(), fleet.circuits.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(proofBytes(results[i].proof), fleet.referenceBytes[i])
            << "job " << i;
        EXPECT_TRUE(verify(fleet.keys[i].vk, results[i].proof).ok)
            << "job " << i;
    }
}

TEST(ProofService, WideLanesMatchReferenceToo)
{
    // Budget wider than lanes: multi-threaded sub-budgets on private pools.
    Fleet fleet = buildFleet(2);
    engine::ProverContext ctx(sharedSrs(), {.threads = 4});
    engine::ProofService service(ctx, /*lanes=*/2);
    EXPECT_EQ(service.laneThreadBudget(), 2u);

    std::vector<engine::ProofRequest> requests;
    for (std::size_t i = 0; i < fleet.circuits.size(); ++i)
        requests.push_back({&fleet.keys[i].pk, &fleet.circuits[i], nullptr});
    auto results = service.proveAll(requests);
    for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_TRUE(results[i].ok) << results[i].error;
        EXPECT_EQ(proofBytes(results[i].proof), fleet.referenceBytes[i]);
    }
}

TEST(ProofService, SubmitDeliversFuturesAndStatsSink)
{
    Rng rng(804);
    Circuit c = randomVanillaCircuit(4, rng);
    Keys keys = setup(c, sharedSrs());

    engine::ProverContext ctx(sharedSrs());
    engine::ProofService service(ctx, /*lanes=*/2);

    ProverStats sink;
    auto fut1 = service.submit({&keys.pk, &c, &sink});
    auto fut2 = service.submit({&keys.pk, &c, nullptr});
    engine::ProofResult r1 = fut1.get();
    engine::ProofResult r2 = fut2.get();
    ASSERT_TRUE(r1.ok) << r1.error;
    ASSERT_TRUE(r2.ok) << r2.error;
    EXPECT_EQ(proofBytes(r1.proof), proofBytes(r2.proof));
    // The caller-owned sink received the same stats as the result.
    EXPECT_EQ(sink.totalMs(), r1.stats.totalMs());
    EXPECT_EQ(sink.msm.pointAdds, r1.stats.msm.pointAdds);
}

TEST(ProofService, BudgetSplitAndOversubscription)
{
    engine::ProverContext ctx(sharedSrs(), {.threads = 5});
    // Uneven split: base 2, one lane picks up the remainder thread.
    engine::ProofService uneven(ctx, 2);
    EXPECT_EQ(uneven.laneThreadBudget(), 2u);

    // More lanes than budget: every lane serial, and jobs still complete.
    engine::ProverContext tiny(sharedSrs(), {.threads = 1});
    engine::ProofService oversub(tiny, 3);
    EXPECT_EQ(oversub.laneThreadBudget(), 1u);
    Rng rng(806);
    Circuit c = randomVanillaCircuit(4, rng);
    Keys keys = setup(c, sharedSrs());
    auto res = oversub.submit({&keys.pk, &c, nullptr}).get();
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_TRUE(verify(keys.vk, res.proof).ok);
}

TEST(ProofService, MalformedRequestReportsErrorNotCrash)
{
    engine::ProverContext ctx(sharedSrs());
    engine::ProofService service(ctx, 1);
    engine::ProofResult res = service.submit({nullptr, nullptr, nullptr}).get();
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
}

TEST(Engine, LegacyFreeFunctionStillDeterministic)
{
    // The 3-arg hyperplonk::prove wrapper routes through the default
    // context; repeated calls must stay byte-identical (the plan cache only
    // memoizes, never perturbs).
    Rng rng(805);
    Circuit c = randomVanillaCircuit(4, rng);
    Keys keys = setup(c, sharedSrs());
    auto p1 = proofBytes(prove(keys.pk, c));
    auto p2 = proofBytes(prove(keys.pk, c));
    EXPECT_EQ(p1, p2);
}
