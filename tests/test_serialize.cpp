/**
 * @file
 * Proof wire-format tests: round trip, verification of deserialized
 * proofs, and rejection of malformed / truncated / tampered encodings.
 */
#include <gtest/gtest.h>

#include "hyperplonk/serialize.hpp"
#include "hyperplonk/verifier.hpp"

using namespace zkphire;
using namespace zkphire::hyperplonk;
using ff::Fr;
using ff::Rng;

namespace {

struct Fixture {
    Circuit circuit;
    Keys keys;
    HyperPlonkProof proof;
};

Fixture &
fixture()
{
    static Fixture *f = [] {
        static Rng rng(0xabcdef);
        static pcs::Srs srs = pcs::Srs::generate(7, rng);
        auto *fx = new Fixture{randomVanillaCircuit(5, rng), {}, {}};
        fx->keys = setup(fx->circuit, srs);
        fx->proof = prove(fx->keys.pk, fx->circuit);
        return fx;
    }();
    return *f;
}

} // namespace

TEST(Serialize, RoundTripPreservesEverything)
{
    const HyperPlonkProof &p = fixture().proof;
    auto bytes = serializeProof(p);
    EXPECT_GT(bytes.size(), 1000u);
    auto back = deserializeProof(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->witnessComms.size(), p.witnessComms.size());
    for (std::size_t i = 0; i < p.witnessComms.size(); ++i)
        EXPECT_TRUE(back->witnessComms[i] == p.witnessComms[i]);
    EXPECT_TRUE(back->phiComm == p.phiComm);
    EXPECT_TRUE(back->vComm == p.vComm);
    EXPECT_EQ(back->gateZC.sc.claimedSum, p.gateZC.sc.claimedSum);
    EXPECT_EQ(back->gateZC.sc.roundEvals, p.gateZC.sc.roundEvals);
    EXPECT_EQ(back->permZC.sc.roundEvals, p.permZC.sc.roundEvals);
    EXPECT_EQ(back->wAtZp, p.wAtZp);
    EXPECT_EQ(back->sigmaAtZp, p.sigmaAtZp);
    EXPECT_EQ(back->openA.sc.finalSlotEvals, p.openA.sc.finalSlotEvals);
    EXPECT_EQ(back->pcsA.quotients.size(), p.pcsA.quotients.size());
    EXPECT_EQ(back->pcsB.quotients.size(), p.pcsB.quotients.size());
}

TEST(Serialize, DeserializedProofVerifies)
{
    auto bytes = serializeProof(fixture().proof);
    auto back = deserializeProof(bytes);
    ASSERT_TRUE(back.has_value());
    auto res = verify(fixture().keys.vk, *back);
    EXPECT_TRUE(res.ok) << res.error;
}

TEST(Serialize, RejectsBadMagic)
{
    auto bytes = serializeProof(fixture().proof);
    bytes[0] ^= 0xff;
    EXPECT_FALSE(deserializeProof(bytes).has_value());
}

TEST(Serialize, RejectsTruncation)
{
    auto bytes = serializeProof(fixture().proof);
    for (std::size_t cut :
         {bytes.size() - 1, bytes.size() / 2, std::size_t(8)}) {
        std::vector<std::uint8_t> t(bytes.begin(), bytes.begin() + cut);
        EXPECT_FALSE(deserializeProof(t).has_value()) << "cut " << cut;
    }
}

TEST(Serialize, RejectsTrailingGarbage)
{
    auto bytes = serializeProof(fixture().proof);
    bytes.push_back(0);
    EXPECT_FALSE(deserializeProof(bytes).has_value());
}

TEST(Serialize, RejectsOffCurvePoint)
{
    auto bytes = serializeProof(fixture().proof);
    // First commitment starts after magic+version+count = 12 bytes;
    // corrupt its x coordinate (keeps it < p with high probability on the
    // low byte, putting the point off the curve).
    bytes[12] ^= 0x01;
    EXPECT_FALSE(deserializeProof(bytes).has_value());
}

TEST(Serialize, RejectsNonCanonicalFieldElement)
{
    auto bytes = serializeProof(fixture().proof);
    // The gate ZeroCheck claimed sum follows the commitments: locate it by
    // structure (12 + (k+2)*97 bytes in).
    std::size_t k = fixture().proof.witnessComms.size();
    std::size_t off = 12 + (k + 2) * 97;
    // Set to r (the modulus) = non-canonical.
    auto r_bytes = ff::Fr::modulus();
    r_bytes.toBytesLe(bytes.data() + off);
    EXPECT_FALSE(deserializeProof(bytes).has_value());
}

TEST(Serialize, TamperedFieldElementFailsVerification)
{
    auto bytes = serializeProof(fixture().proof);
    std::size_t k = fixture().proof.witnessComms.size();
    std::size_t claim_off = 12 + (k + 2) * 97;
    bytes[claim_off] ^= 0x01; // still canonical w.h.p., but wrong value
    auto back = deserializeProof(bytes);
    if (back.has_value()) {
        EXPECT_FALSE(verify(fixture().keys.vk, *back).ok);
    }
}

TEST(Serialize, SizeMatchesUncompressedAccounting)
{
    const HyperPlonkProof &p = fixture().proof;
    auto bytes = serializeProof(p);
    // The wire format uses uncompressed 97 B points; the sizeBreakdown()
    // model assumes compressed 48 B points, so wire size is larger but
    // within ~2.2x.
    EXPECT_GT(bytes.size(), p.sizeBytes());
    EXPECT_LT(double(bytes.size()), 2.2 * double(p.sizeBytes()));
}

// PR-8 acceptance lock: proof bytes are identical across the MSM GLV
// split on/off and 1 vs 4 prover threads. Combined with the CI legs that
// re-run this suite under ZKPHIRE_ASM=0 and ZKPHIRE_THREADS=4, this
// covers the full {asm} x {GLV} x {threads} determinism matrix.
TEST(Serialize, BytesIdenticalAcrossGlvAndThreads)
{
    const auto baseline = serializeProof(fixture().proof);
    for (bool glv : {true, false}) {
        for (unsigned threads : {1u, 4u}) {
            ProveOptions opts;
            opts.rt.threads = threads;
            opts.msm.glv = glv;
            HyperPlonkProof p =
                prove(fixture().keys.pk, fixture().circuit, nullptr, opts);
            EXPECT_EQ(serializeProof(p), baseline)
                << "glv=" << glv << " threads=" << threads;
        }
    }
}
