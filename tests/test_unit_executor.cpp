/**
 * @file
 * Functional-equivalence tests for the modeled SumCheck datapath: the
 * executor (schedule + EE/PL/Tmp emulation + early-exit extrapolation)
 * must produce byte-identical proofs to the reference prover for every
 * polynomial and every (E, P) configuration, for both schedule kinds.
 * This is the bridge between the performance model and real math.
 */
#include <gtest/gtest.h>

#include "poly/sym_poly.hpp"
#include "sim/program.hpp"
#include "sim/unit_executor.hpp"
#include "sumcheck/verifier.hpp"

using namespace zkphire;
using namespace zkphire::sim;
using ff::Fr;
using ff::Rng;
using poly::Mle;
using poly::VirtualPoly;

namespace {

void
expectEquivalent(const gates::Gate &gate, unsigned mu, unsigned ees,
                 unsigned pls, ScheduleKind kind, unsigned seed)
{
    Rng rng(seed);
    auto tables = gate.randomTables(mu, rng);

    hash::Transcript t_ref("exec-eq");
    auto ref = sumcheck::prove(VirtualPoly(gate.expr, tables), t_ref);

    hash::Transcript t_hw("exec-eq");
    ExecutorStats stats;
    auto hw = executeOnUnit(VirtualPoly(gate.expr, tables), ees, pls, t_hw,
                            kind, &stats);

    ASSERT_EQ(hw.proof.claimedSum, ref.proof.claimedSum);
    ASSERT_EQ(hw.proof.roundEvals, ref.proof.roundEvals)
        << gate.name << " E=" << ees << " P=" << pls;
    ASSERT_EQ(hw.proof.finalSlotEvals, ref.proof.finalSlotEvals);
    ASSERT_EQ(hw.challenges, ref.challenges);
    EXPECT_GT(stats.products, 0u);
    EXPECT_EQ(stats.updates,
              gate.expr.numSlots() * ((1u << mu) - 1));

    // And the standard verifier accepts the hardware-produced proof.
    hash::Transcript t_v("exec-eq");
    auto res = sumcheck::verify(gate.expr, hw.proof, mu, t_v);
    EXPECT_TRUE(res.ok) << res.error;
}

} // namespace

class ExecutorGates
    : public ::testing::TestWithParam<std::tuple<int, unsigned, unsigned>>
{
};

TEST_P(ExecutorGates, MatchesReferenceProver)
{
    auto [gate_id, ees, pls] = GetParam();
    gates::Gate gate = gates::tableIGate(gate_id);
    expectEquivalent(gate, 6, ees, pls, ScheduleKind::Accumulation,
                     1000u + unsigned(gate_id));
}

INSTANTIATE_TEST_SUITE_P(
    TableI, ExecutorGates,
    ::testing::Values(std::tuple{0, 2u, 3u}, std::tuple{1, 3u, 5u},
                      std::tuple{6, 2u, 4u}, std::tuple{9, 4u, 3u},
                      std::tuple{10, 2u, 8u}, std::tuple{20, 7u, 5u},
                      std::tuple{21, 3u, 4u}, std::tuple{22, 7u, 5u},
                      std::tuple{22, 2u, 3u}, std::tuple{23, 5u, 6u},
                      std::tuple{24, 6u, 5u}));

class ExecutorSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(ExecutorSweep, WideTermsThroughTmpChain)
{
    // High-degree terms force multi-node chains through the Tmp buffer.
    unsigned d = GetParam();
    gates::Gate gate = gates::sweepGate(d);
    for (unsigned ees : {2u, 3u, 5u})
        expectEquivalent(gate, 5, ees, 4, ScheduleKind::Accumulation,
                         2000u + d + ees);
}

INSTANTIATE_TEST_SUITE_P(Degrees, ExecutorSweep,
                         ::testing::Values(4u, 7u, 12u, 19u, 30u));

TEST(Executor, BalancedTreeScheduleAlsoExact)
{
    for (unsigned d : {6u, 12u, 20u}) {
        gates::Gate gate = gates::sweepGate(d);
        expectEquivalent(gate, 5, 3, 5, ScheduleKind::BalancedTree,
                         3000u + d);
    }
    expectEquivalent(gates::tableIGate(22), 5, 3, 5,
                     ScheduleKind::BalancedTree, 3100);
}

TEST(Executor, HandlesCoefficientsAndConstants)
{
    // Expression with negative coefficients, repeated slots, and a pure
    // constant term: 3*a^2*b - 7*c + 11.
    poly::GateExpr e("coeffs");
    auto a = e.addSlot("a"), b = e.addSlot("b"), c = e.addSlot("c");
    e.addTerm(Fr::fromU64(3), {a, a, b});
    e.addTerm(Fr::fromI64(-7), {c});
    e.addTerm(Fr::fromU64(11), {});
    gates::Gate g;
    g.name = "coeffs";
    g.expr = e;
    g.roles.assign(3, gates::SlotRole::Dense);
    expectEquivalent(g, 6, 2, 3, ScheduleKind::Accumulation, 4000);
}

TEST(Executor, RandomInstanceSweep)
{
    Rng rng(5000);
    for (int trial = 0; trial < 8; ++trial) {
        poly::GateExpr e("rand");
        unsigned slots = 2 + unsigned(rng.nextBelow(6));
        for (unsigned s = 0; s < slots; ++s)
            e.addSlot("s" + std::to_string(s));
        unsigned terms = 1 + unsigned(rng.nextBelow(5));
        for (unsigned t = 0; t < terms; ++t) {
            unsigned deg = 1 + unsigned(rng.nextBelow(9));
            std::vector<poly::SlotId> f;
            for (unsigned i = 0; i < deg; ++i)
                f.push_back(poly::SlotId(rng.nextBelow(slots)));
            e.addTerm(Fr::random(rng), std::move(f));
        }
        gates::Gate g;
        g.name = "rand";
        g.expr = e;
        g.roles.assign(slots, gates::SlotRole::Dense);
        unsigned ees = 2 + unsigned(rng.nextBelow(5));
        unsigned pls = 3 + unsigned(rng.nextBelow(5));
        expectEquivalent(g, 4, ees, pls, ScheduleKind::Accumulation,
                         6000 + trial);
    }
}

TEST(Program, CompileAndDisassemble)
{
    PolyShape shape = PolyShape::fromGate(gates::tableIGate(22));
    Schedule sched = buildSchedule(shape, 4, 5);
    SumcheckProgram prog = compileProgram(shape, sched);
    EXPECT_EQ(prog.numExecOps(), sched.nodes.size());
    EXPECT_GT(prog.sizeBytes(), 0u);
    std::string listing = prog.disassemble();
    EXPECT_NE(listing.find("EXEC"), std::string::npos);
    EXPECT_NE(listing.find("PREFETCH"), std::string::npos);
    EXPECT_NE(listing.find("HASH"), std::string::npos);
    EXPECT_NE(listing.find("HALT"), std::string::npos);
    // Every prefetch precedes the exec that consumes its slots; total
    // prefetched slots == unique slots of the shape.
    std::size_t prefetched = 0;
    for (const auto &insn : prog.code)
        if (insn.op == Opcode::Prefetch)
            prefetched += insn.slots.size();
    EXPECT_EQ(prefetched, shape.uniqueSlots().size());
}

TEST(Program, WideTermChainsMarkTmp)
{
    PolyShape shape = PolyShape::fromGate(gates::sweepGate(12));
    Schedule sched = buildSchedule(shape, 4, 5);
    SumcheckProgram prog = compileProgram(shape, sched);
    bool saw_write = false, saw_use = false;
    for (const auto &insn : prog.code) {
        if (insn.op != Opcode::Exec)
            continue;
        saw_write |= insn.writeTmp != 0;
        saw_use |= insn.useTmp != 0;
        EXPECT_LE(insn.slots.size(), 4u);
    }
    EXPECT_TRUE(saw_write);
    EXPECT_TRUE(saw_use);
}
