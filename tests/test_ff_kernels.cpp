/**
 * @file
 * Property suite for the fixed-limb Montgomery kernels (ff/mul_impl.hpp):
 * every unrolled operation is cross-checked against the generic
 * loop-over-limbs oracle on 10k random operand pairs plus the edge
 * operands that stress carry chains and reductions, for both Fr (4 limbs)
 * and Fq (6 limbs). A transcript regression proves a full HyperPlonk proof
 * is byte-identical with the kernels on and off, at 1 and N threads.
 */
#include <gtest/gtest.h>

#include "engine/context.hpp"
#include "ff/fq.hpp"
#include "ff/fr.hpp"
#include "ff/mul_asm_x86.hpp"
#include "ff/mul_impl.hpp"
#include "ff/rng.hpp"
#include "ff/vec_ops.hpp"
#include "hyperplonk/circuit.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/serialize.hpp"
#include "pcs/srs.hpp"
#include "rt/parallel.hpp"

using namespace zkphire;
using ff::kernels::ScopedGenericKernels;

namespace {

/**
 * Canonical edge operands for a field F: boundary values of the reduction
 * (0, 1, p-1, p-2), the Montgomery radix residues (R mod p, R-1), and
 * all-ones limb patterns below p that maximize carry propagation.
 */
template <class F>
std::vector<F>
edgeOperands()
{
    using Big = typename F::Big;
    std::vector<F> out;
    out.push_back(F::zero());
    out.push_back(F::one());
    out.push_back(F::fromU64(2));

    Big pm1 = F::modulus();
    pm1.subInPlace(Big(1));
    out.push_back(F::fromBig(pm1)); // p - 1
    Big pm2 = pm1;
    pm2.subInPlace(Big(1));
    out.push_back(F::fromBig(pm2)); // p - 2

    // R mod p and R-1 mod p as canonical values: one() holds R in raw
    // Montgomery form, i.e. its raw limbs are the canonical value R mod p.
    Big r_mod_p = F::one().raw();
    out.push_back(F::fromBig(r_mod_p));
    Big r_minus_1 = r_mod_p;
    if (r_minus_1.isZero())
        r_minus_1 = pm1;
    else
        r_minus_1.subInPlace(Big(1));
    out.push_back(F::fromBig(r_minus_1));

    // All-ones limb patterns masked below p: saturate one limb at a time,
    // then as many low limbs as fit under the modulus.
    for (std::size_t l = 0; l < F::numLimbs; ++l) {
        Big b;
        b.limb[l] = ~std::uint64_t(0);
        while (b >= F::modulus())
            b.shr1InPlace();
        out.push_back(F::fromBig(b));
    }
    Big all;
    for (auto &limb : all.limb)
        limb = ~std::uint64_t(0);
    while (all >= F::modulus())
        all.shr1InPlace();
    out.push_back(F::fromBig(all)); // 2^(bits-1) - 1 style saturation
    return out;
}

/**
 * Compare every arithmetic op under the unrolled kernels against the
 * generic oracle for one operand pair. Equality on PrimeField compares raw
 * Montgomery limbs, so this locks bit-identity, not just field equality.
 */
template <class F>
void
expectOpsMatch(const F &a, const F &b)
{
    ScopedGenericKernels oracle(true);
    const F g_mul = a * b;
    const F g_sq = a.square();
    const F g_add = a + b;
    const F g_sub = a - b;
    const F g_dbl = a.dbl();
    const F g_neg = a.neg();
    ScopedGenericKernels fixed(false);
    EXPECT_EQ(a * b, g_mul);
    EXPECT_EQ(a.square(), g_sq);
    EXPECT_EQ(a + b, g_add);
    EXPECT_EQ(a - b, g_sub);
    EXPECT_EQ(a.dbl(), g_dbl);
    EXPECT_EQ(a.neg(), g_neg);
}

template <class F>
void
runKernelPropertySuite(std::uint64_t seed)
{
    ASSERT_TRUE(ff::kernels::kHasFixedKernel<F::numLimbs>);

    const std::vector<F> edges = edgeOperands<F>();
    for (const F &a : edges)
        for (const F &b : edges)
            expectOpsMatch(a, b);

    ff::Rng rng(seed);
    for (int i = 0; i < 10000; ++i) {
        const F a = F::random(rng);
        const F b = F::random(rng);
        {
            ScopedGenericKernels oracle(true);
            const F g = a * b;
            ScopedGenericKernels fixed(false);
            ASSERT_EQ(a * b, g) << "mul mismatch at i=" << i;
        }
        // Cheap structural identities under the fixed kernels only; any
        // failure here is a kernel bug the mul cross-check may not see.
        ASSERT_EQ(a.square(), a * a);
        ASSERT_EQ(a.dbl(), a + a);
        ASSERT_EQ(a - b + b, a);
        ASSERT_EQ(a + a.neg(), F::zero());
    }
    // Edge x random: carries against boundary operands.
    for (const F &e : edges)
        for (int i = 0; i < 50; ++i)
            expectOpsMatch(e, F::random(rng));
}

} // namespace

TEST(FfKernels, FrUnrolledMatchesGenericOracle)
{
    runKernelPropertySuite<ff::Fr>(2024);
}

TEST(FfKernels, FqUnrolledMatchesGenericOracle)
{
    runKernelPropertySuite<ff::Fq>(4048);
}

/**
 * Three-way bit-identity: the ADX/BMI2 assembly kernel, the unrolled C++
 * kernel, and the generic oracle must produce identical raw Montgomery
 * limbs for mul and square on 10k random pairs plus every edge pair.
 * Skipped (not failed) on hosts without ADX+BMI2, matching the runtime
 * dispatch: such hosts never execute the assembly path.
 */
template <class F>
void
runAsmKernelSuite(std::uint64_t seed)
{
    if (!ff::kernels::cpuSupportsAdxBmi2())
        GTEST_SKIP() << "host lacks ADX/BMI2; asm path never dispatched";

    auto expect_three_way = [](const F &a, const F &b) {
        F g_mul, g_sq;
        {
            ScopedGenericKernels oracle(true);
            g_mul = a * b;
            g_sq = a.square();
        }
        {
            ff::kernels::ScopedAsmKernels no_asm(false);
            ASSERT_EQ(a * b, g_mul);
            ASSERT_EQ(a.square(), g_sq);
        }
        {
            ff::kernels::ScopedAsmKernels with_asm(true);
            ASSERT_EQ(a * b, g_mul);
            ASSERT_EQ(a.square(), g_sq);
        }
    };

    const std::vector<F> edges = edgeOperands<F>();
    for (const F &a : edges)
        for (const F &b : edges)
            expect_three_way(a, b);
    ff::Rng rng(seed);
    for (int i = 0; i < 10000; ++i)
        expect_three_way(F::random(rng), F::random(rng));
    for (const F &e : edges)
        for (int i = 0; i < 50; ++i)
            expect_three_way(e, F::random(rng));

    // In-place aliasing: the asm kernel writes through a local buffer, so
    // out == a == b must still be exact.
    ff::kernels::ScopedAsmKernels with_asm(true);
    for (const F &e : edges) {
        F x = e;
        x *= x;
        ASSERT_EQ(x, e.square());
    }
}

TEST(FfKernels, FrAsmMatchesUnrolledAndGeneric)
{
    runAsmKernelSuite<ff::Fr>(1234);
}

TEST(FfKernels, FqAsmMatchesUnrolledAndGeneric)
{
    runAsmKernelSuite<ff::Fq>(5678);
}

TEST(FfKernels, AsmScopeRoundTrips)
{
    // Enabling is clamped by CPU/build support (a no-asm build or
    // non-ADX host silently keeps the portable kernels selected).
    const bool avail = ff::kernels::cpuSupportsAdxBmi2();
    const bool ambient = ff::kernels::asmKernelsEnabled();
    {
        ff::kernels::ScopedAsmKernels on(true);
        EXPECT_EQ(ff::kernels::asmKernelsEnabled(), avail);
        {
            ff::kernels::ScopedAsmKernels off(false);
            EXPECT_FALSE(ff::kernels::asmKernelsEnabled());
        }
        EXPECT_EQ(ff::kernels::asmKernelsEnabled(), avail);
    }
    EXPECT_EQ(ff::kernels::asmKernelsEnabled(), ambient);
}

TEST(FfKernels, SquareKernelMatchesMulOnEdges)
{
    for (const ff::Fq &e : edgeOperands<ff::Fq>()) {
        EXPECT_EQ(e.square(), e * e);
        ScopedGenericKernels oracle(true);
        EXPECT_EQ(e.square(), e * e);
    }
}

TEST(FfKernels, VecOpsMatchScalarLoops)
{
    using ff::Fr;
    ff::Rng rng(99);
    constexpr std::size_t n = 257; // odd length: exercises any tail handling
    std::vector<Fr> a, b;
    for (std::size_t i = 0; i < n; ++i) {
        a.push_back(Fr::random(rng));
        b.push_back(Fr::random(rng));
    }
    std::vector<Fr> dst(n), expect(n);
    for (std::size_t i = 0; i < n; ++i)
        expect[i] = a[i] * b[i];
    ff::mulVec(dst.data(), a.data(), b.data(), n);
    EXPECT_EQ(dst, expect);

    // Aliased dst == a.
    std::vector<Fr> aliased = a;
    ff::mulVec(aliased.data(), aliased.data(), b.data(), n);
    EXPECT_EQ(aliased, expect);

    ff::sqrVec(dst.data(), a.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(dst[i], a[i] * a[i]);

    std::vector<Fr> acc(n, Fr::one());
    ff::addVec(acc.data(), a.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(acc[i], Fr::one() + a[i]);

    const Fr c = Fr::fromU64(7);
    acc.assign(n, Fr::zero());
    ff::addMulVec(acc.data(), c, a.data(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(acc[i], c * a[i]);

    Fr s = Fr::zero();
    for (std::size_t i = 0; i < n; ++i)
        s += a[i];
    EXPECT_EQ(ff::sumVec(a.data(), n), s);
}

TEST(FfKernels, ForceGenericRoundTrips)
{
    // The ambient value may be either (ZKPHIRE_FF_GENERIC=1 runs the whole
    // suite on the oracle); scopes must nest and restore it exactly.
    const bool ambient = ff::kernels::genericKernelsForced();
    {
        ScopedGenericKernels on(true);
        EXPECT_TRUE(ff::kernels::genericKernelsForced());
        {
            ScopedGenericKernels off(false);
            EXPECT_FALSE(ff::kernels::genericKernelsForced());
        }
        EXPECT_TRUE(ff::kernels::genericKernelsForced());
    }
    EXPECT_EQ(ff::kernels::genericKernelsForced(), ambient);
}

/**
 * Transcript bit-identity: a full HyperPlonk proof must serialize to the
 * same bytes with the unrolled kernels on and off, at every thread count —
 * the kernels change instruction sequences, never values.
 */
TEST(FfKernels, HyperPlonkTranscriptIdenticalKernelsOnOff)
{
    ff::Rng rng(7117);
    pcs::Srs srs = pcs::Srs::generate(7, rng);
    engine::ProverContext ctx(srs);
    hyperplonk::Circuit circuit = hyperplonk::randomVanillaCircuit(5, rng);
    const hyperplonk::Keys &keys = ctx.preprocess(circuit);

    auto prove_bytes = [&](bool generic, unsigned threads) {
        ScopedGenericKernels scope(generic);
        rt::ScopedThreads pin(threads);
        auto proof = hyperplonk::prove(keys.pk, circuit, nullptr);
        return hyperplonk::serializeProof(proof);
    };

    const std::vector<std::uint8_t> fixed1 = prove_bytes(false, 1);
    const std::vector<std::uint8_t> generic1 = prove_bytes(true, 1);
    EXPECT_EQ(fixed1, generic1);

    const std::vector<std::uint8_t> fixed3 = prove_bytes(false, 3);
    const std::vector<std::uint8_t> generic3 = prove_bytes(true, 3);
    EXPECT_EQ(fixed3, fixed1);
    EXPECT_EQ(generic3, fixed1);
}

/**
 * PR 7 regression matrix: the proof bytes must not move under any of the
 * new speed knobs — {asm on/off} x {GLV on/off} x {1, 4 threads}. On
 * non-ADX hosts "asm on" silently stays on the unrolled kernel (the
 * dispatch never arms), which still exercises the GLV/thread axes.
 */
TEST(FfKernels, HyperPlonkTranscriptIdenticalAsmGlvThreadMatrix)
{
    ff::Rng rng(9218);
    pcs::Srs srs = pcs::Srs::generate(7, rng);
    engine::ProverContext ctx(srs);
    hyperplonk::Circuit circuit = hyperplonk::randomVanillaCircuit(5, rng);
    const hyperplonk::Keys &keys = ctx.preprocess(circuit);

    auto prove_bytes = [&](bool asm_on, bool glv_on, unsigned threads) {
        ff::kernels::ScopedAsmKernels asm_scope(asm_on);
        rt::ScopedThreads pin(threads);
        hyperplonk::ProveOptions opts;
        opts.plans = &ctx.plans();
        opts.msm.glv = glv_on;
        auto proof = hyperplonk::prove(keys.pk, circuit, nullptr, opts);
        return hyperplonk::serializeProof(proof);
    };

    const std::vector<std::uint8_t> reference = prove_bytes(false, false, 1);
    for (bool asm_on : {false, true})
        for (bool glv_on : {false, true})
            for (unsigned threads : {1u, 4u})
                EXPECT_EQ(prove_bytes(asm_on, glv_on, threads), reference)
                    << "asm=" << asm_on << " glv=" << glv_on
                    << " threads=" << threads;
}
