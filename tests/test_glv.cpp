/**
 * @file
 * GLV endomorphism tests: lattice-decomposition properties (round-trip,
 * half-width bounds, edge scalars), the curve endomorphism phi(x,y) =
 * (beta*x, y) acting as multiplication by lambda, GLV-vs-plain MSM
 * equivalence on both bucket pipelines, the GLV-split fixed-base
 * multiplier, and batch affine normalization.
 */
#include <gtest/gtest.h>

#include "ec/fixed_base.hpp"
#include "ec/glv.hpp"
#include "ec/msm.hpp"
#include "ff/rng.hpp"

using namespace zkphire;
using namespace zkphire::ec;
using zkphire::ff::BigInt;
using zkphire::ff::Fr;
using zkphire::ff::Rng;

namespace {

/** k1 + lambda*k2 == k in Fr, and both halves fit kHalfBits. */
void
expectDecomposes(const BigInt<4> &k)
{
    BigInt<4> k1, k2;
    glv::decompose(k, k1, k2);
    EXPECT_LE(k1.bitLength(), glv::kHalfBits) << k.toHex();
    EXPECT_LE(k2.bitLength(), glv::kHalfBits) << k.toHex();
    const Fr recomposed =
        Fr::fromBig(k1) + glv::params().lambdaFr * Fr::fromBig(k2);
    EXPECT_EQ(recomposed, Fr::fromBig(k)) << k.toHex();
}

} // namespace

TEST(Glv, ParamsSelfCheckPasses)
{
    ASSERT_TRUE(glv::available());
    const glv::Params &p = glv::params();
    // lambda is a nontrivial cube root of unity mod r of half width.
    EXPECT_LE(p.lambda.bitLength(), glv::kHalfBits);
    EXPECT_FALSE(p.lambdaFr.isOne());
    EXPECT_TRUE(
        (p.lambdaFr.square() + p.lambdaFr + Fr::one()).isZero());
    // beta is a nontrivial cube root of unity in Fq.
    EXPECT_FALSE(p.beta.isOne());
    EXPECT_TRUE((p.beta * p.beta * p.beta).isOne());
}

TEST(Glv, DecomposeEdgeScalars)
{
    expectDecomposes(BigInt<4>(0));
    expectDecomposes(BigInt<4>(1));
    expectDecomposes(BigInt<4>(2));
    BigInt<4> rm1 = Fr::modulus();
    rm1.subInPlace(BigInt<4>(1));
    expectDecomposes(rm1); // r - 1
    expectDecomposes(glv::params().lambda);
    BigInt<4> lm1 = glv::params().lambda;
    lm1.subInPlace(BigInt<4>(1));
    expectDecomposes(lm1);
    BigInt<4> lp1 = glv::params().lambda;
    lp1.addInPlace(BigInt<4>(1));
    expectDecomposes(lp1);
    // 2^128 - 1: the largest value whose k2 could still be zero.
    BigInt<4> low128;
    low128.limb[0] = ~std::uint64_t(0);
    low128.limb[1] = ~std::uint64_t(0);
    expectDecomposes(low128);
}

TEST(Glv, DecomposeRandomRoundTrip)
{
    Rng rng(31337);
    for (int i = 0; i < 10000; ++i)
        expectDecomposes(Fr::random(rng).toBig());
}

TEST(Glv, EndomorphismIsMulByLambda)
{
    Rng rng(4242);
    for (int i = 0; i < 8; ++i) {
        const G1Affine p = randomG1(rng);
        const G1Jacobian lp =
            G1Jacobian::fromAffine(p).mulScalar(glv::params().lambdaFr);
        EXPECT_EQ(G1Jacobian::fromAffine(glv::endomorphism(p)), lp);
        EXPECT_EQ(glv::endomorphism(G1Jacobian::fromAffine(p)), lp);
    }
    // Identity maps to identity.
    EXPECT_TRUE(glv::endomorphism(G1Affine{}).infinity);
    EXPECT_TRUE(glv::endomorphism(G1Jacobian::identity()).isIdentity());
}

/**
 * The windowed GLV mulScalar (joint Shamir walk over {P, phi(P),
 * P + phi(P)}) must be bit-identical to the plain double-and-add oracle
 * after affine normalization, including the edge scalars the
 * decomposition treats specially.
 */
TEST(Glv, MulScalarGlvMatchesPlainOracle)
{
    ASSERT_TRUE(glv::available());
    Rng rng(7331);
    const G1Jacobian id = G1Jacobian::identity();

    std::vector<Fr> scalars = {Fr::zero(), Fr::one(), Fr::fromU64(2),
                               glv::params().lambdaFr,
                               Fr::zero() - Fr::one()}; // r - 1
    for (int i = 0; i < 16; ++i)
        scalars.push_back(Fr::random(rng));

    for (const Fr &k : scalars) {
        const G1Jacobian p = G1Jacobian::fromAffine(randomG1(rng));
        const G1Affine glv_path = p.mulScalar(k).toAffine();
        const G1Affine plain = p.mulScalarPlain(k).toAffine();
        EXPECT_EQ(glv_path, plain) << k.toBig().toHex();
        EXPECT_EQ(glv_path.infinity, plain.infinity);
        if (!plain.infinity) {
            // Affine coordinates are canonical: compare raw limbs too so a
            // non-normalized representative can't sneak through ==.
            EXPECT_EQ(glv_path.x.toBig().toHex(), plain.x.toBig().toHex());
            EXPECT_EQ(glv_path.y.toBig().toHex(), plain.y.toBig().toHex());
        }
        // Identity point stays identity along both paths.
        EXPECT_TRUE(id.mulScalar(k).isIdentity());
        EXPECT_TRUE(id.mulScalarPlain(k).isIdentity());
    }
}

TEST(Glv, MsmGlvMatchesPlainAndNaive)
{
    Rng rng(555);
    // Mixed scalar population: dense, zero, one — over both bucket
    // pipelines (batched-affine and Jacobian).
    for (std::size_t n : {std::size_t(64), std::size_t(700)}) {
        std::vector<Fr> scalars(n);
        std::vector<G1Affine> points(n);
        for (std::size_t i = 0; i < n; ++i) {
            const int r = int(rng.next() % 8);
            scalars[i] = r == 0   ? Fr::zero()
                         : r == 1 ? Fr::one()
                                  : Fr::random(rng);
            points[i] = randomG1(rng);
        }
        for (bool batch_affine : {false, true}) {
            MsmOptions glv_on, glv_off;
            glv_on.batchAffine = glv_off.batchAffine = batch_affine;
            glv_on.batchAffineMinPoints = glv_off.batchAffineMinPoints = 0;
            glv_on.glv = true;
            glv_off.glv = false;
            const G1Jacobian a = msmPippengerOpt(scalars, points, glv_on);
            const G1Jacobian b = msmPippengerOpt(scalars, points, glv_off);
            EXPECT_EQ(a, b);
            EXPECT_EQ(a.toAffine(), b.toAffine());
            if (n <= 64) {
                EXPECT_EQ(a, msmNaive(scalars, points));
            }
        }
    }
}

TEST(Glv, ProfitabilityRuleHasACrossover)
{
    // The split wins at prover-typical sizes and turns itself off once the
    // window cap binds (see msmGlvProfitable); the sim model consults the
    // same rule, so this locks kernel/model agreement, not exact numbers.
    EXPECT_TRUE(msmGlvProfitable(std::size_t(1) << 14));
    EXPECT_FALSE(msmGlvProfitable(std::size_t(1) << 24));
}

TEST(Glv, FixedBaseMulMatchesMulScalar)
{
    Rng rng(777);
    const G1Affine base = randomG1(rng);
    const FixedBaseMul fb(base);
    const G1Jacobian jb = G1Jacobian::fromAffine(base);
    std::vector<Fr> cases = {Fr::zero(), Fr::one(), Fr::fromU64(2),
                             glv::params().lambdaFr,
                             Fr::zero() - Fr::one()}; // r - 1
    for (int i = 0; i < 200; ++i)
        cases.push_back(Fr::random(rng));
    for (const Fr &k : cases)
        EXPECT_EQ(fb.mul(k), jb.mulScalar(k)) << k.toBig().toHex();
}

TEST(Glv, BatchToAffineMatchesPerPoint)
{
    Rng rng(888);
    std::vector<G1Jacobian> pts;
    pts.push_back(G1Jacobian::identity());
    for (int i = 0; i < 40; ++i) {
        G1Jacobian p = G1Jacobian::fromAffine(randomG1(rng));
        // Non-trivial Z coordinates: scale through a doubling.
        pts.push_back(p.dbl().add(p));
        if (i % 7 == 0)
            pts.push_back(G1Jacobian::identity());
    }
    const std::vector<G1Affine> aff = batchToAffine(pts);
    ASSERT_EQ(aff.size(), pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
        const G1Affine expect = pts[i].toAffine();
        EXPECT_EQ(aff[i].infinity, expect.infinity);
        if (!expect.infinity) {
            EXPECT_EQ(aff[i].x, expect.x);
            EXPECT_EQ(aff[i].y, expect.y);
        }
    }
}
