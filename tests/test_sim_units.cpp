/**
 * @file
 * Hardware unit model tests: SumCheck unit cycle model properties
 * (bandwidth/compute scaling, residency cutover, update fusion, sparsity
 * traffic), MSM model, Forest, PermQuotGen (including the batched-inversion
 * area claim), and MLE Combine.
 */
#include <gtest/gtest.h>

#include <cmath>

#include "gates/gate_library.hpp"
#include "sim/forest.hpp"
#include "sim/mle_combine.hpp"
#include "sim/msm_unit.hpp"
#include "sim/permq.hpp"
#include "sim/sumcheck_unit.hpp"

using namespace zkphire;
using namespace zkphire::sim;

namespace {

SumcheckWorkload
vanillaWorkload(unsigned mu, bool fused)
{
    SumcheckWorkload wl;
    wl.shape = PolyShape::fromGate(gates::tableIGate(20));
    wl.numVars = mu;
    wl.fusedFrSlot = fused ? int(wl.shape.numSlots) - 1 : -1;
    return wl;
}

} // namespace

TEST(SumcheckUnit, MoreBandwidthNeverSlower)
{
    SumcheckUnitConfig cfg;
    auto wl = vanillaWorkload(22, false);
    double prev = 1e300;
    for (double bw : {64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0}) {
        double t = simulateSumcheck(cfg, wl, bw).cycles;
        EXPECT_LE(t, prev) << "bw " << bw;
        prev = t;
    }
}

TEST(SumcheckUnit, MorePEsNeverSlowerAtHighBandwidth)
{
    auto wl = vanillaWorkload(22, false);
    double prev = 1e300;
    for (unsigned pes : {1u, 2u, 4u, 8u, 16u, 32u}) {
        SumcheckUnitConfig cfg;
        cfg.numPEs = pes;
        double t = simulateSumcheck(cfg, wl, 4096).cycles;
        EXPECT_LE(t, prev) << "PEs " << pes;
        prev = t;
    }
}

TEST(SumcheckUnit, LowBandwidthIsMemoryBound)
{
    SumcheckUnitConfig cfg;
    cfg.numPEs = 32;
    auto wl = vanillaWorkload(24, false);
    auto run = simulateSumcheck(cfg, wl, 64);
    EXPECT_GT(run.memCycles, run.computeCycles);
}

TEST(SumcheckUnit, WorkScalesWithTableSize)
{
    SumcheckUnitConfig cfg;
    auto small = simulateSumcheck(cfg, vanillaWorkload(18, false), 1024);
    auto large = simulateSumcheck(cfg, vanillaWorkload(21, false), 1024);
    // 8x the table should be ~8x the time (within fill/drain slack).
    EXPECT_GT(large.cycles / small.cycles, 5.0);
    EXPECT_LT(large.cycles / small.cycles, 10.0);
}

TEST(SumcheckUnit, ResidencyCutoverStopsTraffic)
{
    SumcheckUnitConfig cfg;
    cfg.bankWords = 1 << 12;
    auto run = simulateSumcheck(cfg, vanillaWorkload(20, false), 1024);
    // Updated tables of length <= 4096 fit from some round onward.
    EXPECT_LE(run.residentFromRound, 20u - 11);
    // Traffic must be well below the no-residency bound of all rounds
    // streaming dense tables.
    double naive = 9.0 * std::pow(2.0, 21.0) * 32.0 * 2.0;
    EXPECT_LT(run.trafficBytes, naive);
}

TEST(SumcheckUnit, LargerScratchpadCutsTraffic)
{
    auto wl = vanillaWorkload(20, false);
    SumcheckUnitConfig small_cfg, big_cfg;
    small_cfg.bankWords = 1 << 10;
    big_cfg.bankWords = 1 << 15;
    auto small = simulateSumcheck(small_cfg, wl, 512);
    auto big = simulateSumcheck(big_cfg, wl, 512);
    EXPECT_LT(big.trafficBytes, small.trafficBytes);
    EXPECT_LE(big.cycles, small.cycles);
}

TEST(SumcheckUnit, FusedZeroCheckSkipsFrFetchInRound1)
{
    auto fused = simulateSumcheck(SumcheckUnitConfig{},
                                  vanillaWorkload(20, true), 1024);
    auto unfused = simulateSumcheck(SumcheckUnitConfig{},
                                    vanillaWorkload(20, false), 1024);
    // The fused variant writes f_r once instead of a separate O(N)
    // precompute + read; with the Build-MLE precompute charged to the
    // unfused flow externally, fused traffic is lower by ~N reads.
    EXPECT_LT(fused.trafficBytes, unfused.trafficBytes + 1.0);
}

TEST(SumcheckUnit, UpdateFusionHelps)
{
    auto wl = vanillaWorkload(20, false);
    SumcheckUnitConfig fused_cfg, separate_cfg;
    separate_cfg.fuseUpdates = false;
    auto fused = simulateSumcheck(fused_cfg, wl, 2048);
    auto separate = simulateSumcheck(separate_cfg, wl, 2048);
    EXPECT_LT(fused.computeCycles, separate.computeCycles);
}

TEST(SumcheckUnit, GlobalScratchpadEliminatesPerRoundTraffic)
{
    auto wl = vanillaWorkload(20, false);
    SumcheckUnitConfig streaming, resident;
    resident.globalScratchpad = true;
    auto s = simulateSumcheck(streaming, wl, 256);
    auto r = simulateSumcheck(resident, wl, 256);
    EXPECT_LT(r.trafficBytes, s.trafficBytes);
}

TEST(SumcheckUnit, UtilizationIsSane)
{
    // Paper Fig. 6 reports ~0.4-0.5 mean modmul utilization.
    SumcheckUnitConfig cfg;
    cfg.numPEs = 4;
    cfg.numEEs = 2;
    cfg.numPLs = 5;
    for (int gate : {0, 6, 10, 20, 22}) {
        SumcheckWorkload wl;
        wl.shape = PolyShape::fromGate(gates::tableIGate(gate));
        wl.numVars = 20;
        auto run = simulateSumcheck(cfg, wl, 1024);
        EXPECT_GT(run.utilization, 0.05) << "gate " << gate;
        EXPECT_LT(run.utilization, 1.0) << "gate " << gate;
    }
}

TEST(SumcheckUnit, HigherDegreeRaisesUtilization)
{
    // Paper §VI-A1: Jellyfish-complexity polynomials achieve comparable or
    // higher utilization than low-degree ones on the same hardware —
    // additional constituent polynomials and extension products place more
    // concurrent demand on the (wide) EEs and product lanes.
    SumcheckUnitConfig cfg;
    cfg.numPEs = 4;
    cfg.numEEs = 7;
    cfg.numPLs = 5;
    SumcheckWorkload lo, hi;
    lo.shape = PolyShape::fromGate(gates::tableIGate(0));
    lo.numVars = 20;
    hi.shape = PolyShape::fromGate(gates::tableIGate(22));
    hi.numVars = 20;
    auto lo_run = simulateSumcheck(cfg, lo, 2048);
    auto hi_run = simulateSumcheck(cfg, hi, 2048);
    EXPECT_GT(hi_run.utilization, lo_run.utilization);
}

TEST(SumcheckUnit, AreaScalesWithResources)
{
    const Tech &tech = defaultTech();
    SumcheckUnitConfig small_cfg, big_cfg;
    big_cfg.numPEs = 32;
    EXPECT_GT(big_cfg.areaMm2(tech), small_cfg.areaMm2(tech));
    // Fixed-prime multipliers are ~half the area of arbitrary-prime.
    SumcheckUnitConfig arb = small_cfg;
    arb.fixedPrime = false;
    EXPECT_GT(arb.areaMm2(tech), small_cfg.areaMm2(tech) * 1.3);
}

TEST(MsmUnit, SparseCheaperThanDense)
{
    MsmUnitConfig cfg;
    double n = std::pow(2.0, 20.0);
    auto sparse = simulateMsm(cfg, MsmWorkload::sparse(n), 1024);
    auto dense = simulateMsm(cfg, MsmWorkload::dense(n), 1024);
    EXPECT_LT(sparse.cycles, dense.cycles * 0.5);
    EXPECT_LT(sparse.trafficBytes, dense.trafficBytes);
}

TEST(MsmUnit, MorePEsHelpLargeMsm)
{
    MsmWorkload wl = MsmWorkload::dense(std::pow(2.0, 22.0));
    MsmUnitConfig one, many;
    one.numPEs = 1;
    many.numPEs = 32;
    EXPECT_GT(simulateMsm(one, wl, 2048).cycles,
              simulateMsm(many, wl, 2048).cycles * 8);
}

TEST(MsmUnit, WindowTradeoff)
{
    // Bigger windows cut bucket adds per point but raise aggregation cost;
    // for tiny MSMs small windows win, for huge MSMs large windows win.
    MsmUnitConfig w7, w10;
    w7.windowBits = 7;
    w10.windowBits = 10;
    auto small = MsmWorkload::dense(1 << 10);
    auto large = MsmWorkload::dense(1 << 26);
    EXPECT_LT(simulateMsm(w7, small, 2048).cycles,
              simulateMsm(w10, small, 2048).cycles);
    EXPECT_GT(simulateMsm(w7, large, 2048).cycles,
              simulateMsm(w10, large, 2048).cycles);
}

TEST(Forest, TasksScaleAndBound)
{
    ForestConfig cfg;
    double t_small = simulateForest(cfg, batchEvalTask(18, 10), 1024);
    double t_large = simulateForest(cfg, batchEvalTask(21, 10), 1024);
    EXPECT_GT(t_large, 6 * t_small);
    // Build and product tasks are nonzero and finite.
    EXPECT_GT(simulateForest(cfg, buildMleTask(20), 1024), 0);
    EXPECT_GT(simulateForest(cfg, productMleTask(20), 1024), 0);
}

TEST(PermQ, ThroughputOneElementPerCycle)
{
    PermQConfig cfg;
    cfg.numPEs = 4;
    auto run = simulatePermQ(cfg, 20, 5, 4096);
    double n = std::pow(2.0, 20.0);
    // ceil(5/5) = 1 generation pass; ~n cycles total at high bandwidth.
    EXPECT_NEAR(run.cycles, n, n * 0.1);
}

TEST(PermQ, BatchedInversionAreaClaim)
{
    // Paper §IV-B5: 4.2x area reduction over zkSpeed's batch-64 design
    // (evaluated with arbitrary-prime multipliers, as zkSpeed uses).
    const Tech &tech = defaultTech();
    PermQConfig ours, zkspeed;
    ours.fixedPrime = false;
    zkspeed.fixedPrime = false;
    zkspeed.scheme = InversionScheme::ZkSpeedBatch64;
    // Compare inversion subsystem area: strip the shared generation PEs.
    auto inv_area = [&](const PermQConfig &c) {
        PermQConfig no_gen = c;
        no_gen.numPEs = 0;
        return no_gen.areaMm2(tech);
    };
    double ratio = inv_area(zkspeed) / inv_area(ours);
    EXPECT_GT(ratio, 3.0);
    EXPECT_LT(ratio, 5.5);
}

TEST(MleCombine, ThroughputAndBandwidthBound)
{
    MleCombineConfig cfg;
    double fast = simulateMleCombine(cfg, 20, 10, 4096);
    double slow = simulateMleCombine(cfg, 20, 10, 64);
    EXPECT_GT(slow, fast);
    // At high bandwidth: compute-bound at numLanes muls/cycle.
    double n = std::pow(2.0, 20.0);
    EXPECT_NEAR(fast, n * 10 / cfg.numLanes(), n * 0.05);
}

TEST(SumcheckUnit, RoundTraceIsConsistent)
{
    SumcheckUnitConfig cfg;
    auto wl = vanillaWorkload(20, false);
    auto run = simulateSumcheck(cfg, wl, 512);
    ASSERT_EQ(run.trace.size(), 20u);
    double compute = 0, mem = 0, bytes = 0;
    for (const auto &t : run.trace) {
        compute += t.computeCycles;
        mem += t.memCycles;
        bytes += t.readBytes + t.writeBytes;
    }
    EXPECT_NEAR(compute, run.computeCycles, 1e-6);
    EXPECT_NEAR(mem, run.memCycles, 1e-6);
    EXPECT_NEAR(bytes, run.trafficBytes, 1e-6);
    // Round 2 re-reads the originals and writes dense folds: the heaviest
    // traffic of the run, memory-bound at 512 GB/s. Late rounds are
    // resident with zero traffic.
    EXPECT_TRUE(run.trace[1].memoryBound());
    EXPECT_GT(run.trace[1].writeBytes, 0);
    EXPECT_TRUE(run.trace.back().resident);
    EXPECT_EQ(run.trace.back().readBytes, 0);
    // Residency is monotone: once on-chip, stays on-chip.
    bool seen_resident = false;
    for (const auto &t : run.trace) {
        if (seen_resident) {
            EXPECT_TRUE(t.resident) << "round " << t.round;
        }
        seen_resident |= t.resident;
    }
}
