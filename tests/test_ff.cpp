/**
 * @file
 * Unit and property tests for the multiprecision / prime-field substrate.
 * Known-answer vectors were generated independently with Python bignums.
 */
#include <gtest/gtest.h>

#include "ff/batch_inverse.hpp"
#include "ff/bigint.hpp"
#include "ff/fq.hpp"
#include "ff/fr.hpp"
#include "ff/rng.hpp"

using namespace zkphire::ff;

TEST(BigInt, HexRoundTrip)
{
    auto x = BigInt<4>::fromHex(
        "0x123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
    EXPECT_EQ(x.toHex(),
        "0x123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
    EXPECT_EQ(BigInt<4>(0).toHex(),
        "0x0000000000000000000000000000000000000000000000000000000000000000");
}

TEST(BigInt, AddSubCarryChains)
{
    BigInt<4> all_ones;
    for (auto &l : all_ones.limb)
        l = ~0ull;
    BigInt<4> x = all_ones;
    EXPECT_EQ(x.addInPlace(BigInt<4>(1)), 1u); // full carry out
    EXPECT_TRUE(x.isZero());
    x = BigInt<4>(0);
    EXPECT_EQ(x.subInPlace(BigInt<4>(1)), 1u); // full borrow
    EXPECT_EQ(x, all_ones);
}

TEST(BigInt, ComparisonAndBits)
{
    auto a = BigInt<4>::fromHex("0x10000000000000000"); // 2^64
    auto b = BigInt<4>::fromHex("0xffffffffffffffff");
    EXPECT_TRUE(b < a);
    EXPECT_TRUE(a > b);
    EXPECT_EQ(a.bitLength(), 65u);
    EXPECT_EQ(b.bitLength(), 64u);
    EXPECT_TRUE(a.bit(64));
    EXPECT_FALSE(a.bit(63));
    // bits() crossing a limb boundary.
    EXPECT_EQ(a.bits(60, 8), 0x10u);
}

TEST(BigInt, ShiftOps)
{
    auto x = BigInt<4>::fromHex("0x8000000000000000");
    BigInt<4> y = x;
    EXPECT_EQ(y.shl1InPlace(), 0u);
    EXPECT_TRUE(y.bit(64));
    y.shr1InPlace();
    EXPECT_EQ(y, x);
}

TEST(Fr, KnownMultiplication)
{
    Fr a = Fr::fromHex(
        "0x123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
    Fr b = Fr::fromHex(
        "0x0fedcba987654321123456789abcdef0cafebabedeadbeeffedcba9876543210");
    EXPECT_EQ((a * b).toBig().toHex(),
        "0x007dadaa8790026a9580da1a4b7bcc5f9ffce5121bb51c7cd55c1125b063a0a1");
    EXPECT_EQ((a + b).toBig().toHex(),
        "0x22222222222222121111111111111101a9ac79aea9ac79adffffffffffffffff");
    EXPECT_EQ(a.inverse().toBig().toHex(),
        "0x3fb466b99da54c20aa7c1db7b3b562b69e44a05d46bd22cff3aa78032d23094f");
}

TEST(Fq, KnownMultiplication)
{
    Fq a = Fq::fromHex(
        "0x123456789abcdef0fedcba9876543210deadbeefcafebabe0123456789abcdef");
    Fq b = Fq::fromHex(
        "0x13a1c0513e6381774882bbb2842a999f374aa195d6a6926d2ca019e5d13632cd"
        "43697e23d1b017d8d2af7b80aaffac3e");
    EXPECT_EQ((a * b).toBig().toHex(),
        "0x0e797d135e79fceade963c917e300ccdeb5a418a038fb1f21d27ee0a88823b53"
        "626e464cc601744af358fbd3e52d9fb8");
}

TEST(Fr, Identities)
{
    EXPECT_TRUE(Fr::zero().isZero());
    EXPECT_TRUE(Fr::one().isOne());
    EXPECT_EQ(Fr::one() * Fr::one(), Fr::one());
    EXPECT_EQ(Fr::fromU64(5) + Fr::fromU64(7), Fr::fromU64(12));
    EXPECT_EQ(Fr::fromU64(5) * Fr::fromU64(7), Fr::fromU64(35));
    EXPECT_EQ(Fr::fromI64(-3) + Fr::fromU64(3), Fr::zero());
    EXPECT_EQ(Fr::fromU64(6).dbl(), Fr::fromU64(12));
    EXPECT_EQ(Fr::fromU64(2).pow(10), Fr::fromU64(1024));
    EXPECT_EQ(Fr::modulusBits(), 255u);
    EXPECT_EQ(Fq::modulusBits(), 381u);
}

TEST(Fr, CanonicalRoundTrip)
{
    Rng rng(1);
    for (int i = 0; i < 50; ++i) {
        Fr x = Fr::random(rng);
        EXPECT_EQ(Fr::fromBig(x.toBig()), x);
        EXPECT_TRUE(x.toBig() < Fr::modulus());
    }
}

class FrAlgebra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrAlgebra, FieldAxioms)
{
    Rng rng(GetParam());
    Fr a = Fr::random(rng), b = Fr::random(rng), c = Fr::random(rng);
    // Commutativity / associativity / distributivity.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Inverses.
    EXPECT_EQ(a + a.neg(), Fr::zero());
    EXPECT_EQ(a - b + b, a);
    if (!a.isZero()) {
        EXPECT_EQ(a * a.inverse(), Fr::one());
    }
    // Squaring and doubling shortcuts.
    EXPECT_EQ(a.square(), a * a);
    EXPECT_EQ(a.dbl(), a + a);
    // Fermat: a^p == a.
    EXPECT_EQ(a.pow(Fr::modulus()), a);
}

TEST_P(FrAlgebra, FqFieldAxioms)
{
    Rng rng(GetParam() + 1000);
    Fq a = Fq::random(rng), b = Fq::random(rng);
    EXPECT_EQ(a * (b + b), a * b + a * b);
    if (!a.isZero()) {
        EXPECT_EQ(a * a.inverse(), Fq::one());
    }
    EXPECT_EQ(a.pow(Fq::modulus()), a);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrAlgebra,
                         ::testing::Values(2, 3, 5, 7, 11, 13, 17, 19));

TEST(Fr, HashBytesBelowModulus)
{
    Rng rng(42);
    for (int i = 0; i < 100; ++i) {
        std::uint8_t bytes[32];
        for (auto &byte : bytes)
            byte = std::uint8_t(rng.next());
        Fr x = Fr::fromHashBytes(bytes);
        EXPECT_TRUE(x.toBig() < Fr::modulus());
        // Masked to 252 bits.
        EXPECT_LE(x.toBig().bitLength(), 252u);
    }
}

TEST(Fr, SerializationRoundTrip)
{
    Rng rng(9);
    for (int i = 0; i < 20; ++i) {
        Fr x = Fr::random(rng);
        std::uint8_t bytes[32];
        x.toBytesLe(bytes);
        EXPECT_EQ(Fr::fromBig(BigInt<4>::fromBytesLe(bytes)), x);
    }
}

TEST(BatchInverse, MatchesIndividualInverses)
{
    Rng rng(77);
    std::vector<Fr> xs;
    for (int i = 0; i < 97; ++i)
        xs.push_back(Fr::random(rng));
    std::vector<Fr> expect;
    for (const Fr &x : xs)
        expect.push_back(x.inverse());
    batchInverseInPlace(std::span<Fr>(xs));
    EXPECT_EQ(xs, expect);
}

TEST(BatchInverse, EmptyAndSingle)
{
    std::vector<Fr> empty;
    batchInverseInPlace(std::span<Fr>(empty));
    std::vector<Fr> one{Fr::fromU64(4)};
    batchInverseInPlace(std::span<Fr>(one));
    EXPECT_EQ(one[0] * Fr::fromU64(4), Fr::one());
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.next(), b.next());
    double d = Rng(5).nextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
}
