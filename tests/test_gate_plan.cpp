/**
 * @file
 * GatePlan property tests: the compiled evaluation plan must be
 * bit-identical to the naive GateExpr walk at every evaluation site and
 * every thread count, for every Table I gate — and its multiplication
 * counts must agree with the hardware scheduler's cost model through the
 * shared decomposition (buildScheduleFromPlan).
 */
#include <gtest/gtest.h>

#include "gates/gate_library.hpp"
#include "poly/gate_plan.hpp"
#include "poly/virtual_poly.hpp"
#include "sim/sumcheck_sched.hpp"
#include "sumcheck/prover.hpp"
#include "sumcheck/verifier.hpp"
#include "sumcheck/zerocheck.hpp"

using namespace zkphire;
using poly::GateExpr;
using poly::GatePlan;
using poly::Mle;
using poly::SlotId;
using poly::VirtualPoly;
using ff::Fr;
using ff::Rng;

namespace {

/** All Table I gates plus a few sweep-family members (deg 3..10). */
std::vector<gates::Gate>
allTestGates()
{
    std::vector<gates::Gate> out = gates::tableIGates();
    for (unsigned d = 2; d <= 9; ++d)
        out.push_back(gates::sweepGate(d));
    return out;
}

/** Random expression with repeated factors and non-unit coefficients. */
GateExpr
randomExpr(Rng &rng, unsigned num_slots, unsigned num_terms,
           unsigned max_term_degree)
{
    GateExpr expr("random");
    for (unsigned s = 0; s < num_slots; ++s)
        expr.addSlot("s" + std::to_string(s));
    for (unsigned t = 0; t < num_terms; ++t) {
        unsigned deg = 1 + unsigned(rng.nextBelow(max_term_degree));
        std::vector<SlotId> factors;
        for (unsigned f = 0; f < deg; ++f)
            factors.push_back(SlotId(rng.nextBelow(num_slots)));
        expr.addTerm(Fr::random(rng), std::move(factors));
    }
    return expr;
}

void
expectProofsIdentical(const sumcheck::ProverOutput &a,
                      const sumcheck::ProverOutput &b, const char *what)
{
    EXPECT_EQ(a.proof.claimedSum, b.proof.claimedSum) << what;
    ASSERT_EQ(a.proof.roundEvals.size(), b.proof.roundEvals.size()) << what;
    for (std::size_t r = 0; r < a.proof.roundEvals.size(); ++r)
        EXPECT_EQ(a.proof.roundEvals[r], b.proof.roundEvals[r])
            << what << " round " << r;
    EXPECT_EQ(a.proof.finalSlotEvals, b.proof.finalSlotEvals) << what;
    EXPECT_EQ(a.challenges, b.challenges) << what;
}

} // namespace

TEST(GatePlan, EvaluateMatchesNaiveOnAllGates)
{
    Rng rng(101);
    for (const gates::Gate &gate : allTestGates()) {
        GatePlan plan = GatePlan::compile(gate.expr);
        std::vector<Fr> slot_vals(gate.expr.numSlots());
        for (int rep = 0; rep < 4; ++rep) {
            for (auto &v : slot_vals)
                v = Fr::random(rng);
            EXPECT_EQ(plan.evaluate(slot_vals), gate.expr.evaluate(slot_vals))
                << gate.name;
        }
    }
}

TEST(GatePlan, MulCountsAndExtensionBounds)
{
    for (const gates::Gate &gate : allTestGates()) {
        GatePlan plan = GatePlan::compile(gate.expr);
        EXPECT_EQ(plan.degree(), gate.expr.degree()) << gate.name;
        // The plan never does more work than the naive walk...
        EXPECT_LE(plan.mulsPerPoint(), gate.expr.mulsPerPoint()) << gate.name;
        EXPECT_LE(plan.mulsPerPair(), plan.naiveMulsPerPair(gate.expr))
            << gate.name;
        // ...and each slot's extension bound never exceeds the composite
        // degree's point count.
        for (SlotId s = 0; s < gate.expr.numSlots(); ++s)
            EXPECT_LE(plan.slotPoints(s), plan.degree() + 1) << gate.name;
    }

    // Repeated factors and per-term degrees must yield real savings on the
    // paper's high-degree gates: Jellyfish ZeroCheck (row 22, four w^5
    // S-box terms, composite degree 7).
    gates::Gate jf = gates::tableIGate(22);
    GatePlan plan = GatePlan::compile(jf.expr);
    EXPECT_LT(plan.mulsPerPoint(), jf.expr.mulsPerPoint());
    EXPECT_LT(plan.mulsPerPair(), plan.naiveMulsPerPair(jf.expr));
    // Selectors feeding only degree-3 terms must not extend to all 8 nodes.
    bool some_slot_below_max = false;
    for (SlotId s = 0; s < jf.expr.numSlots(); ++s)
        if (plan.slotPoints(s) > 0 && plan.slotPoints(s) < plan.degree() + 1)
            some_slot_below_max = true;
    EXPECT_TRUE(some_slot_below_max);
}

TEST(GatePlan, ProofsBitIdenticalToNaiveAtEveryThreadCount)
{
    Rng rng(202);
    const unsigned mu = 5;
    for (const gates::Gate &gate : allTestGates()) {
        auto tables = gate.randomTables(mu, rng);

        hash::Transcript tr_naive("plan-equiv");
        auto ref = sumcheck::prove(VirtualPoly(gate.expr, tables), tr_naive,
                                   rt::Config{.threads = 1},
                                   sumcheck::EvalPath::Naive);
        for (unsigned threads : {1u, 2u, 4u}) {
            hash::Transcript tr("plan-equiv");
            auto out = sumcheck::prove(VirtualPoly(gate.expr, tables), tr,
                                       rt::Config{.threads = threads},
                                       sumcheck::EvalPath::Plan);
            expectProofsIdentical(ref, out, gate.name.c_str());
        }
    }
}

TEST(GatePlan, ProofsBitIdenticalOnRandomExpressions)
{
    Rng rng(303);
    const unsigned mu = 6;
    for (int rep = 0; rep < 8; ++rep) {
        unsigned num_slots = 2 + unsigned(rng.nextBelow(5));
        unsigned num_terms = 1 + unsigned(rng.nextBelow(6));
        unsigned max_deg = 1 + unsigned(rng.nextBelow(7));
        GateExpr expr = randomExpr(rng, num_slots, num_terms, max_deg);
        std::vector<Mle> tables;
        for (unsigned s = 0; s < num_slots; ++s)
            tables.push_back(Mle::random(mu, rng));

        hash::Transcript tr_naive("plan-equiv-rand");
        auto ref = sumcheck::prove(VirtualPoly(expr, tables), tr_naive,
                                   rt::Config{.threads = 1},
                                   sumcheck::EvalPath::Naive);
        for (unsigned threads : {1u, 3u}) {
            hash::Transcript tr("plan-equiv-rand");
            auto out = sumcheck::prove(VirtualPoly(expr, tables), tr,
                                       rt::Config{.threads = threads},
                                       sumcheck::EvalPath::Plan);
            expectProofsIdentical(ref, out, "random expr");
        }
        // And the proofs still verify.
        hash::Transcript tr_v("plan-equiv-rand");
        auto res = sumcheck::verify(expr, ref.proof, mu, tr_v);
        EXPECT_TRUE(res.ok) << res.error;
    }
}

TEST(GatePlan, HypercubeSumAndIndexEvalMatchNaive)
{
    Rng rng(404);
    const unsigned mu = 4;
    for (int id : {0, 1, 9, 20, 22, 24}) {
        gates::Gate gate = gates::tableIGate(id);
        auto tables = gate.randomTables(mu, rng);
        VirtualPoly vp(gate.expr, tables);

        Fr naive_sum = Fr::zero();
        std::vector<Fr> slot_vals(tables.size());
        for (std::size_t i = 0; i < (std::size_t(1) << mu); ++i) {
            for (std::size_t s = 0; s < tables.size(); ++s)
                slot_vals[s] = tables[s][i];
            Fr v = gate.expr.evaluate(slot_vals);
            EXPECT_EQ(vp.evalAtIndex(i), v) << gate.name;
            naive_sum += v;
        }
        EXPECT_EQ(vp.sumOverHypercube(), naive_sum) << gate.name;
    }
}

TEST(GatePlan, ZeroCheckCachedPlanTranscriptIdentical)
{
    Rng rng(505);
    const unsigned mu = 5;
    // Satisfiable vanilla rows: qL=qR=qM=qO=0 except qC=0 -> all-zero gate.
    // Use the OpenCheck expression instead: build random tables that sum to
    // zero is fiddly, so compare the two proveZero paths on a constraint a
    // random witness *does* satisfy: expr = q * (a - a) == 0 for any a.
    GateExpr expr("always-zero");
    SlotId q = expr.addSlot("q");
    SlotId a = expr.addSlot("a");
    expr.addTerm({q, a});
    expr.addTerm(Fr::one().neg(), {q, a});
    std::vector<Mle> tables;
    tables.push_back(Mle::random(mu, rng));
    tables.push_back(Mle::random(mu, rng));

    gates::PlanCache cache;
    hash::Transcript tr1("zc-plan");
    auto out1 = sumcheck::proveZero(expr, tables, tr1,
                                    rt::Config{.threads = 1}, nullptr);
    hash::Transcript tr2("zc-plan");
    auto out2 = sumcheck::proveZero(expr, tables, tr2,
                                    rt::Config{.threads = 2},
                                    cache.maskedPlan(expr));
    EXPECT_EQ(out1.proof.sc.claimedSum, out2.proof.sc.claimedSum);
    EXPECT_EQ(out1.proof.sc.roundEvals, out2.proof.sc.roundEvals);
    EXPECT_EQ(out1.proof.sc.finalSlotEvals, out2.proof.sc.finalSlotEvals);
    EXPECT_EQ(out1.challenges, out2.challenges);
    EXPECT_EQ(out1.rVec, out2.rVec);

    // Cache hit returns the same compiled object.
    EXPECT_EQ(cache.maskedPlan(expr).get(), cache.maskedPlan(expr).get());
}

TEST(GatePlan, CacheKeysOnStructureNotSlotNames)
{
    // Same name, same (duplicate) slot names, different term structure:
    // the cache must hand back distinct plans.
    GateExpr a("dup");
    SlotId a0 = a.addSlot("w");
    SlotId a1 = a.addSlot("w");
    a.addTerm({a0, a1}); // w0 * w1
    GateExpr b("dup");
    SlotId b0 = b.addSlot("w");
    b.addSlot("w");
    b.addTerm({b0, b0}); // w0^2
    ASSERT_EQ(a.toString(), b.toString()); // names really do collide
    gates::PlanCache cache;
    auto plan_a = cache.plan(a);
    auto plan_b = cache.plan(b);
    EXPECT_NE(plan_a.get(), plan_b.get());
    EXPECT_EQ(cache.size(), 2u);

    Rng rng(606);
    std::vector<Fr> vals{Fr::random(rng), Fr::random(rng)};
    EXPECT_EQ(plan_a->evaluate(vals), vals[0] * vals[1]);
    EXPECT_EQ(plan_b->evaluate(vals), vals[0] * vals[0]);
}

TEST(GatePlan, CrossCheckAgainstSchedulerCostModel)
{
    // One decomposition, two consumers: the plan's per-point product-mul
    // count must equal what the cost model charges for the plan-derived
    // schedule — at the paper's (E, P) and under forced chaining (small E).
    for (const gates::Gate &gate : allTestGates()) {
        GatePlan plan = GatePlan::compile(gate.expr);
        for (unsigned num_ees : {7u, 3u, 2u}) {
            sim::Schedule sched =
                sim::buildScheduleFromPlan(plan, num_ees, 5);
            EXPECT_TRUE(sim::crossCheckPlanSchedule(plan, sched))
                << gate.name << " E=" << num_ees << ": plan "
                << plan.productMulsPerPoint() << " muls vs schedule "
                << sim::scheduleMulsPerPoint(sched);
        }
    }
}

TEST(GatePlan, NaiveScheduleCostMatchesTermDegrees)
{
    // The legacy term-chain schedule must keep charging the naive count
    // Sum_t (degree_t - 1) — Table I's gate costs, now asserted against the
    // same helper the plan cross-check uses.
    for (const gates::Gate &gate : allTestGates()) {
        sim::PolyShape shape = sim::PolyShape::fromGate(gate);
        std::size_t naive_muls = 0;
        for (std::size_t t = 0; t < shape.numTerms(); ++t)
            naive_muls += shape.termDegree(t) - 1;
        sim::Schedule sched = sim::buildSchedule(shape, 7, 5);
        EXPECT_EQ(sim::scheduleMulsPerPoint(sched), naive_muls) << gate.name;

        // The shared decomposition never charges more than the naive one.
        GatePlan plan = GatePlan::compile(gate.expr);
        EXPECT_LE(plan.productMulsPerPoint(), naive_muls) << gate.name;
    }
}

TEST(GatePlan, PlanScheduleTmpBuffersBounded)
{
    // Plan-derived schedules route shared values through Tmp MLEs; the
    // peak must stay small for the library gates (the hardware has a
    // bounded buffer pool) and zero when nothing is shared or split.
    gates::Gate vanilla = gates::vanillaCoreGate();
    GatePlan plan = GatePlan::compile(vanilla.expr);
    sim::Schedule sched = sim::buildScheduleFromPlan(plan, 7, 5);
    EXPECT_EQ(sched.tmpBuffers, 0u);

    for (const gates::Gate &gate : allTestGates()) {
        GatePlan p = GatePlan::compile(gate.expr);
        for (unsigned num_ees : {7u, 2u}) {
            sim::Schedule s = sim::buildScheduleFromPlan(p, num_ees, 5);
            EXPECT_LE(s.tmpBuffers, 8u) << gate.name << " E=" << num_ees;
        }
    }
}
