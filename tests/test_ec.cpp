/**
 * @file
 * BLS12-381 G1 group-law and MSM tests. The doubled-generator vector was
 * computed independently with Python bignums.
 */
#include <gtest/gtest.h>

#include "ec/g1.hpp"
#include "ec/msm.hpp"

using namespace zkphire::ec;
using zkphire::ff::Fq;
using zkphire::ff::Fr;
using zkphire::ff::Rng;

TEST(G1, GeneratorOnCurve)
{
    EXPECT_TRUE(g1Generator().isOnCurve());
    EXPECT_FALSE(g1Generator().infinity);
}

TEST(G1, KnownDouble)
{
    G1Affine two_g =
        G1Jacobian::fromAffine(g1Generator()).dbl().toAffine();
    EXPECT_TRUE(two_g.isOnCurve());
    EXPECT_EQ(two_g.x.toBig().toHex(),
        "0x0572cbea904d67468808c8eb50a9450c9721db309128012543902d0ac358a62a"
        "e28f75bb8f1c7c42c39a8c5529bf0f4e");
    EXPECT_EQ(two_g.y.toBig().toHex(),
        "0x166a9d8cabc673a322fda673779d8e3822ba3ecb8670e461f73bb9021d5fd76a"
        "4c56d9d4cd16bd1bba86881979749d28");
}

TEST(G1, AddEqualsDouble)
{
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    EXPECT_EQ(g.add(g), g.dbl());
    EXPECT_EQ(g.addMixed(g1Generator()), g.dbl());
}

TEST(G1, IdentityLaws)
{
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    G1Jacobian id = G1Jacobian::identity();
    EXPECT_EQ(g.add(id), g);
    EXPECT_EQ(id.add(g), g);
    EXPECT_EQ(id.dbl(), id);
    EXPECT_EQ(g.add(g.neg()), id);
    EXPECT_TRUE(id.toAffine().infinity);
    EXPECT_EQ(id.addMixed(g1Generator()), g);
}

TEST(G1, GroupOrderAnnihilates)
{
    // r * G == identity: a strong end-to-end check of field + curve code.
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    // r = modulus of Fr; multiply by r via (r - 1) * G + G.
    Fr r_minus_1 = Fr::zero() - Fr::one();
    G1Jacobian almost = g.mulScalar(r_minus_1);
    EXPECT_TRUE(almost.add(g).isIdentity());
    // And (r-1) * G == -G.
    EXPECT_EQ(almost, g.neg());
}

TEST(G1, ScalarMulSmallValues)
{
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    G1Jacobian acc = G1Jacobian::identity();
    for (std::uint64_t k = 0; k <= 8; ++k) {
        EXPECT_EQ(g.mulScalar(Fr::fromU64(k)), acc) << "k=" << k;
        acc = acc.add(g);
    }
}

TEST(G1, ScalarMulDistributes)
{
    Rng rng(61);
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    Fr a = Fr::random(rng), b = Fr::random(rng);
    EXPECT_EQ(g.mulScalar(a).add(g.mulScalar(b)), g.mulScalar(a + b));
    EXPECT_EQ(g.mulScalar(a).mulScalar(b), g.mulScalar(a * b));
}

TEST(G1, AssociativityOnRandomPoints)
{
    Rng rng(62);
    G1Jacobian p = G1Jacobian::fromAffine(randomG1(rng));
    G1Jacobian q = G1Jacobian::fromAffine(randomG1(rng));
    G1Jacobian r = G1Jacobian::fromAffine(randomG1(rng));
    EXPECT_EQ(p.add(q).add(r), p.add(q.add(r)));
    EXPECT_EQ(p.add(q), q.add(p));
}

TEST(G1, AffineRoundTrip)
{
    Rng rng(63);
    G1Jacobian p = G1Jacobian::fromAffine(randomG1(rng));
    // Rescale Z to a random value; affine normalization must agree.
    Fq z = Fq::random(rng);
    G1Jacobian q{p.X * z.square(), p.Y * z.square() * z, p.Z * z};
    EXPECT_EQ(p, q);
    EXPECT_EQ(p.toAffine(), q.toAffine());
    EXPECT_TRUE(p.toAffine().isOnCurve());
}

class MsmSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MsmSizes, PippengerMatchesNaive)
{
    const std::size_t n = GetParam();
    Rng rng(1000 + n);
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng));
        points.push_back(randomG1(rng));
    }
    G1Jacobian expect = msmNaive(scalars, points);
    EXPECT_EQ(msmPippenger(scalars, points), expect);
    // Explicit window sizes must agree too.
    EXPECT_EQ(msmPippenger(scalars, points, 4), expect);
    EXPECT_EQ(msmPippenger(scalars, points, 9), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsmSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 64));

TEST(Msm, SparseScalarsFastPath)
{
    Rng rng(71);
    const std::size_t n = 64;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        // ~90% of scalars in {0,1}, like witness MSMs in the paper.
        double u = rng.nextDouble();
        scalars.push_back(u < 0.6   ? Fr::zero()
                          : u < 0.9 ? Fr::one()
                                    : Fr::random(rng));
        points.push_back(randomG1(rng));
    }
    MsmStats stats;
    G1Jacobian got = msmPippenger(scalars, points, 0, &stats);
    EXPECT_EQ(got, msmNaive(scalars, points));
    EXPECT_GT(stats.trivialScalars, n / 2);
    EXPECT_EQ(stats.trivialScalars + stats.denseScalars, n);
}

TEST(Msm, EmptyAndZeroInputs)
{
    EXPECT_TRUE(msmPippenger({}, {}).isIdentity());
    std::vector<Fr> scalars(5, Fr::zero());
    std::vector<G1Affine> points;
    Rng rng(72);
    for (int i = 0; i < 5; ++i)
        points.push_back(randomG1(rng));
    EXPECT_TRUE(msmPippenger(scalars, points).isIdentity());
}

TEST(Msm, StatsCountBucketWork)
{
    Rng rng(73);
    const std::size_t n = 32;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng) + Fr::fromU64(2)); // force dense
        points.push_back(randomG1(rng));
    }
    MsmStats stats;
    msmPippenger(scalars, points, 8, &stats);
    EXPECT_EQ(stats.denseScalars, n);
    // 255-bit scalars, c=8 -> 32 windows; each dense scalar contributes at
    // most one bucket add per window.
    EXPECT_LE(stats.pointAdds, n * 32 + 32 * (2 * 255 + 1));
    EXPECT_GT(stats.pointDoubles, 0u);
}

TEST(Msm, ParallelMatchesSerial)
{
    Rng rng(74);
    const std::size_t n = 512;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    G1Affine base = randomG1(rng);
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng));
        points.push_back(i % 16 == 0 ? randomG1(rng) : base);
    }
    G1Jacobian serial = msmPippenger(scalars, points);
    using zkphire::rt::Config;
    EXPECT_EQ(msmPippengerParallel(scalars, points, Config{.threads = 4}),
              serial);
    EXPECT_EQ(msmPippengerParallel(scalars, points, Config{.threads = 1}),
              serial);
    EXPECT_EQ(msmPippengerParallel(scalars, points, Config{.threads = 24}),
              serial);
}
