/**
 * @file
 * BLS12-381 G1 group-law and MSM tests. The doubled-generator vector was
 * computed independently with Python bignums.
 */
#include <gtest/gtest.h>

#include "ec/batch_add.hpp"
#include "ec/g1.hpp"
#include "ec/msm.hpp"
#include "ec/recode.hpp"

using namespace zkphire::ec;
using zkphire::ff::Fq;
using zkphire::ff::Fr;
using zkphire::ff::Rng;

TEST(G1, GeneratorOnCurve)
{
    EXPECT_TRUE(g1Generator().isOnCurve());
    EXPECT_FALSE(g1Generator().infinity);
}

TEST(G1, KnownDouble)
{
    G1Affine two_g =
        G1Jacobian::fromAffine(g1Generator()).dbl().toAffine();
    EXPECT_TRUE(two_g.isOnCurve());
    EXPECT_EQ(two_g.x.toBig().toHex(),
        "0x0572cbea904d67468808c8eb50a9450c9721db309128012543902d0ac358a62a"
        "e28f75bb8f1c7c42c39a8c5529bf0f4e");
    EXPECT_EQ(two_g.y.toBig().toHex(),
        "0x166a9d8cabc673a322fda673779d8e3822ba3ecb8670e461f73bb9021d5fd76a"
        "4c56d9d4cd16bd1bba86881979749d28");
}

TEST(G1, AddEqualsDouble)
{
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    EXPECT_EQ(g.add(g), g.dbl());
    EXPECT_EQ(g.addMixed(g1Generator()), g.dbl());
}

TEST(G1, IdentityLaws)
{
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    G1Jacobian id = G1Jacobian::identity();
    EXPECT_EQ(g.add(id), g);
    EXPECT_EQ(id.add(g), g);
    EXPECT_EQ(id.dbl(), id);
    EXPECT_EQ(g.add(g.neg()), id);
    EXPECT_TRUE(id.toAffine().infinity);
    EXPECT_EQ(id.addMixed(g1Generator()), g);
}

TEST(G1, GroupOrderAnnihilates)
{
    // r * G == identity: a strong end-to-end check of field + curve code.
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    // r = modulus of Fr; multiply by r via (r - 1) * G + G.
    Fr r_minus_1 = Fr::zero() - Fr::one();
    G1Jacobian almost = g.mulScalar(r_minus_1);
    EXPECT_TRUE(almost.add(g).isIdentity());
    // And (r-1) * G == -G.
    EXPECT_EQ(almost, g.neg());
}

TEST(G1, ScalarMulSmallValues)
{
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    G1Jacobian acc = G1Jacobian::identity();
    for (std::uint64_t k = 0; k <= 8; ++k) {
        EXPECT_EQ(g.mulScalar(Fr::fromU64(k)), acc) << "k=" << k;
        acc = acc.add(g);
    }
}

TEST(G1, ScalarMulDistributes)
{
    Rng rng(61);
    G1Jacobian g = G1Jacobian::fromAffine(g1Generator());
    Fr a = Fr::random(rng), b = Fr::random(rng);
    EXPECT_EQ(g.mulScalar(a).add(g.mulScalar(b)), g.mulScalar(a + b));
    EXPECT_EQ(g.mulScalar(a).mulScalar(b), g.mulScalar(a * b));
}

TEST(G1, AssociativityOnRandomPoints)
{
    Rng rng(62);
    G1Jacobian p = G1Jacobian::fromAffine(randomG1(rng));
    G1Jacobian q = G1Jacobian::fromAffine(randomG1(rng));
    G1Jacobian r = G1Jacobian::fromAffine(randomG1(rng));
    EXPECT_EQ(p.add(q).add(r), p.add(q.add(r)));
    EXPECT_EQ(p.add(q), q.add(p));
}

TEST(G1, AffineRoundTrip)
{
    Rng rng(63);
    G1Jacobian p = G1Jacobian::fromAffine(randomG1(rng));
    // Rescale Z to a random value; affine normalization must agree.
    Fq z = Fq::random(rng);
    G1Jacobian q{p.X * z.square(), p.Y * z.square() * z, p.Z * z};
    EXPECT_EQ(p, q);
    EXPECT_EQ(p.toAffine(), q.toAffine());
    EXPECT_TRUE(p.toAffine().isOnCurve());
}

class MsmSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MsmSizes, PippengerMatchesNaive)
{
    const std::size_t n = GetParam();
    Rng rng(1000 + n);
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng));
        points.push_back(randomG1(rng));
    }
    G1Jacobian expect = msmNaive(scalars, points);
    EXPECT_EQ(msmPippenger(scalars, points), expect);
    // Explicit window sizes must agree too.
    EXPECT_EQ(msmPippenger(scalars, points, 4), expect);
    EXPECT_EQ(msmPippenger(scalars, points, 9), expect);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MsmSizes,
                         ::testing::Values(1, 2, 3, 7, 16, 33, 64));

TEST(Msm, SparseScalarsFastPath)
{
    Rng rng(71);
    const std::size_t n = 64;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        // ~90% of scalars in {0,1}, like witness MSMs in the paper.
        double u = rng.nextDouble();
        scalars.push_back(u < 0.6   ? Fr::zero()
                          : u < 0.9 ? Fr::one()
                                    : Fr::random(rng));
        points.push_back(randomG1(rng));
    }
    MsmStats stats;
    G1Jacobian got = msmPippenger(scalars, points, 0, &stats);
    EXPECT_EQ(got, msmNaive(scalars, points));
    EXPECT_GT(stats.trivialScalars, n / 2);
    EXPECT_EQ(stats.trivialScalars + stats.denseScalars, n);
}

TEST(Msm, EmptyAndZeroInputs)
{
    EXPECT_TRUE(msmPippenger({}, {}).isIdentity());
    std::vector<Fr> scalars(5, Fr::zero());
    std::vector<G1Affine> points;
    Rng rng(72);
    for (int i = 0; i < 5; ++i)
        points.push_back(randomG1(rng));
    EXPECT_TRUE(msmPippenger(scalars, points).isIdentity());
}

TEST(Msm, StatsCountBucketWork)
{
    Rng rng(73);
    const std::size_t n = 32;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng) + Fr::fromU64(2)); // force dense
        points.push_back(randomG1(rng));
    }
    MsmStats stats;
    msmPippenger(scalars, points, 8, &stats);
    EXPECT_EQ(stats.denseScalars, n);
    // 255-bit scalars, c=8 -> 32 windows; each dense scalar contributes at
    // most one bucket add per window.
    EXPECT_LE(stats.pointAdds, n * 32 + 32 * (2 * 255 + 1));
    EXPECT_GT(stats.pointDoubles, 0u);
}

namespace {

using Big = zkphire::ff::BigInt<Fr::numLimbs>;

/** Reconstruct sum_w d_w * 2^(c*w) from signed digits, top window down. */
Big
reconstructFromDigits(const std::vector<std::int32_t> &digits, unsigned c)
{
    Big acc;
    for (std::size_t w = digits.size(); w-- > 0;) {
        for (unsigned s = 0; s < c; ++s) {
            zkphire::ff::u64 carry = acc.shl1InPlace();
            EXPECT_EQ(carry, 0u) << "reconstruction overflowed";
        }
        std::int32_t d = digits[w];
        if (d >= 0) {
            acc.addInPlace(Big(zkphire::ff::u64(d)));
        } else {
            // Top-down partial sums of a balanced recoding are the scalar's
            // truncated prefixes plus the incoming carry, so they never go
            // negative: the subtraction must not borrow.
            zkphire::ff::u64 borrow =
                acc.subInPlace(Big(zkphire::ff::u64(-d)));
            EXPECT_EQ(borrow, 0u) << "negative partial sum";
        }
    }
    return acc;
}

std::vector<std::int32_t>
recode(const Fr &s, unsigned c)
{
    const std::size_t nw = signedDigitWindows(Fr::modulusBits(), c);
    std::vector<std::int32_t> digits(nw);
    recodeSignedDigits(s.toBig(), c, nw, digits.data(), 1);
    return digits;
}

} // namespace

TEST(Recode, SignedDigitsRoundTrip)
{
    Rng rng(80);
    std::vector<Fr> scalars = {Fr::zero(), Fr::one(), Fr::fromU64(2),
                               Fr::zero() - Fr::one(), // p - 1: dense bits
                               Fr::fromU64(0xffffffffffffffffull)};
    for (int i = 0; i < 24; ++i)
        scalars.push_back(Fr::random(rng));
    for (unsigned c : {1u, 2u, 5u, 8u, 13u, 16u}) {
        const std::int64_t half = std::int64_t(1) << (c - 1);
        for (const Fr &s : scalars) {
            auto digits = recode(s, c);
            for (std::int32_t d : digits) {
                EXPECT_GE(d, -half);
                EXPECT_LE(d, half);
            }
            EXPECT_EQ(reconstructFromDigits(digits, c), s.toBig())
                << "c=" << c << " s=" << s.toHexString();
        }
    }
}

TEST(Recode, BoundaryDigitStaysPositive)
{
    // A window value of exactly 2^(c-1) must not borrow (it has a bucket of
    // its own); only values above it carry into the next window.
    for (unsigned c : {2u, 8u}) {
        auto digits = recode(Fr::fromU64(1ull << (c - 1)), c);
        EXPECT_EQ(digits[0], std::int32_t(1) << (c - 1));
        for (std::size_t w = 1; w < digits.size(); ++w)
            EXPECT_EQ(digits[w], 0);
    }
}

TEST(Recode, TopWindowAbsorbsCarry)
{
    // p - 1 has a long run of high bits; with small c the carry ripples all
    // the way up and must terminate inside the allotted window count (the
    // recoder asserts this internally; the round-trip checks the value).
    Fr top = Fr::zero() - Fr::one();
    for (unsigned c : {2u, 3u, 4u})
        EXPECT_EQ(reconstructFromDigits(recode(top, c), c), top.toBig());
}

TEST(BatchAffine, SegmentSumsMatchJacobianOracle)
{
    Rng rng(81);
    G1Affine p = randomG1(rng);
    G1Affine q = randomG1(rng);
    G1Affine neg_p{p.x, p.y.neg(), false};
    // Segments exercising every pair class: empty, singleton, generic adds,
    // doubling (duplicate points), cancellation (P then -P), identity
    // entries in every position, and an odd-length tail.
    std::vector<std::vector<G1Affine>> segments = {
        {},
        {p},
        {p, q},
        {p, p},          // doubling
        {p, neg_p},      // cancellation -> identity
        {G1Affine{}, p}, // identity lhs
        {p, G1Affine{}}, // identity rhs
        {G1Affine{}, G1Affine{}},
        {p, q, p},       // odd tail
        {p, p, p, p},    // repeated doublings
        {p, neg_p, p, neg_p, q},
    };
    for (int i = 0; i < 3; ++i) { // and a few random fat segments
        std::vector<G1Affine> seg;
        for (int j = 0; j < 9 + i; ++j)
            seg.push_back(j % 4 == 0 ? p : randomG1(rng));
        segments.push_back(std::move(seg));
    }

    std::vector<G1Affine> buf;
    std::vector<std::uint32_t> off = {0};
    for (const auto &seg : segments) {
        buf.insert(buf.end(), seg.begin(), seg.end());
        off.push_back(std::uint32_t(buf.size()));
    }
    std::vector<G1Affine> sums(segments.size());
    BatchAffineScratch scratch;
    BatchAffineStats stats;
    batchAffineSegmentSums(buf, off, sums, scratch, &stats);
    EXPECT_GT(stats.affineAdds, 0u);
    EXPECT_GT(stats.batchInversions, 0u);

    for (std::size_t s = 0; s < segments.size(); ++s) {
        G1Jacobian expect = G1Jacobian::identity();
        for (const G1Affine &a : segments[s])
            expect = expect.addMixed(a);
        EXPECT_EQ(G1Jacobian::fromAffine(sums[s]), expect) << "segment " << s;
    }
}

TEST(Msm, ModesAgreeWithNaive)
{
    Rng rng(82);
    const std::size_t n = 200;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    G1Affine base = randomG1(rng);
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(i % 9 == 0 ? Fr::one()
                          : i % 10 == 0 ? Fr::zero()
                                        : Fr::random(rng));
        // Repeated points drive doubling/cancellation in shared buckets.
        points.push_back(i % 4 == 0 ? base : randomG1(rng));
    }
    G1Jacobian expect = msmNaive(scalars, points);

    MsmOptions unsigned_mode{.signedDigits = false, .batchAffine = false};
    MsmOptions signed_jac{.signedDigits = true, .batchAffine = false};
    MsmOptions signed_ba{.signedDigits = true, .batchAffine = true,
                         .batchAffineMinPoints = 0};
    for (unsigned c : {0u, 4u, 9u}) {
        unsigned_mode.windowBits = signed_jac.windowBits =
            signed_ba.windowBits = c;
        EXPECT_EQ(msmPippengerOpt(scalars, points, unsigned_mode), expect);
        EXPECT_EQ(msmPippengerOpt(scalars, points, signed_jac), expect);
        EXPECT_EQ(msmPippengerOpt(scalars, points, signed_ba), expect);
    }
}

TEST(Msm, BatchAffineCountsAffineAdds)
{
    Rng rng(83);
    const std::size_t n = 600; // above the default batch-affine floor
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    G1Affine base = randomG1(rng);
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng) + Fr::fromU64(2));
        points.push_back(i % 8 == 0 ? randomG1(rng) : base);
    }
    MsmStats stats;
    G1Jacobian got = msmPippenger(scalars, points, 0, &stats);
    EXPECT_EQ(got, msmNaive(scalars, points));
    EXPECT_GT(stats.affineAdds, 0u);
    EXPECT_GT(stats.batchInversions, 0u);
    EXPECT_EQ(stats.denseScalars, n);
}

TEST(Msm, BatchMatchesIndependentColumns)
{
    Rng rng(84);
    const std::size_t n = 320;
    std::vector<G1Affine> points;
    G1Affine base = randomG1(rng);
    for (std::size_t i = 0; i < n; ++i)
        points.push_back(i % 16 == 0 ? randomG1(rng) : base);
    points[7] = G1Affine{}; // identity point among the inputs

    // Column shapes: dense, sparse 0/1-heavy (selector-like), all-zero.
    std::vector<std::vector<Fr>> cols(3, std::vector<Fr>(n));
    for (std::size_t i = 0; i < n; ++i) {
        cols[0][i] = Fr::random(rng);
        double u = rng.nextDouble();
        cols[1][i] = u < 0.5 ? Fr::zero() : u < 0.85 ? Fr::one()
                                                     : Fr::random(rng);
        cols[2][i] = Fr::zero();
    }
    std::vector<std::span<const Fr>> spans(cols.begin(), cols.end());

    for (const MsmOptions &opts :
         {MsmOptions{}, MsmOptions{.batchAffineMinPoints = 0},
          MsmOptions{.signedDigits = false, .batchAffine = false}}) {
        auto batch = msmBatch(spans, points, opts);
        ASSERT_EQ(batch.size(), cols.size());
        for (std::size_t j = 0; j < cols.size(); ++j) {
            G1Jacobian solo = msmPippengerOpt(cols[j], points, opts);
            // Bit-identical, not just equal as curve points: a batch run
            // must replay each column's exact serial operation sequence.
            EXPECT_EQ(batch[j].X, solo.X) << "col " << j;
            EXPECT_EQ(batch[j].Y, solo.Y) << "col " << j;
            EXPECT_EQ(batch[j].Z, solo.Z) << "col " << j;
        }
    }
}

TEST(Msm, BatchSparseColumnKeepsSoloPath)
{
    // A sparse column batched alongside dense ones must take the same
    // bucket path (Jacobian, below the batch-affine floor) its solo run
    // takes — the per-column gate, not the union of dense indices,
    // decides — so results stay bit-identical to independent runs even
    // when the batch as a whole is large.
    Rng rng(87);
    const std::size_t n = 700; // dense cols above the default floor of 512
    std::vector<G1Affine> points;
    G1Affine base = randomG1(rng);
    for (std::size_t i = 0; i < n; ++i)
        points.push_back(i % 16 == 0 ? randomG1(rng) : base);

    std::vector<std::vector<Fr>> cols(3, std::vector<Fr>(n));
    for (std::size_t i = 0; i < n; ++i) {
        cols[0][i] = Fr::random(rng);
        cols[1][i] = Fr::random(rng);
        // ~40 dense entries: far below the floor on its own.
        cols[2][i] = i % 16 == 3 ? Fr::random(rng) : Fr::zero();
    }
    std::vector<std::span<const Fr>> spans(cols.begin(), cols.end());
    auto batch = msmBatch(spans, points);
    MsmStats stats;
    msmBatch(spans, points, MsmOptions{}, &stats);
    EXPECT_GT(stats.affineAdds, 0u); // dense columns did use batch-affine
    for (std::size_t j = 0; j < cols.size(); ++j) {
        G1Jacobian solo = msmPippenger(cols[j], points);
        EXPECT_EQ(batch[j].X, solo.X) << "col " << j;
        EXPECT_EQ(batch[j].Y, solo.Y) << "col " << j;
        EXPECT_EQ(batch[j].Z, solo.Z) << "col " << j;
    }
}

TEST(Msm, BatchEdgeCases)
{
    Rng rng(85);
    // k = 0.
    EXPECT_TRUE(msmBatch({}, {}).empty());
    // n = 0.
    std::vector<Fr> empty_col;
    std::vector<std::span<const Fr>> cols = {empty_col};
    EXPECT_TRUE(msmBatch(cols, {})[0].isIdentity());
    // n = 1.
    std::vector<Fr> one_col = {Fr::random(rng)};
    std::vector<G1Affine> one_point = {randomG1(rng)};
    cols = {one_col};
    EXPECT_EQ(msmBatch(cols, one_point)[0], msmNaive(one_col, one_point));
    // All-identity points, forced batched-affine.
    std::vector<Fr> scalars;
    std::vector<G1Affine> inf_points(40, G1Affine{});
    for (int i = 0; i < 40; ++i)
        scalars.push_back(Fr::random(rng));
    cols = {scalars};
    EXPECT_TRUE(
        msmBatch(cols, inf_points, MsmOptions{.batchAffineMinPoints = 0})[0]
            .isIdentity());
}

TEST(Msm, ParallelForwardsStats)
{
    Rng rng(86);
    const std::size_t n = 256;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng));
        points.push_back(randomG1(rng));
    }
    MsmStats direct, via_parallel;
    msmPippenger(scalars, points, 0, &direct);
    msmPippengerParallel(scalars, points, zkphire::rt::Config{.threads = 3},
                         0, &via_parallel);
    // The parallel wrapper must forward its stats sink (it used to drop
    // it, undercounting the prover's MSM work).
    EXPECT_EQ(via_parallel.pointAdds, direct.pointAdds);
    EXPECT_EQ(via_parallel.pointDoubles, direct.pointDoubles);
    EXPECT_EQ(via_parallel.affineAdds, direct.affineAdds);
    EXPECT_EQ(via_parallel.denseScalars, direct.denseScalars);
    EXPECT_GT(via_parallel.pointAdds, 0u);
}

TEST(Msm, ParallelMatchesSerial)
{
    Rng rng(74);
    const std::size_t n = 512;
    std::vector<Fr> scalars;
    std::vector<G1Affine> points;
    G1Affine base = randomG1(rng);
    for (std::size_t i = 0; i < n; ++i) {
        scalars.push_back(Fr::random(rng));
        points.push_back(i % 16 == 0 ? randomG1(rng) : base);
    }
    G1Jacobian serial = msmPippenger(scalars, points);
    using zkphire::rt::Config;
    EXPECT_EQ(msmPippengerParallel(scalars, points, Config{.threads = 4}),
              serial);
    EXPECT_EQ(msmPippengerParallel(scalars, points, Config{.threads = 1}),
              serial);
    EXPECT_EQ(msmPippengerParallel(scalars, points, Config{.threads = 24}),
              serial);
}
