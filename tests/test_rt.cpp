/**
 * @file
 * Unit tests for the zkphire::rt chunked thread pool and the parallelFor /
 * parallelReduce primitives: range edge cases, exception propagation, nested
 * regions, thread-count resolution (ZKPHIRE_THREADS), and deterministic
 * chunk-ordered reduction.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "rt/parallel.hpp"
#include "rt/thread_pool.hpp"

using namespace zkphire;

TEST(ThreadPool, DefaultThreadsRespectsEnv)
{
    // Restore the caller's setting afterwards so the rest of this binary
    // (and the CI leg that runs ctest under ZKPHIRE_THREADS=4) still sizes
    // the lazily-created global pool from it.
    const char *prev = std::getenv("ZKPHIRE_THREADS");
    std::string saved = prev ? prev : "";

    ASSERT_EQ(setenv("ZKPHIRE_THREADS", "3", 1), 0);
    EXPECT_EQ(rt::ThreadPool::defaultThreads(), 3u);
    ASSERT_EQ(setenv("ZKPHIRE_THREADS", "1", 1), 0);
    EXPECT_EQ(rt::ThreadPool::defaultThreads(), 1u);
    // Values above the cap clamp to 256.
    ASSERT_EQ(setenv("ZKPHIRE_THREADS", "100000", 1), 0);
    EXPECT_EQ(rt::ThreadPool::defaultThreads(), 256u);

    // Garbage / non-positive values fall back to hardware concurrency
    // (which itself falls back to 1 when unknown — i.e. serial).
    unsigned hw = std::thread::hardware_concurrency();
    unsigned fallback = hw == 0 ? 1u : hw;
    ASSERT_EQ(setenv("ZKPHIRE_THREADS", "banana", 1), 0);
    EXPECT_EQ(rt::ThreadPool::defaultThreads(), fallback);
    ASSERT_EQ(setenv("ZKPHIRE_THREADS", "-4", 1), 0);
    EXPECT_EQ(rt::ThreadPool::defaultThreads(), fallback);
    ASSERT_EQ(unsetenv("ZKPHIRE_THREADS"), 0);
    EXPECT_EQ(rt::ThreadPool::defaultThreads(), fallback);

    if (prev) {
        ASSERT_EQ(setenv("ZKPHIRE_THREADS", saved.c_str(), 1), 0);
    }
}

TEST(ThreadPool, SingleThreadPoolRunsInlineWithNoWorkers)
{
    // The ZKPHIRE_THREADS=1 path: a pool of one spawns no workers and
    // executes every chunk on the calling thread.
    rt::ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::vector<int> hits(100, 0);
    std::thread::id caller = std::this_thread::get_id();
    bool all_on_caller = true;
    pool.forChunks(0, 100, 7, [&](std::size_t b, std::size_t e, std::size_t) {
        if (std::this_thread::get_id() != caller)
            all_on_caller = false;
        for (std::size_t i = b; i < e; ++i)
            ++hits[i];
    });
    EXPECT_TRUE(all_on_caller);
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EmptyRangeDoesNothing)
{
    std::atomic<int> calls{0};
    rt::parallelFor(0, 0, [&](std::size_t) { ++calls; });
    rt::parallelFor(5, 5, [&](std::size_t) { ++calls; });
    rt::parallelFor(7, 3, [&](std::size_t) { ++calls; }); // end < begin
    EXPECT_EQ(calls.load(), 0);

    int acc = rt::parallelReduce<int>(
        4, 4, 42, [](std::size_t, std::size_t) { return 0; },
        [](int a, int b) { return a + b; });
    EXPECT_EQ(acc, 42); // identity untouched
}

TEST(ThreadPool, SingleElementRange)
{
    std::atomic<int> calls{0};
    std::size_t seen = ~std::size_t(0);
    rt::parallelFor(9, 10, [&](std::size_t i) {
        ++calls;
        seen = i;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen, 9u);
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce)
{
    const std::size_t n = 100000;
    std::vector<std::atomic<int>> hits(n);
    rt::ThreadPool pool(4);
    pool.forChunks(0, n, 1024, [&](std::size_t b, std::size_t e, std::size_t) {
        for (std::size_t i = b; i < e; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ReduceMatchesSerialSum)
{
    const std::size_t n = 50000;
    long expect = long(n) * long(n - 1) / 2;
    long got = rt::parallelReduce<long>(
        0, n, 0L,
        [](std::size_t b, std::size_t e) {
            long s = 0;
            for (std::size_t i = b; i < e; ++i)
                s += long(i);
            return s;
        },
        [](long a, long b) { return a + b; });
    EXPECT_EQ(got, expect);
}

TEST(ThreadPool, ReduceCombinesInChunkOrder)
{
    // A non-commutative combine (string concatenation) exposes the order in
    // which chunk accumulators are folded: it must be ascending chunk order
    // regardless of which worker finished first.
    const std::size_t n = 64;
    std::string expect;
    for (std::size_t i = 0; i < n; ++i)
        expect += std::to_string(i) + ",";
    for (int rep = 0; rep < 20; ++rep) {
        std::string got = rt::parallelReduce<std::string>(
            0, n, std::string(),
            [](std::size_t b, std::size_t e) {
                std::string s;
                for (std::size_t i = b; i < e; ++i)
                    s += std::to_string(i) + ",";
                return s;
            },
            [](std::string a, std::string b) { return a + b; },
            /*grain=*/3);
        EXPECT_EQ(got, expect);
    }
}

TEST(ThreadPool, ExceptionsPropagateToCaller)
{
    rt::ThreadPool pool(4);
    EXPECT_THROW(
        pool.forChunks(0, 1000, 10,
                       [&](std::size_t b, std::size_t, std::size_t) {
                           if (b >= 500)
                               throw std::runtime_error("chunk failed");
                       }),
        std::runtime_error);

    // The pool survives a throwing job and runs subsequent jobs normally.
    std::atomic<std::size_t> visited{0};
    pool.forChunks(0, 1000, 10, [&](std::size_t b, std::size_t e, std::size_t) {
        visited.fetch_add(e - b, std::memory_order_relaxed);
    });
    EXPECT_EQ(visited.load(), 1000u);
}

TEST(ThreadPool, ExceptionsPropagateThroughParallelFor)
{
    EXPECT_THROW(rt::parallelFor(0, 4096,
                                 [&](std::size_t i) {
                                     if (i == 1234)
                                         throw std::logic_error("boom");
                                 }),
                 std::logic_error);
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    const std::size_t outer = 16, inner = 1000;
    std::vector<std::atomic<int>> hits(outer * inner);
    rt::parallelFor(
        0, outer,
        [&](std::size_t o) {
            // Nested region: must execute inline without deadlocking.
            rt::parallelFor(0, inner, [&](std::size_t i) {
                hits[o * inner + i].fetch_add(1, std::memory_order_relaxed);
            });
        },
        /*grain=*/1);
    for (std::size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ConcurrentExternalCallersSerializeSafely)
{
    // Two non-pool threads using the global pool at once: regions must
    // serialize internally and both complete correctly.
    auto work = [](std::size_t n) {
        return rt::parallelReduce<std::size_t>(
            0, n, std::size_t(0),
            [](std::size_t b, std::size_t e) {
                std::size_t s = 0;
                for (std::size_t i = b; i < e; ++i)
                    s += i;
                return s;
            },
            [](std::size_t a, std::size_t b) { return a + b; });
    };
    std::size_t r1 = 0, r2 = 0;
    std::thread t1([&] { r1 = work(30000); });
    std::thread t2([&] { r2 = work(40000); });
    t1.join();
    t2.join();
    EXPECT_EQ(r1, std::size_t(30000) * 29999 / 2);
    EXPECT_EQ(r2, std::size_t(40000) * 39999 / 2);
}

TEST(ThreadPool, ScopedThreadsOverridesAndRestores)
{
    unsigned base = rt::currentThreads();
    {
        rt::ScopedThreads s(1);
        EXPECT_EQ(rt::currentThreads(), 1u);
        {
            rt::ScopedThreads s2(5);
            EXPECT_EQ(rt::currentThreads(), 5u);
        }
        EXPECT_EQ(rt::currentThreads(), 1u);
    }
    EXPECT_EQ(rt::currentThreads(), base);
    // 0 = no override: falls through to the pool size.
    rt::ScopedThreads s0(0);
    EXPECT_EQ(rt::currentThreads(), rt::ThreadPool::global().numThreads());
}

TEST(ThreadPool, ScopedConfigAppliesAllFieldsAndRestores)
{
    unsigned base = rt::currentThreads();
    rt::ThreadPool private_pool(2);
    {
        rt::ScopedConfig cfg(
            rt::Config{.threads = 3, .minGrain = 512, .pool = &private_pool});
        EXPECT_EQ(rt::currentThreads(), 3u);
        EXPECT_EQ(&rt::currentPool(), &private_pool);
        // The floor propagates into auto-grain decisions.
        EXPECT_GE(rt::suggestedGrain(100), 512u);
        {
            // Default nested config inherits everything.
            rt::ScopedConfig inner((rt::Config{}));
            EXPECT_EQ(rt::currentThreads(), 3u);
            EXPECT_EQ(&rt::currentPool(), &private_pool);
        }
    }
    EXPECT_EQ(rt::currentThreads(), base);
    EXPECT_EQ(&rt::currentPool(), &rt::ThreadPool::global());
    EXPECT_LT(rt::suggestedGrain(100), 512u);
}

TEST(ThreadPool, ScopedConfigPoolOverrideRunsRegions)
{
    // parallelFor through a private pool computes the same result.
    rt::ThreadPool private_pool(3);
    rt::ScopedConfig cfg(rt::Config{.pool = &private_pool});
    std::atomic<std::size_t> sum{0};
    rt::parallelFor(0, 10000, [&](std::size_t i) { sum += i; }, 64);
    EXPECT_EQ(sum.load(), std::size_t(10000) * 9999 / 2);
}

TEST(ThreadPool, ConfigDefaultsResolveThreads)
{
    rt::Config cfg = rt::Config::defaults();
    EXPECT_EQ(cfg.threads, rt::ThreadPool::defaultThreads());
    EXPECT_EQ(cfg.minGrain, 0u);
    EXPECT_EQ(cfg.pool, nullptr);
}

TEST(ThreadPool, GrainClampsFinalChunk)
{
    // 10 indices, grain 4 -> chunks [0,4) [4,8) [8,10).
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::mutex mu;
    rt::ThreadPool pool(2);
    pool.forChunks(0, 10, 4, [&](std::size_t b, std::size_t e, std::size_t c) {
        std::lock_guard<std::mutex> lk(mu);
        chunks.emplace_back(c, e - b);
        EXPECT_EQ(b, c * 4);
    });
    ASSERT_EQ(chunks.size(), 3u);
    std::sort(chunks.begin(), chunks.end());
    EXPECT_EQ(chunks[0].second, 4u);
    EXPECT_EQ(chunks[1].second, 4u);
    EXPECT_EQ(chunks[2].second, 2u);
}
