/**
 * @file
 * Serial-vs-parallel equivalence property tests: every kernel the zkphire::rt
 * pool parallelizes (SumCheck rounds, MLE folds, batch inversion, Pippenger
 * MSM) must produce bit-identical field/curve outputs at 1, 2, and N threads.
 * Thread counts are pinned per run with rt::ScopedThreads / the kernels'
 * explicit `threads` parameters, so the tests are independent of
 * ZKPHIRE_THREADS and of the host's core count.
 */
#include <gtest/gtest.h>

#include <vector>

#include "ec/msm.hpp"
#include "ff/batch_inverse.hpp"
#include "gates/gate_library.hpp"
#include "hash/transcript.hpp"
#include "poly/mle.hpp"
#include "poly/virtual_poly.hpp"
#include "rt/parallel.hpp"
#include "sumcheck/prover.hpp"

using namespace zkphire;
using ff::Fr;
using ff::Rng;

namespace {

constexpr unsigned kThreadCounts[] = {2, 4, 7};

void
expectProofsIdentical(const sumcheck::ProverOutput &a,
                      const sumcheck::ProverOutput &b)
{
    EXPECT_EQ(a.proof.claimedSum, b.proof.claimedSum);
    ASSERT_EQ(a.proof.roundEvals.size(), b.proof.roundEvals.size());
    for (std::size_t r = 0; r < a.proof.roundEvals.size(); ++r) {
        ASSERT_EQ(a.proof.roundEvals[r].size(), b.proof.roundEvals[r].size());
        for (std::size_t e = 0; e < a.proof.roundEvals[r].size(); ++e)
            EXPECT_EQ(a.proof.roundEvals[r][e], b.proof.roundEvals[r][e])
                << "round " << r << " eval " << e;
    }
    ASSERT_EQ(a.proof.finalSlotEvals.size(), b.proof.finalSlotEvals.size());
    for (std::size_t s = 0; s < a.proof.finalSlotEvals.size(); ++s)
        EXPECT_EQ(a.proof.finalSlotEvals[s], b.proof.finalSlotEvals[s]);
    ASSERT_EQ(a.challenges.size(), b.challenges.size());
    for (std::size_t r = 0; r < a.challenges.size(); ++r)
        EXPECT_EQ(a.challenges[r], b.challenges[r]);
}

} // namespace

TEST(RtEquivalence, SumcheckProofTranscriptIdenticalAcrossThreads)
{
    // Randomized rounds: several gates and sizes, all compared to the
    // 1-thread (serial) proof. Identical round evals force identical
    // Fiat-Shamir challenges, i.e. the whole transcript matches.
    for (int gate_id : {1, 20, 22}) {
        for (unsigned mu : {5u, 11u}) {
            Rng rng(100 + unsigned(gate_id) + mu);
            gates::Gate gate = gates::tableIGate(gate_id);
            auto tables = gate.randomTables(mu, rng);

            hash::Transcript tr_serial("rt-eq");
            auto serial =
                sumcheck::prove(poly::VirtualPoly(gate.expr, tables),
                                tr_serial, rt::Config{.threads = 1});

            for (unsigned threads : kThreadCounts) {
                hash::Transcript tr_par("rt-eq");
                auto par = sumcheck::prove(
                    poly::VirtualPoly(gate.expr, tables), tr_par,
                    rt::Config{.threads = threads});
                expectProofsIdentical(serial, par);
            }
        }
    }
}

TEST(RtEquivalence, MleFoldIdenticalAcrossThreads)
{
    Rng rng(7);
    const unsigned mu = 12; // large enough to cross the parallel threshold
    poly::Mle m = poly::Mle::random(mu, rng);

    for (int round = 0; round < 3; ++round) {
        Fr r = Fr::random(rng);
        poly::Mle serial = m;
        {
            rt::ScopedThreads one(1);
            serial.fixFirstVarInPlace(r);
        }
        for (unsigned threads : kThreadCounts) {
            poly::Mle par = m;
            {
                rt::ScopedThreads t(threads);
                par.fixFirstVarInPlace(r);
            }
            ASSERT_EQ(par.size(), serial.size());
            for (std::size_t i = 0; i < serial.size(); ++i)
                ASSERT_EQ(par[i], serial[i]) << "round " << round << " i=" << i;
        }
        m = serial; // fold further so later rounds test smaller tables too
    }
}

TEST(RtEquivalence, VirtualPolySumAndFoldIdenticalAcrossThreads)
{
    Rng rng(8);
    gates::Gate gate = gates::vanillaCoreGate();
    auto tables = gate.randomTables(11, rng);
    Fr r = Fr::random(rng);

    poly::VirtualPoly serial_vp(gate.expr, tables);
    Fr serial_sum;
    {
        rt::ScopedThreads one(1);
        serial_sum = serial_vp.sumOverHypercube();
        serial_vp.fixFirstVarInPlace(r);
    }
    for (unsigned threads : kThreadCounts) {
        poly::VirtualPoly par_vp(gate.expr, tables);
        rt::ScopedThreads t(threads);
        EXPECT_EQ(par_vp.sumOverHypercube(), serial_sum);
        par_vp.fixFirstVarInPlace(r);
        for (std::size_t s = 0; s < par_vp.numSlots(); ++s) {
            const poly::Mle &a = par_vp.table(poly::SlotId(s));
            const poly::Mle &b = serial_vp.table(poly::SlotId(s));
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t i = 0; i < a.size(); ++i)
                ASSERT_EQ(a[i], b[i]) << "slot " << s << " i=" << i;
        }
    }
}

TEST(RtEquivalence, BatchInverseIdenticalAcrossThreads)
{
    Rng rng(9);
    // Cross the parallel threshold (2048) and use a ragged size so the last
    // chunk is short.
    const std::size_t n = 5000;
    std::vector<Fr> xs;
    xs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        Fr x = Fr::random(rng);
        while (x.isZero())
            x = Fr::random(rng);
        xs.push_back(x);
    }

    std::vector<Fr> serial = xs;
    {
        rt::ScopedThreads one(1);
        ff::batchInverseInPlace(std::span<Fr>(serial));
    }
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_TRUE((serial[i] * xs[i]).isOne()) << "serial inverse wrong";

    for (unsigned threads : kThreadCounts) {
        std::vector<Fr> par = xs;
        {
            rt::ScopedThreads t(threads);
            ff::batchInverseInPlace(std::span<Fr>(par));
        }
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(par[i], serial[i]) << "i=" << i;
    }
}

TEST(RtEquivalence, MsmPippengerBitIdenticalAcrossThreads)
{
    Rng rng(10);
    const std::size_t n = 1024;
    std::vector<Fr> scalars;
    std::vector<ec::G1Affine> points;
    for (std::size_t i = 0; i < n; ++i) {
        // Mix of zero / one / dense scalars exercises the sparse fast path.
        if (i % 11 == 0)
            scalars.push_back(Fr::zero());
        else if (i % 7 == 0)
            scalars.push_back(Fr::one());
        else
            scalars.push_back(Fr::random(rng));
        points.push_back(ec::randomG1(rng));
    }

    ec::G1Jacobian serial =
        ec::msmPippengerParallel(scalars, points, rt::Config{.threads = 1});
    for (unsigned threads : kThreadCounts) {
        ec::G1Jacobian par = ec::msmPippengerParallel(
            scalars, points, rt::Config{.threads = threads});
        // Stronger than curve-point equality: the window fold replays the
        // serial operation order, so raw Jacobian coordinates must match.
        EXPECT_EQ(par.X, serial.X);
        EXPECT_EQ(par.Y, serial.Y);
        EXPECT_EQ(par.Z, serial.Z);
    }

    // Stats must also be independent of the thread count.
    ec::MsmStats s1, s4;
    {
        rt::ScopedThreads one(1);
        ec::msmPippenger(scalars, points, 0, &s1);
    }
    {
        rt::ScopedThreads four(4);
        ec::msmPippenger(scalars, points, 0, &s4);
    }
    EXPECT_EQ(s1.pointAdds, s4.pointAdds);
    EXPECT_EQ(s1.pointDoubles, s4.pointDoubles);
    EXPECT_EQ(s1.trivialScalars, s4.trivialScalars);
    EXPECT_EQ(s1.denseScalars, s4.denseScalars);
}

TEST(RtEquivalence, EqTableIdenticalAcrossThreads)
{
    Rng rng(11);
    std::vector<Fr> point;
    for (int i = 0; i < 13; ++i)
        point.push_back(Fr::random(rng));

    poly::Mle serial = [&] {
        rt::ScopedThreads one(1);
        return poly::Mle::eqTable(point);
    }();
    for (unsigned threads : kThreadCounts) {
        rt::ScopedThreads t(threads);
        poly::Mle par = poly::Mle::eqTable(point);
        ASSERT_EQ(par.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            ASSERT_EQ(par[i], serial[i]) << "i=" << i;
    }
}
