/**
 * @file
 * Tests for MLE tables, eq polynomials, gate expressions, and the symbolic
 * expansion utility.
 */
#include <gtest/gtest.h>

#include "poly/gate_expr.hpp"
#include "poly/mle.hpp"
#include "poly/sym_poly.hpp"
#include "poly/virtual_poly.hpp"

using namespace zkphire::poly;
using zkphire::ff::Fr;
using zkphire::ff::Rng;

TEST(Mle, ConstructionAndIndexing)
{
    Mle m(3);
    EXPECT_EQ(m.numVars(), 3u);
    EXPECT_EQ(m.size(), 8u);
    m[5] = Fr::fromU64(99);
    EXPECT_EQ(m[5], Fr::fromU64(99));
    EXPECT_EQ(Mle::constant(2, Fr::fromU64(4)).sumOverHypercube(),
              Fr::fromU64(16));
}

TEST(Mle, EvaluateOnHypercubeVerticesMatchesTable)
{
    Rng rng(3);
    Mle m = Mle::random(4, rng);
    for (std::size_t idx = 0; idx < m.size(); ++idx) {
        std::vector<Fr> point(4);
        for (unsigned b = 0; b < 4; ++b)
            point[b] = (idx >> b) & 1 ? Fr::one() : Fr::zero();
        EXPECT_EQ(m.evaluate(point), m[idx]) << "index " << idx;
    }
}

TEST(Mle, FixFirstVarIsMultilinearInterpolation)
{
    Rng rng(4);
    Mle m = Mle::random(3, rng);
    Fr r = Fr::random(rng);
    Mle folded = m.fixFirstVar(r);
    EXPECT_EQ(folded.numVars(), 2u);
    for (std::size_t j = 0; j < folded.size(); ++j) {
        Fr lo = m[2 * j], hi = m[2 * j + 1];
        EXPECT_EQ(folded[j], lo + r * (hi - lo));
    }
    // Folding at 0/1 selects even/odd entries.
    Mle at0 = m.fixFirstVar(Fr::zero());
    Mle at1 = m.fixFirstVar(Fr::one());
    for (std::size_t j = 0; j < at0.size(); ++j) {
        EXPECT_EQ(at0[j], m[2 * j]);
        EXPECT_EQ(at1[j], m[2 * j + 1]);
    }
}

TEST(Mle, EvaluateAgreesWithIteratedFold)
{
    Rng rng(5);
    Mle m = Mle::random(5, rng);
    std::vector<Fr> pt;
    for (int i = 0; i < 5; ++i)
        pt.push_back(Fr::random(rng));
    Mle tmp = m;
    for (const Fr &r : pt)
        tmp.fixFirstVarInPlace(r);
    EXPECT_EQ(m.evaluate(pt), tmp[0]);
}

TEST(Mle, EqTableMatchesEqEval)
{
    Rng rng(6);
    std::vector<Fr> r{Fr::random(rng), Fr::random(rng), Fr::random(rng)};
    Mle eq = Mle::eqTable(r);
    EXPECT_EQ(eq.numVars(), 3u);
    for (std::size_t idx = 0; idx < eq.size(); ++idx) {
        std::vector<Fr> x(3);
        for (unsigned b = 0; b < 3; ++b)
            x[b] = (idx >> b) & 1 ? Fr::one() : Fr::zero();
        EXPECT_EQ(eq[idx], eqEval(x, r)) << "index " << idx;
    }
    // Sum of eq(x, r) over the hypercube is 1.
    EXPECT_EQ(eq.sumOverHypercube(), Fr::one());
    // eq evaluated at r itself vs the table's multilinear extension.
    EXPECT_EQ(eq.evaluate(r), eqEval(r, r));
}

TEST(Mle, SparsityMeasurement)
{
    Rng rng(7);
    Mle m = Mle::randomSparse(12, rng, 0.6, 0.3);
    SparsityStats s = m.sparsity();
    EXPECT_NEAR(s.fracZero, 0.6, 0.05);
    EXPECT_NEAR(s.fracOne, 0.3, 0.05);
    EXPECT_NEAR(s.fracDense(), 0.1, 0.05);
}

TEST(GateExpr, BuildAndEvaluate)
{
    GateExpr e("f");
    SlotId a = e.addSlot("a");
    SlotId b = e.addSlot("b");
    SlotId c = e.addSlot("c");
    e.addTerm({a, b});                       // a*b
    e.addTerm(Fr::fromI64(-1), {c});         // -c
    e.addTerm(Fr::fromU64(5), {a, a, a});    // 5a^3
    EXPECT_EQ(e.degree(), 3u);
    EXPECT_EQ(e.numTerms(), 3u);
    EXPECT_EQ(e.uniqueSlotsInTerm(2), 1u);
    std::vector<Fr> vals{Fr::fromU64(2), Fr::fromU64(3), Fr::fromU64(4)};
    // 2*3 - 4 + 5*8 = 42
    EXPECT_EQ(e.evaluate(vals), Fr::fromU64(42));
}

TEST(GateExpr, MultipliedBySlotRaisesDegree)
{
    GateExpr e("f");
    SlotId a = e.addSlot("a");
    e.addTerm({a});
    SlotId fr_slot = 0;
    GateExpr masked = e.multipliedBySlot("f_r", &fr_slot);
    EXPECT_EQ(masked.numSlots(), 2u);
    EXPECT_EQ(masked.degree(), 2u);
    EXPECT_EQ(fr_slot, 1u);
    std::vector<Fr> vals{Fr::fromU64(3), Fr::fromU64(7)};
    EXPECT_EQ(masked.evaluate(vals), Fr::fromU64(21));
}

TEST(GateExpr, MulsPerPoint)
{
    GateExpr e("f");
    SlotId a = e.addSlot("a");
    SlotId b = e.addSlot("b");
    e.addTerm({a, b, b});                 // 2 muls
    e.addTerm(Fr::fromU64(3), {a});       // 1 mul (coeff)
    e.addTerm({b});                       // 0 muls
    EXPECT_EQ(e.mulsPerPoint(), 3u);
}

TEST(SymPoly, SquareExpansion)
{
    GateExpr e("g");
    SlotId a = e.addSlot("a");
    SlotId b = e.addSlot("b");
    // (a - b)^2 = a^2 - 2ab + b^2 : 3 monomials.
    SymPoly p = (SymPoly::var(a) - SymPoly::var(b)).pow(2);
    EXPECT_EQ(p.numMonomials(), 3u);
    p.addTo(e);
    std::vector<Fr> vals{Fr::fromU64(7), Fr::fromU64(3)};
    EXPECT_EQ(e.evaluate(vals), Fr::fromU64(16));
}

TEST(SymPoly, CancellationDropsMonomials)
{
    GateExpr e("g");
    SlotId a = e.addSlot("a");
    // (a + 1)(a - 1) - a^2 = -1.
    SymPoly p = (SymPoly::var(a) + SymPoly::constant(1)) *
                    (SymPoly::var(a) - SymPoly::constant(1)) -
                SymPoly::var(a) * SymPoly::var(a);
    EXPECT_EQ(p.numMonomials(), 1u);
    p.addTo(e);
    std::vector<Fr> vals{Fr::fromU64(100)};
    EXPECT_EQ(e.evaluate(vals), Fr::fromI64(-1));
}

TEST(VirtualPoly, SumAndFoldConsistency)
{
    Rng rng(8);
    GateExpr e("f");
    SlotId a = e.addSlot("a");
    SlotId b = e.addSlot("b");
    e.addTerm({a, b});
    std::vector<Mle> tables{Mle::random(3, rng), Mle::random(3, rng)};
    Fr expect = Fr::zero();
    for (std::size_t i = 0; i < 8; ++i)
        expect += tables[0][i] * tables[1][i];
    VirtualPoly vp(e, tables);
    EXPECT_EQ(vp.sumOverHypercube(), expect);

    // Folding commutes with evaluation.
    Fr r = Fr::random(rng);
    std::vector<Fr> rest{Fr::random(rng), Fr::random(rng)};
    std::vector<Fr> full{r, rest[0], rest[1]};
    Fr direct = vp.evaluate(full);
    vp.fixFirstVarInPlace(r);
    EXPECT_EQ(vp.evaluate(rest), direct);
}
