/**
 * @file
 * SumCheck / ZeroCheck / grand-product / OpenCheck protocol tests:
 * honest-prover round trips, tamper rejection, and randomized property
 * sweeps over polynomial shapes.
 */
#include <gtest/gtest.h>

#include "gates/gate_library.hpp"
#include "poly/virtual_poly.hpp"
#include "sumcheck/grand_product.hpp"
#include "sumcheck/opencheck.hpp"
#include "sumcheck/prover.hpp"
#include "sumcheck/verifier.hpp"
#include "sumcheck/zerocheck.hpp"

using namespace zkphire;
using namespace zkphire::sumcheck;
using poly::GateExpr;
using poly::Mle;
using poly::SlotId;
using poly::VirtualPoly;
using ff::Fr;
using ff::Rng;

namespace {

/** Random composite polynomial with given shape. */
struct RandomInstance {
    GateExpr expr;
    std::vector<Mle> tables;
};

RandomInstance
randomInstance(Rng &rng, unsigned num_vars, unsigned num_slots,
               unsigned num_terms, unsigned max_term_degree)
{
    RandomInstance inst;
    inst.expr = GateExpr("random");
    for (unsigned s = 0; s < num_slots; ++s) {
        inst.expr.addSlot("s" + std::to_string(s));
        inst.tables.push_back(Mle::random(num_vars, rng));
    }
    for (unsigned t = 0; t < num_terms; ++t) {
        unsigned deg = 1 + unsigned(rng.nextBelow(max_term_degree));
        std::vector<SlotId> factors;
        for (unsigned f = 0; f < deg; ++f)
            factors.push_back(SlotId(rng.nextBelow(num_slots)));
        inst.expr.addTerm(Fr::random(rng), std::move(factors));
    }
    return inst;
}

} // namespace

TEST(Sumcheck, EvalUnivariate)
{
    // p(X) = 3X^2 + 2X + 1 from values at 0,1,2: p(0)=1, p(1)=6, p(2)=17.
    std::vector<Fr> evals{Fr::fromU64(1), Fr::fromU64(6), Fr::fromU64(17)};
    EXPECT_EQ(evalUnivariate(evals, Fr::fromU64(3)), Fr::fromU64(34));
    EXPECT_EQ(evalUnivariate(evals, Fr::fromU64(1)), Fr::fromU64(6));
    EXPECT_EQ(evalUnivariate(evals, Fr::zero()), Fr::fromU64(1));
    Rng rng(11);
    Fr r = Fr::random(rng);
    EXPECT_EQ(evalUnivariate(evals, r),
              Fr::fromU64(3) * r * r + r.dbl() + Fr::one());
}

TEST(Sumcheck, SingleProductRoundTrip)
{
    Rng rng(21);
    GateExpr e("abc");
    SlotId a = e.addSlot("a"), b = e.addSlot("b"), c = e.addSlot("c");
    e.addTerm({a, b, c});
    std::vector<Mle> tables{Mle::random(5, rng), Mle::random(5, rng),
                            Mle::random(5, rng)};
    VirtualPoly vp(e, tables);
    Fr expected_sum = vp.sumOverHypercube();

    hash::Transcript tp("sc-test");
    ProverOutput out = prove(VirtualPoly(e, tables), tp);
    EXPECT_EQ(out.proof.claimedSum, expected_sum);

    hash::Transcript tv("sc-test");
    auto res = verify(e, out.proof, 5, tv);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.challenges, out.challenges);

    // Claimed slot evals match actual evaluations at the challenge point.
    for (std::size_t s = 0; s < tables.size(); ++s)
        EXPECT_EQ(out.proof.finalSlotEvals[s],
                  tables[s].evaluate(res.challenges));
}

TEST(Sumcheck, MultiThreadedProverMatchesSingle)
{
    Rng rng(22);
    auto inst = randomInstance(rng, 11, 4, 5, 4);
    hash::Transcript t1("sc-mt"), t4("sc-mt");
    ProverOutput p1 = prove(VirtualPoly(inst.expr, inst.tables), t1,
                            rt::Config{.threads = 1});
    ProverOutput p4 = prove(VirtualPoly(inst.expr, inst.tables), t4,
                            rt::Config{.threads = 4});
    EXPECT_EQ(p1.proof.claimedSum, p4.proof.claimedSum);
    EXPECT_EQ(p1.proof.roundEvals, p4.proof.roundEvals);
    EXPECT_EQ(p1.proof.finalSlotEvals, p4.proof.finalSlotEvals);
}

TEST(Sumcheck, RejectsWrongClaim)
{
    Rng rng(23);
    auto inst = randomInstance(rng, 6, 3, 3, 3);
    hash::Transcript tp("sc");
    ProverOutput out = prove(VirtualPoly(inst.expr, inst.tables), tp);
    out.proof.claimedSum += Fr::one();
    hash::Transcript tv("sc");
    EXPECT_FALSE(verify(inst.expr, out.proof, 6, tv).ok);
}

TEST(Sumcheck, RejectsTamperedRound)
{
    Rng rng(24);
    auto inst = randomInstance(rng, 6, 3, 3, 3);
    hash::Transcript tp("sc");
    ProverOutput out = prove(VirtualPoly(inst.expr, inst.tables), tp);
    out.proof.roundEvals[3][1] += Fr::one();
    hash::Transcript tv("sc");
    EXPECT_FALSE(verify(inst.expr, out.proof, 6, tv).ok);
}

TEST(Sumcheck, RejectsTamperedFinalEvals)
{
    Rng rng(25);
    auto inst = randomInstance(rng, 6, 3, 3, 3);
    hash::Transcript tp("sc");
    ProverOutput out = prove(VirtualPoly(inst.expr, inst.tables), tp);
    out.proof.finalSlotEvals[0] += Fr::one();
    hash::Transcript tv("sc");
    EXPECT_FALSE(verify(inst.expr, out.proof, 6, tv).ok);
}

TEST(Sumcheck, ProofSizeAccounting)
{
    Rng rng(26);
    auto inst = randomInstance(rng, 8, 3, 2, 3);
    hash::Transcript tp("sc");
    ProverOutput out = prove(VirtualPoly(inst.expr, inst.tables), tp);
    std::size_t d = inst.expr.degree();
    EXPECT_EQ(out.proof.sizeBytes(), (1 + 8 * (d + 1) + 3) * 32);
}

class SumcheckShapes
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned, unsigned,
                                                 unsigned>>
{
};

TEST_P(SumcheckShapes, RoundTrip)
{
    auto [num_vars, num_slots, num_terms, max_deg] = GetParam();
    Rng rng(num_vars * 1000 + num_slots * 100 + num_terms * 10 + max_deg);
    auto inst = randomInstance(rng, num_vars, num_slots, num_terms, max_deg);
    VirtualPoly vp(inst.expr, inst.tables);
    Fr sum = vp.sumOverHypercube();

    hash::Transcript tp("shape");
    ProverOutput out = prove(VirtualPoly(inst.expr, inst.tables), tp);
    EXPECT_EQ(out.proof.claimedSum, sum);
    hash::Transcript tv("shape");
    auto res = verify(inst.expr, out.proof, num_vars, tv);
    EXPECT_TRUE(res.ok) << res.error;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SumcheckShapes,
    ::testing::Values(std::tuple{1u, 1u, 1u, 1u}, std::tuple{2u, 2u, 2u, 2u},
                      std::tuple{4u, 3u, 4u, 3u}, std::tuple{6u, 5u, 6u, 5u},
                      std::tuple{8u, 8u, 8u, 8u}, std::tuple{5u, 2u, 3u, 12u},
                      std::tuple{3u, 16u, 10u, 4u},
                      std::tuple{10u, 4u, 2u, 6u}));

TEST(ZeroCheck, AcceptsVanishingWitness)
{
    // Verifiable-ASICs gate with a satisfying assignment:
    // addition rows have b = -a, multiplication rows have a = 0.
    Rng rng(31);
    gates::Gate gate = gates::tableIGate(0);
    const unsigned mu = 6;
    std::vector<Mle> tables(4, Mle(mu));
    for (std::size_t i = 0; i < (1u << mu); ++i) {
        bool is_add = rng.nextBelow(2) == 0;
        Fr a = Fr::random(rng);
        tables[0][i] = is_add ? Fr::one() : Fr::zero(); // qadd
        tables[1][i] = is_add ? Fr::zero() : Fr::one(); // qmul
        tables[2][i] = is_add ? a : Fr::zero();         // a
        tables[3][i] = is_add ? a.neg() : Fr::random(rng); // b
    }
    hash::Transcript tp("zc");
    auto out = proveZero(gate.expr, tables, tp);
    hash::Transcript tv("zc");
    auto res = verifyZero(gate.expr, out.proof, mu, tv);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.challenges.size(), mu);
    EXPECT_EQ(res.slotEvals.size(), 4u);
    // Slot evals are true polynomial evaluations at the challenge point.
    for (int s = 0; s < 4; ++s)
        EXPECT_EQ(res.slotEvals[s], tables[s].evaluate(res.challenges));
}

TEST(ZeroCheck, RejectsTamperedProof)
{
    Rng rng(32);
    gates::Gate gate = gates::tableIGate(0);
    const unsigned mu = 4;
    std::vector<Mle> tables(4, Mle(mu));
    for (std::size_t i = 0; i < (1u << mu); ++i) {
        Fr a = Fr::random(rng);
        tables[0][i] = Fr::one();
        tables[1][i] = Fr::zero();
        tables[2][i] = a;
        tables[3][i] = a.neg();
    }
    hash::Transcript tp("zc");
    auto out = proveZero(gate.expr, tables, tp);
    out.proof.sc.roundEvals[1][0] += Fr::one();
    hash::Transcript tv("zc");
    EXPECT_FALSE(verifyZero(gate.expr, out.proof, mu, tv).ok);
}

TEST(GrandProduct, TreeStructure)
{
    Rng rng(41);
    const unsigned mu = 4;
    const std::size_t n = 1u << mu;
    // Random leaves with product forced to 1.
    std::vector<Fr> leaves(n);
    Fr prod = Fr::one();
    for (std::size_t i = 0; i + 1 < n; ++i) {
        leaves[i] = Fr::random(rng);
        prod *= leaves[i];
    }
    leaves[n - 1] = prod.inverse();
    Mle phi(leaves);

    Mle v = buildProductTree(phi);
    EXPECT_EQ(v.numVars(), mu + 1);
    Mle pi = extractPi(v), p1 = extractP1(v), p2 = extractP2(v);

    // Product relation holds pointwise: pi = p1 * p2.
    for (std::size_t x = 0; x < n; ++x)
        EXPECT_EQ(pi[x], p1[x] * p2[x]) << "x=" << x;
    // Leaves are the even entries.
    for (std::size_t x = 0; x < n; ++x)
        EXPECT_EQ(v[2 * x], phi[x]);
    // Root records the grand product (== 1 here).
    EXPECT_EQ(treeRootProduct(v), Fr::one());
    // The root product is exposed at the opening point (1,..,1,0).
    EXPECT_EQ(v.evaluate(rootProductPoint(mu)), Fr::one());
}

TEST(GrandProduct, PermCheckZeroCheckAccepts)
{
    // Full Table-I row 21 style check: random N_j, D_j; phi = prod N / prod D
    // normalized so the grand product is 1 by construction of a valid
    // permutation-like instance (enforced here by adjusting one D entry).
    Rng rng(42);
    const unsigned mu = 4;
    const std::size_t n = 1u << mu;
    const unsigned k = 3;
    std::vector<Mle> nj, dj;
    for (unsigned j = 0; j < k; ++j) {
        nj.push_back(Mle::random(mu, rng));
        dj.push_back(Mle::random(mu, rng));
    }
    // Force prod_x prod_j N = prod_x prod_j D by fixing D_0[n-1].
    Fr pn = Fr::one(), pd = Fr::one();
    for (std::size_t x = 0; x < n; ++x)
        for (unsigned j = 0; j < k; ++j) {
            pn *= nj[j][x];
            if (j != 0 || x != n - 1)
                pd *= dj[j][x];
        }
    dj[0][n - 1] = pn * pd.inverse();

    std::vector<Fr> phi_vals(n);
    for (std::size_t x = 0; x < n; ++x) {
        Fr num = Fr::one(), den = Fr::one();
        for (unsigned j = 0; j < k; ++j) {
            num *= nj[j][x];
            den *= dj[j][x];
        }
        phi_vals[x] = num * den.inverse();
    }
    Mle phi(phi_vals);
    Mle v = buildProductTree(phi);
    EXPECT_EQ(treeRootProduct(v), Fr::one());

    Fr alpha = Fr::fromU64(7);
    gates::Gate gate = gates::tableIGate(21, alpha);
    // Slot order in the gate: pi, p1, p2, phi, D1..D3, N1..N3, f_r.
    // verifyZero/proveZero add f_r themselves, so drop the last slot.
    poly::GateExpr expr("perm-core");
    std::vector<Mle> tables;
    auto pi_s = expr.addSlot("pi");
    auto p1_s = expr.addSlot("p1");
    auto p2_s = expr.addSlot("p2");
    auto phi_s = expr.addSlot("phi");
    std::vector<SlotId> d_s, n_s;
    for (unsigned j = 0; j < k; ++j)
        d_s.push_back(expr.addSlot("D" + std::to_string(j + 1)));
    for (unsigned j = 0; j < k; ++j)
        n_s.push_back(expr.addSlot("N" + std::to_string(j + 1)));
    expr.addTerm({pi_s});
    expr.addTerm(Fr::fromI64(-1), {p1_s, p2_s});
    expr.addTerm(alpha, {phi_s, d_s[0], d_s[1], d_s[2]});
    expr.addTerm(alpha.neg(), {n_s[0], n_s[1], n_s[2]});

    tables.push_back(extractPi(v));
    tables.push_back(extractP1(v));
    tables.push_back(extractP2(v));
    tables.push_back(phi);
    for (unsigned j = 0; j < k; ++j)
        tables.push_back(dj[j]);
    for (unsigned j = 0; j < k; ++j)
        tables.push_back(nj[j]);

    hash::Transcript tp("perm");
    auto out = proveZero(expr, tables, tp);
    hash::Transcript tv("perm");
    auto res = verifyZero(expr, out.proof, mu, tv);
    ASSERT_TRUE(res.ok) << res.error;
}

TEST(OpenCheck, BatchedClaimsRoundTrip)
{
    Rng rng(51);
    const unsigned mu = 5;
    std::vector<EvalClaim> claims;
    for (int i = 0; i < 6; ++i) {
        EvalClaim c;
        c.table = Mle::random(mu, rng);
        for (unsigned v = 0; v < mu; ++v)
            c.point.push_back(Fr::random(rng));
        c.value = c.table.evaluate(c.point);
        claims.push_back(std::move(c));
    }
    std::vector<EvalClaim> verifier_claims;
    for (const auto &c : claims) {
        EvalClaim vc;
        vc.point = c.point;
        vc.value = c.value;
        verifier_claims.push_back(std::move(vc));
    }

    hash::Transcript tp("oc");
    auto out = proveOpen(claims, tp);
    hash::Transcript tv("oc");
    auto res = verifyOpen(verifier_claims, out.proof, mu, tv);
    ASSERT_TRUE(res.ok) << res.error;
    EXPECT_EQ(res.polyEvals, out.polyEvals);
}

TEST(OpenCheck, RejectsWrongClaimedValue)
{
    Rng rng(52);
    const unsigned mu = 4;
    std::vector<EvalClaim> claims(2);
    for (auto &c : claims) {
        c.table = Mle::random(mu, rng);
        for (unsigned v = 0; v < mu; ++v)
            c.point.push_back(Fr::random(rng));
        c.value = c.table.evaluate(c.point);
    }
    claims[1].value += Fr::one(); // lie about one evaluation
    hash::Transcript tp("oc");
    auto out = proveOpen(claims, tp);
    hash::Transcript tv("oc");
    // Rebuild verifier claims with the same (lying) values; the SumCheck
    // claim no longer matches the actual hypercube sum, so a round fails.
    std::vector<EvalClaim> vc(2);
    for (int i = 0; i < 2; ++i) {
        vc[i].point = claims[i].point;
        vc[i].value = claims[i].value;
    }
    EXPECT_FALSE(verifyOpen(vc, out.proof, mu, tv).ok);
}
