/**
 * @file
 * Full-chip model tests: Table V area/power anchors, protocol scaling,
 * Masked-ZeroCheck behaviour, Jellyfish-vs-Vanilla advantage, DSE Pareto
 * properties, and baseline model sanity.
 */
#include <gtest/gtest.h>

#include "sim/baseline.hpp"
#include "sim/chip.hpp"
#include "sim/dse.hpp"
#include "sim/workloads.hpp"

using namespace zkphire;
using namespace zkphire::sim;

TEST(Chip, ExemplarMatchesTableV)
{
    ChipConfig cfg = ChipConfig::exemplar();
    AreaBreakdown a = cfg.areaBreakdown();
    // Paper Table V: total 294.32 mm^2; module-level within 10%.
    EXPECT_NEAR(a.total(), 294.32, 15.0);
    EXPECT_NEAR(a.msm, 105.69, 11.0);
    EXPECT_NEAR(a.forest, 48.18, 5.0);
    EXPECT_NEAR(a.sumcheck, 16.65, 2.0);
    EXPECT_NEAR(a.sram, 27.55, 4.0);
    EXPECT_NEAR(a.hbmPhy, 59.20, 0.1);

    PowerBreakdown p = cfg.powerBreakdown();
    EXPECT_NEAR(p.total(), 202.28, 10.0);
}

TEST(Chip, FixedPrimeSavesArea)
{
    ChipConfig fixed = ChipConfig::exemplar();
    ChipConfig arb = ChipConfig::exemplar();
    arb.setFixedPrime(false);
    // Paper §V: fixed primes save ~50% of multiplier area (~2x density).
    double fixed_compute = fixed.areaBreakdown().compute();
    double arb_compute = arb.areaBreakdown().compute();
    EXPECT_GT(arb_compute / fixed_compute, 1.5);
}

TEST(Chip, ProtocolScalesNearLinearly)
{
    ChipConfig cfg = ChipConfig::exemplar();
    double t19 = simulateProtocol(cfg, ProtocolWorkload::jellyfish(19))
                     .totalMs;
    double t22 = simulateProtocol(cfg, ProtocolWorkload::jellyfish(22))
                     .totalMs;
    EXPECT_GT(t22 / t19, 5.5);
    EXPECT_LT(t22 / t19, 9.0);
}

TEST(Chip, MaskingHidesGateZeroCheck)
{
    ChipConfig masked = ChipConfig::exemplar();
    ChipConfig unmasked = ChipConfig::exemplar();
    unmasked.maskZeroCheck = false;
    auto wl = ProtocolWorkload::jellyfish(20);
    auto m = simulateProtocol(masked, wl);
    auto u = simulateProtocol(unmasked, wl);
    EXPECT_LT(m.totalMs, u.totalMs);
    EXPECT_GT(m.maskedSavingMs, 0);
    EXPECT_EQ(u.maskedSavingMs, 0);
    // Saving is bounded by the gate ZeroCheck itself.
    EXPECT_LE(m.maskedSavingMs, m.steps.gateZeroCheck + 1e-9);
}

TEST(Chip, JellyfishBeatsVanillaAtIsoApplication)
{
    // Table VIII: a 2^24 Vanilla workload mapping to 2^19 Jellyfish gates
    // proves much faster despite the higher-degree polynomial.
    ChipConfig cfg = ChipConfig::exemplar();
    double vanilla =
        simulateProtocol(cfg, ProtocolWorkload::vanilla(24)).totalMs;
    double jelly =
        simulateProtocol(cfg, ProtocolWorkload::jellyfish(19)).totalMs;
    EXPECT_GT(vanilla / jelly, 10.0);
}

TEST(Chip, ZkSpeedBaselineRunsVanilla)
{
    ChipConfig zk = ChipConfig::exemplar();
    zk.zkSpeedBaseline = true;
    zk.maskZeroCheck = false;
    zk.setFixedPrime(false);
    auto run = simulateProtocol(zk, ProtocolWorkload::vanilla(20));
    EXPECT_GT(run.totalMs, 0);
    // zkSpeed (no update fusion) is slower than zkSpeed+ (with fusion).
    ChipConfig zk_base = zk;
    zk_base.zkSpeedPlusUpdates = false;
    auto base = simulateProtocol(zk_base, ProtocolWorkload::vanilla(20));
    EXPECT_GT(base.totalMs, run.totalMs);
}

TEST(Chip, ProofSizeSmallAndGrowsWithMu)
{
    double v24 = estimateProofBytes(GateSystem::Vanilla, 24);
    double j19 = estimateProofBytes(GateSystem::Jellyfish, 19);
    EXPECT_LT(v24, 32 * 1024);
    EXPECT_GT(v24, 2 * 1024);
    EXPECT_LT(j19, v24 * 2);
    EXPECT_GT(estimateProofBytes(GateSystem::Vanilla, 30), v24);
}

TEST(Chip, SpeedupOverCpuInPaperBand)
{
    // Table VII: geomean 1486x over 32-thread CPU at iso-CPU area. Our
    // model-vs-model speedups should land in the same order of magnitude.
    ChipConfig cfg = ChipConfig::exemplar();
    CpuModel cpu;
    cpu.threads = 32;
    double chip =
        simulateProtocol(cfg, ProtocolWorkload::jellyfish(19)).totalMs;
    double host = cpu.protocolMs(ProtocolWorkload::jellyfish(19));
    double speedup = host / chip;
    EXPECT_GT(speedup, 500.0);
    EXPECT_LT(speedup, 5000.0);
}

TEST(Baseline, CpuAnchorsWithinBand)
{
    // Table II anchors (4-thread): model within 30%.
    CpuModel cpu4;
    cpu4.threads = 4;
    PolyShape p22 = PolyShape::fromGate(gates::tableIGate(22));
    double ms = cpu4.sumcheckMs(p22, 24);
    EXPECT_NEAR(ms / 74226.0, 1.0, 0.3);
    PolyShape p1 = PolyShape::fromGate(gates::tableIGate(1));
    EXPECT_NEAR(cpu4.sumcheckMs(p1, 24) / 6770.0, 1.0, 0.3);
}

TEST(Baseline, CpuProtocolAnchorsWithinBand)
{
    CpuModel cpu32;
    for (const Workload &w : paperWorkloads()) {
        if (w.muJellyfish > 0 && w.cpuMsJellyfish > 0 &&
            w.muJellyfish >= 17) {
            double ms = cpu32.protocolMs(
                ProtocolWorkload::jellyfish(unsigned(w.muJellyfish)));
            EXPECT_NEAR(ms / w.cpuMsJellyfish, 1.0, 0.45) << w.name;
        }
    }
}

TEST(Baseline, GpuRestrictionAndAnchors)
{
    GpuModel gpu;
    EXPECT_TRUE(gpu.supports(PolyShape::fromGate(gates::tableIGate(1))));
    // Rows 21-24 exceed ICICLE's 8 unique-MLE limit.
    EXPECT_FALSE(gpu.supports(PolyShape::fromGate(gates::tableIGate(21))));
    EXPECT_FALSE(gpu.supports(PolyShape::fromGate(gates::tableIGate(22))));
    EXPECT_FALSE(gpu.supports(PolyShape::fromGate(gates::tableIGate(24))));
    double ms =
        gpu.sumcheckMs(PolyShape::fromGate(gates::tableIGate(1)), 24);
    EXPECT_NEAR(ms / 571.0, 1.0, 0.25);
}

TEST(Dse, ParetoFilterKeepsNonDominated)
{
    std::vector<DsePoint> pts(4);
    pts[0].runtimeMs = 10;
    pts[0].areaMm2 = 100;
    pts[1].runtimeMs = 20;
    pts[1].areaMm2 = 50;
    pts[2].runtimeMs = 15;
    pts[2].areaMm2 = 120; // dominated by pts[0]
    pts[3].runtimeMs = 5;
    pts[3].areaMm2 = 300;
    auto pareto = paretoFilter(pts);
    ASSERT_EQ(pareto.size(), 3u);
    EXPECT_EQ(pareto[0].runtimeMs, 5);
    EXPECT_EQ(pareto[1].runtimeMs, 10);
    EXPECT_EQ(pareto[2].runtimeMs, 20);
}

TEST(Dse, CoarseSweepProducesFrontiers)
{
    DseResult res = runDse(ProtocolWorkload::jellyfish(19),
                           DseGrid::coarse(), 8);
    EXPECT_GT(res.evaluatedPoints, 100u);
    EXPECT_FALSE(res.globalPareto.empty());
    // Frontier is sorted and strictly improving in area.
    for (std::size_t i = 1; i < res.globalPareto.size(); ++i) {
        EXPECT_GE(res.globalPareto[i].runtimeMs,
                  res.globalPareto[i - 1].runtimeMs);
        EXPECT_LT(res.globalPareto[i].areaMm2,
                  res.globalPareto[i - 1].areaMm2);
    }
    // Higher bandwidth tiers reach lower best-runtimes.
    double best_lo = res.perBandwidth.front().second.front().runtimeMs;
    double best_hi = res.perBandwidth.back().second.front().runtimeMs;
    EXPECT_LT(best_hi, best_lo);
}

TEST(Dse, SumcheckDesignPickRespectsAreaCap)
{
    std::vector<PolyShape> polys;
    for (int id : {0, 1, 2, 6, 20})
        polys.push_back(PolyShape::fromGate(gates::tableIGate(id)));
    SumcheckDseOptions opts;
    opts.numVars = 20;
    auto pick = pickSumcheckDesign(polys, 1024, opts);
    EXPECT_LE(pick.cfg.areaMm2(defaultTech()), opts.areaCapMm2);
    EXPECT_EQ(pick.runtimesMs.size(), polys.size());
    EXPECT_GT(pick.meanUtilization, 0.0);
}
