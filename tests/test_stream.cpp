/**
 * @file
 * Out-of-core streaming tests: the Mapped FrTable backend, chunk-local eq
 * tables, the chunk-streaming MSM accumulator and commit pipeline, the
 * fused sumcheck fold, arena reuse, and full-prover transcript
 * byte-identity with streaming forced on. Every streamed value must be
 * BIT-identical to its in-RAM oracle — the backend moves bytes around,
 * never changes them.
 */
#include <gtest/gtest.h>

#include "ec/msm.hpp"
#include "engine/context.hpp"
#include "hyperplonk/circuit.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/serialize.hpp"
#include "hyperplonk/verifier.hpp"
#include "poly/mle.hpp"
#include "poly/mle_store.hpp"
#include "rt/numa.hpp"
#include "rt/parallel.hpp"
#include "sumcheck/prover.hpp"

using namespace zkphire;
using ff::Fr;
using ff::Rng;
using poly::FrTable;
using poly::Mle;
using poly::StoreKind;

namespace {

const pcs::Srs &
sharedSrs()
{
    static Rng rng(0x57facade);
    static pcs::Srs srs = pcs::Srs::generate(12, rng);
    return srs;
}

/** Config forcing every table onto the Mapped backend with a given chunk. */
rt::Config
streamAll(std::size_t chunkElems)
{
    rt::Config cfg;
    cfg.streamThreshold = 1;
    cfg.streamChunk = chunkElems;
    return cfg;
}

/** Config disabling streaming entirely (the in-RAM oracle). */
rt::Config
ramOnly()
{
    rt::Config cfg;
    cfg.streamThreshold = SIZE_MAX;
    return cfg;
}

/** The chunk shapes every oracle comparison sweeps: two powers of two and
 *  an odd size that never divides a table evenly (exercises the tail). */
constexpr std::size_t kChunks[] = {std::size_t(1) << 10,
                                   std::size_t(1) << 14, 1000};

std::vector<Fr>
randomScalarsSparse(Rng &rng, std::size_t n)
{
    std::vector<Fr> s(n);
    for (auto &v : s) {
        double u = rng.nextDouble();
        if (u < 0.45)
            v = Fr::zero();
        else if (u < 0.9)
            v = Fr::one();
        else
            v = Fr::random(rng);
    }
    return s;
}

} // namespace

TEST(FrTable, MappedBackendHoldsValues)
{
    const std::size_t n = 5000;
    FrTable t = FrTable::make(n, StoreKind::Mapped);
    ASSERT_EQ(t.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_TRUE(t[i].isZero()) << i;
    Rng rng(1);
    std::vector<Fr> ref(n);
    for (std::size_t i = 0; i < n; ++i)
        t[i] = ref[i] = Fr::random(rng);
    // Advice/release hooks must never change the data: pages come back
    // from the backing file on the next access.
    t.adviseSequential();
    t.releaseWindow(0, n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(t[i], ref[i]) << i;
}

TEST(FrTable, ResizePreservesPrefixAndZeroFillsGrowth)
{
    for (StoreKind kind : {StoreKind::Ram, StoreKind::Mapped}) {
        FrTable t = FrTable::make(100, kind);
        Rng rng(2);
        for (std::size_t i = 0; i < 100; ++i)
            t[i] = Fr::random(rng);
        FrTable ref = t; // deep copy
        t.resize(37);
        EXPECT_EQ(t.size(), 37u);
        for (std::size_t i = 0; i < 37; ++i)
            EXPECT_EQ(t[i], ref[i]);
        t.resize(9000); // past original capacity
        EXPECT_EQ(t.size(), 9000u);
        for (std::size_t i = 0; i < 37; ++i)
            EXPECT_EQ(t[i], ref[i]);
        for (std::size_t i = 37; i < 9000; ++i)
            EXPECT_TRUE(t[i].isZero()) << i;
    }
}

TEST(FrTable, PolicyRoutesByThreshold)
{
    {
        rt::ScopedConfig scope(streamAll(1u << 10));
        EXPECT_TRUE(FrTable::make(64).isMapped());
        Mle m(8);
        EXPECT_TRUE(m.isMapped());
    }
    {
        rt::ScopedConfig scope(ramOnly());
        EXPECT_FALSE(FrTable::make(std::size_t(1) << 16).isMapped());
    }
}

TEST(FrTable, CopyAndEqualityCrossBackend)
{
    Rng rng(3);
    std::vector<Fr> vals(777);
    for (auto &v : vals)
        v = Fr::random(rng);
    FrTable ram = FrTable::adopt(vals);
    FrTable mapped = FrTable::make(vals.size(), StoreKind::Mapped);
    mapped.assign(vals);
    EXPECT_TRUE(ram == mapped);
    mapped[5] += Fr::one();
    EXPECT_FALSE(ram == mapped);
}

TEST(Stream, EqTableChunkedMatchesDoublingOracle)
{
    Rng rng(4);
    const unsigned mu = 12;
    std::vector<Fr> r(mu);
    for (auto &v : r)
        v = Fr::random(rng);

    Mle oracle = [&] {
        rt::ScopedConfig scope(ramOnly()); // one chunk: pure doubling build
        return Mle::eqTable(r);
    }();
    for (std::size_t chunk : kChunks) {
        rt::ScopedConfig scope(streamAll(chunk));
        Mle chunked = Mle::eqTable(r);
        EXPECT_TRUE(chunked.store() == oracle.store()) << "chunk " << chunk;
    }
}

TEST(Stream, MsmAccumulatorMatchesBatchMsm)
{
    Rng rng(5);
    const std::size_t n = 2600; // odd vs every chunk size below
    const std::size_t k = 3;
    std::vector<ec::G1Affine> points(n);
    for (auto &p : points)
        p = ec::randomG1(rng);
    std::vector<std::vector<Fr>> cols(k);
    cols[0] = randomScalarsSparse(rng, n); // trivial-heavy column
    for (std::size_t j = 1; j < k; ++j) {
        cols[j].resize(n);
        for (auto &v : cols[j])
            v = Fr::random(rng);
    }
    std::vector<std::span<const Fr>> spans(k);
    for (std::size_t j = 0; j < k; ++j)
        spans[j] = cols[j];
    std::vector<ec::G1Jacobian> ref =
        ec::msmBatch(spans, points, ec::currentMsmOptions());

    for (std::size_t chunk : {std::size_t(300), std::size_t(1) << 10}) {
        ec::MsmAccumulator acc(n, k, ec::currentMsmOptions(), nullptr,
                               chunk);
        std::vector<std::span<const Fr>> cs(k);
        for (std::size_t b = 0; b < n; b += chunk) {
            const std::size_t e = std::min(n, b + chunk);
            for (std::size_t j = 0; j < k; ++j)
                cs[j] = spans[j].subspan(b, e - b);
            acc.add(cs, std::span<const ec::G1Affine>(points).subspan(
                            b, e - b));
        }
        std::vector<ec::G1Jacobian> got = acc.finalize();
        ASSERT_EQ(got.size(), k);
        for (std::size_t j = 0; j < k; ++j)
            EXPECT_EQ(got[j].toAffine(), ref[j].toAffine())
                << "chunk " << chunk << " col " << j;
    }
}

TEST(Stream, CommitStreamingMatchesRamAcrossChunksAndThreads)
{
    Rng rng(6);
    const unsigned mu = 12;
    Mle f = Mle::random(mu, rng);
    pcs::Commitment oracle = [&] {
        rt::ScopedConfig scope(ramOnly());
        return pcs::commit(sharedSrs(), f);
    }();
    for (std::size_t chunk : kChunks) {
        for (unsigned threads : {1u, 4u}) {
            rt::Config cfg = streamAll(chunk);
            cfg.threads = threads;
            rt::ScopedConfig scope(cfg);
            // Copy onto the mapped backend so the streamed walk is real.
            Mle g(FrTable::make(f.size()));
            g.store().assign(f.evals());
            EXPECT_TRUE(g.isMapped());
            EXPECT_EQ(pcs::commit(sharedSrs(), g), oracle)
                << "chunk " << chunk << " threads " << threads;
        }
    }
}

TEST(Stream, CommitBatchStreamedProducerMatchesCommitBatch)
{
    Rng rng(7);
    const unsigned mu = 11;
    std::vector<Mle> polys;
    for (int i = 0; i < 3; ++i)
        polys.push_back(Mle::random(mu, rng));
    std::vector<pcs::Commitment> oracle = [&] {
        rt::ScopedConfig scope(ramOnly());
        return pcs::commitBatch(sharedSrs(), polys);
    }();
    for (std::size_t chunk : kChunks) {
        rt::ScopedConfig scope(streamAll(chunk));
        std::vector<pcs::ChunkProducer> producers;
        for (const Mle &p : polys)
            producers.push_back(
                [&p](std::size_t b, std::size_t e, Fr *dst) {
                    std::copy(p.data() + b, p.data() + e, dst);
                });
        std::vector<pcs::Commitment> got =
            pcs::commitBatchStreamed(sharedSrs(), mu, producers);
        ASSERT_EQ(got.size(), oracle.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            EXPECT_EQ(got[i], oracle[i]) << "chunk " << chunk << " i " << i;
    }
}

TEST(Stream, OpenQuotientsMatchUnderStreaming)
{
    Rng rng(8);
    const unsigned mu = 9;
    Mle f = Mle::random(mu, rng);
    std::vector<Fr> z(mu);
    for (auto &v : z)
        v = Fr::random(rng);
    pcs::OpeningProof oracle = [&] {
        rt::ScopedConfig scope(ramOnly());
        return pcs::open(sharedSrs(), f, z);
    }();
    rt::ScopedConfig scope(streamAll(1000));
    pcs::OpeningProof got = pcs::open(sharedSrs(), f, z);
    ASSERT_EQ(got.quotients.size(), oracle.quotients.size());
    for (std::size_t i = 0; i < got.quotients.size(); ++i)
        EXPECT_EQ(got.quotients[i], oracle.quotients[i]) << i;
}

TEST(Stream, SumcheckFusedFoldMatchesUnfusedOracle)
{
    Rng rng(9);
    const unsigned mu = 13; // > kFuseMinPairs pairs: RAM run fuses too;
                            // mapped runs fuse from round one regardless
    poly::GateExpr expr("prod3");
    expr.addSlot("a");
    expr.addSlot("b");
    expr.addSlot("c");
    expr.addTerm(Fr::one(),
                 {poly::SlotId(0), poly::SlotId(1), poly::SlotId(2)});
    std::vector<Mle> tables;
    for (int s = 0; s < 3; ++s)
        tables.push_back(Mle::random(mu, rng));

    auto run = [&](const rt::Config &cfg) {
        rt::ScopedConfig scope(cfg);
        std::vector<Mle> copy = tables;
        hash::Transcript tr("stream-test");
        return sumcheck::prove(
            poly::VirtualPoly(expr, std::move(copy)), tr, {});
    };
    sumcheck::ProverOutput oracle = run(ramOnly());
    for (std::size_t chunk : kChunks) {
        for (unsigned threads : {1u, 4u}) {
            rt::Config cfg = streamAll(chunk);
            cfg.threads = threads;
            sumcheck::ProverOutput got = run(cfg);
            EXPECT_EQ(got.proof.claimedSum, oracle.proof.claimedSum);
            ASSERT_EQ(got.proof.roundEvals.size(),
                      oracle.proof.roundEvals.size());
            for (std::size_t r = 0; r < got.proof.roundEvals.size(); ++r)
                EXPECT_EQ(got.proof.roundEvals[r], oracle.proof.roundEvals[r])
                    << "round " << r << " chunk " << chunk << " threads "
                    << threads;
            EXPECT_EQ(got.proof.finalSlotEvals, oracle.proof.finalSlotEvals);
            EXPECT_EQ(got.challenges, oracle.challenges);
        }
    }
}

TEST(Stream, FullProverTranscriptByteIdenticalUnderStreaming)
{
    Rng rng(10);
    hyperplonk::Circuit c = hyperplonk::randomVanillaCircuit(8, rng);
    hyperplonk::Keys keys = hyperplonk::setup(c, sharedSrs());

    hyperplonk::ProveOptions ram;
    ram.rt = ramOnly();
    std::vector<std::uint8_t> oracle = hyperplonk::serializeProof(
        hyperplonk::prove(keys.pk, c, nullptr, ram));

    for (std::size_t chunk : {std::size_t(1) << 10, std::size_t(100)}) {
        for (unsigned threads : {1u, 4u}) {
            hyperplonk::ProveOptions opts;
            opts.rt = streamAll(chunk);
            opts.rt.threads = threads;
            hyperplonk::HyperPlonkProof proof =
                hyperplonk::prove(keys.pk, c, nullptr, opts);
            EXPECT_EQ(hyperplonk::serializeProof(proof), oracle)
                << "chunk " << chunk << " threads " << threads;
            EXPECT_TRUE(hyperplonk::verify(keys.vk, proof).ok);
        }
    }
}

TEST(Stream, ContextArenaRecyclesBuffersAcrossProofs)
{
    Rng rng(11);
    hyperplonk::Circuit c = hyperplonk::randomVanillaCircuit(7, rng);
    engine::ProverContext ctx(sharedSrs());
    const hyperplonk::Keys &keys = ctx.preprocess(c);

    auto allocs = [] {
        poly::StoreCounters sc = poly::storeCounters();
        return sc.ramAllocs + sc.mappedAllocs;
    };
    std::vector<std::uint8_t> first, second;
    const std::uint64_t a0 = allocs();
    first = hyperplonk::serializeProof(ctx.prove(keys.pk, c));
    const std::uint64_t a1 = allocs();
    second = hyperplonk::serializeProof(ctx.prove(keys.pk, c));
    const std::uint64_t a2 = allocs();

    EXPECT_EQ(first, second);
    // The second proof reacquires the first proof's released buffers, so it
    // must hit the arena and allocate strictly fewer fresh tables.
    poly::StoreCounters sc = poly::storeCounters();
    EXPECT_GT(sc.arenaHits, 0u);
    EXPECT_LT(a2 - a1, a1 - a0);
}

TEST(Numa, DisabledIsInertAndBindNeverLies)
{
    // Without ZKPHIRE_NUMA in the environment these are hard no-ops; with
    // it, binding may succeed but must never throw or change values.
    (void)rt::numa::numNodes();
    if (!rt::numa::enabled())
        EXPECT_FALSE(rt::numa::bindCurrentThreadToNode(0));
    EXPECT_FALSE(rt::numa::bindCurrentThreadToNode(
        std::size_t(1) << 20)); // out-of-range node
}
