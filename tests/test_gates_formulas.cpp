/**
 * @file
 * Independent validation of every Table I row: each gate's expanded
 * GateExpr is evaluated at random slot values and compared against a
 * directly hand-transcribed closed form of the paper's formula (no SymPoly
 * involved). Any transcription or expansion error in the gate library
 * shows up here.
 */
#include <gtest/gtest.h>

#include <functional>

#include "gates/gate_library.hpp"

using namespace zkphire::gates;
using zkphire::ff::Fr;
using zkphire::ff::Rng;

namespace {

using Formula = std::function<Fr(const std::vector<Fr> &)>;

void
checkGate(int id, const Formula &formula, unsigned num_trials = 5)
{
    Gate g = tableIGate(id, Fr::fromU64(7));
    Rng rng(9000 + unsigned(id));
    for (unsigned trial = 0; trial < num_trials; ++trial) {
        std::vector<Fr> v(g.expr.numSlots());
        for (auto &x : v)
            x = Fr::random(rng);
        EXPECT_EQ(g.expr.evaluate(v), formula(v))
            << "gate " << id << " trial " << trial;
    }
}

Fr
curve(const Fr &x, const Fr &y)
{
    return y * y - x * x * x - Fr::fromU64(5);
}

} // namespace

TEST(TableI, Row0VerifiableAsics)
{
    // qadd*(a+b) + qmul*(a*b); slots: qadd qmul a b.
    checkGate(0, [](const std::vector<Fr> &v) {
        return v[0] * (v[2] + v[3]) + v[1] * (v[2] * v[3]);
    });
}

TEST(TableI, Row1Spartan1)
{
    // (A*B - C) * f_tau.
    checkGate(1, [](const std::vector<Fr> &v) {
        return (v[0] * v[1] - v[2]) * v[3];
    });
}

TEST(TableI, Row2Spartan2)
{
    checkGate(2, [](const std::vector<Fr> &v) { return v[0] * v[1]; });
}

TEST(TableI, Row3NonzeroPointCheck)
{
    // q * (y^2 - x^3 - 5); slots: q x y.
    checkGate(3, [](const std::vector<Fr> &v) {
        return v[0] * curve(v[1], v[2]);
    });
}

TEST(TableI, Row4XGatedCurveCheck)
{
    checkGate(4, [](const std::vector<Fr> &v) {
        return v[0] * v[1] * curve(v[1], v[2]);
    });
}

TEST(TableI, Row5YGatedCurveCheck)
{
    checkGate(5, [](const std::vector<Fr> &v) {
        return v[0] * v[2] * curve(v[1], v[2]);
    });
}

TEST(TableI, Row6IncompleteAddition1)
{
    // q*((xr+xq+xp)(xp-xq)^2 - (yp-yq)^2); slots: q xr xq xp yp yq.
    checkGate(6, [](const std::vector<Fr> &v) {
        Fr dx = v[3] - v[2], dy = v[4] - v[5];
        return v[0] * ((v[1] + v[2] + v[3]) * dx * dx - dy * dy);
    });
}

TEST(TableI, Row7IncompleteAddition2)
{
    // q*((yr+yq)(xp-xq) - (yp-yq)(xq-xr)); slots: q yr yq xp xq yp xr.
    checkGate(7, [](const std::vector<Fr> &v) {
        return v[0] * ((v[1] + v[2]) * (v[3] - v[4]) -
                       (v[5] - v[2]) * (v[4] - v[6]));
    });
}

TEST(TableI, Row8CompleteAddition1)
{
    // q*(xq-xp)*((xq-xp)*lam - (yq-yp)); slots: q xq xp lam yq yp.
    checkGate(8, [](const std::vector<Fr> &v) {
        Fr dx = v[1] - v[2];
        return v[0] * dx * (dx * v[3] - (v[4] - v[5]));
    });
}

TEST(TableI, Row9CompleteAddition2)
{
    // q*(1-(xq-xp)*alpha)*(2*yp*lam - 3*xp^2).
    checkGate(9, [](const std::vector<Fr> &v) {
        return v[0] * (Fr::one() - (v[1] - v[2]) * v[3]) *
               (v[4].dbl() * v[5] - Fr::fromU64(3) * v[2] * v[2]);
    });
}

TEST(TableI, Rows10To13CompleteAddition3To6)
{
    // Slots: q xp xq yp yq xr yr lam.
    auto gatef_x = [](const std::vector<Fr> &v) { return v[2] - v[1]; };
    auto gatef_y = [](const std::vector<Fr> &v) { return v[4] + v[3]; };
    auto bracket_sq = [](const std::vector<Fr> &v) {
        return v[7] * v[7] - v[1] - v[2] - v[5];
    };
    auto bracket_lin = [](const std::vector<Fr> &v) {
        return v[7] * (v[1] - v[5]) - v[3] - v[6];
    };
    checkGate(10, [&](const std::vector<Fr> &v) {
        return v[0] * v[1] * v[2] * gatef_x(v) * bracket_sq(v);
    });
    checkGate(11, [&](const std::vector<Fr> &v) {
        return v[0] * v[1] * v[2] * gatef_x(v) * bracket_lin(v);
    });
    checkGate(12, [&](const std::vector<Fr> &v) {
        return v[0] * v[1] * v[2] * gatef_y(v) * bracket_sq(v);
    });
    checkGate(13, [&](const std::vector<Fr> &v) {
        return v[0] * v[1] * v[2] * gatef_y(v) * bracket_lin(v);
    });
}

TEST(TableI, Rows14To17CompleteAddition7To10)
{
    // Slots: q xp xq xr yp yq yr inv(beta|gamma).
    checkGate(14, [](const std::vector<Fr> &v) {
        return v[0] * (Fr::one() - v[1] * v[7]) * (v[3] - v[2]);
    });
    checkGate(15, [](const std::vector<Fr> &v) {
        return v[0] * (Fr::one() - v[1] * v[7]) * (v[6] - v[5]);
    });
    checkGate(16, [](const std::vector<Fr> &v) {
        return v[0] * (Fr::one() - v[2] * v[7]) * (v[3] - v[1]);
    });
    checkGate(17, [](const std::vector<Fr> &v) {
        return v[0] * (Fr::one() - v[2] * v[7]) * (v[6] - v[4]);
    });
}

TEST(TableI, Rows18And19CompleteAddition11And12)
{
    // Slots: q xq xp alpha yq yp delta out.
    auto bracket = [](const std::vector<Fr> &v) {
        return Fr::one() - (v[1] - v[2]) * v[3] - (v[4] + v[5]) * v[6];
    };
    checkGate(18, [&](const std::vector<Fr> &v) {
        return v[0] * bracket(v) * v[7];
    });
    checkGate(19, [&](const std::vector<Fr> &v) {
        return v[0] * bracket(v) * v[7];
    });
}

TEST(TableI, Row20VanillaZeroCheck)
{
    // (qL w1 + qR w2 + qM w1 w2 - qO w3 + qC) * f_r;
    // slots: qL qR qM qO qC w1 w2 w3 f_r.
    checkGate(20, [](const std::vector<Fr> &v) {
        return (v[0] * v[5] + v[1] * v[6] + v[2] * v[5] * v[6] -
                v[3] * v[7] + v[4]) *
               v[8];
    });
}

TEST(TableI, Row21VanillaPermCheck)
{
    // (pi - p1 p2 + 7*(phi D1 D2 D3 - N1 N2 N3)) * f_r.
    checkGate(21, [](const std::vector<Fr> &v) {
        Fr alpha = Fr::fromU64(7);
        return (v[0] - v[1] * v[2] +
                alpha * (v[3] * v[4] * v[5] * v[6] - v[7] * v[8] * v[9])) *
               v[10];
    });
}

TEST(TableI, Row22JellyfishZeroCheck)
{
    checkGate(22, [](const std::vector<Fr> &v) {
        auto p5 = [](const Fr &x) { return x * x * x * x * x; };
        Fr w1 = v[13], w2 = v[14], w3 = v[15], w4 = v[16], w5 = v[17];
        return (v[0] * w1 + v[1] * w2 + v[2] * w3 + v[3] * w4 +
                v[4] * w1 * w2 + v[5] * w3 * w4 + v[6] * p5(w1) +
                v[7] * p5(w2) + v[8] * p5(w3) + v[9] * p5(w4) -
                v[10] * w5 + v[11] * w1 * w2 * w3 * w4 + v[12]) *
               v[18];
    });
}

TEST(TableI, Row23JellyfishPermCheck)
{
    checkGate(23, [](const std::vector<Fr> &v) {
        Fr alpha = Fr::fromU64(7);
        Fr d = v[4] * v[5] * v[6] * v[7] * v[8];
        Fr n = v[9] * v[10] * v[11] * v[12] * v[13];
        return (v[0] - v[1] * v[2] + alpha * (v[3] * d - n)) * v[14];
    });
}

TEST(TableI, Row24OpenCheck)
{
    checkGate(24, [](const std::vector<Fr> &v) {
        Fr acc = Fr::zero();
        for (int i = 0; i < 6; ++i)
            acc += v[i] * v[6 + i];
        return acc;
    });
}

TEST(TableI, SweepFamilyClosedForm)
{
    for (unsigned d : {2u, 5u, 13u, 29u}) {
        Gate g = sweepGate(d);
        Rng rng(9500 + d);
        std::vector<Fr> v(6);
        for (auto &x : v)
            x = Fr::random(rng);
        Fr w1_pow = Fr::one();
        for (unsigned i = 0; i + 1 < d; ++i)
            w1_pow *= v[4];
        Fr expect =
            v[0] * v[4] + v[1] * v[5] + v[2] * w1_pow * v[5] + v[3];
        EXPECT_EQ(g.expr.evaluate(v), expect) << "d=" << d;
    }
}
