/**
 * @file
 * Scheduler tests: the Fig. 8 node-count staircase, Tmp-buffer accounting
 * for accumulation vs balanced-tree schedules, prefetch/first-fetch
 * tracking, II mapping, and shape extraction from gate expressions.
 */
#include <gtest/gtest.h>

#include "gates/gate_library.hpp"
#include "sim/sumcheck_sched.hpp"

using namespace zkphire;
using namespace zkphire::sim;

TEST(PolyShape, FromGateExtractsStructure)
{
    PolyShape shape = PolyShape::fromGate(gates::tableIGate(20));
    EXPECT_EQ(shape.numSlots, 9u);
    EXPECT_EQ(shape.numTerms(), 5u);
    EXPECT_EQ(shape.degree(), 4u);
    EXPECT_EQ(shape.uniqueSlots().size(), 9u);
}

TEST(PolyShape, ConstantTermsAreDropped)
{
    poly::GateExpr e("f");
    auto a = e.addSlot("a");
    e.addTerm({a});
    e.addTerm(ff::Fr::fromU64(3), {}); // pure constant
    PolyShape shape =
        PolyShape::fromExpr(e, {gates::SlotRole::Witness});
    EXPECT_EQ(shape.numTerms(), 1u);
}

TEST(PolyShape, EncodedBytesFollowRoles)
{
    PolyShape shape = PolyShape::fromGate(gates::tableIGate(20));
    // Selectors are bitstreams, witnesses ~3.5 B/entry, f_r dense 32 B.
    EXPECT_DOUBLE_EQ(shape.encodedBytes(0), 0.125);
    EXPECT_NEAR(shape.encodedBytes(5), 3.5, 0.2);
    EXPECT_DOUBLE_EQ(shape.encodedBytes(8), 32.0);
}

TEST(PolyShape, WithoutSlotRemovesOccurrences)
{
    PolyShape shape = PolyShape::fromGate(gates::tableIGate(20));
    PolyShape no_fr = shape.withoutSlot(8);
    EXPECT_EQ(no_fr.degree(), shape.degree() - 1);
    EXPECT_EQ(no_fr.uniqueSlots().size(), 8u);
}

TEST(Scheduler, NodeCountStaircase)
{
    // Paper Fig. 8: "under 6 EEs, degree-1-6 polynomials have 1 node,
    // degree-7-11 require 2" (degree = factor occurrences of the term).
    for (std::size_t m = 1; m <= 6; ++m)
        EXPECT_EQ(nodeCountForTerm(m, 6), 1u) << m;
    for (std::size_t m = 7; m <= 11; ++m)
        EXPECT_EQ(nodeCountForTerm(m, 6), 2u) << m;
    for (std::size_t m = 12; m <= 16; ++m)
        EXPECT_EQ(nodeCountForTerm(m, 6), 3u) << m;
    // General rule for other EE counts.
    EXPECT_EQ(nodeCountForTerm(2, 2), 1u);
    EXPECT_EQ(nodeCountForTerm(3, 2), 2u);
    EXPECT_EQ(nodeCountForTerm(4, 2), 3u);
    EXPECT_EQ(nodeCountForTerm(7, 7), 1u);
    EXPECT_EQ(nodeCountForTerm(8, 7), 2u);
}

TEST(Scheduler, InitiationInterval)
{
    // Fig. 3: K=5 extensions on P=3 lanes -> II=2.
    EXPECT_EQ(Schedule::initiationInterval(5, 3), 2u);
    EXPECT_EQ(Schedule::initiationInterval(3, 3), 1u);
    EXPECT_EQ(Schedule::initiationInterval(8, 4), 2u);
    EXPECT_EQ(Schedule::initiationInterval(9, 4), 3u);
}

TEST(Scheduler, AccumulationScheduleCoversAllOccurrences)
{
    PolyShape shape = PolyShape::fromGate(gates::tableIGate(22));
    Schedule sched = buildSchedule(shape, 4, 5);
    // Total occurrences across nodes == total factor occurrences.
    std::size_t occ = 0, expect = 0;
    for (const auto &n : sched.nodes)
        occ += n.occurrences.size();
    for (std::size_t t = 0; t < shape.numTerms(); ++t)
        expect += shape.termDegree(t);
    EXPECT_EQ(occ, expect);
    // Node sizes respect the E / E-1 capacity rule.
    for (const auto &n : sched.nodes) {
        std::size_t cap = n.usesTmpIn ? 3u : 4u;
        EXPECT_LE(n.occurrences.size(), cap);
    }
}

TEST(Scheduler, AccumulationNeedsOneTmpBuffer)
{
    // Fig. 2's claim: the accumulation schedule needs a single Tmp MLE
    // buffer regardless of degree.
    for (unsigned d : {8u, 16u, 30u}) {
        PolyShape shape = PolyShape::fromGate(gates::sweepGate(d));
        Schedule acc = buildSchedule(shape, 3, 5);
        EXPECT_EQ(acc.tmpBuffers, 1u) << "degree " << d;
    }
}

TEST(Scheduler, BalancedTreeNeedsGrowingBuffers)
{
    PolyShape d8 = PolyShape::fromGate(gates::sweepGate(8));
    PolyShape d30 = PolyShape::fromGate(gates::sweepGate(30));
    Schedule t8 = buildSchedule(d8, 3, 5, ScheduleKind::BalancedTree);
    Schedule t30 = buildSchedule(d30, 3, 5, ScheduleKind::BalancedTree);
    EXPECT_GE(t8.tmpBuffers, 2u);
    EXPECT_GT(t30.tmpBuffers, t8.tmpBuffers);
    // Tree combines exist.
    bool has_combine = false;
    for (const auto &n : t30.nodes)
        has_combine |= n.treeCombine;
    EXPECT_TRUE(has_combine);
}

TEST(Scheduler, FirstFetchHappensOncePerSlot)
{
    // Slots reused across terms must be fetched only once per tile
    // (paper §III-B scratchpad reuse).
    poly::GateExpr e("f");
    auto a = e.addSlot("a"), b = e.addSlot("b"), c = e.addSlot("c"),
         g = e.addSlot("e");
    e.addTerm({a, b, g});
    e.addTerm({c, g});
    e.addTerm({g, g});
    PolyShape shape = PolyShape::fromExpr(
        e, std::vector<gates::SlotRole>(4, gates::SlotRole::Witness));
    Schedule sched = buildSchedule(shape, 3, 5);
    std::size_t fetches = 0;
    for (const auto &n : sched.nodes)
        fetches += n.freshFetches.size();
    EXPECT_EQ(fetches, 4u); // each of a,b,c,e exactly once
}

TEST(Scheduler, TmpChainLinksNodesOfWideTerm)
{
    PolyShape shape = PolyShape::fromGate(gates::sweepGate(12));
    Schedule sched = buildSchedule(shape, 4, 5);
    // The wide term (13 occurrences on 4 EEs -> 1 + ceil(9/3) = 4 nodes).
    std::size_t wide_nodes = 0;
    for (const auto &n : sched.nodes)
        if (n.term == 2)
            ++wide_nodes;
    EXPECT_EQ(wide_nodes, nodeCountForTerm(13, 4));
    // Chain structure: first node writes Tmp, middles use+write, last uses.
    std::vector<const ScheduleNode *> chain;
    for (const auto &n : sched.nodes)
        if (n.term == 2)
            chain.push_back(&n);
    EXPECT_FALSE(chain.front()->usesTmpIn);
    EXPECT_TRUE(chain.front()->writesTmpOut);
    EXPECT_TRUE(chain.back()->usesTmpIn);
    EXPECT_FALSE(chain.back()->writesTmpOut);
}
