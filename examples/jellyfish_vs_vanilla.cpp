/**
 * @file
 * Expressive-gate demo: the same application — a batch of x -> x^5 S-box
 * evaluations (the Rescue/Poseidon hash core) — arithmetized with Vanilla
 * gates (3 rows per S-box) and with Jellyfish gates (1 row per S-box).
 * Both versions are actually proven and verified; the hardware model then
 * projects the end-to-end advantage at production scale, reproducing the
 * paper's headline trade-off (fewer gates vs higher-degree SumCheck).
 */
#include <cstdio>

#include "engine/service.hpp"
#include "hyperplonk/verifier.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::hyperplonk;
using ff::Fr;

namespace {

/** x^5 via Vanilla gates: x2 = x*x, x4 = x2*x2, x5 = x4*x (3 rows). */
Circuit
vanillaSboxCircuit(unsigned num_sboxes, ff::Rng &rng)
{
    Circuit c(GateSystem::Vanilla);
    for (unsigned i = 0; i < num_sboxes; ++i) {
        Fr x = Fr::random(rng);
        Cell x2 = c.addMultiplication(x, x);
        Cell x4 = c.addMultiplication(c.witness(x2), c.witness(x2));
        c.copy(x2, Cell{0, x4.row});
        c.copy(x2, Cell{1, x4.row});
        Cell x5 = c.addMultiplication(c.witness(x4), x);
        c.copy(x4, Cell{0, x5.row});
    }
    c.padToPowerOfTwo();
    return c;
}

/** x^5 via one Jellyfish row each (the qH selector). */
Circuit
jellyfishSboxCircuit(unsigned num_sboxes, ff::Rng &rng)
{
    Circuit c(GateSystem::Jellyfish);
    for (unsigned i = 0; i < num_sboxes; ++i)
        c.addPow5(Fr::random(rng));
    c.padToPowerOfTwo();
    return c;
}

} // namespace

int
main()
{
    const unsigned num_sboxes = 20;
    ff::Rng rng(11);

    // ---- functional comparison at toy scale ------------------------------
    Circuit vanilla = vanillaSboxCircuit(num_sboxes, rng);
    Circuit jelly = jellyfishSboxCircuit(num_sboxes, rng);
    std::printf("%u S-boxes: Vanilla %zu rows, Jellyfish %zu rows (%.1fx "
                "fewer gates)\n",
                num_sboxes, vanilla.numRows(), jelly.numRows(),
                double(vanilla.numRows()) / double(jelly.numRows()));

    // One prover session covers both gate systems: the context preprocesses
    // each circuit once, and a two-lane service proves them concurrently
    // (each job gets half the thread budget; proofs are byte-identical to
    // sequential runs).
    pcs::Srs srs = pcs::Srs::generate(8, rng);
    engine::ProverContext ctx(srs);
    const Keys &vanilla_keys = ctx.preprocess(vanilla);
    const Keys &jelly_keys = ctx.preprocess(jelly);

    engine::ProofService service(ctx, /*lanes=*/2);
    std::vector<engine::ProofRequest> requests{
        {&vanilla_keys.pk, &vanilla, nullptr},
        {&jelly_keys.pk, &jelly, nullptr},
    };
    std::vector<engine::ProofResult> results = service.proveAll(requests);

    for (std::size_t i = 0; i < results.size(); ++i) {
        const char *name = i == 0 ? "Vanilla" : "Jellyfish";
        const engine::ProofResult &r = results[i];
        if (!r.ok) {
            std::printf("  %-10s prove FAILED: %s\n", name, r.error.c_str());
            return 1;
        }
        const Keys &keys = i == 0 ? vanilla_keys : jelly_keys;
        auto res = verify(keys.vk, r.proof);
        std::printf("  %-10s prove %.1f ms, proof %.2f KB, verify %s\n",
                    name, r.stats.totalMs(),
                    static_cast<double>(r.proof.sizeBytes()) / 1024.0,
                    res.ok ? "OK" : res.error.c_str());
        if (!res.ok)
            return 1;
    }

    // ---- modeled comparison at production scale ---------------------------
    std::printf("\nmodeled on the 294 mm^2 zkPHIRE exemplar (2 TB/s):\n");
    std::printf("%-8s | %12s %12s | %10s\n", "scale", "Vanilla ms",
                "Jellyfish ms", "advantage");
    sim::ChipConfig cfg = sim::ChipConfig::exemplar();
    for (unsigned mu_v = 18; mu_v <= 28; mu_v += 2) {
        // The 3-rows-to-1 reduction: mu_j = mu_v - log2(3) ~= mu_v - 1.58;
        // model conservatively with mu_j = mu_v - 1.
        unsigned mu_j = mu_v - 1;
        double v = sim::simulateProtocol(
                       cfg, sim::ProtocolWorkload::vanilla(mu_v))
                       .totalMs;
        double j = sim::simulateProtocol(
                       cfg, sim::ProtocolWorkload::jellyfish(mu_j))
                       .totalMs;
        std::printf("2^%-6u | %12.2f %12.2f | %9.2fx\n", mu_v, v, j,
                    v / j);
    }
    std::printf("\nThe Jellyfish mapping wins despite its degree-7 "
                "SumCheck polynomial: gate-count reduction beats the "
                "extra per-gate verification work (paper Fig. 13).\n");
    return 0;
}
