/**
 * @file
 * Accelerator sizing demo: given a target application (a rollup of 25
 * private transactions, 2^19 Jellyfish gates) and an area budget, sweep
 * the design space and print the runtime-area Pareto frontier plus a
 * recommended configuration — the workflow a deployment team would run
 * with this library.
 */
#include <cstdio>

#include "sim/baseline.hpp"
#include "sim/dse.hpp"
#include "sim/workloads.hpp"

using namespace zkphire;
using namespace zkphire::sim;

int
main(int argc, char **argv)
{
    double area_budget = argc > 1 ? std::atof(argv[1]) : 150.0;
    ProtocolWorkload wl = ProtocolWorkload::jellyfish(19);
    CpuModel cpu;
    double cpu_ms = cpu.protocolMs(wl);

    std::printf("sizing zkPHIRE for: Rollup of 25 private transactions "
                "(2^19 Jellyfish gates)\n");
    std::printf("area budget: %.0f mm^2; 32-thread CPU reference: %.0f "
                "ms\n\n",
                area_budget, cpu_ms);

    DseGrid grid; // full Table III sweep
    DseResult res = runDse(wl, grid, 16);

    std::printf("global Pareto frontier (runtime vs area):\n");
    std::printf("%12s %10s %9s %8s   %s\n", "runtime ms", "area mm2",
                "BW GB/s", "speedup", "SC(PE/EE/PL)  MSM(PE/w)");
    const DsePoint *recommended = nullptr;
    for (const auto &p : res.globalPareto) {
        bool fits = p.areaMm2 <= area_budget;
        if (fits && !recommended)
            recommended = &p;
        std::printf("%12.2f %10.1f %9.0f %7.0fx   %u/%u/%u  %u/%u%s\n",
                    p.runtimeMs, p.areaMm2, p.cfg.bandwidthGBs,
                    cpu_ms / p.runtimeMs, p.cfg.sumcheck.numPEs,
                    p.cfg.sumcheck.numEEs, p.cfg.sumcheck.numPLs,
                    p.cfg.msm.numPEs, p.cfg.msm.windowBits,
                    fits ? "" : "   (over budget)");
    }

    if (recommended) {
        auto run = simulateProtocol(recommended->cfg, wl);
        auto area = recommended->cfg.areaBreakdown();
        auto power = recommended->cfg.powerBreakdown();
        std::printf("\nrecommended design under %.0f mm^2:\n", area_budget);
        std::printf("  %.2f ms per proof (%.0fx over CPU), %.1f mm^2, "
                    "%.0f W, %.0f GB/s\n",
                    run.totalMs, cpu_ms / run.totalMs, area.total(),
                    power.total(), recommended->cfg.bandwidthGBs);
        std::printf("  steps: witnessMSM %.2f | gateZC %.2f | wire %.2f | "
                    "batch %.2f | open %.2f ms (masking hides %.2f)\n",
                    run.steps.witnessMsm, run.steps.gateZeroCheck,
                    run.steps.wireIdentity(), run.steps.batchEval,
                    run.steps.polyOpen(), run.maskedSavingMs);
        std::printf("  proof size: %.2f KB\n", run.proofBytes / 1024.0);
        std::printf("  throughput: %.0f proofs/s -> %.0f rollup tx/s\n",
                    1000.0 / run.totalMs, 25 * 1000.0 / run.totalMs);
    } else {
        std::printf("\nno Pareto design fits %.0f mm^2; smallest is %.1f "
                    "mm^2\n",
                    area_budget, res.globalPareto.back().areaMm2);
    }
    return 0;
}
