/**
 * @file
 * Programmability demo: define a custom Halo2-style elliptic-curve gate,
 * run a real SumCheck over it (prove + verify), then "program" the
 * modeled zkPHIRE SumCheck unit with the same polynomial and inspect the
 * schedule the compiler produces (Fig. 2 graph decomposition), the lane
 * mapping (Fig. 3), and the projected speedup over a CPU at scale.
 *
 * This is the paper's core pitch: one accelerator, arbitrary gates —
 * including ones invented after tape-out.
 */
#include <cstdio>

#include "poly/sym_poly.hpp"
#include "poly/virtual_poly.hpp"
#include "sim/baseline.hpp"
#include "sim/program.hpp"
#include "sim/sumcheck_unit.hpp"
#include "sim/unit_executor.hpp"
#include "sumcheck/prover.hpp"
#include "sumcheck/verifier.hpp"

using namespace zkphire;
using ff::Fr;
using poly::SymPoly;

int
main()
{
    // ---- 1. Define a custom gate nobody hard-wired ----------------------
    // A "double-and-add step" constraint mixing a curve check with a
    // conditional: q * (bit * (y^2 - x^3 - 5) + (1 - bit) * (x_out - x^2)).
    poly::GateExpr expr("custom double-and-add");
    auto q = SymPoly::var(expr.addSlot("q"));
    auto bit = SymPoly::var(expr.addSlot("bit"));
    auto x = SymPoly::var(expr.addSlot("x"));
    auto y = SymPoly::var(expr.addSlot("y"));
    auto x_out = SymPoly::var(expr.addSlot("x_out"));
    SymPoly curve = y * y - x * x * x - SymPoly::constant(5);
    SymPoly sel = bit * curve +
                  (SymPoly::constant(1) - bit) * (x_out - x * x);
    (q * sel).addTo(expr);
    std::printf("gate: %zu slots, %zu terms, composite degree %zu\n",
                expr.numSlots(), expr.numTerms(), expr.degree());

    // ---- 2. Run the real protocol on it ---------------------------------
    const unsigned mu = 12;
    ff::Rng rng(7);
    std::vector<poly::Mle> tables;
    for (std::size_t s = 0; s < expr.numSlots(); ++s)
        tables.push_back(poly::Mle::random(mu, rng));
    poly::VirtualPoly vp(expr, tables);
    Fr claim = vp.sumOverHypercube();

    hash::Transcript tp("custom-gate");
    auto out = sumcheck::prove(poly::VirtualPoly(expr, tables), tp);
    hash::Transcript tv("custom-gate");
    auto res = sumcheck::verify(expr, out.proof, mu, tv);
    std::printf("SumCheck over 2^%u gates: claim %s..., verifier %s, "
                "proof %zu B\n",
                mu, out.proof.claimedSum.toBig().toHex().substr(0, 18).c_str(),
                res.ok ? "ACCEPTED" : "REJECTED", out.proof.sizeBytes());
    if (out.proof.claimedSum != claim || !res.ok)
        return 1;

    // ---- 3. Program the modeled accelerator with the same gate ----------
    sim::PolyShape shape = sim::PolyShape::fromExpr(
        expr, std::vector<gates::SlotRole>(expr.numSlots(),
                                           gates::SlotRole::Witness));
    sim::SumcheckUnitConfig cfg; // 16 PEs, 7 EEs, 5 PLs (exemplar unit)
    sim::Schedule sched =
        sim::buildSchedule(shape, cfg.numEEs, cfg.numPLs);
    std::printf("\ncompiled schedule on %u EEs / %u PLs: %zu nodes, %zu "
                "Tmp buffer(s)\n",
                cfg.numEEs, cfg.numPLs, sched.nodes.size(),
                sched.tmpBuffers);
    for (std::size_t i = 0; i < sched.nodes.size(); ++i) {
        const auto &n = sched.nodes[i];
        std::printf("  node %zu: term %u, %zu occurrences%s%s, fetches "
                    "%zu new tile(s), II = %u\n",
                    i, n.term, n.occurrences.size(),
                    n.usesTmpIn ? ", reads Tmp" : "",
                    n.writesTmpOut ? ", writes Tmp" : "",
                    n.freshFetches.size(),
                    sim::Schedule::initiationInterval(
                        shape.termDegree(n.term) + 1, cfg.numPLs));
    }

    // ---- 3b. The controller program the scheduler emits ------------------
    sim::SumcheckProgram prog = sim::compileProgram(shape, sched);
    std::printf("\n%s", prog.disassemble().c_str());

    // ---- 3c. Execute the schedule functionally and cross-check ----------
    hash::Transcript t_hw("custom-gate");
    sim::ExecutorStats xstats;
    auto hw = sim::executeOnUnit(poly::VirtualPoly(expr, tables),
                                 cfg.numEEs, cfg.numPLs, t_hw,
                                 sim::ScheduleKind::Accumulation, &xstats);
    bool identical = hw.proof.roundEvals == out.proof.roundEvals &&
                     hw.proof.finalSlotEvals == out.proof.finalSlotEvals;
    std::printf("\nfunctional datapath execution: %s the reference prover "
                "(%llu EE values, %llu PL muls, %llu updates)\n",
                identical ? "bit-identical to" : "DIVERGES from (BUG!)",
                (unsigned long long)xstats.extensions,
                (unsigned long long)xstats.products,
                (unsigned long long)xstats.updates);
    if (!identical)
        return 1;

    // ---- 4. Project performance at deployment scale ---------------------
    sim::SumcheckWorkload wl;
    wl.shape = shape;
    wl.numVars = 24;
    sim::CpuModel cpu32;
    std::printf("\nprojected for 2^24 gates:\n");
    for (double bw : {256.0, 1024.0, 2048.0}) {
        auto run = sim::simulateSumcheck(cfg, wl, bw);
        double cpu_ms = cpu32.sumcheckMs(shape, 24);
        std::printf("  %4.0f GB/s: %8.2f ms on zkPHIRE vs %8.0f ms on "
                    "32T CPU -> %5.0fx (util %.2f)\n",
                    bw, run.timeMs(), cpu_ms, cpu_ms / run.timeMs(),
                    run.utilization);
    }
    std::printf("\nNo RTL change was needed for this gate — only a new "
                "schedule (paper §III-E).\n");
    return 0;
}
