/**
 * @file
 * Quickstart: build a small Vanilla HyperPlonk circuit, prove it through
 * the engine's session API (ProverContext + ProofService), verify it, and
 * print sizes/timings.
 *
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 *
 * The circuit proves knowledge of x such that x^3 + x + 5 == 35 (the
 * classic toy statement) without revealing x = 3.
 */
#include <cstdio>

#include "engine/service.hpp"
#include "hyperplonk/verifier.hpp"

using namespace zkphire;
using namespace zkphire::hyperplonk;
using ff::Fr;

int
main()
{
    // ---- 1. Build the circuit (prover side knows x = 3) ----------------
    Circuit circuit(GateSystem::Vanilla);
    Fr x = Fr::fromU64(3);

    Cell x_sq = circuit.addMultiplication(x, x); // x^2
    Cell x_cu = circuit.addMultiplication(circuit.witness(x_sq), x); // x^3
    // Wire: x_sq output feeds x_cu's left input.
    circuit.copy(x_sq, Cell{0, x_cu.row});
    Cell sum1 =
        circuit.addAddition(circuit.witness(x_cu), x); // x^3 + x
    circuit.copy(x_cu, Cell{0, sum1.row});
    Cell sum2 = circuit.addAddition(circuit.witness(sum1),
                                    Fr::fromU64(5)); // x^3 + x + 5
    circuit.copy(sum1, Cell{0, sum2.row});
    circuit.addConstant(Fr::fromU64(35)); // pin the expected output
    // Tie the computed result to the pinned constant via a subtraction
    // gate: (x^3 + x + 5) - 35 == 0  <=>  w1 + qC == w3 with w3 = 0.
    Fr result = circuit.witness(sum2);
    Fr sel[5] = {Fr::one(), Fr::zero(), Fr::zero(), Fr::zero(),
                 Fr::fromI64(-35)};
    Fr wit[3] = {result, Fr::zero(), Fr::zero()};
    std::size_t check_row = circuit.addRow(sel, wit);
    circuit.copy(sum2, Cell{0, check_row});

    unsigned mu = circuit.padToPowerOfTwo();
    std::printf("circuit: %zu rows (mu = %u), %zu copy constraints\n",
                circuit.numRows(), mu, circuit.copies().size());
    std::printf("gates satisfied: %s, wiring satisfied: %s\n",
                circuit.gatesSatisfied() ? "yes" : "NO",
                circuit.copiesSatisfied() ? "yes" : "NO");

    // ---- 2. A prover session: SRS + context + preprocessing -------------
    // The ProverContext owns the preprocessed keys, the compiled gate-plan
    // cache, and the runtime config (default: ZKPHIRE_THREADS or hardware
    // concurrency) for every proof made through it.
    ff::Rng rng(42);
    pcs::Srs srs = pcs::Srs::generate(mu + 1, rng);
    engine::ProverContext ctx(srs);
    const Keys &keys = ctx.preprocess(circuit);
    std::printf("setup done: %u selector + %u sigma commitments\n",
                unsigned(keys.vk.selectorComms.size()),
                unsigned(keys.vk.sigmaComms.size()));

    // ---- 3. Prove through the service -----------------------------------
    // One lane = a sequential service; pass lanes = N to keep N proofs in
    // flight. Results are byte-identical either way.
    engine::ProofService service(ctx, /*lanes=*/1);
    engine::ProofRequest request{&keys.pk, &circuit, nullptr};
    engine::ProofResult job = service.proveAll({request})[0];
    if (!job.ok) {
        std::printf("proving failed: %s\n", job.error.c_str());
        return 1;
    }
    HyperPlonkProof proof = std::move(job.proof);
    ProverStats stats = job.stats;
    std::printf("\nproof generated in %.2f ms\n", stats.totalMs());
    std::printf("  witness commit %.2f | gate identity %.2f | wire "
                "identity %.2f | batch eval %.2f | opening %.2f (ms)\n",
                stats.witnessCommitMs, stats.gateIdentityMs,
                stats.wireIdentityMs, stats.batchEvalMs, stats.openingMs);
    std::printf("  MSM work: %llu point adds, %llu doubles, %llu "
                "batched-affine adds (%llu batch inversions)\n",
                (unsigned long long)stats.msm.pointAdds,
                (unsigned long long)stats.msm.pointDoubles,
                (unsigned long long)stats.msm.affineAdds,
                (unsigned long long)stats.msm.batchInversions);
    std::printf("  MSM phases: recode %.2f | buckets %.2f | fold %.2f (ms)\n",
                stats.msm.recodeMs, stats.msm.bucketMs, stats.msm.foldMs);
    std::printf("  %s\n", proof.sizeBreakdown().toString().c_str());

    // ---- 4. Verify -------------------------------------------------------
    auto res = verify(keys.vk, proof);
    std::printf("\nverification: %s\n",
                res.ok ? "ACCEPTED" : ("REJECTED: " + res.error).c_str());

    // ---- 5. A cheating prover is caught ----------------------------------
    HyperPlonkProof bad = proof;
    bad.wAtZp[0] += Fr::one();
    auto bad_res = verify(keys.vk, bad);
    std::printf("tampered proof: %s (%s)\n",
                bad_res.ok ? "ACCEPTED (BUG!)" : "rejected",
                bad_res.error.c_str());
    return res.ok && !bad_res.ok ? 0 : 1;
}
