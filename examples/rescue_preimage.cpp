/**
 * @file
 * The paper's flagship Jellyfish workload, end to end: prove knowledge of
 * a Rescue hash preimage with a real HyperPlonk proof, then project the
 * "2^12 Rescue Hashes" batch (Table VII row) on the modeled accelerator.
 *
 * Rescue's x^5 / x^(1/5) S-boxes are why high-degree gates pay off: each
 * S-box is ONE Jellyfish row (degree-5 constraint) vs three Vanilla rows.
 */
#include <cstdio>

#include "gadgets/rescue.hpp"
#include "hyperplonk/prover.hpp"
#include "hyperplonk/verifier.hpp"
#include "sim/baseline.hpp"
#include "sim/chip.hpp"

using namespace zkphire;
using namespace zkphire::gadgets;
using ff::Fr;

int
main()
{
    // ---- 1. A real preimage proof ---------------------------------------
    Fr a = Fr::fromU64(20260608), b = Fr::fromU64(271828);
    Fr digest = rescueHash(a, b);
    std::printf("digest = %s...\n",
                digest.toBig().toHex().substr(0, 20).c_str());

    RescuePreimageCircuit pc = buildRescuePreimageCircuit(a, b);
    std::printf("circuit: %zu Jellyfish rows, %zu copy constraints "
                "(8 double rounds, width 3)\n",
                pc.circuit.numRows(), pc.circuit.copies().size());

    ff::Rng rng(99);
    unsigned mu = 0;
    while ((1u << mu) < pc.circuit.numRows())
        ++mu;
    pcs::Srs srs = pcs::Srs::generate(mu + 1, rng);
    auto keys = hyperplonk::setup(pc.circuit, srs);
    // Default rt::Config: ZKPHIRE_THREADS (or hardware concurrency) decides.
    hyperplonk::ProverStats stats;
    auto proof = hyperplonk::prove(keys.pk, pc.circuit, &stats);
    auto res = hyperplonk::verify(keys.vk, proof);
    std::printf("proof: %.1f ms on this host, %zu B, verifier says %s\n",
                stats.totalMs(), proof.sizeBytes(),
                res.ok ? "ACCEPTED" : res.error.c_str());
    if (!res.ok)
        return 1;

    // ---- 2. The paper's 2^12-hash batch on the accelerator --------------
    // 2^12 Rescue hashes ~= 2^20 Jellyfish gates (Table VII).
    std::printf("\nprojected batch of 2^12 Rescue hashes (2^20 Jellyfish "
                "gates):\n");
    sim::ChipConfig chip = sim::ChipConfig::exemplar();
    sim::CpuModel cpu;
    auto wl = sim::ProtocolWorkload::jellyfish(20);
    auto run = sim::simulateProtocol(chip, wl);
    double cpu_ms = cpu.protocolMs(wl);
    std::printf("  zkPHIRE exemplar: %.2f ms (paper: 7.114 ms)\n",
                run.totalMs);
    std::printf("  32-thread CPU   : %.0f ms (paper: 11532 ms)\n", cpu_ms);
    std::printf("  speedup         : %.0fx (paper: 1621x)\n",
                cpu_ms / run.totalMs);
    std::printf("  per hash        : %.2f us, %.1f hashes proven per "
                "second per chip\n",
                run.totalMs * 1000.0 / 4096.0, 4096.0 * 1000.0 / run.totalMs);
    return 0;
}
