/**
 * @file
 * Cooperative cancellation for long-running proofs.
 *
 * A CancelSource owns shared cancellation state; its CancelTokens observe
 * it. The state carries an explicit request flag AND an optional absolute
 * deadline, folded into one reason: the first observation past the deadline
 * latches CancelReason::Deadline, so "cancel(jobId)" and "deadline expired
 * mid-proof" ride the same mechanism and the service can distinguish them
 * when typing the job's final status.
 *
 * Delivery is by polling at coarse, safe boundaries — a sumcheck round, a
 * streamed commit chunk, a prover step — never by interruption: a check
 * throws OperationCancelled, stack unwinding runs the RAII cleanup every
 * prover stage already relies on (arena releases, slab unmaps, scope
 * restores), and the lane catches the exception at the job seam. Like the
 * other per-proof knobs, the token is installed ambiently (ScopedCancel,
 * same thread-local pattern as ScopedConfig/ScopedArena) so deep call
 * sites reach it without parameter threading. Worker threads of a pool do
 * not inherit the ambient token; boundaries are checked on the thread that
 * drives the proof, which bounds cancellation latency by one boundary, not
 * one chunk of a parallel region.
 */
#ifndef ZKPHIRE_RT_CANCEL_HPP
#define ZKPHIRE_RT_CANCEL_HPP

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace zkphire::rt {

enum class CancelReason : int {
    None = 0,
    Cancelled = 1, ///< Explicit requestCancel().
    Deadline = 2,  ///< The state's deadline passed.
};

/** Thrown by checkCancel()/throwIfCancelled() at a cancellation boundary. */
class OperationCancelled : public std::runtime_error
{
  public:
    explicit OperationCancelled(CancelReason reason)
        : std::runtime_error(reason == CancelReason::Deadline
                                 ? "deadline exceeded mid-proof"
                                 : "operation cancelled"),
          reason_(reason)
    {
    }
    CancelReason reason() const { return reason_; }

  private:
    CancelReason reason_;
};

namespace detail {

struct CancelState {
    std::atomic<int> reason{0};
    /** Immutable after the job starts (set while the job is scheduled). */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();

    CancelReason observe()
    {
        int r = reason.load(std::memory_order_acquire);
        if (r != 0)
            return CancelReason(r);
        if (deadline != std::chrono::steady_clock::time_point::max() &&
            std::chrono::steady_clock::now() >= deadline) {
            // Latch Deadline, but never overwrite an explicit cancel that
            // raced us.
            int expected = 0;
            reason.compare_exchange_strong(expected,
                                           int(CancelReason::Deadline),
                                           std::memory_order_acq_rel);
            return CancelReason(reason.load(std::memory_order_acquire));
        }
        return CancelReason::None;
    }
};

inline thread_local const std::shared_ptr<CancelState> *t_cancel = nullptr;

} // namespace detail

/** Observer handle; default-constructed tokens are never cancelled. */
class CancelToken
{
  public:
    CancelToken() = default;

    bool valid() const { return st != nullptr; }
    CancelReason reason() const
    {
        return st == nullptr ? CancelReason::None : st->observe();
    }
    bool cancelled() const { return reason() != CancelReason::None; }
    void throwIfCancelled() const
    {
        const CancelReason r = reason();
        if (r != CancelReason::None)
            throw OperationCancelled(r);
    }

  private:
    friend class CancelSource;
    friend class ScopedCancel;
    explicit CancelToken(std::shared_ptr<detail::CancelState> s)
        : st(std::move(s))
    {
    }
    std::shared_ptr<detail::CancelState> st;
};

/** Owner handle. Copyable: copies share the same state, so a scheduler can
 *  keep a handle to a running job's state without lifetime coupling. */
class CancelSource
{
  public:
    CancelSource() : st(std::make_shared<detail::CancelState>()) {}

    CancelToken token() const { return CancelToken(st); }
    void requestCancel(CancelReason reason = CancelReason::Cancelled) const
    {
        int expected = 0;
        st->reason.compare_exchange_strong(expected, int(reason),
                                           std::memory_order_acq_rel);
    }
    /** Set before handing the job to a lane; not synchronized against
     *  concurrent observers. */
    void setDeadline(std::chrono::steady_clock::time_point d) const
    {
        st->deadline = d;
    }
    bool cancelled() const { return st->observe() != CancelReason::None; }
    CancelReason reason() const { return st->observe(); }
    /** Fresh state for a retry attempt: an old observed deadline must not
     *  instantly re-cancel the new attempt. */
    void reset()
    {
        st = std::make_shared<detail::CancelState>();
    }

  private:
    std::shared_ptr<detail::CancelState> st;
};

/**
 * RAII installation of a token as the current thread's ambient cancel
 * token. An invalid token inherits the enclosing installation (the
 * ScopedConfig rule), so prover entry points apply their options' token
 * unconditionally.
 */
class ScopedCancel
{
  public:
    explicit ScopedCancel(const CancelToken &token)
        : tok(token), saved(detail::t_cancel)
    {
        if (tok.st != nullptr)
            detail::t_cancel = &tok.st;
    }
    ~ScopedCancel() { detail::t_cancel = saved; }
    ScopedCancel(const ScopedCancel &) = delete;
    ScopedCancel &operator=(const ScopedCancel &) = delete;

  private:
    CancelToken tok; // keeps the state alive for the scope's duration
    const std::shared_ptr<detail::CancelState> *saved;
};

/** Reason observed on the ambient token (None when none installed). */
inline CancelReason
cancelReason()
{
    if (detail::t_cancel == nullptr)
        return CancelReason::None;
    return (*detail::t_cancel)->observe();
}

inline bool
cancelRequested()
{
    return cancelReason() != CancelReason::None;
}

/** Cancellation boundary: throws OperationCancelled when the ambient token
 *  is cancelled (or past its deadline); no-op otherwise. */
inline void
checkCancel()
{
    const CancelReason r = cancelReason();
    if (r != CancelReason::None)
        throw OperationCancelled(r);
}

} // namespace zkphire::rt

#endif // ZKPHIRE_RT_CANCEL_HPP
