/**
 * @file
 * Chunked thread pool for the prover's data-parallel kernels.
 *
 * The paper's hot loops (SumCheck extension/product/accumulate, MLE Update,
 * Montgomery batch inversion, Pippenger windows) are all embarrassingly
 * parallel over index ranges, so the runtime deliberately avoids work
 * stealing: a parallel region splits its range into fixed-size chunks that
 * workers claim from a shared atomic cursor. The calling thread participates,
 * so a pool of N threads means N-1 background workers.
 *
 * Thread count resolution (ThreadPool::defaultThreads):
 *   1. ZKPHIRE_THREADS environment variable, when set to a positive integer;
 *   2. std::thread::hardware_concurrency() otherwise (a value of 0 or 1
 *      falls back to fully serial execution — no workers are spawned).
 *
 * Nested parallel regions run inline on the caller: a worker that reaches a
 * parallelFor inside a chunk body executes it serially, which keeps nesting
 * deadlock-free without a work-stealing scheduler.
 */
#ifndef ZKPHIRE_RT_THREAD_POOL_HPP
#define ZKPHIRE_RT_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace zkphire::rt {

class ThreadPool
{
  public:
    /** Chunk body: [chunkBegin, chunkEnd) plus the chunk's ordinal index. */
    using ChunkFn =
        std::function<void(std::size_t, std::size_t, std::size_t)>;

    /**
     * @param threads Total parallelism including the caller; N spawns N-1
     *                workers. 0 means defaultThreads().
     * @param numa_node With ZKPHIRE_NUMA enabled (rt/numa.hpp): -1 pins
     *                  workers round-robin across nodes (the global pool's
     *                  policy), >= 0 pins every worker to that node (a
     *                  ProofService lane's private pool). With NUMA
     *                  disabled — the default — placement is untouched.
     */
    explicit ThreadPool(unsigned threads = 0, int numa_node = -1);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallelism (workers + caller). Always >= 1. */
    unsigned numThreads() const { return nThreads; }

    /**
     * Execute body over [begin, end) split into ceil(n/grain) chunks.
     * Blocks until every chunk completed; rethrows the first exception a
     * chunk threw. Called from inside a pool worker (nested region) or with
     * an empty range, it degrades to an inline serial loop.
     *
     * @param maxWorkers Cap on participating threads (0 = numThreads()).
     */
    void forChunks(std::size_t begin, std::size_t end, std::size_t grain,
                   const ChunkFn &body, unsigned maxWorkers = 0);

    /** Process-wide pool sized by defaultThreads(), created on first use. */
    static ThreadPool &global();

    /** Resolve ZKPHIRE_THREADS / hardware_concurrency (see file docs). */
    static unsigned defaultThreads();

    /** True when the current thread is executing a pool chunk. */
    static bool insideWorker();

  private:
    struct Job {
        std::size_t begin = 0;
        std::size_t grain = 1;
        std::size_t numChunks = 0;
        const ChunkFn *body = nullptr;
        unsigned maxWorkers = 0;
        std::atomic<std::size_t> nextChunk{0};
        std::atomic<std::size_t> doneChunks{0};
        std::atomic<unsigned> activeWorkers{0};
        std::exception_ptr error;
        std::mutex errorMu;
    };

    void workerLoop();
    void drainChunks(Job &job);

    unsigned nThreads;
    std::vector<std::thread> workers;
    std::mutex mu;                  // guards job/generation/stopping
    std::mutex regionMu;            // serializes concurrent forChunks callers
    std::condition_variable cvJob;  // workers wait for a new job
    std::condition_variable cvDone; // caller waits for completion
    Job *job = nullptr;
    std::uint64_t generation = 0;
    bool stopping = false;
};

} // namespace zkphire::rt

#endif // ZKPHIRE_RT_THREAD_POOL_HPP
