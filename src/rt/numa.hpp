/**
 * @file
 * Minimal NUMA topology discovery + thread placement for the runtime.
 *
 * Everything here is gated on the ZKPHIRE_NUMA environment variable: unset
 * (or "0"), every call degrades to a no-op and the runtime behaves exactly
 * as before — including on single-node machines, where binding would only
 * add syscalls. When enabled on a multi-node Linux host:
 *
 *   - the global ThreadPool's workers are pinned round-robin across nodes,
 *     so the first-touch pages of a chunk land on the node of the worker
 *     that fills it (streaming chunk writers ARE the consumers — see
 *     poly::eqTableInto — which is what makes first-touch placement work);
 *   - each engine::ProofService lane's private pool is pinned wholly to
 *     one node (lane index modulo node count), so a lane's tables, slab
 *     pages, and workers stay local to each other.
 *
 * Placement never changes any computed value — proof transcripts are
 * byte-identical with ZKPHIRE_NUMA on, off, or unsupported.
 */
#ifndef ZKPHIRE_RT_NUMA_HPP
#define ZKPHIRE_RT_NUMA_HPP

#include <cstddef>
#include <vector>

namespace zkphire::rt::numa {

/** True when ZKPHIRE_NUMA is set (non-"0") and >= 2 nodes were found. */
bool enabled();

/** Detected node count (1 when the topology is unreadable). */
std::size_t numNodes();

/** CPU ids of each node, parsed from /sys/devices/system/node; empty when
 *  the topology is unreadable (non-Linux, masked sysfs). */
const std::vector<std::vector<int>> &nodeCpus();

/**
 * Pin the calling thread to `node`'s CPU set (sched_setaffinity). Returns
 * false — changing nothing — when NUMA is disabled, the node is unknown,
 * or the syscall fails; callers never need to check.
 */
bool bindCurrentThreadToNode(std::size_t node);

} // namespace zkphire::rt::numa

#endif // ZKPHIRE_RT_NUMA_HPP
