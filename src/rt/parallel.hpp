/**
 * @file
 * Data-parallel primitives over the chunked ThreadPool.
 *
 * parallelFor / parallelReduce are the only interfaces the kernels use; both
 * guarantee results bit-identical to a serial loop. parallelReduce combines
 * one accumulator per chunk in ascending chunk order, so even non-commutative
 * combines are deterministic (field addition is exact, so for Fr sums any
 * order would match — the ordering guarantee keeps the contract simple).
 *
 * ScopedThreads overrides the effective parallelism on the current thread for
 * the duration of a scope; ScopedConfig additionally overrides the chunk-size
 * floor and the target pool from an rt::Config. Prover entry points apply
 * their Config parameter with ScopedConfig, and the equivalence tests use
 * ScopedThreads to pin 1/2/N-thread runs.
 */
#ifndef ZKPHIRE_RT_PARALLEL_HPP
#define ZKPHIRE_RT_PARALLEL_HPP

#include <cstddef>
#include <utility>
#include <vector>

#include "rt/config.hpp"
#include "rt/thread_pool.hpp"

namespace zkphire::rt {

namespace detail {
inline thread_local unsigned t_threadOverride = 0;
inline thread_local std::size_t t_minGrainOverride = 0;
inline thread_local ThreadPool *t_poolOverride = nullptr;
inline thread_local std::size_t t_streamThresholdOverride = 0;
inline thread_local std::size_t t_streamChunkOverride = 0;
} // namespace detail

/** Pool that parallel regions started by the current thread submit to. */
inline ThreadPool &
currentPool()
{
    if (detail::t_poolOverride != nullptr)
        return *detail::t_poolOverride;
    return ThreadPool::global();
}

/** Effective parallelism for regions started by the current thread. */
inline unsigned
currentThreads()
{
    if (detail::t_threadOverride != 0)
        return detail::t_threadOverride;
    return currentPool().numThreads();
}

/** Ambient stream-threshold override (0 = unset; poly::currentStorePolicy
 *  falls back to the ZKPHIRE_STREAM* environment defaults). */
inline std::size_t
currentStreamThreshold()
{
    return detail::t_streamThresholdOverride;
}

/** Ambient stream-chunk override (0 = unset, same fallback rule). */
inline std::size_t
currentStreamChunk()
{
    return detail::t_streamChunkOverride;
}

/**
 * RAII override of currentThreads() on this thread. 0 means "inherit": the
 * enclosing override (if any) stays in effect, so a kernel's default
 * threads == 0 parameter cannot cancel a caller's explicit pin.
 */
class ScopedThreads
{
  public:
    explicit ScopedThreads(unsigned threads)
        : saved(detail::t_threadOverride)
    {
        if (threads != 0)
            detail::t_threadOverride = threads;
    }
    ~ScopedThreads() { detail::t_threadOverride = saved; }
    ScopedThreads(const ScopedThreads &) = delete;
    ScopedThreads &operator=(const ScopedThreads &) = delete;

  private:
    unsigned saved;
};

/**
 * RAII application of a full rt::Config on this thread: thread budget,
 * chunk-size floor, and target pool. Zero/null fields inherit the enclosing
 * setting (same "cannot cancel a caller's pin" rule as ScopedThreads).
 */
class ScopedConfig
{
  public:
    explicit ScopedConfig(const Config &cfg)
        : threadScope(cfg.threads),
          savedGrain(detail::t_minGrainOverride),
          savedPool(detail::t_poolOverride),
          savedStreamThreshold(detail::t_streamThresholdOverride),
          savedStreamChunk(detail::t_streamChunkOverride)
    {
        if (cfg.minGrain != 0)
            detail::t_minGrainOverride = cfg.minGrain;
        if (cfg.pool != nullptr)
            detail::t_poolOverride = cfg.pool;
        if (cfg.streamThreshold != 0)
            detail::t_streamThresholdOverride = cfg.streamThreshold;
        if (cfg.streamChunk != 0)
            detail::t_streamChunkOverride = cfg.streamChunk;
    }
    ~ScopedConfig()
    {
        detail::t_minGrainOverride = savedGrain;
        detail::t_poolOverride = savedPool;
        detail::t_streamThresholdOverride = savedStreamThreshold;
        detail::t_streamChunkOverride = savedStreamChunk;
    }
    ScopedConfig(const ScopedConfig &) = delete;
    ScopedConfig &operator=(const ScopedConfig &) = delete;

  private:
    ScopedThreads threadScope;
    std::size_t savedGrain;
    ThreadPool *savedPool;
    std::size_t savedStreamThreshold;
    std::size_t savedStreamChunk;
};

namespace detail {

/** Default grain: ~4 chunks per thread, at least minGrain indices each.
 *  An ambient ScopedConfig minGrain raises the floor further. */
inline std::size_t
autoGrain(std::size_t n, unsigned threads, std::size_t minGrain)
{
    if (t_minGrainOverride > minGrain)
        minGrain = t_minGrainOverride;
    std::size_t target = std::size_t(threads) * 4;
    std::size_t grain = (n + target - 1) / target;
    return grain < minGrain ? minGrain : grain;
}

} // namespace detail

/**
 * Grain the primitives would pick for an n-element range at the current
 * thread count. Exposed for kernels that need the same chunk decomposition
 * across two passes (e.g. batch inversion's forward/backward sweeps).
 */
inline std::size_t
suggestedGrain(std::size_t n, std::size_t minGrain = 1)
{
    return detail::autoGrain(n, currentThreads(), minGrain);
}

/**
 * Run body(chunkBegin, chunkEnd) over [begin, end).
 *
 * @param grain Chunk size; 0 picks one yielding ~4 chunks per thread.
 */
template <class Body>
void
parallelForChunks(std::size_t begin, std::size_t end, Body &&body,
                  std::size_t grain = 0, std::size_t minGrain = 1)
{
    if (end <= begin)
        return;
    const unsigned threads = currentThreads();
    if (grain == 0)
        grain = detail::autoGrain(end - begin, threads, minGrain);
    currentPool().forChunks(
        begin, end, grain,
        [&](std::size_t b, std::size_t e, std::size_t) { body(b, e); },
        threads);
}

/** Run body(i) for every i in [begin, end). */
template <class Body>
void
parallelFor(std::size_t begin, std::size_t end, Body &&body,
            std::size_t grain = 0, std::size_t minGrain = 1)
{
    parallelForChunks(
        begin, end,
        [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                body(i);
        },
        grain, minGrain);
}

/**
 * Map-reduce over [begin, end): mapChunk(chunkBegin, chunkEnd) -> T per
 * chunk, folded left-to-right with combine(acc, chunkValue) starting from
 * identity. Chunk accumulators are combined in ascending chunk order on the
 * calling thread, so the result is deterministic for any combine.
 */
template <class T, class MapChunk, class Combine>
T
parallelReduce(std::size_t begin, std::size_t end, T identity,
               MapChunk &&mapChunk, Combine &&combine, std::size_t grain = 0,
               std::size_t minGrain = 1)
{
    if (end <= begin)
        return identity;
    const unsigned threads = currentThreads();
    const std::size_t n = end - begin;
    if (grain == 0)
        grain = detail::autoGrain(n, threads, minGrain);
    const std::size_t numChunks = (n + grain - 1) / grain;

    std::vector<T> partial(numChunks, identity);
    currentPool().forChunks(
        begin, end, grain,
        [&](std::size_t b, std::size_t e, std::size_t c) {
            partial[c] = mapChunk(b, e);
        },
        threads);

    T acc = std::move(identity);
    for (std::size_t c = 0; c < numChunks; ++c)
        acc = combine(std::move(acc), std::move(partial[c]));
    return acc;
}

} // namespace zkphire::rt

#endif // ZKPHIRE_RT_PARALLEL_HPP
