#include "rt/numa.hpp"

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#ifdef __linux__
#include <sched.h>
#endif

namespace zkphire::rt::numa {

namespace {

/** Parse a sysfs cpulist ("0-3,8,10-11") into explicit CPU ids. */
std::vector<int>
parseCpuList(const std::string &list)
{
    std::vector<int> cpus;
    std::stringstream ss(list);
    std::string range;
    while (std::getline(ss, range, ',')) {
        if (range.empty())
            continue;
        const std::size_t dash = range.find('-');
        const int lo = std::atoi(range.c_str());
        const int hi = dash == std::string::npos
                           ? lo
                           : std::atoi(range.c_str() + dash + 1);
        for (int c = lo; c <= hi; ++c)
            cpus.push_back(c);
    }
    return cpus;
}

std::vector<std::vector<int>>
discoverNodes()
{
    std::vector<std::vector<int>> nodes;
#ifdef __linux__
    for (std::size_t n = 0;; ++n) {
        std::ifstream f("/sys/devices/system/node/node" + std::to_string(n) +
                        "/cpulist");
        if (!f.is_open())
            break;
        std::string list;
        std::getline(f, list);
        std::vector<int> cpus = parseCpuList(list);
        if (!cpus.empty())
            nodes.push_back(std::move(cpus));
    }
#endif
    return nodes;
}

} // namespace

const std::vector<std::vector<int>> &
nodeCpus()
{
    static const std::vector<std::vector<int>> nodes = discoverNodes();
    return nodes;
}

std::size_t
numNodes()
{
    const std::size_t n = nodeCpus().size();
    return n == 0 ? 1 : n;
}

bool
enabled()
{
    static const bool on = [] {
        const char *env = std::getenv("ZKPHIRE_NUMA");
        if (env == nullptr || std::strcmp(env, "0") == 0)
            return false;
        return numNodes() >= 2;
    }();
    return on;
}

bool
bindCurrentThreadToNode(std::size_t node)
{
#ifdef __linux__
    if (!enabled() || node >= nodeCpus().size())
        return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    for (int c : nodeCpus()[node])
        if (c >= 0 && std::size_t(c) < CPU_SETSIZE)
            CPU_SET(c, &set);
    return sched_setaffinity(0, sizeof(set), &set) == 0;
#else
    (void)node;
    return false;
#endif
}

} // namespace zkphire::rt::numa
