#include "rt/failpoint.hpp"

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <random>
#include <system_error>
#include <thread>

namespace zkphire::rt {

namespace {

struct ArmedSpec {
    FailSpec spec;
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
    std::mt19937_64 rng;
};

/** fpMu is a leaf lock (see tools/lint/zkphire_lint.json): nothing is ever
 *  acquired while holding it, and injection sites are coarse (per chunk /
 *  round / syscall), so a plain mutex around the registry is cheap enough. */
std::mutex fpMu;
std::map<std::string, ArmedSpec> &
registry()
{
    static std::map<std::string, ArmedSpec> r;
    return r;
}

std::once_flag envOnce;

void
refreshArmedCountLocked()
{
    detail::g_armedFailpoints.store(
        std::uint32_t(registry().size()), std::memory_order_relaxed);
}

/** Parse one `site=kind[:opt=..]*` entry; false on malformed input. */
bool
parseEntry(const std::string &entry, std::string &site, FailSpec &spec)
{
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0)
        return false;
    site = entry.substr(0, eq);
    std::string rest = entry.substr(eq + 1);

    std::size_t pos = 0;
    bool first = true;
    spec = FailSpec{};
    while (pos <= rest.size()) {
        const std::size_t colon = rest.find(':', pos);
        const std::string tok = rest.substr(
            pos, colon == std::string::npos ? std::string::npos : colon - pos);
        pos = colon == std::string::npos ? rest.size() + 1 : colon + 1;
        if (tok.empty())
            continue;
        if (first) {
            first = false;
            if (tok == "throw")
                spec.kind = FailKind::Throw;
            else if (tok == "enomem")
                spec.kind = FailKind::Enomem;
            else if (tok == "enospc")
                spec.kind = FailKind::Enospc;
            else if (tok == "emfile")
                spec.kind = FailKind::Emfile;
            else if (tok == "eintr")
                spec.kind = FailKind::Eintr;
            else if (tok == "sleep")
                spec.kind = FailKind::Sleep;
            else
                return false;
            continue;
        }
        const std::size_t keq = tok.find('=');
        if (keq == std::string::npos)
            return false;
        const std::string key = tok.substr(0, keq);
        const std::string val = tok.substr(keq + 1);
        char *end = nullptr;
        if (key == "p") {
            spec.p = std::strtod(val.c_str(), &end);
            if (end == val.c_str() || spec.p < 0.0 || spec.p > 1.0)
                return false;
        } else if (key == "nth") {
            spec.nth = std::strtoull(val.c_str(), &end, 10);
            if (end == val.c_str())
                return false;
        } else if (key == "count") {
            spec.maxFires = std::strtoull(val.c_str(), &end, 10);
            if (end == val.c_str())
                return false;
        } else if (key == "seed") {
            spec.seed = std::strtoull(val.c_str(), &end, 10);
            if (end == val.c_str())
                return false;
        } else if (key == "ms") {
            spec.sleepMs = std::strtoull(val.c_str(), &end, 10);
            if (end == val.c_str())
                return false;
        } else {
            return false;
        }
    }
    return true;
}

std::size_t
applyScheduleLocked(const std::string &schedule)
{
    std::size_t applied = 0;
    std::size_t pos = 0;
    while (pos <= schedule.size()) {
        const std::size_t semi = schedule.find(';', pos);
        const std::string entry = schedule.substr(
            pos, semi == std::string::npos ? std::string::npos : semi - pos);
        pos = semi == std::string::npos ? schedule.size() + 1 : semi + 1;
        if (entry.empty())
            continue;
        std::string site;
        FailSpec spec;
        if (!parseEntry(entry, site, spec))
            continue;
        ArmedSpec armed;
        armed.spec = spec;
        armed.rng.seed(spec.seed);
        registry()[site] = std::move(armed);
        ++applied;
    }
    refreshArmedCountLocked();
    return applied;
}

std::size_t
loadEnvLocked()
{
    const char *env = std::getenv("ZKPHIRE_FAILPOINTS");
    if (env == nullptr || *env == '\0') {
        refreshArmedCountLocked();
        return 0;
    }
    return applyScheduleLocked(env);
}

/** First-use hook: the armed counter starts at 1 so the very first site
 *  hit takes the slow path and loads ZKPHIRE_FAILPOINTS; the count is then
 *  corrected to the real armed-spec count (0 when the env is unset). */
void
ensureEnvLoaded()
{
    std::call_once(envOnce, [] {
        std::lock_guard<std::mutex> lk(fpMu);
        loadEnvLocked();
    });
}

[[noreturn]] void
throwForKind(FailKind kind, const char *site)
{
    switch (kind) {
    case FailKind::Enomem:
        throw std::bad_alloc();
    case FailKind::Enospc:
        throw std::system_error(
            ENOSPC, std::generic_category(),
            std::string("injected ENOSPC at failpoint '") + site + "'");
    case FailKind::Emfile:
        throw std::system_error(
            EMFILE, std::generic_category(),
            std::string("injected EMFILE at failpoint '") + site + "'");
    default:
        throw InjectedFault(site);
    }
}

int
errnoForKind(FailKind kind)
{
    switch (kind) {
    case FailKind::Enomem:
        return ENOMEM;
    case FailKind::Enospc:
        return ENOSPC;
    case FailKind::Emfile:
        return EMFILE;
    case FailKind::Eintr:
        return EINTR;
    default:
        return EIO;
    }
}

} // namespace

namespace detail {

std::atomic<std::uint32_t> g_armedFailpoints{1};

int
failpointHit(const char *site, bool throwSite)
{
    ensureEnvLoaded();
    FailKind kind{};
    std::uint64_t sleepMs = 0;
    {
        std::lock_guard<std::mutex> lk(fpMu);
        auto it = registry().find(site);
        if (it == registry().end())
            return 0;
        ArmedSpec &armed = it->second;
        ++armed.hits;
        const FailSpec &spec = armed.spec;
        if (armed.fires >= spec.maxFires)
            return 0;
        if (spec.nth != 0) {
            if (armed.hits != spec.nth)
                return 0;
        } else if (spec.p < 1.0) {
            const double draw =
                std::uniform_real_distribution<double>(0.0, 1.0)(armed.rng);
            if (draw >= spec.p)
                return 0;
        }
        ++armed.fires;
        kind = spec.kind;
        sleepMs = spec.sleepMs;
    }
    if (kind == FailKind::Sleep) {
        std::this_thread::sleep_for(std::chrono::milliseconds(sleepMs));
        return 0;
    }
    if (!throwSite)
        return errnoForKind(kind);
    if (kind == FailKind::Eintr)
        return 0; // EINTR only makes sense at a syscall wrapper
    throwForKind(kind, site);
}

} // namespace detail

void
setFailpoint(const std::string &site, const FailSpec &spec)
{
    ensureEnvLoaded();
    std::lock_guard<std::mutex> lk(fpMu);
    ArmedSpec armed;
    armed.spec = spec;
    armed.rng.seed(spec.seed);
    registry()[site] = std::move(armed);
    refreshArmedCountLocked();
}

void
clearFailpoint(const std::string &site)
{
    ensureEnvLoaded();
    std::lock_guard<std::mutex> lk(fpMu);
    registry().erase(site);
    refreshArmedCountLocked();
}

void
clearFailpoints()
{
    ensureEnvLoaded();
    std::lock_guard<std::mutex> lk(fpMu);
    registry().clear();
    refreshArmedCountLocked();
}

std::size_t
setFailpointsFromSpec(const std::string &schedule)
{
    ensureEnvLoaded();
    std::lock_guard<std::mutex> lk(fpMu);
    return applyScheduleLocked(schedule);
}

std::size_t
loadFailpointsFromEnv()
{
    ensureEnvLoaded();
    std::lock_guard<std::mutex> lk(fpMu);
    return loadEnvLocked();
}

std::uint64_t
failpointHits(const std::string &site)
{
    ensureEnvLoaded();
    std::lock_guard<std::mutex> lk(fpMu);
    const auto it = registry().find(site);
    return it == registry().end() ? 0 : it->second.hits;
}

std::uint64_t
failpointFires(const std::string &site)
{
    ensureEnvLoaded();
    std::lock_guard<std::mutex> lk(fpMu);
    const auto it = registry().find(site);
    return it == registry().end() ? 0 : it->second.fires;
}

} // namespace zkphire::rt
