#include "rt/thread_pool.hpp"

#include <cstdlib>

#include "rt/config.hpp"
#include "rt/failpoint.hpp"
#include "rt/numa.hpp"

namespace zkphire::rt {

Config
Config::defaults()
{
    Config cfg;
    cfg.threads = ThreadPool::defaultThreads();
    return cfg;
}

namespace {
thread_local bool t_insideWorker = false;
} // namespace

bool
ThreadPool::insideWorker()
{
    return t_insideWorker;
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("ZKPHIRE_THREADS")) {
        char *endp = nullptr;
        long v = std::strtol(env, &endp, 10);
        if (endp != env && v > 0)
            return v > 256 ? 256u : unsigned(v);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1u : hw;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(unsigned threads, int numa_node)
    : nThreads(threads == 0 ? defaultThreads() : threads)
{
    workers.reserve(nThreads - 1);
    for (unsigned i = 0; i + 1 < nThreads; ++i)
        workers.emplace_back([this, i, numa_node] {
            // First-touch NUMA placement: a pinned worker's freshly faulted
            // pages land on its node, and streaming chunk writers are their
            // own consumers, so pinning the workers places the data. No-op
            // unless ZKPHIRE_NUMA is set on a multi-node host.
            if (numa::enabled())
                numa::bindCurrentThreadToNode(
                    numa_node >= 0 ? std::size_t(numa_node)
                                   : std::size_t(i) % numa::numNodes());
            workerLoop();
        });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(mu);
        stopping = true;
    }
    cvJob.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::drainChunks(Job &j)
{
    const std::size_t n = j.numChunks;
    for (;;) {
        std::size_t c = j.nextChunk.fetch_add(1, std::memory_order_relaxed);
        if (c >= n)
            break;
        bool failed;
        {
            std::lock_guard<std::mutex> lk(j.errorMu);
            failed = j.error != nullptr;
        }
        if (!failed) { // after a failure, drain remaining chunks unexecuted
            try {
                failpoint("rt.worker");
                (*j.body)(j.begin + c * j.grain, j.begin + (c + 1) * j.grain,
                          c);
            } catch (...) {
                std::lock_guard<std::mutex> lk(j.errorMu);
                if (!j.error)
                    j.error = std::current_exception();
            }
        }
        j.doneChunks.fetch_add(1, std::memory_order_acq_rel);
    }
}

void
ThreadPool::workerLoop()
{
    t_insideWorker = true;
    std::uint64_t seenGeneration = 0;
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        cvJob.wait(lk, [&] {
            return stopping || (job != nullptr && generation != seenGeneration);
        });
        if (stopping)
            return;
        seenGeneration = generation;
        Job *j = job;
        // The caller occupies one of the maxWorkers slots.
        if (j->activeWorkers + 1 >= j->maxWorkers)
            continue;
        ++j->activeWorkers;
        lk.unlock();
        drainChunks(*j);
        lk.lock();
        --j->activeWorkers;
        cvDone.notify_all();
    }
}

void
ThreadPool::forChunks(std::size_t begin, std::size_t end, std::size_t grain,
                      const ChunkFn &body, unsigned maxWorkers)
{
    if (end <= begin)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t n = end - begin;
    const std::size_t numChunks = (n + grain - 1) / grain;

    // Serial paths: pool of one, nested region inside a worker, or a single
    // chunk. The chunk decomposition is identical either way, so serial and
    // parallel execution produce bit-identical results.
    if (nThreads <= 1 || t_insideWorker || numChunks == 1 || workers.empty() ||
        maxWorkers == 1) {
        for (std::size_t c = 0; c < numChunks; ++c) {
            std::size_t b = begin + c * grain;
            std::size_t e = b + grain < end ? b + grain : end;
            failpoint("rt.worker"); // same site as the pooled path, so a
                                    // schedule covers both execution modes
            body(b, e, c);
        }
        return;
    }

    std::lock_guard<std::mutex> region(regionMu);

    Job j;
    j.begin = begin;
    j.grain = grain;
    j.numChunks = numChunks;
    j.maxWorkers = maxWorkers == 0 ? nThreads : maxWorkers;

    // Clamp the final chunk's end to the true range end.
    ChunkFn clamped = [&](std::size_t b, std::size_t e, std::size_t c) {
        body(b, e < end ? e : end, c);
    };
    j.body = &clamped;

    {
        std::lock_guard<std::mutex> lk(mu);
        job = &j;
        ++generation;
    }
    cvJob.notify_all();

    // The caller participates too. Flag it as a worker for the duration so
    // nested parallel regions inside its chunks run inline instead of
    // re-entering forChunks (which would self-deadlock on regionMu).
    t_insideWorker = true;
    drainChunks(j);
    t_insideWorker = false;

    {
        // j lives on this stack frame: wait until every chunk completed AND
        // no worker still holds a reference before letting it go out of scope.
        std::unique_lock<std::mutex> lk(mu);
        cvDone.wait(lk, [&] {
            return j.doneChunks.load(std::memory_order_acquire) == numChunks &&
                   j.activeWorkers == 0;
        });
        job = nullptr;
    }
    if (j.error)
        std::rethrow_exception(j.error);
}

} // namespace zkphire::rt
