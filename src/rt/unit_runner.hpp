/**
 * @file
 * UnitRunner: the seam through which one proof's independent work units are
 * sharded across service lanes.
 *
 * The chunked ThreadPool parallelizes *within* one lane's private pool; a
 * UnitRunner parallelizes *across* lanes. A kernel with W independent,
 * index-addressed work units (per-column commitment MSMs, per-round
 * sumcheck range splits, the two PCS opening chains) hands them to the
 * ambient runner; each unit may execute on another lane's thread under that
 * lane's own rt::Config. Unit i writes only to index-i output slots and the
 * caller merges slots in ascending index order, so results are bit-identical
 * to running the units inline — the same contract parallelReduce gives
 * within a pool, lifted one level up.
 *
 * The runner is ambient (thread-local, like ScopedConfig) so deep call
 * sites — a sumcheck round evaluation five frames below hyperplonk::prove —
 * can reach it without threading a parameter through every signature.
 * engine::ShardGroup is the production implementation; a null ambient
 * runner (the default, and always the case on worker/helper threads) means
 * "run units inline".
 */
#ifndef ZKPHIRE_RT_UNIT_RUNNER_HPP
#define ZKPHIRE_RT_UNIT_RUNNER_HPP

#include <functional>
#include <span>

namespace zkphire::rt {

class UnitRunner
{
  public:
    virtual ~UnitRunner() = default;

    /** Number of executors (1 + helper lanes). Callers use it to size the
     *  unit decomposition; width() == 1 means sharding buys nothing. */
    virtual unsigned width() const = 0;

    /**
     * Execute every unit, blocking until all completed. Units may run
     * concurrently on other lanes' threads; implementations rethrow the
     * first unit exception after the batch drains. Callers must make unit i
     * write only to its own output slot and merge slots in index order.
     */
    virtual void run(std::span<const std::function<void()>> units) = 0;
};

namespace detail {
inline thread_local UnitRunner *t_unitRunner = nullptr;
} // namespace detail

/** Runner for work units started by the current thread (null = inline). */
inline UnitRunner *
currentUnitRunner()
{
    return detail::t_unitRunner;
}

/**
 * RAII override of currentUnitRunner() on this thread. Unlike ScopedThreads,
 * null is set verbatim (not "inherit"): a unit body must not re-shard
 * through the group that is already executing it, so runner implementations
 * clear the ambient runner around each unit.
 */
class ScopedUnitRunner
{
  public:
    explicit ScopedUnitRunner(UnitRunner *runner)
        : saved(detail::t_unitRunner)
    {
        detail::t_unitRunner = runner;
    }
    ~ScopedUnitRunner() { detail::t_unitRunner = saved; }
    ScopedUnitRunner(const ScopedUnitRunner &) = delete;
    ScopedUnitRunner &operator=(const ScopedUnitRunner &) = delete;

  private:
    UnitRunner *saved;
};

} // namespace zkphire::rt

#endif // ZKPHIRE_RT_UNIT_RUNNER_HPP
