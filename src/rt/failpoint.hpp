/**
 * @file
 * Named, compiled-in fault-injection points.
 *
 * A failpoint is a call to rt::failpoint("site") (throw-style sites) or
 * rt::failpointErrno("site") (syscall-wrapper sites) at a place where the
 * production code can fail for real: slab creation/growth, the streamed
 * chunk producer, MSM accumulation, sumcheck rounds, pool worker chunks.
 * Disarmed — the normal state — a site costs one relaxed atomic load.
 * Armed, the site consults its FailSpec and injects the configured error:
 *
 *   - throw-style sites raise the exception the spec's kind maps to
 *     (InjectedFault for `throw`, std::bad_alloc for `enomem`,
 *     std::system_error(ENOSPC/EMFILE) for the disk kinds), exactly the
 *     types the real failure would produce — so recovery code is exercised
 *     against the exceptions it must classify in production;
 *   - errno-style sites return the errno the spec maps to (0 = no fault),
 *     so a syscall wrapper can simulate ENOSPC/EMFILE/EINTR without the
 *     kernel's help;
 *   - the `sleep` kind blocks the site for a configured duration instead of
 *     failing it, which lets tests widen a race window deterministically
 *     (e.g. guarantee a cancel lands mid-round).
 *
 * Arming is programmatic (setFailpoint) or environmental: ZKPHIRE_FAILPOINTS
 * holds a `;`-separated schedule of `site=kind[:p=F][:nth=N][:count=C]
 * [:seed=S][:ms=M]` entries, parsed on first use. Probability draws come
 * from a per-spec seeded PRNG, so a schedule is reproducible for a fixed
 * hit order. Catalog of compiled-in sites: DESIGN.md "Fault tolerance".
 */
#ifndef ZKPHIRE_RT_FAILPOINT_HPP
#define ZKPHIRE_RT_FAILPOINT_HPP

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace zkphire::rt {

/** What an armed site injects when it fires. */
enum class FailKind : std::uint8_t {
    Throw,  ///< InjectedFault (generic, non-resource — never retried).
    Enomem, ///< std::bad_alloc / errno ENOMEM.
    Enospc, ///< std::system_error ENOSPC / errno ENOSPC.
    Emfile, ///< std::system_error EMFILE / errno EMFILE.
    Eintr,  ///< errno EINTR (throw-style sites treat it as a no-op).
    Sleep,  ///< Block for sleepMs, then continue without failing.
};

/** How an armed site decides whether a given hit fires. */
struct FailSpec {
    FailKind kind = FailKind::Throw;
    /** Fire probability per hit (after the nth gate). */
    double p = 1.0;
    /** When > 0: only hit number nth (1-based, cumulative across the
     *  process) can fire — the idiom for "fail once, then recover". */
    std::uint64_t nth = 0;
    /** Cap on total fires; nth > 0 implies an effective cap of 1. */
    std::uint64_t maxFires = UINT64_MAX;
    /** Seed for the per-spec probability stream. */
    std::uint64_t seed = 0x5eedf001u;
    /** Duration for FailKind::Sleep (milliseconds). */
    std::uint64_t sleepMs = 10;
};

/** The exception `throw`-kind failpoints raise. Deliberately NOT derived
 *  from the resource-exhaustion types, so retry policies that only retry
 *  ENOMEM/ENOSPC classes treat it as a hard prover error. */
class InjectedFault : public std::runtime_error
{
  public:
    explicit InjectedFault(const std::string &site)
        : std::runtime_error("injected fault at failpoint '" + site + "'"),
          site_(site)
    {
    }
    const std::string &site() const { return site_; }

  private:
    std::string site_;
};

/** Arm (or re-arm, resetting its counters) one site. */
void setFailpoint(const std::string &site, const FailSpec &spec);
/** Disarm one site. */
void clearFailpoint(const std::string &site);
/** Disarm every site and reset all counters. */
void clearFailpoints();

/** Parse a ZKPHIRE_FAILPOINTS-format schedule and arm every entry on top
 *  of whatever is already armed; returns the number of entries applied.
 *  Malformed entries are skipped. */
std::size_t setFailpointsFromSpec(const std::string &schedule);
/** Re-read ZKPHIRE_FAILPOINTS (the lazy first-hit load calls this once). */
std::size_t loadFailpointsFromEnv();

/** Times an armed spec for `site` was consulted / actually fired. Both are
 *  0 for sites that are not (or no longer) armed. */
std::uint64_t failpointHits(const std::string &site);
std::uint64_t failpointFires(const std::string &site);

namespace detail {
extern std::atomic<std::uint32_t> g_armedFailpoints;
/** Slow path: consult the armed spec. throwSite selects the injection
 *  style; returns the errno for errno-style sites (0 = no fault). */
int failpointHit(const char *site, bool throwSite);
} // namespace detail

/** Throw-style site: injects by raising the spec's exception. */
inline void
failpoint(const char *site)
{
    if (detail::g_armedFailpoints.load(std::memory_order_relaxed) == 0)
        return;
    detail::failpointHit(site, /*throwSite=*/true);
}

/** Errno-style site: returns the errno to simulate (0 = no fault). */
inline int
failpointErrno(const char *site)
{
    if (detail::g_armedFailpoints.load(std::memory_order_relaxed) == 0)
        return 0;
    return detail::failpointHit(site, /*throwSite=*/false);
}

} // namespace zkphire::rt

#endif // ZKPHIRE_RT_FAILPOINT_HPP
