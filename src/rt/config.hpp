/**
 * @file
 * Per-prover runtime configuration.
 *
 * Every prover entry point (hyperplonk::prove, sumcheck::prove / proveZero /
 * proveOpen) takes an rt::Config instead of a raw thread count. A Config
 * bundles the three knobs a prover region can override:
 *
 *   - threads:  total parallelism for the proof's kernels. 0 inherits the
 *               ambient setting (an enclosing ScopedConfig, else the pool's
 *               size — ZKPHIRE_THREADS / hardware concurrency). 1 forces
 *               fully serial execution.
 *   - minGrain: floor on auto-picked chunk sizes. Raising it trades load
 *               balance for lower chunk-dispatch overhead on small tables;
 *               0 keeps each kernel's default. Explicitly-chosen grains are
 *               not affected.
 *   - pool:     the ThreadPool parallel regions submit to. null uses the
 *               process-global pool; engine::ProofService points each job
 *               lane at a private pool so concurrent proofs never contend
 *               on one pool's region lock.
 *
 * Configs are applied with rt::ScopedConfig (rt/parallel.hpp), an RAII
 * thread-local override — so a Config pins every kernel reached from the
 * current thread, including ones that take no config parameter themselves
 * (MLE folds, eq-table builds, batch inversion). Proof transcripts are
 * bit-identical under every Config; only wall-clock changes.
 */
#ifndef ZKPHIRE_RT_CONFIG_HPP
#define ZKPHIRE_RT_CONFIG_HPP

#include <cstddef>

namespace zkphire::rt {

class ThreadPool;

struct Config {
    unsigned threads = 0;       ///< 0 = inherit ambient / runtime default.
    std::size_t minGrain = 0;   ///< 0 = kernel default chunk-size floors.
    ThreadPool *pool = nullptr; ///< null = process-global pool.
    /** Element count at which prover tables switch to the chunk-streaming
     *  (mmap-slab) backend. 0 inherits the ambient setting / the
     *  ZKPHIRE_STREAM* environment defaults; SIZE_MAX disables streaming;
     *  1 forces it for every table (the oracle tests pin this). */
    std::size_t streamThreshold = 0;
    /** Elements per chunk for streaming walks (commit pipeline, eq-table
     *  build). 0 inherits ambient / ZKPHIRE_STREAM_CHUNK / 2^20. */
    std::size_t streamChunk = 0;

    /** Config with `threads` resolved to the runtime default
     *  (ZKPHIRE_THREADS when set, hardware concurrency otherwise). */
    static Config defaults();
};

} // namespace zkphire::rt

#endif // ZKPHIRE_RT_CONFIG_HPP
