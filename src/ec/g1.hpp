/**
 * @file
 * BLS12-381 G1 group arithmetic.
 *
 * The curve is y^2 = x^3 + 4 over Fq. Points are kept in Jacobian
 * projective coordinates on the hot path (the hardware's fully-pipelined
 * PADD units operate on projective points) with affine conversion at
 * API boundaries. Used by the multilinear-KZG commitment scheme and the
 * MSM kernels that dominate HyperPlonk's runtime.
 */
#ifndef ZKPHIRE_EC_G1_HPP
#define ZKPHIRE_EC_G1_HPP

#include <span>
#include <vector>

#include "ff/fq.hpp"
#include "ff/fr.hpp"
#include "ff/rng.hpp"

namespace zkphire::ec {

using ff::Fq;
using ff::Fr;

/** Affine G1 point; (0, 0, infinity=true) encodes the identity. */
struct G1Affine {
    Fq x;
    Fq y;
    bool infinity = true;

    /** Membership test: y^2 == x^3 + 4 (identity passes). */
    bool isOnCurve() const;

    bool operator==(const G1Affine &o) const;
};

/** Jacobian G1 point (X/Z^2, Y/Z^3); Z == 0 encodes the identity. */
struct G1Jacobian {
    Fq X;
    Fq Y;
    Fq Z;

    /** The group identity. */
    static G1Jacobian identity();

    /** Lift an affine point. */
    static G1Jacobian fromAffine(const G1Affine &p);

    bool isIdentity() const { return Z.isZero(); }

    /** Full Jacobian + Jacobian addition (handles doubling/identity). */
    G1Jacobian add(const G1Jacobian &o) const;

    /** Mixed Jacobian + affine addition — the hardware PADD's case. */
    G1Jacobian addMixed(const G1Affine &o) const;

    /** Point doubling. */
    G1Jacobian dbl() const;

    G1Jacobian neg() const;

    /**
     * Scalar multiplication (canonical scalar bits). When the GLV
     * parameters verify, k splits as k1 + lambda*k2 (both halves < 2^128)
     * and a joint Shamir walk over {P, phi(P), P + phi(P)} halves the
     * doubling count; otherwise falls back to mulScalarPlain. Both paths
     * return bit-identical Jacobian coordinates for the same operation
     * sequence domain — equality is locked by the GLV suite via toAffine.
     */
    G1Jacobian mulScalar(const Fr &k) const;

    /** Plain double-and-add oracle for mulScalar; also used by the GLV
     *  parameter self-checks, which run before glv::params() is usable. */
    G1Jacobian mulScalarPlain(const Fr &k) const;

    /** Normalize to affine (one field inversion). */
    G1Affine toAffine() const;

    bool operator==(const G1Jacobian &o) const;
};

/**
 * Normalize many Jacobian points to affine with one shared field inversion
 * (Montgomery's trick over the Z coordinates). Each output equals
 * pts[i].toAffine() exactly — inverses are canonical — at ~5 field muls per
 * point instead of one ~380-mul Fermat inversion each.
 */
std::vector<G1Affine> batchToAffine(std::span<const G1Jacobian> pts);

/** The standard BLS12-381 G1 generator. */
const G1Affine &g1Generator();

/** Deterministic pseudo-random group element: generator * random scalar. */
G1Affine randomG1(ff::Rng &rng);

} // namespace zkphire::ec

#endif // ZKPHIRE_EC_G1_HPP
