/**
 * @file
 * Batched affine point addition (Montgomery-trick bucket accumulation).
 *
 * A Jacobian mixed addition costs 7M + 4S in Fq; an affine addition costs
 * 1I + 2M + 1S, which is cheaper whenever the inversion is amortized over
 * a large batch — Montgomery's trick turns B inversions into one true
 * inversion plus 3B multiplications, bringing the per-addition cost down
 * to ~6 Fq multiplications. The paper's MSM unit (and SZKP's bucket PEs)
 * exploit exactly this: bucket accumulation is a huge set of independent
 * additions whose slope denominators can be inverted together.
 *
 * batchAffineSegmentSums reduces many independent point lists ("segments",
 * one per MSM bucket) to their sums with pairwise halving rounds; each
 * round classifies every pair (identity / cancellation / doubling / generic
 * add), batch-inverts all slope denominators in one shot, and applies the
 * affine formulas. The pairing order is fixed by the segment layout, so
 * results are deterministic regardless of thread count, and inverses are
 * canonical field values, so the output is bit-identical to a serial
 * affine evaluation.
 */
#ifndef ZKPHIRE_EC_BATCH_ADD_HPP
#define ZKPHIRE_EC_BATCH_ADD_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "ec/g1.hpp"

namespace zkphire::ec {

/** Op counts from a batched-affine reduction. */
struct BatchAffineStats {
    std::uint64_t affineAdds = 0;      ///< Slope-based pair additions.
    std::uint64_t batchInversions = 0; ///< Batch-inversion rounds (1 true
                                       ///< field inversion each).
};

/** Reusable scratch for the segment-sum reductions (grown once, reused). */
struct BatchAffineScratch {
    std::vector<std::uint32_t> len;
    std::vector<std::uint8_t> kind;
    /** Slope numerators while staging; the finished slopes (numer *
     *  denom^{-1}, one fused mulVec pass) after the round resolves. */
    std::vector<ff::Fq> numer;
    std::vector<ff::Fq> denom;
    std::vector<ff::Fq> prefix;
    std::vector<G1Affine> buf;      ///< Indexed round-0 output buffer.
    std::vector<std::uint32_t> off; ///< Its compacted segment offsets.
};

/**
 * Sum each segment of `buf` down to one affine point.
 *
 * Segment s occupies buf[off[s] .. off[s+1]); out[s] receives its sum
 * (the identity for empty segments). `buf` is clobbered. All the special
 * cases of the affine group law are handled (identity operands, P + (-P),
 * doubling), so duplicated points and identity entries are fine.
 *
 * @param out   One slot per segment; out.size() + 1 == off.size().
 * @param stats Optional op-count accumulation.
 */
void batchAffineSegmentSums(std::span<G1Affine> buf,
                            std::span<const std::uint32_t> off,
                            std::span<G1Affine> out,
                            BatchAffineScratch &scratch,
                            BatchAffineStats *stats = nullptr);

/**
 * Segment sums over ENCODED point references instead of materialized
 * points: entry e refers to points[e >> 1], negated when (e & 1). The
 * first halving round reads the point array directly and writes its
 * (half-size, compacted) results into scratch.buf, so the caller's
 * scatter pass moves 4-byte indices instead of ~100-byte points — the MSM
 * bucket scatter is bandwidth-bound and this is what makes the shared
 * point walk pay off. Results are identical to materializing the points
 * into a buffer and calling batchAffineSegmentSums.
 */
void batchAffineSegmentSumsIndexed(std::span<const G1Affine> points,
                                   std::span<const std::uint32_t> enc,
                                   std::span<const std::uint32_t> off,
                                   std::span<G1Affine> out,
                                   BatchAffineScratch &scratch,
                                   BatchAffineStats *stats = nullptr);

} // namespace zkphire::ec

#endif // ZKPHIRE_EC_BATCH_ADD_HPP
