/**
 * @file
 * GLV endomorphism scalar decomposition for BLS12-381 G1.
 *
 * BLS12-381's G1 carries the curve endomorphism phi(x, y) = (beta*x, y)
 * where beta is a primitive cube root of unity in Fq; on the r-order
 * subgroup phi acts as multiplication by lambda, a cube root of unity mod
 * r with only ~128 bits (lambda = z^2 - 1 for the BLS parameter z, and
 * r = z^4 - z^2 + 1 = lambda*z^2 + 1). Splitting every scalar as
 *
 *     k = k1 + lambda * k2,   0 <= k1, k2 < 2^128,
 *
 * turns one 255-bit scalar/point pair into two 128-bit pairs (the second
 * against the free-to-compute phi(P)), so a windowed MSM walks half the
 * window passes per point: num_windows drops from ceil(256/c) to
 * ceil(129/c) while the point count doubles — the bucket-add work per
 * window stays the same and the window-fold doublings halve. This is the
 * classic GLV trick the accelerator baselines we compare against (SZKP,
 * zkSpeed; see PAPERS.md) assume on the CPU side.
 *
 * No magic constants: lambda and beta are found at startup as cube roots
 * of unity via Fermat exponentiation (a^((p-1)/3)), disambiguated between
 * the two conjugate roots by (a) lambda's ~128-bit size and (b) checking
 * phi(G) == lambda*G on the actual generator; the Barrett constant
 * floor(2^384 / lambda) comes from a one-time long division. Params are
 * self-verifying — if any check fails, available() is false and MSM falls
 * back to full-width scalars (results are bit-identical either way after
 * affine normalization; the transcript regression locks this).
 *
 * Decomposition is exact over the integers (both halves non-negative), so
 * no mod-r reasoning leaks into the MSM kernel:
 *   c1 = floor(k * g / 2^384) with g = floor(2^384 / lambda)  (<= floor(k/lambda))
 *   k2 = c1,  k1 = k - c1*lambda  (in [0, 3*lambda))
 *   while k1 has more than 128 bits: k1 -= lambda, k2 += 1   (<= 2 rounds)
 */
#ifndef ZKPHIRE_EC_GLV_HPP
#define ZKPHIRE_EC_GLV_HPP

#include <array>

#include "ec/g1.hpp"

namespace zkphire::ec::glv {

using ff::BigInt;
using ff::u64;

/** Bit bound on both decomposition halves; MSM recodes
 *  signedDigitWindows(kHalfBits, c) windows per half. */
inline constexpr std::size_t kHalfBits = 128;

/** Derived GLV constants, computed and verified once at first use. */
struct Params {
    BigInt<4> lambda;        ///< Cube root of unity mod r, ~128 bits.
    Fr lambdaFr;             ///< lambda as a field element (phi's eigenvalue).
    Fq beta;                 ///< Cube root of unity in Fq with phi(G)=lambda*G.
    std::array<u64, 5> g;    ///< floor(2^384 / lambda), the Barrett constant.
    bool ok = false;         ///< All self-checks passed.
};

/** The process-wide parameters (thread-safe one-time init). */
const Params &params();

/** Whether GLV applies on this build (parameter self-checks passed). */
bool available();

/**
 * Split a canonical scalar k < r as k = k1 + lambda*k2 exactly over the
 * integers, with 0 <= k1, k2 < 2^kHalfBits. @pre available().
 */
void decompose(const BigInt<4> &k, BigInt<4> &k1, BigInt<4> &k2);

/** phi(x, y) = (beta*x, y); one Fq multiplication. Identity maps to
 *  itself. phi(P) = lambda*P for P in the r-order subgroup. */
G1Affine endomorphism(const G1Affine &p);

/** Jacobian phi: (beta*X, Y, Z) — beta scales x = X/Z^2 directly. */
G1Jacobian endomorphism(const G1Jacobian &p);

} // namespace zkphire::ec::glv

#endif // ZKPHIRE_EC_GLV_HPP
