/**
 * @file
 * Signed-digit scalar recoding for windowed MSM.
 *
 * A c-bit unsigned Pippenger slicing needs 2^c - 1 buckets per window; the
 * balanced signed-digit form d_w in [-2^(c-1), 2^(c-1)] halves that to
 * 2^(c-1) buckets, because a negative digit reuses bucket |d| with the
 * (free) affine negation (x, -y). This is the scalar-slice preprocessing
 * step of the paper's MSM unit (and of SZKP's bucket-parallel design): the
 * recoding runs once per scalar, in one pass with carry propagation, and
 * every window then reads its digit from a flat array instead of re-slicing
 * the scalar bits.
 */
#ifndef ZKPHIRE_EC_RECODE_HPP
#define ZKPHIRE_EC_RECODE_HPP

#include <cstdint>
#include <cstddef>

#include "ff/fr.hpp"

namespace zkphire::ec {

/**
 * Number of c-bit signed windows needed for scalar_bits-bit scalars:
 * ceil((scalar_bits + 1) / c). The extra bit absorbs the final carry — a
 * scalar with all-ones top bits rounds its top digit up, and the carry
 * lands in a window of its own when the top window is full.
 */
constexpr std::size_t
signedDigitWindows(std::size_t scalar_bits, unsigned c)
{
    return (scalar_bits + c) / c;
}

/**
 * One-pass signed-digit recoding of a canonical scalar.
 *
 * Writes num_windows digits d_w with
 *     sum_w d_w * 2^(c*w) == s   and   d_w in [-2^(c-1), 2^(c-1)]
 * (the boundary value 2^(c-1) stays positive; anything above it borrows
 * 2^c and carries 1 into the next window).
 *
 * @param s           Canonical (non-Montgomery) scalar value.
 * @param c           Window width in bits, 1 <= c <= 16.
 * @param num_windows Must be signedDigitWindows(Fr::modulusBits(), c).
 * @param out         Digit w is written to out[w * stride] (strided so
 *                    callers can lay digits out window-major).
 */
void recodeSignedDigits(const ff::BigInt<ff::Fr::numLimbs> &s, unsigned c,
                        std::size_t num_windows, std::int32_t *out,
                        std::size_t stride);

} // namespace zkphire::ec

#endif // ZKPHIRE_EC_RECODE_HPP
