/**
 * @file
 * Fixed-base scalar multiplication with signed-digit precomputed windows.
 *
 * SRS generation evaluates thousands of scalar multiples of the one
 * generator, so the table build cost amortizes away and per-multiply cost
 * is everything. Three stacked optimizations over the classic unsigned
 * 4-bit window table:
 *
 *  - GLV split (src/ec/glv.hpp): k = k1 + lambda*k2 with ~128-bit halves,
 *    and phi(d * 16^w * B) = d * 16^w * phi(B), so one half-width table
 *    over B plus its endomorphism image covers the full scalar — half the
 *    windows to walk and to precompute.
 *  - Signed digits with precomputed negations: digits in [-8, 8] need only
 *    8 magnitudes per window, and each window stores both (x, y) and
 *    (x, -y) so a negative digit is a plain table read, not a runtime
 *    negation.
 *  - Affine tables, batch-normalized at build (ec::batchToAffine): every
 *    accumulation is a mixed add (~10 muls) instead of a full Jacobian add
 *    (~15), for one shared inversion at construction.
 *
 * When the GLV parameter self-checks fail the table silently falls back to
 * full-width signed windows over the base alone; results are identical
 * group elements either way.
 */
#ifndef ZKPHIRE_EC_FIXED_BASE_HPP
#define ZKPHIRE_EC_FIXED_BASE_HPP

#include <array>
#include <vector>

#include "ec/g1.hpp"

namespace zkphire::ec {

/** Precomputed-window multiplier for one fixed base point. */
class FixedBaseMul
{
  public:
    explicit FixedBaseMul(const G1Affine &base);

    /** k * base. */
    G1Jacobian mul(const Fr &k) const;

  private:
    static constexpr unsigned windowBits = 4;
    /** Signed digits span [-8, 8]; 8 magnitudes per window. */
    static constexpr unsigned halfDigits = 1u << (windowBits - 1);

    /** Entry d-1 holds d * 16^w * B; entry halfDigits + d - 1 its negation. */
    using Window = std::array<G1Affine, 2 * halfDigits>;

    bool useGlv = false;
    std::size_t numWindows = 0;
    std::vector<Window> table;    ///< Windows over base (k1, or the whole k).
    std::vector<Window> phiTable; ///< Windows over phi(base) (k2; GLV only).
};

} // namespace zkphire::ec

#endif // ZKPHIRE_EC_FIXED_BASE_HPP
