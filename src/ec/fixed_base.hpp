/**
 * @file
 * Fixed-base scalar multiplication with 4-bit precomputed windows.
 *
 * SRS generation evaluates thousands of scalar multiples of the one
 * generator; precomputing d * 2^(4w) * G for every window w and digit d
 * turns each multiplication into ~64 additions with no doublings.
 */
#ifndef ZKPHIRE_EC_FIXED_BASE_HPP
#define ZKPHIRE_EC_FIXED_BASE_HPP

#include <array>
#include <vector>

#include "ec/g1.hpp"

namespace zkphire::ec {

/** Precomputed-window multiplier for one fixed base point. */
class FixedBaseMul
{
  public:
    explicit FixedBaseMul(const G1Affine &base);

    /** k * base. */
    G1Jacobian mul(const Fr &k) const;

  private:
    static constexpr unsigned windowBits = 4;
    static constexpr unsigned digitsPerWindow = (1u << windowBits) - 1;
    /** table[w][d-1] = d * 2^(4w) * base. */
    std::vector<std::array<G1Jacobian, digitsPerWindow>> table;
};

} // namespace zkphire::ec

#endif // ZKPHIRE_EC_FIXED_BASE_HPP
