#include "ec/recode.hpp"

#include <cassert>

namespace zkphire::ec {

void
recodeSignedDigits(const ff::BigInt<ff::Fr::numLimbs> &s, unsigned c,
                   std::size_t num_windows, std::int32_t *out,
                   std::size_t stride)
{
    assert(c >= 1 && c <= 16);
    constexpr std::size_t kNumBits = ff::BigInt<ff::Fr::numLimbs>::numBits;
    const std::int32_t full = std::int32_t(1) << c;
    const std::uint64_t half = std::uint64_t(1) << (c - 1);
    std::uint64_t carry = 0;
    for (std::size_t w = 0; w < num_windows; ++w) {
        const std::size_t lo = w * c;
        assert(lo < kNumBits);
        const std::size_t width =
            lo + c <= kNumBits ? c : kNumBits - lo;
        std::uint64_t raw = s.bits(lo, width) + carry;
        // zkphire-lint: ct-exempt(signed-digit carry select; digits feed scalar-indexed buckets anyway — see msm.cpp)
        if (raw > half) {
            out[w * stride] = std::int32_t(raw) - full;
            carry = 1;
        } else {
            out[w * stride] = std::int32_t(raw);
            carry = 0;
        }
    }
    // signedDigitWindows covers scalar_bits + 1 bits, so the top window's
    // raw digit is at most 2^(c-1) - 1 even after absorbing a carry.
    assert(carry == 0 && "signed recoding overflowed the top window");
}

} // namespace zkphire::ec
