#include "ec/glv.hpp"

#include <cassert>

namespace zkphire::ec::glv {

namespace {

using u128 = unsigned __int128;

/** q = floor(a / d), returns a mod d (schoolbook top-down by limb). */
// zkphire-lint: ct-exempt(one-time parameter derivation over public curve constants)
template <std::size_t N>
u64
divmodSmall(const BigInt<N> &a, u64 d, BigInt<N> &q)
{
    u64 rem = 0;
    for (std::size_t i = N; i-- > 0;) {
        const u128 cur = (u128(rem) << 64) | a.limb[i];
        q.limb[i] = u64(cur / d);
        rem = u64(cur % d);
    }
    return rem;
}

/** floor(2^384 / d) for a 128-bit d, by restoring long division. */
// zkphire-lint: ct-exempt(one-time parameter derivation over public curve constants)
std::array<u64, 5>
divPow384(const BigInt<4> &d)
{
    std::array<u64, 5> q{};
    BigInt<4> rem(0);
    for (std::size_t i = 385; i-- > 0;) {
        rem.shl1InPlace(); // rem < d < 2^128, so the shift cannot carry out
        if (i == 384)
            rem.limb[0] |= 1;
        if (!(rem < d)) {
            rem.subInPlace(d);
            if (i < 320)
                q[i / 64] |= u64(1) << (i % 64);
        }
    }
    return q;
}

/** low 4 limbs of a * b (exact when the true product fits 256 bits). */
BigInt<4>
mulLow4(const BigInt<4> &a, const BigInt<4> &b)
{
    BigInt<4> out(0);
    for (std::size_t i = 0; i < 4; ++i) {
        u64 carry = 0;
        for (std::size_t j = 0; i + j < 4; ++j) {
            const u128 t =
                u128(a.limb[i]) * b.limb[j] + out.limb[i + j] + carry;
            out.limb[i + j] = u64(t);
            carry = u64(t >> 64);
        }
    }
    return out;
}

/** Find a primitive cube root of unity in F as g^((p-1)/3), trying small
 *  bases until the power is nontrivial. Returns zero() if p = 1 mod 3
 *  fails (never for our fields). */
// zkphire-lint: ct-exempt(one-time parameter derivation over public curve constants)
template <class F>
F
cubeRootOfUnity()
{
    typename F::Big e;
    if (divmodSmall(F::modulus(), 3, e) != 1)
        return F::zero();
    for (u64 g = 2; g < 64; ++g) {
        F w = F::fromU64(g).pow(e);
        if (!w.isOne())
            return w;
    }
    return F::zero();
}

// zkphire-lint: ct-exempt(one-time parameter derivation over public curve constants)
Params
makeParams()
{
    Params p;
    // lambda: of the two conjugate cube roots of unity mod r, exactly one
    // is the ~128-bit z^2 - 1 (the other is its negation-like conjugate
    // -z^2, full width). Size alone disambiguates.
    const Fr w = cubeRootOfUnity<Fr>();
    if (w.isZero())
        return p;
    for (const Fr &cand : {w, w.square()}) {
        if (cand.toBig().bitLength() <= kHalfBits + 1) {
            p.lambdaFr = cand;
            p.lambda = cand.toBig();
        }
    }
    if (p.lambda.isZero() || p.lambda.bitLength() > kHalfBits)
        return p;
    // Self-check: lambda^2 + lambda + 1 == 0 mod r.
    if (!(p.lambdaFr.square() + p.lambdaFr + Fr::one()).isZero())
        return p;

    // beta: the cube root of unity in Fq whose phi acts as THIS lambda on
    // G1 (the conjugate pairs up with lambda^2); decided on the generator.
    const Fq b = cubeRootOfUnity<Fq>();
    if (b.isZero())
        return p;
    // mulScalarPlain, not mulScalar: the GLV path queries params(), and we
    // are *inside* params()'s one-time init — routing through it would
    // recursively re-enter the static-local initialization (deadlock).
    const G1Jacobian lg =
        G1Jacobian::fromAffine(g1Generator()).mulScalarPlain(p.lambdaFr);
    for (const Fq &cand : {b, b.square()}) {
        G1Affine phi_g = g1Generator();
        phi_g.x *= cand;
        if (G1Jacobian::fromAffine(phi_g) == lg) {
            p.beta = cand;
            p.ok = true;
            break;
        }
    }
    if (!p.ok)
        return p;

    p.g = divPow384(p.lambda);

    // Spot-check the decomposition identity on k = r - 1 before declaring
    // the parameters usable (exercises the Barrett path end to end).
    BigInt<4> k = Fr::modulus();
    k.subInPlace(BigInt<4>(1));
    BigInt<4> k1, k2;
    // Inline decompose against the local params (the global isn't set yet).
    {
        u64 prod[9] = {0};
        for (std::size_t i = 0; i < 4; ++i) {
            u64 carry = 0;
            for (std::size_t j = 0; j < 5; ++j) {
                const u128 t =
                    u128(k.limb[i]) * p.g[j] + prod[i + j] + carry;
                prod[i + j] = u64(t);
                carry = u64(t >> 64);
            }
            prod[i + 5] = carry;
        }
        BigInt<4> c1(0);
        c1.limb[0] = prod[6];
        c1.limb[1] = prod[7];
        c1.limb[2] = prod[8];
        k1 = k;
        k1.subInPlace(mulLow4(c1, p.lambda));
        k2 = c1;
        while (k1.bitLength() > kHalfBits) {
            k1.subInPlace(p.lambda);
            k2.addInPlace(BigInt<4>(1));
        }
    }
    const Fr recomposed = Fr::fromBig(k1) + p.lambdaFr * Fr::fromBig(k2);
    if (recomposed != Fr::fromBig(k) || k2.bitLength() > kHalfBits)
        p.ok = false;
    return p;
}

} // namespace

const Params &
params()
{
    static const Params p = makeParams();
    return p;
}

bool
available()
{
    return params().ok;
}

void
decompose(const BigInt<4> &k, BigInt<4> &k1, BigInt<4> &k2)
{
    const Params &p = params();
    assert(p.ok && "GLV parameters unavailable");
    // c1 = floor(k * g / 2^384): 4x5-limb schoolbook, keep limbs 6..8.
    // g <= 2^384/lambda guarantees c1 <= floor(k/lambda), so k1 below is
    // non-negative; the Barrett undershoot is < 3, bounding k1 < 3*lambda.
    u64 prod[9] = {0};
    for (std::size_t i = 0; i < 4; ++i) {
        u64 carry = 0;
        for (std::size_t j = 0; j < 5; ++j) {
            const u128 t = u128(k.limb[i]) * p.g[j] + prod[i + j] + carry;
            prod[i + j] = u64(t);
            carry = u64(t >> 64);
        }
        prod[i + 5] = carry;
    }
    BigInt<4> c1(0);
    c1.limb[0] = prod[6];
    c1.limb[1] = prod[7];
    c1.limb[2] = prod[8];
    // k1 = k - c1*lambda, exact over Z (truncated product: value < 2^130).
    k1 = k;
    k1.subInPlace(mulLow4(c1, p.lambda));
    k2 = c1;
    // zkphire-lint: ct-exempt(<=2 Barrett correction rounds; bounded data-dependent latency shared with reference GLV splits)
    while (k1.bitLength() > kHalfBits) {
        k1.subInPlace(p.lambda);
        k2.addInPlace(BigInt<4>(1));
    }
}

G1Affine
endomorphism(const G1Affine &p)
{
    // zkphire-lint: ct-exempt(identity-encoding check, same profile as the group law)
    if (p.infinity)
        return p;
    return G1Affine{p.x * params().beta, p.y, false};
}

G1Jacobian
endomorphism(const G1Jacobian &p)
{
    // zkphire-lint: ct-exempt(identity-encoding check, same profile as the group law)
    if (p.isIdentity())
        return p;
    return G1Jacobian{p.X * params().beta, p.Y, p.Z};
}

} // namespace zkphire::ec::glv
