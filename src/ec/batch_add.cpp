#include "ec/batch_add.hpp"

#include <cassert>

#include "ff/batch_inverse.hpp"
#include "ff/vec_ops.hpp"

namespace zkphire::ec {

namespace {

using ff::Fq;

enum PairKind : std::uint8_t {
    kKeepA = 0, ///< rhs is the identity: result = lhs.
    kKeepB = 1, ///< lhs is the identity: result = rhs.
    kInf = 2,   ///< lhs == -rhs: result = identity.
    kSlope = 3, ///< Generic add or doubling: needs a slope inverse.
};

/**
 * Classify one pair, staging slope numerator/denominator for the batched
 * inversion when the pair needs one. Denominators are nonzero by
 * construction: a generic add has x2 != x1 and a doubling has y != 0 (a
 * zero y falls into the cancellation case, since then -y == y).
 */
// zkphire-lint: ct-exempt(identity/cancellation classification is what batched-affine MSM buckets require; scalar-shaped timing is inherent to Pippenger)
inline std::uint8_t
classifyPair(const G1Affine &a, const G1Affine &b, BatchAffineScratch &s)
{
    if (b.infinity)
        return kKeepA;
    if (a.infinity)
        return kKeepB;
    if (a.x == b.x) {
        if (a.y == b.y && !a.y.isZero()) {
            // Doubling: lambda = 3x^2 / 2y.
            Fq sq = a.x.square();
            s.numer.push_back(sq.dbl() + sq);
            s.denom.push_back(a.y.dbl());
            return kSlope;
        }
        return kInf;
    }
    // Generic: lambda = (y2 - y1) / (x2 - x1).
    s.numer.push_back(b.y - a.y);
    s.denom.push_back(b.x - a.x);
    return kSlope;
}

/** Apply a classified pair; di indexes the round's resolved slopes. */
inline G1Affine
applyPair(std::uint8_t kind, const G1Affine &a, const G1Affine &b,
          const BatchAffineScratch &s, std::size_t &di)
{
    switch (kind) {
    case kKeepA:
        return a;
    case kKeepB:
        return b;
    case kInf:
        return G1Affine{};
    default: {
        const Fq &lam = s.numer[di];
        ++di;
        Fq x3 = lam.square() - a.x - b.x;
        return G1Affine{x3, lam * (a.x - x3) - a.y, false};
    }
    }
}

/**
 * Resolve this round's staged slopes: one true field inversion for every
 * denominator (Montgomery's trick), then one fused element-wise multiply
 * turns numer[] into the finished slopes lambda = numer * denom^{-1} —
 * a single ff::mulVec pass over the unrolled Fq kernel instead of a
 * per-pair multiply scattered through the apply loop.
 */
void
resolveRound(BatchAffineScratch &scratch, BatchAffineStats *stats)
{
    if (scratch.denom.empty())
        return;
    ff::batchInverseSerialInPlace(std::span<Fq>(scratch.denom),
                                  scratch.prefix);
    ff::mulVec(scratch.numer.data(), scratch.numer.data(),
               scratch.denom.data(), scratch.denom.size());
    if (stats) {
        stats->affineAdds += scratch.denom.size();
        ++stats->batchInversions;
    }
}

// zkphire-lint: ct-exempt(sign-bit decode of public point table entries)
inline G1Affine
decodeEntry(std::span<const G1Affine> points, std::uint32_t e)
{
    const G1Affine &p = points[e >> 1];
    if ((e & 1) == 0 || p.infinity)
        return p;
    return G1Affine{p.x, p.y.neg(), false};
}

/**
 * Halving rounds over materialized points, in place: pair (2j, 2j+1) of
 * each segment lands at slot j, an odd tail passes through (writes trail
 * the read frontier, j <= 2j, so compaction is safe). scratch.len must
 * hold the current segment lengths; runs until every length is <= 1.
 */
void
reduceSegments(std::span<G1Affine> buf, std::span<const std::uint32_t> off,
               bool again, BatchAffineScratch &scratch,
               BatchAffineStats *stats)
{
    const std::size_t num_segs = scratch.len.size();
    while (again) {
        scratch.kind.clear();
        scratch.numer.clear();
        scratch.denom.clear();
        for (std::size_t s = 0; s < num_segs; ++s) {
            const std::size_t base = off[s];
            const std::size_t pairs = scratch.len[s] / 2;
            for (std::size_t j = 0; j < pairs; ++j)
                scratch.kind.push_back(classifyPair(
                    buf[base + 2 * j], buf[base + 2 * j + 1], scratch));
        }
        resolveRound(scratch, stats);

        again = false;
        std::size_t pi = 0, di = 0;
        for (std::size_t s = 0; s < num_segs; ++s) {
            const std::size_t base = off[s];
            const std::size_t L = scratch.len[s];
            const std::size_t pairs = L / 2;
            for (std::size_t j = 0; j < pairs; ++j, ++pi)
                buf[base + j] = applyPair(scratch.kind[pi], buf[base + 2 * j],
                                          buf[base + 2 * j + 1], scratch, di);
            if (L % 2 == 1 && L > 1)
                buf[base + L / 2] = buf[base + L - 1];
            scratch.len[s] = static_cast<std::uint32_t>((L + 1) / 2);
            again |= scratch.len[s] > 1;
        }
    }
}

} // namespace

void
batchAffineSegmentSums(std::span<G1Affine> buf,
                       std::span<const std::uint32_t> off,
                       std::span<G1Affine> out, BatchAffineScratch &scratch,
                       BatchAffineStats *stats)
{
    const std::size_t num_segs = out.size();
    assert(off.size() == num_segs + 1);

    scratch.len.resize(num_segs);
    bool again = false;
    for (std::size_t s = 0; s < num_segs; ++s) {
        scratch.len[s] = off[s + 1] - off[s];
        again |= scratch.len[s] > 1;
    }
    reduceSegments(buf, off, again, scratch, stats);
    for (std::size_t s = 0; s < num_segs; ++s)
        out[s] = scratch.len[s] ? buf[off[s]] : G1Affine{};
}

void
batchAffineSegmentSumsIndexed(std::span<const G1Affine> points,
                              std::span<const std::uint32_t> enc,
                              std::span<const std::uint32_t> off,
                              std::span<G1Affine> out,
                              BatchAffineScratch &scratch,
                              BatchAffineStats *stats)
{
    const std::size_t num_segs = out.size();
    assert(off.size() == num_segs + 1);

    // Round 0 reads the shared point array through the encoded entries and
    // writes compacted half-size segments into scratch.buf; the remaining
    // rounds then run in place over materialized points.
    scratch.off.resize(num_segs + 1);
    scratch.off[0] = 0;
    for (std::size_t s = 0; s < num_segs; ++s) {
        const std::uint32_t L = off[s + 1] - off[s];
        scratch.off[s + 1] = scratch.off[s] + (L + 1) / 2;
    }
    // Scratch is caller-retained (thread-local in the MSM); cap the
    // high-water mark so one huge job doesn't pin peak-size buffers for
    // the life of a long-running prover process.
    const std::size_t need = scratch.off[num_segs];
    const auto trim = [](auto &v, std::size_t bound) {
        if (v.capacity() > 4 * bound + 1024) {
            v.clear();
            v.shrink_to_fit();
        }
    };
    trim(scratch.buf, need);
    trim(scratch.numer, need);
    trim(scratch.denom, need);
    trim(scratch.prefix, need);
    if (scratch.buf.size() < need)
        scratch.buf.resize(need);

    scratch.kind.clear();
    scratch.numer.clear();
    scratch.denom.clear();
    for (std::size_t s = 0; s < num_segs; ++s) {
        const std::size_t base = off[s];
        const std::size_t pairs = (off[s + 1] - base) / 2;
        for (std::size_t j = 0; j < pairs; ++j)
            scratch.kind.push_back(
                classifyPair(decodeEntry(points, enc[base + 2 * j]),
                             decodeEntry(points, enc[base + 2 * j + 1]),
                             scratch));
    }
    resolveRound(scratch, stats);

    scratch.len.resize(num_segs);
    bool again = false;
    std::size_t pi = 0, di = 0;
    for (std::size_t s = 0; s < num_segs; ++s) {
        const std::size_t base = off[s];
        const std::size_t L = off[s + 1] - base;
        const std::size_t pairs = L / 2;
        G1Affine *dst = scratch.buf.data() + scratch.off[s];
        for (std::size_t j = 0; j < pairs; ++j, ++pi)
            dst[j] = applyPair(scratch.kind[pi],
                               decodeEntry(points, enc[base + 2 * j]),
                               decodeEntry(points, enc[base + 2 * j + 1]),
                               scratch, di);
        if (L % 2 == 1)
            dst[L / 2] = decodeEntry(points, enc[base + L - 1]);
        scratch.len[s] = std::uint32_t((L + 1) / 2);
        again |= scratch.len[s] > 1;
    }

    reduceSegments(scratch.buf, scratch.off, again, scratch, stats);
    for (std::size_t s = 0; s < num_segs; ++s)
        out[s] = scratch.len[s] ? scratch.buf[scratch.off[s]] : G1Affine{};
}

} // namespace zkphire::ec
