#include "ec/fixed_base.hpp"

#include <cassert>

#include "ec/glv.hpp"
#include "ec/recode.hpp"

namespace zkphire::ec {

FixedBaseMul::FixedBaseMul(const G1Affine &base)
{
    useGlv = glv::available();
    const std::size_t scalar_bits =
        useGlv ? glv::kHalfBits : Fr::modulusBits();
    numWindows = signedDigitWindows(scalar_bits, windowBits);

    // Positive magnitudes in Jacobian form: jac[w*halfDigits + d - 1] =
    // d * 16^w * B. The d = 8 entry doubles into the next window's base.
    std::vector<G1Jacobian> jac(numWindows * halfDigits);
    G1Jacobian window_base = G1Jacobian::fromAffine(base);
    for (std::size_t w = 0; w < numWindows; ++w) {
        G1Jacobian acc = window_base;
        for (unsigned d = 1; d <= halfDigits; ++d) {
            jac[w * halfDigits + d - 1] = acc;
            acc = acc.add(window_base);
        }
        window_base = jac[w * halfDigits + halfDigits - 1].dbl();
    }

    // One shared inversion normalizes every entry; negations are free.
    const std::vector<G1Affine> aff = batchToAffine(jac);
    table.resize(numWindows);
    for (std::size_t w = 0; w < numWindows; ++w) {
        for (unsigned d = 0; d < halfDigits; ++d) {
            const G1Affine &p = aff[w * halfDigits + d];
            table[w][d] = p;
            table[w][halfDigits + d] =
                // zkphire-lint: ct-exempt(table precompute over public SRS base points)
                p.infinity ? p : G1Affine{p.x, p.y.neg(), false};
        }
    }

    if (useGlv) {
        // phi(P) = (beta * x, y) maps each table entry to the matching
        // multiple of phi(B) = lambda * B — no group ops needed.
        const Fq beta = glv::params().beta;
        phiTable.resize(numWindows);
        for (std::size_t w = 0; w < numWindows; ++w) {
            for (unsigned i = 0; i < 2 * halfDigits; ++i) {
                const G1Affine &p = table[w][i];
                phiTable[w][i] =
                    // zkphire-lint: ct-exempt(table precompute over public SRS base points)
                    p.infinity ? p : G1Affine{p.x * beta, p.y, false};
            }
        }
    }
}

namespace {

inline void
addDigit(G1Jacobian &acc, const std::array<G1Affine, 16> &win,
         std::int32_t d, unsigned half)
{
    if (d > 0)
        acc = acc.addMixed(win[unsigned(d) - 1]);
    else if (d < 0)
        acc = acc.addMixed(win[half + unsigned(-d) - 1]);
}

} // namespace

G1Jacobian
FixedBaseMul::mul(const Fr &k) const
{
    // 255-bit scalars at c = 4 need at most signedDigitWindows(255, 4) = 64
    // digits; the GLV halves use 33 each.
    std::int32_t digits[2][64];
    G1Jacobian acc = G1Jacobian::identity();
    if (useGlv) {
        ff::BigInt<4> k1, k2;
        glv::decompose(k.toBig(), k1, k2);
        recodeSignedDigits(k1, windowBits, numWindows, digits[0], 1);
        recodeSignedDigits(k2, windowBits, numWindows, digits[1], 1);
        for (std::size_t w = 0; w < numWindows; ++w) {
            addDigit(acc, table[w], digits[0][w], halfDigits);
            addDigit(acc, phiTable[w], digits[1][w], halfDigits);
        }
    } else {
        recodeSignedDigits(k.toBig(), windowBits, numWindows, digits[0], 1);
        for (std::size_t w = 0; w < numWindows; ++w)
            addDigit(acc, table[w], digits[0][w], halfDigits);
    }
    return acc;
}

} // namespace zkphire::ec
