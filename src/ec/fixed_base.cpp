#include "ec/fixed_base.hpp"

namespace zkphire::ec {

FixedBaseMul::FixedBaseMul(const G1Affine &base)
{
    const unsigned num_windows = (unsigned(Fr::modulusBits()) + windowBits - 1)
                                 / windowBits;
    table.resize(num_windows);
    G1Jacobian window_base = G1Jacobian::fromAffine(base);
    for (unsigned w = 0; w < num_windows; ++w) {
        G1Jacobian acc = window_base;
        for (unsigned d = 1; d <= digitsPerWindow; ++d) {
            table[w][d - 1] = acc;
            acc = acc.add(window_base);
        }
        window_base = acc; // 16 * previous window base
    }
}

G1Jacobian
FixedBaseMul::mul(const Fr &k) const
{
    auto bits = k.toBig();
    G1Jacobian acc = G1Jacobian::identity();
    const std::size_t scalar_bits = Fr::modulusBits();
    for (unsigned w = 0; w < table.size(); ++w) {
        const std::size_t lo = std::size_t(w) * windowBits;
        if (lo >= scalar_bits)
            break;
        const unsigned width =
            unsigned(std::min<std::size_t>(windowBits, scalar_bits - lo));
        std::uint64_t digit = bits.bits(lo, width);
        if (digit)
            acc = acc.add(table[w][digit - 1]);
    }
    return acc;
}

} // namespace zkphire::ec
