#include "ec/g1.hpp"

#include "ec/glv.hpp"
#include "ff/batch_inverse.hpp"

namespace zkphire::ec {

namespace {

const Fq &
curveB()
{
    static const Fq b = Fq::fromU64(4);
    return b;
}

} // namespace

bool
G1Affine::isOnCurve() const
{
    if (infinity)
        return true;
    return y.square() == x.square() * x + curveB();
}

// zkphire-lint: ct-exempt(equality on public/normalized points: commitments, oracle checks, tests)
bool
G1Affine::operator==(const G1Affine &o) const
{
    if (infinity || o.infinity)
        return infinity == o.infinity;
    return x == o.x && y == o.y;
}

G1Jacobian
G1Jacobian::identity()
{
    return G1Jacobian{Fq::one(), Fq::one(), Fq::zero()};
}

// zkphire-lint: ct-exempt(identity-encoding check when lifting affine points)
G1Jacobian
G1Jacobian::fromAffine(const G1Affine &p)
{
    if (p.infinity)
        return identity();
    return G1Jacobian{p.x, p.y, Fq::one()};
}

G1Jacobian
G1Jacobian::dbl() const
{
    if (isIdentity())
        return *this;
    // dbl-2009-l (a = 0): A = X^2, B = Y^2, C = B^2,
    // D = 2((X+B)^2 - A - C), E = 3A, F = E^2.
    Fq a = X.square();
    Fq b = Y.square();
    Fq cc = b.square();
    Fq d = ((X + b).square() - a - cc).dbl();
    Fq e = a.dbl() + a;
    Fq f = e.square();
    G1Jacobian out;
    out.X = f - d.dbl();
    out.Y = e * (d - out.X) - cc.dbl().dbl().dbl();
    out.Z = (Y * Z).dbl();
    return out;
}

// zkphire-lint: ct-exempt(identity/doubling special cases of the Jacobian group law; complete addition formulas are the ct fix and are tracked in ROADMAP)
G1Jacobian
G1Jacobian::add(const G1Jacobian &o) const
{
    if (isIdentity())
        return o;
    if (o.isIdentity())
        return *this;
    // add-2007-bl.
    Fq z1z1 = Z.square();
    Fq z2z2 = o.Z.square();
    Fq u1 = X * z2z2;
    Fq u2 = o.X * z1z1;
    Fq s1 = Y * o.Z * z2z2;
    Fq s2 = o.Y * Z * z1z1;
    if (u1 == u2) {
        if (s1 == s2)
            return dbl();
        return identity();
    }
    Fq h = u2 - u1;
    Fq i = h.dbl().square();
    Fq j = h * i;
    Fq r = (s2 - s1).dbl();
    Fq v = u1 * i;
    G1Jacobian out;
    out.X = r.square() - j - v.dbl();
    out.Y = r * (v - out.X) - (s1 * j).dbl();
    out.Z = ((Z + o.Z).square() - z1z1 - z2z2) * h;
    return out;
}

// zkphire-lint: ct-exempt(identity/doubling special cases of the Jacobian group law; complete addition formulas are the ct fix and are tracked in ROADMAP)
G1Jacobian
G1Jacobian::addMixed(const G1Affine &o) const
{
    if (o.infinity)
        return *this;
    if (isIdentity())
        return fromAffine(o);
    // madd-2007-bl (Z2 = 1).
    Fq z1z1 = Z.square();
    Fq u2 = o.x * z1z1;
    Fq s2 = o.y * Z * z1z1;
    if (X == u2) {
        if (Y == s2)
            return dbl();
        return identity();
    }
    Fq h = u2 - X;
    Fq hh = h.square();
    Fq i = hh.dbl().dbl();
    Fq j = h * i;
    Fq r = (s2 - Y).dbl();
    Fq v = X * i;
    G1Jacobian out;
    out.X = r.square() - j - v.dbl();
    out.Y = r * (v - out.X) - (Y * j).dbl();
    out.Z = (Z + h).square() - z1z1 - hh;
    return out;
}

G1Jacobian
G1Jacobian::neg() const
{
    G1Jacobian out = *this;
    out.Y = out.Y.neg();
    return out;
}

G1Jacobian
G1Jacobian::mulScalarPlain(const Fr &k) const
{
    auto bits = k.toBig();
    G1Jacobian acc = identity();
    std::size_t nbits = bits.bitLength();
    for (std::size_t i = nbits; i-- > 0;) {
        acc = acc.dbl();
        // zkphire-lint: ct-exempt(variable-time oracle; hot paths go through MSM)
        if (bits.bit(i))
            acc = acc.add(*this);
    }
    return acc;
}

G1Jacobian
G1Jacobian::mulScalar(const Fr &k) const
{
    if (!glv::available())
        return mulScalarPlain(k);
    ff::BigInt<4> k1, k2;
    glv::decompose(k.toBig(), k1, k2);
    // Joint Shamir table over the two <= 128-bit halves: one doubling per
    // bit position serves both k1 (against P) and k2 (against phi(P)),
    // halving the ~255 doublings of the plain walk.
    const G1Jacobian phi = glv::endomorphism(*this);
    const G1Jacobian table[3] = {*this, phi, add(phi)};
    G1Jacobian acc = identity();
    std::size_t nbits = std::max(k1.bitLength(), k2.bitLength());
    for (std::size_t i = nbits; i-- > 0;) {
        acc = acc.dbl();
        // zkphire-lint: ct-exempt(digit-serial like the plain oracle; ct scalar mul tracked in ROADMAP)
        const unsigned idx =
            unsigned(k1.bit(i)) | (unsigned(k2.bit(i)) << 1);
        if (idx)
            acc = acc.add(table[idx - 1]);
    }
    return acc;
}

G1Affine
G1Jacobian::toAffine() const
{
    if (isIdentity())
        return G1Affine{};
    Fq z_inv = Z.inverse();
    Fq z_inv2 = z_inv.square();
    G1Affine out;
    out.x = X * z_inv2;
    out.y = Y * z_inv2 * z_inv;
    out.infinity = false;
    return out;
}

// zkphire-lint: ct-exempt(cross-representative equality used by oracle tests and parameter self-checks)
bool
G1Jacobian::operator==(const G1Jacobian &o) const
{
    if (isIdentity() || o.isIdentity())
        return isIdentity() == o.isIdentity();
    // X1 Z2^2 == X2 Z1^2 and Y1 Z2^3 == Y2 Z1^3.
    Fq z1z1 = Z.square();
    Fq z2z2 = o.Z.square();
    return X * z2z2 == o.X * z1z1 &&
           Y * z2z2 * o.Z == o.Y * z1z1 * Z;
}

// zkphire-lint: ct-exempt(identity skip mirrors toAffine; normalization runs on commitment outputs, not witness limbs)
std::vector<G1Affine>
batchToAffine(std::span<const G1Jacobian> pts)
{
    std::vector<G1Affine> out(pts.size());
    std::vector<Fq> zs;
    zs.reserve(pts.size());
    for (const G1Jacobian &p : pts)
        if (!p.isIdentity())
            zs.push_back(p.Z);
    ff::batchInverseInPlace(std::span<Fq>(zs));
    std::size_t zi = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        if (pts[i].isIdentity())
            continue; // out[i] default-constructs to the identity
        const Fq z_inv = zs[zi++];
        const Fq z_inv2 = z_inv.square();
        out[i].x = pts[i].X * z_inv2;
        out[i].y = pts[i].Y * z_inv2 * z_inv;
        out[i].infinity = false;
    }
    return out;
}

const G1Affine &
g1Generator()
{
    static const G1Affine gen = [] {
        G1Affine g;
        g.x = Fq::fromHex(
            "0x17f1d3a73197d7942695638c4fa9ac0fc3688c4f9774b905a14e3a3f171bac58"
            "6c55e83ff97a1aeffb3af00adb22c6bb");
        g.y = Fq::fromHex(
            "0x08b3f481e3aaa0f1a09e30ed741d8ae4fcf5e095d5d00af600db18cb2c04b3ed"
            "d03cc744a2888ae40caa232946c5e7e1");
        g.infinity = false;
        assert(g.isOnCurve() && "bad generator constants");
        return g;
    }();
    return gen;
}

G1Affine
randomG1(ff::Rng &rng)
{
    Fr k = Fr::random(rng);
    return G1Jacobian::fromAffine(g1Generator()).mulScalar(k).toAffine();
}

} // namespace zkphire::ec
