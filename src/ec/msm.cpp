#include "ec/msm.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <vector>

#include "ec/batch_add.hpp"
#include "ec/glv.hpp"
#include "ec/recode.hpp"
#include "rt/failpoint.hpp"
#include "rt/parallel.hpp"

namespace zkphire::ec {

G1Jacobian
msmNaive(std::span<const Fr> scalars, std::span<const G1Affine> points)
{
    assert(scalars.size() == points.size());
    G1Jacobian acc = G1Jacobian::identity();
    for (std::size_t i = 0; i < scalars.size(); ++i)
        acc = acc.add(G1Jacobian::fromAffine(points[i]).mulScalar(scalars[i]));
    return acc;
}

unsigned
pippengerAutoWindow(std::size_t n)
{
    unsigned bits = 1;
    while ((std::size_t(1) << bits) < n)
        ++bits;
    int c = int(bits) - 3;
    if (c < 1)
        c = 1;
    if (c > 16)
        c = 16;
    return unsigned(c);
}

unsigned
pippengerAutoWindowSignedBits(std::size_t n, std::size_t scalar_bits,
                              bool batch_affine)
{
    // Argmin of the per-window cost in Fq-multiplication units (prices in
    // ec::msm_cost, re-fit to the fixed-limb kernel overhaul and shared
    // with sim::CpuModel): every dense point pays one bucket add per
    // window and each of the 2^(c-1) buckets one mixed + one full
    // aggregation add in the suffix sum. Wider windows mean fewer passes
    // over the points but more aggregation work; the halved bucket count
    // shifts the optimum ~1 bit wider than the unsigned choice. The cost
    // depends only on (n, scalar_bits, batch_affine) — never on per-column
    // dense counts — so a batch run and each column's solo run always
    // agree on c. The GLV caller passes (2n, glv::kHalfBits): the point
    // term doubles while the window count per c roughly halves, which
    // nudges the optimum ~1 bit wider than the full-width choice at the
    // same n.
    const double bucket_add_cost =
        batch_affine ? msm_cost::kBatchAffineAdd : msm_cost::kMixedAdd;
    double best_cost = 0;
    unsigned best = 2;
    for (unsigned c = 2; c <= 16; ++c) {
        double nw = double(signedDigitWindows(scalar_bits, c));
        double buckets = double(std::size_t(1) << (c - 1));
        double cost = nw * (double(n) * bucket_add_cost +
                            buckets * msm_cost::kAggPerBucket);
        if (best_cost == 0 || cost < best_cost) {
            best_cost = cost;
            best = c;
        }
    }
    return best;
}

unsigned
pippengerAutoWindowSigned(std::size_t n, bool batch_affine)
{
    return pippengerAutoWindowSignedBits(n, Fr::modulusBits(), batch_affine);
}

bool
msmGlvProfitable(std::size_t n, bool batch_affine)
{
    // Same op-count model as the window argmin, totaled for both scalar
    // structures. GLV wins while the halved window count outruns the
    // doubled point walk — but the c <= 16 window cap stops the GLV argmin
    // from widening past ceil((128+16)/16) = 9 windows, so beyond ~2^20
    // points the plain 255-bit slicing (16 passes over n) beats GLV's 9
    // passes over 2n, and the split turns itself off.
    const double bucket_add =
        batch_affine ? msm_cost::kBatchAffineAdd : msm_cost::kMixedAdd;
    const auto total = [&](std::size_t pts, std::size_t bits) {
        const unsigned c =
            pippengerAutoWindowSignedBits(pts, bits, batch_affine);
        const double nw = double(signedDigitWindows(bits, c));
        const double buckets = double(std::size_t(1) << (c - 1));
        return nw * (double(pts) * bucket_add +
                     buckets * msm_cost::kAggPerBucket) +
               double(bits) * msm_cost::kDouble;
    };
    // + n prices the one-time phi(P) materialization (one Fq mul/point).
    return total(2 * n, glv::kHalfBits) + double(n) <
           total(n, Fr::modulusBits());
}

namespace {

/** Per-window op counts, summed into MsmStats in window order. */
struct WindowAcc {
    std::uint64_t pointAdds = 0;
    std::uint64_t affineAdds = 0;
    std::uint64_t batchInversions = 0;
};

inline G1Affine
negAffine(const G1Affine &p)
{
    // zkphire-lint: ct-exempt(identity-encoding check, same profile as the group law)
    return p.infinity ? p : G1Affine{p.x, p.y.neg(), false};
}

double
msSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * Jacobian bucket accumulation + suffix-sum aggregation for one (window,
 * column). Digits are read at digits[i * stride]; a negative digit adds
 * the negated point into bucket |d|. This is the per-window body of
 * Pippenger's loop; windows are independent, which is what the parallel
 * path exploits (the paper's MSM unit similarly processes bucket sets in
 * parallel PEs).
 */
G1Jacobian
windowSumJacobian(std::span<const G1Affine> points,
                  std::span<const std::uint32_t> dense_idx,
                  const std::int32_t *digits, std::size_t stride,
                  std::size_t num_buckets, WindowAcc &acc)
{
    std::vector<G1Jacobian> buckets(num_buckets, G1Jacobian::identity());
    for (std::uint32_t i : dense_idx) {
        const std::int32_t d = digits[std::size_t(i) * stride];
        if (d == 0)
            continue;
        const std::size_t b = std::size_t(d < 0 ? -d : d) - 1;
        buckets[b] = d > 0 ? buckets[b].addMixed(points[i])
                           : buckets[b].addMixed(negAffine(points[i]));
        ++acc.pointAdds;
    }
    // Suffix-sum aggregation: Sum_d d * bucket[d] with 2(B-1) adds.
    G1Jacobian running = G1Jacobian::identity();
    G1Jacobian sum = G1Jacobian::identity();
    for (std::size_t b = num_buckets; b-- > 0;) {
        running = running.add(buckets[b]);
        sum = sum.add(running);
        acc.pointAdds += 2;
    }
    return sum;
}

/**
 * Batched-affine bucket accumulation for `num_win` consecutive windows
 * across the selected columns (cols[jj] indexes the digit row; columns
 * below the batch-affine floor take the Jacobian path instead so each
 * column's representation matches its solo run): one pass over the digit
 * slabs scatters each point's 4-byte encoded reference (index + negation
 * bit for negative digits) into its (window, column, bucket) segment, one
 * segmented batched-affine reduction sums every bucket of every selected
 * (window, column) — reading the shared point array through the references
 * and amortizing each round's single true inversion over all
 * num_win * |cols| * B buckets — and a per-(window, column) suffix sum
 * aggregates the affine bucket values with mixed adds.
 *
 * The parallel path calls this per window (num_win = 1); the serial path
 * passes the whole window range, which ROUND-SYNCHRONIZES the batch
 * inversion across windows: every pairwise round resolves all windows'
 * slopes with ONE true inversion, cutting the inversion count by
 * ~num_windows x (decisive on the small MSMs of mKZG opening chains,
 * where inversions are a large fraction of total work). Per-segment
 * reduction order is fixed by the segment layout, so bucket sums — and
 * every downstream value — are bit-identical either way.
 *
 * Scratch lives in thread-locals: pool workers process many windows (and
 * many MSMs), so steady state allocates nothing; buffers whose capacity
 * exceeds ~4x the current job are released so one huge MSM doesn't pin
 * peak-size buffers per worker forever.
 */
void
windowSumBatchAffine(std::span<const G1Affine> points,
                     std::span<const std::uint32_t> dense_idx,
                     const std::int32_t *digits, std::size_t stride,
                     std::size_t num_win, std::size_t k,
                     std::span<const std::uint32_t> cols,
                     std::size_t num_buckets, G1Jacobian *sums_out,
                     WindowAcc &acc)
{
    thread_local std::vector<std::uint32_t> off, cur, enc;
    thread_local std::vector<G1Affine> bucket_sums;
    thread_local BatchAffineScratch scratch;

    const std::size_t kk = cols.size();
    const std::size_t win_buckets = kk * num_buckets;
    const std::size_t total_buckets = num_win * win_buckets;
    // Same >4x-the-current-job release rule as enc below, applied to the
    // bucket-count-sized buffers too: a combined sparse call can have far
    // more segments (num_win * buckets) than entries, and these would
    // otherwise stay pinned at that peak for the worker's lifetime.
    const auto trim = [](auto &v, std::size_t bound) {
        if (v.capacity() > 4 * bound + 1024) {
            v.clear();
            v.shrink_to_fit();
        }
    };
    trim(off, total_buckets + 1);
    trim(cur, total_buckets + 1);
    trim(bucket_sums, total_buckets);
    off.assign(total_buckets + 1, 0);
    for (std::size_t w = 0; w < num_win; ++w) {
        const std::int32_t *wdig = digits + w * stride;
        std::uint32_t *woff = off.data() + w * win_buckets;
        for (std::uint32_t i : dense_idx) {
            const std::int32_t *row = wdig + std::size_t(i) * k;
            for (std::size_t jj = 0; jj < kk; ++jj) {
                const std::int32_t d = row[cols[jj]];
                if (d != 0)
                    ++woff[jj * num_buckets + std::size_t(d < 0 ? -d : d)];
            }
        }
    }
    for (std::size_t b = 0; b < total_buckets; ++b)
        off[b + 1] += off[b];

    if (enc.capacity() > 4 * std::size_t(off[total_buckets]) + 1024) {
        enc.clear();
        enc.shrink_to_fit();
    }
    if (enc.size() < off[total_buckets])
        enc.resize(off[total_buckets]);
    cur.assign(off.begin(), off.end() - 1);
    for (std::size_t w = 0; w < num_win; ++w) {
        const std::int32_t *wdig = digits + w * stride;
        std::uint32_t *wcur = cur.data() + w * win_buckets;
        for (std::uint32_t i : dense_idx) {
            const std::int32_t *row = wdig + std::size_t(i) * k;
            for (std::size_t jj = 0; jj < kk; ++jj) {
                const std::int32_t d = row[cols[jj]];
                if (d == 0)
                    continue;
                const std::size_t b =
                    jj * num_buckets + std::size_t(d < 0 ? -d : d) - 1;
                enc[wcur[b]++] = (i << 1) | std::uint32_t(d < 0);
            }
        }
    }

    bucket_sums.resize(total_buckets);
    BatchAffineStats bst;
    batchAffineSegmentSumsIndexed(
        points, std::span<const std::uint32_t>(enc.data(), off[total_buckets]),
        off, bucket_sums, scratch, &bst);
    acc.affineAdds += bst.affineAdds;
    acc.batchInversions += bst.batchInversions;

    for (std::size_t w = 0; w < num_win; ++w) {
        for (std::size_t jj = 0; jj < kk; ++jj) {
            G1Jacobian running = G1Jacobian::identity();
            G1Jacobian sum = G1Jacobian::identity();
            const G1Affine *wsums =
                bucket_sums.data() + w * win_buckets + jj * num_buckets;
            for (std::size_t b = num_buckets; b-- > 0;) {
                running = running.addMixed(wsums[b]);
                sum = sum.add(running);
                acc.pointAdds += 2;
            }
            sums_out[w * k + cols[jj]] = sum;
        }
    }
}

/**
 * Shared multi-column Pippenger core. Column j's result equals an
 * independent single-column run exactly: per-column state (trivial
 * accumulator, bucket sets, window fold) never mixes across columns; only
 * the point walk, the digit slab, and the batch inversions are shared.
 */
std::vector<G1Jacobian>
msmBatchCore(std::span<const std::span<const Fr>> cols,
             std::span<const G1Affine> points, const MsmOptions &opts,
             MsmStats *stats)
{
    using Clock = std::chrono::steady_clock;
    const std::size_t k = cols.size();
    const std::size_t n = points.size();
    std::vector<G1Jacobian> out(k, G1Jacobian::identity());
    if (k == 0 || n == 0)
        return out;
#ifndef NDEBUG
    for (const auto &col : cols)
        assert(col.size() == n && "column/point length mismatch");
#endif

    const bool sgn = opts.signedDigits;
    // GLV rides on the signed-digit pipeline: each dense scalar splits into
    // two ~128-bit halves (k = k1 + lambda*k2), the walk covers 2n points
    // (phi(P_i) materialized once at index n + i), and the window count per
    // pass halves. Degrades transparently if the parameter self-checks fail
    // or the op-count model says the split loses at this size (the window
    // cap makes plain slicing cheaper past ~2^20 points).
    const bool use_glv = sgn && opts.glv && glv::available() &&
                         msmGlvProfitable(n, opts.batchAffine);
    const std::size_t n_ext = use_glv ? 2 * n : n;
    const unsigned c =
        opts.windowBits ? opts.windowBits
        : sgn           ? pippengerAutoWindowSignedBits(
                  n_ext, use_glv ? glv::kHalfBits : Fr::modulusBits(),
                  opts.batchAffine)
                        : pippengerAutoWindow(n);
    assert(c >= 1 && c <= 16);
    const std::size_t scalar_bits =
        use_glv ? glv::kHalfBits : Fr::modulusBits();
    const std::size_t num_windows = sgn
                                        ? signedDigitWindows(scalar_bits, c)
                                        : (scalar_bits + c - 1) / c;
    const std::size_t num_buckets = sgn ? (std::size_t(1) << (c - 1))
                                        : (std::size_t(1) << c) - 1;

    // Phase 1: classify every scalar and recode dense ones into the
    // window-major digit slab (digit of point i, column j, window w at
    // (w*n_ext + i)*k + j, so a window reads one contiguous slab and a
    // point's k digits sit together). Trivial {0,1} scalars keep all-zero
    // digits. Under GLV the k1 half recodes into point row i and the k2
    // half into the phi row n + i.
    auto t0 = Clock::now();
    std::vector<std::int32_t> digits(num_windows * n_ext * k);
    std::vector<std::uint8_t> klass(n * k); // 0 = zero, 1 = one, 2 = dense
    const std::size_t stride = n_ext * k;
    rt::parallelFor(
        0, n,
        [&](std::size_t i) {
            for (std::size_t j = 0; j < k; ++j) {
                const Fr &s = cols[j][i];
                // zkphire-lint: ct-exempt(trivial-scalar skip is the Pippenger win; scalar-shaped timing is inherent to bucket MSM)
                const std::uint8_t kl = s.isZero() ? 0 : s.isOne() ? 1 : 2;
                klass[i * k + j] = kl;
                if (kl != 2)
                    continue;
                const auto big = s.toBig();
                std::int32_t *dst = &digits[i * k + j];
                if (use_glv) {
                    ff::BigInt<4> k1, k2;
                    glv::decompose(big, k1, k2);
                    recodeSignedDigits(k1, c, num_windows, dst, stride);
                    recodeSignedDigits(k2, c, num_windows,
                                       &digits[(n + i) * k + j], stride);
                } else if (sgn) {
                    recodeSignedDigits(big, c, num_windows, dst, stride);
                } else {
                    for (std::size_t w = 0; w < num_windows; ++w) {
                        const std::size_t lo = w * c;
                        const unsigned width = unsigned(
                            std::min<std::size_t>(c, scalar_bits - lo));
                        dst[w * stride] = std::int32_t(big.bits(lo, width));
                    }
                }
            }
        },
        /*grain=*/0, /*minGrain=*/256);

    // Serial sweep keeps each column's trivial accumulator in index order
    // (and so its exact Jacobian representation) at every thread count. A
    // point enters the shared walk list if ANY column is dense there.
    std::vector<G1Jacobian> trivial(k, G1Jacobian::identity());
    std::vector<std::size_t> col_dense(k, 0);
    std::vector<std::uint32_t> dense_orig; // original indices with any dense
    dense_orig.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        bool any_dense = false;
        for (std::size_t j = 0; j < k; ++j) {
            switch (klass[i * k + j]) {
            case 0:
                if (stats)
                    ++stats->trivialScalars;
                break;
            case 1:
                trivial[j] = trivial[j].addMixed(points[i]);
                if (stats) {
                    ++stats->trivialScalars;
                    ++stats->pointAdds;
                }
                break;
            default:
                any_dense = true;
                // The batch-affine floor compares bucket-add entries, of
                // which a GLV-split scalar contributes two.
                col_dense[j] += use_glv ? 2 : 1;
                if (stats)
                    ++stats->denseScalars;
                break;
            }
        }
        if (any_dense)
            dense_orig.push_back(std::uint32_t(i));
    }

    // The bucket walk list over extended indices, and (GLV only) the
    // extended point array: original points first, phi points at n + i —
    // filled only where some column is dense (one Fq mul each).
    std::vector<std::uint32_t> dense_idx;
    std::vector<G1Affine> ext_points;
    std::span<const G1Affine> walk_points = points;
    if (use_glv) {
        dense_idx.resize(2 * dense_orig.size());
        for (std::size_t d = 0; d < dense_orig.size(); ++d) {
            dense_idx[2 * d] = dense_orig[d];
            dense_idx[2 * d + 1] = std::uint32_t(n + dense_orig[d]);
        }
        ext_points.resize(2 * n);
        std::copy(points.begin(), points.end(), ext_points.begin());
        rt::parallelFor(
            0, dense_orig.size(),
            [&](std::size_t d) {
                const std::uint32_t i = dense_orig[d];
                ext_points[n + i] = glv::endomorphism(points[i]);
            },
            /*grain=*/0, /*minGrain=*/512);
        walk_points = ext_points;
    } else {
        dense_idx = std::move(dense_orig);
    }
    if (stats)
        stats->recodeMs += msSince(t0);

    // Phase 2: bucket accumulation per window, windows in parallel. Each
    // window's sums are computed by exactly the serial per-window sequence,
    // and the fold below replays the serial double-and-add order, so the
    // result is bit-identical to a single-threaded run. Per-window stats
    // are summed in window order for the same reason. The batched-affine
    // path pays one true inversion per reduction round per window, which
    // only amortizes over enough dense points.
    t0 = Clock::now();
    // Path selection is per COLUMN on the column's own dense count, so a
    // sparse column inside a dense batch takes exactly the path (and so
    // produces exactly the Jacobian representation) its solo run would.
    std::vector<std::uint32_t> ba_cols, jac_cols;
    for (std::size_t j = 0; j < k; ++j) {
        if (sgn && opts.batchAffine &&
            col_dense[j] >= opts.batchAffineMinPoints)
            ba_cols.push_back(std::uint32_t(j));
        else
            jac_cols.push_back(std::uint32_t(j));
    }
    std::vector<G1Jacobian> sums(num_windows * k);
    std::vector<WindowAcc> wacc(num_windows);
    // Below ~256 dense points the per-window work is microseconds and pool
    // dispatch would dominate (mKZG's opening loop issues many shrinking
    // MSMs down to n = 1), so run the window loop inline.
    rt::ScopedThreads serialSmall(dense_idx.size() < 256 ? 1u : 0u);
    // Serial path: round-synchronize the batch inversion across windows by
    // reducing every window in ONE segmented batched-affine call — each
    // pairwise round then pays a single true inversion instead of one per
    // window (bit-identical; see windowSumBatchAffine). Below the entry
    // cap this is a measured 1.2-1.6x on the small MSMs of mKZG opening
    // chains (n <= ~2^11: ~200 inversions collapse to ~7); above it the
    // combined scatter's working set outgrows the cache and the per-round
    // inversions are noise next to the bucket adds, so windows reduce
    // independently (which is also what the parallel path needs).
    constexpr std::size_t kCombineMaxEntries = std::size_t(1) << 16;
    const bool combine_windows =
        !ba_cols.empty() && num_windows > 1 && rt::currentThreads() <= 1 &&
        num_windows * dense_idx.size() * ba_cols.size() <=
            kCombineMaxEntries;
    if (combine_windows) {
        windowSumBatchAffine(walk_points, dense_idx, digits.data(), stride,
                             num_windows, k, ba_cols, num_buckets,
                             sums.data(), wacc[0]);
        for (std::size_t w = 0; w < num_windows && !jac_cols.empty(); ++w)
            for (std::uint32_t j : jac_cols)
                sums[w * k + j] = windowSumJacobian(
                    walk_points, dense_idx, digits.data() + w * stride + j,
                    k, num_buckets, wacc[w]);
    } else {
        rt::parallelFor(
            0, num_windows,
            [&](std::size_t w) {
                const std::int32_t *wdig = digits.data() + w * stride;
                if (!ba_cols.empty())
                    windowSumBatchAffine(walk_points, dense_idx, wdig,
                                         stride, /*num_win=*/1, k, ba_cols,
                                         num_buckets, &sums[w * k], wacc[w]);
                for (std::uint32_t j : jac_cols)
                    sums[w * k + j] = windowSumJacobian(
                        walk_points, dense_idx, wdig + j, k, num_buckets,
                        wacc[w]);
            },
            /*grain=*/1);
    }
    if (stats) {
        for (const WindowAcc &a : wacc) {
            stats->pointAdds += a.pointAdds;
            stats->affineAdds += a.affineAdds;
            stats->batchInversions += a.batchInversions;
        }
        stats->bucketMs += msSince(t0);
    }

    // Phase 3: fold windows from most significant down, c doublings between,
    // independently per column.
    t0 = Clock::now();
    for (std::size_t j = 0; j < k; ++j) {
        G1Jacobian result = G1Jacobian::identity();
        for (std::size_t w = num_windows; w-- > 0;) {
            // zkphire-lint: ct-exempt(skips doublings only while the fold accumulator is still the identity)
            if (!result.isIdentity() || w + 1 != num_windows) {
                for (unsigned d = 0; d < c; ++d) {
                    result = result.dbl();
                    if (stats)
                        ++stats->pointDoubles;
                }
            }
            result = result.add(sums[w * k + j]);
            if (stats)
                ++stats->pointAdds;
        }
        out[j] = result.add(trivial[j]);
    }
    if (stats)
        stats->foldMs += msSince(t0);
    return out;
}

} // namespace

G1Jacobian
msmPippengerOpt(std::span<const Fr> scalars, std::span<const G1Affine> points,
                const MsmOptions &opts, MsmStats *stats)
{
    assert(scalars.size() == points.size());
    const std::span<const Fr> col = scalars;
    return msmBatchCore(std::span<const std::span<const Fr>>(&col, 1), points,
                        opts, stats)[0];
}

G1Jacobian
msmPippenger(std::span<const Fr> scalars, std::span<const G1Affine> points,
             unsigned window_bits, MsmStats *stats)
{
    MsmOptions opts = currentMsmOptions();
    if (window_bits != 0)
        opts.windowBits = window_bits;
    return msmPippengerOpt(scalars, points, opts, stats);
}

std::vector<G1Jacobian>
msmBatch(std::span<const std::span<const Fr>> cols,
         std::span<const G1Affine> points, const MsmOptions &opts,
         MsmStats *stats)
{
    return msmBatchCore(cols, points, opts, stats);
}

MsmAccumulator::MsmAccumulator(std::size_t total_points, std::size_t num_cols,
                               const MsmOptions &opts, MsmStats *stats,
                               std::size_t chunk_hint)
    : opts_(opts), stats_(stats), totalN_(total_points), k_(num_cols),
      sgn_(opts.signedDigits)
{
    assert(total_points > 0 && num_cols > 0);
    // Structural choices (GLV split, window width) are fixed from the TOTAL
    // point count, exactly like a one-shot run over the concatenated chunks
    // would fix them — per-point bucket work is then identical; streaming
    // only adds the per-chunk window-sum merges.
    useGlv_ = sgn_ && opts.glv && glv::available() &&
              msmGlvProfitable(total_points, opts.batchAffine);
    const std::size_t n_ext = useGlv_ ? 2 * total_points : total_points;
    scalarBits_ = useGlv_ ? glv::kHalfBits : Fr::modulusBits();
    if (opts.windowBits != 0) {
        c_ = opts.windowBits;
    } else if (!sgn_) {
        c_ = pippengerAutoWindow(total_points);
    } else {
        // Chunked variant of pippengerAutoWindowSignedBits' argmin: the
        // suffix-sum aggregation runs once per CHUNK per window (its
        // per-chunk sums are then merged), so its term scales with the
        // chunk count. At the default 2^20-element chunk this leaves the
        // optimum at the one-shot width until chunks get tiny, and the
        // added aggregation stays a low-double-digit-percent overhead.
        const std::size_t num_chunks =
            chunk_hint != 0
                ? (total_points + chunk_hint - 1) / chunk_hint
                : 1;
        const double bucket_add = opts.batchAffine
                                      ? msm_cost::kBatchAffineAdd
                                      : msm_cost::kMixedAdd;
        double best_cost = 0;
        unsigned best = 2;
        for (unsigned c = 2; c <= 16; ++c) {
            const double nw = double(signedDigitWindows(scalarBits_, c));
            const double buckets = double(std::size_t(1) << (c - 1));
            const double cost =
                nw * (double(n_ext) * bucket_add +
                      double(num_chunks) * buckets * msm_cost::kAggPerBucket);
            if (best_cost == 0 || cost < best_cost) {
                best_cost = cost;
                best = c;
            }
        }
        c_ = best;
    }
    assert(c_ >= 1 && c_ <= 16);
    numWindows_ = sgn_ ? signedDigitWindows(scalarBits_, c_)
                       : (scalarBits_ + c_ - 1) / c_;
    numBuckets_ = sgn_ ? (std::size_t(1) << (c_ - 1))
                       : (std::size_t(1) << c_) - 1;
    windowSums_.assign(numWindows_ * k_, G1Jacobian::identity());
    trivial_.assign(k_, G1Jacobian::identity());
}

void
MsmAccumulator::add(std::span<const std::span<const Fr>> cols,
                    std::span<const G1Affine> points)
{
    using Clock = std::chrono::steady_clock;
    const std::size_t n = points.size();
    const std::size_t k = k_;
    assert(cols.size() == k && "column count is fixed at construction");
    if (n == 0)
        return;
    rt::failpoint("msm.accum"); // before any bucket state is touched, so an
                                // injected throw leaves the accumulator
                                // observably unmodified
#ifndef NDEBUG
    for (const auto &col : cols)
        assert(col.size() == n && "column/point length mismatch");
#endif
    assert(seen_ + n <= totalN_ && "more points than announced at ctor");
    seen_ += n;

    // Phase 1 (per chunk): classify + recode into the reused digit slab,
    // same layout as msmBatchCore's but chunk-sized. Only the region this
    // chunk uses is re-zeroed.
    auto t0 = Clock::now();
    const std::size_t n_ext = useGlv_ ? 2 * n : n;
    const std::size_t stride = n_ext * k;
    const std::size_t slab = numWindows_ * stride;
    if (digits_.size() < slab)
        digits_.resize(slab);
    std::fill_n(digits_.begin(), slab, 0);
    if (klass_.size() < n * k)
        klass_.resize(n * k);
    const bool use_glv = useGlv_;
    const unsigned c = c_;
    const std::size_t num_windows = numWindows_;
    const std::size_t scalar_bits = scalarBits_;
    rt::parallelFor(
        0, n,
        [&](std::size_t i) {
            for (std::size_t j = 0; j < k; ++j) {
                const Fr &s = cols[j][i];
                // zkphire-lint: ct-exempt(trivial-scalar skip is the Pippenger win; scalar-shaped timing is inherent to bucket MSM)
                const std::uint8_t kl = s.isZero() ? 0 : s.isOne() ? 1 : 2;
                klass_[i * k + j] = kl;
                if (kl != 2)
                    continue;
                const auto big = s.toBig();
                std::int32_t *dst = &digits_[i * k + j];
                if (use_glv) {
                    ff::BigInt<4> k1, k2;
                    glv::decompose(big, k1, k2);
                    recodeSignedDigits(k1, c, num_windows, dst, stride);
                    recodeSignedDigits(k2, c, num_windows,
                                       &digits_[(n + i) * k + j], stride);
                } else if (sgn_) {
                    recodeSignedDigits(big, c, num_windows, dst, stride);
                } else {
                    for (std::size_t w = 0; w < num_windows; ++w) {
                        const std::size_t lo = w * c;
                        const unsigned width = unsigned(
                            std::min<std::size_t>(c, scalar_bits - lo));
                        dst[w * stride] = std::int32_t(big.bits(lo, width));
                    }
                }
            }
        },
        /*grain=*/0, /*minGrain=*/256);

    // Serial in-order sweep, and chunks arrive in index order, so each
    // column's trivial accumulator sees the points in the exact global
    // order of the one-shot kernel.
    std::vector<std::size_t> col_dense(k, 0);
    denseOrig_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        bool any_dense = false;
        for (std::size_t j = 0; j < k; ++j) {
            switch (klass_[i * k + j]) {
            case 0:
                if (stats_)
                    ++stats_->trivialScalars;
                break;
            case 1:
                trivial_[j] = trivial_[j].addMixed(points[i]);
                if (stats_) {
                    ++stats_->trivialScalars;
                    ++stats_->pointAdds;
                }
                break;
            default:
                any_dense = true;
                col_dense[j] += use_glv ? 2 : 1;
                if (stats_)
                    ++stats_->denseScalars;
                break;
            }
        }
        if (any_dense)
            denseOrig_.push_back(std::uint32_t(i));
    }

    std::span<const std::uint32_t> dense_idx(denseOrig_);
    std::span<const G1Affine> walk_points = points;
    if (use_glv) {
        denseIdx_.resize(2 * denseOrig_.size());
        for (std::size_t d = 0; d < denseOrig_.size(); ++d) {
            denseIdx_[2 * d] = denseOrig_[d];
            denseIdx_[2 * d + 1] = std::uint32_t(n + denseOrig_[d]);
        }
        if (extPoints_.size() < 2 * n)
            extPoints_.resize(2 * n);
        std::copy(points.begin(), points.end(), extPoints_.begin());
        rt::parallelFor(
            0, denseOrig_.size(),
            [&](std::size_t d) {
                const std::uint32_t i = denseOrig_[d];
                extPoints_[n + i] = glv::endomorphism(points[i]);
            },
            /*grain=*/0, /*minGrain=*/512);
        dense_idx = std::span<const std::uint32_t>(denseIdx_.data(),
                                                   2 * denseOrig_.size());
        walk_points =
            std::span<const G1Affine>(extPoints_.data(), 2 * n);
    }
    if (stats_)
        stats_->recodeMs += msSince(t0);

    // Phase 2 (per chunk): bucket accumulation + per-window aggregation,
    // then merge this chunk's window sums into the persistent ones. Window
    // sums are linear in the buckets and buckets are additive across
    // chunks, so summing per-chunk aggregates equals aggregating the merged
    // buckets — the group value matches the one-shot kernel's exactly.
    t0 = Clock::now();
    std::vector<std::uint32_t> ba_cols, jac_cols;
    for (std::size_t j = 0; j < k; ++j) {
        if (sgn_ && opts_.batchAffine &&
            col_dense[j] >= opts_.batchAffineMinPoints)
            ba_cols.push_back(std::uint32_t(j));
        else
            jac_cols.push_back(std::uint32_t(j));
    }
    chunkSums_.assign(num_windows * k, G1Jacobian::identity());
    std::vector<WindowAcc> wacc(num_windows);
    const std::size_t num_buckets = numBuckets_;
    rt::ScopedThreads serialSmall(dense_idx.size() < 256 ? 1u : 0u);
    constexpr std::size_t kCombineMaxEntries = std::size_t(1) << 16;
    const bool combine_windows =
        !ba_cols.empty() && num_windows > 1 && rt::currentThreads() <= 1 &&
        num_windows * dense_idx.size() * ba_cols.size() <=
            kCombineMaxEntries;
    if (combine_windows) {
        windowSumBatchAffine(walk_points, dense_idx, digits_.data(), stride,
                             num_windows, k, ba_cols, num_buckets,
                             chunkSums_.data(), wacc[0]);
        for (std::size_t w = 0; w < num_windows && !jac_cols.empty(); ++w)
            for (std::uint32_t j : jac_cols)
                chunkSums_[w * k + j] = windowSumJacobian(
                    walk_points, dense_idx, digits_.data() + w * stride + j,
                    k, num_buckets, wacc[w]);
    } else {
        rt::parallelFor(
            0, num_windows,
            [&](std::size_t w) {
                const std::int32_t *wdig = digits_.data() + w * stride;
                if (!ba_cols.empty())
                    windowSumBatchAffine(walk_points, dense_idx, wdig,
                                         stride, /*num_win=*/1, k, ba_cols,
                                         num_buckets, &chunkSums_[w * k],
                                         wacc[w]);
                for (std::uint32_t j : jac_cols)
                    chunkSums_[w * k + j] = windowSumJacobian(
                        walk_points, dense_idx, wdig + j, k, num_buckets,
                        wacc[w]);
            },
            /*grain=*/1);
    }
    for (std::size_t i = 0; i < num_windows * k; ++i)
        windowSums_[i] = windowSums_[i].add(chunkSums_[i]);
    if (stats_) {
        for (const WindowAcc &a : wacc) {
            stats_->pointAdds += a.pointAdds;
            stats_->affineAdds += a.affineAdds;
            stats_->batchInversions += a.batchInversions;
        }
        stats_->pointAdds += num_windows * k; // chunk-sum merges
        stats_->bucketMs += msSince(t0);
    }
}

void
MsmAccumulator::add(std::span<const Fr> scalars,
                    std::span<const G1Affine> points)
{
    assert(scalars.size() == points.size());
    const std::span<const Fr> col = scalars;
    add(std::span<const std::span<const Fr>>(&col, 1), points);
}

std::vector<G1Jacobian>
MsmAccumulator::finalize()
{
    using Clock = std::chrono::steady_clock;
    assert(seen_ == totalN_ && "finalize before all chunks were added");
    // Phase 3: fold windows most-significant-down with c doublings between,
    // independently per column — verbatim the one-shot kernel's fold over
    // the merged window sums.
    auto t0 = Clock::now();
    std::vector<G1Jacobian> out(k_, G1Jacobian::identity());
    for (std::size_t j = 0; j < k_; ++j) {
        G1Jacobian result = G1Jacobian::identity();
        for (std::size_t w = numWindows_; w-- > 0;) {
            // zkphire-lint: ct-exempt(skips doublings only while the fold accumulator is still the identity)
            if (!result.isIdentity() || w + 1 != numWindows_) {
                for (unsigned d = 0; d < c_; ++d) {
                    result = result.dbl();
                    if (stats_)
                        ++stats_->pointDoubles;
                }
            }
            result = result.add(windowSums_[w * k_ + j]);
            if (stats_)
                ++stats_->pointAdds;
        }
        out[j] = result.add(trivial_[j]);
    }
    if (stats_)
        stats_->foldMs += msSince(t0);
    return out;
}

G1Jacobian
msmPippengerParallel(std::span<const Fr> scalars,
                     std::span<const G1Affine> points, const rt::Config &cfg,
                     unsigned window_bits, MsmStats *stats)
{
    assert(scalars.size() == points.size());
    // Window-level parallelism inside msmPippenger replaced the old
    // split-the-points decomposition: it exposes ~num_windows-way
    // parallelism without redundant per-slice window passes, and keeps the
    // result bit-identical to the serial kernel. A default config inherits
    // the ambient setting.
    rt::ScopedConfig scope(cfg);
    return msmPippenger(scalars, points, window_bits, stats);
}

} // namespace zkphire::ec
