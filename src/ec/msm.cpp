#include "ec/msm.hpp"

#include <cassert>
#include <thread>
#include <vector>

namespace zkphire::ec {

G1Jacobian
msmNaive(std::span<const Fr> scalars, std::span<const G1Affine> points)
{
    assert(scalars.size() == points.size());
    G1Jacobian acc = G1Jacobian::identity();
    for (std::size_t i = 0; i < scalars.size(); ++i)
        acc = acc.add(G1Jacobian::fromAffine(points[i]).mulScalar(scalars[i]));
    return acc;
}

unsigned
pippengerAutoWindow(std::size_t n)
{
    unsigned bits = 1;
    while ((std::size_t(1) << bits) < n)
        ++bits;
    int c = int(bits) - 3;
    if (c < 1)
        c = 1;
    if (c > 16)
        c = 16;
    return unsigned(c);
}

G1Jacobian
msmPippenger(std::span<const Fr> scalars, std::span<const G1Affine> points,
             unsigned window_bits, MsmStats *stats)
{
    assert(scalars.size() == points.size());
    const std::size_t n = scalars.size();
    if (n == 0)
        return G1Jacobian::identity();
    const unsigned c = window_bits ? window_bits : pippengerAutoWindow(n);

    // Canonical scalar bits; classify 0/1 scalars for the sparse fast path
    // the paper's Sparse MSMs exploit (0 skipped, 1 accumulated directly).
    std::vector<ff::BigInt<Fr::numLimbs>> bits(n);
    G1Jacobian trivial_acc = G1Jacobian::identity();
    std::vector<std::uint32_t> dense_idx;
    dense_idx.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        bits[i] = scalars[i].toBig();
        if (scalars[i].isZero()) {
            if (stats)
                ++stats->trivialScalars;
        } else if (scalars[i].isOne()) {
            trivial_acc = trivial_acc.addMixed(points[i]);
            if (stats) {
                ++stats->trivialScalars;
                ++stats->pointAdds;
            }
        } else {
            dense_idx.push_back(std::uint32_t(i));
            if (stats)
                ++stats->denseScalars;
        }
    }

    const std::size_t scalar_bits = Fr::modulusBits();
    const std::size_t num_windows = (scalar_bits + c - 1) / c;
    const std::size_t num_buckets = (std::size_t(1) << c) - 1;

    // Process windows from most significant down, folding with c doublings.
    G1Jacobian result = G1Jacobian::identity();
    std::vector<G1Jacobian> buckets(num_buckets);
    for (std::size_t w = num_windows; w-- > 0;) {
        if (!result.isIdentity() || w + 1 != num_windows) {
            for (unsigned d = 0; d < c; ++d) {
                result = result.dbl();
                if (stats)
                    ++stats->pointDoubles;
            }
        }
        for (auto &b : buckets)
            b = G1Jacobian::identity();
        const std::size_t lo = w * c;
        const unsigned width =
            unsigned(std::min<std::size_t>(c, scalar_bits - lo));
        for (std::uint32_t i : dense_idx) {
            std::uint64_t digit = bits[i].bits(lo, width);
            if (digit == 0)
                continue;
            buckets[digit - 1] = buckets[digit - 1].addMixed(points[i]);
            if (stats)
                ++stats->pointAdds;
        }
        // Suffix-sum aggregation: Sum_d d * bucket[d] with 2(B-1) adds.
        G1Jacobian running = G1Jacobian::identity();
        G1Jacobian window_sum = G1Jacobian::identity();
        for (std::size_t b = num_buckets; b-- > 0;) {
            running = running.add(buckets[b]);
            window_sum = window_sum.add(running);
            if (stats)
                stats->pointAdds += 2;
        }
        result = result.add(window_sum);
        if (stats)
            ++stats->pointAdds;
    }
    return result.add(trivial_acc);
}

G1Jacobian
msmPippengerParallel(std::span<const Fr> scalars,
                     std::span<const G1Affine> points, unsigned threads,
                     unsigned window_bits)
{
    assert(scalars.size() == points.size());
    const std::size_t n = scalars.size();
    if (threads <= 1 || n < 256)
        return msmPippenger(scalars, points, window_bits);
    const unsigned t = unsigned(std::min<std::size_t>(threads, n / 64));
    std::vector<G1Jacobian> partial(t, G1Jacobian::identity());
    std::vector<std::thread> pool;
    pool.reserve(t);
    for (unsigned w = 0; w < t; ++w) {
        std::size_t begin = n * w / t;
        std::size_t end = n * (w + 1) / t;
        pool.emplace_back([&, w, begin, end] {
            partial[w] = msmPippenger(scalars.subspan(begin, end - begin),
                                      points.subspan(begin, end - begin),
                                      window_bits);
        });
    }
    for (auto &th : pool)
        th.join();
    G1Jacobian acc = G1Jacobian::identity();
    for (const auto &p : partial)
        acc = acc.add(p);
    return acc;
}

} // namespace zkphire::ec

