#include "ec/msm.hpp"

#include <cassert>
#include <vector>

#include "rt/parallel.hpp"

namespace zkphire::ec {

G1Jacobian
msmNaive(std::span<const Fr> scalars, std::span<const G1Affine> points)
{
    assert(scalars.size() == points.size());
    G1Jacobian acc = G1Jacobian::identity();
    for (std::size_t i = 0; i < scalars.size(); ++i)
        acc = acc.add(G1Jacobian::fromAffine(points[i]).mulScalar(scalars[i]));
    return acc;
}

unsigned
pippengerAutoWindow(std::size_t n)
{
    unsigned bits = 1;
    while ((std::size_t(1) << bits) < n)
        ++bits;
    int c = int(bits) - 3;
    if (c < 1)
        c = 1;
    if (c > 16)
        c = 16;
    return unsigned(c);
}

namespace {

/**
 * Bucket-accumulate and suffix-sum one c-bit window. This is the per-window
 * body of Pippenger's loop; windows are independent, which is what the
 * parallel path exploits (the paper's MSM unit similarly processes bucket
 * sets in parallel PEs).
 */
G1Jacobian
windowSum(std::span<const G1Affine> points,
          std::span<const ff::BigInt<Fr::numLimbs>> bits,
          std::span<const std::uint32_t> dense_idx, std::size_t w, unsigned c,
          std::size_t scalar_bits, MsmStats *stats)
{
    const std::size_t num_buckets = (std::size_t(1) << c) - 1;
    std::vector<G1Jacobian> buckets(num_buckets, G1Jacobian::identity());
    const std::size_t lo = w * c;
    const unsigned width = unsigned(std::min<std::size_t>(c, scalar_bits - lo));
    for (std::uint32_t i : dense_idx) {
        std::uint64_t digit = bits[i].bits(lo, width);
        if (digit == 0)
            continue;
        buckets[digit - 1] = buckets[digit - 1].addMixed(points[i]);
        if (stats)
            ++stats->pointAdds;
    }
    // Suffix-sum aggregation: Sum_d d * bucket[d] with 2(B-1) adds.
    G1Jacobian running = G1Jacobian::identity();
    G1Jacobian sum = G1Jacobian::identity();
    for (std::size_t b = num_buckets; b-- > 0;) {
        running = running.add(buckets[b]);
        sum = sum.add(running);
        if (stats)
            stats->pointAdds += 2;
    }
    return sum;
}

} // namespace

G1Jacobian
msmPippenger(std::span<const Fr> scalars, std::span<const G1Affine> points,
             unsigned window_bits, MsmStats *stats)
{
    assert(scalars.size() == points.size());
    const std::size_t n = scalars.size();
    if (n == 0)
        return G1Jacobian::identity();
    const unsigned c = window_bits ? window_bits : pippengerAutoWindow(n);

    // Canonical scalar bits (parallel: per-element Montgomery reductions are
    // independent) and 0/1 classification for the sparse fast path the
    // paper's Sparse MSMs exploit (0 skipped, 1 accumulated directly).
    std::vector<ff::BigInt<Fr::numLimbs>> bits(n);
    std::vector<std::uint8_t> klass(n); // 0 = zero, 1 = one, 2 = dense
    rt::parallelFor(
        0, n,
        [&](std::size_t i) {
            bits[i] = scalars[i].toBig();
            klass[i] = scalars[i].isZero() ? 0 : scalars[i].isOne() ? 1 : 2;
        },
        /*grain=*/0, /*minGrain=*/512);

    // Serial sweep keeps the trivial accumulator's addition order (and so
    // its exact Jacobian representation) identical at every thread count.
    G1Jacobian trivial_acc = G1Jacobian::identity();
    std::vector<std::uint32_t> dense_idx;
    dense_idx.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (klass[i] == 0) {
            if (stats)
                ++stats->trivialScalars;
        } else if (klass[i] == 1) {
            trivial_acc = trivial_acc.addMixed(points[i]);
            if (stats) {
                ++stats->trivialScalars;
                ++stats->pointAdds;
            }
        } else {
            dense_idx.push_back(std::uint32_t(i));
            if (stats)
                ++stats->denseScalars;
        }
    }

    const std::size_t scalar_bits = Fr::modulusBits();
    const std::size_t num_windows = (scalar_bits + c - 1) / c;

    // Bucket accumulation per window, windows in parallel. Each window's sum
    // is computed by exactly the serial per-window sequence, and the fold
    // below replays the serial double-and-add order, so the result is
    // bit-identical to a single-threaded run. Per-window stats are summed in
    // window order for the same reason.
    std::vector<G1Jacobian> sums(num_windows);
    std::vector<MsmStats> wstats(stats ? num_windows : 0);
    // Below ~256 dense points the per-window work is microseconds and pool
    // dispatch would dominate (mKZG's opening loop issues many shrinking
    // MSMs down to n = 1), so run the window loop inline.
    rt::ScopedThreads serialSmall(dense_idx.size() < 256 ? 1u : 0u);
    rt::parallelFor(
        0, num_windows,
        [&](std::size_t w) {
            sums[w] = windowSum(points, bits, dense_idx, w, c, scalar_bits,
                                stats ? &wstats[w] : nullptr);
        },
        /*grain=*/1);
    if (stats)
        for (const MsmStats &s : wstats)
            stats->pointAdds += s.pointAdds;

    // Fold windows from most significant down with c doublings between.
    G1Jacobian result = G1Jacobian::identity();
    for (std::size_t w = num_windows; w-- > 0;) {
        if (!result.isIdentity() || w + 1 != num_windows) {
            for (unsigned d = 0; d < c; ++d) {
                result = result.dbl();
                if (stats)
                    ++stats->pointDoubles;
            }
        }
        result = result.add(sums[w]);
        if (stats)
            ++stats->pointAdds;
    }
    return result.add(trivial_acc);
}

G1Jacobian
msmPippengerParallel(std::span<const Fr> scalars,
                     std::span<const G1Affine> points, const rt::Config &cfg,
                     unsigned window_bits)
{
    assert(scalars.size() == points.size());
    // Window-level parallelism inside msmPippenger replaced the old
    // split-the-points decomposition: it exposes ~num_windows-way
    // parallelism without redundant per-slice window passes, and keeps the
    // result bit-identical to the serial kernel. A default config inherits
    // the ambient setting.
    rt::ScopedConfig scope(cfg);
    return msmPippenger(scalars, points, window_bits);
}

} // namespace zkphire::ec
