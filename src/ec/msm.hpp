/**
 * @file
 * Multi-scalar multiplication: s = Sum_i k_i * P_i.
 *
 * Pippenger's bucket method (paper §II-B) — the dominant kernel of
 * HyperPlonk's Witness Commitment, Wire Identity, and Polynomial Opening
 * steps. The hot path slices scalars into balanced signed digits once
 * (src/ec/recode.hpp), halving the bucket count per window, and resolves
 * bucket additions with batched-affine arithmetic (src/ec/batch_add.hpp)
 * so the per-point cost drops from a Jacobian mixed add to ~6 field
 * multiplications. msmBatch extends the same core to several scalar
 * columns over one shared point array — the witness-commitment shape —
 * recoding each column once and walking the points once per window for
 * all columns. The op-count statistics feed both the MSM hardware model
 * and the CPU baseline calibration, so the functional kernel and the
 * performance model stay structurally identical.
 */
#ifndef ZKPHIRE_EC_MSM_HPP
#define ZKPHIRE_EC_MSM_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "ec/g1.hpp"
#include "rt/config.hpp"

namespace zkphire::ec {

/** Operation counts and phase timings gathered while running an MSM. */
struct MsmStats {
    std::uint64_t pointAdds = 0;   ///< Jacobian bucket/aggregation additions.
    std::uint64_t pointDoubles = 0;///< Window-combining doublings.
    std::uint64_t trivialScalars = 0; ///< Scalars in {0, 1} skipped/fast-pathed.
    std::uint64_t denseScalars = 0;   ///< Full-width scalars.
    std::uint64_t affineAdds = 0;     ///< Batched-affine bucket additions.
    std::uint64_t batchInversions = 0;///< Batch-inversion rounds (1 true
                                      ///< field inversion each).
    double recodeMs = 0; ///< Scalar classify + signed-digit recoding.
    double bucketMs = 0; ///< Bucket accumulation + per-window aggregation.
    double foldMs = 0;   ///< Window fold (doublings + adds).
};

/**
 * MSM algorithm knobs. The defaults are the fast path; the other settings
 * exist for benchmarks, tests, and DSE-style experiments (engine contexts
 * carry a per-context value, applied via ScopedMsmOptions).
 */
struct MsmOptions {
    /** Bucket window size c; 0 selects automatically. */
    unsigned windowBits = 0;
    /** Balanced signed-digit slicing (2^(c-1) buckets) instead of unsigned
     *  (2^c - 1 buckets). */
    bool signedDigits = true;
    /** Batched-affine bucket accumulation (requires signedDigits). */
    bool batchAffine = true;
    /**
     * GLV endomorphism splitting (requires signedDigits): every scalar is
     * decomposed as k1 + lambda*k2 with ~128-bit halves (src/ec/glv.hpp)
     * and the point set doubled with the free endomorphism phi(P), halving
     * the window passes and fold doublings. Results are equal as group
     * elements either way (identical bytes after affine normalization);
     * ignored when the GLV parameter self-checks fail or when
     * msmGlvProfitable says plain slicing is cheaper at this size.
     */
    bool glv = true;
    /**
     * Dense-point floor below which batchAffine falls back to Jacobian
     * buckets: each reduction round pays one true field inversion per
     * window, which only amortizes over enough points. 0 forces
     * batched-affine at any size (tests).
     */
    std::size_t batchAffineMinPoints = 512;
};

namespace detail {
inline thread_local MsmOptions t_msmOptions{};
} // namespace detail

/** Options used when a call site does not pass explicit MsmOptions. */
inline const MsmOptions &
currentMsmOptions()
{
    return detail::t_msmOptions;
}

/**
 * RAII override of currentMsmOptions() on this thread, mirroring
 * rt::ScopedConfig: prover entry points apply their context's options so
 * every MSM under them (pcs commits, quotient openings) picks them up
 * without threading a parameter through the PCS layer. Results are
 * bit-identical under every option value; only speed moves.
 */
class ScopedMsmOptions
{
  public:
    explicit ScopedMsmOptions(const MsmOptions &opts)
        : saved(detail::t_msmOptions)
    {
        detail::t_msmOptions = opts;
    }
    ~ScopedMsmOptions() { detail::t_msmOptions = saved; }
    ScopedMsmOptions(const ScopedMsmOptions &) = delete;
    ScopedMsmOptions &operator=(const ScopedMsmOptions &) = delete;

  private:
    MsmOptions saved;
};

/** Reference MSM: per-point double-and-add; O(n * 255) ops. Tests only. */
G1Jacobian msmNaive(std::span<const Fr> scalars,
                    std::span<const G1Affine> points);

/**
 * Pippenger MSM under the ambient currentMsmOptions().
 *
 * @param window_bits Bucket window size c; 0 defers to the ambient options
 *        (and then to the automatic choice), matching the DSE knob range.
 * @param stats Optional op-count/phase-timing output (accumulated).
 */
G1Jacobian msmPippenger(std::span<const Fr> scalars,
                        std::span<const G1Affine> points,
                        unsigned window_bits = 0, MsmStats *stats = nullptr);

/** Pippenger MSM with explicit algorithm knobs (benchmarks, experiments). */
G1Jacobian msmPippengerOpt(std::span<const Fr> scalars,
                           std::span<const G1Affine> points,
                           const MsmOptions &opts,
                           MsmStats *stats = nullptr);

/**
 * Multi-MSM over one shared point array: out[j] = Sum_i cols[j][i] * P_i.
 *
 * Every column is recoded once, and each window walks the point array once
 * for all k columns, scattering each point into k bucket sets; the
 * batched-affine reduction then amortizes its inversions over all k * B
 * buckets of the window. This is the k-witness-column commitment shape:
 * k MSMs for the price of ~one point walk. Each out[j] equals the
 * independent msmPippenger result for that column exactly.
 *
 * Columns must all have points.size() entries.
 */
std::vector<G1Jacobian> msmBatch(std::span<const std::span<const Fr>> cols,
                                 std::span<const G1Affine> points,
                                 const MsmOptions &opts = currentMsmOptions(),
                                 MsmStats *stats = nullptr);

/**
 * Fq-multiplication prices of the MSM pipeline's point operations with
 * the fixed-limb kernels (dedicated squaring at S ~ 0.8 M). ONE source of
 * truth shared by the kernel's window argmin (pippengerAutoWindowSigned)
 * and the CPU baseline model (sim::CpuModel::msmFieldMuls) — retune here
 * and both move together.
 */
namespace msm_cost {
/** Batched-affine pair addition: 2M + 1S, plus the 3 M of the amortized
 *  Montgomery inversion trick. */
inline constexpr double kBatchAffineAdd = 5.8;
/** Jacobian mixed addition: 7M + 4S. */
inline constexpr double kMixedAdd = 10.2;
/** Full Jacobian addition: 11M + 5S. */
inline constexpr double kFullAdd = 15.0;
/** Suffix-sum aggregation per bucket: one mixed + one full add. */
inline constexpr double kAggPerBucket = kMixedAdd + kFullAdd;
/** Jacobian doubling: 2M + 5S + shifts. */
inline constexpr double kDouble = 8.0;
} // namespace msm_cost

/** Automatic window size for unsigned slicing (~log2(n) - 3, in [1, 16]). */
unsigned pippengerAutoWindow(std::size_t n);

/**
 * Automatic window size for signed-digit slicing: argmin of the add-count
 * model with 2^(c-1) buckets, priced for batched-affine or Jacobian
 * bucket adds per the flag (Jacobian adds are dearer, so the optimum sits
 * ~1 bit narrower). The halved bucket count supports a wider window than
 * the unsigned choice at the same n.
 */
unsigned pippengerAutoWindowSigned(std::size_t n, bool batch_affine = true);

/**
 * The window argmin underlying pippengerAutoWindowSigned, parameterized on
 * the recoded scalar width: the GLV path optimizes over (2n points,
 * glv::kHalfBits-bit halves) instead of (n, Fr::modulusBits()). Shared with
 * sim::CpuModel::msmFieldMuls so kernel and cost model pick identical c.
 */
unsigned pippengerAutoWindowSignedBits(std::size_t n, std::size_t scalar_bits,
                                       bool batch_affine = true);

/**
 * Whether the GLV split is predicted to beat plain 255-bit slicing for an
 * n-point signed-digit MSM under the msm_cost op model (it loses once the
 * c <= 16 window cap stops the half-width argmin from widening, around
 * 2^20 points). The kernel consults this before enabling the split and
 * sim::CpuModel::msmFieldMuls mirrors it, so model and kernel always pick
 * the same structure.
 */
bool msmGlvProfitable(std::size_t n, bool batch_affine = true);

/**
 * Chunk-streaming multi-column Pippenger accumulator: the commit path for
 * tables too big to materialize. Construction fixes the window structure
 * from the TOTAL point count (so per-point work matches the one-shot
 * kernel); each add() recodes one chunk of scalars into a chunk-sized
 * digit slab, accumulates its buckets (batched-affine where profitable),
 * and suffix-sums them into persistent per-(window, column) partial sums —
 * bucket weights are linear, so per-chunk aggregation sums to exactly the
 * whole-run aggregate. Peak memory is O(chunk * num_windows) for the digit
 * slab plus O(num_windows * columns) persistent sums, independent of the
 * total size. finalize() folds the windows and returns results equal to
 * msmBatch over the concatenated chunks as group elements (identical bytes
 * after affine normalization — the transcript only ever sees normalized
 * points).
 */
class MsmAccumulator
{
  public:
    /**
     * @param total_points Total MSM size (all chunks); fixes window bits.
     * @param num_cols     Columns fed to every add() call.
     * @param chunk_hint   Expected chunk size; biases the window argmin
     *                     with the per-chunk aggregation cost (0 = one
     *                     chunk, i.e. the one-shot choice).
     */
    MsmAccumulator(std::size_t total_points, std::size_t num_cols,
                   const MsmOptions &opts = currentMsmOptions(),
                   MsmStats *stats = nullptr, std::size_t chunk_hint = 0);

    /** Feed the next chunk: cols[j] are column j's scalars for it, points
     *  the matching basis slice. Chunks arrive in index order. */
    void add(std::span<const std::span<const Fr>> cols,
             std::span<const G1Affine> points);
    /** Single-column convenience. */
    void add(std::span<const Fr> scalars, std::span<const G1Affine> points);

    /** Fold windows + trivial accumulators; call once, after all chunks. */
    std::vector<G1Jacobian> finalize();

    unsigned windowBits() const { return c_; }
    std::size_t pointsSeen() const { return seen_; }

  private:
    MsmOptions opts_;
    MsmStats *stats_;
    std::size_t totalN_;
    std::size_t k_;
    std::size_t seen_ = 0;
    bool sgn_;
    bool useGlv_;
    unsigned c_ = 0;
    std::size_t scalarBits_;
    std::size_t numWindows_;
    std::size_t numBuckets_;
    std::vector<G1Jacobian> windowSums_; ///< num_windows * k partial sums.
    std::vector<G1Jacobian> trivial_;    ///< Per-column {1}-scalar sums.
    // Chunk scratch reused across add() calls (sized to the largest chunk).
    std::vector<std::int32_t> digits_;
    std::vector<std::uint8_t> klass_;
    std::vector<std::uint32_t> denseOrig_;
    std::vector<std::uint32_t> denseIdx_;
    std::vector<G1Affine> extPoints_;
    std::vector<G1Jacobian> chunkSums_;
};

/**
 * Pippenger MSM with an explicit runtime config. Bucket accumulation runs
 * window-parallel on the zkphire::rt pool (each window's bucket set is
 * independent, mirroring the paper's parallel MSM PEs); the window fold
 * replays the serial order, so the result is bit-identical to
 * msmPippenger at one thread. A default Config inherits the ambient
 * setting (ZKPHIRE_THREADS env or hardware concurrency).
 */
G1Jacobian msmPippengerParallel(std::span<const Fr> scalars,
                                std::span<const G1Affine> points,
                                const rt::Config &cfg = {},
                                unsigned window_bits = 0,
                                MsmStats *stats = nullptr);

} // namespace zkphire::ec

#endif // ZKPHIRE_EC_MSM_HPP
