/**
 * @file
 * Multi-scalar multiplication: s = Sum_i k_i * P_i.
 *
 * Pippenger's bucket method (paper §II-B) with windowed scalar slicing; the
 * dominant kernel of HyperPlonk's Witness Commitment, Wire Identity, and
 * Polynomial Opening steps. The op-count statistics (point additions and
 * doublings actually performed, split by dense vs 0/1-trivial scalars) feed
 * both the MSM hardware model and the CPU baseline calibration, so the
 * functional kernel and the performance model stay structurally identical.
 */
#ifndef ZKPHIRE_EC_MSM_HPP
#define ZKPHIRE_EC_MSM_HPP

#include <cstdint>
#include <span>

#include "ec/g1.hpp"
#include "rt/config.hpp"

namespace zkphire::ec {

/** Operation counts gathered while running an MSM. */
struct MsmStats {
    std::uint64_t pointAdds = 0;   ///< Bucket/aggregation additions.
    std::uint64_t pointDoubles = 0;///< Window-combining doublings.
    std::uint64_t trivialScalars = 0; ///< Scalars in {0, 1} skipped/fast-pathed.
    std::uint64_t denseScalars = 0;   ///< Full-width scalars.
};

/** Reference MSM: per-point double-and-add; O(n * 255) ops. Tests only. */
G1Jacobian msmNaive(std::span<const Fr> scalars,
                    std::span<const G1Affine> points);

/**
 * Pippenger MSM.
 *
 * @param window_bits Bucket window size c; 0 selects automatically
 *        (~log2(n) - 3, clamped to [1, 16]), matching the DSE knob range.
 * @param stats Optional op-count output.
 */
G1Jacobian msmPippenger(std::span<const Fr> scalars,
                        std::span<const G1Affine> points,
                        unsigned window_bits = 0, MsmStats *stats = nullptr);

/** Automatic window size used when window_bits == 0. */
unsigned pippengerAutoWindow(std::size_t n);

/**
 * Pippenger MSM with an explicit runtime config. Bucket accumulation runs
 * window-parallel on the zkphire::rt pool (each window's bucket set is
 * independent, mirroring the paper's parallel MSM PEs); the window fold
 * replays the serial order, so the result is bit-identical to
 * msmPippenger at one thread. A default Config inherits the ambient
 * setting (ZKPHIRE_THREADS env or hardware concurrency).
 */
G1Jacobian msmPippengerParallel(std::span<const Fr> scalars,
                                std::span<const G1Affine> points,
                                const rt::Config &cfg = {},
                                unsigned window_bits = 0);

} // namespace zkphire::ec

#endif // ZKPHIRE_EC_MSM_HPP
