#include "engine/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace zkphire::engine {

namespace {

/** Bucket index for a sample in milliseconds: floor(log2(us)), clamped. */
std::size_t
bucketFor(double ms)
{
    const double us = ms * 1000.0;
    if (!(us >= 1.0)) // sub-us, zero, or NaN
        return 0;
    int b = int(std::floor(std::log2(us)));
    if (b < 0)
        b = 0;
    if (std::size_t(b) >= LatencyHistogram::kBuckets)
        b = int(LatencyHistogram::kBuckets) - 1;
    return std::size_t(b);
}

} // namespace

void
LatencyHistogram::record(double ms)
{
    if (ms < 0)
        ms = 0;
    ++counts[bucketFor(ms)];
    ++total;
    sum_ms += ms;
    max_ms = std::max(max_ms, ms);
}

double
LatencyHistogram::quantileMs(double q) const
{
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Rank of the target sample (1-based ceiling, the standard nearest-rank
    // definition); walk the buckets to the one containing it.
    const std::uint64_t rank =
        std::max<std::uint64_t>(1, std::uint64_t(std::ceil(q * double(total))));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        if (counts[b] == 0)
            continue;
        if (seen + counts[b] >= rank) {
            // Interpolate linearly inside [2^b, 2^(b+1)) us by the rank's
            // position among this bucket's samples.
            const double lo_us = b == 0 ? 0.0 : std::ldexp(1.0, int(b));
            const double hi_us = std::ldexp(1.0, int(b) + 1);
            const double frac =
                double(rank - seen) / double(counts[b]); // (0, 1]
            const double us = lo_us + frac * (hi_us - lo_us);
            // Never report beyond the observed maximum (the top bucket is
            // open-ended).
            return std::min(us / 1000.0, max_ms);
        }
        seen += counts[b];
    }
    return max_ms;
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    for (std::size_t b = 0; b < kBuckets; ++b)
        counts[b] += other.counts[b];
    total += other.total;
    sum_ms += other.sum_ms;
    max_ms = std::max(max_ms, other.max_ms);
}

} // namespace zkphire::engine
