#include "engine/shard.hpp"

#include "rt/parallel.hpp"

namespace zkphire::engine {

void
ShardGroup::execUnit(const std::function<void()> &unit, const rt::Config *cfg)
{
    try {
        // A unit must not re-shard through the group that is executing it
        // (the owner would deadlock waiting for itself), so the ambient
        // runner is cleared for the unit's extent. Helpers additionally pin
        // their own lane config; the owner already runs under the job's.
        rt::ScopedUnitRunner noNesting(nullptr);
        if (cfg != nullptr) {
            rt::ScopedConfig laneScope(*cfg);
            unit();
        } else {
            unit();
        }
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu);
        if (!firstError)
            firstError = std::current_exception();
    }
}

void
ShardGroup::drainBatch(std::unique_lock<std::mutex> &lk, const rt::Config *cfg,
                       bool isHelper)
{
    while (batch != nullptr && nextUnit < batchSize &&
           !(isHelper && recalled)) {
        const std::size_t idx = nextUnit++;
        lk.unlock();
        execUnit(batch[idx], cfg);
        lk.lock();
        if (++doneUnits == batchSize)
            cv.notify_all();
    }
}

void
ShardGroup::run(std::span<const std::function<void()>> units)
{
    if (units.empty())
        return;
    {
        std::unique_lock<std::mutex> lk(mu);
        if (expected == departed || running) {
            // No helpers (none reserved, or all recalled/released already),
            // or a unit body re-entered run(): inline fallback.
            lk.unlock();
            for (const auto &unit : units)
                execUnit(unit, nullptr);
            lk.lock();
            std::exception_ptr err = std::exchange(firstError, nullptr);
            lk.unlock();
            if (err)
                std::rethrow_exception(err);
            return;
        }
        running = true;
        batch = units.data();
        batchSize = units.size();
        nextUnit = 0;
        doneUnits = 0;
        cv.notify_all();
        // The owner claims units too; its drain runs the cursor to the end,
        // so units recalled helpers never picked up land here.
        drainBatch(lk, nullptr, /*isHelper=*/false);
        cv.wait(lk, [&] { return doneUnits == batchSize; });
        batch = nullptr;
        batchSize = 0;
        running = false;
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(mu);
        err = std::exchange(firstError, nullptr);
    }
    if (err)
        std::rethrow_exception(err);
}

void
ShardGroup::helperServe(const rt::Config &cfg)
{
    std::unique_lock<std::mutex> lk(mu);
    for (;;) {
        cv.wait(lk, [&] {
            return released || recalled ||
                   (batch != nullptr && nextUnit < batchSize);
        });
        if (released || recalled)
            break; // depart; the owner absorbs any unclaimed units
        drainBatch(lk, &cfg, /*isHelper=*/true);
    }
    ++departed;
    cv.notify_all();
}

void
ShardGroup::recall()
{
    std::lock_guard<std::mutex> lk(mu);
    recalled = true;
    cv.notify_all();
}

void
ShardGroup::disband()
{
    std::unique_lock<std::mutex> lk(mu);
    released = true;
    cv.notify_all();
    cv.wait(lk, [&] { return departed == expected; });
}

} // namespace zkphire::engine
