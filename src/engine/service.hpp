/**
 * @file
 * ProofService: a job-based prover frontend over one ProverContext.
 *
 * The service decouples workload submission from backend execution: callers
 * enqueue ProofRequests (proving key + witness-bearing circuit + optional
 * stats sink) and receive futures that resolve to ProofResults. Jobs run on
 * a fixed set of lanes — lanes == 1 is a sequential service; lanes == N
 * keeps N proofs in flight at once.
 *
 * Thread budgeting: the context's budget (config().threads, or the runtime
 * default when 0) is split across the lanes (even split, remainder to the
 * first lanes), and every lane owns a PRIVATE rt::ThreadPool of its
 * sub-budget. Concurrent jobs therefore never contend on one pool's region
 * lock, and for lanes <= budget the aggregate worker count equals the
 * configured budget regardless of how many jobs are in flight; asking for
 * more lanes than budgeted threads oversubscribes (one serial thread per
 * lane). The split and the pools are fixed at construction — a later
 * ProverContext::setConfig changes the remaining fields (e.g. minGrain)
 * for subsequent jobs, but not the thread split.
 *
 * Determinism: every kernel in the prover is bit-identical at any thread
 * count, so a job's proof is byte-identical to the single-shot
 * hyperplonk::prove path for the same circuit — independent of the lane
 * count, the sub-budget, or what other jobs are running
 * (tests/test_engine.cpp locks this).
 */
#ifndef ZKPHIRE_ENGINE_SERVICE_HPP
#define ZKPHIRE_ENGINE_SERVICE_HPP

#include <condition_variable>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "engine/context.hpp"

namespace zkphire::engine {

/** One unit of work. Pointed-to objects are caller-owned and must stay
 *  alive until the job's future resolves. */
struct ProofRequest {
    const hyperplonk::ProvingKey *pk = nullptr;
    const hyperplonk::Circuit *circuit = nullptr;
    /** Optional caller-owned sink; also copied into ProofResult::stats. */
    hyperplonk::ProverStats *stats = nullptr;
};

struct ProofResult {
    bool ok = false;
    std::string error; ///< Set when ok == false.
    hyperplonk::HyperPlonkProof proof;
    hyperplonk::ProverStats stats;
};

class ProofService
{
  public:
    /**
     * @param ctx   Context supplying config and the shared plan cache; must
     *              outlive the service.
     * @param lanes Jobs in flight at once (0 is treated as 1).
     */
    explicit ProofService(const ProverContext &ctx, unsigned lanes = 1);

    /** Drains every queued job, then joins the lanes. */
    ~ProofService();

    ProofService(const ProofService &) = delete;
    ProofService &operator=(const ProofService &) = delete;

    unsigned numLanes() const { return unsigned(laneThreads.size()); }
    /** Base per-lane thread budget (lanes covering the remainder of an
     *  uneven split get one more). */
    unsigned laneThreadBudget() const { return subBudget; }

    /** Enqueue one job; the future resolves when it completes. Errors are
     *  reported in ProofResult::error, never thrown through the future. */
    std::future<ProofResult> submit(const ProofRequest &req);

    /** Submit a batch and wait for all of it; results in request order. */
    std::vector<ProofResult> proveAll(const std::vector<ProofRequest> &reqs);

  private:
    struct Job {
        ProofRequest req;
        std::promise<ProofResult> done;
    };

    void laneLoop(unsigned laneBudget);
    ProofResult runJob(const ProofRequest &req, const rt::Config &laneCfg);

    const ProverContext &ctx;
    unsigned subBudget = 1;
    std::vector<std::thread> laneThreads;
    std::mutex qMu;
    std::condition_variable qCv;
    std::deque<Job> queue;
    bool stopping = false;
};

} // namespace zkphire::engine

#endif // ZKPHIRE_ENGINE_SERVICE_HPP
