/**
 * @file
 * ProofService: a traffic-worthy proof factory over one ProverContext.
 *
 * The service decouples workload submission from backend execution. Callers
 * submit ProofRequests — with an optional priority and deadline — and
 * receive futures that resolve to ProofResults. Errors are NEVER thrown
 * through a future: every accepted or rejected submission resolves with a
 * typed ProofStatus, including submissions that race the destructor
 * (ServiceStopping) and jobs whose deadline passes while queued
 * (DeadlineExpired).
 *
 * Admission: the queue is bounded by ServiceOptions::queueCapacity (0 =
 * unbounded). At capacity, AdmissionPolicy::Block parks the submitting
 * thread until space frees (or the service stops); AdmissionPolicy::Reject
 * resolves the future immediately with QueueFull.
 *
 * Scheduling: lanes pick the best runnable entry instead of FIFO order —
 * highest priority first, then earliest deadline, then online-phase
 * entries before setup-phase entries (finish started work first), then
 * arrival order. Each proof runs as a two-phase lifecycle (the
 * hyperplonk::proveSetup / proveOnline split): after setup the job is
 * re-enqueued, so the setup of one request overlaps the online phase of
 * another and a lane is never pinned to one request end-to-end.
 *
 * Intra-proof sharding: when a lane dispatches a phase, the queue is empty,
 * and other lanes are idle, the idle lanes are reserved as helpers
 * (engine::ShardGroup) and the proof's independent work units — per-column
 * commitment MSMs, per-round sumcheck range splits, the two opening
 * chains — spread across them. One huge request therefore uses the whole
 * machine when it is alone, without monopolizing it when it is not: groups
 * last a single phase and idleness is re-evaluated at every phase boundary.
 *
 * Thread budgeting: the context's budget (config().threads, or the runtime
 * default when 0) is split evenly across the lanes (remainder to the first
 * lanes — laneThreadBudgets() exposes the exact split), and every lane owns
 * a PRIVATE rt::ThreadPool of its sub-budget, so in-flight jobs never
 * contend on one pool's region lock. Asking for more lanes than budgeted
 * threads oversubscribes (one serial thread per lane). The split and the
 * pools are fixed at construction; ProverContext::setConfig changes the
 * remaining fields (e.g. minGrain) for subsequent jobs.
 *
 * Determinism: every kernel is bit-identical at any thread count, and every
 * sharded work unit writes index-addressed slots merged in index order, so
 * a job's proof is byte-identical to the single-shot hyperplonk::prove path
 * for the same circuit — independent of the lane count, the shard width,
 * the schedule, or what other jobs are running (tests/test_engine.cpp and
 * tests/test_engine_sched.cpp lock this).
 *
 * Observability: metrics() snapshots admission/outcome counters, queue
 * depth, sharding usage, and per-phase latency histograms with p50/p99
 * (engine/metrics.hpp).
 */
#ifndef ZKPHIRE_ENGINE_SERVICE_HPP
#define ZKPHIRE_ENGINE_SERVICE_HPP

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/context.hpp"
#include "engine/metrics.hpp"
#include "engine/shard.hpp"
#include "rt/cancel.hpp"

namespace zkphire::engine {

/** One unit of work. Pointed-to objects are caller-owned and must stay
 *  alive until the job's future resolves. */
struct ProofRequest {
    const hyperplonk::ProvingKey *pk = nullptr;
    const hyperplonk::Circuit *circuit = nullptr;
    /** Optional caller-owned sink; also copied into ProofResult::stats. */
    hyperplonk::ProverStats *stats = nullptr;
};

/** Typed outcome of a submission (ProofResult::status). */
enum class ProofStatus {
    Ok,              ///< Proof produced.
    BadRequest,      ///< Missing proving key or circuit.
    QueueFull,       ///< Rejected at admission (Reject policy, queue full).
    DeadlineExpired, ///< Deadline passed while queued or mid-proof.
    ServiceStopping, ///< Submitted against a stopping/destroyed service.
    ProverError,     ///< The prover threw; error carries the message.
    Cancelled,       ///< cancel(jobId) landed before the proof finished.
};

struct ProofResult {
    bool ok = false;
    ProofStatus status = ProofStatus::ProverError;
    std::string error; ///< Set when ok == false.
    hyperplonk::HyperPlonkProof proof;
    hyperplonk::ProverStats stats;
    /** Widest lane group (1 + helpers) any phase of this job ran with. */
    unsigned shardLanes = 1;
};

/**
 * What to do when a prover stage fails with a RESOURCE error — bad_alloc,
 * or a system_error carrying ENOMEM/ENOSPC/EMFILE. Only those retry: they
 * are environmental and a later (or degraded) attempt can succeed, whereas
 * a logic error (anything else the prover throws, including an injected
 * rt::InjectedFault) would fail identically every time and resolves
 * ProverError on the first attempt.
 */
struct RetryPolicy {
    /** Total attempts, first included. 1 (default) = never retry. */
    unsigned maxAttempts = 1;
    /** Delay before attempt 2; later attempts multiply by backoffFactor,
     *  capped at maxBackoff. The job waits out its backoff in the queue
     *  (lanes skip it), so a backoff never blocks a lane. */
    std::chrono::milliseconds backoff{5};
    double backoffFactor = 2.0;
    std::chrono::milliseconds maxBackoff{1000};
    /** Re-run failed attempts with rt::Config::streamThreshold = 1, forcing
     *  every prover table onto the out-of-core mmap-slab backend: peak RSS
     *  drops to O(chunk), which is exactly what an ENOMEM/ENOSPC failure
     *  calls for. Streaming is transcript-invariant, so a degraded retry's
     *  proof is byte-identical to a fault-free run. */
    bool degradeToStreaming = true;
};

/** Per-submission scheduling attributes. */
struct SubmitOptions {
    /** Higher runs earlier. Default 0. */
    int priority = 0;
    /** Absolute deadline. Jobs still queued past it resolve with
     *  DeadlineExpired; a job already executing observes it through its
     *  cancel token and aborts at the next chunk/round boundary. Default:
     *  none. */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    /** Recovery policy for resource-class prover failures. */
    RetryPolicy retry;

    /** Convenience: a deadline dur from now. */
    template <class Rep, class Period>
    static SubmitOptions
    deadlineIn(std::chrono::duration<Rep, Period> dur, int priority = 0)
    {
        SubmitOptions sub;
        sub.priority = priority;
        sub.deadline = std::chrono::steady_clock::now() + dur;
        return sub;
    }
};

/** A submission's identity + result: the id addresses cancel(). */
struct JobHandle {
    std::uint64_t id = 0;
    std::future<ProofResult> future;
};

/** What submit() does when the queue is at capacity. */
enum class AdmissionPolicy {
    Block,  ///< Park the submitter until space frees or the service stops.
    Reject, ///< Resolve the future immediately with QueueFull.
};

struct ServiceOptions {
    /** Jobs in flight at once (0 is treated as 1). */
    unsigned lanes = 1;
    /** Admission-queue bound (jobs accepted but not yet started); 0 =
     *  unbounded. Online-phase re-enqueues never count against it. */
    std::size_t queueCapacity = 0;
    AdmissionPolicy admission = AdmissionPolicy::Block;
    /** Master switch for intra-proof sharding onto idle lanes. */
    bool sharding = true;
    /** Cap on lanes one proof may occupy (owner + helpers); 0 = all. */
    unsigned maxShardLanes = 0;
    /** Row floor below which a proof never shards (the cross-lane wake and
     *  merge costs need enough work to amortize). */
    std::size_t shardMinRows = std::size_t(1) << 10;
};

class ProofService
{
  public:
    /**
     * @param ctx     Context supplying config and the shared plan cache;
     *                must outlive the service.
     * @param options Lane count, admission bound/policy, sharding knobs.
     */
    ProofService(const ProverContext &ctx, const ServiceOptions &options);
    /** Convenience: lanes only, every other option at its default. */
    explicit ProofService(const ProverContext &ctx, unsigned lanes = 1);

    /** Drains every queued job (deadlines still honored), then joins the
     *  lanes. Jobs that lose the submit/shutdown race — and any job still
     *  queued after the drain — resolve with ServiceStopping; no promise is
     *  ever destroyed unfulfilled. */
    ~ProofService();

    ProofService(const ProofService &) = delete;
    ProofService &operator=(const ProofService &) = delete;

    unsigned numLanes() const { return unsigned(laneThreads.size()); }
    /** Minimum (base) per-lane thread budget. An uneven split gives the
     *  first budget % lanes lanes one extra thread — sum over
     *  laneThreadBudgets() for the aggregate, NOT numLanes() * this. */
    unsigned laneThreadBudget() const { return subBudget; }
    /** Exact per-lane thread budgets; sums to the context budget whenever
     *  lanes <= budget (the even-split invariant tests check). */
    const std::vector<unsigned> &laneThreadBudgets() const { return budgets; }

    /** Enqueue one job; the future resolves when it completes. Errors are
     *  reported as a typed ProofResult, never thrown through the future. */
    std::future<ProofResult> submit(const ProofRequest &req);
    std::future<ProofResult> submit(const ProofRequest &req,
                                    const SubmitOptions &sub);
    /** Like submit(), but also returns the job id cancel() addresses. Every
     *  submission gets an id, including ones rejected at admission (their
     *  futures are already resolved, so cancel() on them returns false). */
    JobHandle submitJob(const ProofRequest &req,
                        const SubmitOptions &sub = SubmitOptions{});

    /**
     * Cancel one job. Still queued (including between its setup and online
     * phases, or waiting out a retry backoff): it leaves the queue and its
     * future resolves ProofStatus::Cancelled immediately. Executing: the
     * request is delivered through the job's cancel token and the prover
     * aborts at its next chunk/round boundary — cooperative, so a job
     * right before completion may still resolve Ok. Returns true when the
     * job was found (queued or running), false when the id is unknown or
     * the job already resolved.
     */
    bool cancel(std::uint64_t jobId);

    /** Submit a batch and wait for all of it; results in request order. */
    std::vector<ProofResult> proveAll(const std::vector<ProofRequest> &reqs);

    /** Consistent snapshot of counters, gauges, and latency histograms. */
    ServiceMetrics metrics() const;

  private:
    enum class Phase { Setup, Online };

    struct Job {
        ProofRequest req;
        SubmitOptions sub;
        std::promise<ProofResult> done;
        Phase phase = Phase::Setup;
        std::uint64_t id = 0;  ///< cancel() address; assigned at submit.
        std::uint64_t seq = 0; ///< Admission order, the final tiebreak.
        std::chrono::steady_clock::time_point accepted;
        std::chrono::steady_clock::time_point enqueued; ///< Current phase.
        std::optional<hyperplonk::SetupState> setup;
        ProofResult res; ///< Accumulates stats/shardLanes across phases.
        /** Shared cancellation state; the executing lane publishes a copy
         *  on its slot so cancel() can reach a running job. */
        rt::CancelSource cancel;
        unsigned attempt = 1;  ///< 1-based; compared against maxAttempts.
        bool degraded = false; ///< Retry runs with forced streaming.
        bool counted = false;  ///< Holds one admission-capacity unit.
        /** Retry backoff: ineligible for pickup before this instant. */
        std::chrono::steady_clock::time_point notBefore =
            std::chrono::steady_clock::time_point::min();
        std::chrono::milliseconds nextBackoff{0};
    };

    /** Per-lane scheduler state (guarded by qMu). */
    struct LaneSlot {
        bool idle = false;
        rt::ThreadPool *pool = nullptr;   ///< Set once by the lane thread.
        ShardGroup *joinGroup = nullptr;  ///< Reservation as a helper.
        std::uint64_t runningId = 0;      ///< Executing job (0 = none).
        /** Copy sharing the executing job's cancel state: cancel() flips
         *  it without touching the Job, whose lifetime belongs to the
         *  lane. Reset to a fresh (unshared) source between jobs. */
        rt::CancelSource runningCancel;
    };

    void laneLoop(unsigned lane);
    /** Run one phase of job outside qMu; returns the job back for
     *  re-enqueue when it finished setup or scheduled a retry, null when
     *  it resolved. */
    std::unique_ptr<Job> runPhase(unsigned lane, std::unique_ptr<Job> job,
                                  ShardGroup *group, unsigned groupWidth);
    /** Best ELIGIBLE entry (retry backoffs skipped unless stopping); null
     *  when every entry is backing off — then nextEligible holds the
     *  earliest instant one becomes runnable. */
    std::unique_ptr<Job>
    takeBestLocked(std::chrono::steady_clock::time_point now,
                   std::chrono::steady_clock::time_point &nextEligible);
    /** Rewrite job in place for its next attempt (phase reset, backoff
     *  advanced, degradation applied); caller re-enqueues. */
    void prepareRetry(Job &job);
    /** New work arrived: pull every live shard helper back to its lane
     *  (qMu held — idle lanes are only borrowed while actually idle). */
    void recallHelpersLocked();
    void finish(std::unique_ptr<Job> job, ProofStatus status,
                std::string error);
    rt::Config laneConfig(unsigned lane) const;

    const ProverContext &ctx;
    ServiceOptions opts;
    unsigned subBudget = 1;
    std::vector<unsigned> budgets;
    std::vector<std::thread> laneThreads;

    mutable std::mutex qMu;
    std::condition_variable qCv;    ///< Lanes: work / reservation / stop.
    std::condition_variable admitCv;///< Blocked submitters: space / stop.
    std::deque<std::unique_ptr<Job>> queue;
    std::vector<LaneSlot> slots;
    std::vector<ShardGroup *> activeGroups; ///< Groups with live helpers.
    std::size_t setupQueued = 0; ///< Queue entries counting against capacity.
    unsigned idleLanes = 0;
    std::uint64_t nextSeq = 0;
    bool stopping = false;
    std::atomic<std::uint64_t> nextJobId{1}; ///< 0 stays "no job".

    /** Counter/histogram state behind metrics(). Lock order: mMu is a leaf
     *  — it may be taken while holding qMu, never the other way around. */
    struct MetricsState {
        std::uint64_t submitted = 0, accepted = 0;
        std::uint64_t rejectedQueueFull = 0, rejectedDeadline = 0,
                      rejectedStopping = 0;
        std::uint64_t completed = 0, failed = 0, expiredDeadline = 0;
        std::uint64_t cancelled = 0;
        std::uint64_t retries = 0, degradedRetries = 0;
        std::uint64_t shardedPhases = 0, shardHelperLanes = 0,
                      shardRecalls = 0;
        std::size_t inFlight = 0;
        LatencyHistogram queueWaitMs, setupMs, onlineMs, totalMs;
    };
    mutable std::mutex mMu;
    MetricsState m;
    std::chrono::steady_clock::time_point startTime;
};

} // namespace zkphire::engine

#endif // ZKPHIRE_ENGINE_SERVICE_HPP
