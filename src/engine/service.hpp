/**
 * @file
 * ProofService: a traffic-worthy proof factory over one ProverContext.
 *
 * The service decouples workload submission from backend execution. Callers
 * submit ProofRequests — with an optional priority and deadline — and
 * receive futures that resolve to ProofResults. Errors are NEVER thrown
 * through a future: every accepted or rejected submission resolves with a
 * typed ProofStatus, including submissions that race the destructor
 * (ServiceStopping) and jobs whose deadline passes while queued
 * (DeadlineExpired).
 *
 * Admission: the queue is bounded by ServiceOptions::queueCapacity (0 =
 * unbounded). At capacity, AdmissionPolicy::Block parks the submitting
 * thread until space frees (or the service stops); AdmissionPolicy::Reject
 * resolves the future immediately with QueueFull.
 *
 * Scheduling: lanes pick the best runnable entry instead of FIFO order —
 * highest priority first, then earliest deadline, then online-phase
 * entries before setup-phase entries (finish started work first), then
 * arrival order. Each proof runs as a two-phase lifecycle (the
 * hyperplonk::proveSetup / proveOnline split): after setup the job is
 * re-enqueued, so the setup of one request overlaps the online phase of
 * another and a lane is never pinned to one request end-to-end.
 *
 * Intra-proof sharding: when a lane dispatches a phase, the queue is empty,
 * and other lanes are idle, the idle lanes are reserved as helpers
 * (engine::ShardGroup) and the proof's independent work units — per-column
 * commitment MSMs, per-round sumcheck range splits, the two opening
 * chains — spread across them. One huge request therefore uses the whole
 * machine when it is alone, without monopolizing it when it is not: groups
 * last a single phase and idleness is re-evaluated at every phase boundary.
 *
 * Thread budgeting: the context's budget (config().threads, or the runtime
 * default when 0) is split evenly across the lanes (remainder to the first
 * lanes — laneThreadBudgets() exposes the exact split), and every lane owns
 * a PRIVATE rt::ThreadPool of its sub-budget, so in-flight jobs never
 * contend on one pool's region lock. Asking for more lanes than budgeted
 * threads oversubscribes (one serial thread per lane). The split and the
 * pools are fixed at construction; ProverContext::setConfig changes the
 * remaining fields (e.g. minGrain) for subsequent jobs.
 *
 * Determinism: every kernel is bit-identical at any thread count, and every
 * sharded work unit writes index-addressed slots merged in index order, so
 * a job's proof is byte-identical to the single-shot hyperplonk::prove path
 * for the same circuit — independent of the lane count, the shard width,
 * the schedule, or what other jobs are running (tests/test_engine.cpp and
 * tests/test_engine_sched.cpp lock this).
 *
 * Observability: metrics() snapshots admission/outcome counters, queue
 * depth, sharding usage, and per-phase latency histograms with p50/p99
 * (engine/metrics.hpp).
 */
#ifndef ZKPHIRE_ENGINE_SERVICE_HPP
#define ZKPHIRE_ENGINE_SERVICE_HPP

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "engine/context.hpp"
#include "engine/metrics.hpp"
#include "engine/shard.hpp"

namespace zkphire::engine {

/** One unit of work. Pointed-to objects are caller-owned and must stay
 *  alive until the job's future resolves. */
struct ProofRequest {
    const hyperplonk::ProvingKey *pk = nullptr;
    const hyperplonk::Circuit *circuit = nullptr;
    /** Optional caller-owned sink; also copied into ProofResult::stats. */
    hyperplonk::ProverStats *stats = nullptr;
};

/** Typed outcome of a submission (ProofResult::status). */
enum class ProofStatus {
    Ok,              ///< Proof produced.
    BadRequest,      ///< Missing proving key or circuit.
    QueueFull,       ///< Rejected at admission (Reject policy, queue full).
    DeadlineExpired, ///< Deadline passed before a lane could run the job.
    ServiceStopping, ///< Submitted against a stopping/destroyed service.
    ProverError,     ///< The prover threw; error carries the message.
};

struct ProofResult {
    bool ok = false;
    ProofStatus status = ProofStatus::ProverError;
    std::string error; ///< Set when ok == false.
    hyperplonk::HyperPlonkProof proof;
    hyperplonk::ProverStats stats;
    /** Widest lane group (1 + helpers) any phase of this job ran with. */
    unsigned shardLanes = 1;
};

/** Per-submission scheduling attributes. */
struct SubmitOptions {
    /** Higher runs earlier. Default 0. */
    int priority = 0;
    /** Absolute deadline; jobs still queued past it resolve with
     *  DeadlineExpired (a job already executing is not aborted — expiry is
     *  checked when a lane picks a phase up). Default: none. */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();

    /** Convenience: a deadline dur from now. */
    template <class Rep, class Period>
    static SubmitOptions
    deadlineIn(std::chrono::duration<Rep, Period> dur, int priority = 0)
    {
        return {priority, std::chrono::steady_clock::now() + dur};
    }
};

/** What submit() does when the queue is at capacity. */
enum class AdmissionPolicy {
    Block,  ///< Park the submitter until space frees or the service stops.
    Reject, ///< Resolve the future immediately with QueueFull.
};

struct ServiceOptions {
    /** Jobs in flight at once (0 is treated as 1). */
    unsigned lanes = 1;
    /** Admission-queue bound (jobs accepted but not yet started); 0 =
     *  unbounded. Online-phase re-enqueues never count against it. */
    std::size_t queueCapacity = 0;
    AdmissionPolicy admission = AdmissionPolicy::Block;
    /** Master switch for intra-proof sharding onto idle lanes. */
    bool sharding = true;
    /** Cap on lanes one proof may occupy (owner + helpers); 0 = all. */
    unsigned maxShardLanes = 0;
    /** Row floor below which a proof never shards (the cross-lane wake and
     *  merge costs need enough work to amortize). */
    std::size_t shardMinRows = std::size_t(1) << 10;
};

class ProofService
{
  public:
    /**
     * @param ctx     Context supplying config and the shared plan cache;
     *                must outlive the service.
     * @param options Lane count, admission bound/policy, sharding knobs.
     */
    ProofService(const ProverContext &ctx, const ServiceOptions &options);
    /** Convenience: lanes only, every other option at its default. */
    explicit ProofService(const ProverContext &ctx, unsigned lanes = 1);

    /** Drains every queued job (deadlines still honored), then joins the
     *  lanes. Jobs that lose the submit/shutdown race — and any job still
     *  queued after the drain — resolve with ServiceStopping; no promise is
     *  ever destroyed unfulfilled. */
    ~ProofService();

    ProofService(const ProofService &) = delete;
    ProofService &operator=(const ProofService &) = delete;

    unsigned numLanes() const { return unsigned(laneThreads.size()); }
    /** Minimum (base) per-lane thread budget. An uneven split gives the
     *  first budget % lanes lanes one extra thread — sum over
     *  laneThreadBudgets() for the aggregate, NOT numLanes() * this. */
    unsigned laneThreadBudget() const { return subBudget; }
    /** Exact per-lane thread budgets; sums to the context budget whenever
     *  lanes <= budget (the even-split invariant tests check). */
    const std::vector<unsigned> &laneThreadBudgets() const { return budgets; }

    /** Enqueue one job; the future resolves when it completes. Errors are
     *  reported as a typed ProofResult, never thrown through the future. */
    std::future<ProofResult> submit(const ProofRequest &req);
    std::future<ProofResult> submit(const ProofRequest &req,
                                    const SubmitOptions &sub);

    /** Submit a batch and wait for all of it; results in request order. */
    std::vector<ProofResult> proveAll(const std::vector<ProofRequest> &reqs);

    /** Consistent snapshot of counters, gauges, and latency histograms. */
    ServiceMetrics metrics() const;

  private:
    enum class Phase { Setup, Online };

    struct Job {
        ProofRequest req;
        SubmitOptions sub;
        std::promise<ProofResult> done;
        Phase phase = Phase::Setup;
        std::uint64_t seq = 0; ///< Admission order, the final tiebreak.
        std::chrono::steady_clock::time_point accepted;
        std::chrono::steady_clock::time_point enqueued; ///< Current phase.
        std::optional<hyperplonk::SetupState> setup;
        ProofResult res; ///< Accumulates stats/shardLanes across phases.
    };

    /** Per-lane scheduler state (guarded by qMu). */
    struct LaneSlot {
        bool idle = false;
        rt::ThreadPool *pool = nullptr;   ///< Set once by the lane thread.
        ShardGroup *joinGroup = nullptr;  ///< Reservation as a helper.
    };

    void laneLoop(unsigned lane);
    /** Run one phase of job outside qMu; returns the job back for
     *  re-enqueue when it finished setup, null when it resolved. */
    std::unique_ptr<Job> runPhase(unsigned lane, std::unique_ptr<Job> job,
                                  ShardGroup *group, unsigned groupWidth);
    std::unique_ptr<Job> takeBestLocked();
    /** New work arrived: pull every live shard helper back to its lane
     *  (qMu held — idle lanes are only borrowed while actually idle). */
    void recallHelpersLocked();
    void finish(std::unique_ptr<Job> job, ProofStatus status,
                std::string error);
    rt::Config laneConfig(unsigned lane) const;

    const ProverContext &ctx;
    ServiceOptions opts;
    unsigned subBudget = 1;
    std::vector<unsigned> budgets;
    std::vector<std::thread> laneThreads;

    mutable std::mutex qMu;
    std::condition_variable qCv;    ///< Lanes: work / reservation / stop.
    std::condition_variable admitCv;///< Blocked submitters: space / stop.
    std::deque<std::unique_ptr<Job>> queue;
    std::vector<LaneSlot> slots;
    std::vector<ShardGroup *> activeGroups; ///< Groups with live helpers.
    std::size_t setupQueued = 0; ///< Queue entries counting against capacity.
    unsigned idleLanes = 0;
    std::uint64_t nextSeq = 0;
    bool stopping = false;

    /** Counter/histogram state behind metrics(). Lock order: mMu is a leaf
     *  — it may be taken while holding qMu, never the other way around. */
    struct MetricsState {
        std::uint64_t submitted = 0, accepted = 0;
        std::uint64_t rejectedQueueFull = 0, rejectedDeadline = 0,
                      rejectedStopping = 0;
        std::uint64_t completed = 0, failed = 0, expiredDeadline = 0;
        std::uint64_t shardedPhases = 0, shardHelperLanes = 0,
                      shardRecalls = 0;
        std::size_t inFlight = 0;
        LatencyHistogram queueWaitMs, setupMs, onlineMs, totalMs;
    };
    mutable std::mutex mMu;
    MetricsState m;
    std::chrono::steady_clock::time_point startTime;
};

} // namespace zkphire::engine

#endif // ZKPHIRE_ENGINE_SERVICE_HPP
