/**
 * @file
 * Service observability: latency histograms and the ServiceMetrics snapshot
 * ProofService exports.
 *
 * The histogram is a fixed array of power-of-two microsecond buckets —
 * recording is a clz and an increment, cheap enough to sit on the job
 * completion path — and quantiles are estimated by linear interpolation
 * inside the bucket where the target rank falls. That gives p50/p99 with
 * bounded (~2x bucket-width) error and no allocation, which is all a
 * service dashboard needs; exact order statistics would require retaining
 * every sample.
 */
#ifndef ZKPHIRE_ENGINE_METRICS_HPP
#define ZKPHIRE_ENGINE_METRICS_HPP

#include <array>
#include <cstddef>
#include <cstdint>

namespace zkphire::engine {

/** Log-bucketed latency histogram over milliseconds. */
class LatencyHistogram
{
  public:
    /** Bucket b covers [2^b, 2^(b+1)) microseconds; bucket 0 also absorbs
     *  sub-microsecond samples, the last bucket absorbs everything above
     *  (~2^39 us ~ 6 days). */
    static constexpr std::size_t kBuckets = 40;

    void record(double ms);

    std::uint64_t count() const { return total; }
    double sumMs() const { return sum_ms; }
    double maxMs() const { return max_ms; }
    double meanMs() const { return total == 0 ? 0.0 : sum_ms / double(total); }

    /** Latency at quantile q in [0, 1] (q=0.5 -> p50, q=0.99 -> p99),
     *  interpolated within the covering bucket; 0 when empty. */
    double quantileMs(double q) const;

    /** Fold another histogram into this one (snapshot aggregation). */
    void merge(const LatencyHistogram &other);

  private:
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total = 0;
    double sum_ms = 0;
    double max_ms = 0;
};

/**
 * One consistent snapshot of the service's counters, gauges, and latency
 * distributions. Counter invariants:
 *   submitted == accepted + rejectedQueueFull + rejectedDeadline
 *                + rejectedStopping
 *   accepted  == completed + failed + expiredDeadline + cancelled
 *                + queueDepth + inFlight
 *                (once the service is idle, the last two are 0)
 */
struct ServiceMetrics {
    // Admission counters.
    std::uint64_t submitted = 0;        ///< Every submit() call.
    std::uint64_t accepted = 0;         ///< Entered the queue.
    std::uint64_t rejectedQueueFull = 0;///< Reject policy, queue at capacity.
    std::uint64_t rejectedDeadline = 0; ///< Deadline already past at submit.
    std::uint64_t rejectedStopping = 0; ///< Submitted against a stopping service.
    // Outcome counters.
    std::uint64_t completed = 0;        ///< Resolved ok.
    std::uint64_t failed = 0;           ///< BadRequest or prover error.
    std::uint64_t expiredDeadline = 0;  ///< Deadline passed (queued or mid-proof).
    std::uint64_t cancelled = 0;        ///< cancel(jobId) resolved the job.
    // Fault-recovery counters.
    std::uint64_t retries = 0;          ///< Attempts re-enqueued by RetryPolicy.
    std::uint64_t degradedRetries = 0;  ///< Retries forced onto streaming.
    // Sharding counters.
    std::uint64_t shardedPhases = 0;    ///< Phases that ran with helpers.
    std::uint64_t shardHelperLanes = 0; ///< Helper-lane reservations, total.
    std::uint64_t shardRecalls = 0;     ///< Arrivals that pulled helpers back.
    // Gauges (at snapshot time).
    std::size_t queueDepth = 0;         ///< Jobs waiting for a lane.
    std::size_t inFlight = 0;           ///< Jobs a lane is executing.
    // Derived.
    double uptimeMs = 0;
    double proofsPerSec = 0;            ///< completed / uptime.
    // Latency distributions.
    LatencyHistogram queueWaitMs; ///< Enqueue -> lane pickup, per phase.
    LatencyHistogram setupMs;     ///< Witness synthesis + commitment phase.
    LatencyHistogram onlineMs;    ///< Sumcheck + opening phase.
    LatencyHistogram totalMs;     ///< Admission -> future resolution (ok only).
};

} // namespace zkphire::engine

#endif // ZKPHIRE_ENGINE_METRICS_HPP
