/**
 * @file
 * ProverContext: the session object a prover service keeps alive across
 * proofs.
 *
 * Everything `hyperplonk::prove` used to pick up ambiently or re-derive per
 * call is owned here instead:
 *
 *   - an SRS reference (for preprocessing circuits into Keys),
 *   - the preprocessed Keys themselves (reference-stable for the context's
 *     lifetime),
 *   - the compiled GatePlan cache (per-context, so two contexts proving
 *     concurrently never share or race on plan state — there is no
 *     process-global cache),
 *   - an rt::Config (thread budget, grain floor, pool selection) applied to
 *     every proof made through the context.
 *
 * A context's prove() is safe to call concurrently from multiple threads
 * and produces proofs byte-identical to the one-shot hyperplonk::prove
 * wrapper for the same circuit — the transcript never depends on the
 * config, the cache, or job concurrency. engine::ProofService runs batches
 * of requests against one context (src/engine/service.hpp).
 */
#ifndef ZKPHIRE_ENGINE_CONTEXT_HPP
#define ZKPHIRE_ENGINE_CONTEXT_HPP

#include <deque>
#include <mutex>

#include "hyperplonk/prover.hpp"
#include "rt/config.hpp"

namespace zkphire::engine {

class ProverContext
{
  public:
    /** Context without an SRS: can prove against caller-owned keys but not
     *  preprocess circuits until attachSrs(). */
    explicit ProverContext(rt::Config cfg = {});
    ProverContext(const pcs::Srs &srs, rt::Config cfg = {});

    ProverContext(const ProverContext &) = delete;
    ProverContext &operator=(const ProverContext &) = delete;

    /** The SRS must outlive the context and every key derived from it. */
    void attachSrs(const pcs::Srs &srs) { srsRef = &srs; }
    const pcs::Srs *srs() const { return srsRef; }

    /** Snapshot of the context config. Returned by value so concurrent
     *  setConfig() calls are safe: a job reads one coherent config at
     *  dispatch and is unaffected by swaps mid-proof. */
    rt::Config config() const
    {
        std::lock_guard<std::mutex> lock(cfgMu);
        return cfg;
    }
    /** Safe to call while proofs are in flight: in-flight jobs keep the
     *  snapshot they dispatched with, subsequent jobs pick the new value
     *  up. An existing ProofService keeps its thread split and lane pools
     *  (fixed at its construction) but applies the other fields (e.g.
     *  minGrain) to subsequent jobs. */
    void setConfig(const rt::Config &c)
    {
        std::lock_guard<std::mutex> lock(cfgMu);
        cfg = c;
    }

    /** MSM algorithm knobs (window width, signed digits, batched-affine
     *  buckets) applied to every proof and preprocessing run made through
     *  this context. Proofs are byte-identical under every value — this is
     *  a tuning/experimentation knob, same contract as setConfig (snapshot
     *  semantics, safe against concurrent swaps). */
    ec::MsmOptions msmOptions() const
    {
        std::lock_guard<std::mutex> lock(cfgMu);
        return msmOpts;
    }
    void setMsmOptions(const ec::MsmOptions &o)
    {
        std::lock_guard<std::mutex> lock(cfgMu);
        msmOpts = o;
    }

    /** Per-context compiled-plan cache (thread-safe). */
    gates::PlanCache &plans() const { return planCache; }

    /** Per-context buffer arena (thread-safe): scratch tables released by
     *  one proof are reacquired by the next, so a proof stream on this
     *  context stops allocating fold/quotient buffers after the first
     *  proof (poly::storeCounters() makes the reuse measurable). */
    poly::BufferArena &arena() const { return bufferArena; }

    /**
     * Preprocess a circuit against the attached SRS ("indexing"). The
     * returned Keys are owned by the context and stay valid — at a stable
     * address — for its lifetime.
     */
    const hyperplonk::Keys &preprocess(const hyperplonk::Circuit &circuit);

    /**
     * Produce a proof under this context's config and plan cache.
     * Byte-identical to hyperplonk::prove for the same inputs; safe to call
     * concurrently.
     *
     * @param rtOverride When non-null, replaces the context config for this
     *        call only — ProofService uses it to hand each job lane its
     *        thread sub-budget and private pool.
     */
    hyperplonk::HyperPlonkProof
    prove(const hyperplonk::ProvingKey &pk,
          const hyperplonk::Circuit &circuit,
          hyperplonk::ProverStats *stats = nullptr,
          const rt::Config *rtOverride = nullptr) const;

    /**
     * Assemble the ProveOptions a phase call (hyperplonk::proveSetup /
     * proveOnline) needs: a coherent config+MSM snapshot, this context's
     * plan cache, and optionally a cross-lane unit runner. ProofService
     * uses this to dispatch phases directly.
     */
    hyperplonk::ProveOptions
    proveOptions(const rt::Config *rtOverride = nullptr,
                 rt::UnitRunner *units = nullptr) const;

  private:
    const pcs::Srs *srsRef = nullptr;
    mutable std::mutex cfgMu; ///< Guards cfg and msmOpts.
    rt::Config cfg;
    ec::MsmOptions msmOpts;
    mutable gates::PlanCache planCache;
    mutable poly::BufferArena bufferArena;
    std::mutex keysMu;
    std::deque<hyperplonk::Keys> ownedKeys;
};

/**
 * Process-wide default context (default rt::Config, no SRS attached) that
 * backs the legacy free-function prover API.
 */
ProverContext &defaultContext();

} // namespace zkphire::engine

#endif // ZKPHIRE_ENGINE_CONTEXT_HPP
