/**
 * @file
 * ShardGroup: one proof's temporary claim on idle service lanes.
 *
 * When the scheduler dispatches a phase and other lanes have nothing
 * runnable, it reserves them as *helpers* for that phase: each reserved
 * lane thread parks in helperServe(), executing work units the owning
 * proof posts through the rt::UnitRunner interface — per-column commitment
 * MSMs, per-round sumcheck range splits, the two opening chains. A helper
 * runs every unit under its own lane's rt::Config (private pool,
 * sub-budget), so a group of W lanes brings the full aggregate thread
 * budget to one proof without any pool being shared or resized.
 *
 * Lifecycle: the owner constructs the group on its stack, the service
 * reserves helpers (expectHelper() once per reservation, all before the
 * phase starts), the phase runs, then the owner MUST call disband(), which
 * releases the helpers and blocks until every reserved lane has left
 * helperServe() — only then may the group go out of scope. Groups last one
 * phase: the scheduler re-evaluates idleness at the next phase boundary,
 * so a queue that fills up gets its lanes back quickly.
 *
 * Determinism: the group only moves *where* a unit executes. Units write
 * to index-addressed slots and callers merge in index order (the
 * UnitRunner contract), so proofs are bit-identical at any group width.
 */
#ifndef ZKPHIRE_ENGINE_SHARD_HPP
#define ZKPHIRE_ENGINE_SHARD_HPP

#include <condition_variable>
#include <exception>
#include <mutex>

#include "rt/config.hpp"
#include "rt/unit_runner.hpp"

namespace zkphire::engine {

class ShardGroup final : public rt::UnitRunner
{
  public:
    ShardGroup() = default;
    ~ShardGroup() override = default;
    ShardGroup(const ShardGroup &) = delete;
    ShardGroup &operator=(const ShardGroup &) = delete;

    /** Declare one reserved helper lane. Must only be called before the
     *  owning phase starts (the service does it under its queue lock while
     *  reserving); width() is unsynchronized against it. */
    void expectHelper() { ++expected; }

    /** Owner + helpers. */
    unsigned width() const override { return 1 + expected; }

    /**
     * Execute the batch: helpers and the owner claim units from a shared
     * cursor; blocks until every unit completed, then rethrows the first
     * unit exception (by completion order — errors abort the proof, so the
     * choice never reaches a transcript). Called re-entrantly (from inside
     * a unit) or with no helpers, it degrades to an inline serial loop.
     */
    void run(std::span<const std::function<void()>> units) override;

    /**
     * Helper-lane entry point: serve unit batches until disband() or
     * recall(), running each unit under cfg (the helper lane's thread
     * budget and private pool). Returns when the group is disbanded or the
     * helper is recalled.
     */
    void helperServe(const rt::Config &cfg);

    /**
     * Pull the helpers back: each departs at its next unit boundary (an
     * in-progress unit completes first) and the owner absorbs whatever is
     * left of the batch. The service calls this when new work enters the
     * queue — idle lanes are only borrowed while they are actually idle.
     * Determinism is unaffected: the unit split was fixed at reservation
     * width, and units are merged by index no matter where they ran.
     */
    void recall();

    /**
     * Owner only: release the helpers and wait until every expected helper
     * has left helperServe(). Must be called before the group is destroyed
     * (idempotent; safe with zero helpers).
     */
    void disband();

  private:
    /** Run one unit; never throws (errors land in firstError). */
    void execUnit(const std::function<void()> &unit, const rt::Config *cfg);
    /** Claim-and-run loop shared by owner and helpers; helpers stop
     *  claiming once recalled (the owner never does). */
    void drainBatch(std::unique_lock<std::mutex> &lk, const rt::Config *cfg,
                    bool isHelper);

    std::mutex mu;
    std::condition_variable cv;
    const std::function<void()> *batch = nullptr; ///< Current unit array.
    std::size_t batchSize = 0;
    std::size_t nextUnit = 0;
    std::size_t doneUnits = 0;
    std::exception_ptr firstError;
    bool running = false;  ///< Owner is inside run() (re-entrancy guard).
    bool released = false; ///< disband() called; helpers drain out.
    bool recalled = false; ///< recall() called; helpers stop claiming.
    unsigned expected = 0; ///< Helpers reserved by the service.
    unsigned departed = 0; ///< Helpers that left helperServe().
};

} // namespace zkphire::engine

#endif // ZKPHIRE_ENGINE_SHARD_HPP
