#include "engine/service.hpp"

#include <algorithm>
#include <cerrno>
#include <new>
#include <system_error>
#include <utility>

#include "rt/numa.hpp"
#include "rt/parallel.hpp"

namespace zkphire::engine {

namespace {

using Clock = std::chrono::steady_clock;

double
toMs(Clock::duration d)
{
    return std::chrono::duration<double, std::milli>(d).count();
}

ProofResult
errorResult(ProofStatus status, std::string error)
{
    ProofResult res;
    res.ok = false;
    res.status = status;
    res.error = std::move(error);
    return res;
}

/** The retryable class: environmental resource exhaustion. Everything else
 *  — logic errors, injected rt::InjectedFault, cancellation — either fails
 *  deterministically or is handled by its own path. */
bool
isResourceError(const std::exception &e)
{
    if (dynamic_cast<const std::bad_alloc *>(&e) != nullptr)
        return true;
    if (const auto *se = dynamic_cast<const std::system_error *>(&e)) {
        const int v = se->code().value();
        return v == ENOMEM || v == ENOSPC || v == EMFILE;
    }
    return false;
}

} // namespace

ProofService::ProofService(const ProverContext &context,
                           const ServiceOptions &options)
    : ctx(context), opts(options), startTime(Clock::now())
{
    if (opts.lanes == 0)
        opts.lanes = 1;
    const rt::Config cfg = ctx.config();
    const unsigned budget =
        cfg.threads != 0 ? cfg.threads : rt::ThreadPool::defaultThreads();
    // Even split, remainder to the first budget % lanes lanes, so the
    // aggregate equals the budget whenever lanes <= budget. With more lanes
    // than budgeted threads every lane runs serial (deliberate
    // oversubscription: queued jobs still make progress).
    subBudget = budget / opts.lanes;
    if (subBudget == 0)
        subBudget = 1;
    const unsigned remainder = budget > opts.lanes ? budget % opts.lanes : 0;
    budgets.resize(opts.lanes);
    for (unsigned i = 0; i < opts.lanes; ++i)
        budgets[i] = subBudget + (i < remainder ? 1 : 0);
    slots.resize(opts.lanes); // before any lane thread can touch its slot
    laneThreads.reserve(opts.lanes);
    for (unsigned i = 0; i < opts.lanes; ++i)
        laneThreads.emplace_back([this, i] { laneLoop(i); });
}

ProofService::ProofService(const ProverContext &context, unsigned lanes)
    : ProofService(context, ServiceOptions{lanes})
{
}

ProofService::~ProofService()
{
    {
        std::lock_guard<std::mutex> lk(qMu);
        stopping = true;
    }
    qCv.notify_all();    // lanes: drain, then exit
    admitCv.notify_all();// blocked submitters: resolve ServiceStopping
    for (std::thread &t : laneThreads)
        t.join();
    // The lanes drain the queue before exiting (including online-phase
    // re-enqueues, which the re-enqueuing lane can always still pick up),
    // so nothing should be left. Belt-and-braces: a promise must never be
    // destroyed unfulfilled, so resolve anything that somehow remains.
    for (std::unique_ptr<Job> &job : queue) {
        {
            std::lock_guard<std::mutex> mlk(mMu);
            ++m.rejectedStopping;
        }
        job->done.set_value(
            errorResult(ProofStatus::ServiceStopping, "service stopping"));
    }
    queue.clear();
}

std::future<ProofResult>
ProofService::submit(const ProofRequest &req)
{
    return submit(req, SubmitOptions{});
}

std::future<ProofResult>
ProofService::submit(const ProofRequest &req, const SubmitOptions &sub)
{
    return submitJob(req, sub).future;
}

JobHandle
ProofService::submitJob(const ProofRequest &req, const SubmitOptions &sub)
{
    auto job = std::make_unique<Job>();
    job->req = req;
    job->sub = sub;
    job->id = nextJobId.fetch_add(1, std::memory_order_relaxed);
    job->nextBackoff = sub.retry.backoff;
    JobHandle handle;
    handle.id = job->id;
    handle.future = job->done.get_future();

    {
        std::lock_guard<std::mutex> mlk(mMu);
        ++m.submitted;
    }
    if (sub.deadline <= Clock::now()) {
        std::lock_guard<std::mutex> mlk(mMu);
        ++m.rejectedDeadline;
        job->done.set_value(errorResult(ProofStatus::DeadlineExpired,
                                        "deadline already expired"));
        return handle;
    }

    {
        std::unique_lock<std::mutex> lk(qMu);
        // Closes the submit/shutdown race: once stopping is set under qMu,
        // nothing may enter the queue — the job resolves here instead of
        // riding a queue the lanes may already have drained past.
        const auto rejectStopping = [&] {
            std::lock_guard<std::mutex> mlk(mMu);
            ++m.rejectedStopping;
            job->done.set_value(errorResult(ProofStatus::ServiceStopping,
                                            "service stopping"));
        };
        if (stopping) {
            rejectStopping();
            return handle;
        }
        if (opts.queueCapacity != 0 && setupQueued >= opts.queueCapacity) {
            if (opts.admission == AdmissionPolicy::Reject) {
                std::lock_guard<std::mutex> mlk(mMu);
                ++m.rejectedQueueFull;
                job->done.set_value(errorResult(
                    ProofStatus::QueueFull, "admission queue at capacity"));
                return handle;
            }
            // Block: park until space frees, the service stops, or the
            // job's own deadline passes while waiting at the door.
            const auto admissible = [&] {
                return stopping || setupQueued < opts.queueCapacity;
            };
            if (sub.deadline == Clock::time_point::max()) {
                admitCv.wait(lk, admissible);
            } else if (!admitCv.wait_until(lk, sub.deadline, admissible)) {
                std::lock_guard<std::mutex> mlk(mMu);
                ++m.rejectedDeadline;
                job->done.set_value(
                    errorResult(ProofStatus::DeadlineExpired,
                                "deadline expired while blocked at admission"));
                return handle;
            }
            if (stopping) {
                rejectStopping();
                return handle;
            }
        }
        job->seq = nextSeq++;
        job->accepted = job->enqueued = Clock::now();
        job->counted = true;
        ++setupQueued;
        queue.push_back(std::move(job));
        recallHelpersLocked();
    }
    qCv.notify_one();
    {
        std::lock_guard<std::mutex> mlk(mMu);
        ++m.accepted;
    }
    return handle;
}

bool
ProofService::cancel(std::uint64_t jobId)
{
    std::unique_ptr<Job> victim;
    {
        std::lock_guard<std::mutex> lk(qMu);
        for (auto it = queue.begin(); it != queue.end(); ++it) {
            if ((*it)->id != jobId)
                continue;
            victim = std::move(*it);
            queue.erase(it);
            if (victim->counted) {
                victim->counted = false;
                --setupQueued;
                admitCv.notify_one();
            }
            break;
        }
        if (victim == nullptr) {
            // Not queued: executing? Flip the shared cancel state through
            // the slot's copy — the lane observes it at the prover's next
            // chunk/round boundary. Delivery, not a guarantee: a job at
            // its last boundary may still resolve Ok.
            for (LaneSlot &slot : slots) {
                if (slot.runningId == jobId) {
                    slot.runningCancel.requestCancel();
                    return true;
                }
            }
            return false; // unknown id, or already resolved
        }
    }
    {
        std::lock_guard<std::mutex> mlk(mMu);
        ++m.inFlight; // finish() releases it
    }
    finish(std::move(victim), ProofStatus::Cancelled,
           "cancelled while queued");
    return true;
}

std::vector<ProofResult>
ProofService::proveAll(const std::vector<ProofRequest> &reqs)
{
    std::vector<std::future<ProofResult>> futures;
    futures.reserve(reqs.size());
    for (const ProofRequest &req : reqs)
        futures.push_back(submit(req));
    std::vector<ProofResult> results;
    results.reserve(futures.size());
    for (std::future<ProofResult> &f : futures)
        results.push_back(f.get());
    return results;
}

ServiceMetrics
ProofService::metrics() const
{
    ServiceMetrics out;
    {
        std::lock_guard<std::mutex> lk(qMu);
        out.queueDepth = queue.size();
    }
    {
        std::lock_guard<std::mutex> mlk(mMu);
        out.submitted = m.submitted;
        out.accepted = m.accepted;
        out.rejectedQueueFull = m.rejectedQueueFull;
        out.rejectedDeadline = m.rejectedDeadline;
        out.rejectedStopping = m.rejectedStopping;
        out.completed = m.completed;
        out.failed = m.failed;
        out.expiredDeadline = m.expiredDeadline;
        out.cancelled = m.cancelled;
        out.retries = m.retries;
        out.degradedRetries = m.degradedRetries;
        out.shardedPhases = m.shardedPhases;
        out.shardHelperLanes = m.shardHelperLanes;
        out.shardRecalls = m.shardRecalls;
        out.inFlight = m.inFlight;
        out.queueWaitMs = m.queueWaitMs;
        out.setupMs = m.setupMs;
        out.onlineMs = m.onlineMs;
        out.totalMs = m.totalMs;
    }
    out.uptimeMs = toMs(Clock::now() - startTime);
    out.proofsPerSec =
        out.uptimeMs > 0 ? double(out.completed) / (out.uptimeMs / 1000.0) : 0;
    return out;
}

/** Best runnable entry: priority desc, deadline asc (EDF), online phase
 *  before setup (finish started proofs first), then admission order.
 *  Entries inside a retry-backoff window are skipped (their earliest
 *  eligibility is reported through nextEligible) — except when stopping,
 *  where backoffs are ignored so the destructor's drain never stalls.
 *  Linear scan — service queues are tens of entries, not thousands. */
std::unique_ptr<ProofService::Job>
ProofService::takeBestLocked(Clock::time_point now,
                             Clock::time_point &nextEligible)
{
    auto best = queue.end();
    for (auto it = queue.begin(); it != queue.end(); ++it) {
        if (!stopping && (*it)->notBefore > now) {
            nextEligible = std::min(nextEligible, (*it)->notBefore);
            continue;
        }
        if (best == queue.end()) {
            best = it;
            continue;
        }
        const Job &a = **it, &b = **best;
        bool better;
        if (a.sub.priority != b.sub.priority)
            better = a.sub.priority > b.sub.priority;
        else if (a.sub.deadline != b.sub.deadline)
            better = a.sub.deadline < b.sub.deadline;
        else if (a.phase != b.phase)
            better = a.phase == Phase::Online;
        else
            better = a.seq < b.seq;
        if (better)
            best = it;
    }
    if (best == queue.end())
        return nullptr;
    std::unique_ptr<Job> job = std::move(*best);
    queue.erase(best);
    if (job->counted) {
        // First pickup of an admitted job releases its capacity unit;
        // online-phase and retry re-enqueues never held one.
        job->counted = false;
        --setupQueued;
        admitCv.notify_one(); // one blocked submitter may now fit
    }
    return job;
}

void
ProofService::recallHelpersLocked()
{
    if (activeGroups.empty())
        return;
    for (ShardGroup *group : activeGroups)
        group->recall();
    std::lock_guard<std::mutex> mlk(mMu);
    ++m.shardRecalls;
}

rt::Config
ProofService::laneConfig(unsigned lane) const
{
    // Thread split and pool identity are fixed at construction; the other
    // config fields (e.g. minGrain) come from a synchronized snapshot so
    // ProverContext::setConfig is safe against in-flight dispatches.
    rt::Config cfg = ctx.config();
    cfg.threads = budgets[lane];
    cfg.pool = slots[lane].pool; // written once by this lane's own thread
    return cfg;
}

void
ProofService::finish(std::unique_ptr<Job> job, ProofStatus status,
                     std::string error)
{
    ProofResult res = std::move(job->res);
    res.status = status;
    res.ok = status == ProofStatus::Ok;
    res.error = std::move(error);
    {
        // inFlight was taken when the lane picked the job up; release it
        // BEFORE resolving the promise so a caller who snapshots metrics
        // the moment its future fires sees a consistent gauge.
        std::lock_guard<std::mutex> mlk(mMu);
        --m.inFlight;
        switch (status) {
        case ProofStatus::Ok:
            ++m.completed;
            m.totalMs.record(toMs(Clock::now() - job->accepted));
            break;
        case ProofStatus::DeadlineExpired:
            ++m.expiredDeadline;
            break;
        case ProofStatus::Cancelled:
            ++m.cancelled;
            break;
        case ProofStatus::ServiceStopping:
            ++m.rejectedStopping;
            break;
        default:
            ++m.failed;
            break;
        }
    }
    job->done.set_value(std::move(res));
}

/** Rewrite job for its next attempt. Every per-attempt field is rebuilt —
 *  phase back to Setup, parked setup state dropped, result accumulator
 *  cleared — so the retry replays the whole two-phase lifecycle from
 *  scratch and its transcript is byte-identical to a fresh submission. */
void
ProofService::prepareRetry(Job &job)
{
    ++job.attempt;
    job.phase = Phase::Setup;
    job.setup.reset();
    job.res = ProofResult{};
    job.notBefore = Clock::now() + job.nextBackoff;
    job.nextBackoff = std::min(
        job.sub.retry.maxBackoff,
        std::chrono::milliseconds(std::chrono::milliseconds::rep(
            double(job.nextBackoff.count()) * job.sub.retry.backoffFactor)));
    {
        std::lock_guard<std::mutex> mlk(mMu);
        ++m.retries;
        if (job.sub.retry.degradeToStreaming) {
            job.degraded = true;
            ++m.degradedRetries;
        }
    }
}

std::unique_ptr<ProofService::Job>
ProofService::runPhase(unsigned lane, std::unique_ptr<Job> job,
                       ShardGroup *group, unsigned groupWidth)
{
    if (job->req.pk == nullptr || job->req.circuit == nullptr) {
        finish(std::move(job), ProofStatus::BadRequest,
               "ProofRequest missing proving key or circuit");
        return nullptr;
    }
    rt::Config laneCfg = laneConfig(lane);
    if (job->degraded) {
        // Degraded retry: force every prover table onto the out-of-core
        // streaming backend so a resource-starved attempt runs in O(chunk)
        // RSS. Transcript-invariant — the proof bytes do not change.
        laneCfg.streamThreshold = 1;
    }
    hyperplonk::ProveOptions popts = ctx.proveOptions(&laneCfg, group);
    if (job->sub.deadline != Clock::time_point::max())
        job->cancel.setDeadline(job->sub.deadline);
    popts.cancel = job->cancel.token();
    job->res.shardLanes = std::max(job->res.shardLanes, groupWidth);
    const Clock::time_point t0 = Clock::now();
    try {
        if (job->phase == Phase::Setup) {
            job->setup.emplace(hyperplonk::proveSetup(
                *job->req.pk, *job->req.circuit, &job->res.stats, popts));
            {
                std::lock_guard<std::mutex> mlk(mMu);
                m.setupMs.record(toMs(Clock::now() - t0));
            }
            job->phase = Phase::Online;
            return job; // re-enqueue for the online phase
        }
        job->res.proof = hyperplonk::proveOnline(
            *job->req.pk, std::move(*job->setup), &job->res.stats, popts);
        job->setup.reset();
        {
            std::lock_guard<std::mutex> mlk(mMu);
            m.onlineMs.record(toMs(Clock::now() - t0));
        }
        if (job->req.stats != nullptr)
            *job->req.stats = job->res.stats;
        finish(std::move(job), ProofStatus::Ok, {});
    } catch (const rt::OperationCancelled &e) {
        finish(std::move(job),
               e.reason() == rt::CancelReason::Deadline
                   ? ProofStatus::DeadlineExpired
                   : ProofStatus::Cancelled,
               e.what());
    } catch (const std::exception &e) {
        // Resource-class failures retry (with degradation) while attempts
        // remain — unless the job was cancelled in the same window, which
        // would make a retry run work nobody wants.
        if (isResourceError(e) &&
            job->attempt < job->sub.retry.maxAttempts &&
            job->cancel.reason() == rt::CancelReason::None) {
            prepareRetry(*job);
            return job; // re-enqueue; eligible after its backoff
        }
        finish(std::move(job), ProofStatus::ProverError, e.what());
    } catch (...) {
        finish(std::move(job), ProofStatus::ProverError,
               "unknown prover error");
    }
    return nullptr;
}

void
ProofService::laneLoop(unsigned lane)
{
    // Each lane owns a private chunked pool sized to its sub-budget, so
    // in-flight jobs never serialize on one pool's region lock. A
    // sub-budget of 1 spawns no workers and the lane runs fully serial.
    // Under ZKPHIRE_NUMA lanes split across nodes (lane modulo node count)
    // and each lane's pool is pinned wholly to its node, keeping a job's
    // tables, slab pages, and workers node-local.
    const int lane_node =
        rt::numa::enabled() ? int(lane % rt::numa::numNodes()) : -1;
    if (lane_node >= 0)
        rt::numa::bindCurrentThreadToNode(std::size_t(lane_node));
    rt::ThreadPool lanePool(budgets[lane], lane_node);
    {
        std::lock_guard<std::mutex> lk(qMu);
        slots[lane].pool = &lanePool;
    }

    for (;;) {
        std::unique_ptr<Job> job;
        ShardGroup *joined = nullptr;
        ShardGroup group;
        unsigned helpers = 0;
        {
            std::unique_lock<std::mutex> lk(qMu);
            slots[lane].idle = true;
            ++idleLanes;
            for (;;) {
                qCv.wait(lk, [&] {
                    return slots[lane].joinGroup != nullptr || stopping ||
                           !queue.empty();
                });
                if (slots[lane].joinGroup != nullptr || queue.empty())
                    break;
                Clock::time_point nextEligible = Clock::time_point::max();
                job = takeBestLocked(Clock::now(), nextEligible);
                if (job != nullptr)
                    break;
                // Every queued entry is waiting out a retry backoff: sleep
                // until the earliest becomes eligible, a new (eligible)
                // job arrives, a reservation lands, or shutdown starts.
                qCv.wait_until(lk, nextEligible, [&] {
                    if (slots[lane].joinGroup != nullptr || stopping)
                        return true;
                    const Clock::time_point now = Clock::now();
                    for (const std::unique_ptr<Job> &q : queue)
                        if (q->notBefore <= now)
                            return true;
                    return false;
                });
            }
            if (slots[lane].joinGroup != nullptr) {
                // A dispatching lane reserved this one as a shard helper
                // (it already cleared idle and took us out of idleLanes).
                joined = std::exchange(slots[lane].joinGroup, nullptr);
            } else {
                slots[lane].idle = false;
                --idleLanes;
                if (job == nullptr)
                    return; // stopping, and every queued job drained
                if (Clock::now() > job->sub.deadline) {
                    lk.unlock();
                    {
                        std::lock_guard<std::mutex> mlk(mMu);
                        m.queueWaitMs.record(
                            toMs(Clock::now() - job->enqueued));
                        ++m.inFlight; // finish() releases it
                    }
                    finish(std::move(job), ProofStatus::DeadlineExpired,
                           "deadline expired while queued");
                    continue;
                }
                // Shard decision, made while still holding qMu so the idle
                // set is coherent: only when nothing else is runnable, the
                // proof is big enough to amortize cross-lane hand-off, and
                // lanes are actually idle.
                if (opts.sharding && queue.empty() && idleLanes > 0 &&
                    job->req.circuit != nullptr &&
                    job->req.circuit->numRows() >= opts.shardMinRows) {
                    const unsigned cap =
                        opts.maxShardLanes == 0 ? numLanes()
                                                : opts.maxShardLanes;
                    const unsigned maxHelpers = cap > 1 ? cap - 1 : 0;
                    for (unsigned i = 0;
                         i < slots.size() && helpers < maxHelpers; ++i) {
                        if (i == lane || !slots[i].idle)
                            continue;
                        slots[i].idle = false;
                        --idleLanes;
                        slots[i].joinGroup = &group;
                        group.expectHelper();
                        ++helpers;
                    }
                    if (helpers > 0)
                        activeGroups.push_back(&group);
                }
                // Publish the executing job on the slot so cancel() can
                // reach its shared cancel state while the Job object is in
                // this lane's hands.
                slots[lane].runningId = job->id;
                slots[lane].runningCancel = job->cancel;
            }
        }
        if (joined != nullptr) {
            joined->helperServe(laneConfig(lane));
            continue;
        }
        if (helpers > 0) {
            qCv.notify_all(); // wake the reserved lanes into helperServe
            std::lock_guard<std::mutex> mlk(mMu);
            ++m.shardedPhases;
            m.shardHelperLanes += helpers;
        }
        {
            std::lock_guard<std::mutex> mlk(mMu);
            m.queueWaitMs.record(toMs(Clock::now() - job->enqueued));
            ++m.inFlight;
        }
        std::unique_ptr<Job> back = runPhase(
            lane, std::move(job), helpers > 0 ? &group : nullptr, 1 + helpers);
        const bool requeued = back != nullptr;
        if (requeued) {
            // Setup done or a retry scheduled, not resolved: back to the
            // queue (finish() releases inFlight on the terminal paths).
            {
                std::lock_guard<std::mutex> mlk(mMu);
                --m.inFlight;
            }
            back->enqueued = Clock::now();
        }
        {
            // One critical section for slot teardown AND the re-enqueue,
            // so cancel() never observes the job in neither place: it is
            // on the slot until this block, in the queue after it.
            std::lock_guard<std::mutex> lk(qMu);
            slots[lane].runningId = 0;
            slots[lane].runningCancel = rt::CancelSource{};
            if (helpers > 0)
                activeGroups.erase(std::find(activeGroups.begin(),
                                             activeGroups.end(), &group));
            if (requeued) {
                queue.push_back(std::move(back));
                recallHelpersLocked();
            }
        }
        group.disband();
        if (requeued)
            qCv.notify_one();
    }
}

} // namespace zkphire::engine
