#include "engine/service.hpp"

#include "rt/parallel.hpp"

namespace zkphire::engine {

ProofService::ProofService(const ProverContext &context, unsigned lanes)
    : ctx(context)
{
    if (lanes == 0)
        lanes = 1;
    const rt::Config &cfg = ctx.config();
    const unsigned budget =
        cfg.threads != 0 ? cfg.threads : rt::ThreadPool::defaultThreads();
    // Even split, remainder to the first budget % lanes lanes, so the
    // aggregate equals the budget whenever lanes <= budget. With more lanes
    // than budgeted threads every lane runs serial (deliberate
    // oversubscription: queued jobs still make progress).
    subBudget = budget / lanes;
    if (subBudget == 0)
        subBudget = 1;
    const unsigned remainder = budget > lanes ? budget % lanes : 0;
    laneThreads.reserve(lanes);
    for (unsigned i = 0; i < lanes; ++i) {
        const unsigned laneBudget = subBudget + (i < remainder ? 1 : 0);
        laneThreads.emplace_back([this, laneBudget] { laneLoop(laneBudget); });
    }
}

ProofService::~ProofService()
{
    {
        std::lock_guard<std::mutex> lk(qMu);
        stopping = true;
    }
    qCv.notify_all();
    for (std::thread &t : laneThreads)
        t.join();
}

std::future<ProofResult>
ProofService::submit(const ProofRequest &req)
{
    Job job;
    job.req = req;
    std::future<ProofResult> fut = job.done.get_future();
    {
        std::lock_guard<std::mutex> lk(qMu);
        queue.push_back(std::move(job));
    }
    qCv.notify_one();
    return fut;
}

std::vector<ProofResult>
ProofService::proveAll(const std::vector<ProofRequest> &reqs)
{
    std::vector<std::future<ProofResult>> futures;
    futures.reserve(reqs.size());
    for (const ProofRequest &req : reqs)
        futures.push_back(submit(req));
    std::vector<ProofResult> results;
    results.reserve(futures.size());
    for (std::future<ProofResult> &f : futures)
        results.push_back(f.get());
    return results;
}

ProofResult
ProofService::runJob(const ProofRequest &req, const rt::Config &laneCfg)
{
    ProofResult res;
    if (req.pk == nullptr || req.circuit == nullptr) {
        res.error = "ProofRequest missing proving key or circuit";
        return res;
    }
    try {
        res.proof = ctx.prove(*req.pk, *req.circuit, &res.stats, &laneCfg);
        res.ok = true;
        if (req.stats != nullptr)
            *req.stats = res.stats;
    } catch (const std::exception &e) {
        res.ok = false;
        res.error = e.what();
    } catch (...) {
        res.ok = false;
        res.error = "unknown prover error";
    }
    return res;
}

void
ProofService::laneLoop(unsigned laneBudget)
{
    // Each lane owns a private chunked pool sized to its sub-budget, so
    // in-flight jobs never serialize on one pool's region lock. A
    // sub-budget of 1 spawns no workers and the lane runs fully serial.
    rt::ThreadPool lanePool(laneBudget);

    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lk(qMu);
            qCv.wait(lk, [&] { return stopping || !queue.empty(); });
            if (queue.empty())
                return; // stopping, and every queued job already drained
            job = std::move(queue.front());
            queue.pop_front();
        }
        // Thread split and pool size are fixed at service construction;
        // the other config fields (minGrain) are re-read per job so
        // ProverContext::setConfig between batches takes effect.
        rt::Config laneCfg = ctx.config();
        laneCfg.threads = laneBudget;
        laneCfg.pool = &lanePool;
        job.done.set_value(runJob(job.req, laneCfg));
    }
}

} // namespace zkphire::engine
