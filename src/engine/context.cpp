#include "engine/context.hpp"

#include <cassert>

#include "rt/parallel.hpp"

namespace zkphire::engine {

ProverContext::ProverContext(rt::Config config)
    : cfg(config)
{
}

ProverContext::ProverContext(const pcs::Srs &srs, rt::Config config)
    : srsRef(&srs), cfg(config)
{
}

const hyperplonk::Keys &
ProverContext::preprocess(const hyperplonk::Circuit &circuit)
{
    assert(srsRef != nullptr && "attach an SRS before preprocessing");
    rt::ScopedConfig scope(config());
    ec::ScopedMsmOptions msm_scope(msmOptions());
    hyperplonk::Keys keys = hyperplonk::setup(circuit, *srsRef);
    std::lock_guard<std::mutex> lock(keysMu);
    ownedKeys.push_back(std::move(keys));
    return ownedKeys.back();
}

hyperplonk::ProveOptions
ProverContext::proveOptions(const rt::Config *rtOverride,
                            rt::UnitRunner *units) const
{
    hyperplonk::ProveOptions opts;
    {
        std::lock_guard<std::mutex> lock(cfgMu);
        opts.rt = rtOverride ? *rtOverride : cfg;
        opts.msm = msmOpts;
    }
    opts.plans = &planCache;
    opts.units = units;
    opts.arena = &bufferArena;
    return opts;
}

hyperplonk::HyperPlonkProof
ProverContext::prove(const hyperplonk::ProvingKey &pk,
                     const hyperplonk::Circuit &circuit,
                     hyperplonk::ProverStats *stats,
                     const rt::Config *rtOverride) const
{
    return hyperplonk::prove(pk, circuit, stats, proveOptions(rtOverride));
}

ProverContext &
defaultContext()
{
    static ProverContext ctx;
    return ctx;
}

} // namespace zkphire::engine

namespace zkphire::hyperplonk {

// Legacy one-shot entry point (declared in hyperplonk/prover.hpp). Defined
// here, above the hyperplonk layer, so it can route through the default
// context's plan cache without the core prover depending on the engine.
HyperPlonkProof
prove(const ProvingKey &pk, const Circuit &circuit, ProverStats *stats)
{
    return engine::defaultContext().prove(pk, circuit, stats);
}

} // namespace zkphire::hyperplonk
