/**
 * @file
 * ADX/BMI2 x86-64 assembly Montgomery multiplication for the fixed limb
 * widths (4 = Fr, 6 = Fq).
 *
 * The portable unrolled kernels in mul_impl.hpp bottom out in GCC's u128
 * codegen, which serializes every mac() on a single implicit carry chain;
 * on the BLS12-381 scalar field that caps the kernel at ~1.1x over the
 * generic oracle. The mulx/adcx/adox sequence here keeps TWO independent
 * carry chains in flight per outer CIOS iteration — adcx propagates the
 * low-product chain through CF while adox accumulates the high products
 * through OF — so the multiplier port and both adder chains stay busy
 * every cycle instead of stalling on one flag.
 *
 * Structure (mirrors kernels::montMulNoCarry exactly — same no-carry CIOS
 * with the modulus-headroom precondition, so both produce canonical
 * results bit-identical to the generic oracle):
 *  - The accumulator lives in a ring of N+1 hard registers holding
 *    [t0..t{N-1}, A]. The reduction step's shift-down-a-limb is a register
 *    RENAMING, not a move: after folding m*p, the window rotates by one
 *    and the old t0 register — which the fold left at exactly zero, since
 *    t0 + lo(m*p0) == 0 mod 2^64 by choice of m — becomes the next
 *    iteration's fresh carry word.
 *  - Modulus limbs and -p^{-1} are rip-relative memory operands of
 *    constexpr statics: no registers consumed, no relocation-hostile
 *    64-bit immediates in mul position (mulx takes reg/mem only).
 *  - The asm declares precise in/out memory operands instead of a blanket
 *    "memory" clobber, so surrounding hot loops (vec_ops blocks, bucket
 *    adds) keep their pointers in registers across calls.
 *  - The final conditional subtraction reuses the branchless C++
 *    condSubModulus — it is flag-free mask arithmetic the compiler already
 *    schedules well, and keeping it out of the asm keeps the block small.
 *
 * Squaring dispatches to this multiplier with both operands equal: a
 * dedicated asm squaring needs 2N accumulator limbs live (12 for Fq),
 * which does not fit the register file without spills, and the measured
 * dual-chain mul(a, a) already beats the portable dedicated square (see
 * EXPERIMENTS.md PR 7). fromBig / deserialization stays on the generic
 * path for the same reason as in mul_impl.hpp: the no-carry precondition
 * assumes canonical inputs.
 *
 * Selection is runtime, not compile-time: the instructions are emitted
 * unconditionally (inline asm bypasses -march gates), and dispatch checks
 * cpuid once at startup — BMI2 (mulx) and ADX (adcx/adox) CPUID bits —
 * plus the ZKPHIRE_ASM env toggle ("0" forces the portable kernels, for
 * A/B runs and the CI forced-fallback leg). tests/test_ff_kernels.cpp
 * locks asm == unrolled == generic on random and edge operands.
 */
#ifndef ZKPHIRE_FF_MUL_ASM_X86_HPP
#define ZKPHIRE_FF_MUL_ASM_X86_HPP

// NOLINTBEGIN
// clang-tidy is suppressed for this whole header: the inline-asm blocks
// trip bugprone-* and readability heuristics that have no meaning inside
// a hand-scheduled register ring, and "fixes" here risk miscompiles.
// Correctness is locked externally by tests/test_ff_kernels.cpp (asm ==
// unrolled == generic on random and edge operands).

#include <atomic>
#include <cstdint>
#include <cstdlib>

#include "ff/mul_impl.hpp"

// __OPTIMIZE__ guard: at -O0 the frame pointer is pinned and every
// operand lives in memory, leaving too few registers to satisfy the
// kernels' constraints ("asm operand has impossible constraints" on the
// Debug/sanitizer legs) — unoptimized builds take the C++ kernels.
#if defined(__x86_64__) && !defined(ZKPHIRE_NO_ASM) && defined(__OPTIMIZE__)
#define ZKPHIRE_HAVE_X86_ASM 1
#include <cpuid.h>
#else
#define ZKPHIRE_HAVE_X86_ASM 0
#endif

namespace zkphire::ff::kernels {

/**
 * True when the host CPU exposes BMI2 (mulx) and ADX (adcx/adox) — CPUID
 * leaf 7 subleaf 0, EBX bits 8 and 19. Always false on non-x86-64 builds.
 */
inline bool
cpuSupportsAdxBmi2()
{
#if ZKPHIRE_HAVE_X86_ASM
    static const bool ok = [] {
        unsigned a = 0, b = 0, c = 0, d = 0;
        if (!__get_cpuid_count(7, 0, &a, &b, &c, &d))
            return false;
        constexpr unsigned kBmi2 = 1u << 8;
        constexpr unsigned kAdx = 1u << 19;
        return (b & kBmi2) != 0 && (b & kAdx) != 0;
    }();
    return ok;
#else
    return false;
#endif
}

namespace detail {

/** Runtime asm toggle; see asmKernelsEnabled(). */
inline std::atomic<bool> g_asm_enabled{[] {
    if (!cpuSupportsAdxBmi2())
        return false;
    const char *env = std::getenv("ZKPHIRE_ASM");
    return env == nullptr || env[0] == '\0' || env[0] != '0';
}()};

} // namespace detail

/**
 * Whether mul/square dispatch should take the asm kernels: requires CPU
 * support, ZKPHIRE_ASM not set to 0, and no forceAsmKernels(false)
 * override. Note the generic-oracle switch (forceGenericKernels /
 * ZKPHIRE_FF_GENERIC) is checked FIRST by the dispatch sites and
 * overrides this — the oracle always wins.
 */
inline bool
asmKernelsEnabled()
{
    return detail::g_asm_enabled.load(std::memory_order_relaxed);
}

/** Flip the asm leg at runtime (tests/benches). Enabling on a host
 *  without ADX/BMI2 is ignored — the portable kernels stay selected. */
inline void
forceAsmKernels(bool on)
{
    detail::g_asm_enabled.store(on && cpuSupportsAdxBmi2(),
                                std::memory_order_relaxed);
}

/** RAII asm-kernel scope for A/B tests and benches. */
class ScopedAsmKernels
{
  public:
    explicit ScopedAsmKernels(bool on) : saved(asmKernelsEnabled())
    {
        forceAsmKernels(on);
    }
    ~ScopedAsmKernels() { forceAsmKernels(saved); }
    ScopedAsmKernels(const ScopedAsmKernels &) = delete;
    ScopedAsmKernels &operator=(const ScopedAsmKernels &) = delete;

  private:
    bool saved;
};

#if ZKPHIRE_HAVE_X86_ASM

/**
 * out = a * b * R^{-1} mod P via the dual-carry-chain no-carry CIOS above.
 * Same preconditions as montMulNoCarry (a, b < P, headroom modulus);
 * produces canonical (< P) output. out may alias a or b.
 */
template <class Big, Big P, u64 Inv>
inline void
montMulAsmX86(u64 *out, const u64 *a, const u64 *b)
{
    constexpr std::size_t N = Big::numLimbs;
    static_assert(N == 4 || N == 6, "asm kernels cover the 4/6-limb widths");
    static constexpr u64 s_inv = Inv;
    static constexpr auto s_p = P.limb;
    u64 t[N];
    if constexpr (N == 4) {
        __asm__(
            /* t = a * b[0] (plain carry chain; accumulators are fresh) */
            "movq 0(%[b]), %%rdx\n\t"
            "mulxq 0(%[a]), %%r8, %%r9\n\t"
            "mulxq 8(%[a]), %%rax, %%r10\n\t"
            "addq %%rax, %%r9\n\t"
            "mulxq 16(%[a]), %%rax, %%r11\n\t"
            "adcq %%rax, %%r10\n\t"
            "mulxq 24(%[a]), %%rax, %%r12\n\t"
            "adcq %%rax, %%r11\n\t"
            "adcq $0, %%r12\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r8, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r12\n\t"
            /* t += a * b[1] (dual carry chains, carry word into r8) */
            "movq 8(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r8\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r9, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r8\n\t"
            /* t += a * b[2] (dual carry chains, carry word into r9) */
            "movq 16(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r9\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r10, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r9\n\t"
            /* t += a * b[3] (dual carry chains, carry word into r10) */
            "movq 24(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r10\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r11, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r10\n\t"
            "movq %%r12, 0(%[out])\n\t"
            "movq %%r8, 8(%[out])\n\t"
            "movq %%r9, 16(%[out])\n\t"
            "movq %%r10, 24(%[out])"
            : "=m"(t)
            : [out] "r"(t), [a] "r"(a), [b] "r"(b),
              "m"(*reinterpret_cast<const u64(*)[4]>(a)),
              "m"(*reinterpret_cast<const u64(*)[4]>(b)),
              [inv] "m"(s_inv),
              [p0] "m"(s_p[0]),
              [p1] "m"(s_p[1]),
              [p2] "m"(s_p[2]),
              [p3] "m"(s_p[3])
            : "rax", "rcx", "rdx", "r8", "r9", "r10", "r11", "r12", "cc");
    } else {
        __asm__(
            /* t = a * b[0] (plain carry chain; accumulators are fresh) */
            "movq 0(%[b]), %%rdx\n\t"
            "mulxq 0(%[a]), %%r8, %%r9\n\t"
            "mulxq 8(%[a]), %%rax, %%r10\n\t"
            "addq %%rax, %%r9\n\t"
            "mulxq 16(%[a]), %%rax, %%r11\n\t"
            "adcq %%rax, %%r10\n\t"
            "mulxq 24(%[a]), %%rax, %%r12\n\t"
            "adcq %%rax, %%r11\n\t"
            "mulxq 32(%[a]), %%rax, %%r13\n\t"
            "adcq %%rax, %%r12\n\t"
            "mulxq 40(%[a]), %%rax, %%r14\n\t"
            "adcq %%rax, %%r13\n\t"
            "adcq $0, %%r14\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r8, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq %[p4], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq %[p5], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r14\n\t"
            /* t += a * b[1] (dual carry chains, carry word into r8) */
            "movq 8(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq 32(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq 40(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r8\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r9, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq %[p4], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq %[p5], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r8\n\t"
            /* t += a * b[2] (dual carry chains, carry word into r9) */
            "movq 16(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq 32(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq 40(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r9\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r10, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq %[p4], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq %[p5], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r9\n\t"
            /* t += a * b[3] (dual carry chains, carry word into r10) */
            "movq 24(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq 32(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq 40(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r10\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r11, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq %[p4], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq %[p5], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r10\n\t"
            /* t += a * b[4] (dual carry chains, carry word into r11) */
            "movq 32(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq 32(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq 40(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r11\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r12, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r12\n\t"
            "adoxq %%rcx, %%r13\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq %[p4], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq %[p5], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r11\n\t"
            /* t += a * b[5] (dual carry chains, carry word into r12) */
            "movq 40(%[b]), %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq 0(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq 8(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq 16(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq 24(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq 32(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq 40(%[a]), %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r12\n\t"
            /* m = t[0] * inv; fold m*p, shifting the window down a limb */
            "movq %%r13, %%rdx\n\t"
            "imulq %[inv], %%rdx\n\t"
            "xorl %%eax, %%eax\n\t"
            "mulxq %[p0], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r13\n\t"
            "adoxq %%rcx, %%r14\n\t"
            "mulxq %[p1], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r14\n\t"
            "adoxq %%rcx, %%r8\n\t"
            "mulxq %[p2], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r8\n\t"
            "adoxq %%rcx, %%r9\n\t"
            "mulxq %[p3], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r9\n\t"
            "adoxq %%rcx, %%r10\n\t"
            "mulxq %[p4], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r10\n\t"
            "adoxq %%rcx, %%r11\n\t"
            "mulxq %[p5], %%rax, %%rcx\n\t"
            "adcxq %%rax, %%r11\n\t"
            "adoxq %%rcx, %%r12\n\t"
            "movl $0, %%eax\n\t"
            "adcxq %%rax, %%r12\n\t"
            "movq %%r14, 0(%[out])\n\t"
            "movq %%r8, 8(%[out])\n\t"
            "movq %%r9, 16(%[out])\n\t"
            "movq %%r10, 24(%[out])\n\t"
            "movq %%r11, 32(%[out])\n\t"
            "movq %%r12, 40(%[out])"
            : "=m"(t)
            : [out] "r"(t), [a] "r"(a), [b] "r"(b),
              "m"(*reinterpret_cast<const u64(*)[6]>(a)),
              "m"(*reinterpret_cast<const u64(*)[6]>(b)),
              [inv] "m"(s_inv),
              [p0] "m"(s_p[0]),
              [p1] "m"(s_p[1]),
              [p2] "m"(s_p[2]),
              [p3] "m"(s_p[3]),
              [p4] "m"(s_p[4]),
              [p5] "m"(s_p[5])
            : "rax", "rcx", "rdx", "r8", "r9", "r10", "r11", "r12", "r13", "r14", "cc");
    }
    detail::condSubModulus<Big, P>(out, t);
}

#endif // ZKPHIRE_HAVE_X86_ASM

} // namespace zkphire::ff::kernels

// NOLINTEND

#endif // ZKPHIRE_FF_MUL_ASM_X86_HPP
