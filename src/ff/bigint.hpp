/**
 * @file
 * Fixed-width little-endian multi-precision integers.
 *
 * BigInt<N> is the raw-limb substrate under the Montgomery-form prime fields
 * (src/ff/field.hpp). It provides exactly the operations the field layer and
 * the MSM scalar-windowing code need: carry-propagating add/sub, comparisons,
 * shifts, bit extraction, and hex/byte conversions. All arithmetic is
 * constant-size (no dynamic allocation) so field elements stay POD-like and
 * cheap to copy into MLE tables.
 */
#ifndef ZKPHIRE_FF_BIGINT_HPP
#define ZKPHIRE_FF_BIGINT_HPP

#include <array>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace zkphire::ff {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/**
 * Fixed-width unsigned integer with N 64-bit limbs, least-significant first.
 */
template <std::size_t N>
struct BigInt {
    std::array<u64, N> limb{};

    constexpr BigInt() = default;

    /** Construct from a single 64-bit value (upper limbs zero). */
    explicit constexpr BigInt(u64 lo) { limb[0] = lo; }

    static constexpr std::size_t numLimbs = N;
    static constexpr std::size_t numBits = 64 * N;

    constexpr bool
    isZero() const
    {
        for (std::size_t i = 0; i < N; ++i)
            // zkphire-lint: ct-exempt(early-exit predicate; callers branch on the result anyway)
            if (limb[i] != 0) return false;
        return true;
    }

    constexpr bool operator==(const BigInt &o) const { return limb == o.limb; }
    constexpr bool operator!=(const BigInt &o) const { return limb != o.limb; }

    /** Three-way comparison as unsigned integers. */
    // zkphire-lint: ct-exempt(lexicographic early exit; used for canonical-range checks and test oracles, not on witness limbs inside kernels)
    constexpr int
    cmp(const BigInt &o) const
    {
        for (std::size_t i = N; i-- > 0;) {
            if (limb[i] < o.limb[i]) return -1;
            if (limb[i] > o.limb[i]) return 1;
        }
        return 0;
    }

    constexpr bool operator<(const BigInt &o) const { return cmp(o) < 0; }
    constexpr bool operator<=(const BigInt &o) const { return cmp(o) <= 0; }
    constexpr bool operator>(const BigInt &o) const { return cmp(o) > 0; }
    constexpr bool operator>=(const BigInt &o) const { return cmp(o) >= 0; }

    /** this += o; @return carry out (0 or 1). */
    constexpr u64
    addInPlace(const BigInt &o)
    {
        u64 carry = 0;
        for (std::size_t i = 0; i < N; ++i) {
            u128 s = (u128)limb[i] + o.limb[i] + carry;
            limb[i] = (u64)s;
            carry = (u64)(s >> 64);
        }
        return carry;
    }

    /** this -= o; @return borrow out (0 or 1). */
    constexpr u64
    subInPlace(const BigInt &o)
    {
        u64 borrow = 0;
        for (std::size_t i = 0; i < N; ++i) {
            u128 d = (u128)limb[i] - o.limb[i] - borrow;
            limb[i] = (u64)d;
            borrow = (u64)((d >> 64) & 1);
        }
        return borrow;
    }

    /** Logical left shift by one bit; @return the bit shifted out. */
    constexpr u64
    shl1InPlace()
    {
        u64 carry = 0;
        for (std::size_t i = 0; i < N; ++i) {
            u64 next = limb[i] >> 63;
            limb[i] = (limb[i] << 1) | carry;
            carry = next;
        }
        return carry;
    }

    /** Logical right shift by one bit. */
    constexpr void
    shr1InPlace()
    {
        for (std::size_t i = 0; i + 1 < N; ++i)
            limb[i] = (limb[i] >> 1) | (limb[i + 1] << 63);
        limb[N - 1] >>= 1;
    }

    /** Extract bit i (0 = least significant). */
    constexpr bool
    bit(std::size_t i) const
    {
        assert(i < numBits);
        return (limb[i / 64] >> (i % 64)) & 1;
    }

    /** Extract `width` (≤ 64) bits starting at bit `lo`, as in MSM windows. */
    constexpr u64
    bits(std::size_t lo, std::size_t width) const
    {
        assert(width >= 1 && width <= 64);
        std::size_t word = lo / 64, off = lo % 64;
        u64 v = limb[word] >> off;
        if (off + width > 64 && word + 1 < N)
            v |= limb[word + 1] << (64 - off);
        if (width < 64)
            v &= (u64(1) << width) - 1;
        return v;
    }

    /** Index of the highest set bit plus one; 0 for zero. */
    // zkphire-lint: ct-exempt(top-limb scan; consumed by recoding window counts, which the MSM pads to fixed width)
    constexpr std::size_t
    bitLength() const
    {
        for (std::size_t i = N; i-- > 0;) {
            if (limb[i]) {
                std::size_t b = 64;
                u64 v = limb[i];
                while (!(v >> 63)) { v <<= 1; --b; }
                return i * 64 + b;
            }
        }
        return 0;
    }

    /**
     * Parse a big-endian hex string (optional 0x prefix). Truncates to N
     * limbs; asserts on non-hex characters. constexpr so field moduli can
     * be compile-time constants baked into the unrolled Montgomery kernels.
     */
    static constexpr BigInt
    fromHex(std::string_view hex)
    {
        if (hex.size() >= 2 && hex[0] == '0' && (hex[1] == 'x' || hex[1] == 'X'))
            hex.remove_prefix(2);
        BigInt out;
        std::size_t nibble = 0;
        for (std::size_t i = hex.size(); i-- > 0 && nibble < 16 * N;) {
            char c = hex[i];
            u64 v;
            if (c >= '0' && c <= '9') v = u64(c - '0');
            else if (c >= 'a' && c <= 'f') v = u64(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F') v = u64(c - 'A' + 10);
            else { assert(false && "bad hex digit"); v = 0; }
            out.limb[nibble / 16] |= v << (4 * (nibble % 16));
            ++nibble;
        }
        return out;
    }

    /** Render as lowercase hex with 0x prefix, no leading-zero trimming. */
    std::string
    toHex() const
    {
        static const char *digits = "0123456789abcdef";
        std::string s = "0x";
        for (std::size_t i = N; i-- > 0;)
            for (int shift = 60; shift >= 0; shift -= 4)
                // zkphire-lint: ct-exempt(hex serialization for logs/tests; the 16-entry LUT is one cache line)
                s += digits[(limb[i] >> shift) & 0xf];
        return s;
    }

    /** Serialize to little-endian bytes (8*N bytes). */
    void
    toBytesLe(std::uint8_t *out) const
    {
        for (std::size_t i = 0; i < N; ++i)
            for (std::size_t b = 0; b < 8; ++b)
                out[i * 8 + b] = std::uint8_t(limb[i] >> (8 * b));
    }

    /** Deserialize from little-endian bytes (8*N bytes). */
    static BigInt
    fromBytesLe(const std::uint8_t *in)
    {
        BigInt out;
        for (std::size_t i = 0; i < N; ++i)
            for (std::size_t b = 0; b < 8; ++b)
                out.limb[i] |= u64(in[i * 8 + b]) << (8 * b);
        return out;
    }
};

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_BIGINT_HPP
