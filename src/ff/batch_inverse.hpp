/**
 * @file
 * Batched modular inversion (Montgomery's trick).
 *
 * Inverts n field elements with one true inversion and 3(n-1) multiplications.
 * This is the algorithm the Permutation Quotient Generator implements in
 * hardware (paper §IV-B5): zkSpeed used batch size 64 with per-inverse
 * multipliers; zkPHIRE uses batch size 2 with shared multipliers and 266
 * round-robin inverse units. The functional kernel here is shared by the
 * PermCheck prover (computing phi = N/D) and by tests; the hardware cost of
 * both batching strategies is modeled in src/sim/permq.*.
 */
#ifndef ZKPHIRE_FF_BATCH_INVERSE_HPP
#define ZKPHIRE_FF_BATCH_INVERSE_HPP

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace zkphire::ff {

/**
 * In-place batched inversion. Every element must be nonzero.
 *
 * @param xs Elements to invert; replaced by their inverses.
 */
template <class F>
void
batchInverseInPlace(std::span<F> xs)
{
    const std::size_t n = xs.size();
    if (n == 0)
        return;
    std::vector<F> prefix(n);
    F acc = F::one();
    for (std::size_t i = 0; i < n; ++i) {
        assert(!xs[i].isZero() && "batch inverse of zero element");
        prefix[i] = acc;
        acc *= xs[i];
    }
    F inv = acc.inverse();
    for (std::size_t i = n; i-- > 0;) {
        F x_inv = inv * prefix[i];
        inv *= xs[i];
        xs[i] = x_inv;
    }
}

/** Batched inversion returning a new vector. */
template <class F>
std::vector<F>
batchInverse(std::span<const F> xs)
{
    std::vector<F> out(xs.begin(), xs.end());
    batchInverseInPlace(std::span<F>(out));
    return out;
}

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_BATCH_INVERSE_HPP
