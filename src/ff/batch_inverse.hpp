/**
 * @file
 * Batched modular inversion (Montgomery's trick).
 *
 * Inverts n field elements with one true inversion and 3(n-1) multiplications.
 * This is the algorithm the Permutation Quotient Generator implements in
 * hardware (paper §IV-B5): zkSpeed used batch size 64 with per-inverse
 * multipliers; zkPHIRE uses batch size 2 with shared multipliers and 266
 * round-robin inverse units. The functional kernel here is shared by the
 * PermCheck prover (computing phi = N/D) and by tests; the hardware cost of
 * both batching strategies is modeled in src/sim/permq.*.
 *
 * Large batches run the two multiplication sweeps chunk-parallel on
 * zkphire::rt: each chunk computes local prefix products and its chunk
 * product, the chunk products are batch-inverted serially (one true
 * inversion total, as before), and each chunk then back-substitutes
 * independently. Inverses are canonical field values, so the parallel path
 * is bit-identical to the serial one.
 */
#ifndef ZKPHIRE_FF_BATCH_INVERSE_HPP
#define ZKPHIRE_FF_BATCH_INVERSE_HPP

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "rt/parallel.hpp"

namespace zkphire::ff {

namespace detail {

/** Serial Montgomery trick over [xs.begin, xs.end), given prefix scratch.
 *
 * Both sweeps are dependent multiplication chains (acc *= x feeds the next
 * step), so a single chain runs at multiplier latency, not throughput. The
 * chain is therefore split into kLanes contiguous blocks whose independent
 * accumulators interleave in one loop, letting the out-of-order core overlap
 * the lanes; the lane products are combined with one true inversion exactly
 * as before. Every element still receives its canonical inverse, so the
 * laned sweep is bit-identical to a single chain. */
template <class F>
void
batchInverseSerial(std::span<F> xs, std::span<F> prefix)
{
    const std::size_t n = xs.size();
    constexpr std::size_t kLanes = 8;
    if (n < 4 * kLanes) {
        F acc = F::one();
        for (std::size_t i = 0; i < n; ++i) {
            assert(!xs[i].isZero() && "batch inverse of zero element");
            prefix[i] = acc;
            acc *= xs[i];
        }
        F inv = acc.inverse();
        for (std::size_t i = n; i-- > 0;) {
            F x_inv = inv * prefix[i];
            inv *= xs[i];
            xs[i] = x_inv;
        }
        return;
    }

    // Lane k owns the contiguous block [off[k], off[k+1]); the first
    // n % kLanes lanes are one element longer.
    std::size_t off[kLanes + 1];
    {
        const std::size_t base = n / kLanes, rem = n % kLanes;
        off[0] = 0;
        for (std::size_t k = 0; k < kLanes; ++k)
            off[k + 1] = off[k] + base + (k < rem ? 1 : 0);
    }
    const std::size_t lmin = n / kLanes;

    F acc[kLanes];
    for (auto &a : acc)
        a = F::one();
    for (std::size_t s = 0; s < lmin; ++s) {
        for (std::size_t k = 0; k < kLanes; ++k) {
            const std::size_t i = off[k] + s;
            assert(!xs[i].isZero() && "batch inverse of zero element");
            prefix[i] = acc[k];
            acc[k] *= xs[i];
        }
    }
    for (std::size_t k = 0; k < kLanes; ++k) {
        for (std::size_t i = off[k] + lmin; i < off[k + 1]; ++i) {
            assert(!xs[i].isZero() && "batch inverse of zero element");
            prefix[i] = acc[k];
            acc[k] *= xs[i];
        }
    }

    // One true inversion of the total product, then peel off per-lane
    // inverses with the same trick applied to the kLanes accumulators.
    F lane_pref[kLanes];
    F total = F::one();
    for (std::size_t k = 0; k < kLanes; ++k) {
        lane_pref[k] = total;
        total *= acc[k];
    }
    F t = total.inverse();
    F inv[kLanes];
    for (std::size_t k = kLanes; k-- > 0;) {
        inv[k] = t * lane_pref[k];
        t *= acc[k];
    }

    for (std::size_t k = 0; k < kLanes; ++k) {
        for (std::size_t i = off[k + 1]; i-- > off[k] + lmin;) {
            F x_inv = inv[k] * prefix[i];
            inv[k] *= xs[i];
            xs[i] = x_inv;
        }
    }
    for (std::size_t s = lmin; s-- > 0;) {
        for (std::size_t k = 0; k < kLanes; ++k) {
            const std::size_t i = off[k] + s;
            F x_inv = inv[k] * prefix[i];
            inv[k] *= xs[i];
            xs[i] = x_inv;
        }
    }
}

} // namespace detail

/**
 * In-place batched inversion. Every element must be nonzero.
 *
 * @param xs Elements to invert; replaced by their inverses.
 */
template <class F>
void
batchInverseInPlace(std::span<F> xs)
{
    const std::size_t n = xs.size();
    if (n == 0)
        return;

    constexpr std::size_t kMinParallel = 2048;
    if (rt::currentThreads() <= 1 || n < kMinParallel) {
        std::vector<F> prefix(n);
        detail::batchInverseSerial(xs, std::span<F>(prefix));
        return;
    }

    const std::size_t grain = rt::suggestedGrain(n, 512);
    const std::size_t num_chunks = (n + grain - 1) / grain;

    // Pass 1 (parallel): local prefix products and one product per chunk.
    std::vector<F> prefix(n);
    std::vector<F> chunk_prod(num_chunks);
    rt::parallelForChunks(
        0, n,
        [&](std::size_t b, std::size_t e) {
            F acc = F::one();
            for (std::size_t i = b; i < e; ++i) {
                assert(!xs[i].isZero() && "batch inverse of zero element");
                prefix[i] = acc;
                acc *= xs[i];
            }
            chunk_prod[b / grain] = acc;
        },
        grain);

    // Invert the chunk products serially: still exactly one true inversion.
    std::vector<F> chunk_scratch(num_chunks);
    detail::batchInverseSerial(std::span<F>(chunk_prod),
                               std::span<F>(chunk_scratch));

    // Pass 2 (parallel): per-chunk back substitution from the chunk inverse.
    rt::parallelForChunks(
        0, n,
        [&](std::size_t b, std::size_t e) {
            F inv = chunk_prod[b / grain];
            for (std::size_t i = e; i-- > b;) {
                F x_inv = inv * prefix[i];
                inv *= xs[i];
                xs[i] = x_inv;
            }
        },
        grain);
}

/**
 * In-place batched inversion with a caller-owned prefix buffer, for hot
 * loops that invert many small batches (the batched-affine MSM bucket
 * adder resolves one batch per reduction round): the scratch vector is
 * grown once and reused, so repeated rounds allocate nothing. Always runs
 * the serial sweep — callers sit inside an already-parallel region.
 */
template <class F>
void
batchInverseSerialInPlace(std::span<F> xs, std::vector<F> &prefix_scratch)
{
    if (xs.empty())
        return;
    if (prefix_scratch.size() < xs.size())
        prefix_scratch.resize(xs.size());
    detail::batchInverseSerial(
        xs, std::span<F>(prefix_scratch.data(), xs.size()));
}

/** Batched inversion returning a new vector. */
template <class F>
std::vector<F>
batchInverse(std::span<const F> xs)
{
    std::vector<F> out(xs.begin(), xs.end());
    batchInverseInPlace(std::span<F>(out));
    return out;
}

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_BATCH_INVERSE_HPP
