/**
 * @file
 * Fixed-limb Montgomery kernels: fully unrolled no-carry CIOS mul, dedicated
 * squaring, and branchless add/sub/double/negate for 4-limb (Fr) and 6-limb
 * (Fq) operands.
 *
 * Every layer of the prover — MSM bucket adds, MLE folds, GatePlan round
 * evaluation, batch inversion — bottoms out in Montgomery multiplication, so
 * this file is the hottest code in the repository. The generic CIOS loop in
 * field.hpp spends a large fraction of its time on loop control, on the
 * carry-propagation column t[N]/t[N+1], and on loading runtime modulus
 * limbs; all three disappear here:
 *
 *  - **No-carry CIOS** (the "most moduli" optimization): when the modulus'
 *    top limb is < 2^63 - 1, the interleaved CIOS accumulator provably fits
 *    in N limbs — the (N+1)th column and its carry bookkeeping vanish, and
 *    the two per-iteration carries merge with a plain 64-bit add. Both
 *    BLS12-381 fields qualify (Fr top limb 0x73ed…, Fq top limb 0x1a01…);
 *    the precondition is a constexpr check (PrimeField::kFixedKernels) and
 *    the generic kernel covers any modulus that fails it.
 *  - **Compile-time modulus**: kernels take the modulus and -p^{-1} mod 2^64
 *    as non-type template parameters, so every p-limb is an instruction
 *    immediate instead of a load — measurably faster than passing a pointer
 *    to even a constexpr table.
 *  - **Full unrolling**: kernels are unrolled with fold expressions
 *    (`unroll<N>`), so every limb index is a constant, the t[] accumulator
 *    lives in registers, and there is no loop overhead.
 *  - **Dedicated squaring**: off-diagonal products are computed once and
 *    doubled by shifting, saving ~17-19% of the limb multiplications of a
 *    general product (N=6: 63 muls vs 78 counting the per-iteration m
 *    muls on both sides; N=4: 30 vs 36).
 *  - **Branchless reduction**: add/sub/double/negate/mul select the reduced
 *    value with a borrow-derived mask instead of a compare-and-branch, so
 *    the hot loops carry no data-dependent branches.
 *
 * All kernels produce canonical (< p) results, bit-identical to the generic
 * path — tests/test_ff_kernels.cpp locks this on random and edge operands,
 * and the generic path stays selectable as an oracle at runtime
 * (forceGenericKernels / ZKPHIRE_FF_GENERIC=1).
 */
#ifndef ZKPHIRE_FF_MUL_IMPL_HPP
#define ZKPHIRE_FF_MUL_IMPL_HPP

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <utility>

namespace zkphire::ff::kernels {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/** Limb counts with an unrolled kernel instantiation below. */
template <std::size_t N>
inline constexpr bool kHasFixedKernel = (N == 4 || N == 6);

/**
 * No-carry precondition: the top modulus limb must leave one bit of
 * headroom and absorb the merged carry add (gnark's "most moduli" bound).
 */
inline constexpr bool
noCarryModulusOk(u64 top_limb)
{
    return top_limb < ((u64(1) << 63) - 1);
}

/** -p^{-1} mod 2^64 by Newton iteration on the low modulus limb. */
inline constexpr u64
negInvMod64(u64 p0)
{
    u64 x = 1;
    for (int i = 0; i < 6; ++i)
        x *= 2 - p0 * x;
    return ~x + 1;
}

namespace detail {

/** Runtime oracle switch; see forceGenericKernels(). */
inline std::atomic<bool> g_force_generic{[] {
    const char *env = std::getenv("ZKPHIRE_FF_GENERIC");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}()};

/** Compile-time-unrolled loop: body(integral_constant<size_t, 0..N-1>). */
template <class F, std::size_t... I>
inline void
unrollImpl(F &&body, std::index_sequence<I...>)
{
    (body(std::integral_constant<std::size_t, I>{}), ...);
}

template <std::size_t N, class F>
inline void
unroll(F &&body)
{
    unrollImpl(static_cast<F &&>(body), std::make_index_sequence<N>{});
}

/** lo(a + b*c + carry); carry <- hi. Never overflows 128 bits. */
inline u64
mac(u64 a, u64 b, u64 c, u64 &carry)
{
    const u128 t = (u128)a + (u128)b * c + carry;
    carry = (u64)(t >> 64);
    return (u64)t;
}

/** lo(a + b + carry); carry <- hi (0 or 1). */
inline u64
adc(u64 a, u64 b, u64 &carry)
{
    const u128 t = (u128)a + b + carry;
    carry = (u64)(t >> 64);
    return (u64)t;
}

/** lo(a - b - borrow); borrow <- 1 on underflow. */
inline u64
sbb(u64 a, u64 b, u64 &borrow)
{
    const u128 t = (u128)a - b - borrow;
    borrow = (u64)((t >> 64) & 1);
    return (u64)t;
}

/**
 * out = t - P if t >= P else t, branchless: the full subtraction is always
 * computed and the result selected with the borrow-derived mask. @pre t < 2P.
 */
template <class Big, Big P>
inline void
condSubModulus(u64 *out, const u64 *t)
{
    constexpr std::size_t N = Big::numLimbs;
    u64 u[N];
    u64 borrow = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        u[i] = sbb(t[i], P.limb[i], borrow);
    });
    const u64 keep_sub = u64(0) - (borrow ^ 1); // all-ones when t >= P
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        out[i] = (u[i] & keep_sub) | (t[i] & ~keep_sub);
    });
}

} // namespace detail

/**
 * Oracle switch: when true, PrimeField routes every operation through the
 * generic loop-over-limbs kernels even where an unrolled kernel exists.
 * Reads ZKPHIRE_FF_GENERIC at startup; tests flip it to cross-check the
 * unrolled kernels and to prove transcript bit-identity kernels on vs off.
 */
inline bool
genericKernelsForced()
{
    return detail::g_force_generic.load(std::memory_order_relaxed);
}

inline void
forceGenericKernels(bool on)
{
    detail::g_force_generic.store(on, std::memory_order_relaxed);
}

/** RAII oracle scope for tests and benches. */
class ScopedGenericKernels
{
  public:
    explicit ScopedGenericKernels(bool on) : saved(genericKernelsForced())
    {
        forceGenericKernels(on);
    }
    ~ScopedGenericKernels() { forceGenericKernels(saved); }
    ScopedGenericKernels(const ScopedGenericKernels &) = delete;
    ScopedGenericKernels &operator=(const ScopedGenericKernels &) = delete;

  private:
    bool saved;
};

/**
 * Unrolled no-carry CIOS Montgomery multiplication:
 * out = a * b * R^{-1} mod P, canonical.
 *
 * @tparam P   The modulus as a compile-time BigInt (limb immediates).
 * @tparam Inv -P^{-1} mod 2^64.
 * @pre a, b < P; P's top limb satisfies noCarryModulusOk(). The accumulator
 *      fits in N limbs: each outer iteration adds a[j]*b[i] and m*P[j]
 *      columns whose merged carries C + A stay below 2^64 because the top
 *      modulus limb leaves a free bit.
 */
template <class Big, Big P, u64 Inv>
inline void
montMulNoCarry(u64 *out, const u64 *a, const u64 *b)
{
    using namespace detail;
    constexpr std::size_t N = Big::numLimbs;
    u64 t[N] = {0};
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        // Column a*b[i]: first limb, then the m that zeroes t[0].
        u64 A = 0;
        t[0] = mac(t[0], a[0], b[i], A);
        const u64 m = t[0] * Inv;
        u64 C = 0;
        (void)mac(t[0], m, P.limb[0], C);
        // Interleaved remaining limbs: one pass adds a[j]*b[i] (carry A)
        // and folds m*P[j] (carry C), shifting the accumulator down a limb.
        unroll<N - 1>([&](auto J) {
            constexpr std::size_t j = decltype(J)::value + 1;
            t[j] = mac(t[j], a[j], b[i], A);
            t[j - 1] = mac(t[j], m, P.limb[j], C);
        });
        t[N - 1] = C + A; // no overflow: the no-carry precondition
    });
    detail::condSubModulus<Big, P>(out, t);
}

/**
 * Unrolled Montgomery squaring: out = a * a * R^{-1} mod P, canonical.
 *
 * Off-diagonal limb products are computed once and doubled with a one-bit
 * shift of the double-width accumulator, then the diagonal squares are
 * added and the 2N-limb value is Montgomery-reduced. Limb-mul count for
 * N = 6: 15 off-diagonal + 6 diagonal + 36 m*P + 6 m = 63, vs 78 for the
 * general product (~19% fewer; both counts include the per-iteration
 * m = t*Inv muls); N = 4: 30 vs 36 (~17% fewer). Measured S/M ~ 0.8 for
 * Fq — the ratio ec::msm_cost prices EC formulas with.
 *
 * @pre a < P, same modulus preconditions as montMulNoCarry.
 */
template <class Big, Big P, u64 Inv>
inline void
montSquare(u64 *out, const u64 *a)
{
    using namespace detail;
    constexpr std::size_t N = Big::numLimbs;
    u64 r[2 * N] = {0};
    // Off-diagonal products a[i]*a[j], j > i, each computed once.
    unroll<N - 1>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        u64 carry = 0;
        unroll<N - 1 - i>([&](auto J) {
            constexpr std::size_t j = i + 1 + decltype(J)::value;
            r[i + j] = mac(r[i + j], a[i], a[j], carry);
        });
        r[i + N] = carry;
    });
    // Double by shifting the 2N-limb accumulator left one bit (top down,
    // so each limb reads its lower neighbour's old top bit).
    r[2 * N - 1] = r[2 * N - 2] >> 63;
    unroll<2 * N - 3>([&](auto I) {
        constexpr std::size_t i = 2 * N - 2 - decltype(I)::value;
        r[i] = (r[i] << 1) | (r[i - 1] >> 63);
    });
    r[1] <<= 1;
    // Diagonal squares with carry propagation into the odd limbs.
    u64 carry = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        r[2 * i] = mac(r[2 * i], a[i], a[i], carry);
        r[2 * i + 1] = adc(r[2 * i + 1], 0, carry);
    });
    // Montgomery reduction of the 2N-limb product (a^2 < P*R, so the final
    // carry chain is empty for headroom moduli and the result is < 2P).
    u64 carry2 = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        const u64 m = r[i] * Inv;
        u64 c = 0;
        (void)mac(r[i], m, P.limb[0], c);
        unroll<N - 1>([&](auto J) {
            constexpr std::size_t j = decltype(J)::value + 1;
            r[i + j] = mac(r[i + j], m, P.limb[j], c);
        });
        u64 c2 = carry2;
        r[i + N] = adc(r[i + N], c, c2);
        carry2 = c2;
    });
    detail::condSubModulus<Big, P>(out, r + N);
}

/**
 * out = a + b mod P, branchless. @pre a, b < P. The raw sum cannot carry
 * out of N limbs (2P < 2^(64N) for headroom moduli), so the reduction is a
 * single masked subtraction. out may alias a or b.
 */
template <class Big, Big P>
inline void
addMod(u64 *out, const u64 *a, const u64 *b)
{
    using namespace detail;
    constexpr std::size_t N = Big::numLimbs;
    u64 t[N];
    u64 carry = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        t[i] = adc(a[i], b[i], carry);
    });
    condSubModulus<Big, P>(out, t);
}

/** out = 2a mod P, branchless shift-and-reduce. @pre a < P. */
template <class Big, Big P>
inline void
dblMod(u64 *out, const u64 *a)
{
    using namespace detail;
    constexpr std::size_t N = Big::numLimbs;
    u64 t[N];
    t[0] = a[0] << 1;
    unroll<N - 1>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value + 1;
        t[i] = (a[i] << 1) | (a[i - 1] >> 63);
    });
    condSubModulus<Big, P>(out, t);
}

/**
 * out = a - b mod P, branchless: the borrow masks a compensating +P pass
 * that is always executed. out may alias a or b.
 */
template <class Big, Big P>
inline void
subMod(u64 *out, const u64 *a, const u64 *b)
{
    using namespace detail;
    constexpr std::size_t N = Big::numLimbs;
    u64 t[N];
    u64 borrow = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        t[i] = sbb(a[i], b[i], borrow);
    });
    const u64 add_p = u64(0) - borrow; // all-ones when a < b
    u64 carry = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        out[i] = adc(t[i], P.limb[i] & add_p, carry);
    });
}

/** out = -a mod P, branchless (P - a masked to zero when a == 0). */
template <class Big, Big P>
inline void
negMod(u64 *out, const u64 *a)
{
    using namespace detail;
    constexpr std::size_t N = Big::numLimbs;
    u64 any = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        any |= a[i];
    });
    const u64 nonzero = u64(0) - u64(any != 0);
    u64 borrow = 0;
    unroll<N>([&](auto I) {
        constexpr std::size_t i = decltype(I)::value;
        out[i] = sbb(P.limb[i], a[i], borrow) & nonzero;
    });
}

} // namespace zkphire::ff::kernels

#endif // ZKPHIRE_FF_MUL_IMPL_HPP
