/**
 * @file
 * Deterministic pseudo-random number generator for tests, witness
 * generation, and workload synthesis.
 *
 * SplitMix64 is tiny, fast, and fully deterministic across platforms, which
 * keeps every experiment in this repository reproducible from a seed. It is
 * NOT cryptographically secure; protocol challenges come from the SHA3
 * transcript (src/hash/transcript.hpp), never from this Rng.
 */
#ifndef ZKPHIRE_FF_RNG_HPP
#define ZKPHIRE_FF_RNG_HPP

#include <cstdint>

namespace zkphire::ff {

/** SplitMix64 deterministic PRNG. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state(seed) {}

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return double(next() >> 11) * (1.0 / 9007199254740992.0);
    }

  private:
    std::uint64_t state;
};

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_RNG_HPP
