/**
 * @file
 * BLS12-381 scalar field Fr — the 255-bit field of MLE entries, witnesses,
 * selectors, and SumCheck evaluations throughout zkPHIRE (the paper's
 * "255-bit MLE datatype").
 */
#ifndef ZKPHIRE_FF_FR_HPP
#define ZKPHIRE_FF_FR_HPP

#include "ff/field.hpp"

namespace zkphire::ff {

/** Field configuration for the BLS12-381 scalar field (group order r). */
struct FrCfg {
    static constexpr std::size_t numLimbs = 4;
    static constexpr const char *
    modulusHex()
    {
        return "0x73eda753299d7d483339d80809a1d805"
               "53bda402fffe5bfeffffffff00000001";
    }
    static constexpr const char *name() { return "Fr"; }
};

/** BLS12-381 scalar field element (255-bit, 4 limbs). */
using Fr = PrimeField<FrCfg>;

/** Size of one Fr element in modeled off-chip traffic (255b padded). */
inline constexpr std::size_t kFrBytes = 32;

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_FR_HPP
