/**
 * @file
 * Batched element-wise field primitives.
 *
 * The prover's hottest loops — GatePlan round evaluation over blocks of
 * table pairs, batched-affine slope resolution in the MSM bucket adder —
 * apply one field operation across a contiguous span of operands. Routing
 * them through these helpers instead of per-element operator calls keeps
 * the unrolled fixed-limb kernels (ff/mul_impl.hpp) in a tight loop the
 * compiler can software-pipeline, and gives -DZKPHIRE_NATIVE builds a
 * single body to autovectorize.
 *
 * Contracts (all spans are element counts, not bytes):
 *  - mulVec:    dst[i] = a[i] * b[i]. dst may alias a or b (element i is
 *               read before it is written).
 *  - sqrVec:    dst[i] = a[i]^2 via the dedicated squaring kernel; dst may
 *               alias a.
 *  - addVec:    acc[i] += v[i]. acc must not alias v.
 *  - addMulVec: acc[i] += c * v[i] (fused multiply-accumulate span). acc
 *               must not alias v.
 *  - sumVec:    returns v[0] + ... + v[n-1] in index order.
 *
 * All results are canonical field elements, so every helper is
 * bit-identical to the equivalent per-element loop.
 */
#ifndef ZKPHIRE_FF_VEC_OPS_HPP
#define ZKPHIRE_FF_VEC_OPS_HPP

#include <cstddef>
#include <span>

namespace zkphire::ff {

template <class F>
inline void
mulVec(F *dst, const F *a, const F *b, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i] * b[i];
}

template <class F>
inline void
mulVec(std::span<F> dst, std::span<const F> a, std::span<const F> b)
{
    mulVec(dst.data(), a.data(), b.data(), dst.size());
}

template <class F>
inline void
sqrVec(F *dst, const F *a, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = a[i].square();
}

template <class F>
inline void
addVec(F *acc, const F *v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] += v[i];
}

template <class F>
inline void
addMulVec(F *acc, const F &c, const F *v, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        acc[i] += c * v[i];
}

template <class F>
inline F
sumVec(const F *v, std::size_t n)
{
    F s = F::zero();
    for (std::size_t i = 0; i < n; ++i)
        s += v[i];
    return s;
}

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_VEC_OPS_HPP
