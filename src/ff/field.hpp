/**
 * @file
 * Generic Montgomery-form prime field.
 *
 * PrimeField<Cfg> implements arithmetic modulo the prime given by Cfg in
 * Montgomery representation. The two instantiations used by zkPHIRE are the
 * BLS12-381 scalar field Fr (255-bit, the MLE/witness datatype) and base
 * field Fq (381-bit, elliptic-curve coordinates), matching the datatypes the
 * paper's datapaths move (255b and 381b operands).
 *
 * The hot path dispatches to the fully unrolled no-carry kernels in
 * ff/mul_impl.hpp for the 4- and 6-limb widths (both moduli leave headroom
 * in their top limb); the generic CIOS loop remains for other widths and as
 * a runtime-selectable oracle (ZKPHIRE_FF_GENERIC=1 /
 * kernels::forceGenericKernels) that the kernel property suite and the
 * transcript bit-identity regression check against.
 *
 * All derived Montgomery constants (R, R^2, -p^{-1} mod 2^64) are computed
 * once at first use from the modulus alone, so there are no hand-copied magic
 * constants to get wrong; unit tests cross-check them against independently
 * computed values.
 */
#ifndef ZKPHIRE_FF_FIELD_HPP
#define ZKPHIRE_FF_FIELD_HPP

#include <cstdint>
#include <string>

#include "ff/bigint.hpp"
#include "ff/mul_asm_x86.hpp"
#include "ff/mul_impl.hpp"
#include "ff/rng.hpp"

namespace zkphire::ff {

/**
 * Prime field element in Montgomery form.
 *
 * @tparam Cfg Configuration type providing:
 *   - static constexpr std::size_t numLimbs
 *   - static const char *modulusHex()
 *   - static constexpr const char *name()
 */
template <class Cfg>
class PrimeField
{
  public:
    static constexpr std::size_t numLimbs = Cfg::numLimbs;
    using Big = BigInt<numLimbs>;

  private:
    Big v; // Montgomery form: v = canonical * R mod p

    /** The modulus as a compile-time constant: baked into the unrolled
     *  kernels as instruction immediates (no limb loads on the hot path). */
    static constexpr Big kMod = Big::fromHex(Cfg::modulusHex());
    /** -p^{-1} mod 2^64. */
    static constexpr u64 kInv = kernels::negInvMod64(kMod.limb[0]);
    /** Whether the unrolled no-carry kernels apply to this field: a fixed
     *  kernel exists for the limb count and the modulus leaves the top-limb
     *  headroom the no-carry variant requires. */
    static constexpr bool kFixedKernels =
        kernels::kHasFixedKernel<numLimbs> &&
        kernels::noCarryModulusOk(kMod.limb[numLimbs - 1]);

    struct Consts {
        Big mod;       // p
        Big modMinus2; // p - 2 (Fermat inversion exponent)
        Big r;         // R = 2^(64*numLimbs) mod p (Montgomery one)
        Big r2;        // R^2 mod p
        u64 inv;       // -p^{-1} mod 2^64
        std::size_t bits; // bit length of p
    };

    /** Derived Montgomery constants; constexpr-computed, so access carries
     *  no initialization guard and loads fold against the constant image. */
    static const Consts &
    consts()
    {
        static constexpr Consts c = makeConsts();
        return c;
    }

    static constexpr Consts
    makeConsts()
    {
        Consts c{};
        c.mod = kMod;
        c.bits = c.mod.bitLength();
        c.modMinus2 = c.mod;
        c.modMinus2.subInPlace(Big(2));
        c.inv = kInv;
        // R mod p by 64*numLimbs modular doublings of 1.
        Big acc(1);
        for (std::size_t i = 0; i < 64 * numLimbs; ++i)
            modDouble(acc, c.mod);
        c.r = acc;
        // R^2 mod p by another 64*numLimbs doublings.
        for (std::size_t i = 0; i < 64 * numLimbs; ++i)
            modDouble(acc, c.mod);
        c.r2 = acc;
        return c;
    }

    /**
     * True when this operation should take the unrolled fixed-limb kernel:
     * used under `if constexpr (kFixedKernels)`, so the only runtime cost
     * is the oracle-flag load (ZKPHIRE_FF_GENERIC / forceGenericKernels).
     */
    static bool
    useFixedKernels()
    {
        return !kernels::genericKernelsForced();
    }

    /** acc = 2*acc mod p, assuming acc < p and p has headroom in the top limb. */
    static constexpr void
    modDouble(Big &acc, const Big &p)
    {
        u64 carry = acc.shl1InPlace();
        // zkphire-lint: ct-exempt(constexpr-time setup helper on the public modulus)
        if (carry || acc >= p)
            acc.subInPlace(p);
    }

    /**
     * Montgomery multiplication: returns a*b*R^{-1} mod p. Dispatches to
     * the unrolled no-carry kernel for the fixed limb counts (4 = Fr,
     * 6 = Fq); the generic CIOS loop below stays as the oracle path and
     * covers every other width.
     */
    static Big
    montMul(const Big &a, const Big &b)
    {
        if constexpr (kFixedKernels) {
            if (useFixedKernels()) [[likely]] {
                Big out;
#if ZKPHIRE_HAVE_X86_ASM
                if (kernels::asmKernelsEnabled()) [[likely]] {
                    kernels::montMulAsmX86<Big, kMod, kInv>(
                        out.limb.data(), a.limb.data(), b.limb.data());
                    return out;
                }
#endif
                kernels::montMulNoCarry<Big, kMod, kInv>(
                    out.limb.data(), a.limb.data(), b.limb.data());
                return out;
            }
        }
        return montMulGeneric(a, b);
    }

    /** Montgomery squaring: a*a*R^{-1} mod p. The asm dual-carry-chain
     *  multiplier with both operands equal beats the dedicated unrolled
     *  C++ square on ADX hosts (see mul_asm_x86.hpp); the C++ square
     *  (~17-19% fewer limb muls than a general product) remains the
     *  portable fast path. */
    static Big
    montSquare(const Big &a)
    {
        if constexpr (kFixedKernels) {
            if (useFixedKernels()) [[likely]] {
                Big out;
#if ZKPHIRE_HAVE_X86_ASM
                if (kernels::asmKernelsEnabled()) [[likely]] {
                    kernels::montMulAsmX86<Big, kMod, kInv>(
                        out.limb.data(), a.limb.data(), a.limb.data());
                    return out;
                }
#endif
                kernels::montSquare<Big, kMod, kInv>(out.limb.data(),
                                                     a.limb.data());
                return out;
            }
        }
        return montMulGeneric(a, a);
    }

    /** Generic CIOS Montgomery multiplication (any limb count; the oracle
     *  the unrolled kernels are property-tested against). Never inlined:
     *  it is the cold branch of every dispatch site, and inlining its loop
     *  body next to the unrolled kernel costs the hot path registers. */
#if defined(__GNUC__)
    __attribute__((noinline))
#endif
    static Big
    montMulGeneric(const Big &a, const Big &b)
    {
        constexpr std::size_t N = numLimbs;
        const Consts &c = consts();
        u64 t[N + 2] = {0};
        for (std::size_t i = 0; i < N; ++i) {
            u64 carry = 0;
            for (std::size_t j = 0; j < N; ++j) {
                u128 s = (u128)t[j] + (u128)a.limb[j] * b.limb[i] + carry;
                t[j] = (u64)s;
                carry = (u64)(s >> 64);
            }
            u128 s = (u128)t[N] + carry;
            t[N] = (u64)s;
            t[N + 1] = (u64)(s >> 64);

            u64 m = t[0] * c.inv;
            u128 s2 = (u128)t[0] + (u128)m * c.mod.limb[0];
            carry = (u64)(s2 >> 64);
            for (std::size_t j = 1; j < N; ++j) {
                u128 s3 = (u128)t[j] + (u128)m * c.mod.limb[j] + carry;
                t[j - 1] = (u64)s3;
                carry = (u64)(s3 >> 64);
            }
            s2 = (u128)t[N] + carry;
            t[N - 1] = (u64)s2;
            t[N] = t[N + 1] + (u64)(s2 >> 64);
        }
        Big out;
        for (std::size_t j = 0; j < N; ++j)
            out.limb[j] = t[j];
        // For our moduli (p < 2^(64N-1)) the pre-reduction result is < 2p.
        // zkphire-lint: ct-exempt(generic CIOS oracle; the shipping fixed-limb kernels reduce branchlessly via condSubModulus)
        if (t[N] || out >= c.mod)
            out.subInPlace(c.mod);
        return out;
    }

  public:
    constexpr PrimeField() = default;

    static const Big &modulus() { return consts().mod; }
    static std::size_t modulusBits() { return consts().bits; }
    static constexpr const char *name() { return Cfg::name(); }

    static PrimeField
    zero()
    {
        return PrimeField();
    }

    static PrimeField
    one()
    {
        PrimeField f;
        f.v = consts().r;
        return f;
    }

    /** Lift a canonical (non-Montgomery) integer < p into the field. Runs
     *  the generic kernel: lifting is cold, and the generic CIOS tolerates
     *  slightly out-of-range inputs (deserialization of untrusted bytes)
     *  where the no-carry kernel's a, b < p precondition would not hold. */
    static PrimeField
    fromBig(const Big &canonical)
    {
        PrimeField f;
        f.v = montMulGeneric(canonical, consts().r2);
        return f;
    }

    static PrimeField
    fromU64(u64 x)
    {
        return fromBig(Big(x));
    }

    /** Signed small-integer lift (handles negative constants in gate exprs). */
    static PrimeField
    fromI64(std::int64_t x)
    {
        if (x >= 0)
            return fromU64(u64(x));
        return fromU64(u64(-x)).neg();
    }

    static PrimeField
    fromHex(std::string_view hex)
    {
        return fromBig(Big::fromHex(hex));
    }

    /** Convert back to canonical integer representation. */
    Big
    toBig() const
    {
        return montMul(v, Big(1));
    }

    std::string toHexString() const { return toBig().toHex(); }

    /** Raw Montgomery-form access for hashing/serialization of field state. */
    const Big &raw() const { return v; }

    /**
     * Sample uniformly at random by rejection from `bits`-bit integers.
     */
    static PrimeField
    random(Rng &rng)
    {
        const Consts &c = consts();
        Big b;
        do {
            for (std::size_t i = 0; i < numLimbs; ++i)
                b.limb[i] = rng.next();
            std::size_t top_bits = c.bits % 64 == 0 ? 64 : c.bits % 64;
            std::size_t top_limb = (c.bits - 1) / 64;
            if (top_bits < 64)
                b.limb[top_limb] &= (u64(1) << top_bits) - 1;
            for (std::size_t i = top_limb + 1; i < numLimbs; ++i)
                b.limb[i] = 0;
        } while (b >= c.mod); // zkphire-lint: ct-exempt(rejection sampling; only discarded randomness affects timing)
        return fromBig(b);
    }

    /**
     * Derive a field element from hash output (Fiat-Shamir challenges).
     * Interprets the first 8*numLimbs bytes little-endian and masks to
     * (modulusBits - 3) bits, guaranteeing a value < p with negligible bias
     * for protocol-simulation purposes.
     */
    static PrimeField
    fromHashBytes(const std::uint8_t *bytes)
    {
        const Consts &c = consts();
        Big b = Big::fromBytesLe(bytes);
        std::size_t keep = c.bits - 3;
        std::size_t top_limb = keep / 64;
        if (top_limb < numLimbs) {
            std::size_t rem = keep % 64;
            b.limb[top_limb] &= rem ? (u64(1) << rem) - 1 : 0;
            for (std::size_t i = top_limb + 1; i < numLimbs; ++i)
                b.limb[i] = 0;
        }
        return fromBig(b);
    }

    bool isZero() const { return v.isZero(); }
    bool isOne() const { return v == consts().r; }

    bool operator==(const PrimeField &o) const { return v == o.v; }
    bool operator!=(const PrimeField &o) const { return v != o.v; }

    PrimeField
    operator+(const PrimeField &o) const
    {
        PrimeField f = *this;
        f += o;
        return f;
    }

    PrimeField &
    operator+=(const PrimeField &o)
    {
        if constexpr (kFixedKernels) {
            if (useFixedKernels()) [[likely]] {
                kernels::addMod<Big, kMod>(v.limb.data(), v.limb.data(),
                                           o.v.limb.data());
                return *this;
            }
        }
        u64 carry = v.addInPlace(o.v);
        // zkphire-lint: ct-exempt(generic fallback; fixed-limb builds take the branchless kernel above)
        if (carry || v >= consts().mod)
            v.subInPlace(consts().mod);
        return *this;
    }

    PrimeField
    operator-(const PrimeField &o) const
    {
        PrimeField f = *this;
        f -= o;
        return f;
    }

    PrimeField &
    operator-=(const PrimeField &o)
    {
        if constexpr (kFixedKernels) {
            if (useFixedKernels()) [[likely]] {
                kernels::subMod<Big, kMod>(v.limb.data(), v.limb.data(),
                                           o.v.limb.data());
                return *this;
            }
        }
        u64 borrow = v.subInPlace(o.v);
        // zkphire-lint: ct-exempt(generic fallback; fixed-limb builds take the branchless kernel above)
        if (borrow)
            v.addInPlace(consts().mod);
        return *this;
    }

    PrimeField
    neg() const
    {
        if constexpr (kFixedKernels) {
            if (useFixedKernels()) [[likely]] {
                PrimeField f;
                kernels::negMod<Big, kMod>(f.v.limb.data(), v.limb.data());
                return f;
            }
        }
        if (isZero())
            return *this;
        PrimeField f;
        f.v = consts().mod;
        f.v.subInPlace(v);
        return f;
    }

    PrimeField operator-() const { return neg(); }

    PrimeField
    operator*(const PrimeField &o) const
    {
        PrimeField f;
        f.v = montMul(v, o.v);
        return f;
    }

    PrimeField &
    operator*=(const PrimeField &o)
    {
        v = montMul(v, o.v);
        return *this;
    }

    PrimeField
    square() const
    {
        PrimeField f;
        f.v = montSquare(v);
        return f;
    }

    PrimeField
    dbl() const
    {
        if constexpr (kFixedKernels) {
            if (useFixedKernels()) [[likely]] {
                PrimeField f;
                kernels::dblMod<Big, kMod>(f.v.limb.data(), v.limb.data());
                return f;
            }
        }
        PrimeField f = *this;
        u64 carry = f.v.shl1InPlace();
        // zkphire-lint: ct-exempt(generic fallback; fixed-limb builds take the branchless kernel above)
        if (carry || f.v >= consts().mod)
            f.v.subInPlace(consts().mod);
        return f;
    }

    /** Exponentiation by a canonical BigInt exponent (square-and-multiply). */
    // zkphire-lint: ct-exempt(every call site passes a public modulus-derived exponent: inversion, sqrt, subgroup checks)
    PrimeField
    pow(const Big &e) const
    {
        PrimeField acc = one();
        std::size_t nbits = e.bitLength();
        for (std::size_t i = nbits; i-- > 0;) {
            acc = acc.square();
            if (e.bit(i))
                acc *= *this;
        }
        return acc;
    }

    PrimeField pow(u64 e) const { return pow(Big(e)); }

    /**
     * Multiplicative inverse via Fermat's little theorem (a^(p-2)).
     * @pre *this != 0 (asserted).
     */
    PrimeField
    inverse() const
    {
        assert(!isZero() && "inverse of zero");
        return pow(consts().modMinus2);
    }

    /** Euler criterion: is this element a square? (zero counts as one). */
    bool
    isSquare() const
    {
        if (isZero())
            return true;
        // (p-1)/2 exponent.
        Big e = consts().mod;
        e.subInPlace(Big(1));
        e.shr1InPlace();
        return pow(e).isOne();
    }

    /**
     * Square root via Tonelli-Shanks (handles the BLS12-381 scalar field's
     * high 2-adicity). Returns false and leaves out untouched when the
     * element is a non-residue.
     */
    // zkphire-lint: ct-exempt(Tonelli-Shanks is inherently value-dependent; used on public curve points, never witness limbs)
    bool
    sqrt(PrimeField &out) const
    {
        if (isZero()) {
            out = zero();
            return true;
        }
        if (!isSquare())
            return false;
        // p - 1 = q * 2^s with q odd.
        Big q = consts().mod;
        q.subInPlace(Big(1));
        std::size_t s = 0;
        while (!q.bit(0)) {
            q.shr1InPlace();
            ++s;
        }
        // Find a non-residue z (deterministic scan; tiny, done per call).
        PrimeField z = fromU64(2);
        while (z.isSquare())
            z += one();
        PrimeField c = z.pow(q);
        PrimeField t = pow(q);
        // r = a^((q+1)/2).
        Big q_plus_1 = q;
        q_plus_1.addInPlace(Big(1));
        q_plus_1.shr1InPlace();
        PrimeField r = pow(q_plus_1);
        std::size_t m = s;
        while (!t.isOne()) {
            // Least i with t^(2^i) == 1.
            std::size_t i = 0;
            PrimeField t2 = t;
            while (!t2.isOne()) {
                t2 = t2.square();
                ++i;
            }
            PrimeField b = c;
            for (std::size_t j = 0; j + i + 1 < m; ++j)
                b = b.square();
            m = i;
            c = b.square();
            t *= c;
            r *= b;
        }
        out = r;
        return true;
    }

    /** Serialize the canonical value little-endian (8*numLimbs bytes). */
    void
    toBytesLe(std::uint8_t *out) const
    {
        toBig().toBytesLe(out);
    }
};

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_FIELD_HPP
