/**
 * @file
 * BLS12-381 base field Fq — the 381-bit coordinate field of G1 points used
 * by the MSM/commitment pipeline (the paper's "381-bit PADD datatype").
 */
#ifndef ZKPHIRE_FF_FQ_HPP
#define ZKPHIRE_FF_FQ_HPP

#include "ff/field.hpp"

namespace zkphire::ff {

/** Field configuration for the BLS12-381 base field (prime p, 381 bits). */
struct FqCfg {
    static constexpr std::size_t numLimbs = 6;
    static constexpr const char *
    modulusHex()
    {
        return "0x1a0111ea397fe69a4b1ba7b6434bacd7"
               "64774b84f38512bf6730d2a0f6b0f624"
               "1eabfffeb153ffffb9feffffffffaaab";
    }
    static constexpr const char *name() { return "Fq"; }
};

/** BLS12-381 base field element (381-bit, 6 limbs). */
using Fq = PrimeField<FqCfg>;

/** Size of one affine G1 point in modeled off-chip traffic (2 x 48 B). */
inline constexpr std::size_t kG1AffineBytes = 96;

} // namespace zkphire::ff

#endif // ZKPHIRE_FF_FQ_HPP
