/**
 * @file
 * Fiat-Shamir transcript.
 *
 * Implements the public-coin-to-non-interactive transformation used by every
 * SumCheck round in the paper ("hashing the round evaluations, e.g. with
 * SHA3"): the prover absorbs protocol messages (labels, field elements, curve
 * points) and squeezes verifier challenges deterministically. Prover and
 * verifier each run their own Transcript and must stay in sync, which the
 * protocol tests verify.
 */
#ifndef ZKPHIRE_HASH_TRANSCRIPT_HPP
#define ZKPHIRE_HASH_TRANSCRIPT_HPP

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "ff/fr.hpp"
#include "hash/keccak.hpp"

namespace zkphire::hash {

/**
 * SHA3-based Fiat-Shamir transcript with chained state.
 *
 * Each challenge is SHA3-256(state || pending messages); the digest becomes
 * the new state, so challenges bind the full message history.
 */
class Transcript
{
  public:
    /** @param label Domain separator for the protocol instance. */
    explicit Transcript(std::string_view label);

    /** Absorb a labeled byte string. */
    void appendBytes(std::string_view label, std::span<const std::uint8_t> data);

    /** Absorb a labeled field element (canonical little-endian bytes). */
    void appendFr(std::string_view label, const ff::Fr &x);

    /** Absorb a vector of field elements (e.g. one round's evaluations). */
    void appendFrVec(std::string_view label, std::span<const ff::Fr> xs);

    /** Absorb a 64-bit integer (problem sizes, counts). */
    void appendU64(std::string_view label, std::uint64_t x);

    /** Squeeze one Fr challenge. */
    ff::Fr challengeFr(std::string_view label);

    /** Squeeze n Fr challenges (e.g. the mu-dimensional ZeroCheck vector). */
    std::vector<ff::Fr> challengeFrVec(std::string_view label, std::size_t n);

    /** Number of sponge invocations so far (used by the SHA3 latency model). */
    std::uint64_t hashCount() const { return hashes; }

  private:
    void flushInto(Keccak256Sponge &sponge);

    Digest state{};
    std::vector<std::uint8_t> pending;
    std::uint64_t hashes = 0;
};

} // namespace zkphire::hash

#endif // ZKPHIRE_HASH_TRANSCRIPT_HPP
