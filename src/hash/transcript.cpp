#include "hash/transcript.hpp"

#include <cstring>

namespace zkphire::hash {

using ff::Fr;

Transcript::Transcript(std::string_view label)
{
    appendBytes("init", {reinterpret_cast<const std::uint8_t *>(label.data()),
                         label.size()});
}

void
Transcript::appendBytes(std::string_view label,
                        std::span<const std::uint8_t> data)
{
    // Length-prefix both label and payload so message boundaries are
    // unambiguous in the sponge input.
    auto append_u64 = [this](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            pending.push_back(std::uint8_t(v >> (8 * i)));
    };
    append_u64(label.size());
    pending.insert(pending.end(), label.begin(), label.end());
    append_u64(data.size());
    pending.insert(pending.end(), data.begin(), data.end());
}

void
Transcript::appendFr(std::string_view label, const Fr &x)
{
    std::uint8_t bytes[Fr::numLimbs * 8];
    x.toBytesLe(bytes);
    appendBytes(label, bytes);
}

void
Transcript::appendFrVec(std::string_view label, std::span<const Fr> xs)
{
    appendU64(label, xs.size());
    for (const Fr &x : xs)
        appendFr(label, x);
}

void
Transcript::appendU64(std::string_view label, std::uint64_t x)
{
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = std::uint8_t(x >> (8 * i));
    appendBytes(label, bytes);
}

void
Transcript::flushInto(Keccak256Sponge &sponge)
{
    sponge.absorb(state);
    sponge.absorb(pending);
    pending.clear();
}

Fr
Transcript::challengeFr(std::string_view label)
{
    appendBytes(label, {});
    Keccak256Sponge sponge(0x06);
    flushInto(sponge);
    state = sponge.finalize();
    ++hashes;
    return Fr::fromHashBytes(state.data());
}

std::vector<Fr>
Transcript::challengeFrVec(std::string_view label, std::size_t n)
{
    std::vector<Fr> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(challengeFr(label));
    return out;
}

} // namespace zkphire::hash
