/**
 * @file
 * Keccak-f[1600] sponge: SHA3-256 and Keccak-256.
 *
 * zkPHIRE's protocol layer uses SHA3 for Fiat-Shamir challenge generation
 * (the paper instantiates an OpenCores SHA3 IP block on-chip); this is the
 * functional counterpart. Keccak-256 (the pre-NIST padding variant used by
 * Ethereum) is also provided since several ZKP codebases use it and it gives
 * us well-known cross-check vectors.
 */
#ifndef ZKPHIRE_HASH_KECCAK_HPP
#define ZKPHIRE_HASH_KECCAK_HPP

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace zkphire::hash {

/** 256-bit digest. */
using Digest = std::array<std::uint8_t, 32>;

/**
 * Incremental Keccak sponge with rate 1088 bits (capacity 512), i.e. the
 * parameterization shared by SHA3-256 and Keccak-256.
 */
class Keccak256Sponge
{
  public:
    /** @param domain_pad Padding domain byte: 0x06 for SHA3, 0x01 for Keccak. */
    explicit Keccak256Sponge(std::uint8_t domain_pad) : padByte(domain_pad) {}

    /** Absorb arbitrary bytes. */
    void absorb(std::span<const std::uint8_t> data);

    /** Finalize and produce the 32-byte digest. Sponge must not be reused. */
    Digest finalize();

  private:
    static constexpr std::size_t rateBytes = 136;

    void permuteIfFull();

    std::array<std::uint64_t, 25> state{};
    std::array<std::uint8_t, rateBytes> buffer{};
    std::size_t bufferLen = 0;
    std::uint8_t padByte;
    bool finalized = false;
};

/** One-shot SHA3-256 (FIPS 202 padding 0x06). */
Digest sha3_256(std::span<const std::uint8_t> data);

/** One-shot Keccak-256 (legacy padding 0x01, as used by Ethereum). */
Digest keccak256(std::span<const std::uint8_t> data);

/** Hex rendering of a digest (lowercase, no prefix) for tests/logging. */
std::string toHex(const Digest &d);

/** Keccak-f[1600] permutation, exposed for unit testing. */
void keccakF1600(std::array<std::uint64_t, 25> &state);

} // namespace zkphire::hash

#endif // ZKPHIRE_HASH_KECCAK_HPP
