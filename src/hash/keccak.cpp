#include "hash/keccak.hpp"

#include <cassert>
#include <cstring>

namespace zkphire::hash {

namespace {

constexpr std::uint64_t kRoundConstants[24] = {
    0x0000000000000001ull, 0x0000000000008082ull, 0x800000000000808aull,
    0x8000000080008000ull, 0x000000000000808bull, 0x0000000080000001ull,
    0x8000000080008081ull, 0x8000000000008009ull, 0x000000000000008aull,
    0x0000000000000088ull, 0x0000000080008009ull, 0x000000008000000aull,
    0x000000008000808bull, 0x800000000000008bull, 0x8000000000008089ull,
    0x8000000000008003ull, 0x8000000000008002ull, 0x8000000000000080ull,
    0x000000000000800aull, 0x800000008000000aull, 0x8000000080008081ull,
    0x8000000000008080ull, 0x0000000080000001ull, 0x8000000080008008ull,
};

constexpr int kRotc[24] = {1,  3,  6,  10, 15, 21, 28, 36, 45, 55, 2,  14,
                           27, 41, 56, 8,  25, 43, 62, 18, 39, 61, 20, 44};

constexpr int kPiln[24] = {10, 7,  11, 17, 18, 3, 5,  16, 8,  21, 24, 4,
                           15, 23, 19, 13, 12, 2, 20, 14, 22, 9,  6,  1};

inline std::uint64_t
rotl64(std::uint64_t x, int n)
{
    return (x << n) | (x >> (64 - n));
}

} // namespace

void
keccakF1600(std::array<std::uint64_t, 25> &st)
{
    for (int round = 0; round < 24; ++round) {
        // Theta
        std::uint64_t bc[5];
        for (int i = 0; i < 5; ++i)
            bc[i] = st[i] ^ st[i + 5] ^ st[i + 10] ^ st[i + 15] ^ st[i + 20];
        for (int i = 0; i < 5; ++i) {
            std::uint64_t t = bc[(i + 4) % 5] ^ rotl64(bc[(i + 1) % 5], 1);
            for (int j = 0; j < 25; j += 5)
                st[j + i] ^= t;
        }
        // Rho + Pi
        std::uint64_t t = st[1];
        for (int i = 0; i < 24; ++i) {
            int j = kPiln[i];
            std::uint64_t tmp = st[j];
            st[j] = rotl64(t, kRotc[i]);
            t = tmp;
        }
        // Chi
        for (int j = 0; j < 25; j += 5) {
            std::uint64_t row[5];
            for (int i = 0; i < 5; ++i)
                row[i] = st[j + i];
            for (int i = 0; i < 5; ++i)
                st[j + i] = row[i] ^ (~row[(i + 1) % 5] & row[(i + 2) % 5]);
        }
        // Iota
        st[0] ^= kRoundConstants[round];
    }
}

void
Keccak256Sponge::permuteIfFull()
{
    if (bufferLen < rateBytes)
        return;
    for (std::size_t i = 0; i < rateBytes / 8; ++i) {
        std::uint64_t lane;
        std::memcpy(&lane, buffer.data() + 8 * i, 8);
        state[i] ^= lane;
    }
    keccakF1600(state);
    bufferLen = 0;
}

void
Keccak256Sponge::absorb(std::span<const std::uint8_t> data)
{
    assert(!finalized && "absorb after finalize");
    for (std::uint8_t byte : data) {
        buffer[bufferLen++] = byte;
        permuteIfFull();
    }
}

Digest
Keccak256Sponge::finalize()
{
    assert(!finalized && "double finalize");
    finalized = true;
    // Pad: domain byte then zeros then 0x80 in the final rate position.
    std::memset(buffer.data() + bufferLen, 0, rateBytes - bufferLen);
    buffer[bufferLen] = padByte;
    buffer[rateBytes - 1] |= 0x80;
    bufferLen = rateBytes;
    permuteIfFull();

    Digest out;
    std::memcpy(out.data(), state.data(), out.size());
    return out;
}

Digest
sha3_256(std::span<const std::uint8_t> data)
{
    Keccak256Sponge sponge(0x06);
    sponge.absorb(data);
    return sponge.finalize();
}

Digest
keccak256(std::span<const std::uint8_t> data)
{
    Keccak256Sponge sponge(0x01);
    sponge.absorb(data);
    return sponge.finalize();
}

std::string
toHex(const Digest &d)
{
    static const char *digits = "0123456789abcdef";
    std::string s;
    s.reserve(64);
    for (std::uint8_t b : d) {
        s += digits[b >> 4];
        s += digits[b & 0xf];
    }
    return s;
}

} // namespace zkphire::hash
