/**
 * @file
 * The programmable SumCheck unit's scheduler (paper §III-C/D/E, Fig. 2).
 *
 * A composite polynomial is decomposed term-by-term into schedule nodes.
 * Each node occupies the PE's Extension Engines with at most E factor
 * occurrences; terms wider than E continue across nodes through the Tmp MLE
 * buffer, which occupies one input slot of every continuation node (so the
 * first node covers E occurrences and each later node E-1 — reproducing the
 * runtime staircase of Fig. 8). The accumulation-chain schedule needs one
 * Tmp buffer regardless of degree; the balanced-tree alternative (left side
 * of Fig. 2) is also implemented for the ablation study, with its
 * logarithmically growing buffer demand.
 *
 * Extension-to-Product-Lane mapping (Fig. 3): a term needing K extension
 * evaluations on P lanes runs at initiation interval II = ceil(K / P).
 */
#ifndef ZKPHIRE_SIM_SUMCHECK_SCHED_HPP
#define ZKPHIRE_SIM_SUMCHECK_SCHED_HPP

#include <cstdint>
#include <vector>

#include "gates/gate_library.hpp"
#include "poly/gate_expr.hpp"
#include "poly/gate_plan.hpp"
#include "poly/mle.hpp"

namespace zkphire::sim {

/** Per-slot sparsity statistics used by the traffic model. */
struct SlotTraffic {
    double fracZero = 0.0;
    double fracOne = 0.0;
};

/**
 * Structural description of a composite polynomial — all the hardware
 * model needs (no field data).
 */
struct PolyShape {
    unsigned numSlots = 0;
    /** Each term as its factor slot list (repeats = powers). */
    std::vector<std::vector<std::uint32_t>> terms;
    /** Storage class per slot (drives sparse encodings). */
    std::vector<gates::SlotRole> roles;

    /** Extract the shape from a gate-library entry. */
    static PolyShape fromGate(const gates::Gate &gate);

    /** Extract from a raw expression with explicit roles. */
    static PolyShape fromExpr(const poly::GateExpr &expr,
                              std::vector<gates::SlotRole> roles);

    std::size_t degree() const;
    std::size_t termDegree(std::size_t t) const { return terms[t].size(); }
    std::size_t numTerms() const { return terms.size(); }
    /** Distinct slots referenced anywhere. */
    std::vector<std::uint32_t> uniqueSlots() const;

    /** Effective bytes per table element for a slot (sparse encodings). */
    double encodedBytes(std::uint32_t slot) const;

    /** A copy with one slot removed from every term and the slot list. */
    PolyShape withoutSlot(std::uint32_t slot) const;
};

/** One schedule step: which factor occurrences one PE pass handles. */
struct ScheduleNode {
    std::uint32_t term = 0;
    /** Factor occurrences processed (slot ids, repeats possible). */
    std::vector<std::uint32_t> occurrences;
    bool usesTmpIn = false;   ///< Consumes the accumulated partial product.
    bool writesTmpOut = false;///< More nodes of this term follow.
    bool treeCombine = false; ///< Balanced-tree internal combine step.
    /**
     * Number of Tmp-MLE inputs this node reads. The chain schedules of
     * buildSchedule() read at most one (usesTmpIn); plan-derived schedules
     * (buildScheduleFromPlan) can read several — e.g. squaring a shared
     * power reads the same Tmp buffer twice. 0 with usesTmpIn set means
     * "exactly one" (legacy chain encoding).
     */
    std::uint32_t tmpIn = 0;
    /** Slots whose tiles are first fetched for this node (prefetch set). */
    std::vector<std::uint32_t> freshFetches;

    /** Effective Tmp input count across both encodings. */
    std::uint32_t
    tmpInputs() const
    {
        return tmpIn > 0 ? tmpIn : (usesTmpIn ? 1u : 0u);
    }
};

enum class ScheduleKind {
    Accumulation, ///< zkPHIRE's chain schedule (Fig. 2 right).
    BalancedTree, ///< Binary-tree schedule (Fig. 2 left), for ablation.
};

/** A complete schedule for one polynomial on one (E, P) configuration. */
struct Schedule {
    std::vector<ScheduleNode> nodes;
    unsigned numEEs = 0;
    unsigned numPLs = 0;
    ScheduleKind kind = ScheduleKind::Accumulation;
    /** Peak number of live temporary MLE buffers. */
    std::size_t tmpBuffers = 0;

    /** Initiation interval for a term needing K extension evaluations. */
    static unsigned
    initiationInterval(std::size_t k, unsigned num_pls)
    {
        if (num_pls == 0)
            return unsigned(k);
        return unsigned((k + num_pls - 1) / num_pls);
    }
};

/**
 * Number of schedule nodes a term with m factor occurrences needs on E
 * extension engines: 1 if m <= E, else 1 + ceil((m - E) / (E - 1))
 * (the Fig. 8 staircase).
 */
std::size_t nodeCountForTerm(std::size_t m, unsigned num_ees);

/** Build the schedule for a polynomial shape. */
Schedule buildSchedule(const PolyShape &shape, unsigned num_ees,
                       unsigned num_pls,
                       ScheduleKind kind = ScheduleKind::Accumulation);

/**
 * Product-lane modular multiplications the cost model charges per
 * evaluation point: every node joins its inputs (slot occurrences + Tmp
 * reads + tree-combine operands) with inputs-1 multiplies. For a term-chain
 * schedule this telescopes to Sum_t (degree_t - 1) — the naive evaluator's
 * count; for a plan-derived schedule it equals the plan's op count.
 */
std::size_t scheduleMulsPerPoint(const Schedule &sched);

/**
 * Derive a schedule from a compiled GatePlan — the same decomposition that
 * drives the CPU prover's round evaluation. Every plan multiplication
 * becomes a factor join; maximal left-fold chains are packed into nodes of
 * at most num_ees inputs, and values that cross node boundaries (shared
 * powers, shared sub-products, term chains wider than the EE array) travel
 * through Tmp MLE buffers (writesTmpOut / tmpIn), exactly the scheduler's
 * writeTmp/useTmp mechanism. By construction
 *   scheduleMulsPerPoint(buildScheduleFromPlan(p, E, P))
 *     == p.productMulsPerPoint(),
 * which crossCheckPlanSchedule() asserts — one decomposition feeds both the
 * functional prover and the hardware cost model.
 */
Schedule buildScheduleFromPlan(const poly::GatePlan &plan, unsigned num_ees,
                               unsigned num_pls);

/**
 * Cross-check API: does the hardware cost model charge exactly the
 * multiplications the compiled plan executes per evaluation point?
 */
inline bool
crossCheckPlanSchedule(const poly::GatePlan &plan, const Schedule &sched)
{
    return plan.productMulsPerPoint() == scheduleMulsPerPoint(sched);
}

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_SUMCHECK_SCHED_HPP
