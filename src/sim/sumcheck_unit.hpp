/**
 * @file
 * Cycle-level performance model of the programmable SumCheck unit
 * (paper §III, Fig. 3).
 *
 * Per SumCheck round, the model walks the scheduler's node list and charges
 *   - compute: ceil(pairs / numPEs) * II(K_term, P) cycles per node, where
 *     K is the term's extension count and II the lane initiation interval,
 *     plus fused MLE-update throughput, per-tile fill/drain, and the SHA3
 *     challenge latency per round;
 *   - memory: sparsity-encoded reads of every referenced tile (round 1 and
 *     the round-2 re-read of the originals), dense reads of updated tables
 *     thereafter, and FIFO writebacks of halved tables until the working
 *     set fits in the local scratchpads (residency cutover);
 * and takes the max (compute/memory overlap), exactly the methodology the
 * paper describes in §V. Modmul utilization is tracked for Fig. 6.
 *
 * Baseline variants: fuseUpdates=false models zkSpeed (separate update
 * pass); globalScratchpad=true models zkSpeed's resident-MLE organization
 * (one initial load, no per-round off-chip traffic).
 */
#ifndef ZKPHIRE_SIM_SUMCHECK_UNIT_HPP
#define ZKPHIRE_SIM_SUMCHECK_UNIT_HPP

#include "sim/sumcheck_sched.hpp"
#include "sim/tech.hpp"

namespace zkphire::sim {

/** Hardware configuration of the SumCheck unit (DSE knobs of Table III). */
struct SumcheckUnitConfig {
    unsigned numPEs = 16;
    unsigned numEEs = 7;       ///< Extension engines per PE.
    unsigned numPLs = 5;       ///< Product lanes per PE.
    std::size_t bankWords = 1 << 12; ///< Words per MLE scratchpad buffer.
    unsigned numBuffers = 16;  ///< MLE scratchpad buffers (paper §III-B).
    bool fixedPrime = true;
    bool fuseUpdates = true;       ///< Pipeline updates into extensions.
    bool globalScratchpad = false; ///< zkSpeed-style resident MLEs.
    /**
     * zkSpeed-style fixed-function datapath: the whole composite
     * polynomial is unrolled in hardware, sustaining one pair per PE per
     * cycle regardless of term count (at the cost of a wide, single-
     * purpose multiplier array).
     */
    bool fullyUnrolled = false;
    /**
     * Multiplier count per PE for fully-unrolled datapaths (a specialized
     * pipeline shares extensions across terms and instantiates exactly the
     * product/update multipliers the fixed polynomial needs). 0 = use the
     * programmable-unit formula.
     */
    unsigned unrolledMulsPerPe = 0;
    ScheduleKind scheduleKind = ScheduleKind::Accumulation;
    /**
     * Product-lane throughput derating when the Multifunction Forest that
     * physically hosts the PL multipliers is undersized for this unit's
     * demand (chip model sets this to forestMuls/plDemand, capped at 1).
     */
    double plCapacityScale = 1.0;

    /** Modular multipliers per PE serving product lanes (tree-shaped). */
    unsigned plMulsPerPe() const { return numPLs * (numEEs - 1); }
    /** Update-unit multipliers per PE. */
    unsigned updateMulsPerPe() const { return numEEs; }

    /** Local scratchpad capacity in bytes. */
    double scratchBytes() const
    {
        return double(numBuffers) * double(bankWords) * Tech::frBytes;
    }
    double sramMB() const { return scratchBytes() / (1024.0 * 1024.0); }

    /**
     * Standalone unit area (compute + local SRAM). In the full zkPHIRE
     * chip the PL multipliers physically live in the Multifunction Forest
     * (paper §IV-B2); pass include_pl_muls=false there to avoid double
     * counting.
     */
    double areaMm2(const Tech &tech, bool include_pl_muls = true) const;

    /** Compute-only area (no local SRAM), for iso-area baselines. */
    double computeAreaMm2(const Tech &tech,
                          bool include_pl_muls = true) const;
};

/** Workload: polynomial shape + problem size + ZeroCheck fusion. */
struct SumcheckWorkload {
    PolyShape shape;
    unsigned numVars = 20;
    /**
     * If >= 0, this slot is the f_r masking polynomial and the unit builds
     * it on the fly in round 1 (one EE + one PL reserved, no fetch), per
     * paper §III-F. Rounds >= 2 treat it as a normal dense MLE.
     */
    int fusedFrSlot = -1;
};

/** Per-round timing trace entry. */
struct RoundTrace {
    unsigned round = 0;        ///< 1-based SumCheck round.
    double computeCycles = 0;  ///< Datapath-bound cycles this round.
    double memCycles = 0;      ///< Bandwidth-bound cycles this round.
    double readBytes = 0;
    double writeBytes = 0;
    bool resident = false;     ///< Tables fully on-chip this round.
    bool memoryBound() const { return memCycles > computeCycles; }
};

/** Simulation outcome. */
struct SumcheckRunResult {
    double cycles = 0;
    double computeCycles = 0;  ///< Sum over rounds of the compute bound.
    double memCycles = 0;      ///< Sum over rounds of the memory bound.
    double trafficBytes = 0;   ///< Total off-chip traffic.
    double usefulMulOps = 0;   ///< Modular multiplications performed.
    double utilization = 0;    ///< usefulMulOps / (muls * cycles).
    unsigned residentFromRound = 0; ///< First round fully on-chip (1-based).
    std::vector<RoundTrace> trace;  ///< One entry per round.

    double timeMs(const Tech &tech = defaultTech()) const
    {
        return cycles / (tech.clockGhz * 1e6);
    }
};

/** Run the cycle model. Bandwidth in GB/s (== bytes per ns at 1 GHz). */
SumcheckRunResult simulateSumcheck(const SumcheckUnitConfig &cfg,
                                   const SumcheckWorkload &wl,
                                   double bandwidth_gbs,
                                   const Tech &tech = defaultTech());

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_SUMCHECK_UNIT_HPP
