/**
 * @file
 * The paper's evaluation workloads (Tables VI-VIII, Fig. 13): published
 * gate counts for ZCash, Auction, Rescue hashes, Zexe, transaction rollups,
 * and zkEVM, in both Vanilla and Jellyfish arithmetizations, together with
 * the paper's reported 32-thread CPU baselines (used as calibration anchors
 * and printed alongside our model's predictions).
 */
#ifndef ZKPHIRE_SIM_WORKLOADS_HPP
#define ZKPHIRE_SIM_WORKLOADS_HPP

#include <string>
#include <vector>

namespace zkphire::sim {

/** One evaluation workload. */
struct Workload {
    std::string name;
    int muVanilla = -1;   ///< log2 Vanilla gate count (-1: not available).
    int muJellyfish = -1; ///< log2 Jellyfish gate count.
    double cpuMsVanilla = -1;   ///< Paper-reported 32-thread CPU (ms).
    double cpuMsJellyfish = -1; ///< Paper-reported 32-thread CPU (ms).
};

/** Table VI/VII workloads in paper order. */
std::vector<Workload> paperWorkloads();

/** Fig. 13 workload list (includes the scaled ZCash/Zexe variants). */
std::vector<Workload> fig13Workloads();

/** Lookup by name (asserts on miss). */
const Workload &workloadByName(const std::string &name);

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_WORKLOADS_HPP
