/**
 * @file
 * Technology model: unit areas, power densities, memory PHY parameters, and
 * scaling factors.
 *
 * Every constant the paper states is used verbatim (§V, §VI-B): Montgomery
 * multiplier areas from Catapult HLS + Design Compiler at TSMC 22nm
 * (255b 0.478/0.264 mm^2 arbitrary/fixed prime, 381b 1.13/0.582 mm^2),
 * modular inverse units at 0.027 mm^2, 3.6x area / 3.3x power scaling to
 * 7nm, a 1 GHz clock, and 14.9 / 29.6 mm^2 HBM2/HBM3 PHYs. Per-module power
 * densities and SRAM density are calibrated once against the paper's
 * Table V exemplar and documented in EXPERIMENTS.md.
 */
#ifndef ZKPHIRE_SIM_TECH_HPP
#define ZKPHIRE_SIM_TECH_HPP

#include <cstddef>

namespace zkphire::sim {

/** Technology constants (areas mm^2, 7nm unless noted). */
struct Tech {
    // --- 22nm synthesis results (paper §V) ---
    double modmul255Arb22nm = 0.478;
    double modmul255Fixed22nm = 0.264;
    double modmul381Arb22nm = 1.13;
    double modmul381Fixed22nm = 0.582;
    double modinv22nm = 0.027;

    // --- scaling (paper §V, after [11]-[13], [65], [66]) ---
    double areaScale22To7 = 3.6;
    double powerScale22To7 = 3.3;
    double clockGhz = 1.0;

    // --- derived 7nm areas ---
    double modmul255(bool fixed_prime) const
    {
        return (fixed_prime ? modmul255Fixed22nm : modmul255Arb22nm) /
               areaScale22To7;
    }
    double modmul381(bool fixed_prime) const
    {
        return (fixed_prime ? modmul381Fixed22nm : modmul381Arb22nm) /
               areaScale22To7;
    }
    double modinv() const { return modinv22nm / areaScale22To7; }

    // --- SRAM (Synopsys 22nm memory compiler, scaled; calibrated to the
    //     Table V exemplar: ~67 MB of buffers in 27.55 mm^2) ---
    double sramMm2PerMB = 0.41;

    // --- off-chip memory PHYs (JESD238A-class, paper §VI-B1) ---
    double hbm2PhyMm2 = 14.9;
    double hbm3PhyMm2 = 29.6;
    double hbm2PhyGBs = 512.0;  ///< Bandwidth served per HBM2E PHY.
    double hbm3PhyGBs = 1024.0; ///< Bandwidth served per HBM3 PHY.

    /** PHY area needed to serve a given off-chip bandwidth (GB/s). */
    double
    phyAreaMm2(double bandwidth_gbs) const
    {
        if (bandwidth_gbs <= 0)
            return 0.0;
        if (bandwidth_gbs <= 2 * hbm2PhyGBs) {
            double n = bandwidth_gbs / hbm2PhyGBs;
            double phys = n <= 1 ? 1 : (n <= 2 ? 2 : n);
            return phys * hbm2PhyMm2;
        }
        double phys = bandwidth_gbs / hbm3PhyGBs;
        double whole = double(std::size_t(phys));
        if (whole < phys)
            whole += 1.0;
        return whole * hbm3PhyMm2;
    }

    // --- average power densities (W/mm^2), calibrated to Table V ---
    double msmPowerDensity = 0.558;
    double forestPowerDensity = 0.845;
    double sumcheckPowerDensity = 0.867;
    double otherPowerDensity = 0.58;
    double sramPowerDensity = 0.129;
    double interconnectPowerDensity = 0.561;
    double hbmPhyPowerDensity = 1.074;

    // --- pipeline characteristics (HLS-extracted in the paper; modeled) ---
    unsigned modmulLatency = 10;   ///< Cycles, fully pipelined (II = 1).
    unsigned paddLatency = 60;     ///< Point-add pipeline depth.
    unsigned sha3Latency = 26;     ///< Keccak-f rounds + I/O, per squeeze.
    unsigned tileFillOverhead = 32;///< Scratchpad tile fill/drain cycles.
    unsigned invLatency = 532;     ///< Modular inverse latency (266 units
                                   ///< round-robin at one issue / 2 cycles).

    /** Modular multipliers in one fully-pipelined Jacobian mixed PADD. */
    unsigned paddModmuls = 20;

    /** Bytes of one MLE element / affine G1 point in off-chip traffic. */
    static constexpr double frBytes = 32.0;
    static constexpr double pointBytes = 96.0;
};

/** The default technology instance shared by the models. */
const Tech &defaultTech();

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_TECH_HPP
