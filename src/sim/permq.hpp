/**
 * @file
 * Permutation Quotient Generator model (paper §IV-B5, Fig. 5).
 *
 * A pipelined unit producing the Numerator, Denominator, and Fraction MLEs
 * simultaneously, one element per cycle per PE after warmup. The fraction
 * requires one modular inversion per element; zkPHIRE batches inversions
 * with batch size 2 using two shared multipliers and enough round-robin
 * inverse units (266) to initiate one inversion every two cycles without
 * backpressure. The zkSpeed alternative (batch 64, dedicated per-inverse
 * multipliers) is modeled for the 4.2x-area ablation.
 */
#ifndef ZKPHIRE_SIM_PERMQ_HPP
#define ZKPHIRE_SIM_PERMQ_HPP

#include "sim/tech.hpp"

namespace zkphire::sim {

/** Inversion strategy for the phi pipeline. */
enum class InversionScheme {
    ZkPhireBatch2,  ///< Batch 2, two shared muls, 266 round-robin inverters.
    ZkSpeedBatch64, ///< Batch 64, dedicated multiplier per inverse unit.
};

/** Configuration (FracMLE PEs is a Table III DSE knob). */
struct PermQConfig {
    unsigned numPEs = 4;       ///< FracMLE PEs (one witness column each).
    bool fixedPrime = true;
    InversionScheme scheme = InversionScheme::ZkPhireBatch2;

    unsigned
    numInverseUnits() const
    {
        return scheme == InversionScheme::ZkPhireBatch2 ? 266u : 64u;
    }

    double areaMm2(const Tech &tech) const;
};

/** Outcome of generating N/D/phi for k witness columns of size 2^mu. */
struct PermQRunResult {
    double cycles = 0;
    double trafficBytes = 0;

    double timeMs(const Tech &tech = defaultTech()) const
    {
        return cycles / (tech.clockGhz * 1e6);
    }
};

/**
 * Simulate N/D/phi generation for num_witness columns over 2^mu rows.
 * Columns beyond numPEs are handled by cyclic PE reuse (paper §IV-B5).
 */
PermQRunResult simulatePermQ(const PermQConfig &cfg, unsigned mu,
                             unsigned num_witness, double bandwidth_gbs,
                             const Tech &tech = defaultTech());

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_PERMQ_HPP
