#include "sim/workloads.hpp"

#include <cassert>

namespace zkphire::sim {

std::vector<Workload>
paperWorkloads()
{
    // Gate counts and CPU baselines from Tables VI and VII.
    return {
        {"ZCash", 17, 15, 1429, 701},
        {"Auction", 20, -1, 8619, -1},
        {"2^12 Rescue Hashes", 21, 20, 18637, 11532},
        {"Zexe Recursive Ckt", 22, 17, 37469, 1951},
        {"Rollup of 10 Pvt Tx", 23, 18, 74052, 3339},
        {"Rollup of 25 Pvt Tx", 24, 19, 145500, 6161},
        {"Rollup of 50 Pvt Tx", 25, 20, 325048, 11533},
        {"Rollup of 100 Pvt Tx", 26, 21, 640987, 24071},
        {"Rollup of 1600 Pvt Tx", 30, 25, -1, 355406},
        // zkEVM: no Vanilla estimate exists (paper assumes an 8x reduction
        // for its hypothetical trend); CPU = 25 min for the Jellyfish form.
        {"zkEVM", 30, 27, -1, 1.5e6},
    };
}

std::vector<Workload>
fig13Workloads()
{
    // Fig. 13 additionally scales ZCash and Zexe up to 2^24 / 2^25 Vanilla
    // gates (as done in prior work [55]), preserving each circuit's
    // Vanilla-to-Jellyfish reduction factor (4x and 32x respectively).
    return {
        {"ZCash", 17, 15, 1429, 701},
        {"Rescue Hash", 21, 20, 18637, 11532},
        {"Zexe", 22, 17, 37469, 1951},
        {"ZCash Scaled", 24, 22, -1, -1},
        {"Zexe Scaled", 25, 20, -1, -1},
        {"Rollup 1600", 30, 25, -1, 355406},
        {"zkEVM", 30, 27, -1, 1.5e6},
    };
}

const Workload &
workloadByName(const std::string &name)
{
    static const std::vector<Workload> all = [] {
        auto v = paperWorkloads();
        auto f = fig13Workloads();
        v.insert(v.end(), f.begin(), f.end());
        return v;
    }();
    for (const Workload &w : all)
        if (w.name == name)
            return w;
    assert(false && "unknown workload");
    static Workload dummy;
    return dummy;
}

} // namespace zkphire::sim
