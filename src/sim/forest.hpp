/**
 * @file
 * Multifunction Forest model (paper §IV-B2).
 *
 * A pool of binary-tree multiplier units (8 modmuls each, after the MTU of
 * zkSpeed) shared between three roles: Build-MLE (eq-table construction),
 * product-MLE construction (the grand-product tree), and batched MLE
 * evaluations. In zkPHIRE the same trees also serve as the SumCheck unit's
 * product lanes, which is where the paper's 15% multiplier saving at equal
 * latency comes from; the chip model enforces that sharing constraint.
 */
#ifndef ZKPHIRE_SIM_FOREST_HPP
#define ZKPHIRE_SIM_FOREST_HPP

#include "sim/tech.hpp"

namespace zkphire::sim {

/** Forest configuration. */
struct ForestConfig {
    unsigned numTrees = 80;
    unsigned mulsPerTree = 8;
    bool fixedPrime = true;

    double mulsPerCycle() const
    {
        return double(numTrees) * double(mulsPerTree);
    }

    double
    areaMm2(const Tech &tech) const
    {
        return mulsPerCycle() * tech.modmul255(fixedPrime);
    }
};

/** A forest task described by its multiply count and streamed bytes. */
struct ForestTask {
    double mulOps = 0;
    double trafficBytes = 0;
    double treeDepth = 0; ///< Log-depth tail for traversal-dependent ops.
};

/** Build-MLE (eq table) over mu variables: N muls, N words written. */
ForestTask buildMleTask(unsigned mu);

/** Product-MLE construction over leaves of size 2^mu (reads phi, writes v). */
ForestTask productMleTask(unsigned mu);

/** Evaluate num_polys committed MLEs of size 2^mu at one point each. */
ForestTask batchEvalTask(unsigned mu, unsigned num_polys);

/** Run a task on the forest at the given bandwidth; returns cycles. */
double simulateForest(const ForestConfig &cfg, const ForestTask &task,
                      double bandwidth_gbs, const Tech &tech = defaultTech());

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_FOREST_HPP
