#include "sim/unit_executor.hpp"

#include <cassert>
#include <deque>

namespace zkphire::sim {

using poly::GateExpr;
using poly::SlotId;
using poly::Term;
using poly::VirtualPoly;

namespace {

/** Per-term accumulation register file: d_t + 1 running sums. */
struct TermRegs {
    std::vector<Fr> sums; // index = evaluation point 0..d_t
};

/**
 * Extend a term's accumulated univariate (values at 0..d_t) to point k.
 * Exact because the per-term contribution has degree d_t.
 */
Fr
extendTermSum(const std::vector<Fr> &vals, std::size_t k)
{
    if (k < vals.size())
        return vals[k];
    return sumcheck::evalUnivariate(vals, Fr::fromU64(k));
}

} // namespace

sumcheck::ProverOutput
executeOnUnit(VirtualPoly poly, unsigned num_ees, unsigned num_pls,
              hash::Transcript &tr, ScheduleKind kind, ExecutorStats *stats)
{
    const GateExpr &expr = poly.expr();
    const unsigned mu = poly.numVars();
    const std::size_t degree = expr.degree();
    assert(mu > 0 && degree > 0);

    // Compile once: the schedule is round-invariant (paper §III-E).
    std::vector<gates::SlotRole> roles(expr.numSlots(),
                                       gates::SlotRole::Dense);
    PolyShape shape = PolyShape::fromExpr(expr, roles);
    Schedule sched = buildSchedule(shape, num_ees, num_pls, kind);

    // PolyShape drops factor-free (constant) terms; map schedule term ids
    // back to expression term ids and remember the constants.
    std::vector<std::size_t> shape_to_expr;
    std::vector<const Term *> const_terms;
    for (std::size_t t = 0; t < expr.terms().size(); ++t) {
        if (expr.terms()[t].factors.empty())
            const_terms.push_back(&expr.terms()[t]);
        else
            shape_to_expr.push_back(t);
    }

    ExecutorStats local;
    ExecutorStats &st = stats ? *stats : local;

    sumcheck::ProverOutput out;
    tr.appendU64("sc/num_vars", mu);
    tr.appendU64("sc/degree", degree);

    for (unsigned round = 0; round < mu; ++round) {
        const std::size_t half = std::size_t(1) << (poly.numVars() - 1);

        // Accumulation registers, one bank per (non-constant) term.
        std::vector<TermRegs> regs(shape.numTerms());
        for (std::size_t t = 0; t < shape.numTerms(); ++t)
            regs[t].sums.assign(shape.termDegree(t) + 1, Fr::zero());

        for (std::size_t j = 0; j < half; ++j) {
            // Tmp MLE buffer (accumulation chain) and the leaf-product
            // queue (balanced tree) for the pair currently in flight.
            std::vector<Fr> tmp;
            std::deque<std::vector<Fr>> leaf_queue;
            for (const ScheduleNode &node : sched.nodes) {
                const std::size_t k_pts =
                    shape.termDegree(node.term) + 1;
                std::vector<Fr> prod;
                if (node.treeCombine) {
                    // Combine two outstanding partial products.
                    assert(leaf_queue.size() >= 2);
                    prod = std::move(leaf_queue.front());
                    leaf_queue.pop_front();
                    const std::vector<Fr> &other = leaf_queue.front();
                    for (std::size_t k = 0; k < k_pts; ++k) {
                        prod[k] *= other[k];
                        ++st.products;
                    }
                    leaf_queue.pop_front();
                } else {
                    // Extension Engines: each occurrence's (lo, hi) pair
                    // extended to the term's k_pts evaluations.
                    prod.assign(k_pts, Fr::one());
                    for (SlotId s : node.occurrences) {
                        const poly::Mle &tbl = poly.table(s);
                        Fr lo = tbl[2 * j];
                        Fr diff = tbl[2 * j + 1] - lo;
                        Fr ext = lo;
                        for (std::size_t k = 0; k < k_pts; ++k) {
                            prod[k] *= ext;
                            ext += diff;
                            ++st.extensions;
                            ++st.products;
                        }
                    }
                    // This functional executor models the single-Tmp
                    // accumulation chain; plan-derived schedules can carry
                    // several distinct Tmp inputs per node
                    // (buildScheduleFromPlan) and are cost-modeled only.
                    assert(node.tmpInputs() <= 1 &&
                           "executeSchedule supports single-Tmp chains only");
                    if (node.usesTmpIn) {
                        assert(tmp.size() == k_pts);
                        for (std::size_t k = 0; k < k_pts; ++k) {
                            prod[k] *= tmp[k];
                            ++st.products;
                        }
                    }
                }
                // Route the node output: Tmp buffer, leaf queue, or the
                // accumulation registers.
                if (node.writesTmpOut) {
                    if (kind == ScheduleKind::BalancedTree &&
                        !node.usesTmpIn && !node.treeCombine) {
                        leaf_queue.push_back(std::move(prod));
                    } else if (node.treeCombine) {
                        leaf_queue.push_back(std::move(prod));
                    } else {
                        tmp = std::move(prod);
                    }
                    ++st.tmpWrites;
                } else {
                    auto &bank = regs[node.term].sums;
                    for (std::size_t k = 0; k < k_pts; ++k)
                        bank[k] += prod[k];
                    tmp.clear();
                }
            }
        }

        // Round polynomial: extend each term bank to the composite grid,
        // apply coefficients, and add constant terms (coeff * half each).
        std::vector<Fr> evals(degree + 1, Fr::zero());
        for (std::size_t t = 0; t < shape.numTerms(); ++t) {
            const Term &term = expr.terms()[shape_to_expr[t]];
            for (std::size_t k = 0; k <= degree; ++k)
                evals[k] += term.coeff * extendTermSum(regs[t].sums, k);
        }
        if (!const_terms.empty()) {
            Fr pairs = Fr::fromU64(half);
            for (const Term *term : const_terms)
                for (std::size_t k = 0; k <= degree; ++k)
                    evals[k] += term->coeff * pairs;
        }

        if (round == 0) {
            out.proof.claimedSum = evals[0] + evals[1];
            tr.appendFr("sc/claim", out.proof.claimedSum);
        }
        tr.appendFrVec("sc/round", evals);
        Fr r = tr.challengeFr("sc/challenge");
        out.proof.roundEvals.push_back(std::move(evals));
        out.challenges.push_back(r);

        // MLE Update units fold every table with the challenge.
        st.updates += poly.numSlots() * half;
        poly.fixFirstVarInPlace(r);
    }

    out.proof.finalSlotEvals.resize(poly.numSlots());
    for (std::size_t s = 0; s < poly.numSlots(); ++s)
        out.proof.finalSlotEvals[s] = poly.table(SlotId(s))[0];
    tr.appendFrVec("sc/final_evals", out.proof.finalSlotEvals);
    return out;
}

} // namespace zkphire::sim
