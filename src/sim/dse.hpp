/**
 * @file
 * Design-space exploration (paper §VI-B1, Table III): sweep SumCheck PEs /
 * EEs / PLs / SRAM, MSM PEs / window / buffer, FracMLE PEs, and bandwidth;
 * evaluate the protocol model for each; extract per-bandwidth and global
 * runtime-area Pareto frontiers (Fig. 10, Table IV).
 */
#ifndef ZKPHIRE_SIM_DSE_HPP
#define ZKPHIRE_SIM_DSE_HPP

#include <vector>

#include "sim/chip.hpp"

namespace zkphire::sim {

/** Table III sweep grid. */
struct DseGrid {
    std::vector<unsigned> sumcheckPEs = {1, 2, 4, 8, 16, 32};
    std::vector<unsigned> extensionEngines = {2, 3, 4, 5, 6, 7};
    std::vector<unsigned> productLanes = {3, 4, 5, 6, 7, 8};
    std::vector<std::size_t> sramBankWords = {1u << 10, 1u << 11, 1u << 12,
                                              1u << 13, 1u << 14, 1u << 15};
    std::vector<unsigned> msmPEs = {1, 2, 4, 8, 16, 32};
    std::vector<unsigned> msmWindows = {7, 8, 9, 10};
    std::vector<std::size_t> msmPointsPerPe = {1024, 2048, 4096, 8192,
                                               16384};
    std::vector<unsigned> fracMlePEs = {1, 2, 3, 4};
    std::vector<double> bandwidthsGBs = {64,   128,  256, 512,
                                         1024, 2048, 4096};

    /** A thinned grid for tests and quick runs. */
    static DseGrid coarse();
};

/** One evaluated design point. */
struct DsePoint {
    ChipConfig cfg;
    double runtimeMs = 0;
    double areaMm2 = 0;

    bool
    dominates(const DsePoint &o) const
    {
        return runtimeMs <= o.runtimeMs && areaMm2 <= o.areaMm2 &&
               (runtimeMs < o.runtimeMs || areaMm2 < o.areaMm2);
    }
};

/** DSE outcome. */
struct DseResult {
    /** Pareto frontier per bandwidth tier, sorted by runtime. */
    std::vector<std::pair<double, std::vector<DsePoint>>> perBandwidth;
    /** Global Pareto frontier across all bandwidths. */
    std::vector<DsePoint> globalPareto;
    std::size_t evaluatedPoints = 0;
};

/** Keep only non-dominated points, sorted by increasing runtime. */
std::vector<DsePoint> paretoFilter(std::vector<DsePoint> points);

/**
 * Run the sweep for a workload. Evaluation parallelizes across
 * std::thread workers.
 */
DseResult runDse(const ProtocolWorkload &wl, const DseGrid &grid,
                 unsigned threads = 8, const Tech &tech = defaultTech());

/**
 * The Fig. 6-style standalone SumCheck search: best SumCheck unit per
 * bandwidth under an area cap, with the paper's objective
 * (1-lambda)*geomean-slowdown + lambda*(1-mean-utilization).
 */
struct SumcheckDseOptions {
    double areaCapMm2 = 37.0; ///< 4-thread CPU core area (paper §VI-A1).
    double lambda = 0.8;
    unsigned numVars = 24;
    bool fixedPrime = true;
    std::vector<unsigned> peChoices = {1, 2, 4, 8, 16, 32};
    std::vector<unsigned> eeChoices = {2, 3, 4, 5, 6, 7};
    std::vector<unsigned> plChoices = {3, 4, 5, 6, 7, 8};
    std::vector<std::size_t> bankChoices = {1u << 10, 1u << 12, 1u << 14};
};

struct SumcheckDsePick {
    SumcheckUnitConfig cfg;
    double objective = 0;
    double meanUtilization = 0;
    /** Per-polynomial runtime (ms) on the chosen design. */
    std::vector<double> runtimesMs;
};

/** Pick the best standalone SumCheck design for a polynomial set. */
SumcheckDsePick pickSumcheckDesign(const std::vector<PolyShape> &polys,
                                   double bandwidth_gbs,
                                   const SumcheckDseOptions &opts,
                                   const Tech &tech = defaultTech());

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_DSE_HPP
