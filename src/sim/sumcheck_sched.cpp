#include "sim/sumcheck_sched.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace zkphire::sim {

PolyShape
PolyShape::fromGate(const gates::Gate &gate)
{
    return fromExpr(gate.expr, gate.roles);
}

PolyShape
PolyShape::fromExpr(const poly::GateExpr &expr,
                    std::vector<gates::SlotRole> roles_in)
{
    PolyShape shape;
    shape.numSlots = unsigned(expr.numSlots());
    shape.roles = std::move(roles_in);
    assert(shape.roles.size() == shape.numSlots);
    for (const poly::Term &t : expr.terms()) {
        if (t.factors.empty())
            continue; // pure-constant terms need no datapath work
        shape.terms.emplace_back(t.factors.begin(), t.factors.end());
    }
    return shape;
}

std::size_t
PolyShape::degree() const
{
    std::size_t d = 0;
    for (const auto &t : terms)
        d = std::max(d, t.size());
    return d;
}

std::vector<std::uint32_t>
PolyShape::uniqueSlots() const
{
    std::set<std::uint32_t> uniq;
    for (const auto &t : terms)
        uniq.insert(t.begin(), t.end());
    return {uniq.begin(), uniq.end()};
}

double
PolyShape::encodedBytes(std::uint32_t slot) const
{
    assert(slot < roles.size());
    switch (roles[slot]) {
      case gates::SlotRole::Selector:
        // Binary enable MLEs are stored as a bitstream (paper §IV-B1).
        return 1.0 / 8.0;
      case gates::SlotRole::Witness: {
        // ~90% of entries in {0,1} as single bits; dense entries carry the
        // 255-bit payload plus per-tile offset-buffer metadata.
        const double dense = 0.10;
        return (1.0 - dense) * (1.0 / 8.0) + dense * (32.0 + 2.0);
      }
      case gates::SlotRole::Dense:
        return 32.0;
    }
    return 32.0;
}

PolyShape
PolyShape::withoutSlot(std::uint32_t slot) const
{
    PolyShape out = *this;
    for (auto &t : out.terms)
        t.erase(std::remove(t.begin(), t.end(), slot), t.end());
    // Slot ids keep their numbering so roles stay aligned; the slot simply
    // becomes unreferenced.
    return out;
}

std::size_t
nodeCountForTerm(std::size_t m, unsigned num_ees)
{
    assert(num_ees >= 2 && "a PE needs at least two extension engines");
    if (m == 0)
        return 0;
    if (m <= num_ees)
        return 1;
    const std::size_t rest = m - num_ees;
    const std::size_t per_node = num_ees - 1;
    return 1 + (rest + per_node - 1) / per_node;
}

namespace {

/** Track first-use of slots across the whole schedule (tile reuse). */
class FetchTracker
{
  public:
    std::vector<std::uint32_t>
    freshOf(const std::vector<std::uint32_t> &occurrences)
    {
        std::vector<std::uint32_t> fresh;
        for (std::uint32_t s : occurrences)
            if (seen.insert(s).second)
                fresh.push_back(s);
        return fresh;
    }

  private:
    std::set<std::uint32_t> seen;
};

} // namespace

Schedule
buildSchedule(const PolyShape &shape, unsigned num_ees, unsigned num_pls,
              ScheduleKind kind)
{
    assert(num_ees >= 2);
    Schedule sched;
    sched.numEEs = num_ees;
    sched.numPLs = num_pls;
    sched.kind = kind;
    FetchTracker fetches;

    std::size_t max_tmp = 0;
    for (std::size_t t = 0; t < shape.terms.size(); ++t) {
        const auto &factors = shape.terms[t];
        if (factors.empty())
            continue;
        if (kind == ScheduleKind::Accumulation) {
            // First node takes up to E occurrences; continuation nodes
            // reserve one EE slot for the Tmp partial product.
            std::size_t pos = 0;
            bool first = true;
            while (pos < factors.size()) {
                std::size_t take = first ? num_ees : num_ees - 1;
                take = std::min(take, factors.size() - pos);
                ScheduleNode node;
                node.term = std::uint32_t(t);
                node.occurrences.assign(factors.begin() + pos,
                                        factors.begin() + pos + take);
                node.usesTmpIn = !first;
                pos += take;
                node.writesTmpOut = pos < factors.size();
                node.freshFetches = fetches.freshOf(node.occurrences);
                sched.nodes.push_back(std::move(node));
                first = false;
            }
            if (factors.size() > num_ees)
                max_tmp = std::max<std::size_t>(max_tmp, 1);
        } else {
            // Balanced tree: independent leaf nodes of up to E occurrences,
            // then pairwise combine steps. Peak live intermediates grows
            // logarithmically with the leaf count.
            std::size_t leaves = 0;
            for (std::size_t pos = 0; pos < factors.size();
                 pos += num_ees, ++leaves) {
                std::size_t take =
                    std::min<std::size_t>(num_ees, factors.size() - pos);
                ScheduleNode node;
                node.term = std::uint32_t(t);
                node.occurrences.assign(factors.begin() + pos,
                                        factors.begin() + pos + take);
                node.writesTmpOut = factors.size() > num_ees;
                node.freshFetches = fetches.freshOf(node.occurrences);
                sched.nodes.push_back(std::move(node));
            }
            for (std::size_t c = 0; c + 1 < leaves; ++c) {
                ScheduleNode combine;
                combine.term = std::uint32_t(t);
                combine.treeCombine = true;
                combine.usesTmpIn = true;
                combine.writesTmpOut = c + 2 < leaves;
                sched.nodes.push_back(std::move(combine));
            }
            if (leaves > 1) {
                std::size_t live = 1;
                std::size_t l = leaves;
                while (l > 1) {
                    l = (l + 1) / 2;
                    ++live;
                }
                max_tmp = std::max(max_tmp, live);
            }
        }
    }
    sched.tmpBuffers = max_tmp;
    return sched;
}

} // namespace zkphire::sim
