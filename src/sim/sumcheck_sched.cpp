#include "sim/sumcheck_sched.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <set>

namespace zkphire::sim {

PolyShape
PolyShape::fromGate(const gates::Gate &gate)
{
    return fromExpr(gate.expr, gate.roles);
}

PolyShape
PolyShape::fromExpr(const poly::GateExpr &expr,
                    std::vector<gates::SlotRole> roles_in)
{
    PolyShape shape;
    shape.numSlots = unsigned(expr.numSlots());
    shape.roles = std::move(roles_in);
    assert(shape.roles.size() == shape.numSlots);
    for (const poly::Term &t : expr.terms()) {
        if (t.factors.empty())
            continue; // pure-constant terms need no datapath work
        shape.terms.emplace_back(t.factors.begin(), t.factors.end());
    }
    return shape;
}

std::size_t
PolyShape::degree() const
{
    std::size_t d = 0;
    for (const auto &t : terms)
        d = std::max(d, t.size());
    return d;
}

std::vector<std::uint32_t>
PolyShape::uniqueSlots() const
{
    std::set<std::uint32_t> uniq;
    for (const auto &t : terms)
        uniq.insert(t.begin(), t.end());
    return {uniq.begin(), uniq.end()};
}

double
PolyShape::encodedBytes(std::uint32_t slot) const
{
    assert(slot < roles.size());
    switch (roles[slot]) {
      case gates::SlotRole::Selector:
        // Binary enable MLEs are stored as a bitstream (paper §IV-B1).
        return 1.0 / 8.0;
      case gates::SlotRole::Witness: {
        // ~90% of entries in {0,1} as single bits; dense entries carry the
        // 255-bit payload plus per-tile offset-buffer metadata.
        const double dense = 0.10;
        return (1.0 - dense) * (1.0 / 8.0) + dense * (32.0 + 2.0);
      }
      case gates::SlotRole::Dense:
        return 32.0;
    }
    return 32.0;
}

PolyShape
PolyShape::withoutSlot(std::uint32_t slot) const
{
    PolyShape out = *this;
    for (auto &t : out.terms)
        t.erase(std::remove(t.begin(), t.end(), slot), t.end());
    // Slot ids keep their numbering so roles stay aligned; the slot simply
    // becomes unreferenced.
    return out;
}

std::size_t
nodeCountForTerm(std::size_t m, unsigned num_ees)
{
    assert(num_ees >= 2 && "a PE needs at least two extension engines");
    if (m == 0)
        return 0;
    if (m <= num_ees)
        return 1;
    const std::size_t rest = m - num_ees;
    const std::size_t per_node = num_ees - 1;
    return 1 + (rest + per_node - 1) / per_node;
}

namespace {

/** Track first-use of slots across the whole schedule (tile reuse). */
class FetchTracker
{
  public:
    std::vector<std::uint32_t>
    freshOf(const std::vector<std::uint32_t> &occurrences)
    {
        std::vector<std::uint32_t> fresh;
        for (std::uint32_t s : occurrences)
            if (seen.insert(s).second)
                fresh.push_back(s);
        return fresh;
    }

  private:
    std::set<std::uint32_t> seen;
};

} // namespace

Schedule
buildSchedule(const PolyShape &shape, unsigned num_ees, unsigned num_pls,
              ScheduleKind kind)
{
    assert(num_ees >= 2);
    Schedule sched;
    sched.numEEs = num_ees;
    sched.numPLs = num_pls;
    sched.kind = kind;
    FetchTracker fetches;

    std::size_t max_tmp = 0;
    for (std::size_t t = 0; t < shape.terms.size(); ++t) {
        const auto &factors = shape.terms[t];
        if (factors.empty())
            continue;
        if (kind == ScheduleKind::Accumulation) {
            // First node takes up to E occurrences; continuation nodes
            // reserve one EE slot for the Tmp partial product.
            std::size_t pos = 0;
            bool first = true;
            while (pos < factors.size()) {
                std::size_t take = first ? num_ees : num_ees - 1;
                take = std::min(take, factors.size() - pos);
                ScheduleNode node;
                node.term = std::uint32_t(t);
                node.occurrences.assign(factors.begin() + pos,
                                        factors.begin() + pos + take);
                node.usesTmpIn = !first;
                pos += take;
                node.writesTmpOut = pos < factors.size();
                node.freshFetches = fetches.freshOf(node.occurrences);
                sched.nodes.push_back(std::move(node));
                first = false;
            }
            if (factors.size() > num_ees)
                max_tmp = std::max<std::size_t>(max_tmp, 1);
        } else {
            // Balanced tree: independent leaf nodes of up to E occurrences,
            // then pairwise combine steps. Peak live intermediates grows
            // logarithmically with the leaf count.
            std::size_t leaves = 0;
            for (std::size_t pos = 0; pos < factors.size();
                 pos += num_ees, ++leaves) {
                std::size_t take =
                    std::min<std::size_t>(num_ees, factors.size() - pos);
                ScheduleNode node;
                node.term = std::uint32_t(t);
                node.occurrences.assign(factors.begin() + pos,
                                        factors.begin() + pos + take);
                node.writesTmpOut = factors.size() > num_ees;
                node.freshFetches = fetches.freshOf(node.occurrences);
                sched.nodes.push_back(std::move(node));
            }
            for (std::size_t c = 0; c + 1 < leaves; ++c) {
                ScheduleNode combine;
                combine.term = std::uint32_t(t);
                combine.treeCombine = true;
                combine.usesTmpIn = true;
                combine.writesTmpOut = c + 2 < leaves;
                sched.nodes.push_back(std::move(combine));
            }
            if (leaves > 1) {
                std::size_t live = 1;
                std::size_t l = leaves;
                while (l > 1) {
                    l = (l + 1) / 2;
                    ++live;
                }
                max_tmp = std::max(max_tmp, live);
            }
        }
    }
    sched.tmpBuffers = max_tmp;
    return sched;
}

std::size_t
scheduleMulsPerPoint(const Schedule &sched)
{
    // Mirrors the cost model's per-node charge in simulateSumcheck:
    // factors_in_product - 1 multiplies per evaluation point.
    std::size_t muls = 0;
    for (const ScheduleNode &node : sched.nodes) {
        const std::size_t inputs = node.occurrences.size() +
                                   node.tmpInputs() +
                                   (node.treeCombine ? 2 : 0);
        if (inputs >= 2)
            muls += inputs - 1;
    }
    return muls;
}

Schedule
buildScheduleFromPlan(const poly::GatePlan &plan, unsigned num_ees,
                      unsigned num_pls)
{
    assert(num_ees >= 2);
    Schedule sched;
    sched.numEEs = num_ees;
    sched.numPLs = num_pls;
    sched.kind = ScheduleKind::Accumulation;

    const std::span<const poly::PlanOp> ops = plan.ops();
    // Per-register consumer bookkeeping over the op list (term accumulation
    // reads the finished product off the lane, so it is not a Tmp consumer).
    std::vector<std::size_t> consumers(plan.numRegs(), 0);
    std::vector<std::ptrdiff_t> last_use(plan.numRegs(), -1);
    for (std::size_t i = 0; i < ops.size(); ++i) {
        ++consumers[ops[i].lhs];
        ++consumers[ops[i].rhs];
        last_use[ops[i].lhs] = std::ptrdiff_t(i);
        last_use[ops[i].rhs] = std::ptrdiff_t(i);
    }

    FetchTracker fetches;
    struct Building {
        ScheduleNode node;
        poly::RegId chainDst = poly::kNoReg;
        std::size_t inputs = 0;
        std::ptrdiff_t lastOp = -1;
        bool open = false;
    } cur;
    std::vector<poly::RegId> node_out; // per emitted node: its product reg

    auto add_input = [&](poly::RegId r) {
        if (plan.isSlotReg(r))
            cur.node.occurrences.push_back(r);
        else
            ++cur.node.tmpIn;
        ++cur.inputs;
    };
    auto close_node = [&]() {
        if (!cur.open)
            return;
        cur.node.usesTmpIn = cur.node.tmpIn > 0;
        // The node's product value must survive in a Tmp MLE whenever a
        // later op still reads it (shared sub-product or chain overflow).
        cur.node.writesTmpOut = last_use[cur.chainDst] > cur.lastOp;
        cur.node.freshFetches = fetches.freshOf(cur.node.occurrences);
        node_out.push_back(cur.chainDst);
        sched.nodes.push_back(std::move(cur.node));
        cur = Building{};
    };

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const poly::PlanOp &op = ops[i];
        // Extend the open node only when this op folds its product chain
        // onward: the chain value is an operand, nothing else consumes it
        // (a multiply-consumed intermediate must round-trip through Tmp —
        // a node computes exactly one product of its inputs), the EE array
        // has a free input, and the node stays term-pure.
        const bool continues =
            cur.open && op.term == cur.node.term &&
            (op.lhs == cur.chainDst || op.rhs == cur.chainDst) &&
            consumers[cur.chainDst] == 1 && cur.inputs < num_ees;
        if (continues) {
            add_input(op.lhs == cur.chainDst ? op.rhs : op.lhs);
        } else {
            close_node();
            cur.open = true;
            cur.node.term = op.term;
            add_input(op.lhs);
            add_input(op.rhs);
        }
        cur.chainDst = op.dst;
        cur.lastOp = std::ptrdiff_t(i);
    }
    close_node();

    // Peak live Tmp buffers: a writesTmpOut node creates one; it dies after
    // the last node whose ops read it.
    std::vector<std::size_t> op_node(ops.size());
    {
        // Recover the op->node mapping from node op counts (inputs - 1).
        std::ptrdiff_t last = -1;
        for (std::size_t node_i = 0; node_i < sched.nodes.size(); ++node_i) {
            const ScheduleNode &node = sched.nodes[node_i];
            const std::size_t node_ops = node.occurrences.size() +
                                         node.tmpInputs() - 1;
            for (std::size_t k = 0; k < node_ops; ++k)
                op_node[std::size_t(++last)] = node_i;
        }
        assert(last + 1 == std::ptrdiff_t(ops.size()));
        (void)last;
    }
    std::vector<std::size_t> deaths(sched.nodes.size() + 1, 0);
    for (std::size_t node_i = 0; node_i < sched.nodes.size(); ++node_i) {
        if (!sched.nodes[node_i].writesTmpOut)
            continue;
        const std::ptrdiff_t lu = last_use[node_out[node_i]];
        assert(lu >= 0);
        ++deaths[op_node[std::size_t(lu)] + 1]; // free after last consumer
    }
    std::size_t live = 0, peak = 0;
    for (std::size_t node_i = 0; node_i < sched.nodes.size(); ++node_i) {
        live -= deaths[node_i];
        if (sched.nodes[node_i].writesTmpOut) {
            ++live;
            peak = std::max(peak, live);
        }
    }
    sched.tmpBuffers = peak;
    return sched;
}

} // namespace zkphire::sim
