/**
 * @file
 * MLE Combine module model (paper §IV-B4): element-wise operations and dot
 * products over up to 6 streamed MLE buffers, used before and after the
 * OpenCheck in Polynomial Opening (e.g. forming g = Sum_i rho^i f_i).
 */
#ifndef ZKPHIRE_SIM_MLE_COMBINE_HPP
#define ZKPHIRE_SIM_MLE_COMBINE_HPP

#include "sim/tech.hpp"

namespace zkphire::sim {

/** MLE Combine configuration. */
struct MleCombineConfig {
    unsigned numBuffers = 6;    ///< Local SRAM stream buffers (paper Fig 4).
    unsigned mulsPerBuffer = 8; ///< Fully-pipelined MAC depth per stream.
    bool fixedPrime = true;

    unsigned numLanes() const { return numBuffers * mulsPerBuffer; }

    double
    areaMm2(const Tech &tech) const
    {
        return double(numLanes()) * tech.modmul255(fixedPrime);
    }
};

/**
 * Combine num_polys MLEs of size 2^mu into one (one mul-add per element per
 * input polynomial); returns cycles at the given bandwidth.
 */
double simulateMleCombine(const MleCombineConfig &cfg, unsigned mu,
                          unsigned num_polys, double bandwidth_gbs,
                          const Tech &tech = defaultTech());

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_MLE_COMBINE_HPP
