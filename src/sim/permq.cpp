#include "sim/permq.hpp"

#include <algorithm>
#include <cmath>

namespace zkphire::sim {

double
PermQConfig::areaMm2(const Tech &tech) const
{
    // Per-PE N/D generation datapath: ~4 multipliers (beta*id, beta*sigma,
    // and the running column products for the fraction).
    const double gen = double(numPEs) * 4.0 * tech.modmul255(fixedPrime);
    double inversion = 0;
    if (scheme == InversionScheme::ZkPhireBatch2) {
        // 266 inverse units + two shared multipliers (batching + output
        // isolation) + batch buffer.
        inversion = double(numInverseUnits()) * tech.modinv() +
                    2.0 * tech.modmul255(fixedPrime);
    } else {
        // zkSpeed: batch 64 with a dedicated multiplier per inverse unit.
        inversion = double(numInverseUnits()) *
                    (tech.modinv() + tech.modmul255(fixedPrime));
    }
    return gen + inversion;
}

PermQRunResult
simulatePermQ(const PermQConfig &cfg, unsigned mu, unsigned num_witness,
              double bandwidth_gbs, const Tech &tech)
{
    PermQRunResult res;
    const double n = std::pow(2.0, double(mu));

    // Generation: 5 column PEs (one per witness, paper §IV-B5) produce one
    // element per cycle per column after warmup; columns beyond 5 wrap
    // around via cyclic reuse.
    const double col_passes = std::ceil(double(num_witness) / 5.0);
    const double gen_cycles = col_passes * n + tech.modmulLatency * 4.0;

    // Fraction pipeline: one inversion per phi element, amortized by
    // batching across the FracMLE PEs. zkPHIRE issues one batch-2 inversion
    // every two cycles per pipeline (266 round-robin units cover the
    // 532-cycle latency) => 1 element/cycle/pipeline; zkSpeed's batch-64
    // organization sustains the same rate at much higher area.
    const double inv_cycles =
        n / std::max(1u, cfg.numPEs) + tech.invLatency;

    // Traffic: read w_j and sigma_j per column (id generated on the fly),
    // write N_j, D_j, and phi.
    res.trafficBytes = n * Tech::frBytes *
                       (2.0 * num_witness       // reads
                        + 2.0 * num_witness + 1.0); // writes

    const double bytes_per_cycle = bandwidth_gbs / tech.clockGhz;
    const double mem_cycles =
        bytes_per_cycle > 0 ? res.trafficBytes / bytes_per_cycle : 0.0;
    // Generation and inversion are pipelined against each other.
    res.cycles = std::max({gen_cycles, inv_cycles, mem_cycles});
    return res;
}

} // namespace zkphire::sim
