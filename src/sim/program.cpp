#include "sim/program.hpp"

#include <sstream>

namespace zkphire::sim {

std::string
Instruction::toString() const
{
    std::ostringstream os;
    switch (op) {
      case Opcode::Prefetch:
        os << "PREFETCH banks={";
        for (std::size_t i = 0; i < slots.size(); ++i)
            os << (i ? "," : "") << slots[i];
        os << "}";
        break;
      case Opcode::Exec:
        os << "EXEC     term=" << term << " ee={";
        for (std::size_t i = 0; i < slots.size(); ++i)
            os << (i ? "," : "") << slots[i];
        os << "} K=" << unsigned(extensions)
           << " II=" << unsigned(initiationInterval)
           << (useTmp ? " +tmpIn" : "") << (writeTmp ? " ->tmp" : "->acc");
        break;
      case Opcode::Hash:
        os << "HASH     squeeze round challenge";
        break;
      case Opcode::Update:
        os << "UPDATE   fold resident tables";
        break;
      case Opcode::WriteBack:
        os << "WRITEBK  drain updated tables";
        break;
      case Opcode::Halt:
        os << "HALT";
        break;
    }
    return os.str();
}

std::string
SumcheckProgram::disassemble() const
{
    std::ostringstream os;
    os << "; SumCheck unit program (" << numEEs << " EEs, " << numPLs
       << " PLs), " << code.size() << " instructions, " << sizeBytes()
       << " B control store\n";
    for (std::size_t i = 0; i < code.size(); ++i)
        os << i << ":\t" << code[i].toString() << "\n";
    return os.str();
}

std::size_t
SumcheckProgram::sizeBytes() const
{
    std::size_t bytes = 0;
    for (const Instruction &insn : code)
        bytes += 8 + insn.slots.size(); // packed word + slot ids
    return bytes;
}

std::size_t
SumcheckProgram::numExecOps() const
{
    std::size_t n = 0;
    for (const Instruction &insn : code)
        if (insn.op == Opcode::Exec)
            ++n;
    return n;
}

SumcheckProgram
compileProgram(const PolyShape &shape, const Schedule &sched)
{
    SumcheckProgram prog;
    prog.numEEs = sched.numEEs;
    prog.numPLs = sched.numPLs;
    for (const ScheduleNode &node : sched.nodes) {
        if (!node.freshFetches.empty()) {
            Instruction pf;
            pf.op = Opcode::Prefetch;
            pf.slots = node.freshFetches;
            prog.code.push_back(std::move(pf));
        }
        Instruction ex;
        ex.op = Opcode::Exec;
        ex.term = node.term;
        ex.slots = node.occurrences;
        // Legacy chain nodes encode 0/1; plan-derived nodes keep the full
        // Tmp read count (tree combines read one queued intermediate).
        ex.useTmp = std::uint8_t(node.treeCombine ? 1 : node.tmpInputs());
        ex.writeTmp = node.writesTmpOut;
        std::size_t k = shape.termDegree(node.term) + 1;
        ex.extensions = std::uint8_t(k);
        ex.initiationInterval = std::uint8_t(
            Schedule::initiationInterval(k, sched.numPLs));
        prog.code.push_back(std::move(ex));
    }
    for (Opcode op :
         {Opcode::Hash, Opcode::Update, Opcode::WriteBack, Opcode::Halt}) {
        Instruction ins;
        ins.op = op;
        prog.code.push_back(std::move(ins));
    }
    return prog;
}

} // namespace zkphire::sim
