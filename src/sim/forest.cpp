#include "sim/forest.hpp"

#include <algorithm>
#include <cmath>

namespace zkphire::sim {

ForestTask
buildMleTask(unsigned mu)
{
    const double n = std::pow(2.0, double(mu));
    ForestTask t;
    // Tensor-product construction: one multiply per produced entry
    // (sum over levels ~= 2N), streaming the final table out.
    t.mulOps = 2.0 * n;
    t.trafficBytes = n * Tech::frBytes;
    t.treeDepth = double(mu);
    return t;
}

ForestTask
productMleTask(unsigned mu)
{
    const double n = std::pow(2.0, double(mu));
    ForestTask t;
    // One multiply per internal tree node (~N), read phi, write v (2N).
    t.mulOps = n;
    t.trafficBytes = 3.0 * n * Tech::frBytes;
    t.treeDepth = double(mu);
    return t;
}

ForestTask
batchEvalTask(unsigned mu, unsigned num_polys)
{
    const double n = std::pow(2.0, double(mu));
    ForestTask t;
    // Folding evaluation: N + N/2 + ... ~= 2N muls per polynomial, each
    // polynomial streamed in once.
    t.mulOps = 2.0 * n * double(num_polys);
    t.trafficBytes = n * Tech::frBytes * double(num_polys);
    t.treeDepth = double(mu) * double(num_polys);
    return t;
}

double
simulateForest(const ForestConfig &cfg, const ForestTask &task,
               double bandwidth_gbs, const Tech &tech)
{
    const double compute = task.mulOps / cfg.mulsPerCycle() +
                           task.treeDepth * double(tech.modmulLatency);
    const double bytes_per_cycle = bandwidth_gbs / tech.clockGhz;
    const double mem =
        bytes_per_cycle > 0 ? task.trafficBytes / bytes_per_cycle : 0.0;
    return std::max(compute, mem);
}

} // namespace zkphire::sim
