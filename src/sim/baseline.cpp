#include "sim/baseline.hpp"

#include <cmath>

#include "ec/glv.hpp"
#include "ec/msm.hpp"
#include "ec/recode.hpp"

namespace zkphire::sim {

double
CpuModel::sumcheckModmuls(const PolyShape &shape, unsigned mu)
{
    // Per pair of table entries in round r:
    //  - term products: K_t = d_t + 1 evaluation points, d_t - 1 muls each
    //    (plus one for a non-unit coefficient, ignored);
    //  - the fold (MLE update) after the round: 1 mul per updated element
    //    per referenced slot (== 1 per pair per slot).
    double per_pair = 0;
    for (std::size_t t = 0; t < shape.numTerms(); ++t) {
        const double d = double(shape.termDegree(t));
        if (d >= 2)
            per_pair += (d + 1.0) * (d - 1.0);
    }
    const double slots = double(shape.uniqueSlots().size());
    // Sum of pairs over all rounds: 2^(mu-1) + 2^(mu-2) + ... ~= 2^mu.
    const double total_pairs = std::pow(2.0, double(mu)) - 1.0;
    return total_pairs * (per_pair + slots);
}

double
CpuModel::sumcheckBytes(const PolyShape &shape, unsigned mu)
{
    // Every round reads all referenced tables and writes the halved folds:
    // 1.5x the table footprint per round, summed over halving rounds.
    const double slots = double(shape.uniqueSlots().size());
    const double total_elems = 2.0 * (std::pow(2.0, double(mu)) - 1.0);
    return slots * total_elems * Tech::frBytes * 1.5;
}

double
CpuModel::sumcheckMs(const PolyShape &shape, unsigned mu) const
{
    const double mem_s = sumcheckBytes(shape, mu) / (streamGBs() * 1e9);
    const double mul_s = sumcheckModmuls(shape, mu) / (mulGps() * 1e9);
    return (mem_s + mul_s) * 1e3;
}

double
CpuModel::msmFieldMuls(const MsmWorkload &wl)
{
    // Mirrors ec::msmPippengerOpt since the PR 4/5/7 overhauls:
    // signed-digit recoding (2^(c-1) buckets), batched-affine bucket
    // accumulation for dense scalars, the trivial-scalar fast path (zeros
    // skipped, ones one mixed add), a per-bucket mixed + full Jacobian
    // aggregation pair in the suffix sum, and — where the kernel's own
    // profitability rule enables it — the GLV split (half-width digits
    // over 2n points, one endomorphism mul per point, halved fold). The
    // window width comes from the kernel's argmin and the per-op prices
    // from ec::msm_cost, so the model tracks the kernel's actual bucket
    // counts and any future retune of either.
    const double n = wl.numPoints;
    const std::size_t ni = std::size_t(std::max(0.0, n));
    const bool glv =
        ec::glv::available() && ec::msmGlvProfitable(ni, /*batch_affine=*/true);
    const std::size_t scalar_bits =
        glv ? ec::glv::kHalfBits : ff::Fr::modulusBits();
    const double n_ext = glv ? 2.0 * n : n;
    const unsigned c = ec::pippengerAutoWindowSignedBits(
        glv ? 2 * ni : ni, scalar_bits, /*batch_affine=*/true);
    const double windows = double(ec::signedDigitWindows(scalar_bits, c));
    const double buckets = double(std::size_t(1) << (c - 1));
    const double dense_muls =
        windows * (n_ext * wl.fracDense() * ec::msm_cost::kBatchAffineAdd +
                   buckets * ec::msm_cost::kAggPerBucket);
    const double endo_muls = glv ? n * wl.fracDense() : 0.0;
    const double one_muls = n * wl.fracOne * ec::msm_cost::kMixedAdd;
    const double doubling_muls =
        double(scalar_bits) * ec::msm_cost::kDouble; // window fold
    return dense_muls + endo_muls + one_muls + doubling_muls;
}

double
CpuModel::msmPointAdds(const MsmWorkload &wl)
{
    return msmFieldMuls(wl) / ec::msm_cost::kMixedAdd;
}

double
CpuModel::msmMs(const MsmWorkload &wl) const
{
    return msmFieldMuls(wl) * nsPerFieldMul() / 1e6;
}

CpuModel::ProtocolBreakdown
CpuModel::protocolBreakdown(const ProtocolWorkload &wl) const
{
    ProtocolBreakdown b;
    const double n = std::pow(2.0, double(wl.mu));
    const unsigned k = wl.numWitness();
    const unsigned s = wl.numSelectors();
    // Element-wise streaming kernels: same roofline as SumCheck rounds.
    auto stream_ms = [&](double elems, double muls_per_elem) {
        double mem_s = elems * 2.0 * Tech::frBytes / (streamGBs() * 1e9);
        double mul_s = elems * muls_per_elem / (mulGps() * 1e9);
        return (mem_s + mul_s) * 1e3;
    };

    // Witness commitments: k sparse MSMs.
    for (unsigned j = 0; j < k; ++j)
        b.sparseMsm += msmMs(MsmWorkload::sparse(n));

    // Gate identity: build f_r (N muls) + the masked ZeroCheck SumCheck.
    const PolyShape gate = PolyShape::fromGate(
        gates::tableIGate(wl.sys == GateSystem::Vanilla ? 20 : 22));
    b.gateIdentity = stream_ms(n, 1.0) + sumcheckMs(gate, wl.mu);

    // Wire identity: N/D/phi generation (2 muls per element per column for
    // beta*id/beta*sigma plus the batched-inversion fraction) and the
    // product tree; then phi/v commitments and the PermCheck.
    b.genPermMles = stream_ms(n * (2.0 * k + 1.0), 2.0) + stream_ms(n, 4.0);
    b.permDenseMsm = msmMs(MsmWorkload::dense(n)) +
                     msmMs(MsmWorkload::dense(2.0 * n));
    const PolyShape perm = PolyShape::fromGate(
        gates::tableIGate(wl.sys == GateSystem::Vanilla ? 21 : 23));
    b.permCheck = sumcheckMs(perm, wl.mu);

    // Batch evaluations: fold-evaluate every opened polynomial (~2 muls
    // per element) plus the five product-tree openings at size 2N.
    const unsigned opened = s + 3 * k + 1;
    b.batchEvals = stream_ms(n * opened, 2.0) + stream_ms(2.0 * n * 5, 2.0);

    // Polynomial opening: MLE combine, eq-table builds + OpenCheck, and the
    // quotient MSMs (~N + 2N).
    b.mleCombine = stream_ms(n * opened, 1.0);
    b.openCheck = stream_ms(6.0 * n, 1.0) +
                  sumcheckMs(PolyShape::fromGate(gates::tableIGate(24)),
                             wl.mu);
    b.polyOpenMsm = msmMs(MsmWorkload::dense(2.0 * n));
    return b;
}

double
CpuModel::protocolMs(const ProtocolWorkload &wl) const
{
    return protocolBreakdown(wl).total();
}

double
GpuModel::sumcheckMs(const PolyShape &shape, unsigned mu) const
{
    // Memory-bound model: every round streams all referenced tables in and
    // the folded tables out; achieved bandwidth is a small fraction of peak
    // (strided access, kernel overheads), plus a per-round launch cost.
    const double slots = double(shape.uniqueSlots().size());
    double bytes = 0;
    for (unsigned r = 1; r <= mu; ++r) {
        const double len = std::pow(2.0, double(mu - r + 1));
        bytes += slots * len * Tech::frBytes * 1.5; // read + half write
    }
    const double ms = bytes / (bandwidthGBs * 1e6 * efficiency);
    return ms + double(mu) * perRoundOverheadMs;
}

} // namespace zkphire::sim
