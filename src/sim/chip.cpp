#include "sim/chip.hpp"

#include <algorithm>
#include <cmath>

namespace zkphire::sim {

namespace {

/** Gate-library rows for the three protocol SumChecks. */
int
gateZcRow(GateSystem sys)
{
    return sys == GateSystem::Vanilla ? 20 : 22;
}

int
permZcRow(GateSystem sys)
{
    return sys == GateSystem::Vanilla ? 21 : 23;
}

const PolyShape &
cachedShape(int row)
{
    // Magic static: built once, safe under the DSE's worker threads.
    static const std::vector<PolyShape> shapes = [] {
        std::vector<PolyShape> s;
        s.reserve(25);
        for (int i = 0; i < 25; ++i)
            s.push_back(PolyShape::fromGate(gates::tableIGate(i)));
        return s;
    }();
    return shapes[std::size_t(row)];
}

double
cyclesToMs(double cycles, const Tech &tech)
{
    return cycles / (tech.clockGhz * 1e6);
}

/** Per-PE control/delay-buffer overhead in the SumCheck unit (mm^2). */
constexpr double kSumcheckPerPeOverheadMm2 = 0.40;
/** SHA3 block + paddings (mm^2). */
constexpr double kSha3AreaMm2 = 0.5;
/** Control, batch buffers, RR-select logic across "Other" modules (mm^2). */
constexpr double kOtherBaseMm2 = 5.0;
/** Fixed small local buffers: PermQuotGen/MLE-Combine/Forest, 3 x 6 MB. */
constexpr double kFixedBufferMB = 18.0;
/** Interconnect (two bit-sliced crossbars + shared bus) vs compute area. */
constexpr double kInterconnectFraction = 0.145;

} // namespace

ChipConfig
ChipConfig::exemplar()
{
    ChipConfig cfg;
    cfg.sumcheck.numPEs = 16;
    cfg.sumcheck.numEEs = 7;
    cfg.sumcheck.numPLs = 5;
    cfg.sumcheck.bankWords = 1 << 13;
    cfg.msm.numPEs = 32;
    cfg.msm.windowBits = 9;
    cfg.msm.pointsPerPe = 16 * 1024;
    cfg.forest.numTrees = 80;
    cfg.permq.numPEs = 4;
    cfg.bandwidthGBs = 2048;
    cfg.maskZeroCheck = true;
    cfg.setFixedPrime(true);
    return cfg;
}

unsigned
ChipConfig::derivedForestTrees(const SumcheckUnitConfig &sc)
{
    // Size the forest to the SumCheck PL demand plus one third headroom for
    // concurrent tree ops (80 trees at the exemplar's 600-mul demand).
    const double demand = double(sc.numPEs) * double(sc.plMulsPerPe());
    return unsigned(std::ceil(demand * 4.0 / (3.0 * 8.0)));
}

void
ChipConfig::setFixedPrime(bool fixed)
{
    sumcheck.fixedPrime = fixed;
    msm.fixedPrime = fixed;
    forest.fixedPrime = fixed;
    permq.fixedPrime = fixed;
    combine.fixedPrime = fixed;
}

unsigned
ChipConfig::totalModmuls() const
{
    // 381-bit muls in the PADD pipelines, 255-bit elsewhere. The SumCheck
    // product lanes are physically the forest trees (not double counted).
    unsigned msm_muls = msm.numPEs * defaultTech().paddModmuls;
    unsigned forest_muls = forest.numTrees * forest.mulsPerTree;
    unsigned sc_muls = sumcheck.numPEs * sumcheck.updateMulsPerPe();
    unsigned permq_muls = permq.numPEs * 4 + 2;
    unsigned combine_muls = combine.numLanes();
    return msm_muls + forest_muls + sc_muls + permq_muls + combine_muls;
}

ProtocolWorkload
ProtocolWorkload::custom(const gates::Gate &gate, unsigned mu,
                         unsigned witnesses, unsigned selectors)
{
    ProtocolWorkload w;
    w.mu = mu;
    w.customWitnesses = witnesses;
    w.customSelectors = selectors;
    gates::Gate masked = gate;
    masked.expr = gate.expr.multipliedBySlot("f_r", nullptr);
    masked.roles.push_back(gates::SlotRole::Dense);
    w.customGateWithFr = std::make_shared<const PolyShape>(
        PolyShape::fromGate(masked));
    return w;
}

namespace {

/** PermCheck shape for an arbitrary witness-column count (with f_r). */
PolyShape
permShapeFor(unsigned k)
{
    gates::Gate core = gates::permCoreGate(k, ff::Fr::fromU64(7));
    gates::Gate masked = core;
    masked.expr = core.expr.multipliedBySlot("f_r", nullptr);
    masked.roles.push_back(gates::SlotRole::Dense);
    return PolyShape::fromGate(masked);
}

} // namespace

AreaBreakdown
ChipConfig::areaBreakdown(const Tech &tech) const
{
    AreaBreakdown a;
    a.msm = msm.areaMm2(tech);
    a.forest = forest.areaMm2(tech);
    const double mul = tech.modmul255(sumcheck.fixedPrime);
    a.sumcheck = double(sumcheck.numPEs) *
                 (double(sumcheck.updateMulsPerPe()) * mul +
                  double(sumcheck.numEEs) * 0.15 * mul +
                  kSumcheckPerPeOverheadMm2);
    a.other = permq.areaMm2(tech) + combine.areaMm2(tech) + kSha3AreaMm2 +
              kOtherBaseMm2;
    const double sram_mb =
        sumcheck.sramMB() + msm.sramMB() + kFixedBufferMB;
    a.sram = sram_mb * tech.sramMm2PerMB;
    a.interconnect = kInterconnectFraction * a.compute();
    a.hbmPhy = tech.phyAreaMm2(bandwidthGBs);
    return a;
}

PowerBreakdown
ChipConfig::powerBreakdown(const Tech &tech) const
{
    AreaBreakdown a = areaBreakdown(tech);
    PowerBreakdown p;
    p.msm = a.msm * tech.msmPowerDensity;
    p.forest = a.forest * tech.forestPowerDensity;
    p.sumcheck = a.sumcheck * tech.sumcheckPowerDensity;
    p.other = a.other * tech.otherPowerDensity;
    p.sram = a.sram * tech.sramPowerDensity;
    p.interconnect = a.interconnect * tech.interconnectPowerDensity;
    p.hbmPhy = a.hbmPhy * tech.hbmPhyPowerDensity;
    return p;
}

ChipRunResult
simulateProtocol(const ChipConfig &cfg, const ProtocolWorkload &wl,
                 const Tech &tech)
{
    ChipRunResult res;
    const double n = std::pow(2.0, double(wl.mu));
    const unsigned k = wl.numWitness();
    const unsigned s = wl.numSelectors();
    const double bw = cfg.bandwidthGBs;

    // The SumCheck unit's PL multipliers live in the forest; derate if the
    // forest is undersized for the configured PL demand.
    SumcheckUnitConfig sc = cfg.sumcheck;
    const double pl_demand = double(sc.numPEs) * double(sc.plMulsPerPe());
    if (!cfg.zkSpeedBaseline && pl_demand > 0)
        sc.plCapacityScale =
            std::min(1.0, cfg.forest.mulsPerCycle() / pl_demand);

    // ---- Step 1: Witness Commitments (k sparse MSMs) -------------------
    for (unsigned j = 0; j < k; ++j)
        res.steps.witnessMsm += cyclesToMs(
            simulateMsm(cfg.msm, MsmWorkload::sparse(n), bw, tech).cycles,
            tech);

    // ---- Step 2: Gate Identity (ZeroCheck) ------------------------------
    const PolyShape &gate_shape = wl.customGateWithFr
                                      ? *wl.customGateWithFr
                                      : cachedShape(gateZcRow(wl.sys));
    SumcheckWorkload gate_wl;
    gate_wl.shape = gate_shape;
    gate_wl.numVars = wl.mu;
    double zk_speed_prep_ms = 0;
    if (cfg.zkSpeedBaseline) {
        // zkSpeed builds f_r with a separate Build-MLE pass (write + read
        // back), and runs a fixed-function datapath wide enough for the
        // whole composite polynomial with a resident global scratchpad.
        sc.numEEs = unsigned(gate_shape.numSlots);
        sc.numPLs = unsigned(gate_shape.degree() + 1);
        sc.globalScratchpad = true;
        sc.fullyUnrolled = true;
        sc.fuseUpdates = cfg.zkSpeedPlusUpdates;
        gate_wl.fusedFrSlot = -1;
        zk_speed_prep_ms =
            cyclesToMs(simulateForest(cfg.forest, buildMleTask(wl.mu), bw,
                                      tech),
                       tech) +
            cyclesToMs(2.0 * n * Tech::frBytes / (bw / tech.clockGhz),
                       tech);
    } else {
        gate_wl.fusedFrSlot = int(gate_shape.numSlots) - 1; // f_r is last
    }
    SumcheckRunResult gate_run = simulateSumcheck(sc, gate_wl, bw, tech);
    res.steps.gateZeroCheck = cyclesToMs(gate_run.cycles, tech) +
                              zk_speed_prep_ms;
    res.sumcheckUtilization = gate_run.utilization;

    // ---- Step 3: Wire Identity ------------------------------------------
    // PermQuotGen streams N/D/phi; the phi commitment MSM and the product
    // tree consume the stream directly (Fig. 5), so the three overlap.
    PermQRunResult permq_run =
        simulatePermQ(cfg.permq, wl.mu, k, bw, tech);
    double msm_phi = cyclesToMs(
        simulateMsm(cfg.msm, MsmWorkload::dense(n), bw, tech).cycles, tech);
    double product = cyclesToMs(
        simulateForest(cfg.forest, productMleTask(wl.mu), bw, tech), tech);
    res.steps.wirePermQ = cyclesToMs(permq_run.cycles, tech);
    res.steps.wireProductTree = std::max(
        0.0, product - res.steps.wirePermQ); // overlapped remainder
    // v is committed once built: a dense MSM of 2N.
    double msm_v = cyclesToMs(
        simulateMsm(cfg.msm, MsmWorkload::dense(2.0 * n), bw, tech).cycles,
        tech);
    res.steps.wireMsm = std::max(0.0, msm_phi - res.steps.wirePermQ) + msm_v;

    const PolyShape perm_shape = wl.customGateWithFr
                                     ? permShapeFor(k)
                                     : cachedShape(permZcRow(wl.sys));
    SumcheckWorkload perm_wl;
    perm_wl.shape = perm_shape;
    perm_wl.numVars = wl.mu;
    if (cfg.zkSpeedBaseline) {
        SumcheckUnitConfig sc_perm = sc;
        sc_perm.numEEs = unsigned(perm_shape.numSlots);
        sc_perm.numPLs = unsigned(perm_shape.degree() + 1);
        perm_wl.fusedFrSlot = -1;
        res.steps.wirePermCheck = cyclesToMs(
            simulateSumcheck(sc_perm, perm_wl, bw, tech).cycles, tech);
    } else {
        perm_wl.fusedFrSlot = int(perm_shape.numSlots) - 1;
        res.steps.wirePermCheck = cyclesToMs(
            simulateSumcheck(sc, perm_wl, bw, tech).cycles, tech);
    }

    // ---- Step 4: Batch Evaluations --------------------------------------
    const unsigned opened_polys = s + 3 * k + 1;
    double batch = simulateForest(cfg.forest,
                                  batchEvalTask(wl.mu, opened_polys), bw,
                                  tech) +
                   simulateForest(cfg.forest, batchEvalTask(wl.mu + 1, 5),
                                  bw, tech);
    res.steps.batchEval = cyclesToMs(batch, tech);

    // ---- Step 5: Polynomial Opening --------------------------------------
    const PolyShape &open_shape = cachedShape(24);
    SumcheckWorkload open_wl;
    open_wl.shape = open_shape;
    open_wl.numVars = wl.mu;
    open_wl.fusedFrSlot = -1; // the f_ri selectors are ordinary dense MLEs
    res.steps.openCheck = cyclesToMs(
        simulateSumcheck(sc, open_wl, bw, tech).cycles, tech);
    // Build the f_ri eq tables feeding the OpenCheck (Forest).
    double fr_builds = 0;
    for (int i = 0; i < 6; ++i)
        fr_builds += simulateForest(cfg.forest, buildMleTask(wl.mu), bw,
                                    tech);
    res.steps.openCombine =
        cyclesToMs(fr_builds, tech) +
        cyclesToMs(simulateMleCombine(cfg.combine, wl.mu, opened_polys, bw,
                                      tech),
                   tech);
    // Quotient-commitment MSMs for the single combined opening (all claims
    // fold into one batched polynomial including v, so the halving quotient
    // sizes sum to ~2N -- "the combined polynomial commitment is then
    // opened using the MSM unit").
    res.steps.openMsm = cyclesToMs(
        simulateMsm(cfg.msm, MsmWorkload::dense(2.0 * n), bw, tech).cycles,
        tech);

    // ---- Masked ZeroCheck (paper §IV-A) ----------------------------------
    if (cfg.maskZeroCheck)
        res.maskedSavingMs =
            std::min(res.steps.gateZeroCheck,
                     res.steps.wireMsm + res.steps.wirePermQ);
    res.totalMs = res.steps.totalUnmasked() - res.maskedSavingMs;
    res.proofBytes = estimateProofBytes(wl.sys, wl.mu);
    return res;
}

double
estimateProofBytes(GateSystem sys, unsigned mu)
{
    const double fr_b = 32.0, pt_b = 48.0;
    const unsigned k = hyperplonk::numWitnessCols(sys);
    const unsigned s = hyperplonk::numSelectorCols(sys);
    const double d_gate = sys == GateSystem::Vanilla ? 4 : 7;
    const double d_perm = sys == GateSystem::Vanilla ? 5 : 7;
    double bytes = 0;
    bytes += (k + 2) * pt_b;                              // commitments
    bytes += (mu * d_gate + s + k + 1 + 1) * fr_b;        // gate ZC
    bytes += (mu * d_perm + 4 + 2 * k + 1 + 1) * fr_b;    // perm ZC
    bytes += (mu * 2.0 + 2 * (s + 3 * k + 1) + 1) * fr_b; // OpenCheck A
    bytes += ((mu + 1) * 2.0 + 10 + 1) * fr_b;            // OpenCheck B
    bytes += 2.0 * k * fr_b;                              // aux evals
    bytes += (2.0 * mu + 1) * pt_b;                       // PCS openings
    return bytes;
}

} // namespace zkphire::sim
