#include "sim/sumcheck_unit.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace zkphire::sim {

double
SumcheckUnitConfig::computeAreaMm2(const Tech &tech,
                                   bool include_pl_muls) const
{
    const double mul = tech.modmul255(fixedPrime);
    double muls_per_pe;
    if (fullyUnrolled && unrolledMulsPerPe > 0) {
        muls_per_pe = double(unrolledMulsPerPe);
    } else {
        muls_per_pe = double(updateMulsPerPe());
        if (include_pl_muls)
            muls_per_pe += double(plMulsPerPe());
    }
    // Extension engines are adder chains; charge ~15% of a multiplier each.
    const double ee_area = double(numEEs) * 0.15 * mul;
    return double(numPEs) * (muls_per_pe * mul + ee_area);
}

double
SumcheckUnitConfig::areaMm2(const Tech &tech, bool include_pl_muls) const
{
    return computeAreaMm2(tech, include_pl_muls) +
           sramMB() * tech.sramMm2PerMB;
}

namespace {

struct RoundSchedule {
    Schedule sched;
    std::vector<std::size_t> termK; // extension count per term (original)
};

double
ceilDiv(double a, double b)
{
    return std::ceil(a / b);
}

} // namespace

SumcheckRunResult
simulateSumcheck(const SumcheckUnitConfig &cfg, const SumcheckWorkload &wl,
                 double bandwidth_gbs, const Tech &tech)
{
    assert(wl.numVars >= 1);
    const unsigned mu = wl.numVars;
    const bool fused = wl.fusedFrSlot >= 0;
    const double n = std::pow(2.0, double(mu));
    const double bytes_per_cycle = bandwidth_gbs / tech.clockGhz;

    // Extension counts per term come from the ORIGINAL term degrees
    // (including f_r when present), independent of node decomposition.
    std::vector<std::size_t> term_k(wl.shape.numTerms());
    for (std::size_t t = 0; t < wl.shape.numTerms(); ++t)
        term_k[t] = wl.shape.termDegree(t) + 1;

    // Round-1 schedule: with f_r fused, one EE and one PL are reserved for
    // the Build-MLE lane (paper §III-F) and f_r is not fetched.
    const unsigned e1 = fused ? std::max(2u, cfg.numEEs - 1) : cfg.numEEs;
    const unsigned p1 = fused ? std::max(1u, cfg.numPLs - 1) : cfg.numPLs;
    PolyShape shape1 = fused
                           ? wl.shape.withoutSlot(std::uint32_t(wl.fusedFrSlot))
                           : wl.shape;
    Schedule sched1 = buildSchedule(shape1, e1, p1, cfg.scheduleKind);
    Schedule sched_rest =
        buildSchedule(wl.shape, cfg.numEEs, cfg.numPLs, cfg.scheduleKind);

    const std::size_t slots1 = shape1.uniqueSlots().size();
    const std::size_t slots_rest = wl.shape.uniqueSlots().size();

    const double total_muls_per_cycle =
        (cfg.fullyUnrolled && cfg.unrolledMulsPerPe > 0)
            ? double(cfg.numPEs) * double(cfg.unrolledMulsPerPe)
            : double(cfg.numPEs) *
                  double(cfg.plMulsPerPe() + cfg.updateMulsPerPe());

    SumcheckRunResult res;
    res.residentFromRound = mu + 1;
    bool resident = false;
    const double round_overhead = 2.0 * tech.sha3Latency +
                                  4.0 * tech.modmulLatency;

    for (unsigned r = 1; r <= mu; ++r) {
        const bool first = r == 1;
        const Schedule &sched = first ? sched1 : sched_rest;
        const unsigned p_eff = first ? p1 : cfg.numPLs;
        // pairs(1) = 2^(mu-1); round r >= 2 extends the freshly-updated
        // table of length 2^(mu-r+1), i.e. 2^(mu-r) pairs.
        const double pairs =
            first ? n / 2.0 : std::pow(2.0, double(mu - r));
        // Input table length read this round (before update).
        const double read_len = first ? n : pairs * 4.0;
        const std::size_t num_slots = first ? slots1 : slots_rest;

        // ---- compute -------------------------------------------------
        double node_cycles = 0;
        double pl_mul_ops = 0;
        const double pe_pairs = ceilDiv(pairs, double(cfg.numPEs));
        if (cfg.fullyUnrolled)
            node_cycles = pe_pairs; // one pair/PE/cycle, all terms parallel
        for (const ScheduleNode &node : sched.nodes) {
            const std::size_t k = term_k[node.term];
            const unsigned ii = Schedule::initiationInterval(k, p_eff);
            if (!cfg.fullyUnrolled)
                node_cycles += pe_pairs * double(ii);
            double factors_in_product =
                double(node.occurrences.size()) + double(node.tmpInputs()) +
                (node.treeCombine ? 2 : 0);
            if (first && fused && !node.writesTmpOut)
                factors_in_product += 1.0; // multiply f_r into the term
            if (factors_in_product >= 2.0)
                pl_mul_ops +=
                    pairs * double(k) * (factors_in_product - 1.0);
        }
        double update_elems = 0;
        double update_cycles = 0;
        if (!first) {
            update_elems = double(num_slots) * pairs * 2.0;
            update_cycles = update_elems /
                            (double(cfg.numPEs) *
                             double(cfg.updateMulsPerPe()));
        }
        if (cfg.plCapacityScale > 0 && cfg.plCapacityScale < 1.0)
            node_cycles /= cfg.plCapacityScale;
        double compute = cfg.fuseUpdates
                             ? std::max(node_cycles, update_cycles)
                             : node_cycles + update_cycles;
        // Build-MLE lane muls for the fused f_r construction in round 1.
        double build_muls = (first && fused) ? n : 0.0;

        // Per-tile fill/drain.
        if (!resident && !cfg.globalScratchpad) {
            const double tiles =
                ceilDiv(read_len, double(cfg.bankWords));
            compute += tiles * double(tech.tileFillOverhead);
        }

        // ---- memory ----------------------------------------------------
        double read_bytes = 0, write_bytes = 0;
        if (cfg.globalScratchpad) {
            if (first)
                for (std::uint32_t s : wl.shape.uniqueSlots())
                    if (!(fused && int(s) == wl.fusedFrSlot))
                        read_bytes += n * wl.shape.encodedBytes(s);
        } else if (!resident) {
            if (first) {
                for (std::uint32_t s : shape1.uniqueSlots())
                    read_bytes += n * shape1.encodedBytes(s);
                if (fused)
                    write_bytes += n * Tech::frBytes; // store built f_r
            } else if (r == 2) {
                // Re-read the originals (sparse encodings), update, write
                // the halved dense tables.
                for (std::uint32_t s : wl.shape.uniqueSlots()) {
                    double enc = (fused && int(s) == wl.fusedFrSlot)
                                     ? Tech::frBytes
                                     : wl.shape.encodedBytes(s);
                    read_bytes += n * enc;
                }
            } else {
                read_bytes +=
                    double(slots_rest) * read_len * Tech::frBytes;
            }
            // Residency cutover: the UPDATED tables (length 2*pairs for
            // r>=2) may fit on chip, eliminating this round's writeback and
            // all later traffic.
            if (!first) {
                const double next_len = pairs * 2.0;
                const bool fits =
                    next_len <= double(cfg.bankWords) &&
                    slots_rest <= cfg.numBuffers;
                if (fits) {
                    resident = true;
                    if (res.residentFromRound > mu)
                        res.residentFromRound = r;
                } else {
                    write_bytes +=
                        double(slots_rest) * next_len * Tech::frBytes;
                }
            }
        }
        const double mem_cycles =
            bytes_per_cycle > 0 ? (read_bytes + write_bytes) / bytes_per_cycle
                                : 0.0;

        res.computeCycles += compute;
        res.memCycles += mem_cycles;
        res.trafficBytes += read_bytes + write_bytes;
        res.usefulMulOps += pl_mul_ops + update_elems + build_muls;
        res.cycles += std::max(compute, mem_cycles) + round_overhead;
        res.trace.push_back(RoundTrace{r, compute, mem_cycles, read_bytes,
                                       write_bytes, resident});
    }

    res.utilization =
        res.cycles > 0 ? res.usefulMulOps / (total_muls_per_cycle * res.cycles)
                       : 0.0;
    return res;
}

} // namespace zkphire::sim
