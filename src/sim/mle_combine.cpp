#include "sim/mle_combine.hpp"

#include <algorithm>
#include <cmath>

namespace zkphire::sim {

double
simulateMleCombine(const MleCombineConfig &cfg, unsigned mu,
                   unsigned num_polys, double bandwidth_gbs, const Tech &tech)
{
    const double n = std::pow(2.0, double(mu));
    const double muls = n * double(num_polys);
    const double compute = muls / double(cfg.numLanes()) + tech.modmulLatency;
    // Read every input once, write the combined result.
    const double traffic = (double(num_polys) + 1.0) * n * Tech::frBytes;
    const double bytes_per_cycle = bandwidth_gbs / tech.clockGhz;
    const double mem = bytes_per_cycle > 0 ? traffic / bytes_per_cycle : 0.0;
    return std::max(compute, mem);
}

} // namespace zkphire::sim
