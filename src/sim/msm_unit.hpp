/**
 * @file
 * MSM unit performance model (Pippenger bucket method, paper §IV-B3; same
 * architecture as zkSpeed's MSM unit).
 *
 * Each PE is a fully-pipelined PADD datapath streaming points into
 * 2^window - 1 buckets per scalar window. Sparse MSMs (witness commitments,
 * where ~90% of scalars are 0/1) skip zero scalars entirely and fast-path
 * one scalars with a single accumulation, exactly like the functional
 * kernel in src/ec/msm.cpp. Aggregation runs the standard suffix-sum over
 * buckets plus window-combining doublings.
 */
#ifndef ZKPHIRE_SIM_MSM_UNIT_HPP
#define ZKPHIRE_SIM_MSM_UNIT_HPP

#include "sim/tech.hpp"

namespace zkphire::sim {

/** MSM unit configuration (Table III knobs). */
struct MsmUnitConfig {
    unsigned numPEs = 32;
    unsigned windowBits = 9;
    std::size_t pointsPerPe = 16 * 1024; ///< On-chip point buffer per PE.
    bool fixedPrime = true;

    double
    areaMm2(const Tech &tech) const
    {
        const double padd =
            double(tech.paddModmuls) * tech.modmul381(fixedPrime);
        return double(numPEs) * padd;
    }

    /** Bucket + point-buffer SRAM (3 Jacobian coords per bucket). */
    double
    sramMB() const
    {
        const double buckets = double(numPEs) *
                               double((std::size_t(1) << windowBits) - 1) *
                               3.0 * 48.0;
        const double points =
            double(numPEs) * double(pointsPerPe) * Tech::pointBytes;
        return (buckets + points) / (1024.0 * 1024.0);
    }
};

/** Scalar statistics of one MSM workload. */
struct MsmWorkload {
    double numPoints = 0;
    double fracZero = 0.0; ///< Scalars equal to 0 (skipped).
    double fracOne = 0.0;  ///< Scalars equal to 1 (single accumulate).

    /** Dense (full 255-bit) scalar fraction. */
    double fracDense() const { return 1.0 - fracZero - fracOne; }

    /** The paper's witness statistics: ~90% of entries in {0,1}. */
    static MsmWorkload
    sparse(double num_points)
    {
        return MsmWorkload{num_points, 0.60, 0.30};
    }
    static MsmWorkload
    dense(double num_points)
    {
        return MsmWorkload{num_points, 0.0, 0.0};
    }
};

/** Simulation outcome. */
struct MsmRunResult {
    double cycles = 0;
    double trafficBytes = 0;
    double pointAdds = 0;

    double timeMs(const Tech &tech = defaultTech()) const
    {
        return cycles / (tech.clockGhz * 1e6);
    }
};

/** Run the analytical MSM model. */
MsmRunResult simulateMsm(const MsmUnitConfig &cfg, const MsmWorkload &wl,
                         double bandwidth_gbs,
                         const Tech &tech = defaultTech());

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_MSM_UNIT_HPP
