#include "sim/msm_unit.hpp"

#include <cmath>

namespace zkphire::sim {

MsmRunResult
simulateMsm(const MsmUnitConfig &cfg, const MsmWorkload &wl,
            double bandwidth_gbs, const Tech &tech)
{
    MsmRunResult res;
    if (wl.numPoints <= 0)
        return res;

    const double scalar_bits = 255.0;
    const double windows = std::ceil(scalar_bits / double(cfg.windowBits));
    const double buckets = double((std::size_t(1) << cfg.windowBits) - 1);

    // Bucket phase: dense scalars touch one bucket per window; one-scalars
    // take a single accumulation; zeros are skipped.
    const double dense_adds = wl.numPoints * wl.fracDense() * windows;
    const double one_adds = wl.numPoints * wl.fracOne;
    // Aggregation: per PE and window, a suffix-sum over the buckets
    // (2 adds per bucket), then window combining with c doublings each.
    const double agg_adds =
        double(cfg.numPEs) * windows * 2.0 * buckets;
    const double combine_ops = windows * double(cfg.windowBits) +
                               windows; // doublings + window sums
    res.pointAdds = dense_adds + one_adds + agg_adds + combine_ops;

    // One PADD issue per cycle per PE; aggregation is also PADD-bound.
    const double compute_cycles =
        (dense_adds + one_adds) / double(cfg.numPEs) +
        windows * 2.0 * buckets + combine_ops + tech.paddLatency;

    // Traffic: points fetched for nonzero scalars; scalars streamed with
    // sparse encoding (1 bit for 0/1 entries + dense payloads).
    const double point_bytes =
        wl.numPoints * (1.0 - wl.fracZero) * Tech::pointBytes;
    const double scalar_bytes =
        wl.numPoints * ((wl.fracZero + wl.fracOne) / 8.0 +
                        wl.fracDense() * Tech::frBytes);
    res.trafficBytes = point_bytes + scalar_bytes;

    // Double-buffered point fetch overlaps with compute; MSMs have high
    // reuse and low bandwidth pressure (paper §IV-A), so the bound is the
    // max of the two.
    const double bytes_per_cycle = bandwidth_gbs / tech.clockGhz;
    const double mem_cycles =
        bytes_per_cycle > 0 ? res.trafficBytes / bytes_per_cycle : 0.0;
    res.cycles = std::max(compute_cycles, mem_cycles);
    return res;
}

} // namespace zkphire::sim
