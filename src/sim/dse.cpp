#include "sim/dse.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <thread>

namespace zkphire::sim {

DseGrid
DseGrid::coarse()
{
    DseGrid g;
    g.sumcheckPEs = {4, 16, 32};
    g.extensionEngines = {3, 5, 7};
    g.productLanes = {4, 6, 8};
    g.sramBankWords = {1u << 12, 1u << 14};
    g.msmPEs = {8, 16, 32};
    g.msmWindows = {8, 10};
    g.msmPointsPerPe = {4096, 16384};
    g.fracMlePEs = {2, 4};
    g.bandwidthsGBs = {256, 1024, 2048};
    return g;
}

std::vector<DsePoint>
paretoFilter(std::vector<DsePoint> points)
{
    std::sort(points.begin(), points.end(),
              [](const DsePoint &a, const DsePoint &b) {
                  if (a.runtimeMs != b.runtimeMs)
                      return a.runtimeMs < b.runtimeMs;
                  return a.areaMm2 < b.areaMm2;
              });
    std::vector<DsePoint> pareto;
    double best_area = std::numeric_limits<double>::infinity();
    for (DsePoint &p : points) {
        if (p.areaMm2 < best_area) {
            best_area = p.areaMm2;
            pareto.push_back(std::move(p));
        }
    }
    return pareto;
}

DseResult
runDse(const ProtocolWorkload &wl, const DseGrid &grid, unsigned threads,
       const Tech &tech)
{
    // Materialize all configurations first, then evaluate in parallel.
    std::vector<ChipConfig> configs;
    for (double bw : grid.bandwidthsGBs)
        for (unsigned sc_pe : grid.sumcheckPEs)
            for (unsigned ee : grid.extensionEngines)
                for (unsigned pl : grid.productLanes)
                    for (std::size_t bank : grid.sramBankWords)
                        for (unsigned msm_pe : grid.msmPEs)
                            for (unsigned w : grid.msmWindows)
                                for (std::size_t pts : grid.msmPointsPerPe)
                                    for (unsigned fq : grid.fracMlePEs) {
                                        ChipConfig cfg;
                                        cfg.sumcheck.numPEs = sc_pe;
                                        cfg.sumcheck.numEEs = ee;
                                        cfg.sumcheck.numPLs = pl;
                                        cfg.sumcheck.bankWords = bank;
                                        cfg.msm.numPEs = msm_pe;
                                        cfg.msm.windowBits = w;
                                        cfg.msm.pointsPerPe = pts;
                                        cfg.permq.numPEs = fq;
                                        cfg.forest.numTrees =
                                            ChipConfig::derivedForestTrees(
                                                cfg.sumcheck);
                                        cfg.bandwidthGBs = bw;
                                        cfg.setFixedPrime(true);
                                        configs.push_back(cfg);
                                    }

    std::vector<DsePoint> points(configs.size());
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1);
            if (i >= configs.size())
                return;
            DsePoint p;
            p.cfg = configs[i];
            p.runtimeMs = simulateProtocol(configs[i], wl, tech).totalMs;
            p.areaMm2 = configs[i].areaMm2(tech);
            points[i] = std::move(p);
        }
    };
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < std::max(1u, threads); ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    DseResult res;
    res.evaluatedPoints = points.size();
    for (double bw : grid.bandwidthsGBs) {
        std::vector<DsePoint> tier;
        for (const DsePoint &p : points)
            if (p.cfg.bandwidthGBs == bw)
                tier.push_back(p);
        res.perBandwidth.emplace_back(bw, paretoFilter(std::move(tier)));
    }
    res.globalPareto = paretoFilter(points);
    return res;
}

SumcheckDsePick
pickSumcheckDesign(const std::vector<PolyShape> &polys, double bandwidth_gbs,
                   const SumcheckDseOptions &opts, const Tech &tech)
{
    struct Candidate {
        SumcheckUnitConfig cfg;
        std::vector<double> runtimes;
        std::vector<double> utils;
    };
    std::vector<Candidate> cands;
    for (unsigned pe : opts.peChoices)
        for (unsigned ee : opts.eeChoices)
            for (unsigned pl : opts.plChoices)
                for (std::size_t bank : opts.bankChoices) {
                    SumcheckUnitConfig cfg;
                    cfg.numPEs = pe;
                    cfg.numEEs = ee;
                    cfg.numPLs = pl;
                    cfg.bankWords = bank;
                    cfg.fixedPrime = opts.fixedPrime;
                    if (cfg.areaMm2(tech) > opts.areaCapMm2)
                        continue;
                    Candidate c;
                    c.cfg = cfg;
                    for (const PolyShape &shape : polys) {
                        SumcheckWorkload wl;
                        wl.shape = shape;
                        wl.numVars = opts.numVars;
                        auto run =
                            simulateSumcheck(cfg, wl, bandwidth_gbs, tech);
                        c.runtimes.push_back(run.timeMs(tech));
                        c.utils.push_back(run.utilization);
                    }
                    cands.push_back(std::move(c));
                }

    // Per-polynomial best runtime in the (area-feasible) space.
    const std::size_t np = polys.size();
    std::vector<double> best(np, std::numeric_limits<double>::infinity());
    for (const Candidate &c : cands)
        for (std::size_t i = 0; i < np; ++i)
            best[i] = std::min(best[i], c.runtimes[i]);

    // Objective: (1-lambda)*geomean(slowdown) + lambda*(1 - mean(util)).
    SumcheckDsePick pick;
    double best_obj = std::numeric_limits<double>::infinity();
    for (const Candidate &c : cands) {
        double log_sd = 0, util = 0;
        for (std::size_t i = 0; i < np; ++i) {
            log_sd += std::log(c.runtimes[i] / best[i]);
            util += c.utils[i];
        }
        double geo_sd = std::exp(log_sd / double(np));
        double mean_util = util / double(np);
        double obj = (1.0 - opts.lambda) * geo_sd +
                     opts.lambda * (1.0 - mean_util);
        if (obj < best_obj) {
            best_obj = obj;
            pick.cfg = c.cfg;
            pick.objective = obj;
            pick.meanUtilization = mean_util;
            pick.runtimesMs = c.runtimes;
        }
    }
    return pick;
}

} // namespace zkphire::sim
