/**
 * @file
 * Instruction stream for the programmable SumCheck unit (paper §III-E):
 * "the scheduler generates a list of computational steps, including
 * MLE-to-EE mappings, prefetch ordering, and schedules for specific (K, P)
 * settings... annotated with signals for control registers, address
 * offsets, and FSM configuration. They are then loaded into on-chip
 * controllers as instructions."
 *
 * compileProgram lowers a Schedule into that controller-facing form: one
 * PREFETCH/EXEC pair per node plus the per-round bookkeeping ops. The
 * disassembly is human-readable and stable, so tests can lock the ISA
 * down; sizeBytes() estimates the control-store footprint.
 */
#ifndef ZKPHIRE_SIM_PROGRAM_HPP
#define ZKPHIRE_SIM_PROGRAM_HPP

#include <string>
#include <vector>

#include "sim/sumcheck_sched.hpp"

namespace zkphire::sim {

/** Controller opcodes. */
enum class Opcode : std::uint8_t {
    Prefetch,  ///< Bring tiles of listed slots into scratchpad banks.
    Exec,      ///< Run one schedule node: EE mapping + PL routing.
    Hash,      ///< Squeeze the round challenge from the SHA3 unit.
    Update,    ///< Fold all resident tables with the round challenge.
    WriteBack, ///< Drain updated tables to off-chip FIFOs.
    Halt,
};

/** One instruction word. */
struct Instruction {
    Opcode op = Opcode::Halt;
    std::uint32_t term = 0;       ///< Exec: term id.
    std::vector<std::uint32_t> slots; ///< Exec: EE slot mapping; Prefetch:
                                      ///< banks to fill.
    std::uint8_t useTmp = 0;      ///< Exec: multiply Tmp into products.
    std::uint8_t writeTmp = 0;    ///< Exec: route products to Tmp buffer.
    std::uint8_t initiationInterval = 1; ///< Exec: PL II for this node.
    std::uint8_t extensions = 0;  ///< Exec: K evaluation points.

    std::string toString() const;
};

/** A compiled SumCheck program. */
struct SumcheckProgram {
    std::vector<Instruction> code;
    unsigned numEEs = 0;
    unsigned numPLs = 0;

    /** Human-readable listing. */
    std::string disassemble() const;

    /** Control-store footprint: opcode + flags + slot list entries. */
    std::size_t sizeBytes() const;

    /** Number of Exec instructions (== schedule nodes). */
    std::size_t numExecOps() const;
};

/**
 * Lower a schedule to instructions. Emits, in order: per node a Prefetch
 * (when the node first touches slots) and an Exec; then Hash, Update,
 * WriteBack, and a trailing Halt — the per-round loop body the FSM
 * repeats with halved address ranges.
 */
SumcheckProgram compileProgram(const PolyShape &shape,
                               const Schedule &sched);

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_PROGRAM_HPP
