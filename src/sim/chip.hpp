/**
 * @file
 * Full-chip zkPHIRE model (paper §IV, Fig. 4): composes the SumCheck unit,
 * Multifunction Forest, MSM unit, Permutation Quotient Generator, and MLE
 * Combine into the five-step HyperPlonk protocol, with the Masked-ZeroCheck
 * scheduling optimization, area/power roll-up (Table V), and a proof-size
 * model. Baseline switches reproduce zkSpeed / zkSpeed+ in the same
 * framework for the iso-area comparisons.
 */
#ifndef ZKPHIRE_SIM_CHIP_HPP
#define ZKPHIRE_SIM_CHIP_HPP

#include <memory>
#include <string>

#include "hyperplonk/circuit.hpp"
#include "sim/forest.hpp"
#include "sim/mle_combine.hpp"
#include "sim/msm_unit.hpp"
#include "sim/permq.hpp"
#include "sim/sumcheck_unit.hpp"

namespace zkphire::sim {

using hyperplonk::GateSystem;

/** Area breakdown in mm^2 (Table V / Fig. 11 categories). */
struct AreaBreakdown {
    double msm = 0;
    double forest = 0;
    double sumcheck = 0; ///< Update units + EEs + control (PLs live in forest).
    double other = 0;    ///< PermQuotGen, MLE Combine, SHA3.
    double sram = 0;
    double interconnect = 0;
    double hbmPhy = 0;
    double compute() const { return msm + forest + sumcheck + other; }
    double total() const
    {
        return compute() + sram + interconnect + hbmPhy;
    }
};

/** Average power breakdown in W (Table V categories). */
struct PowerBreakdown {
    double msm = 0, forest = 0, sumcheck = 0, other = 0;
    double sram = 0, interconnect = 0, hbmPhy = 0;
    double total() const
    {
        return msm + forest + sumcheck + other + sram + interconnect +
               hbmPhy;
    }
};

/** Full accelerator configuration. */
struct ChipConfig {
    SumcheckUnitConfig sumcheck;
    MsmUnitConfig msm;
    ForestConfig forest;
    PermQConfig permq;
    MleCombineConfig combine;
    double bandwidthGBs = 2048;
    bool maskZeroCheck = true;
    /** zkSpeed-style fixed-function SumCheck + resident scratchpad. */
    bool zkSpeedBaseline = false;
    /** With zkSpeedBaseline: pipeline updates (zkSpeed+ vs zkSpeed). */
    bool zkSpeedPlusUpdates = true;

    /** The paper's Table V exemplar: 294 mm^2, 2 TB/s, fixed primes. */
    static ChipConfig exemplar();

    /** Derive forest size from SumCheck PL demand (80 trees at exemplar). */
    static unsigned derivedForestTrees(const SumcheckUnitConfig &sc);

    /** Propagate the fixed/arbitrary prime choice to all units. */
    void setFixedPrime(bool fixed);

    AreaBreakdown areaBreakdown(const Tech &tech = defaultTech()) const;
    PowerBreakdown powerBreakdown(const Tech &tech = defaultTech()) const;
    double areaMm2(const Tech &tech = defaultTech()) const
    {
        return areaBreakdown(tech).total();
    }
    /** Total modular multipliers on chip (Table IX accounting). */
    unsigned totalModmuls() const;
};

/** Protocol workload description. */
struct ProtocolWorkload {
    GateSystem sys = GateSystem::Jellyfish;
    unsigned mu = 24; ///< log2 gate count for this arithmetization.
    /**
     * Optional custom gate (paper §VI-B5's high-degree sweep): the gate
     * constraint INCLUDING a trailing f_r slot, with explicit column
     * widths. When set, it replaces the Vanilla/Jellyfish gate identity.
     */
    std::shared_ptr<const PolyShape> customGateWithFr;
    unsigned customWitnesses = 0;
    unsigned customSelectors = 0;

    static ProtocolWorkload
    vanilla(unsigned mu)
    {
        ProtocolWorkload w;
        w.sys = GateSystem::Vanilla;
        w.mu = mu;
        return w;
    }
    static ProtocolWorkload
    jellyfish(unsigned mu)
    {
        ProtocolWorkload w;
        w.sys = GateSystem::Jellyfish;
        w.mu = mu;
        return w;
    }
    /** Fig. 14 workload: a custom gate with explicit witness/selector
     *  counts (f_r slot appended here). */
    static ProtocolWorkload custom(const gates::Gate &gate, unsigned mu,
                                   unsigned witnesses, unsigned selectors);

    unsigned numWitness() const
    {
        return customGateWithFr ? customWitnesses
                                : hyperplonk::numWitnessCols(sys);
    }
    unsigned numSelectors() const
    {
        return customGateWithFr ? customSelectors
                                : hyperplonk::numSelectorCols(sys);
    }
};

/** Per-step runtimes in milliseconds (Fig. 11/12 categories). */
struct StepTimes {
    double witnessMsm = 0;
    double gateZeroCheck = 0;
    double wirePermQ = 0;
    double wireProductTree = 0;
    double wireMsm = 0;
    double wirePermCheck = 0;
    double batchEval = 0;
    double openCheck = 0;
    double openCombine = 0;
    double openMsm = 0;

    double wireIdentity() const
    {
        return wirePermQ + wireProductTree + wireMsm + wirePermCheck;
    }
    double polyOpen() const { return openCheck + openCombine + openMsm; }
    double totalUnmasked() const
    {
        return witnessMsm + gateZeroCheck + wireIdentity() + batchEval +
               polyOpen();
    }
};

/** Simulation result for one protocol run. */
struct ChipRunResult {
    StepTimes steps;
    double maskedSavingMs = 0; ///< Gate-ZeroCheck time hidden under MSMs.
    double totalMs = 0;
    double proofBytes = 0;
    /** SumCheck modmul utilization (gate ZeroCheck run). */
    double sumcheckUtilization = 0;
};

/** Run the five-step protocol on a chip configuration. */
ChipRunResult simulateProtocol(const ChipConfig &cfg,
                               const ProtocolWorkload &wl,
                               const Tech &tech = defaultTech());

/** Analytic proof-size model (compressed encodings; see proof.cpp). */
double estimateProofBytes(GateSystem sys, unsigned mu);

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_CHIP_HPP
