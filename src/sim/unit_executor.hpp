/**
 * @file
 * Functional model of the programmable SumCheck unit.
 *
 * Executes a compiled schedule (sim/sumcheck_sched) on REAL field data,
 * emulating the datapath of Fig. 3 structure-for-structure: per pair,
 * Extension Engines produce each node's K evaluations, Product Lanes
 * multiply them (chaining partial products through the Tmp MLE buffer for
 * multi-node terms), and per-term accumulation registers collect the
 * sums. At round end, each term's d_t+1 accumulated values are extended to
 * the composite degree grid (the "early exit" optimization — a term's
 * univariate contribution is degree d_t, so extrapolating the accumulated
 * sums is exact), coefficients are applied, and the round polynomial is
 * emitted. MLE Update units then fold every table with the Fiat-Shamir
 * challenge.
 *
 * The executor must produce byte-identical proofs to the reference prover
 * (src/sumcheck/prover.cpp); the equivalence tests in
 * tests/test_unit_executor.cpp are what ties the performance model's
 * schedules to functional correctness.
 */
#ifndef ZKPHIRE_SIM_UNIT_EXECUTOR_HPP
#define ZKPHIRE_SIM_UNIT_EXECUTOR_HPP

#include "poly/virtual_poly.hpp"
#include "sim/sumcheck_sched.hpp"
#include "sumcheck/prover.hpp"

namespace zkphire::sim {

using ff::Fr;

/** Per-run statistics from the functional execution. */
struct ExecutorStats {
    std::uint64_t extensions = 0; ///< EE evaluation values produced.
    std::uint64_t products = 0;   ///< PL multiplications performed.
    std::uint64_t updates = 0;    ///< MLE Update multiplications.
    std::uint64_t tmpWrites = 0;  ///< Tmp MLE buffer writebacks.
};

/**
 * Run the full SumCheck protocol through the modeled datapath.
 *
 * @param poly    Composite polynomial with bound tables (consumed).
 * @param num_ees Extension engines per PE (schedule width).
 * @param num_pls Product lanes (affects only scheduling, not results).
 * @param tr      Fiat-Shamir transcript (must match the verifier's).
 * @param kind    Accumulation-chain or balanced-tree decomposition.
 * @param stats   Optional op-count output.
 *
 * @return Exactly what sumcheck::prove would return for the same inputs.
 */
sumcheck::ProverOutput executeOnUnit(
    poly::VirtualPoly poly, unsigned num_ees, unsigned num_pls,
    hash::Transcript &tr, ScheduleKind kind = ScheduleKind::Accumulation,
    ExecutorStats *stats = nullptr);

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_UNIT_EXECUTOR_HPP
