/**
 * @file
 * Baseline performance models: multi-threaded CPU and A100-class GPU.
 *
 * Both are operation-count / traffic models with a small number of fitted
 * constants (see DESIGN.md's calibration policy): the op counts are exact
 * (derived from the same polynomial shapes and Pippenger structure as the
 * functional kernels), while the fitted constants set the absolute level
 * and are anchored to the paper's reported CPU/GPU columns (Table II for
 * the 4-thread SumCheck CPU and the GPU, Tables VI/VII for the 32-thread
 * protocol CPU). EXPERIMENTS.md reports the fit quality.
 */
#ifndef ZKPHIRE_SIM_BASELINE_HPP
#define ZKPHIRE_SIM_BASELINE_HPP

#include "sim/chip.hpp"
#include "sim/sumcheck_sched.hpp"

namespace zkphire::sim {

/**
 * Multi-threaded CPU model (AMD EPYC 7502-class).
 *
 * SumCheck time follows an additive roofline
 *     t = bytes / streamGBs + muls / mulGps,
 * i.e. the naive prover alternates bandwidth-bound table walks with
 * compute-bound product evaluation. The two 4-thread constants were fitted
 * jointly to the seven Table II CPU anchors (fit quality ~±12%; see
 * bench_calibration); the 32-thread constants to Tables VI/VII.
 */
struct CpuModel {
    unsigned threads = 32;

    /** Effective streaming bandwidth (GB/s) of the SumCheck inner loop. */
    double
    streamGBs() const
    {
        return threads <= 4 ? 1.48 : 2.2;
    }
    /** Effective modular-multiplication throughput (Gmul/s). */
    double
    mulGps() const
    {
        return threads <= 4 ? 0.10 : 0.30;
    }
    /**
     * Effective ns per Fq (381-bit) modular multiplication inside the MSM
     * pipeline — the primary fitted MSM constant since the PR 5 refit:
     * the MSM model now counts field multiplications of the real
     * signed-digit/batched-affine kernel structure (msmFieldMuls) and
     * this constant sets the absolute level. Fitted so the new structural
     * model reproduces the previous anchor-fitted model (and so Tables
     * VI/VII) within ~10% across mu = 12..27.
     */
    double
    nsPerFieldMul() const
    {
        return threads <= 4 ? 27.4 : 7.2;
    }

    /** Total modular multiplications of a SumCheck prover run. */
    static double sumcheckModmuls(const PolyShape &shape, unsigned mu);

    /** Total bytes the SumCheck prover streams (reads + fold writes). */
    static double sumcheckBytes(const PolyShape &shape, unsigned mu);

    /** SumCheck prover time (ms). */
    double sumcheckMs(const PolyShape &shape, unsigned mu) const;

    /**
     * Fq multiplications of an MSM of n points with given sparsity, using
     * the overhauled kernel's structure: signed-digit windows at the same
     * argmin width the kernel picks, batched-affine bucket adds for dense
     * scalars (~5.8 M amortized), one mixed add per {1} scalar, free {0}
     * scalars, and mixed+full aggregation adds per bucket.
     */
    static double msmFieldMuls(const MsmWorkload &wl);

    /** msmFieldMuls expressed in Jacobian-mixed-add equivalents (kept for
     *  callers thinking in point adds; 1 add == ~10.2 Fq muls). */
    static double msmPointAdds(const MsmWorkload &wl);

    /** MSM time (ms). */
    double msmMs(const MsmWorkload &wl) const;

    /** Full HyperPlonk prover time (ms) for a protocol workload. */
    double protocolMs(const ProtocolWorkload &wl) const;

    /** Step breakdown matching Fig. 12a's categories. */
    struct ProtocolBreakdown {
        double sparseMsm = 0, gateIdentity = 0, genPermMles = 0,
               permDenseMsm = 0, permCheck = 0, batchEvals = 0,
               mleCombine = 0, openCheck = 0, polyOpenMsm = 0;
        double total() const
        {
            return sparseMsm + gateIdentity + genPermMles + permDenseMsm +
                   permCheck + batchEvals + mleCombine + openCheck +
                   polyOpenMsm;
        }
    };
    ProtocolBreakdown protocolBreakdown(const ProtocolWorkload &wl) const;
};

/** A100-class GPU SumCheck model (ICICLE-like). */
struct GpuModel {
    double bandwidthGBs = 1600.0; ///< A100 40 GB HBM2e.
    /** Achieved fraction of peak bandwidth for SumCheck kernels (fitted). */
    double efficiency = 0.0075;
    /** Per-round kernel launch + challenge round trip (ms, fitted). */
    double perRoundOverheadMs = 0.8;
    /** ICICLE supports at most 8 unique constituent polynomials. */
    unsigned maxUniqueMles = 8;

    /** Whether the library can run this composition at all. */
    bool
    supports(const PolyShape &shape) const
    {
        return shape.uniqueSlots().size() <= maxUniqueMles;
    }

    /** SumCheck time (ms); asserts supports(shape). */
    double sumcheckMs(const PolyShape &shape, unsigned mu) const;
};

} // namespace zkphire::sim

#endif // ZKPHIRE_SIM_BASELINE_HPP
