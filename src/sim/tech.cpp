#include "sim/tech.hpp"

namespace zkphire::sim {

const Tech &
defaultTech()
{
    static const Tech tech;
    return tech;
}

} // namespace zkphire::sim
