#include "gadgets/rescue.hpp"

#include <cassert>

namespace zkphire::gadgets {

using hyperplonk::GateSystem;

const ff::BigInt<4> &
invFifthExponent()
{
    // 5^(-1) mod (r - 1): (x^e)^5 == x for all x in Fr*. Cross-checked in
    // tests against independent exponentiation.
    static const auto e = ff::BigInt<4>::fromHex(
        "0x2e5f0fbadd72321ce14a56699d73f002"
        "217f0e679998f19933333332cccccccd");
    return e;
}

const RescueParams &
RescueParams::standard()
{
    static const RescueParams params = [] {
        RescueParams p;
        ff::Rng rng(0x7265736375650a01ull); // "rescue" seed
        for (auto &row : p.mds)
            for (auto &x : row)
                x = Fr::random(rng);
        p.constants.resize(rounds);
        for (auto &rc : p.constants)
            for (auto &half : rc)
                for (auto &x : half)
                    x = Fr::random(rng);
        return p;
    }();
    return params;
}

namespace {

constexpr unsigned kWidth = RescueParams::width;

std::array<Fr, kWidth>
mixLayer(const std::array<Fr, kWidth> &state,
         const std::array<std::array<Fr, kWidth>, kWidth> &mds,
         const std::array<Fr, kWidth> &constants)
{
    std::array<Fr, kWidth> out;
    for (unsigned i = 0; i < kWidth; ++i) {
        Fr acc = constants[i];
        for (unsigned j = 0; j < kWidth; ++j)
            acc += mds[i][j] * state[j];
        out[i] = acc;
    }
    return out;
}

Fr
pow5(const Fr &x)
{
    return x.square().square() * x;
}

} // namespace

std::array<Fr, kWidth>
rescuePermutation(std::array<Fr, kWidth> state, const RescueParams &params)
{
    for (unsigned r = 0; r < RescueParams::rounds; ++r) {
        for (auto &x : state)
            x = pow5(x);
        state = mixLayer(state, params.mds, params.constants[r][0]);
        for (auto &x : state)
            x = x.pow(invFifthExponent());
        state = mixLayer(state, params.mds, params.constants[r][1]);
    }
    return state;
}

Fr
rescueHash(const Fr &a, const Fr &b, const RescueParams &params)
{
    return rescuePermutation({a, b, Fr::zero()}, params)[0];
}

std::array<Cell, kWidth>
addRescuePermutation(Circuit &circuit, const std::array<Cell, kWidth> &input,
                     const RescueParams &params)
{
    assert(circuit.system() == GateSystem::Jellyfish);
    std::array<Cell, kWidth> cells = input;
    std::array<Fr, kWidth> vals;
    for (unsigned i = 0; i < kWidth; ++i)
        vals[i] = circuit.witness(cells[i]);

    auto sbox_forward = [&] {
        for (unsigned i = 0; i < kWidth; ++i) {
            Cell out = circuit.addPow5(vals[i]);
            circuit.copy(cells[i], Cell{0, out.row});
            cells[i] = out;
            vals[i] = pow5(vals[i]);
        }
    };
    auto sbox_backward = [&] {
        for (unsigned i = 0; i < kWidth; ++i) {
            // Prover supplies y = x^(1/5); the row constrains y^5 == x by
            // wiring the pow5 OUTPUT back to the current state cell.
            Fr y = vals[i].pow(invFifthExponent());
            Cell out = circuit.addPow5(y);
            circuit.copy(cells[i], out);
            cells[i] = Cell{0, out.row}; // the y input becomes the state
            vals[i] = y;
        }
    };
    auto mix = [&](const std::array<Fr, kWidth> &constants) {
        std::array<Cell, kWidth> next_cells;
        std::array<Fr, kWidth> next_vals;
        for (unsigned i = 0; i < kWidth; ++i) {
            Fr w[4] = {vals[0], vals[1], vals[2], Fr::zero()};
            Fr q[4] = {params.mds[i][0], params.mds[i][1], params.mds[i][2],
                       Fr::zero()};
            Cell out = circuit.addLinearCombination(
                std::span<const Fr, 4>(w, 4), std::span<const Fr, 4>(q, 4),
                constants[i]);
            for (unsigned j = 0; j < kWidth; ++j)
                circuit.copy(cells[j], Cell{j, out.row});
            next_cells[i] = out;
            next_vals[i] = circuit.witness(out);
        }
        cells = next_cells;
        vals = next_vals;
    };

    for (unsigned r = 0; r < RescueParams::rounds; ++r) {
        sbox_forward();
        mix(params.constants[r][0]);
        sbox_backward();
        mix(params.constants[r][1]);
    }
    return cells;
}

RescuePreimageCircuit
buildRescuePreimageCircuit(const Fr &a, const Fr &b)
{
    RescuePreimageCircuit out{Circuit(GateSystem::Jellyfish), Fr::zero()};
    Circuit &c = out.circuit;
    std::array<Cell, kWidth> state = {c.addInput(a), c.addInput(b),
                                      c.addZero()};
    std::array<Cell, kWidth> final_state = addRescuePermutation(c, state);
    out.digest = c.witness(final_state[0]);
    // Bind the public digest: pinned cell wired to the output lane.
    Cell pin = c.addPinned(out.digest);
    c.copy(final_state[0], pin);
    c.padToPowerOfTwo();
    return out;
}

} // namespace zkphire::gadgets
