/**
 * @file
 * A short-Weierstrass curve over the BLS12-381 scalar field:
 * E: y^2 = x^3 + 5 — exactly the curve form the paper's Halo2 constraints
 * (Table I rows 3-19) enforce. In Halo2 this is the Pallas/Vesta pattern:
 * the circuit field is the curve's base field, so in-circuit EC arithmetic
 * needs no non-native arithmetic.
 *
 * This module provides honest-witness generation for those gates: real
 * points, real incomplete additions with their slopes, and the auxiliary
 * inverse hints (alpha, beta, gamma, delta) the complete-addition rows
 * consume. tests/test_gadgets.cpp runs ZeroChecks over Table I rows with
 * these witnesses — the constraints vanish on real data and catch
 * corrupted data.
 */
#ifndef ZKPHIRE_GADGETS_TOY_CURVE_HPP
#define ZKPHIRE_GADGETS_TOY_CURVE_HPP

#include <optional>
#include <vector>

#include "ff/fr.hpp"
#include "ff/rng.hpp"

namespace zkphire::gadgets {

using ff::Fr;

/** Affine point on y^2 = x^3 + 5 over Fr; default is the identity. */
struct ToyPoint {
    Fr x;
    Fr y;
    bool infinity = true;

    bool isOnCurve() const;
    bool operator==(const ToyPoint &o) const = default;
};

/** The curve constant b = 5. */
const Fr &toyCurveB();

/** Find the curve point with the smallest x >= x_start (by residue scan). */
ToyPoint findPoint(std::uint64_t x_start = 1);

/** A pseudo-random point: scalar multiple of findPoint(1). */
ToyPoint randomPoint(ff::Rng &rng);

/** Full affine addition (handles identity, doubling, inverse points). */
ToyPoint add(const ToyPoint &p, const ToyPoint &q);

/** Double-and-add scalar multiplication. */
ToyPoint mul(const ToyPoint &p, std::uint64_t k);

/**
 * Witness row for the incomplete-addition constraints (Table I rows 6-7):
 * distinct, non-inverse points P, Q and their sum R, plus the slope.
 * @pre p.x != q.x.
 */
struct IncompleteAddWitness {
    Fr xp, yp, xq, yq, xr, yr;
    Fr lambda; // (yq - yp) / (xq - xp)
};
IncompleteAddWitness incompleteAddWitness(const ToyPoint &p,
                                          const ToyPoint &q);

} // namespace zkphire::gadgets

#endif // ZKPHIRE_GADGETS_TOY_CURVE_HPP
