/**
 * @file
 * A Rescue-style arithmetization-friendly permutation over Fr, and its
 * Jellyfish-gate circuit — the paper's "2^12 Rescue Hashes" workload made
 * concrete. Rescue is exactly why Jellyfish gates exist: its S-boxes are
 * x -> x^5 (one qH row each) and x -> x^(1/5) (one qH row run "backwards":
 * the prover supplies y and the row constrains y^5 = x), and its MDS layer
 * is a handful of fused multiply-add rows. A Vanilla mapping needs ~3x the
 * rows for each x^5 alone.
 *
 * Parameters (width 3, 8 double-rounds, fixed pseudo-random constants) are
 * demonstration-grade, NOT a vetted Rescue-Prime instance — the point is
 * the circuit structure and its cost, not a production hash.
 */
#ifndef ZKPHIRE_GADGETS_RESCUE_HPP
#define ZKPHIRE_GADGETS_RESCUE_HPP

#include <array>

#include "hyperplonk/circuit.hpp"

namespace zkphire::gadgets {

using ff::Fr;
using hyperplonk::Cell;
using hyperplonk::Circuit;

/** Rescue-style permutation parameters. */
struct RescueParams {
    static constexpr unsigned width = 3;
    static constexpr unsigned rounds = 8; ///< Double rounds.

    std::array<std::array<Fr, width>, width> mds;
    /** Round constants: [round][half][lane]. */
    std::vector<std::array<std::array<Fr, width>, 2>> constants;

    /** Deterministic parameters derived from a seed. */
    static const RescueParams &standard();
};

/** Out-of-circuit evaluation of the permutation. */
std::array<Fr, RescueParams::width>
rescuePermutation(std::array<Fr, RescueParams::width> state,
                  const RescueParams &params = RescueParams::standard());

/** 2-to-1 sponge-style hash: absorb (a, b), capacity lane fixed to 0. */
Fr rescueHash(const Fr &a, const Fr &b,
              const RescueParams &params = RescueParams::standard());

/**
 * Append a full permutation to a Jellyfish circuit: the input state cells
 * must already exist in the circuit; returns the output state cells. All
 * intermediate wiring is enforced with copy constraints.
 */
std::array<Cell, RescueParams::width>
addRescuePermutation(Circuit &circuit,
                     const std::array<Cell, RescueParams::width> &input,
                     const RescueParams &params = RescueParams::standard());

/**
 * Build a complete circuit proving knowledge of (a, b) with
 * rescueHash(a, b) == digest. Returns the circuit (padded) and the digest.
 */
struct RescuePreimageCircuit {
    Circuit circuit;
    Fr digest;
};
RescuePreimageCircuit buildRescuePreimageCircuit(const Fr &a, const Fr &b);

/** The exponent 1/5 mod (r - 1), for the inverse S-box witness. */
const ff::BigInt<4> &invFifthExponent();

} // namespace zkphire::gadgets

#endif // ZKPHIRE_GADGETS_RESCUE_HPP
