#include "gadgets/toy_curve.hpp"

#include <cassert>

namespace zkphire::gadgets {

const Fr &
toyCurveB()
{
    static const Fr b = Fr::fromU64(5);
    return b;
}

bool
ToyPoint::isOnCurve() const
{
    if (infinity)
        return true;
    return y.square() == x.square() * x + toyCurveB();
}

ToyPoint
findPoint(std::uint64_t x_start)
{
    for (std::uint64_t xi = x_start;; ++xi) {
        Fr x = Fr::fromU64(xi);
        Fr rhs = x.square() * x + toyCurveB();
        Fr y;
        if (rhs.sqrt(y))
            return ToyPoint{x, y, false};
    }
}

ToyPoint
randomPoint(ff::Rng &rng)
{
    // Nonzero scalar below 2^62 keeps this cheap and deterministic.
    std::uint64_t k = (rng.next() >> 2) | 1;
    return mul(findPoint(1), k);
}

ToyPoint
add(const ToyPoint &p, const ToyPoint &q)
{
    if (p.infinity)
        return q;
    if (q.infinity)
        return p;
    Fr lambda;
    if (p.x == q.x) {
        if (p.y == q.y.neg() || p.y.isZero())
            return ToyPoint{}; // P + (-P) = O
        // Doubling: lambda = 3x^2 / 2y (a = 0).
        lambda = Fr::fromU64(3) * p.x.square() * p.y.dbl().inverse();
    } else {
        lambda = (q.y - p.y) * (q.x - p.x).inverse();
    }
    ToyPoint r;
    r.infinity = false;
    r.x = lambda.square() - p.x - q.x;
    r.y = lambda * (p.x - r.x) - p.y;
    return r;
}

ToyPoint
mul(const ToyPoint &p, std::uint64_t k)
{
    ToyPoint acc; // identity
    ToyPoint base = p;
    while (k) {
        if (k & 1)
            acc = add(acc, base);
        base = add(base, base);
        k >>= 1;
    }
    return acc;
}

IncompleteAddWitness
incompleteAddWitness(const ToyPoint &p, const ToyPoint &q)
{
    assert(!p.infinity && !q.infinity && !(p.x == q.x) &&
           "incomplete addition requires distinct x coordinates");
    ToyPoint r = add(p, q);
    IncompleteAddWitness w;
    w.xp = p.x;
    w.yp = p.y;
    w.xq = q.x;
    w.yq = q.y;
    w.xr = r.x;
    w.yr = r.y;
    w.lambda = (q.y - p.y) * (q.x - p.x).inverse();
    return w;
}

} // namespace zkphire::gadgets
