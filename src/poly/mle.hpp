/**
 * @file
 * Multilinear extensions (MLEs) stored as dense evaluation tables.
 *
 * An Mle over mu variables is the table of its 2^mu evaluations on the
 * boolean hypercube, "flat lookup tables indexed by binary inputs" as the
 * paper puts it. Index convention (DESIGN.md): little-endian — bit 0 of the
 * table index is X1, the first variable a SumCheck round sums over and then
 * fixes. Consequently "MLE Update" (fixing X1 := r) combines adjacent entry
 * pairs (2j, 2j+1), exactly the pairing shown in Fig. 1 of the paper.
 *
 * Tables live in a poly::FrTable (mle_store.hpp), which transparently picks
 * the in-RAM or mmap-slab streaming backend by size — every operation here
 * is bit-identical under either backend.
 */
#ifndef ZKPHIRE_POLY_MLE_HPP
#define ZKPHIRE_POLY_MLE_HPP

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "ff/fr.hpp"
#include "ff/rng.hpp"
#include "poly/mle_store.hpp"

namespace zkphire::poly {

using ff::Fr;

/** Fraction of entries that are 0 / 1 / other, consumed by the traffic model. */
struct SparsityStats {
    double fracZero = 0.0;
    double fracOne = 0.0;
    /** Fraction of full-width (255-bit) entries. */
    double fracDense() const { return 1.0 - fracZero - fracOne; }
};

/**
 * Dense multilinear extension table over the boolean hypercube.
 */
class Mle
{
  public:
    Mle() = default;

    /** Construct a zero MLE over num_vars variables. */
    explicit Mle(unsigned num_vars);

    /** Adopt an existing evaluation table; size must be a power of two. */
    explicit Mle(std::vector<Fr> evals);

    /** Adopt a storage table; size must be a power of two. */
    explicit Mle(FrTable table);

    /** Constant polynomial c over num_vars variables. */
    static Mle constant(unsigned num_vars, const Fr &c);

    /** Uniformly random table (witness-style test data). */
    static Mle random(unsigned num_vars, ff::Rng &rng);

    /**
     * Sparse random table mimicking the witness statistics the paper models
     * (~90% of entries in {0,1}): each entry is 0 with probability p_zero,
     * 1 with probability p_one, otherwise uniform.
     */
    static Mle randomSparse(unsigned num_vars, ff::Rng &rng, double p_zero,
                            double p_one);

    /**
     * The eq(x, r) table: eq(x,r) = prod_i (x_i r_i + (1-x_i)(1-r_i)).
     * This is the paper's "Build MLE" kernel constructing the ZeroCheck
     * masking polynomial f_r from the challenge vector r. Built chunk-local
     * via eqTableInto, so a streamed table is materialized O(chunk) at a
     * time.
     */
    static Mle eqTable(std::span<const Fr> r);

    unsigned numVars() const { return nVars; }
    std::size_t size() const { return vals.size(); }

    const Fr &operator[](std::size_t i) const { return vals[i]; }
    Fr &operator[](std::size_t i) { return vals[i]; }
    const Fr *data() const { return vals.data(); }
    Fr *data() { return vals.data(); }

    std::span<const Fr> evals() const { return vals.span(); }
    std::span<Fr> evals() { return {vals.data(), vals.size()}; }

    /** Storage backend access (streaming walks use the madvise hooks). */
    const FrTable &store() const { return vals; }
    FrTable &store() { return vals; }
    bool isMapped() const { return vals.isMapped(); }

    /**
     * MLE Update: fix X1 := r, halving the table. new[j] =
     * old[2j]*(1-r) + old[2j+1]*r = old[2j] + r*(old[2j+1]-old[2j]).
     */
    void fixFirstVarInPlace(const Fr &r);

    /**
     * MLE Update with a caller-owned double buffer. The parallel fold path
     * cannot run in place (concurrent chunks would overlap reads and
     * writes), so it folds into `scratch` and swaps — across SumCheck
     * rounds the two buffers alternate and no per-round allocation happens
     * once `scratch` has the table's capacity. The serial path folds in
     * place and leaves `scratch` untouched. Values are bit-identical to the
     * scratch-less overload.
     */
    void fixFirstVarInPlace(const Fr &r, FrTable &scratch);

    /**
     * Adopt an externally folded half-size table (the double-buffer seam
     * VirtualPoly::foldAndAccumulate writes through): this table and
     * `folded` swap backings and the variable count drops by one, exactly
     * like the parallel fixFirstVarInPlace path.
     */
    void swapFolded(FrTable &folded);

    /** Non-destructive MLE Update. */
    Mle fixFirstVar(const Fr &r) const;

    /** Full evaluation at an arbitrary point (numVars coordinates). */
    Fr evaluate(std::span<const Fr> point) const;

    /** Sum of all table entries (the SumCheck claim for a bare MLE). */
    Fr sumOverHypercube() const;

    /** Measure actual 0/1 sparsity of the table. */
    SparsityStats sparsity() const;

    bool operator==(const Mle &o) const = default;

  private:
    FrTable vals;
    unsigned nVars = 0;
};

/**
 * Build the eq(x, r) table into an existing table (resized to 2^|r|),
 * chunk-locally: a size-2^s suffix table over the low s variables is built
 * once (s = log2 of the ambient stream chunk), then each chunk of the
 * output is that suffix table scaled by the chunk's prefix weight
 * prod_{i>=s} (c_i r_i + (1-c_i)(1-r_i)). Exact field arithmetic makes the
 * result bit-identical to the doubling construction, while only O(chunk)
 * of the output is hot at a time (and each chunk is first-touched by the
 * pool thread that fills it).
 */
void eqTableInto(std::span<const Fr> r, FrTable &out);

/**
 * Evaluate eq(x, y) for two arbitrary points of equal dimension:
 * prod_i (x_i y_i + (1-x_i)(1-y_i)).
 */
Fr eqEval(std::span<const Fr> x, std::span<const Fr> y);

} // namespace zkphire::poly

#endif // ZKPHIRE_POLY_MLE_HPP
