/**
 * @file
 * GatePlan: a compiled, reuse-aware evaluation plan for a GateExpr.
 *
 * A GateExpr is the *symbolic* composition the programmable SumCheck unit is
 * programmed with; walking its term list at every evaluation point repeats
 * work the structure makes explicit — Jellyfish's four w^5 S-box terms each
 * re-multiply five factors, every slot is extended to the global max degree
 * even when it only feeds degree-2 terms, and shared sub-products (w1*w2 in
 * both the qM1 and qecc terms) are recomputed per term. compile() lowers the
 * expression once into a flat instruction list that mirrors what the
 * hardware scheduler emits (paper §III-E):
 *
 *   - every multiplication is a PlanOp (dst = lhs * rhs) over virtual
 *     registers; registers [0, numSlots) hold slot extensions, the rest are
 *     temporaries — the software analogue of the scheduler's Tmp MLE buffer
 *     (writeTmp/useTmp);
 *   - powers are lowered with memoized binary powering (w^5 = three muls,
 *     not four) and every op is hash-consed, so sub-products shared between
 *     terms are computed exactly once;
 *   - each term evaluates at only degree+1 points and accumulates into a
 *     per-degree class; slot extension bounds are back-propagated through
 *     the op DAG, so a slot appearing only in degree-2 terms is extended to
 *     3 points regardless of the composite degree;
 *   - unit coefficients are folded away (no coefficient multiply), and
 *     pure-constant terms collapse into a single class-0 addend.
 *
 * Degree classes are finalized once per SumCheck round: the class-d
 * accumulator holds an exact degree-<=d univariate at nodes 0..d, which
 * finalizeRoundEvals() extends to the composite-degree node range with
 * Newton forward differences (additions only — exact field arithmetic, so
 * the result is bit-identical to the naive evaluator's).
 *
 * The same decomposition drives the hardware model: sim::buildScheduleFromPlan
 * lowers the op list into ScheduleNodes, and the cost-model cross-check ties
 * productMulsPerPoint() to the scheduler's per-point multiplication count.
 */
#ifndef ZKPHIRE_POLY_GATE_PLAN_HPP
#define ZKPHIRE_POLY_GATE_PLAN_HPP

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "poly/gate_expr.hpp"
#include "poly/mle.hpp"

namespace zkphire::poly {

/** Virtual register index: [0, numSlots) = slot extensions, rest = temps. */
using RegId = std::uint32_t;

inline constexpr RegId kNoReg = ~RegId(0);

/** One plan instruction: dst = lhs * rhs, needed at points 0..numPoints-1. */
struct PlanOp {
    RegId dst = kNoReg;
    RegId lhs = kNoReg;
    RegId rhs = kNoReg;
    /** Evaluation points this product is needed at (back-propagated). */
    std::uint32_t numPoints = 0;
    /** Expression term whose lowering first emitted this op (diagnostics
     *  and ScheduleNode attribution; shared ops keep their creator). */
    std::uint32_t term = 0;
};

/** One expression term after lowering. */
struct PlanTerm {
    Fr coeff = Fr::one();
    /** Register holding the term product; kNoReg for constant terms. */
    RegId product = kNoReg;
    /** Factor count (with repeats) == accumulation degree class. */
    std::uint32_t degree = 0;
    /** Offset of this term's class in the flat accumulator. */
    std::uint32_t accOffset = 0;
};

/**
 * Compiled evaluation plan. Immutable after compile(); safe to share across
 * threads (accumulatePairs takes all mutable state as arguments).
 */
class GatePlan
{
  public:
    GatePlan() = default;

    /** Lower an expression. Deterministic: same expr -> same plan. */
    static GatePlan compile(const GateExpr &expr);

    // ---- introspection --------------------------------------------------
    std::size_t numSlots() const { return nSlots; }
    std::size_t numRegs() const { return nRegs; }
    std::size_t numTerms() const { return termList.size(); }
    std::span<const PlanOp> ops() const { return opList; }
    std::span<const PlanTerm> planTerms() const { return termList; }
    bool isSlotReg(RegId r) const { return r < nSlots; }
    /** Composite degree D (== GateExpr::degree()). */
    std::size_t degree() const { return maxDegree; }
    /** Extension bound for slot s: points 0..slotPoints(s)-1 (0 = unused). */
    std::uint32_t slotPoints(SlotId s) const { return regPoints[s]; }
    /** Max points any register needs (the scratch stride). */
    std::uint32_t maxPoints() const { return maxPts; }
    /** Flat accumulator length: sum over degree classes of (d + 1). */
    std::size_t accSize() const { return accLen; }
    /** Degree classes present, ascending. */
    std::span<const std::uint32_t> classDegrees() const { return classes; }

    /** Product multiplications per shared evaluation point (== ops). This is
     *  the count the hardware cost model charges; coefficient multiplies are
     *  excluded, matching sim::PolyShape which drops coefficients. */
    std::size_t productMulsPerPoint() const { return opList.size(); }
    /** Product + coefficient multiplications per shared evaluation point
     *  (directly comparable to GateExpr::mulsPerPoint()). */
    std::size_t mulsPerPoint() const;
    /** Total multiplications per table pair in a SumCheck round, honoring
     *  per-op point bounds (the number the round-evaluation loop executes). */
    std::size_t mulsPerPair() const;
    /** The naive evaluator's multiplications per pair, for speedup ratios:
     *  every term at all degree+1 points. */
    std::size_t naiveMulsPerPair(const GateExpr &expr) const;

    /** Pretty listing (DESIGN docs, debugging). */
    std::string toString(const GateExpr &expr) const;

    // ---- evaluation -----------------------------------------------------
    /** Evaluate at one point given slot values (== GateExpr::evaluate). */
    Fr evaluate(std::span<const Fr> slot_values) const;
    /** Same, reusing caller scratch of size numRegs(). */
    Fr evaluate(std::span<const Fr> slot_values,
                std::vector<Fr> &scratch) const;

    /**
     * SumCheck round hot loop: for every table pair j in [begin, end),
     * extend each used slot to its own point bound, run the op list, and
     * accumulate each term at its degree+1 points into the flat class
     * accumulator `acc` (length accSize()). Pairs are processed in
     * SIMD-friendly blocks: each register becomes a (point, lane) tile so
     * every op is one contiguous ff::mulVec over the whole block, and
     * non-unit coefficients apply once per point row per block. `scratch`
     * is resized to numRegs() * maxPoints() * kPairBlock and reused. The
     * result is bit-identical to a pair-at-a-time walk (exact field
     * arithmetic; only the grouping of additions changes).
     */
    void accumulatePairs(std::span<const Mle> tables, std::size_t begin,
                         std::size_t end, std::span<Fr> acc,
                         std::vector<Fr> &scratch) const;

    /**
     * Same hot loop over raw table pointers (tables[s] points at >= 2*end
     * entries). This is the entry the fused fold+evaluate sumcheck path
     * uses: its pair source is a freshly folded chunk in a scratch buffer,
     * not a whole Mle. Bit-identical to the Mle overload by construction
     * (the Mle overload delegates here).
     */
    void accumulatePairs(const Fr *const *tables, std::size_t begin,
                         std::size_t end, std::span<Fr> acc,
                         std::vector<Fr> &scratch) const;

    /**
     * Per-round finalize: extend every degree class to nodes 0..D with
     * Newton forward differences and sum, yielding s_i(0..D) — exactly the
     * values the naive evaluator accumulates point by point.
     */
    std::vector<Fr> finalizeRoundEvals(std::span<const Fr> acc) const;

  private:
    std::uint32_t nSlots = 0;
    std::uint32_t nRegs = 0;
    std::uint32_t maxPts = 0;
    std::uint32_t maxDegree = 0;
    std::uint32_t accLen = 0;
    std::vector<PlanOp> opList;
    std::vector<PlanTerm> termList;
    /** Per-register point bound (slot regs double as extension bounds). */
    std::vector<std::uint32_t> regPoints;
    /** Degree classes present, ascending, parallel to classOffsets. */
    std::vector<std::uint32_t> classes;
    std::vector<std::uint32_t> classOffsets;
    /** Slots referenced by any term, ascending (extension work list). */
    std::vector<SlotId> usedSlots;
};

} // namespace zkphire::poly

#endif // ZKPHIRE_POLY_GATE_PLAN_HPP
