#include "poly/mle_store.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>

#include "rt/failpoint.hpp"
#include "rt/parallel.hpp"

#ifdef __linux__
#include <cerrno>
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

namespace zkphire::poly {

namespace {

std::atomic<std::uint64_t> g_ramAllocs{0};
std::atomic<std::uint64_t> g_ramBytes{0};
std::atomic<std::uint64_t> g_mappedAllocs{0};
std::atomic<std::uint64_t> g_mappedBytes{0};
std::atomic<std::uint64_t> g_arenaHits{0};
std::atomic<std::uint64_t> g_arenaMisses{0};

thread_local BufferArena *t_arena = nullptr;

/** "12" (< 64) means 2^12 elements; larger values are raw element counts. */
std::size_t
parseSizeEnv(const char *name, std::size_t fallback)
{
    const char *s = std::getenv(name);
    if (s == nullptr || *s == '\0')
        return fallback;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (end == s)
        return fallback;
    if (v == 0)
        return 0;
    if (v < 64)
        return std::size_t(1) << v;
    return std::size_t(v);
}

/** Environment-derived defaults, resolved once per process. */
const StorePolicy &
envPolicy()
{
    static const StorePolicy policy = [] {
        StorePolicy p;
        // Streaming is on by default above 2^22 elements (128 MiB of Fr):
        // large jobs pick the mapped backend automatically, small proofs
        // never see it. ZKPHIRE_STREAM=0 disables; ZKPHIRE_STREAM=1 keeps
        // the default threshold; ZKPHIRE_STREAM_THRESHOLD moves it.
        p.thresholdElems = std::size_t(1) << 22;
        if (const char *s = std::getenv("ZKPHIRE_STREAM");
            s != nullptr && s[0] == '0' && s[1] == '\0')
            p.thresholdElems = SIZE_MAX;
        p.thresholdElems =
            parseSizeEnv("ZKPHIRE_STREAM_THRESHOLD", p.thresholdElems);
        if (p.thresholdElems == 0)
            p.thresholdElems = 1;
        p.chunkElems =
            parseSizeEnv("ZKPHIRE_STREAM_CHUNK", std::size_t(1) << 20);
        if (p.chunkElems == 0)
            p.chunkElems = std::size_t(1) << 20;
        return p;
    }();
    return policy;
}

#ifdef __linux__
std::size_t
pageSize()
{
    static const std::size_t ps = std::size_t(sysconf(_SC_PAGESIZE));
    return ps;
}

std::size_t
pageRound(std::size_t bytes)
{
    const std::size_t ps = pageSize();
    return (bytes + ps - 1) / ps * ps;
}

/** posix_fallocate with EINTR retry (it reports errors as a return value,
 *  not errno) plus the ftruncate fallback for filesystems without extent
 *  support, also EINTR-retried. 0 on success, else the failing errno. */
int
reserveExtent(int fd, off_t bytes)
{
    int r;
    do {
        r = ::posix_fallocate(fd, 0, bytes);
    } while (r == EINTR);
    if (r == 0)
        return 0;
    int t;
    do {
        t = ::ftruncate(fd, bytes);
    } while (t == -1 && errno == EINTR);
    return t == 0 ? 0 : (errno != 0 ? errno : r);
}

/** One process-wide warning the first time slab allocation degrades to the
 *  Ram backend: silent fallback is correct (values are backend-independent)
 *  but an operator watching RSS deserves to know streaming is off. */
void
warnSlabFallbackOnce(const char *what, int err)
{
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed))
        std::fprintf(stderr,
                     "zkphire: %s failed (errno %d); falling back to the "
                     "in-RAM table backend (data is unaffected; RSS bounds "
                     "are not)\n",
                     what, err);
}
#endif

} // namespace

StorePolicy
currentStorePolicy()
{
    StorePolicy p = envPolicy();
    if (std::size_t t = rt::currentStreamThreshold(); t != 0)
        p.thresholdElems = t;
    if (std::size_t c = rt::currentStreamChunk(); c != 0)
        p.chunkElems = c;
    return p;
}

const char *
streamDir()
{
    static const char *dir = [] {
        if (const char *d = std::getenv("ZKPHIRE_STREAM_DIR");
            d != nullptr && *d != '\0')
            return d;
        if (const char *d = std::getenv("TMPDIR"); d != nullptr && *d != '\0')
            return d;
        return "/tmp";
    }();
    return dir;
}

StoreCounters
storeCounters()
{
    StoreCounters c;
    c.ramAllocs = g_ramAllocs.load(std::memory_order_relaxed);
    c.ramBytes = g_ramBytes.load(std::memory_order_relaxed);
    c.mappedAllocs = g_mappedAllocs.load(std::memory_order_relaxed);
    c.mappedBytes = g_mappedBytes.load(std::memory_order_relaxed);
    c.arenaHits = g_arenaHits.load(std::memory_order_relaxed);
    c.arenaMisses = g_arenaMisses.load(std::memory_order_relaxed);
    return c;
}

// ---------------------------------------------------------------------------
// FrTable
// ---------------------------------------------------------------------------

FrTable::~FrTable() { clear(); }

void
FrTable::moveFrom(FrTable &o) noexcept
{
    ptr_ = o.ptr_;
    size_ = o.size_;
    vec_ = std::move(o.vec_);
    map_ = o.map_;
    mapBytes_ = o.mapBytes_;
    fd_ = o.fd_;
    o.ptr_ = nullptr;
    o.size_ = 0;
    o.map_ = nullptr;
    o.mapBytes_ = 0;
    o.fd_ = -1;
}

FrTable &
FrTable::operator=(FrTable &&o) noexcept
{
    if (this != &o) {
        clear();
        moveFrom(o);
    }
    return *this;
}

FrTable::FrTable(const FrTable &o) : FrTable(make(o.size_, o.kind()))
{
    if (size_ != 0)
        std::memcpy(ptr_, o.ptr_, size_ * sizeof(Fr));
}

FrTable &
FrTable::operator=(const FrTable &o)
{
    if (this != &o) {
        FrTable copy(o);
        *this = std::move(copy);
    }
    return *this;
}

void
FrTable::clear()
{
#ifdef __linux__
    if (map_ != nullptr) {
        ::munmap(map_, mapBytes_);
        ::close(fd_);
    }
#endif
    map_ = nullptr;
    mapBytes_ = 0;
    fd_ = -1;
    vec_.clear();
    vec_.shrink_to_fit();
    ptr_ = nullptr;
    size_ = 0;
}

std::size_t
FrTable::capacity() const
{
    if (map_ != nullptr)
        return mapBytes_ / sizeof(Fr);
    return vec_.capacity();
}

void
FrTable::allocMapped(std::size_t n)
{
#ifdef __linux__
    // slab.create simulates the syscall-level failures this path can hit
    // in production: ENOSPC/EMFILE from mkstemp or the extent reservation.
    int err = rt::failpointErrno("slab.create");
    if (err == 0 || err == EINTR) {
        std::string tmpl = std::string(streamDir()) + "/zkphire-slab-XXXXXX";
        const int fd = ::mkstemp(tmpl.data());
        if (fd >= 0) {
            ::unlink(tmpl.c_str());
            const std::size_t bytes =
                pageRound(std::max<std::size_t>(n, 1) * sizeof(Fr));
            // Preallocate extents: with a hole-only file (ftruncate) every
            // first-touch write fault does filesystem block allocation +
            // journaling, ~100x slower than an anonymous-page fault.
            // posix_fallocate moves that cost to one syscall here;
            // ftruncate stays as the fallback for filesystems without
            // extent support. Both are EINTR-retried inside reserveExtent.
            err = reserveExtent(fd, off_t(bytes));
            if (err == 0) {
                void *m = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                                 MAP_SHARED, fd, 0);
                if (m != MAP_FAILED) {
                    map_ = m;
                    mapBytes_ = bytes;
                    fd_ = fd;
                    ptr_ = static_cast<Fr *>(m);
                    size_ = n;
                    g_mappedAllocs.fetch_add(1, std::memory_order_relaxed);
                    g_mappedBytes.fetch_add(bytes,
                                            std::memory_order_relaxed);
                    return;
                }
                err = errno;
            }
            ::close(fd);
        } else {
            err = errno;
        }
    }
    warnSlabFallbackOnce("slab creation", err);
#endif
    // No usable slab directory (or non-Linux): fall back to RAM. Values are
    // backend-independent, so this only costs memory, never correctness.
    vec_.assign(n, Fr::zero());
    ptr_ = vec_.data();
    size_ = n;
    g_ramAllocs.fetch_add(1, std::memory_order_relaxed);
    g_ramBytes.fetch_add(n * sizeof(Fr), std::memory_order_relaxed);
}

void
FrTable::growMapped(std::size_t n)
{
#ifdef __linux__
    const std::size_t bytes = pageRound(n * sizeof(Fr));
    int err = rt::failpointErrno("slab.grow");
    if (err == 0 || err == EINTR) {
        err = reserveExtent(fd_, off_t(bytes));
        if (err == 0) {
            void *m = ::mremap(map_, mapBytes_, bytes, MREMAP_MAYMOVE);
            if (m != MAP_FAILED) {
                map_ = m;
                mapBytes_ = bytes;
                ptr_ = static_cast<Fr *>(m);
                g_mappedBytes.fetch_add(bytes, std::memory_order_relaxed);
                return;
            }
            err = errno;
        }
    }
    // The slab cannot grow (disk full, mremap address-space failure):
    // migrate the live prefix to the Ram backend instead of poisoning the
    // proof mid-flight. The vector is built BEFORE the map is torn down, so
    // an allocation failure here propagates with the table intact.
    warnSlabFallbackOnce("slab growth", err);
    std::vector<Fr> moved(n, Fr::zero());
    if (size_ != 0)
        std::memcpy(moved.data(), ptr_, size_ * sizeof(Fr));
    ::munmap(map_, mapBytes_);
    ::close(fd_);
    map_ = nullptr;
    mapBytes_ = 0;
    fd_ = -1;
    vec_ = std::move(moved);
    ptr_ = vec_.data();
    g_ramAllocs.fetch_add(1, std::memory_order_relaxed);
    g_ramBytes.fetch_add(n * sizeof(Fr), std::memory_order_relaxed);
#else
    (void)n;
#endif
}

FrTable
FrTable::make(std::size_t n)
{
    const StorePolicy p = currentStorePolicy();
    return make(n, n >= p.thresholdElems ? StoreKind::Mapped : StoreKind::Ram);
}

FrTable
FrTable::make(std::size_t n, StoreKind kind)
{
    FrTable t;
    if (kind == StoreKind::Mapped) {
        t.allocMapped(n);
        return t;
    }
    t.vec_.assign(n, Fr::zero());
    t.ptr_ = t.vec_.data();
    t.size_ = n;
    g_ramAllocs.fetch_add(1, std::memory_order_relaxed);
    g_ramBytes.fetch_add(n * sizeof(Fr), std::memory_order_relaxed);
    return t;
}

FrTable
FrTable::adopt(std::vector<Fr> v)
{
    FrTable t;
    t.vec_ = std::move(v);
    t.ptr_ = t.vec_.data();
    t.size_ = t.vec_.size();
    return t;
}

void
FrTable::resize(std::size_t n)
{
    if (n == size_)
        return;
    if (map_ == nullptr) {
        // Empty default-constructed tables route through the policy so a
        // scratch buffer sized for a big table lands on the mapped backend.
        if (ptr_ == nullptr && n >= currentStorePolicy().thresholdElems) {
            allocMapped(n);
            return;
        }
        vec_.resize(n, Fr::zero());
        ptr_ = vec_.data();
        size_ = n;
        return;
    }
    if (n < size_) {
        // Keep the slab (capacity semantics) but drop the dead tail from
        // RSS — this is what bounds the fold chain's resident set by the
        // live half instead of the original table.
        const std::size_t old = size_;
        size_ = n;
        releaseWindow(n, old);
        return;
    }
    if (n > capacity())
        growMapped(n);
    // Slab regions past any previous size() were never written and read as
    // zero straight off the fresh file extent; regions recycled by a shrink
    // may hold stale bytes, so zero the grown range explicitly.
    std::memset(static_cast<void *>(ptr_ + size_), 0,
                (n - size_) * sizeof(Fr));
    size_ = n;
}

void
FrTable::assign(std::span<const Fr> src)
{
    resize(src.size());
    if (!src.empty())
        std::memcpy(ptr_, src.data(), src.size() * sizeof(Fr));
}

void
FrTable::swap(FrTable &o) noexcept
{
    FrTable tmp(std::move(o));
    o = std::move(*this);
    *this = std::move(tmp);
}

void
FrTable::adviseSequential() const
{
#ifdef __linux__
    if (map_ != nullptr)
        ::madvise(map_, mapBytes_, MADV_SEQUENTIAL);
#endif
}

void
FrTable::releaseWindow(std::size_t beginElem, std::size_t endElem) const
{
#ifdef __linux__
    if (map_ == nullptr || endElem <= beginElem)
        return;
    const std::size_t ps = pageSize();
    std::size_t b = pageRound(beginElem * sizeof(Fr));
    std::size_t e = endElem * sizeof(Fr) / ps * ps;
    e = std::min(e, mapBytes_);
    if (e > b)
        ::madvise(static_cast<char *>(map_) + b, e - b, MADV_DONTNEED);
#else
    (void)beginElem;
    (void)endElem;
#endif
}

bool
FrTable::operator==(const FrTable &o) const
{
    if (size_ != o.size_)
        return false;
    return std::equal(begin(), end(), o.begin());
}

// ---------------------------------------------------------------------------
// BufferArena
// ---------------------------------------------------------------------------

FrTable
BufferArena::acquire(std::size_t n)
{
    {
        std::lock_guard<std::mutex> lk(arenaMu);
        std::size_t best = free_.size();
        for (std::size_t i = 0; i < free_.size(); ++i) {
            const std::size_t cap = free_[i].capacity();
            if (cap >= n &&
                (best == free_.size() || cap < free_[best].capacity()))
                best = i;
        }
        if (best != free_.size()) {
            FrTable t = std::move(free_[best]);
            free_.erase(free_.begin() + std::ptrdiff_t(best));
            g_arenaHits.fetch_add(1, std::memory_order_relaxed);
            t.resize(n);
            return t;
        }
    }
    g_arenaMisses.fetch_add(1, std::memory_order_relaxed);
    return FrTable::make(n);
}

void
BufferArena::release(FrTable &&t)
{
    if (t.capacity() == 0)
        return;
    std::lock_guard<std::mutex> lk(arenaMu);
    free_.push_back(std::move(t));
}

void
BufferArena::clear()
{
    std::lock_guard<std::mutex> lk(arenaMu);
    free_.clear();
}

std::size_t
BufferArena::pooled() const
{
    std::lock_guard<std::mutex> lk(arenaMu);
    return free_.size();
}

ScopedArena::ScopedArena(BufferArena *a) : saved(t_arena)
{
    // Null inherits the enclosing arena (same rule as rt::ScopedConfig's
    // zero fields), so a prover entry point can apply its options' arena
    // unconditionally without cancelling a caller's installation.
    if (a != nullptr)
        t_arena = a;
}

ScopedArena::~ScopedArena() { t_arena = saved; }

FrTable
arenaAcquire(std::size_t n)
{
    if (t_arena != nullptr)
        return t_arena->acquire(n);
    return FrTable::make(n);
}

void
arenaRelease(FrTable &&t)
{
    if (t_arena != nullptr)
        t_arena->release(std::move(t));
}

} // namespace zkphire::poly
