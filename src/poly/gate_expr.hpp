/**
 * @file
 * Composite polynomial (custom gate) expressions.
 *
 * A GateExpr is the symbolic structure the programmable SumCheck unit is
 * programmed with: a sum of terms, each term a scalar coefficient times a
 * product of references to constituent multilinear polynomials ("slots").
 * Repeated factors express powers (e.g. Jellyfish's w1^5 is the slot of w1
 * appearing five times). The same structure drives
 *   - the functional SumCheck prover (src/sumcheck/),
 *   - the hardware scheduler's graph decomposition (src/sim/sumcheck_sched),
 *   - and the gate library reproducing Table I (src/gates/).
 */
#ifndef ZKPHIRE_POLY_GATE_EXPR_HPP
#define ZKPHIRE_POLY_GATE_EXPR_HPP

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "ff/fr.hpp"

namespace zkphire::poly {

using ff::Fr;

/** Index of a constituent MLE slot within a GateExpr. */
using SlotId = std::uint32_t;

/** One product term: coeff * prod_k slot(factors[k]). */
struct Term {
    Fr coeff = Fr::one();
    std::vector<SlotId> factors;

    /** Polynomial degree of the term (number of MLE factors, with repeats). */
    std::size_t degree() const { return factors.size(); }
};

/**
 * A composite polynomial over named MLE slots.
 */
class GateExpr
{
  public:
    GateExpr() = default;

    /** @param name Human-readable identifier (e.g. "Jellyfish ZeroCheck"). */
    explicit GateExpr(std::string name) : exprName(std::move(name)) {}

    /** Register a named slot; returns its id. Names are for diagnostics. */
    SlotId addSlot(std::string name);

    /** Add a term with unit coefficient. */
    void addTerm(std::initializer_list<SlotId> factors);
    void addTerm(std::vector<SlotId> factors);

    /** Add a term with an explicit coefficient. */
    void addTerm(const Fr &coeff, std::vector<SlotId> factors);

    const std::string &name() const { return exprName; }
    std::size_t numSlots() const { return slotNames.size(); }
    const std::string &slotName(SlotId s) const { return slotNames[s]; }
    std::span<const Term> terms() const { return termList; }
    std::size_t numTerms() const { return termList.size(); }

    /** Maximum term degree = number of evaluations needed per round minus 1. */
    std::size_t degree() const;

    /** Number of distinct slots referenced by term t. */
    std::size_t uniqueSlotsInTerm(std::size_t t) const;

    /** Distinct slots referenced anywhere in the expression, in slot order. */
    std::vector<SlotId> referencedSlots() const;

    /** Evaluate the expression given a value per slot. */
    Fr evaluate(std::span<const Fr> slot_values) const;

    /**
     * Return a copy with one extra slot appended and every term multiplied
     * by it — how ZeroCheck folds the masking polynomial f_r into the
     * expression (paper §III-F).
     */
    GateExpr multipliedBySlot(std::string slot_name, SlotId *new_slot) const;

    /** Total modular multiplications to evaluate all terms at one point. */
    std::size_t mulsPerPoint() const;

    /** Pretty-print (for examples and DESIGN/EXPERIMENTS docs). */
    std::string toString() const;

  private:
    std::string exprName;
    std::vector<std::string> slotNames;
    std::vector<Term> termList;
};

} // namespace zkphire::poly

#endif // ZKPHIRE_POLY_GATE_EXPR_HPP
