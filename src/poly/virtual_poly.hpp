/**
 * @file
 * VirtualPoly: a GateExpr bound to concrete MLE tables.
 *
 * This is the object SumCheck actually runs over — the paper's "given only
 * the constituent polynomials and their composition structure, perform
 * SumCheck over the composition". The prover folds all bound tables in
 * lockstep each round.
 *
 * Every VirtualPoly carries a compiled GatePlan (either lowered at
 * construction or supplied precompiled from a cache); all evaluation entry
 * points run on the plan, which is bit-identical to walking the GateExpr
 * term list but reuses shared sub-products and honors per-slot extension
 * bounds.
 */
#ifndef ZKPHIRE_POLY_VIRTUAL_POLY_HPP
#define ZKPHIRE_POLY_VIRTUAL_POLY_HPP

#include <cassert>
#include <memory>
#include <span>
#include <vector>

#include "poly/gate_expr.hpp"
#include "poly/gate_plan.hpp"
#include "poly/mle.hpp"

namespace zkphire::poly {

/**
 * Composite polynomial with bound evaluation tables.
 *
 * Owns copies of the constituent MLEs so the SumCheck prover can fold them
 * destructively without touching caller state.
 */
class VirtualPoly
{
  public:
    /**
     * @param expr Composition structure (slots, terms, coefficients).
     * @param mles One table per slot, all with the same number of variables.
     */
    VirtualPoly(GateExpr expr, std::vector<Mle> mles);

    /**
     * Bind with a precompiled plan (e.g. gates::PlanCache::plan), skipping the
     * lowering pass. The plan must have been compiled from an expression
     * with identical structure.
     */
    VirtualPoly(GateExpr expr, std::vector<Mle> mles,
                std::shared_ptr<const GatePlan> plan);

    const GateExpr &expr() const { return structure; }
    const GatePlan &plan() const { return *evalPlan; }
    std::shared_ptr<const GatePlan> sharedPlan() const { return evalPlan; }
    unsigned numVars() const { return nVars; }
    std::size_t numSlots() const { return tables.size(); }

    const Mle &table(SlotId s) const { return tables[s]; }
    Mle &table(SlotId s) { return tables[s]; }
    std::span<const Mle> allTables() const { return tables; }

    /** Evaluate the composition at a hypercube index. */
    Fr evalAtIndex(std::size_t idx) const;

    /** Evaluate the composition at an arbitrary point (O(slots * N)). */
    Fr evaluate(std::span<const Fr> point) const;

    /** Direct Sum_x expr(x) over the hypercube — the SumCheck claim. */
    Fr sumOverHypercube() const;

    /** Fold every bound table with the round challenge (MLE Update). */
    void fixFirstVarInPlace(const Fr &r);

    /**
     * Fused MLE Update + next-round evaluation: fold every table with r
     * into the scratch buffers and, in the same chunk walk, accumulate the
     * plan's pair contributions of the *folded* tables — each chunk is
     * evaluated while its freshly written entries are still hot, so a
     * streamed table is walked once per round instead of twice. Returns
     * the flat class accumulator (length plan().accSize()); values are
     * bit-identical to fixFirstVarInPlace(r) followed by a separate
     * accumulation (exact field arithmetic, identical per-index formulas).
     * Requires numVars() >= 2.
     */
    std::vector<Fr> foldAndAccumulate(const Fr &r);

    /** True when any bound table lives on the mapped streaming backend. */
    bool anyTableMapped() const;

    VirtualPoly(VirtualPoly &&) = default;
    VirtualPoly &operator=(VirtualPoly &&) = default;
    ~VirtualPoly();

  private:
    GateExpr structure;
    std::shared_ptr<const GatePlan> evalPlan;
    std::vector<Mle> tables;
    /** Per-table double buffers reused across round folds (no per-round
     *  allocation when a fold takes the out-of-place parallel path).
     *  Acquired lazily from the ambient arena; released back on
     *  destruction, so consecutive proofs on one ProverContext reuse the
     *  same slabs. */
    std::vector<FrTable> foldScratch;
    unsigned nVars = 0;
};

} // namespace zkphire::poly

#endif // ZKPHIRE_POLY_VIRTUAL_POLY_HPP
