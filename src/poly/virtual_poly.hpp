/**
 * @file
 * VirtualPoly: a GateExpr bound to concrete MLE tables.
 *
 * This is the object SumCheck actually runs over — the paper's "given only
 * the constituent polynomials and their composition structure, perform
 * SumCheck over the composition". The prover folds all bound tables in
 * lockstep each round.
 */
#ifndef ZKPHIRE_POLY_VIRTUAL_POLY_HPP
#define ZKPHIRE_POLY_VIRTUAL_POLY_HPP

#include <cassert>
#include <span>
#include <vector>

#include "poly/gate_expr.hpp"
#include "poly/mle.hpp"

namespace zkphire::poly {

/**
 * Composite polynomial with bound evaluation tables.
 *
 * Owns copies of the constituent MLEs so the SumCheck prover can fold them
 * destructively without touching caller state.
 */
class VirtualPoly
{
  public:
    /**
     * @param expr Composition structure (slots, terms, coefficients).
     * @param mles One table per slot, all with the same number of variables.
     */
    VirtualPoly(GateExpr expr, std::vector<Mle> mles);

    const GateExpr &expr() const { return structure; }
    unsigned numVars() const { return nVars; }
    std::size_t numSlots() const { return tables.size(); }

    const Mle &table(SlotId s) const { return tables[s]; }
    Mle &table(SlotId s) { return tables[s]; }

    /** Evaluate the composition at a hypercube index. */
    Fr evalAtIndex(std::size_t idx) const;

    /** Evaluate the composition at an arbitrary point (O(slots * N)). */
    Fr evaluate(std::span<const Fr> point) const;

    /** Direct Sum_x expr(x) over the hypercube — the SumCheck claim. */
    Fr sumOverHypercube() const;

    /** Fold every bound table with the round challenge (MLE Update). */
    void fixFirstVarInPlace(const Fr &r);

  private:
    GateExpr structure;
    std::vector<Mle> tables;
    unsigned nVars = 0;
};

} // namespace zkphire::poly

#endif // ZKPHIRE_POLY_VIRTUAL_POLY_HPP
