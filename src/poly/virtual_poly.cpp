#include "poly/virtual_poly.hpp"

#include "rt/parallel.hpp"

namespace zkphire::poly {

VirtualPoly::VirtualPoly(GateExpr expr, std::vector<Mle> mles)
    : structure(std::move(expr)), tables(std::move(mles))
{
    assert(tables.size() == structure.numSlots() &&
           "one MLE table required per expression slot");
    assert(!tables.empty());
    nVars = tables[0].numVars();
    for ([[maybe_unused]] const Mle &m : tables)
        assert(m.numVars() == nVars && "all slot tables must share numVars");
}

Fr
VirtualPoly::evalAtIndex(std::size_t idx) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s][idx];
    return structure.evaluate(slot_vals);
}

Fr
VirtualPoly::evaluate(std::span<const Fr> point) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s].evaluate(point);
    return structure.evaluate(slot_vals);
}

Fr
VirtualPoly::sumOverHypercube() const
{
    const std::size_t n = std::size_t(1) << nVars;
    return rt::parallelReduce<Fr>(
        0, n, Fr::zero(),
        [&](std::size_t b, std::size_t e) {
            // One scratch slot vector per chunk instead of per index.
            std::vector<Fr> slot_vals(tables.size());
            Fr part = Fr::zero();
            for (std::size_t i = b; i < e; ++i) {
                for (std::size_t s = 0; s < tables.size(); ++s)
                    slot_vals[s] = tables[s][i];
                part += structure.evaluate(slot_vals);
            }
            return part;
        },
        [](Fr acc, Fr part) { return acc + part; },
        /*grain=*/0, /*minGrain=*/512);
}

void
VirtualPoly::fixFirstVarInPlace(const Fr &r)
{
    // Outer parallelism across slot tables; each table's own fold runs its
    // parallel path only when reached from a serial context (nested regions
    // execute inline), so both shapes compose without oversubscription.
    rt::parallelFor(
        0, tables.size(), [&](std::size_t s) { tables[s].fixFirstVarInPlace(r); },
        /*grain=*/1);
    --nVars;
}

} // namespace zkphire::poly
