#include "poly/virtual_poly.hpp"

#include "rt/parallel.hpp"

namespace zkphire::poly {

VirtualPoly::VirtualPoly(GateExpr expr, std::vector<Mle> mles)
    : VirtualPoly(std::move(expr), std::move(mles), nullptr)
{
}

VirtualPoly::VirtualPoly(GateExpr expr, std::vector<Mle> mles,
                         std::shared_ptr<const GatePlan> plan)
    : structure(std::move(expr)), evalPlan(std::move(plan)),
      tables(std::move(mles))
{
    assert(tables.size() == structure.numSlots() &&
           "one MLE table required per expression slot");
    assert(!tables.empty());
    if (!evalPlan)
        evalPlan = std::make_shared<const GatePlan>(
            GatePlan::compile(structure));
    assert(evalPlan->numSlots() == structure.numSlots() &&
           "precompiled plan does not match the expression");
    assert(evalPlan->numTerms() == structure.numTerms() &&
           "precompiled plan does not match the expression");
    foldScratch.resize(tables.size());
    nVars = tables[0].numVars();
    for ([[maybe_unused]] const Mle &m : tables)
        assert(m.numVars() == nVars && "all slot tables must share numVars");
}

Fr
VirtualPoly::evalAtIndex(std::size_t idx) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s][idx];
    return evalPlan->evaluate(slot_vals);
}

Fr
VirtualPoly::evaluate(std::span<const Fr> point) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s].evaluate(point);
    return evalPlan->evaluate(slot_vals);
}

Fr
VirtualPoly::sumOverHypercube() const
{
    const std::size_t n = std::size_t(1) << nVars;
    return rt::parallelReduce<Fr>(
        0, n, Fr::zero(),
        [&](std::size_t b, std::size_t e) {
            // One scratch slot/register vector per chunk instead of per
            // index.
            std::vector<Fr> slot_vals(tables.size());
            std::vector<Fr> regs;
            Fr part = Fr::zero();
            for (std::size_t i = b; i < e; ++i) {
                for (std::size_t s = 0; s < tables.size(); ++s)
                    slot_vals[s] = tables[s][i];
                part += evalPlan->evaluate(slot_vals, regs);
            }
            return part;
        },
        [](Fr acc, Fr part) { return acc + part; },
        /*grain=*/0, /*minGrain=*/512);
}

void
VirtualPoly::fixFirstVarInPlace(const Fr &r)
{
    // Outer parallelism across slot tables; each table's own fold runs its
    // parallel path only when reached from a serial context (nested regions
    // execute inline), so both shapes compose without oversubscription.
    // Each table owns a persistent double buffer, so folds that do take the
    // out-of-place path stop allocating after the first round.
    rt::parallelFor(
        0, tables.size(),
        [&](std::size_t s) {
            tables[s].fixFirstVarInPlace(r, foldScratch[s]);
        },
        /*grain=*/1);
    --nVars;
}

} // namespace zkphire::poly
