#include "poly/virtual_poly.hpp"

namespace zkphire::poly {

VirtualPoly::VirtualPoly(GateExpr expr, std::vector<Mle> mles)
    : structure(std::move(expr)), tables(std::move(mles))
{
    assert(tables.size() == structure.numSlots() &&
           "one MLE table required per expression slot");
    assert(!tables.empty());
    nVars = tables[0].numVars();
    for (const Mle &m : tables)
        assert(m.numVars() == nVars && "all slot tables must share numVars");
}

Fr
VirtualPoly::evalAtIndex(std::size_t idx) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s][idx];
    return structure.evaluate(slot_vals);
}

Fr
VirtualPoly::evaluate(std::span<const Fr> point) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s].evaluate(point);
    return structure.evaluate(slot_vals);
}

Fr
VirtualPoly::sumOverHypercube() const
{
    Fr acc = Fr::zero();
    const std::size_t n = std::size_t(1) << nVars;
    for (std::size_t i = 0; i < n; ++i)
        acc += evalAtIndex(i);
    return acc;
}

void
VirtualPoly::fixFirstVarInPlace(const Fr &r)
{
    for (Mle &m : tables)
        m.fixFirstVarInPlace(r);
    --nVars;
}

} // namespace zkphire::poly
