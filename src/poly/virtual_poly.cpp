#include "poly/virtual_poly.hpp"

#include "rt/parallel.hpp"

namespace zkphire::poly {

VirtualPoly::VirtualPoly(GateExpr expr, std::vector<Mle> mles)
    : VirtualPoly(std::move(expr), std::move(mles), nullptr)
{
}

VirtualPoly::VirtualPoly(GateExpr expr, std::vector<Mle> mles,
                         std::shared_ptr<const GatePlan> plan)
    : structure(std::move(expr)), evalPlan(std::move(plan)),
      tables(std::move(mles))
{
    assert(tables.size() == structure.numSlots() &&
           "one MLE table required per expression slot");
    assert(!tables.empty());
    if (!evalPlan)
        evalPlan = std::make_shared<const GatePlan>(
            GatePlan::compile(structure));
    assert(evalPlan->numSlots() == structure.numSlots() &&
           "precompiled plan does not match the expression");
    assert(evalPlan->numTerms() == structure.numTerms() &&
           "precompiled plan does not match the expression");
    foldScratch.resize(tables.size());
    nVars = tables[0].numVars();
    for ([[maybe_unused]] const Mle &m : tables)
        assert(m.numVars() == nVars && "all slot tables must share numVars");
}

Fr
VirtualPoly::evalAtIndex(std::size_t idx) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s][idx];
    return evalPlan->evaluate(slot_vals);
}

Fr
VirtualPoly::evaluate(std::span<const Fr> point) const
{
    std::vector<Fr> slot_vals(tables.size());
    for (std::size_t s = 0; s < tables.size(); ++s)
        slot_vals[s] = tables[s].evaluate(point);
    return evalPlan->evaluate(slot_vals);
}

Fr
VirtualPoly::sumOverHypercube() const
{
    const std::size_t n = std::size_t(1) << nVars;
    // Read-only pass over every slot table. On the mapped backend the
    // consumed window is dropped block by block — the page-cache copy keeps
    // the data (MAP_SHARED), so later rounds re-fault it, while the resident
    // set through this pass stays O(chunk) instead of O(N * slots). Blocked
    // inside the callback so a serial run benefits too.
    const std::size_t rel_blk =
        std::max<std::size_t>(currentStorePolicy().chunkElems, 4096);
    return rt::parallelReduce<Fr>(
        0, n, Fr::zero(),
        [&](std::size_t b, std::size_t e) {
            // One scratch slot/register vector per chunk instead of per
            // index.
            std::vector<Fr> slot_vals(tables.size());
            std::vector<Fr> regs;
            Fr part = Fr::zero();
            for (std::size_t i0 = b; i0 < e; i0 += rel_blk) {
                const std::size_t i1 = std::min(e, i0 + rel_blk);
                for (std::size_t i = i0; i < i1; ++i) {
                    for (std::size_t s = 0; s < tables.size(); ++s)
                        slot_vals[s] = tables[s][i];
                    part += evalPlan->evaluate(slot_vals, regs);
                }
                for (const Mle &t : tables)
                    if (t.isMapped())
                        t.store().releaseWindow(i0, i1);
            }
            return part;
        },
        [](Fr acc, Fr part) { return acc + part; },
        /*grain=*/0, /*minGrain=*/512);
}

VirtualPoly::~VirtualPoly()
{
    // Return the double buffers AND the consumed slot tables to the ambient
    // arena (when one is installed) so the next proof on this context skips
    // the allocation. The tables are owned copies the sumcheck has folded
    // down; their slabs keep full capacity through the shrinks, which is
    // exactly what the next proof's same-size tables want.
    for (FrTable &s : foldScratch)
        if (s.capacity() != 0)
            arenaRelease(std::move(s));
    for (Mle &t : tables)
        if (t.store().capacity() != 0)
            arenaRelease(std::move(t.store()));
}

bool
VirtualPoly::anyTableMapped() const
{
    for (const Mle &t : tables)
        if (t.isMapped())
            return true;
    return false;
}

void
VirtualPoly::fixFirstVarInPlace(const Fr &r)
{
    // Outer parallelism across slot tables; each table's own fold runs its
    // parallel path only when reached from a serial context (nested regions
    // execute inline), so both shapes compose without oversubscription.
    // Each table owns a persistent double buffer, so folds that do take the
    // out-of-place path stop allocating after the first round.
    rt::parallelFor(
        0, tables.size(),
        [&](std::size_t s) {
            tables[s].fixFirstVarInPlace(r, foldScratch[s]);
        },
        /*grain=*/1);
    --nVars;
}

std::vector<Fr>
VirtualPoly::foldAndAccumulate(const Fr &r)
{
    assert(nVars >= 2 && "fused fold+evaluate needs a next round");
    const std::size_t half = std::size_t(1) << (nVars - 1);
    const std::size_t pairs = half / 2;
    const std::size_t num_slots = tables.size();

    for (std::size_t s = 0; s < num_slots; ++s) {
        if (foldScratch[s].capacity() == 0)
            foldScratch[s] = arenaAcquire(half);
        else
            foldScratch[s].resize(half);
    }

    // One walk per chunk: fold every table's region [2b, 2e) into the
    // scratch buffers, then immediately run the plan's pair accumulation
    // over the freshly written pairs [b, e) while they are cache-hot (and,
    // on the mapped backend, before their pages go cold). Chunks partition
    // the pair range, so each folded index is written exactly once, by the
    // thread that then reads it. Fold formula and accumulation arithmetic
    // are identical to the unfused path's; field ops are exact, so both the
    // folded tables and the accumulator are bit-identical to
    // fixFirstVarInPlace + accumulatePairs run separately.
    // Residency bound: each block of blk_pairs pairs reads 4 * blk_pairs
    // source entries and writes 2 * blk_pairs scratch entries per slot.
    // After the block's pair accumulation both windows are dropped — the
    // source is never read again this proof (after swapFolded the old store
    // becomes next round's scratch, fully rewritten before any read), and
    // the scratch window's data survives release in the page cache
    // (MAP_SHARED), re-faulted when the next round reads it as source. The
    // block loop lives inside the callback (not per parallel chunk) so a
    // serial run — one callback for the whole range — still walks the round
    // O(chunk)-resident.
    const std::size_t blk_pairs = std::max<std::size_t>(
        currentStorePolicy().chunkElems / 4, std::size_t(2048));
    const std::size_t acc_len = evalPlan->accSize();
    std::vector<Fr> acc = rt::parallelReduce<std::vector<Fr>>(
        0, pairs, std::vector<Fr>(acc_len, Fr::zero()),
        [&](std::size_t b, std::size_t e) {
            constexpr std::size_t kMaxSlots = 64;
            assert(num_slots <= kMaxSlots && "raise kMaxSlots");
            const Fr *ptrs[kMaxSlots];
            std::vector<Fr> part(acc_len, Fr::zero());
            std::vector<Fr> scratch;
            for (std::size_t p0 = b; p0 < e; p0 += blk_pairs) {
                const std::size_t p1 = std::min(e, p0 + blk_pairs);
                for (std::size_t s = 0; s < num_slots; ++s) {
                    const Mle &t = tables[s];
                    Fr *sc = foldScratch[s].data();
                    for (std::size_t i = 2 * p0; i < 2 * p1; ++i) {
                        Fr lo = t[2 * i];
                        Fr hi = t[2 * i + 1];
                        sc[i] = lo + r * (hi - lo);
                    }
                    ptrs[s] = sc;
                }
                evalPlan->accumulatePairs(ptrs, p0, p1, part, scratch);
                for (std::size_t s = 0; s < num_slots; ++s) {
                    if (tables[s].isMapped())
                        tables[s].store().releaseWindow(4 * p0, 4 * p1);
                    if (foldScratch[s].isMapped())
                        foldScratch[s].releaseWindow(2 * p0, 2 * p1);
                }
            }
            return part;
        },
        [&](std::vector<Fr> a, std::vector<Fr> p) {
            for (std::size_t i = 0; i < acc_len; ++i)
                a[i] += p[i];
            return a;
        },
        /*grain=*/0, /*minGrain=*/256);

    for (std::size_t s = 0; s < num_slots; ++s)
        tables[s].swapFolded(foldScratch[s]);
    --nVars;
    return acc;
}

} // namespace zkphire::poly
