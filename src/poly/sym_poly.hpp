/**
 * @file
 * Tiny symbolic polynomial algebra for building GateExprs.
 *
 * Table I's Halo2 constraints are products of multi-term brackets, e.g.
 * q_add * ((x_r + x_q + x_p)(x_p - x_q)^2 - (y_p - y_q)^2). Expanding these
 * by hand into GateExpr terms is error-prone, so SymPoly provides exact
 * monomial algebra (+, -, *, pow) over slot variables and emits the expanded
 * term list. Used only at gate-construction time, never on the hot path.
 */
#ifndef ZKPHIRE_POLY_SYM_POLY_HPP
#define ZKPHIRE_POLY_SYM_POLY_HPP

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "poly/gate_expr.hpp"

namespace zkphire::poly {

/** Exact multivariate polynomial over GateExpr slots. */
class SymPoly
{
  public:
    SymPoly() = default;

    /** The monomial consisting of a single slot variable. */
    static SymPoly
    var(SlotId s)
    {
        SymPoly p;
        p.monos[{s}] = Fr::one();
        return p;
    }

    /** A constant polynomial. */
    static SymPoly
    constant(const Fr &c)
    {
        SymPoly p;
        if (!c.isZero())
            p.monos[{}] = c;
        return p;
    }

    static SymPoly constant(std::int64_t c) { return constant(Fr::fromI64(c)); }

    SymPoly
    operator+(const SymPoly &o) const
    {
        SymPoly out = *this;
        for (const auto &[mono, coeff] : o.monos)
            out.addMonomial(mono, coeff);
        return out;
    }

    SymPoly
    operator-(const SymPoly &o) const
    {
        SymPoly out = *this;
        for (const auto &[mono, coeff] : o.monos)
            out.addMonomial(mono, coeff.neg());
        return out;
    }

    SymPoly
    operator*(const SymPoly &o) const
    {
        SymPoly out;
        for (const auto &[ma, ca] : monos) {
            for (const auto &[mb, cb] : o.monos) {
                std::vector<SlotId> mono = ma;
                mono.insert(mono.end(), mb.begin(), mb.end());
                std::sort(mono.begin(), mono.end());
                out.addMonomial(mono, ca * cb);
            }
        }
        return out;
    }

    SymPoly operator-() const { return SymPoly() - *this; }

    SymPoly
    pow(unsigned k) const
    {
        SymPoly out = constant(Fr::one());
        for (unsigned i = 0; i < k; ++i)
            out = out * *this;
        return out;
    }

    /** Emit the expanded monomials as GateExpr terms (zero coeffs dropped). */
    void
    addTo(GateExpr &expr) const
    {
        for (const auto &[mono, coeff] : monos) {
            if (coeff.isZero())
                continue;
            expr.addTerm(coeff, mono);
        }
    }

    std::size_t numMonomials() const { return monos.size(); }

  private:
    void
    addMonomial(const std::vector<SlotId> &mono, const Fr &coeff)
    {
        auto it = monos.find(mono);
        if (it == monos.end()) {
            if (!coeff.isZero())
                monos[mono] = coeff;
            return;
        }
        it->second += coeff;
        if (it->second.isZero())
            monos.erase(it);
    }

    std::map<std::vector<SlotId>, Fr> monos;
};

} // namespace zkphire::poly

#endif // ZKPHIRE_POLY_SYM_POLY_HPP
