#include "poly/gate_plan.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "ff/vec_ops.hpp"

namespace zkphire::poly {

namespace {

/** Lowering state: hash-consed mul DAG plus the power memo. */
struct Lowerer {
    explicit Lowerer(std::uint32_t num_slots) : nextReg(num_slots) {}

    std::uint32_t nextReg;
    std::vector<PlanOp> ops;
    /** (lhs, rhs) normalized -> dst, so shared sub-products cons to one op. */
    std::map<std::pair<RegId, RegId>, RegId> consed;
    /** (slot, exponent) -> register, for binary-powering reuse. */
    std::map<std::pair<SlotId, std::uint32_t>, RegId> powMemo;

    RegId
    mul(RegId a, RegId b, std::uint32_t term)
    {
        if (a > b)
            std::swap(a, b);
        auto it = consed.find({a, b});
        if (it != consed.end())
            return it->second;
        RegId dst = nextReg++;
        ops.push_back(PlanOp{dst, a, b, 0, term});
        consed.emplace(std::pair<RegId, RegId>{a, b}, dst);
        return dst;
    }

    /** slot^exp via memoized binary powering (w^5 = 3 muls, shared). */
    RegId
    power(SlotId slot, std::uint32_t exp, std::uint32_t term)
    {
        assert(exp >= 1);
        if (exp == 1)
            return RegId(slot);
        auto it = powMemo.find({slot, exp});
        if (it != powMemo.end())
            return it->second;
        RegId lo = power(slot, exp / 2, term);
        RegId hi = power(slot, exp - exp / 2, term);
        RegId dst = mul(lo, hi, term);
        powMemo.emplace(std::pair<SlotId, std::uint32_t>{slot, exp}, dst);
        return dst;
    }
};

} // namespace

GatePlan
GatePlan::compile(const GateExpr &expr)
{
    GatePlan plan;
    plan.nSlots = std::uint32_t(expr.numSlots());
    plan.maxDegree = std::uint32_t(expr.degree());

    // Slot popularity (number of terms referencing each slot) orders the
    // factor groups inside every term: popular slots lead, so terms sharing
    // a leading sub-product (e.g. f_r, or w1*w2 in Jellyfish's qM1 and qecc
    // terms) produce identical op prefixes and the hash-consing pass merges
    // them. Ties break on slot id — fully deterministic.
    std::vector<std::uint32_t> ref_count(plan.nSlots, 0);
    for (const Term &t : expr.terms()) {
        std::vector<bool> seen(plan.nSlots, false);
        for (SlotId f : t.factors)
            if (!seen[f]) {
                seen[f] = true;
                ++ref_count[f];
            }
    }

    Lowerer lower(plan.nSlots);
    plan.termList.reserve(expr.numTerms());
    for (std::size_t ti = 0; ti < expr.numTerms(); ++ti) {
        const Term &t = expr.terms()[ti];
        PlanTerm pt;
        pt.coeff = t.coeff;
        pt.degree = std::uint32_t(t.degree());
        if (!t.factors.empty()) {
            std::map<SlotId, std::uint32_t> exps;
            for (SlotId f : t.factors)
                ++exps[f];
            std::vector<std::pair<SlotId, std::uint32_t>> groups(
                exps.begin(), exps.end());
            std::stable_sort(groups.begin(), groups.end(),
                             [&](const auto &a, const auto &b) {
                                 if (ref_count[a.first] != ref_count[b.first])
                                     return ref_count[a.first] >
                                            ref_count[b.first];
                                 return a.first < b.first;
                             });
            RegId acc = lower.power(groups[0].first, groups[0].second,
                                    std::uint32_t(ti));
            for (std::size_t g = 1; g < groups.size(); ++g) {
                RegId factor = lower.power(groups[g].first, groups[g].second,
                                           std::uint32_t(ti));
                acc = lower.mul(acc, factor, std::uint32_t(ti));
            }
            pt.product = acc;
        }
        plan.termList.push_back(pt);
    }
    plan.opList = std::move(lower.ops);
    plan.nRegs = lower.nextReg;

    // Back-propagate evaluation-point requirements through the op DAG: each
    // term needs its product at degree+1 points; an op inherits the max of
    // its consumers. Slot registers end up with their *actual* extension
    // bound, which can sit well below the composite degree.
    plan.regPoints.assign(plan.nRegs, 0);
    for (const PlanTerm &t : plan.termList)
        if (t.product != kNoReg)
            plan.regPoints[t.product] =
                std::max(plan.regPoints[t.product], t.degree + 1);
    for (std::size_t i = plan.opList.size(); i-- > 0;) {
        PlanOp &op = plan.opList[i];
        const std::uint32_t pts = plan.regPoints[op.dst];
        op.numPoints = pts;
        plan.regPoints[op.lhs] = std::max(plan.regPoints[op.lhs], pts);
        plan.regPoints[op.rhs] = std::max(plan.regPoints[op.rhs], pts);
    }
    for (std::uint32_t r = 0; r < plan.nRegs; ++r)
        plan.maxPts = std::max(plan.maxPts, plan.regPoints[r]);
    for (SlotId s = 0; s < plan.nSlots; ++s)
        if (plan.regPoints[s] > 0)
            plan.usedSlots.push_back(s);

    // Degree classes: one accumulator stripe of d+1 nodes per distinct term
    // degree (class 0 absorbs pure-constant terms).
    std::vector<std::uint32_t> degs;
    for (const PlanTerm &t : plan.termList)
        degs.push_back(t.degree);
    std::sort(degs.begin(), degs.end());
    degs.erase(std::unique(degs.begin(), degs.end()), degs.end());
    plan.classes = degs;
    plan.classOffsets.resize(plan.classes.size());
    std::uint32_t off = 0;
    for (std::size_t c = 0; c < plan.classes.size(); ++c) {
        plan.classOffsets[c] = off;
        off += plan.classes[c] + 1;
    }
    plan.accLen = off;
    for (PlanTerm &t : plan.termList) {
        const auto it =
            std::lower_bound(plan.classes.begin(), plan.classes.end(),
                             t.degree);
        t.accOffset = plan.classOffsets[std::size_t(
            it - plan.classes.begin())];
    }
    return plan;
}

std::size_t
GatePlan::mulsPerPoint() const
{
    std::size_t muls = opList.size();
    for (const PlanTerm &t : termList)
        if (t.product != kNoReg && !t.coeff.isOne())
            ++muls;
    return muls;
}

std::size_t
GatePlan::mulsPerPair() const
{
    std::size_t muls = 0;
    for (const PlanOp &op : opList)
        muls += op.numPoints;
    for (const PlanTerm &t : termList)
        if (t.product != kNoReg && !t.coeff.isOne())
            muls += t.degree + 1;
    return muls;
}

std::size_t
GatePlan::naiveMulsPerPair(const GateExpr &expr) const
{
    return (expr.degree() + 1) * expr.mulsPerPoint();
}

Fr
GatePlan::evaluate(std::span<const Fr> slot_values) const
{
    std::vector<Fr> scratch;
    return evaluate(slot_values, scratch);
}

Fr
GatePlan::evaluate(std::span<const Fr> slot_values,
                   std::vector<Fr> &scratch) const
{
    assert(slot_values.size() >= nSlots);
    scratch.resize(nRegs);
    std::copy(slot_values.begin(), slot_values.begin() + nSlots,
              scratch.begin());
    for (const PlanOp &op : opList)
        scratch[op.dst] = scratch[op.lhs] * scratch[op.rhs];
    Fr acc = Fr::zero();
    for (const PlanTerm &t : termList) {
        if (t.product == kNoReg)
            acc += t.coeff;
        else if (t.coeff.isOne())
            acc += scratch[t.product];
        else
            acc += t.coeff * scratch[t.product];
    }
    return acc;
}

void
GatePlan::accumulatePairs(std::span<const Mle> tables, std::size_t begin,
                          std::size_t end, std::span<Fr> acc,
                          std::vector<Fr> &scratch) const
{
    assert(tables.size() >= nSlots);
    constexpr std::size_t kMaxSlots = 64;
    assert(nSlots <= kMaxSlots && "raise kMaxSlots for wider gates");
    const Fr *ptrs[kMaxSlots];
    for (std::uint32_t s = 0; s < nSlots; ++s)
        ptrs[s] = tables[s].data();
    accumulatePairs(ptrs, begin, end, acc, scratch);
}

void
GatePlan::accumulatePairs(const Fr *const *tables, std::size_t begin,
                          std::size_t end, std::span<Fr> acc,
                          std::vector<Fr> &scratch) const
{
    assert(acc.size() == accLen);

    // SIMD-blocked hot loop: table pairs are processed kPairBlock at a
    // time, and the point-minor register layout gains a pair-minor lane
    // dimension — register r holds maxPts rows of `bs` contiguous lanes
    // (point p, lane jj at regs[r*W*bs + p*bs + jj]). Every product op
    // then runs as ONE contiguous ff::mulVec of numPoints*bs independent
    // multiplications — the shape the unrolled Montgomery kernels (and an
    // autovectorizer under -DZKPHIRE_NATIVE) digest best — and non-unit
    // coefficients are applied once per block row instead of once per
    // pair. Field addition is exact and canonical, so regrouping the
    // accumulation is bit-identical to the pair-at-a-time loop.
    constexpr std::size_t kPairBlock = 4; // lanes per block (tails shrink)
    const std::size_t W = maxPts;
    scratch.resize(std::size_t(nRegs) * W * kPairBlock);
    Fr *regs = scratch.data();
    Fr diff[kPairBlock];

    for (std::size_t j = begin; j < end; j += kPairBlock) {
        const std::size_t bs = std::min(kPairBlock, end - j);
        // Extension Engines: each slot to its own point bound, lane-major
        // rows so row p is one vector add over the block's diffs.
        for (SlotId s : usedSlots) {
            const Fr *tbl = tables[s];
            Fr *e = regs + std::size_t(s) * W * bs;
            for (std::size_t jj = 0; jj < bs; ++jj) {
                const Fr lo = tbl[2 * (j + jj)];
                diff[jj] = tbl[2 * (j + jj) + 1] - lo;
                e[jj] = lo;
            }
            const std::uint32_t pts = regPoints[s];
            for (std::uint32_t p = 1; p < pts; ++p)
                for (std::size_t jj = 0; jj < bs; ++jj)
                    e[p * bs + jj] = e[(p - 1) * bs + jj] + diff[jj];
        }
        // Product Lanes: one batched multiply per op over all points and
        // lanes of the block (rows beyond op.numPoints are never read).
        for (const PlanOp &op : opList)
            ff::mulVec(regs + std::size_t(op.dst) * W * bs,
                       regs + std::size_t(op.lhs) * W * bs,
                       regs + std::size_t(op.rhs) * W * bs,
                       std::size_t(op.numPoints) * bs);
        // Accumulate each term into its degree class: sum the block's
        // lanes per point (seeded from lane 0 — bs >= 1 always), then one
        // (optionally coefficient-scaled) add.
        const auto row_sum = [bs](const Fr *row) {
            Fr s = row[0];
            for (std::size_t jj = 1; jj < bs; ++jj)
                s += row[jj];
            return s;
        };
        for (const PlanTerm &t : termList) {
            Fr *out = acc.data() + t.accOffset;
            if (t.product == kNoReg) {
                for (std::size_t jj = 0; jj < bs; ++jj)
                    out[0] += t.coeff;
                continue;
            }
            const Fr *v = regs + std::size_t(t.product) * W * bs;
            const std::uint32_t pts = t.degree + 1;
            if (t.coeff.isOne()) {
                for (std::uint32_t p = 0; p < pts; ++p)
                    out[p] += row_sum(v + p * bs);
            } else {
                for (std::uint32_t p = 0; p < pts; ++p)
                    out[p] += t.coeff * row_sum(v + p * bs);
            }
        }
    }
}

std::vector<Fr>
GatePlan::finalizeRoundEvals(std::span<const Fr> acc) const
{
    assert(acc.size() == accLen);
    const std::uint32_t D = maxDegree;
    std::vector<Fr> out(D + 1, Fr::zero());
    std::vector<Fr> c;
    for (std::size_t ci = 0; ci < classes.size(); ++ci) {
        const std::uint32_t d = classes[ci];
        const Fr *vals = acc.data() + classOffsets[ci];
        for (std::uint32_t p = 0; p <= d; ++p)
            out[p] += vals[p];
        if (d >= D)
            continue;
        // The class sum is an exact degree-<=d univariate known at nodes
        // 0..d; extend to d+1..D with Newton forward differences (additions
        // only, so the extension is exact and bit-identical to evaluating
        // the naive accumulator at those nodes).
        c.assign(vals, vals + d + 1);
        for (std::uint32_t lev = 1; lev <= d; ++lev)
            for (std::uint32_t j = d; j >= lev; --j)
                c[j] -= c[j - 1];
        // c[j] = Delta^j at node 0; stepping keeps c[j] = Delta^j at node k.
        for (std::uint32_t k = 1; k <= D; ++k) {
            for (std::uint32_t j = 0; j < d; ++j)
                c[j] += c[j + 1];
            if (k > d)
                out[k] += c[0];
        }
    }
    return out;
}

std::string
GatePlan::toString(const GateExpr &expr) const
{
    auto reg_name = [&](RegId r) {
        if (r < nSlots)
            return expr.slotName(SlotId(r));
        return std::string("t") + std::to_string(r - nSlots);
    };
    std::string s = "plan(" + expr.name() + "): " +
                    std::to_string(opList.size()) + " ops, " +
                    std::to_string(classes.size()) + " classes\n";
    for (const PlanOp &op : opList)
        s += "  " + reg_name(op.dst) + " = " + reg_name(op.lhs) + " * " +
             reg_name(op.rhs) + "  [pts=" + std::to_string(op.numPoints) +
             ", term=" + std::to_string(op.term) + "]\n";
    for (std::size_t t = 0; t < termList.size(); ++t) {
        const PlanTerm &pt = termList[t];
        s += "  acc[d=" + std::to_string(pt.degree) + "] += ";
        if (!pt.coeff.isOne() || pt.product == kNoReg)
            s += pt.coeff.toHexString();
        if (pt.product != kNoReg) {
            if (!pt.coeff.isOne())
                s += "*";
            s += reg_name(pt.product);
        }
        s += "\n";
    }
    return s;
}

} // namespace zkphire::poly
