#include "poly/mle.hpp"

#include <cassert>

#include "rt/parallel.hpp"

namespace zkphire::poly {

namespace {

/** Below this table size the parallel fold/sum paths are pure overhead. */
constexpr std::size_t kParallelThreshold = 1024;

[[maybe_unused]] bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

unsigned
log2Exact(std::size_t n)
{
    unsigned bits = 0;
    while ((std::size_t(1) << bits) < n)
        ++bits;
    return bits;
}

} // namespace

Mle::Mle(unsigned num_vars)
    : vals(FrTable::make(std::size_t(1) << num_vars)), nVars(num_vars)
{
}

Mle::Mle(std::vector<Fr> evals_in)
{
    const std::size_t n = evals_in.size();
    assert(isPowerOfTwo(n) && "MLE table must be a power of two");
    // Vector-built tables (witness synthesis, product trees) honor the
    // streaming policy too: at/above the threshold the values move onto a
    // mapped slab (so the table's pages are reclaimable) instead of
    // adopting the heap vector. Same bytes either way.
    if (n >= currentStorePolicy().thresholdElems) {
        vals = arenaAcquire(n);
        vals.assign(evals_in);
    } else {
        vals = FrTable::adopt(std::move(evals_in));
    }
    nVars = log2Exact(n);
}

Mle::Mle(FrTable table) : vals(std::move(table))
{
    assert(isPowerOfTwo(vals.size()) && "MLE table must be a power of two");
    nVars = log2Exact(vals.size());
}

Mle
Mle::constant(unsigned num_vars, const Fr &c)
{
    Mle m(num_vars);
    for (auto &v : m.vals)
        v = c;
    return m;
}

Mle
Mle::random(unsigned num_vars, ff::Rng &rng)
{
    Mle m(num_vars);
    for (auto &v : m.vals)
        v = Fr::random(rng);
    return m;
}

Mle
Mle::randomSparse(unsigned num_vars, ff::Rng &rng, double p_zero, double p_one)
{
    assert(p_zero + p_one <= 1.0);
    Mle m(num_vars);
    for (auto &v : m.vals) {
        double u = rng.nextDouble();
        if (u < p_zero)
            v = Fr::zero();
        else if (u < p_zero + p_one)
            v = Fr::one();
        else
            v = Fr::random(rng);
    }
    return m;
}

Mle
Mle::eqTable(std::span<const Fr> r)
{
    // Arena-acquired: eq tables are among the biggest per-proof allocations
    // (one per ZeroCheck/OpenCheck), and on the mapped backend a freshly
    // fallocated slab pays first-touch I/O costs a recycled warm slab does
    // not. eqTableInto overwrites every entry, so recycled contents never
    // leak through.
    FrTable out = arenaAcquire(std::size_t(1) << r.size());
    eqTableInto(r, out);
    return Mle(std::move(out));
}

void
eqTableInto(std::span<const Fr> r, FrTable &out)
{
    const unsigned n = unsigned(r.size());
    out.resize(std::size_t(1) << n);

    // Suffix table over the low s variables, built by the classic doubling
    // construction: variable i doubles the table, placing its 0/1 split at
    // bit i of the index (x_i = 0 keeps the lower copy). This is the
    // O(N)-multiplication Build MLE kernel run by the Multifunction Forest
    // in hardware; here it is capped at the stream chunk size.
    unsigned s = 0;
    const std::size_t chunkElems = currentStorePolicy().chunkElems;
    while (s < n && (std::size_t(1) << (s + 1)) <= chunkElems)
        ++s;

    std::vector<Fr> suffix{Fr::one()};
    suffix.reserve(std::size_t(1) << s);
    for (unsigned i = 0; i < s; ++i) {
        const std::size_t half = suffix.size();
        std::vector<Fr> next(half * 2);
        rt::parallelFor(
            0, half,
            [&](std::size_t j) {
                Fr hi = suffix[j] * r[i];
                next[j] = suffix[j] - hi; // e*(1 - r_i)
                next[j + half] = hi;      // e*r_i
            },
            /*grain=*/0, /*minGrain=*/kParallelThreshold);
        suffix = std::move(next);
    }

    const std::size_t chunk = std::size_t(1) << s;
    if (s == n) {
        std::copy(suffix.begin(), suffix.end(), out.data());
        return;
    }

    // Tensor step: chunk c of the output is the suffix table scaled by the
    // prefix weight prod_{i>=s} (c_i r_i + (1-c_i)(1-r_i)). Exact field
    // multiplication makes every entry the same element — hence the same
    // bytes — as the doubling construction's. Each chunk is written by one
    // pool thread, so slab pages are first-touched by their consumer.
    const std::size_t numChunks = std::size_t(1) << (n - s);
    rt::parallelFor(0, numChunks, [&](std::size_t c) {
        Fr w = Fr::one();
        for (unsigned i = s; i < n; ++i) {
            Fr hi = w * r[i];
            w = ((c >> (i - s)) & 1) != 0 ? hi : w - hi;
        }
        Fr *dst = out.data() + c * chunk;
        for (std::size_t j = 0; j < chunk; ++j)
            dst[j] = w * suffix[j];
    });
}

void
Mle::fixFirstVarInPlace(const Fr &r)
{
    FrTable scratch;
    fixFirstVarInPlace(r, scratch);
}

void
Mle::fixFirstVarInPlace(const Fr &r, FrTable &scratch)
{
    assert(nVars > 0 && "cannot fold a 0-variable MLE");
    const std::size_t half = vals.size() / 2;
    // Inside a pool worker the parallel branch would run inline anyway, so
    // take the allocation-free in-place fold there too (this is what makes
    // VirtualPoly's table-parallel fold cheap per table).
    if (rt::currentThreads() <= 1 || rt::ThreadPool::insideWorker() ||
        half < kParallelThreshold) {
        // In-place is safe serially: the write at j precedes every later
        // read, which happens at index >= 2(j+1).
        for (std::size_t j = 0; j < half; ++j) {
            Fr lo = vals[2 * j];
            Fr hi = vals[2 * j + 1];
            vals[j] = lo + r * (hi - lo);
        }
        vals.resize(half);
    } else {
        // Concurrent chunks would race on the in-place overlap (chunk k
        // writes [b,e) while chunk k-1 still reads [2b,2e)), so the parallel
        // path folds into the scratch buffer and swaps: after the swap the
        // old table becomes the next round's scratch, so repeated folds
        // alternate between two buffers instead of allocating. Same
        // arithmetic per index, hence bit-identical values. A fresh scratch
        // comes from the ambient arena so consecutive proofs on one context
        // recycle the same buffer.
        if (scratch.capacity() == 0)
            scratch = arenaAcquire(half);
        else
            scratch.resize(half);
        rt::parallelFor(
            0, half,
            [&](std::size_t j) {
                Fr lo = vals[2 * j];
                Fr hi = vals[2 * j + 1];
                scratch[j] = lo + r * (hi - lo);
            },
            /*grain=*/0, /*minGrain=*/256);
        vals.swap(scratch);
    }
    --nVars;
}

void
Mle::swapFolded(FrTable &folded)
{
    assert(nVars > 0 && folded.size() * 2 == vals.size());
    vals.swap(folded);
    --nVars;
}

Mle
Mle::fixFirstVar(const Fr &r) const
{
    Mle out = *this;
    out.fixFirstVarInPlace(r);
    return out;
}

Fr
Mle::evaluate(std::span<const Fr> point) const
{
    assert(point.size() == nVars && "evaluation point dimension mismatch");
    Mle tmp = *this;
    for (std::size_t i = 0; i < point.size(); ++i)
        tmp.fixFirstVarInPlace(point[i]);
    return tmp.vals[0];
}

Fr
Mle::sumOverHypercube() const
{
    // Exact modular addition: chunked partial sums equal the serial sum.
    return rt::parallelReduce<Fr>(
        0, vals.size(), Fr::zero(),
        [&](std::size_t b, std::size_t e) {
            Fr part = Fr::zero();
            for (std::size_t i = b; i < e; ++i)
                part += vals[i];
            return part;
        },
        [](Fr acc, Fr part) { return acc + part; },
        /*grain=*/0, /*minGrain=*/kParallelThreshold);
}

SparsityStats
Mle::sparsity() const
{
    SparsityStats s;
    if (vals.empty())
        return s;
    std::size_t zeros = 0, ones = 0;
    for (const Fr &v : vals) {
        if (v.isZero())
            ++zeros;
        else if (v.isOne())
            ++ones;
    }
    s.fracZero = double(zeros) / double(vals.size());
    s.fracOne = double(ones) / double(vals.size());
    return s;
}

Fr
eqEval(std::span<const Fr> x, std::span<const Fr> y)
{
    assert(x.size() == y.size());
    Fr acc = Fr::one();
    for (std::size_t i = 0; i < x.size(); ++i) {
        Fr xy = x[i] * y[i];
        // x*y + (1-x)(1-y) = 2xy - x - y + 1
        acc *= xy.dbl() - x[i] - y[i] + Fr::one();
    }
    return acc;
}

} // namespace zkphire::poly
