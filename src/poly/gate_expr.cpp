#include "poly/gate_expr.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace zkphire::poly {

SlotId
GateExpr::addSlot(std::string name)
{
    slotNames.push_back(std::move(name));
    return SlotId(slotNames.size() - 1);
}

void
GateExpr::addTerm(std::initializer_list<SlotId> factors)
{
    addTerm(Fr::one(), std::vector<SlotId>(factors));
}

void
GateExpr::addTerm(std::vector<SlotId> factors)
{
    addTerm(Fr::one(), std::move(factors));
}

void
GateExpr::addTerm(const Fr &coeff, std::vector<SlotId> factors)
{
    for ([[maybe_unused]] SlotId f : factors)
        assert(f < slotNames.size() && "term references unknown slot");
    termList.push_back(Term{coeff, std::move(factors)});
}

std::size_t
GateExpr::degree() const
{
    std::size_t d = 0;
    for (const Term &t : termList)
        d = std::max(d, t.degree());
    return d;
}

std::size_t
GateExpr::uniqueSlotsInTerm(std::size_t t) const
{
    assert(t < termList.size());
    std::set<SlotId> uniq(termList[t].factors.begin(),
                          termList[t].factors.end());
    return uniq.size();
}

std::vector<SlotId>
GateExpr::referencedSlots() const
{
    std::set<SlotId> uniq;
    for (const Term &t : termList)
        uniq.insert(t.factors.begin(), t.factors.end());
    return {uniq.begin(), uniq.end()};
}

Fr
GateExpr::evaluate(std::span<const Fr> slot_values) const
{
    assert(slot_values.size() >= slotNames.size());
    Fr acc = Fr::zero();
    for (const Term &t : termList) {
        Fr prod = t.coeff;
        for (SlotId f : t.factors)
            prod *= slot_values[f];
        acc += prod;
    }
    return acc;
}

GateExpr
GateExpr::multipliedBySlot(std::string slot_name, SlotId *new_slot) const
{
    GateExpr out = *this;
    SlotId s = out.addSlot(std::move(slot_name));
    for (Term &t : out.termList)
        t.factors.push_back(s);
    if (new_slot)
        *new_slot = s;
    return out;
}

std::size_t
GateExpr::mulsPerPoint() const
{
    std::size_t muls = 0;
    for (const Term &t : termList) {
        if (t.factors.empty())
            continue;
        muls += t.factors.size() - 1;
        if (!t.coeff.isOne())
            ++muls;
    }
    return muls;
}

std::string
GateExpr::toString() const
{
    std::string s = exprName + ": ";
    bool first_term = true;
    for (const Term &t : termList) {
        if (!first_term)
            s += " + ";
        first_term = false;
        bool coeff_shown = false;
        if (!t.coeff.isOne()) {
            s += t.coeff.toHexString();
            coeff_shown = true;
        }
        for (std::size_t i = 0; i < t.factors.size(); ++i) {
            if (coeff_shown || i > 0)
                s += "*";
            s += slotNames[t.factors[i]];
        }
        if (t.factors.empty() && !coeff_shown)
            s += "1";
    }
    return s;
}

} // namespace zkphire::poly
